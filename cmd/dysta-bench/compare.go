package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// This file is the bench-regression gate behind -bench-compare: it diffs
// a fresh BENCH_<date>.json against the committed baseline and fails on a
// large ns/op slowdown in the gated entries, so a PR cannot silently
// regress the hot paths the perf trajectory tracks.

// regressionThreshold is the tolerated ns/op (and allocs/op) growth
// before the gate fails: CI runners are noisy, so the gate only catches
// order-of-change regressions, not percent-level drift. Allocation
// counts are deterministic per machine but still share the threshold,
// since refactors legitimately trade a few allocations around.
const regressionThreshold = 0.30

// gatedBenchmark reports whether a bench entry is held to the regression
// threshold: the engine and cluster suites (the BenchmarkEngine* and
// BenchmarkCluster* hot paths) plus the allocation-lean signal paths
// (BenchmarkSignalRefresh, BenchmarkRebalanceViews) whose cost profile
// the incremental-backlog work pins. The remaining entries (predictor
// step, parallel grid) are informational — too short or too
// machine-dependent to gate on.
func gatedBenchmark(name string) bool {
	return strings.HasPrefix(name, "Engine") || strings.HasPrefix(name, "Cluster") ||
		strings.HasPrefix(name, "Signal") || strings.HasPrefix(name, "Rebalance")
}

// readBenchReport loads one BENCH_*.json.
func readBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// compareBenchJSON diffs fresh against base and returns an error when any
// gated benchmark present in both slowed down — in ns/op or in allocs/op
// — by more than the threshold.
// Entries only present on one side are reported but never fail the gate
// (benchmarks are added and retired across PRs); an empty gated
// intersection is an error, since it means the gate checked nothing.
func compareBenchJSON(basePath, freshPath string, w io.Writer) error {
	base, err := readBenchReport(basePath)
	if err != nil {
		return err
	}
	fresh, err := readBenchReport(freshPath)
	if err != nil {
		return err
	}
	baseline := make(map[string]BenchRecord, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}

	var regressions []string
	gated := 0
	var baseAllocs, freshAllocs int64
	for _, f := range fresh.Results {
		b, ok := baseline[f.Name]
		if !ok {
			fmt.Fprintf(w, "%-22s new entry (%.0f ns/op), not gated\n", f.Name, f.NsPerOp)
			continue
		}
		delete(baseline, f.Name)
		if b.NsPerOp <= 0 {
			continue
		}
		change := f.NsPerOp/b.NsPerOp - 1
		status := "ok"
		if gatedBenchmark(f.Name) {
			gated++
			if change > regressionThreshold {
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f -> %.0f ns/op (%+.0f%%)", f.Name, b.NsPerOp, f.NsPerOp, 100*change))
			}
			// The memory half of the gate: allocs/op is exact and
			// machine-independent, so growth past the threshold means the
			// code genuinely allocates more — the failure mode a streaming
			// bounded-memory path must never reintroduce. Baselines written
			// before the field existed carry 0 and are skipped.
			if b.AllocsPerOp > 0 {
				baseAllocs += b.AllocsPerOp
				freshAllocs += f.AllocsPerOp
				achange := float64(f.AllocsPerOp)/float64(b.AllocsPerOp) - 1
				if achange > regressionThreshold {
					status = "REGRESSION"
					regressions = append(regressions, fmt.Sprintf(
						"%s: %d -> %d allocs/op (%+.0f%%)", f.Name, b.AllocsPerOp, f.AllocsPerOp, 100*achange))
				}
			}
		} else {
			status = "not gated"
		}
		fmt.Fprintf(w, "%-22s %12.0f -> %12.0f ns/op  %+6.1f%%  %8d -> %8d allocs/op  %s\n",
			f.Name, b.NsPerOp, f.NsPerOp, 100*change, b.AllocsPerOp, f.AllocsPerOp, status)
	}
	for name := range baseline {
		fmt.Fprintf(w, "%-22s retired (in baseline only)\n", name)
	}
	// The allocation-delta summary: one line aggregating allocs/op across
	// every gated entry present in both files, so the CI artifact shows
	// the memory trajectory of a PR at a glance without reading the
	// per-entry table.
	if baseAllocs > 0 {
		fmt.Fprintf(w, "allocs/op summary (gated entries): %d -> %d (%+.1f%%)\n",
			baseAllocs, freshAllocs, 100*(float64(freshAllocs)/float64(baseAllocs)-1))
	}
	if gated == 0 {
		return fmt.Errorf("bench-compare: no gated Engine*/Cluster* benchmark present in both %s and %s",
			basePath, freshPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-compare: %d benchmark(s) regressed >%.0f%%:\n  %s",
			len(regressions), 100*regressionThreshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "bench-compare: %d gated benchmarks within %.0f%% of %s\n",
		gated, 100*regressionThreshold, basePath)
	return nil
}
