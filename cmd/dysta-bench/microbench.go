package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/exp"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/traffic"
	"sparsedysta/internal/workload"
)

// This file is the perf-trajectory tooling behind the -json flag: it runs
// the hot-path micro-benchmarks (the engine under each scheduler, one
// predictor step, a parallel grid) through testing.Benchmark and writes
// the results to BENCH_<date>.json, so successive PRs can diff ns/op
// machine-readably instead of eyeballing `go test -bench` output.

// BenchRecord is one benchmark's machine-readable result.
type BenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the file-level schema of BENCH_<date>.json.
type BenchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchRecord `json:"results"`
}

// microWorkload builds the shared AttNN pipeline and request stream
// (mirrors the fixture of the root bench_test.go micro-benchmarks). The
// eval store is returned too so benches with their own arrival process
// (ClusterAutoscale) can sample fresh streams from the same trace pool.
func microWorkload() (*trace.StatsSet, *trace.Store, []*workload.Request, error) {
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 30, 100, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		return nil, nil, nil, err
	}
	reqs, err := workload.Generate(sc, eval, workload.GenConfig{
		Requests: 500, RatePerSec: 30, SLOMultiplier: 10, Seed: 1})
	if err != nil {
		return nil, nil, nil, err
	}
	return lut, eval, reqs, nil
}

// runMicroBenchmarks executes the hot-path suite and returns the records.
func runMicroBenchmarks() ([]BenchRecord, error) {
	lut, evalStore, reqs, err := microWorkload()
	if err != nil {
		return nil, err
	}
	est := sched.NewEstimator(lut)

	engineBench := func(mk func() sched.Scheduler) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Run(mk(), reqs, sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"EngineFCFS", engineBench(func() sched.Scheduler { return sched.NewFCFS() })},
		{"EngineSJF", engineBench(func() sched.Scheduler { return sched.NewSJF(est) })},
		{"EngineDysta", engineBench(func() sched.Scheduler { return core.NewDefault(lut) })},
		{"EngineDystaReference", func(b *testing.B) {
			// The pre-rearchitecture scoring path, kept as the baseline
			// the incremental path is measured against.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Run(core.NewDefault(lut), reqs,
					sched.Options{ReferencePick: true}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"EngineOracle", engineBench(func() sched.Scheduler { return sched.NewOracle(core.DefaultConfig().Eta) })},
		{"ClusterDysta", func(b *testing.B) {
			// 4 engines behind sparsity-aware least-predicted-load
			// dispatch: the new-subsystem entry of the perf trajectory.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := cluster.NewLeastLoad("load", cluster.SparsityAwareLoad(lut, est)).
					WithCurve(cluster.SparsityAwareCurve(lut, est))
				if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
					reqs, cluster.Config{Engines: 4, Dispatch: d}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ClusterRoundRobin", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
					reqs, cluster.Config{Engines: 4, Dispatch: cluster.NewRoundRobin()}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ClusterSteal", func(b *testing.B) {
			// The migration hot path: stale signals + work stealing on
			// top of the ClusterDysta configuration, covered by the CI
			// bench-regression gate like every other Cluster* entry.
			load := cluster.SparsityAwareLoad(lut, est)
			curve := cluster.SparsityAwareCurve(lut, est)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := cluster.NewLeastLoad("load", load).WithCurve(curve)
				if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
					reqs, cluster.Config{
						Engines:           4,
						Dispatch:          d,
						SignalInterval:    20 * time.Millisecond,
						Rebalance:         cluster.Steal{Load: load, Curve: curve},
						RebalanceInterval: time.Millisecond,
						MigrationCost:     200 * time.Microsecond,
					}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ClusterChurn", func(b *testing.B) {
			// The fault-injection hot path: stale signals + churn with
			// failover, retries and redirects on top of the ClusterDysta
			// configuration (MTBF chosen so several engines die and
			// recover within the 500-request stream).
			load := cluster.SparsityAwareLoad(lut, est)
			curve := cluster.SparsityAwareCurve(lut, est)
			plan, err := cluster.GenChurn(4, time.Minute, 2*time.Second, 150*time.Millisecond, 29)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := cluster.NewLeastLoad("load", load).WithCurve(curve)
				if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
					reqs, cluster.Config{
						Engines:        4,
						Dispatch:       d,
						SignalInterval: 20 * time.Millisecond,
						Churn:          &plan,
						RetryMax:       4,
					}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ClusterAutoscale", func(b *testing.B) {
			// The autoscaling hot path: a bursty (MMPP) stream with the
			// SLO-derived policy cycling the live set — per-refresh
			// evaluation, drain/join transitions and in-service billing on
			// top of the ClusterDysta configuration. New entry, so the CI
			// bench gate picks it up once both compared files carry it.
			load := cluster.SparsityAwareLoad(lut, est)
			burstyReqs, err := workload.Generate(workload.MultiAttNN(), evalStore, workload.GenConfig{
				Requests: 500, RatePerSec: 66, SLOMultiplier: 10, Seed: 1,
				Process: traffic.Bursty(66, 8, 0.2, 300*time.Millisecond)})
			if err != nil {
				b.Fatal(err)
			}
			pol := exp.NewAutoscaler(burstyReqs, 1, 4, load)
			pol.Curve = cluster.SparsityAwareCurve(lut, est)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := cluster.NewLeastLoad("load", load).WithCurve(pol.Curve)
				if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
					burstyReqs, cluster.Config{
						Engines:        4,
						Dispatch:       d,
						SignalInterval: 5 * time.Millisecond,
						Autoscale:      pol,
					}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ClusterStream1M", func(b *testing.B) {
			// The streaming scale anchor: one million requests through 16
			// Dysta engines with lazy arrivals, bounded capture and the
			// heap-backed pick path — the configuration whose memory use
			// must stay independent of request count. The request slice is
			// never materialized; each iteration re-opens the generator.
			// 400 req/s (~83% of the 16-engine capacity) keeps queues in
			// steady state: at or past saturation they grow with the
			// horizon and no capture mode can bound that.
			load := cluster.SparsityAwareLoad(lut, est)
			curve := cluster.SparsityAwareCurve(lut, est)
			cfg := workload.GenConfig{
				Requests: 1_000_000, RatePerSec: 400, SLOMultiplier: 10, Seed: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := workload.NewStream(workload.MultiAttNN(), evalStore, cfg)
				if err != nil {
					b.Fatal(err)
				}
				d := cluster.NewLeastLoad("load", load).WithCurve(curve)
				res, err := cluster.RunStream(func(int) sched.Scheduler { return core.NewDefault(lut) },
					src, cluster.Config{
						Engines:  16,
						Dispatch: d,
						Sched:    sched.Options{BoundedCapture: true, ScalablePick: true},
					})
				if err != nil {
					b.Fatal(err)
				}
				if res.Requests != cfg.Requests {
					b.Fatalf("streamed %d of %d requests", res.Requests, cfg.Requests)
				}
			}
		}},
		{"SignalRefresh", func(b *testing.B) {
			// One SignalBoard.Refresh over 4 engines holding the full
			// 500-request stream: the per-refresh cost every arrival-loop
			// observation pays when the interval elapses. With the engines
			// bound to the run's estimator this is the O(1) incremental
			// sum per engine; the pre-incremental board paid an O(queue)
			// scan here.
			load := cluster.SparsityAwareLoad(lut, est)
			curve := cluster.SparsityAwareCurve(lut, est)
			engines := make([]*sched.Engine, 4)
			for j := range engines {
				engines[j] = sched.NewEngine(core.NewDefault(lut), sched.Options{
					BacklogEstimator: load, BacklogCurve: curve})
			}
			for j, r := range reqs {
				if err := engines[j%len(engines)].Inject(r, r.Arrival); err != nil {
					b.Fatal(err)
				}
			}
			board := cluster.NewSignalBoard(engines, 0, load)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				board.Refresh(time.Duration(i))
			}
		}},
		{"RebalanceViews", func(b *testing.B) {
			// The rebalancer's per-round cost — live view construction
			// plus Steal planning — via the steal configuration at a
			// 100µs interval: an order of magnitude more rounds than
			// ClusterSteal, dominated by views() and Steal.Plan, the two
			// paths the reused scratch buffers serve.
			load := cluster.SparsityAwareLoad(lut, est)
			curve := cluster.SparsityAwareCurve(lut, est)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := cluster.NewLeastLoad("load", load).WithCurve(curve)
				if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
					reqs, cluster.Config{
						Engines:           4,
						Dispatch:          d,
						SignalInterval:    20 * time.Millisecond,
						Rebalance:         cluster.Steal{Load: load, Curve: curve},
						RebalanceInterval: 100 * time.Microsecond,
						MigrationCost:     200 * time.Microsecond,
					}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PredictorStep", func(b *testing.B) {
			st := lut.MustLookup(trace.Key{Model: "bert", Pattern: sparsity.Dense})
			p := core.NewPredictor(core.DefaultConfig(), st)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				layer := i % (st.NumLayers() - 1)
				p.Observe(layer, 0.9)
				_ = p.Remaining(layer + 1)
			}
		}},
		{"RunPointParallel", func(b *testing.B) {
			opts := exp.QuickOptions()
			p, err := exp.NewPipeline(workload.MultiAttNN(), opts, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.RunPoint(exp.StandardScheds(), 30, 10, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	records := make([]BenchRecord, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		records = append(records, BenchRecord{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-22s %12.0f ns/op %10d B/op %8d allocs/op\n",
			bench.name, records[len(records)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	return records, nil
}

// writeBenchJSON runs the suite and writes BENCH_<date>.json into dir.
func writeBenchJSON(dir string) error {
	records, err := runMicroBenchmarks()
	if err != nil {
		return err
	}
	report := BenchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    records,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, report.Date)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
