package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, records []BenchRecord) string {
	t.Helper()
	data, err := json.Marshal(BenchReport{Date: "2026-01-01", Results: records})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBenchJSON covers the regression gate: within-threshold and
// faster entries pass, a >30% slowdown in a gated Engine*/Cluster* entry
// fails, ungated entries never fail, and added/retired entries are
// tolerated.
func TestCompareBenchJSON(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", []BenchRecord{
		{Name: "EngineDysta", NsPerOp: 1000},
		{Name: "ClusterDysta", NsPerOp: 2000},
		{Name: "PredictorStep", NsPerOp: 10},
		{Name: "RetiredBench", NsPerOp: 5},
	})

	ok := writeReport(t, dir, "ok.json", []BenchRecord{
		{Name: "EngineDysta", NsPerOp: 1250},  // +25%: inside threshold
		{Name: "ClusterDysta", NsPerOp: 1500}, // faster
		{Name: "PredictorStep", NsPerOp: 100}, // 10x slower but not gated
		{Name: "BrandNewBench", NsPerOp: 1},   // new entry, not gated
	})
	var out strings.Builder
	if err := compareBenchJSON(base, ok, &out); err != nil {
		t.Fatalf("within-threshold comparison failed: %v\n%s", err, out.String())
	}

	bad := writeReport(t, dir, "bad.json", []BenchRecord{
		{Name: "EngineDysta", NsPerOp: 1400}, // +40%: regression
		{Name: "ClusterDysta", NsPerOp: 2000},
	})
	err := compareBenchJSON(base, bad, &strings.Builder{})
	if err == nil {
		t.Fatal("40% slowdown passed the gate")
	}
	if !strings.Contains(err.Error(), "EngineDysta") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}

	// The allocation half of the gate: a gated entry whose ns/op holds
	// steady but whose allocs/op grew past the threshold still fails —
	// the bounded-memory regressions the streaming path guards against
	// rarely show up as time on a fast machine.
	allocBase := writeReport(t, dir, "alloc-base.json", []BenchRecord{
		{Name: "ClusterDysta", NsPerOp: 2000, AllocsPerOp: 1000},
	})
	allocBad := writeReport(t, dir, "alloc-bad.json", []BenchRecord{
		{Name: "ClusterDysta", NsPerOp: 2000, AllocsPerOp: 1400}, // +40% allocs
	})
	err = compareBenchJSON(allocBase, allocBad, &strings.Builder{})
	if err == nil {
		t.Fatal("40% allocs/op growth passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("alloc regression error does not name the unit: %v", err)
	}
	allocOK := writeReport(t, dir, "alloc-ok.json", []BenchRecord{
		{Name: "ClusterDysta", NsPerOp: 2000, AllocsPerOp: 1200}, // +20%: inside threshold
	})
	var allocOut strings.Builder
	if err := compareBenchJSON(allocBase, allocOK, &allocOut); err != nil {
		t.Fatalf("within-threshold alloc growth failed: %v", err)
	}
	// The artifact carries the aggregate allocation trajectory.
	if !strings.Contains(allocOut.String(), "allocs/op summary (gated entries): 1000 -> 1200") {
		t.Errorf("missing allocs/op summary line:\n%s", allocOut.String())
	}

	// The signal-path suites are gated like the engine and cluster ones.
	sigBase := writeReport(t, dir, "sig-base.json", []BenchRecord{
		{Name: "SignalRefresh", NsPerOp: 100},
		{Name: "RebalanceViews", NsPerOp: 1000},
	})
	sigBad := writeReport(t, dir, "sig-bad.json", []BenchRecord{
		{Name: "SignalRefresh", NsPerOp: 150}, // +50%: regression
		{Name: "RebalanceViews", NsPerOp: 1000},
	})
	err = compareBenchJSON(sigBase, sigBad, &strings.Builder{})
	if err == nil {
		t.Fatal("50% SignalRefresh slowdown passed the gate")
	}
	if !strings.Contains(err.Error(), "SignalRefresh") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}
	// Baselines predating the allocs field carry 0 and must not divide
	// by it or flag every fresh run.
	zeroBase := writeReport(t, dir, "zero-base.json", []BenchRecord{
		{Name: "ClusterDysta", NsPerOp: 2000},
	})
	if err := compareBenchJSON(zeroBase, allocBad, &strings.Builder{}); err != nil {
		t.Fatalf("zero-alloc baseline tripped the alloc gate: %v", err)
	}

	// A comparison whose gated intersection is empty gates nothing and
	// must fail loudly rather than green-light the PR.
	empty := writeReport(t, dir, "empty.json", []BenchRecord{
		{Name: "PredictorStep", NsPerOp: 10},
	})
	if err := compareBenchJSON(base, empty, &strings.Builder{}); err == nil {
		t.Fatal("empty gated intersection passed")
	}
}

// TestCompareBenchJSONBadInputs: unreadable or malformed files error.
func TestCompareBenchJSONBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", []BenchRecord{{Name: "EngineDysta", NsPerOp: 1}})
	if err := compareBenchJSON(filepath.Join(dir, "missing.json"), good, &strings.Builder{}); err == nil {
		t.Error("missing baseline accepted")
	}
	mangled := filepath.Join(dir, "mangled.json")
	if err := os.WriteFile(mangled, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBenchJSON(good, mangled, &strings.Builder{}); err == nil {
		t.Error("malformed fresh file accepted")
	}
}
