package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, records []BenchRecord) string {
	t.Helper()
	data, err := json.Marshal(BenchReport{Date: "2026-01-01", Results: records})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBenchJSON covers the regression gate: within-threshold and
// faster entries pass, a >30% slowdown in a gated Engine*/Cluster* entry
// fails, ungated entries never fail, and added/retired entries are
// tolerated.
func TestCompareBenchJSON(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", []BenchRecord{
		{Name: "EngineDysta", NsPerOp: 1000},
		{Name: "ClusterDysta", NsPerOp: 2000},
		{Name: "PredictorStep", NsPerOp: 10},
		{Name: "RetiredBench", NsPerOp: 5},
	})

	ok := writeReport(t, dir, "ok.json", []BenchRecord{
		{Name: "EngineDysta", NsPerOp: 1250},  // +25%: inside threshold
		{Name: "ClusterDysta", NsPerOp: 1500}, // faster
		{Name: "PredictorStep", NsPerOp: 100}, // 10x slower but not gated
		{Name: "BrandNewBench", NsPerOp: 1},   // new entry, not gated
	})
	var out strings.Builder
	if err := compareBenchJSON(base, ok, &out); err != nil {
		t.Fatalf("within-threshold comparison failed: %v\n%s", err, out.String())
	}

	bad := writeReport(t, dir, "bad.json", []BenchRecord{
		{Name: "EngineDysta", NsPerOp: 1400}, // +40%: regression
		{Name: "ClusterDysta", NsPerOp: 2000},
	})
	err := compareBenchJSON(base, bad, &strings.Builder{})
	if err == nil {
		t.Fatal("40% slowdown passed the gate")
	}
	if !strings.Contains(err.Error(), "EngineDysta") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}

	// A comparison whose gated intersection is empty gates nothing and
	// must fail loudly rather than green-light the PR.
	empty := writeReport(t, dir, "empty.json", []BenchRecord{
		{Name: "PredictorStep", NsPerOp: 10},
	})
	if err := compareBenchJSON(base, empty, &strings.Builder{}); err == nil {
		t.Fatal("empty gated intersection passed")
	}
}

// TestCompareBenchJSONBadInputs: unreadable or malformed files error.
func TestCompareBenchJSONBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", []BenchRecord{{Name: "EngineDysta", NsPerOp: 1}})
	if err := compareBenchJSON(filepath.Join(dir, "missing.json"), good, &strings.Builder{}); err == nil {
		t.Error("missing baseline accepted")
	}
	mangled := filepath.Join(dir, "mangled.json")
	if err := os.WriteFile(mangled, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBenchJSON(good, mangled, &strings.Builder{}); err == nil {
		t.Error("malformed fresh file accepted")
	}
}
