// Command dysta-bench regenerates the tables and figures of the
// Sparse-DySta paper on the Go reproduction substrate.
//
// Usage:
//
//	dysta-bench -exp table5          # one experiment
//	dysta-bench -exp all             # every experiment, paper order
//	dysta-bench -exp fig14 -quick    # reduced protocol (fast)
//	dysta-bench -list                # list experiment ids
//
// See DESIGN.md §4 for the experiment index and docs/EXPERIMENTS.md for
// the catalog of every registered experiment with its knobs and the
// paper claim it reproduces.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sparsedysta/internal/exp"
)

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list), 'all', 'ablations', or 'everything'")
		quick     = flag.Bool("quick", false, "use the reduced protocol (fewer seeds/requests)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		seeds     = flag.Int("seeds", 0, "override seed count (0 = protocol default)")
		requests  = flag.Int("requests", 0, "override request count (0 = protocol default)")
		workers   = flag.Int("workers", 0, "parallel simulation workers (0 = all cores, 1 = sequential)")
		engines   = flag.String("engines", "", "override the simulated accelerators: a count (\"4\") or a heterogeneous mix (\"2x1,2x2\"); empty = per-experiment default")
		dispatch  = flag.String("dispatch", "", "override the cluster dispatch policy: rr, jsq, load, blind-load")
		signalIv  = flag.Duration("signal-interval", 0, "staleness bound of the dispatcher's engine-state snapshots (0 = exact state)")
		admit     = flag.String("admission", "", "override the cluster admission policy: none, queue-cap[:N], slo")
		rebal     = flag.String("rebalance", "", "override the cluster migration policy: none, steal, shed")
		rebalIv   = flag.Duration("rebalance-interval", 0, "minimum virtual time between rebalance rounds (0 = migration off)")
		migCost   = flag.Duration("migration-cost", 0, "per-request migration latency penalty in reference units")
		migBudg   = flag.Int("migration-budget", 0, "max total migrations per run (0 = once-per-request rule only)")
		churn     = flag.Bool("churn", false, "override: inject deterministic engine failures (exponential up/down phases of mean -mtbf/-mttr) into every cluster run")
		mtbf      = flag.Duration("mtbf", time.Second, "mean virtual time between failures per engine (with -churn)")
		mttr      = flag.Duration("mttr", 100*time.Millisecond, "mean virtual down-time per failure (with -churn)")
		retryMax  = flag.Int("retry-max", 0, "max restart-from-zero retries per request after a failure (0 = unlimited, with -churn)")
		traffic   = flag.String("traffic", "", "override the arrival process: poisson, mmpp, diurnal, replay:PATH (empty = per-experiment default)")
		burst     = flag.Float64("burst", 0, "mmpp burst-to-quiet rate ratio (0 = default 8, with -traffic mmpp)")
		autoscale = flag.Bool("autoscale", false, "scale the live engine set between -scale-min and -scale-max with the SLO-driven policy")
		stream    = flag.Bool("stream", false, "override: stream arrivals from the generator instead of materializing each cell's request slice (bit-identical schedules)")
		capture   = flag.String("capture", "", "override the result capture mode: full or bounded (empty = per-experiment default)")
		scalPick  = flag.Bool("scalable-pick", false, "override: use the heap-backed sublinear scheduling-pick path for schedulers that support it")
		scaleMin  = flag.Int("scale-min", 0, "autoscaler lower bound on live engines (0 = 1, with -autoscale)")
		scaleMax  = flag.Int("scale-max", 0, "autoscaler upper bound on live engines (0 = cluster size, with -autoscale)")
		outDir    = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
		benchJSON = flag.Bool("json", false,
			"run the hot-path micro-benchmarks and write BENCH_<date>.json (to -out dir, or cwd)")
		benchCompare = flag.String("bench-compare", "",
			"compare two BENCH_*.json files, \"baseline.json,fresh.json\": exit nonzero on a >30% ns/op or allocs/op growth in any Engine*/Cluster* entry (the CI regression gate)")
	)
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *list {
		for _, id := range exp.AllIDs() {
			fmt.Println(id)
		}
		return
	}

	if *benchCompare != "" {
		base, fresh, ok := strings.Cut(*benchCompare, ",")
		if !ok {
			fmt.Fprintln(os.Stderr, "-bench-compare wants \"baseline.json,fresh.json\"")
			os.Exit(2)
		}
		if err := compareBenchJSON(base, fresh, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON {
		dir := *outDir
		if dir == "" {
			dir = "."
		}
		if err := writeBenchJSON(dir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	if *requests > 0 {
		opts.Requests = *requests
	}
	opts.Workers = *workers
	if *engines != "" {
		n, specs, err := exp.ParseEngines(*engines)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Engines = n
		opts.EngineSpecs = specs
	}
	if *dispatch != "" {
		opts.Dispatch = *dispatch
	}
	opts.SignalInterval = *signalIv
	if *admit != "" {
		opts.Admission = *admit
	}
	if *rebal != "" {
		opts.Rebalance = *rebal
	}
	// Half-configured migration would silently never run (interval 0 =
	// migration off; policy "none"/unset ignores every other knob):
	// refuse in both directions rather than regenerate artefacts that
	// misleadingly look rebalanced.
	migrationOff := *rebal == "" || *rebal == "none"
	if !migrationOff && *rebalIv <= 0 {
		fmt.Fprintf(os.Stderr, "-rebalance %s needs a positive -rebalance-interval (0 disables migration)\n", *rebal)
		os.Exit(2)
	}
	if migrationOff && (*rebalIv > 0 || *migCost > 0 || *migBudg > 0) {
		fmt.Fprintln(os.Stderr, "-rebalance-interval/-migration-cost/-migration-budget need -rebalance steal or shed")
		os.Exit(2)
	}
	opts.RebalanceInterval = *rebalIv
	opts.MigrationCost = *migCost
	opts.MigrationBudget = *migBudg
	// Fault injection follows the same switch discipline: -churn arms it,
	// and the availability model without the switch is dead configuration.
	if *churn && (*mtbf <= 0 || *mttr <= 0) {
		fmt.Fprintln(os.Stderr, "-churn needs positive -mtbf and -mttr")
		os.Exit(2)
	}
	if *retryMax < 0 {
		fmt.Fprintln(os.Stderr, "-retry-max must be >= 0 (0 = unlimited)")
		os.Exit(2)
	}
	opts.Churn = *churn
	if *churn {
		opts.MTBF = *mtbf
		opts.MTTR = *mttr
		opts.RetryMax = *retryMax
	}
	opts.Traffic = *traffic
	opts.Burst = *burst
	opts.Autoscale = *autoscale
	opts.ScaleMin = *scaleMin
	opts.ScaleMax = *scaleMax
	opts.Stream = *stream
	if *capture != "" {
		opts.Capture = *capture
	}
	opts.ScalablePick = *scalPick
	// Traffic/autoscaler flags that only make sense together (e.g. -burst
	// without -traffic mmpp, -scale-min above -scale-max) fail here.
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ids := []string{*expID}
	switch *expID {
	case "all":
		ids = exp.IDs()
	case "ablations":
		ids = exp.AblationIDs()
	case "everything":
		ids = exp.AllIDs()
	}
	for _, id := range ids {
		runner, err := exp.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		arts, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		var rendered strings.Builder
		for _, a := range arts {
			rendered.WriteString(a.Render())
			rendered.WriteString("\n")
		}
		fmt.Print(rendered.String())
		fmt.Printf("-- %s regenerated in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(rendered.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
