// Command dysta-sim runs a single multi-DNN scheduling simulation with
// full control over the workload and scheduler, printing the metrics of
// paper §6.1 (ANTT, SLO violation rate, throughput).
//
// Usage:
//
//	dysta-sim -workload attnn -sched Dysta -rate 30 -mslo 10
//	dysta-sim -workload cnn -sched all -rate 3 -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/core"
	"sparsedysta/internal/exp"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// churnFlagSet reports whether the named flag was passed explicitly on
// the command line — its default value alone must not arm fault
// injection.
func churnFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	var (
		wl       = flag.String("workload", "attnn", "workload scenario: attnn, cnn, or a path to a JSON spec (see -dump-spec)")
		schedArg = flag.String("sched", "all", "scheduler: FCFS, SJF, SDRM3, PREMA, Planaria, Dysta, Dysta-w/o-sparse, Oracle, or 'all'")
		rate     = flag.Float64("rate", 0, "arrival rate in req/s (0 = scenario default: 30 attnn, 3 cnn)")
		mslo     = flag.Float64("mslo", 10, "latency SLO multiplier")
		requests = flag.Int("requests", 1000, "requests per run")
		seeds    = flag.Int("seeds", 5, "seeds to average")
		profileN = flag.Int("profile-samples", 100, "offline profiling samples per model-pattern pair")
		evalN    = flag.Int("eval-samples", 400, "evaluation trace pool per model-pattern pair")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = all cores, 1 = sequential)")
		engines  = flag.String("engines", "1", "simulated accelerators: a count (\"4\") or a heterogeneous mix (\"2x1,2x2\" = 2 reference-speed + 2 half-speed); anything beyond one reference engine runs the cluster simulation")
		dispatch = flag.String("dispatch", "rr", "cluster dispatch policy: rr, jsq, load, blind-load")
		signalIv = flag.Duration("signal-interval", 0, "staleness bound of the dispatcher's engine-state snapshots (0 = exact state)")
		admit    = flag.String("admission", "none", "cluster admission policy: none, queue-cap[:N], slo")
		rebal    = flag.String("rebalance", "none", "cluster migration policy: none, steal (idle engines pull), shed (overloaded engines push)")
		rebalIv  = flag.Duration("rebalance-interval", 0, "minimum virtual time between rebalance rounds (0 = migration off)")
		migCost  = flag.Duration("migration-cost", 0, "per-request migration latency penalty in reference units")
		migBudg  = flag.Int("migration-budget", 0, "max total migrations per run (0 = once-per-request rule only)")
		churn    = flag.Bool("churn", false, "inject deterministic engine failures: each engine alternates exponential up/down phases of mean -mtbf/-mttr")
		mtbf     = flag.Duration("mtbf", time.Second, "mean virtual time between failures per engine (with -churn)")
		mttr     = flag.Duration("mttr", 100*time.Millisecond, "mean virtual down-time per failure (with -churn)")
		retryMax = flag.Int("retry-max", 0, "max restart-from-zero retries per request after a failure destroys its progress; past the cap it counts as lost work (0 = unlimited, with -churn)")
		trafArg  = flag.String("traffic", "", "arrival process: poisson (default), mmpp (bursty), diurnal (day/night rate curve), replay:PATH (recorded arrivals CSV)")
		burst    = flag.Float64("burst", 0, "mmpp burst-to-quiet rate ratio (0 = default 8, with -traffic mmpp)")
		autoscl  = flag.Bool("autoscale", false, "scale the live engine set between -scale-min and -scale-max with the SLO-driven policy (drains idle engines, re-joins them under load)")
		stream   = flag.Bool("stream", false, "stream arrivals from the generator instead of materializing the request slice (bit-identical schedules; combine with -capture bounded for memory independent of -requests)")
		capture  = flag.String("capture", "full", "result capture mode: full (per-request outcomes) or bounded (constant-size streaming aggregates; percentiles from a ~3%-error histogram)")
		scalPick = flag.Bool("scalable-pick", false, "use the heap-backed sublinear scheduling-pick path for schedulers that support it (Dysta, SDRM3 exact; PREMA documented-approximate)")
		scaleMin = flag.Int("scale-min", 0, "autoscaler lower bound on live engines (0 = 1, with -autoscale)")
		scaleMax = flag.Int("scale-max", 0, "autoscaler upper bound on live engines (0 = cluster size, with -autoscale)")
		eta      = flag.Float64("eta", core.DefaultConfig().Eta, "Dysta eta (dynamic slack weight)")
		beta     = flag.Float64("beta", core.DefaultConfig().Beta, "Dysta beta (static slack weight)")
		dumpSpec = flag.Bool("dump-spec", false, "print the selected scenario as a JSON spec and exit")
		perModel = flag.Bool("per-model", false, "also print the per-model metric breakdown")
	)
	flag.Parse()

	var sc workload.Scenario
	switch *wl {
	case "attnn":
		sc = workload.MultiAttNN()
		if *rate == 0 {
			*rate = 30
		}
	case "cnn":
		sc = workload.MultiCNN()
		if *rate == 0 {
			*rate = 3
		}
	default:
		f, err := os.Open(*wl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload %q is not attnn/cnn and not a readable spec: %v\n", *wl, err)
			os.Exit(2)
		}
		sc, err = workload.LoadSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *rate == 0 {
			*rate = 10
		}
	}
	if *dumpSpec {
		if err := workload.SaveSpec(os.Stdout, workload.ToSpec(sc)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	nEngines, engineSpecs, err := exp.ParseEngines(*engines)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Half-configured migration would silently never run (interval 0 =
	// migration off, the library's bit-identity anchor; policy "none"
	// ignores every other knob): refuse in both directions rather than
	// report results that misleadingly look rebalanced.
	migrationOff := *rebal == "" || *rebal == "none"
	if !migrationOff && *rebalIv <= 0 {
		fmt.Fprintf(os.Stderr, "-rebalance %s needs a positive -rebalance-interval (0 disables migration)\n", *rebal)
		os.Exit(2)
	}
	if migrationOff && (*rebalIv > 0 || *migCost > 0 || *migBudg > 0) {
		fmt.Fprintln(os.Stderr, "-rebalance-interval/-migration-cost/-migration-budget need -rebalance steal or shed")
		os.Exit(2)
	}
	// Same no-silent-knob discipline for fault injection: -churn is the
	// switch, so an availability model or retry cap without it would be
	// dead configuration.
	if *churn && (*mtbf <= 0 || *mttr <= 0) {
		fmt.Fprintln(os.Stderr, "-churn needs positive -mtbf and -mttr")
		os.Exit(2)
	}
	if !*churn && (*retryMax != 0 || churnFlagSet("mtbf") || churnFlagSet("mttr")) {
		fmt.Fprintln(os.Stderr, "-mtbf/-mttr/-retry-max need -churn")
		os.Exit(2)
	}
	if *retryMax < 0 {
		fmt.Fprintln(os.Stderr, "-retry-max must be >= 0 (0 = unlimited)")
		os.Exit(2)
	}
	opts := exp.Options{
		Seeds:             *seeds,
		Requests:          *requests,
		ProfileSamples:    *profileN,
		EvalSamples:       *evalN,
		Workers:           *workers,
		Engines:           nEngines,
		EngineSpecs:       engineSpecs,
		Dispatch:          *dispatch,
		SignalInterval:    *signalIv,
		Admission:         *admit,
		Rebalance:         *rebal,
		RebalanceInterval: *rebalIv,
		MigrationCost:     *migCost,
		MigrationBudget:   *migBudg,
		Churn:             *churn,
		MTBF:              *mtbf,
		MTTR:              *mttr,
		RetryMax:          *retryMax,
		Traffic:           *trafArg,
		Burst:             *burst,
		Autoscale:         *autoscl,
		ScaleMin:          *scaleMin,
		ScaleMax:          *scaleMax,
		Stream:            *stream,
		Capture:           *capture,
		ScalablePick:      *scalPick,
	}
	// Traffic/autoscaler flags that only make sense together (e.g. -burst
	// without -traffic mmpp, -scale-min above -scale-max, bounds exceeding
	// the -engines cluster) fail here.
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p, err := exp.NewPipeline(sc, opts, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.Eta = *eta
	cfg.Beta = *beta
	specs := exp.WithOracle(exp.StandardScheds())
	specs = append(specs, exp.SchedSpec{Name: "Dysta-w/o-sparse",
		New: func(p *exp.Pipeline) sched.Scheduler { return core.NewWithoutSparse(p.LUT) }})
	if *schedArg != "all" {
		var filtered []exp.SchedSpec
		for _, s := range specs {
			if s.Name == *schedArg {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedArg)
			os.Exit(2)
		}
		specs = filtered
	}
	// Replace the default Dysta spec with the flag-configured one.
	for i := range specs {
		if specs[i].Name == "Dysta" {
			specs[i].New = func(p *exp.Pipeline) sched.Scheduler { return core.New(cfg, p.LUT) }
		}
	}

	results, err := p.RunPoint(specs, *rate, *mslo, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	clustered := nEngines > 1 || len(engineSpecs) > 0
	migrating := *rebal != "none" && *rebal != "" && *rebalIv > 0
	fmt.Printf("workload %s  rate %.1f req/s  M_slo %.0fx  %d requests x %d seeds",
		sc.Name, *rate, *mslo, *requests, *seeds)
	if clustered {
		fmt.Printf("  engines %s (%s dispatch, %v signal interval, %s admission)",
			*engines, *dispatch, *signalIv, *admit)
	}
	if migrating {
		fmt.Printf("  rebalance %s every %v (cost %v)", *rebal, *rebalIv, *migCost)
	}
	if *churn {
		fmt.Printf("  churn mtbf %v mttr %v retry-max %d", *mtbf, *mttr, *retryMax)
	}
	if *trafArg != "" {
		fmt.Printf("  traffic %s", *trafArg)
		if *trafArg == "mmpp" {
			b := *burst
			if b == 0 {
				b = exp.DefaultBurst
			}
			fmt.Printf(" (burst %gx)", b)
		}
	}
	if *autoscl {
		min, max := *scaleMin, *scaleMax
		if min == 0 {
			min = 1
		}
		if max == 0 {
			max = nEngines
			if len(engineSpecs) > 0 {
				max = len(engineSpecs)
			}
		}
		fmt.Printf("  autoscale %d..%d engines", min, max)
	}
	if *stream {
		fmt.Print("  streaming arrivals")
	}
	if *capture == "bounded" {
		fmt.Print("  bounded capture")
	}
	if *scalPick {
		fmt.Print("  scalable picks")
	}
	fmt.Print("\n\n")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "scheduler\tANTT\tviol%\tthroughput\tgoodput\trejected\tmean lat\tp99 lat\tpreemptions"
	if migrating {
		header += "\tmigrations\twin/loss"
	}
	if *churn {
		header += "\tfailovers\tretries\tredirects\tlost"
	}
	if *autoscl {
		header += "\tengine-s\tups\tdowns"
	}
	fmt.Fprintln(tw, header)
	for _, s := range specs {
		r := results[s.Name]
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%.2f\t%.2f\t%d\t%v\t%v\t%d",
			r.Scheduler, r.ANTT, 100*r.ViolationRate, r.Throughput, r.Goodput, r.Rejected,
			r.MeanLatency.Round(time.Microsecond), r.P99Latency.Round(time.Microsecond),
			r.Preemptions)
		if migrating {
			fmt.Fprintf(tw, "\t%d\t%d/%d", r.Migrations, r.MigrationWins, r.MigrationLosses)
		}
		if *churn {
			fmt.Fprintf(tw, "\t%d\t%d\t%d\t%d", r.Failovers, r.Retries, r.Redirects, r.LostWork)
		}
		if *autoscl {
			fmt.Fprintf(tw, "\t%.2f\t%d\t%d", r.EngineSeconds, r.ScaleUps, r.ScaleDowns)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	if *perModel {
		fmt.Println()
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "scheduler\tmodel\trequests\tANTT\tviol%")
		for _, s := range specs {
			r := results[s.Name]
			names := make([]string, 0, len(r.PerModel))
			for name := range r.PerModel {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				m := r.PerModel[name]
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.1f\n",
					r.Scheduler, name, m.Requests, m.ANTT, 100*m.ViolationRate)
			}
		}
		tw.Flush()
	}
}
