// Command dysta-profile runs Phase 1 of the evaluation methodology (paper
// Fig. 7): it processes a synthetic dataset through the hardware simulator
// for one model-pattern pair and writes the per-layer runtime information
// (latency + monitored sparsity) as CSV, or prints the profiling summary
// that would populate Dysta's model-info LUT.
//
// Usage:
//
//	dysta-profile -model bert -samples 200 -out bert.csv
//	dysta-profile -model resnet50 -pattern random -rate 0.8 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "bert", "model name (see -list)")
		patName   = flag.String("pattern", "dense", "weight sparsity pattern: dense, random, nm, channel")
		rate      = flag.Float64("rate", 0, "weight sparsity rate in [0,1)")
		samples   = flag.Int("samples", 100, "inputs to process")
		seed      = flag.Uint64("seed", 1, "dataset seed")
		out       = flag.String("out", "", "CSV output path (default stdout)")
		in        = flag.String("in", "", "summarize an existing runtime-info CSV instead of simulating")
		summary   = flag.Bool("summary", false, "print the LUT summary instead of CSV")
		list      = flag.Bool("list", false, "list model names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range models.Names() {
			fmt.Println(n)
		}
		return
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		key, traces, err := trace.ReadCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printSummary(key, traces, "file:"+*in)
		return
	}

	m, err := models.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pat, err := sparsity.ParsePattern(*patName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var acc accel.Accelerator
	if m.Family == models.CNN {
		acc = eyeriss.NewDefault()
	} else {
		acc = sanger.NewDefault()
	}

	traces, err := trace.Build(acc, trace.BuildConfig{
		Model: m, Pattern: pat, WeightRate: *rate, Samples: *samples, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	key := trace.Key{Model: m.Name, Pattern: pat}

	if *summary {
		printSummary(key, traces, acc.Name())
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, key, traces); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printSummary renders the LUT profile of a trace set.
func printSummary(key trace.Key, traces []trace.SampleTrace, source string) {
	st, err := trace.Summarize(key, traces)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("model-pattern: %v from %s (%d samples)\n", key, source, st.Samples)
	fmt.Printf("avg isolated latency: %v\n", st.AvgTotal)
	fmt.Printf("avg network sparsity: %.3f\n", st.AvgNetworkSparsity)
	fmt.Println("layer  avg-latency  avg-sparsity  lat/sparsity-slope(ms)")
	for l := 0; l < st.NumLayers(); l++ {
		fmt.Printf("%5d  %11v  %12.3f  %10.3f\n",
			l, st.AvgLayerLatency[l], st.AvgLayerSparsity[l], st.LatSparsitySlope[l]/1e6)
	}
}
