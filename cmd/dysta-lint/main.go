// Command dysta-lint is the determinism linter for the sparsedysta
// tree: a multichecker over the five analyzers in internal/analysis
// (detrange, wallclock, seedrand, floatorder, gospawn), scoped per
// package by internal/analysis/suite.
//
// It runs two ways:
//
//	dysta-lint [dir]             standalone: lint every package of the
//	                             module containing dir (default ".")
//	go vet -vettool=$(go env PWD)/dysta-lint ./...
//	                             as a vet tool, driven by the go
//	                             command's unit-checker protocol
//
// Both paths apply the same suite rules; the standalone form
// typechecks from source (GOROOT + module tree) and needs no build
// cache. Exit status: 0 clean, 1 diagnostics reported, 2 failure to
// load or typecheck.
package main

import (
	"fmt"
	"os"
	"strings"

	"sparsedysta/internal/analysis"
	"sparsedysta/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	// The go command's vet driver probes its tool with -V=full (for
	// the build cache key) and -flags (for flag registration) before
	// ever passing a package config.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	dir := "."
	if len(args) > 0 {
		// Accept and ignore ./... style patterns so the natural
		// `dysta-lint ./...` spelling lints the whole module.
		if !strings.HasPrefix(args[0], "-") && !strings.Contains(args[0], "...") {
			dir = args[0]
		}
	}
	os.Exit(standalone(dir))
}

// standalone lints every package of the module enclosing dir.
func standalone(dir string) int {
	root, modPath, err := analysis.FindModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dysta-lint:", err)
		return 2
	}
	dirs, paths, err := analysis.ModulePackages(root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dysta-lint:", err)
		return 2
	}
	loader := analysis.NewLoader(root)
	exit := 0
	for i, d := range dirs {
		analyzers := suite.For(paths[i])
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.Load(d, paths[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "dysta-lint:", err)
			return 2
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dysta-lint:", err)
			return 2
		}
		for _, diag := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(diag.Pos), diag.Analyzer, diag.Message)
			exit = 1
		}
	}
	return exit
}
