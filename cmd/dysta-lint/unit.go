package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"sparsedysta/internal/analysis"
	"sparsedysta/internal/analysis/suite"
)

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg
// for each package when driving a -vettool (cmd/go/internal/work,
// buildVetConfig). Fields the suite does not consume are retained so
// the decode stays strict about nothing and forward-compatible.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitcheck implements one unit of the go vet tool protocol: load the
// package described by cfgPath from its compiled dependencies' export
// data, run the suite's analyzers for its import path, print findings
// to stderr, and return the process exit code.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dysta-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dysta-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command treats the vetx output as a product of this run
	// and caches it; the suite computes no cross-package facts, so an
	// empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("dysta-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dysta-lint:", err)
			return 2
		}
	}
	// Dependencies are vetted only for facts (VetxOnly); with no facts
	// to compute there is nothing to do, which conveniently skips
	// typechecking the entire standard library.
	if cfg.VetxOnly {
		return 0
	}
	analyzers := suite.For(cfg.ImportPath)
	if len(analyzers) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "dysta-lint:", err)
			return 2
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "dysta-lint:", err)
		return 2
	}

	pkg := &analysis.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dysta-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion answers the go command's -V=full probe. The "devel"
// form requires a trailing buildID the driver can use as a cache key;
// hashing the executable makes rebuilds invalidate cached vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Println("dysta-lint version devel buildID=unknown")
		return
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Println("dysta-lint version devel buildID=unknown")
		return
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Println("dysta-lint version devel buildID=unknown")
		return
	}
	fmt.Printf("dysta-lint version devel buildID=%x\n", h.Sum(nil)[:16])
}
