package models

import (
	"math"
	"testing"
)

// gmacs converts a MAC count to GMACs for readability.
func gmacs(n int64) float64 { return float64(n) / 1e9 }

// withinPct reports whether got is within pct percent of want.
func withinPct(got, want, pct float64) bool {
	return math.Abs(got-want) <= want*pct/100
}

// TestPublishedMACCounts pins each model's total MACs to its published
// value. These anchor the latency models: if the architecture descriptions
// drift, every downstream experiment shifts.
func TestPublishedMACCounts(t *testing.T) {
	cases := []struct {
		build func() *Model
		want  float64 // GMACs
		tol   float64 // percent
	}{
		{VGG16, 15.47, 3},
		{ResNet50, 4.09, 5},
		{MobileNet, 0.569, 5},
		{GoogLeNet, 1.5, 10},
		{InceptionV3, 5.7, 10},
		{SSD300, 31.4, 15},
	}
	for _, c := range cases {
		m := c.build()
		got := gmacs(m.TotalMACs())
		if !withinPct(got, c.want, c.tol) {
			t.Errorf("%s: %.3f GMACs, want %.3f ±%.0f%%", m.Name, got, c.want, c.tol)
		}
	}
}

func TestPublishedParamCounts(t *testing.T) {
	cases := []struct {
		build func() *Model
		want  float64 // millions of parameters
		tol   float64 // percent
	}{
		{VGG16, 138, 3},
		{ResNet50, 25.5, 10},
		{MobileNet, 4.2, 10},
	}
	for _, c := range cases {
		m := c.build()
		got := float64(m.TotalParams()) / 1e6
		if !withinPct(got, c.want, c.tol) {
			t.Errorf("%s: %.2fM params, want %.2fM ±%.0f%%", m.Name, got, c.want, c.tol)
		}
	}
}

// TestBERTMACs checks the analytical transformer MAC formula against a
// hand computation for BERT-base at S=384:
// per block = 4*H^2*S (projections) + 2*S^2*H (attention) + 2*H*FFN*S.
func TestBERTMACs(t *testing.T) {
	m := BERTBase()
	const h, s, f = 768, 384, 3072
	perBlock := int64(4*h*h*s) + int64(2*s*s*h) + int64(2*h*f*s)
	want := 12 * perBlock
	if got := m.TotalMACs(); got != want {
		t.Errorf("BERT MACs = %d, want %d", got, want)
	}
}

func TestAttentionMatrixMACs(t *testing.T) {
	b := attnBlock("b", 384, 768, 12, 3072)
	want := int64(2 * 384 * 384 * 768)
	if got := b.AttnMatrixMACs(); got != want {
		t.Errorf("AttnMatrixMACs = %d, want %d", got, want)
	}
	// The attention part must be a minority of block MACs at these sizes;
	// dynamic sparsity acts on it (relevant to the Sanger latency model).
	if frac := float64(b.AttnMatrixMACs()) / float64(b.MACs()); frac > 0.2 {
		t.Errorf("attention fraction %.3f unexpectedly high", frac)
	}
}

func TestLayerCounts(t *testing.T) {
	cases := []struct {
		build func() *Model
		want  int
	}{
		{VGG16, 16},
		{ResNet50, 1 + (3+4+6+3)*3 + 4 + 1}, // conv1 + bottleneck convs + projections + fc
		{MobileNet, 1 + 13*2 + 1},
		{BERTBase, 12},
		{GPT2Small, 12},
		{BARTBase, 12},
	}
	for _, c := range cases {
		m := c.build()
		if got := m.NumLayers(); got != c.want {
			t.Errorf("%s: %d layers, want %d", m.Name, got, c.want)
		}
	}
}

func TestConvGeometry(t *testing.T) {
	l := conv("x", 3, 64, 7, 2, 224, 224, 3)
	if l.OutH != 112 || l.OutW != 112 {
		t.Errorf("7x7/2 pad3 on 224 -> %dx%d, want 112x112", l.OutH, l.OutW)
	}
	l = conv("y", 64, 64, 3, 1, 56, 56, 1)
	if l.OutH != 56 {
		t.Errorf("3x3/1 pad1 on 56 -> %d, want 56", l.OutH)
	}
	l = convRect("z", 8, 16, 1, 7, 1, 17, 17, 0, 3)
	if l.OutH != 17 || l.OutW != 17 {
		t.Errorf("1x7 pad(0,3) on 17 -> %dx%d, want 17x17", l.OutH, l.OutW)
	}
}

func TestDWConvMACs(t *testing.T) {
	l := dwconv("dw", 32, 3, 1, 112, 112, 1)
	want := int64(32 * 3 * 3 * 112 * 112)
	if got := l.MACs(); got != want {
		t.Errorf("depthwise MACs = %d, want %d", got, want)
	}
	// A depthwise conv has Cin-fold fewer MACs than the standard conv of
	// the same shape.
	std := conv("c", 32, 32, 3, 1, 112, 112, 1)
	if std.MACs() != want*32 {
		t.Errorf("dw/std MAC ratio wrong: %d vs %d", l.MACs(), std.MACs())
	}
}

func TestFCMacsEqualParams(t *testing.T) {
	l := fc("f", 4096, 1000)
	if l.MACs() != l.Params() {
		t.Errorf("FC MACs %d != params %d", l.MACs(), l.Params())
	}
}

func TestPoolHasNoMACs(t *testing.T) {
	l := Layer{Name: "p", Kind: Pool, Cin: 64, Cout: 64, InH: 56, InW: 56, OutH: 28, OutW: 28}
	if l.MACs() != 0 || l.Params() != 0 {
		t.Error("pool layer has MACs or params")
	}
	if l.InputElems() == 0 || l.OutputElems() == 0 {
		t.Error("pool layer should still move data")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
		if m.NumLayers() == 0 {
			t.Errorf("%s has no layers", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown model")
	}
}

func TestFamilies(t *testing.T) {
	for _, m := range BenchmarkCNNs() {
		if m.Family != CNN {
			t.Errorf("%s family = %v, want CNN", m.Name, m.Family)
		}
	}
	for _, m := range BenchmarkAttNNs() {
		if m.Family != AttNN {
			t.Errorf("%s family = %v, want AttNN", m.Name, m.Family)
		}
	}
	if CNN.String() != "cnn" || AttNN.String() != "attnn" {
		t.Error("family names wrong")
	}
}

// TestAllLayersWellFormed guards each generated architecture against
// geometry bugs: non-positive dims, mismatched chains, zero MACs on
// compute layers.
func TestAllLayersWellFormed(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		for i, l := range m.Layers {
			switch l.Kind {
			case Conv, DWConv:
				if l.Cin <= 0 || l.Cout <= 0 || l.OutH <= 0 || l.OutW <= 0 {
					t.Errorf("%s layer %d (%s): bad geometry %+v", name, i, l.Name, l)
				}
			case FC:
				if l.Cin <= 0 || l.Cout <= 0 {
					t.Errorf("%s layer %d (%s): bad FC dims", name, i, l.Name)
				}
			case Attention:
				if l.SeqLen <= 0 || l.Hidden <= 0 || l.Heads <= 0 || l.FFNDim <= 0 {
					t.Errorf("%s layer %d (%s): bad attention dims", name, i, l.Name)
				}
			}
			if l.MACs() <= 0 {
				t.Errorf("%s layer %d (%s): MACs = %d", name, i, l.Name, l.MACs())
			}
			if l.Name == "" {
				t.Errorf("%s layer %d unnamed", name, i)
			}
		}
	}
}

// TestLayerNamesUnique ensures trace files keyed by layer name stay
// unambiguous.
func TestLayerNamesUnique(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		seen := map[string]bool{}
		for _, l := range m.Layers {
			if seen[l.Name] {
				t.Errorf("%s: duplicate layer name %q", name, l.Name)
			}
			seen[l.Name] = true
		}
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "conv" || DWConv.String() != "dwconv" ||
		FC.String() != "fc" || Attention.String() != "attn" || Pool.String() != "pool" {
		t.Error("kind names wrong")
	}
}
