// Package models contains the Sparse-DySta benchmark model zoo: layer-level
// architectural descriptions of the seven benchmark networks of paper
// Table 3 (SSD, ResNet-50, VGG-16, MobileNet, BERT, BART, GPT-2) plus
// GoogLeNet and InceptionV3, which the paper profiles for Table 2.
//
// The descriptions carry exactly what the schedulers and hardware simulators
// consume: per-layer shapes, MAC and parameter counts, and activation
// footprints. No weights are involved — scheduling depends only on the
// computational structure (see DESIGN.md §2 for the substitution argument).
package models

import "fmt"

// Kind classifies a layer for the latency models.
type Kind int

const (
	// Conv is a standard 2-D convolution (including 1x1 pointwise).
	Conv Kind = iota
	// DWConv is a depthwise 2-D convolution (one filter per channel).
	DWConv
	// FC is a fully connected (dense) layer.
	FC
	// Attention is one full transformer block: QKV projections, the
	// sparse attention product, output projection and the feed-forward
	// sublayer. AttNN dynamic sparsity (paper §2.3.1) acts on this kind.
	Attention
	// Pool is a pooling layer; it contributes data movement but no MACs.
	Pool
)

// String returns a short layer-kind name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case FC:
		return "fc"
	case Attention:
		return "attn"
	case Pool:
		return "pool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Layer describes one schedulable unit of a model. The paper schedules at
// layer (CNN) or transformer-block (AttNN) granularity (§4.2.2, Fig. 9);
// each Layer here is one such unit.
type Layer struct {
	Name string
	Kind Kind

	// Convolution / FC geometry. FC layers use KH = KW = 1 and
	// OutH = OutW = 1 with Cin/Cout the feature dimensions.
	Cin, Cout  int
	KH, KW     int
	Stride     int
	InH, InW   int
	OutH, OutW int

	// Transformer geometry (Kind == Attention).
	SeqLen, Hidden, Heads, FFNDim int
}

// MACs returns the dense multiply-accumulate count of the layer.
func (l Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.Cout) * int64(l.Cin) * int64(l.KH) * int64(l.KW) *
			int64(l.OutH) * int64(l.OutW)
	case DWConv:
		return int64(l.Cout) * int64(l.KH) * int64(l.KW) *
			int64(l.OutH) * int64(l.OutW)
	case FC:
		return int64(l.Cin) * int64(l.Cout)
	case Attention:
		return l.attnProjMACs() + l.AttnMatrixMACs() + l.ffnMACs()
	default:
		return 0
	}
}

// attnProjMACs counts the QKV and output projection MACs of a block.
func (l Layer) attnProjMACs() int64 {
	h, s := int64(l.Hidden), int64(l.SeqLen)
	return 4 * h * h * s // Q, K, V, and output projections
}

// AttnMatrixMACs counts the attention-matrix MACs of a block: the QK^T
// score computation plus the probability-times-V product. This is the part
// that dynamic attention pruning (Sanger/SpAtten style) sparsifies.
func (l Layer) AttnMatrixMACs() int64 {
	h, s := int64(l.Hidden), int64(l.SeqLen)
	return 2 * s * s * h
}

// ffnMACs counts the feed-forward sublayer MACs of a block.
func (l Layer) ffnMACs() int64 {
	h, s, f := int64(l.Hidden), int64(l.SeqLen), int64(l.FFNDim)
	return 2 * h * f * s
}

// Params returns the layer's weight parameter count.
func (l Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.Cout) * int64(l.Cin) * int64(l.KH) * int64(l.KW)
	case DWConv:
		return int64(l.Cout) * int64(l.KH) * int64(l.KW)
	case FC:
		return int64(l.Cin) * int64(l.Cout)
	case Attention:
		h, f := int64(l.Hidden), int64(l.FFNDim)
		return 4*h*h + 2*h*f
	default:
		return 0
	}
}

// InputElems returns the number of input activation elements the layer
// reads (used by the memory model).
func (l Layer) InputElems() int64 {
	switch l.Kind {
	case Conv, DWConv, Pool:
		return int64(l.Cin) * int64(l.InH) * int64(l.InW)
	case FC:
		return int64(l.Cin)
	case Attention:
		return int64(l.SeqLen) * int64(l.Hidden)
	default:
		return 0
	}
}

// OutputElems returns the number of output activation elements the layer
// writes.
func (l Layer) OutputElems() int64 {
	switch l.Kind {
	case Conv, DWConv, Pool:
		return int64(l.Cout) * int64(l.OutH) * int64(l.OutW)
	case FC:
		return int64(l.Cout)
	case Attention:
		return int64(l.SeqLen) * int64(l.Hidden)
	default:
		return 0
	}
}

// conv constructs a Conv layer, deriving the output size from the input
// size, kernel, stride and implicit "same"-style padding pad.
func conv(name string, cin, cout, k, stride, inH, inW, pad int) Layer {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	return Layer{
		Name: name, Kind: Conv,
		Cin: cin, Cout: cout, KH: k, KW: k, Stride: stride,
		InH: inH, InW: inW, OutH: outH, OutW: outW,
	}
}

// dwconv constructs a depthwise Conv layer.
func dwconv(name string, c, k, stride, inH, inW, pad int) Layer {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	return Layer{
		Name: name, Kind: DWConv,
		Cin: c, Cout: c, KH: k, KW: k, Stride: stride,
		InH: inH, InW: inW, OutH: outH, OutW: outW,
	}
}

// fc constructs a fully connected layer.
func fc(name string, cin, cout int) Layer {
	return Layer{Name: name, Kind: FC, Cin: cin, Cout: cout, KH: 1, KW: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1}
}

// attnBlock constructs one transformer block.
func attnBlock(name string, seqLen, hidden, heads, ffnDim int) Layer {
	return Layer{Name: name, Kind: Attention,
		SeqLen: seqLen, Hidden: hidden, Heads: heads, FFNDim: ffnDim}
}
