package models

import "fmt"

// Family distinguishes the two model classes of the benchmark; it selects
// the target accelerator (Eyeriss-V2 for CNNs, Sanger for AttNNs) exactly
// as in paper §3.3.2.
type Family int

const (
	// CNN models run on the sparse CNN accelerator (Eyeriss-V2).
	CNN Family = iota
	// AttNN models run on the sparse attention accelerator (Sanger).
	AttNN
)

// String returns the family name.
func (f Family) String() string {
	if f == CNN {
		return "cnn"
	}
	return "attnn"
}

// Model is an immutable architectural description of one benchmark network.
type Model struct {
	Name   string
	Family Family
	Layers []Layer
}

// NumLayers returns the number of schedulable layers.
func (m *Model) NumLayers() int { return len(m.Layers) }

// TotalMACs returns the dense MAC count over all layers.
func (m *Model) TotalMACs() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.MACs()
	}
	return sum
}

// TotalParams returns the parameter count over all layers.
func (m *Model) TotalParams() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.Params()
	}
	return sum
}

// builders maps model names to constructors; the registry backs ByName and
// keeps cmd-line tooling in sync with the zoo.
var builders = map[string]func() *Model{
	"vgg16":       VGG16,
	"resnet50":    ResNet50,
	"mobilenet":   MobileNet,
	"ssd":         SSD300,
	"googlenet":   GoogLeNet,
	"inceptionv3": InceptionV3,
	"bert":        BERTBase,
	"gpt2":        GPT2Small,
	"bart":        BARTBase,
}

// Names lists the zoo's model names in a stable order.
func Names() []string {
	return []string{"vgg16", "resnet50", "mobilenet", "ssd", "googlenet",
		"inceptionv3", "bert", "gpt2", "bart"}
}

// ByName constructs the named model, or returns an error listing valid
// names.
func ByName(name string) (*Model, error) {
	if b, ok := builders[name]; ok {
		return b(), nil
	}
	return nil, fmt.Errorf("models: unknown model %q (valid: %v)", name, Names())
}

// BenchmarkCNNs returns fresh instances of the four vision models of paper
// Table 3.
func BenchmarkCNNs() []*Model {
	return []*Model{SSD300(), ResNet50(), VGG16(), MobileNet()}
}

// BenchmarkAttNNs returns fresh instances of the three language models of
// paper Table 3.
func BenchmarkAttNNs() []*Model {
	return []*Model{BERTBase(), BARTBase(), GPT2Small()}
}
