package models

import "fmt"

// This file builds the six CNN architectures of the benchmark. Geometry
// follows the standard torchvision definitions; pooling and normalization
// layers are folded into the layer geometry (they carry no MACs and are not
// independently scheduled — the paper schedules compute layers).

// convRect constructs a Conv layer with a rectangular kernel (used by the
// Inception 1x7/7x1 factorized convolutions).
func convRect(name string, cin, cout, kh, kw, stride, inH, inW, padH, padW int) Layer {
	outH := (inH+2*padH-kh)/stride + 1
	outW := (inW+2*padW-kw)/stride + 1
	return Layer{
		Name: name, Kind: Conv,
		Cin: cin, Cout: cout, KH: kh, KW: kw, Stride: stride,
		InH: inH, InW: inW, OutH: outH, OutW: outW,
	}
}

// VGG16 returns the 16-layer VGG network for 224x224 ImageNet inputs
// (13 convolutions + 3 fully connected layers, ~15.5 GMACs).
func VGG16() *Model {
	return &Model{
		Name:   "vgg16",
		Family: CNN,
		Layers: []Layer{
			conv("conv1_1", 3, 64, 3, 1, 224, 224, 1),
			conv("conv1_2", 64, 64, 3, 1, 224, 224, 1),
			conv("conv2_1", 64, 128, 3, 1, 112, 112, 1),
			conv("conv2_2", 128, 128, 3, 1, 112, 112, 1),
			conv("conv3_1", 128, 256, 3, 1, 56, 56, 1),
			conv("conv3_2", 256, 256, 3, 1, 56, 56, 1),
			conv("conv3_3", 256, 256, 3, 1, 56, 56, 1),
			conv("conv4_1", 256, 512, 3, 1, 28, 28, 1),
			conv("conv4_2", 512, 512, 3, 1, 28, 28, 1),
			conv("conv4_3", 512, 512, 3, 1, 28, 28, 1),
			conv("conv5_1", 512, 512, 3, 1, 14, 14, 1),
			conv("conv5_2", 512, 512, 3, 1, 14, 14, 1),
			conv("conv5_3", 512, 512, 3, 1, 14, 14, 1),
			fc("fc6", 25088, 4096),
			fc("fc7", 4096, 4096),
			fc("fc8", 4096, 1000),
		},
	}
}

// ResNet50 returns the 50-layer residual network for 224x224 inputs
// (~4.1 GMACs). Bottlenecks follow the torchvision layout with the stride
// on the 3x3 convolution and 1x1 projection shortcuts at stage entries.
func ResNet50() *Model {
	m := &Model{Name: "resnet50", Family: CNN}
	m.Layers = append(m.Layers, conv("conv1", 3, 64, 7, 2, 224, 224, 3))

	type stage struct {
		blocks, width, stride, size int
	}
	// width is the bottleneck's inner width; output channels are 4*width.
	// size is the stage's output spatial resolution.
	stages := []stage{
		{blocks: 3, width: 64, stride: 1, size: 56},
		{blocks: 4, width: 128, stride: 2, size: 28},
		{blocks: 6, width: 256, stride: 2, size: 14},
		{blocks: 3, width: 512, stride: 2, size: 7},
	}
	cin := 64 // after conv1 + maxpool (56x56)
	for si, st := range stages {
		inSize := st.size * st.stride
		for b := 0; b < st.blocks; b++ {
			prefix := fmt.Sprintf("res%d_%d", si+2, b)
			stride, sz := 1, st.size
			if b == 0 {
				stride = st.stride
				sz = inSize
			}
			m.Layers = append(m.Layers,
				conv(prefix+"_a", cin, st.width, 1, 1, sz, sz, 0),
				conv(prefix+"_b", st.width, st.width, 3, stride, sz, sz, 1),
				conv(prefix+"_c", st.width, st.width*4, 1, 1, st.size, st.size, 0),
			)
			if b == 0 {
				m.Layers = append(m.Layers,
					conv(prefix+"_proj", cin, st.width*4, 1, stride, sz, sz, 0))
			}
			cin = st.width * 4
		}
	}
	m.Layers = append(m.Layers, fc("fc", 2048, 1000))
	return m
}

// MobileNet returns MobileNetV1 (width 1.0) for 224x224 inputs
// (~570 MMACs): a stem convolution followed by 13 depthwise-separable
// blocks and a classifier.
func MobileNet() *Model {
	m := &Model{Name: "mobilenet", Family: CNN}
	m.Layers = append(m.Layers, conv("conv1", 3, 32, 3, 2, 224, 224, 1))

	type block struct {
		cin, cout, stride, inSize int
	}
	blocks := []block{
		{32, 64, 1, 112},
		{64, 128, 2, 112},
		{128, 128, 1, 56},
		{128, 256, 2, 56},
		{256, 256, 1, 28},
		{256, 512, 2, 28},
		{512, 512, 1, 14},
		{512, 512, 1, 14},
		{512, 512, 1, 14},
		{512, 512, 1, 14},
		{512, 512, 1, 14},
		{512, 1024, 2, 14},
		{1024, 1024, 1, 7},
	}
	for i, b := range blocks {
		outSize := b.inSize / b.stride
		m.Layers = append(m.Layers,
			dwconv(fmt.Sprintf("dw%d", i+1), b.cin, 3, b.stride, b.inSize, b.inSize, 1),
			conv(fmt.Sprintf("pw%d", i+1), b.cin, b.cout, 1, 1, outSize, outSize, 0),
		)
	}
	m.Layers = append(m.Layers, fc("fc", 1024, 1000))
	return m
}

// SSD300 returns the SSD object detector with a VGG-16 backbone for
// 300x300 inputs and 81 output classes (COCO), including the converted
// fc6/fc7 convolutions, the extra feature layers and the multibox heads.
func SSD300() *Model {
	m := &Model{Name: "ssd", Family: CNN}
	add := func(ls ...Layer) { m.Layers = append(m.Layers, ls...) }

	// VGG-16 backbone up to conv5_3 at 300x300 input.
	add(
		conv("conv1_1", 3, 64, 3, 1, 300, 300, 1),
		conv("conv1_2", 64, 64, 3, 1, 300, 300, 1),
		conv("conv2_1", 64, 128, 3, 1, 150, 150, 1),
		conv("conv2_2", 128, 128, 3, 1, 150, 150, 1),
		conv("conv3_1", 128, 256, 3, 1, 75, 75, 1),
		conv("conv3_2", 256, 256, 3, 1, 75, 75, 1),
		conv("conv3_3", 256, 256, 3, 1, 75, 75, 1),
		conv("conv4_1", 256, 512, 3, 1, 38, 38, 1),
		conv("conv4_2", 512, 512, 3, 1, 38, 38, 1),
		conv("conv4_3", 512, 512, 3, 1, 38, 38, 1),
		conv("conv5_1", 512, 512, 3, 1, 19, 19, 1),
		conv("conv5_2", 512, 512, 3, 1, 19, 19, 1),
		conv("conv5_3", 512, 512, 3, 1, 19, 19, 1),
		// fc6/fc7 converted to (dilated) convolutions.
		conv("conv6", 512, 1024, 3, 1, 19, 19, 1),
		conv("conv7", 1024, 1024, 1, 1, 19, 19, 0),
		// Extra feature layers.
		conv("conv8_1", 1024, 256, 1, 1, 19, 19, 0),
		conv("conv8_2", 256, 512, 3, 2, 19, 19, 1),
		conv("conv9_1", 512, 128, 1, 1, 10, 10, 0),
		conv("conv9_2", 128, 256, 3, 2, 10, 10, 1),
		conv("conv10_1", 256, 128, 1, 1, 5, 5, 0),
		conv("conv10_2", 128, 256, 3, 1, 5, 5, 0),
		conv("conv11_1", 256, 128, 1, 1, 3, 3, 0),
		conv("conv11_2", 128, 256, 3, 1, 3, 3, 0),
	)

	// Multibox heads: a localization (4 coords) and a confidence
	// (81 classes) 3x3 convolution per feature map.
	const classes = 81
	heads := []struct {
		name        string
		cin, priors int
		size        int
	}{
		{"conv4_3", 512, 4, 38},
		{"conv7", 1024, 6, 19},
		{"conv8_2", 512, 6, 10},
		{"conv9_2", 256, 6, 5},
		{"conv10_2", 256, 4, 3},
		{"conv11_2", 256, 4, 1},
	}
	for _, h := range heads {
		add(
			conv("loc_"+h.name, h.cin, 4*h.priors, 3, 1, h.size, h.size, 1),
			conv("conf_"+h.name, h.cin, classes*h.priors, 3, 1, h.size, h.size, 1),
		)
	}
	return m
}

// inceptionModule appends a GoogLeNet Inception module's convolutions.
func inceptionModule(m *Model, name string, size, cin, c1, c3r, c3, c5r, c5, pp int) int {
	m.Layers = append(m.Layers,
		conv(name+"_1x1", cin, c1, 1, 1, size, size, 0),
		conv(name+"_3x3r", cin, c3r, 1, 1, size, size, 0),
		conv(name+"_3x3", c3r, c3, 3, 1, size, size, 1),
		conv(name+"_5x5r", cin, c5r, 1, 1, size, size, 0),
		conv(name+"_5x5", c5r, c5, 5, 1, size, size, 2),
		conv(name+"_pool", cin, pp, 1, 1, size, size, 0),
	)
	return c1 + c3 + c5 + pp
}

// GoogLeNet returns the 22-layer Inception-v1 network for 224x224 inputs
// (~1.5 GMACs). It appears in the paper's Table 2 network-sparsity
// profiling.
func GoogLeNet() *Model {
	m := &Model{Name: "googlenet", Family: CNN}
	m.Layers = append(m.Layers,
		conv("conv1", 3, 64, 7, 2, 224, 224, 3),
		conv("conv2_reduce", 64, 64, 1, 1, 56, 56, 0),
		conv("conv2", 64, 192, 3, 1, 56, 56, 1),
	)
	cin := 192
	cin = inceptionModule(m, "3a", 28, cin, 64, 96, 128, 16, 32, 32)
	cin = inceptionModule(m, "3b", 28, cin, 128, 128, 192, 32, 96, 64)
	cin = inceptionModule(m, "4a", 14, cin, 192, 96, 208, 16, 48, 64)
	cin = inceptionModule(m, "4b", 14, cin, 160, 112, 224, 24, 64, 64)
	cin = inceptionModule(m, "4c", 14, cin, 128, 128, 256, 24, 64, 64)
	cin = inceptionModule(m, "4d", 14, cin, 112, 144, 288, 32, 64, 64)
	cin = inceptionModule(m, "4e", 14, cin, 256, 160, 320, 32, 128, 128)
	cin = inceptionModule(m, "5a", 7, cin, 256, 160, 320, 32, 128, 128)
	cin = inceptionModule(m, "5b", 7, cin, 384, 192, 384, 48, 128, 128)
	m.Layers = append(m.Layers, fc("fc", cin, 1000))
	return m
}

// InceptionV3 returns the Inception-v3 network for 299x299 inputs
// (~5.7 GMACs), with the factorized 1x7/7x1 modules of the original paper.
// It appears in the paper's Table 2 profiling.
func InceptionV3() *Model {
	m := &Model{Name: "inceptionv3", Family: CNN}
	add := func(ls ...Layer) { m.Layers = append(m.Layers, ls...) }

	// Stem.
	add(
		conv("stem1", 3, 32, 3, 2, 299, 299, 0),
		conv("stem2", 32, 32, 3, 1, 149, 149, 0),
		conv("stem3", 32, 64, 3, 1, 147, 147, 1),
		conv("stem4", 64, 80, 1, 1, 73, 73, 0),
		conv("stem5", 80, 192, 3, 1, 73, 73, 0),
	)

	// Inception-A modules at 35x35.
	inceptionA := func(name string, cin, poolProj int) int {
		add(
			conv(name+"_1x1", cin, 64, 1, 1, 35, 35, 0),
			conv(name+"_5x5r", cin, 48, 1, 1, 35, 35, 0),
			conv(name+"_5x5", 48, 64, 5, 1, 35, 35, 2),
			conv(name+"_3x3r", cin, 64, 1, 1, 35, 35, 0),
			conv(name+"_3x3a", 64, 96, 3, 1, 35, 35, 1),
			conv(name+"_3x3b", 96, 96, 3, 1, 35, 35, 1),
			conv(name+"_pool", cin, poolProj, 1, 1, 35, 35, 0),
		)
		return 64 + 64 + 96 + poolProj
	}
	cin := 192
	cin = inceptionA("mixed5b", cin, 32)
	cin = inceptionA("mixed5c", cin, 64)
	cin = inceptionA("mixed5d", cin, 64)

	// Reduction-A to 17x17.
	add(
		conv("mixed6a_3x3", cin, 384, 3, 2, 35, 35, 0),
		conv("mixed6a_dblr", cin, 64, 1, 1, 35, 35, 0),
		conv("mixed6a_dbla", 64, 96, 3, 1, 35, 35, 1),
		conv("mixed6a_dblb", 96, 96, 3, 2, 35, 35, 0),
	)
	cin = 384 + 96 + cin

	// Inception-B modules at 17x17 with factorized 7x7 branches.
	inceptionB := func(name string, cin, c7 int) int {
		add(
			conv(name+"_1x1", cin, 192, 1, 1, 17, 17, 0),
			conv(name+"_7x7r", cin, c7, 1, 1, 17, 17, 0),
			convRect(name+"_7x7a", c7, c7, 1, 7, 1, 17, 17, 0, 3),
			convRect(name+"_7x7b", c7, 192, 7, 1, 1, 17, 17, 3, 0),
			conv(name+"_dblr", cin, c7, 1, 1, 17, 17, 0),
			convRect(name+"_dbla", c7, c7, 7, 1, 1, 17, 17, 3, 0),
			convRect(name+"_dblb", c7, c7, 1, 7, 1, 17, 17, 0, 3),
			convRect(name+"_dblc", c7, c7, 7, 1, 1, 17, 17, 3, 0),
			convRect(name+"_dbld", c7, 192, 1, 7, 1, 17, 17, 0, 3),
			conv(name+"_pool", cin, 192, 1, 1, 17, 17, 0),
		)
		return 4 * 192
	}
	cin = inceptionB("mixed6b", cin, 128)
	cin = inceptionB("mixed6c", cin, 160)
	cin = inceptionB("mixed6d", cin, 160)
	cin = inceptionB("mixed6e", cin, 192)

	// Reduction-B to 8x8.
	add(
		conv("mixed7a_3x3r", cin, 192, 1, 1, 17, 17, 0),
		conv("mixed7a_3x3", 192, 320, 3, 2, 17, 17, 0),
		conv("mixed7a_7x7r", cin, 192, 1, 1, 17, 17, 0),
		convRect("mixed7a_7x7a", 192, 192, 1, 7, 1, 17, 17, 0, 3),
		convRect("mixed7a_7x7b", 192, 192, 7, 1, 1, 17, 17, 3, 0),
		conv("mixed7a_7x7c", 192, 192, 3, 2, 17, 17, 0),
	)
	cin = 320 + 192 + cin

	// Inception-C modules at 8x8.
	inceptionC := func(name string, cin int) int {
		add(
			conv(name+"_1x1", cin, 320, 1, 1, 8, 8, 0),
			conv(name+"_3x3r", cin, 384, 1, 1, 8, 8, 0),
			convRect(name+"_3x3a", 384, 384, 1, 3, 1, 8, 8, 0, 1),
			convRect(name+"_3x3b", 384, 384, 3, 1, 1, 8, 8, 1, 0),
			conv(name+"_dblr", cin, 448, 1, 1, 8, 8, 0),
			conv(name+"_dbl3", 448, 384, 3, 1, 8, 8, 1),
			convRect(name+"_dbla", 384, 384, 1, 3, 1, 8, 8, 0, 1),
			convRect(name+"_dblb", 384, 384, 3, 1, 1, 8, 8, 1, 0),
			conv(name+"_pool", cin, 192, 1, 1, 8, 8, 0),
		)
		return 320 + 2*384 + 2*384 + 192
	}
	cin = inceptionC("mixed7b", cin)
	cin = inceptionC("mixed7c", cin)

	m.Layers = append(m.Layers, fc("fc", cin, 1000))
	return m
}
