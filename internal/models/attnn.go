package models

import "fmt"

// This file builds the three attention-based language models of the
// benchmark (paper Table 3). Each schedulable layer is one transformer
// block, matching the paper's per-layer profiling granularity (Fig. 9 plots
// 12 layer indices for BERT and GPT-2).
//
// Sequence lengths reflect each model's benchmark task: BERT runs SQuAD
// question answering (384 tokens, the standard SQuAD configuration), GPT-2
// runs GLUE-style language tasks (256 tokens), and BART runs machine
// translation (128-token segments).

// transformer builds a stack of identical blocks.
func transformer(name string, blocks, seqLen, hidden, heads, ffnDim int) []Layer {
	layers := make([]Layer, 0, blocks)
	for i := 0; i < blocks; i++ {
		layers = append(layers,
			attnBlock(fmt.Sprintf("%s_block%d", name, i), seqLen, hidden, heads, ffnDim))
	}
	return layers
}

// BERTBase returns the 12-block BERT-base encoder (hidden 768, 12 heads,
// FFN 3072) at SQuAD sequence length 384.
func BERTBase() *Model {
	return &Model{
		Name:   "bert",
		Family: AttNN,
		Layers: transformer("enc", 12, 384, 768, 12, 3072),
	}
}

// GPT2Small returns the 12-block GPT-2 small decoder (hidden 768, 12
// heads, FFN 3072) at sequence length 256.
func GPT2Small() *Model {
	return &Model{
		Name:   "gpt2",
		Family: AttNN,
		Layers: transformer("dec", 12, 256, 768, 12, 3072),
	}
}

// BARTBase returns the 12-block BART-base encoder-decoder (6+6 blocks,
// hidden 768, 12 heads, FFN 3072) at sequence length 128.
func BARTBase() *Model {
	m := &Model{Name: "bart", Family: AttNN}
	m.Layers = append(m.Layers, transformer("enc", 6, 128, 768, 12, 3072)...)
	m.Layers = append(m.Layers, transformer("dec", 6, 128, 768, 12, 3072)...)
	return m
}
