package eyeriss

import (
	"testing"
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
)

func denseState() accel.LayerSparsity {
	return accel.LayerSparsity{Pattern: sparsity.Dense}
}

func TestLatencyPositive(t *testing.T) {
	sim := NewDefault()
	for _, m := range models.BenchmarkCNNs() {
		for _, l := range m.Layers {
			if d := sim.LayerLatency(l, denseState()); d <= 0 {
				t.Errorf("%s/%s: non-positive latency %v", m.Name, l.Name, d)
			}
		}
	}
}

func TestSparsityReducesLatency(t *testing.T) {
	sim := NewDefault()
	l := models.VGG16().Layers[2] // conv2_1, solidly compute bound
	dense := sim.LayerLatency(l, denseState())
	weightSparse := sim.LayerLatency(l, accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.8})
	actSparse := sim.LayerLatency(l, accel.LayerSparsity{
		Pattern: sparsity.Dense, ActivationSparsity: 0.5})
	both := sim.LayerLatency(l, accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.8, ActivationSparsity: 0.5})
	if weightSparse >= dense {
		t.Errorf("weight sparsity did not speed up: %v >= %v", weightSparse, dense)
	}
	if actSparse >= dense {
		t.Errorf("activation sparsity did not speed up: %v >= %v", actSparse, dense)
	}
	if both >= weightSparse || both >= actSparse {
		t.Errorf("combined sparsity (%v) not faster than each alone (%v, %v)",
			both, weightSparse, actSparse)
	}
}

// TestPatternMatters verifies the core motivation of paper Fig. 1/4: the
// same sparsity rate with different patterns yields different latencies.
func TestPatternMatters(t *testing.T) {
	sim := NewDefault()
	l := models.ResNet50().Layers[10]
	lat := map[sparsity.Pattern]time.Duration{}
	for _, p := range []sparsity.Pattern{sparsity.RandomPointwise, sparsity.BlockNM, sparsity.ChannelWise} {
		lat[p] = sim.LayerLatency(l, accel.LayerSparsity{
			Pattern: p, WeightRate: 0.8, ActivationSparsity: 0.4})
	}
	if lat[sparsity.RandomPointwise] == lat[sparsity.BlockNM] &&
		lat[sparsity.BlockNM] == lat[sparsity.ChannelWise] {
		t.Errorf("all patterns yield identical latency %v", lat)
	}
	// Random suffers the worst load balance, so at identical rates it
	// should not be the fastest structured option.
	if lat[sparsity.RandomPointwise] < lat[sparsity.BlockNM] {
		t.Errorf("random (%v) faster than N:M (%v)",
			lat[sparsity.RandomPointwise], lat[sparsity.BlockNM])
	}
}

// TestCalibratedModelLatencies pins whole-model sparse latencies to the
// calibration targets derived in DESIGN.md: sparse MobileNet near the
// Eyeriss-V2 paper's measured ~24 ms, and the four-model benchmark mix
// averaging a few hundred ms so that the paper's 3 req/s arrival rate
// produces a moderately loaded system.
func TestCalibratedModelLatencies(t *testing.T) {
	sim := NewDefault()
	sp := accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.8, ActivationSparsity: 0.45}

	mobile := accel.ModelLatency(sim, models.MobileNet(), sp)
	if mobile < 5*time.Millisecond || mobile > 80*time.Millisecond {
		t.Errorf("sparse MobileNet = %v, want within [5ms, 80ms]", mobile)
	}

	var total time.Duration
	for _, m := range models.BenchmarkCNNs() {
		total += accel.ModelLatency(sim, m, sp)
	}
	mean := total / 4
	if mean < 50*time.Millisecond || mean > 500*time.Millisecond {
		t.Errorf("benchmark CNN mean sparse latency = %v, want within [50ms, 500ms]", mean)
	}
}

func TestFCLayersMemoryBound(t *testing.T) {
	sim := NewDefault()
	// VGG-16 fc6 has 102.8M params: its latency must be dominated by the
	// weight-streaming memory term, so extra activation sparsity barely
	// helps while weight sparsity (fewer bytes) does.
	l := models.VGG16().Layers[13]
	if l.Kind != models.FC {
		t.Fatalf("layer 13 is %v, want fc", l.Kind)
	}
	base := sim.LayerLatency(l, accel.LayerSparsity{Pattern: sparsity.RandomPointwise, WeightRate: 0.5})
	moreAct := sim.LayerLatency(l, accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.5, ActivationSparsity: 0.9})
	moreWeight := sim.LayerLatency(l, accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.9})
	if float64(base-moreAct) > 0.1*float64(base) {
		t.Errorf("fc6 activation sparsity changed latency by >10%%: %v -> %v", base, moreAct)
	}
	if moreWeight >= base {
		t.Errorf("fc6 weight sparsity did not reduce latency: %v -> %v", base, moreWeight)
	}
}

func TestMonotoneInActivationSparsity(t *testing.T) {
	sim := NewDefault()
	l := models.ResNet50().Layers[5]
	prev := time.Duration(1 << 62)
	for as := 0.0; as <= 0.9; as += 0.1 {
		d := sim.LayerLatency(l, accel.LayerSparsity{
			Pattern: sparsity.RandomPointwise, WeightRate: 0.5, ActivationSparsity: as})
		if d > prev {
			t.Fatalf("latency increased with sparsity at as=%.1f: %v > %v", as, d, prev)
		}
		prev = d
	}
}

func TestSparsityClamped(t *testing.T) {
	sim := NewDefault()
	l := models.MobileNet().Layers[0]
	d := sim.LayerLatency(l, accel.LayerSparsity{Pattern: sparsity.Dense, ActivationSparsity: 1.5})
	if d <= 0 {
		t.Errorf("over-range sparsity produced non-positive latency %v", d)
	}
	d2 := sim.LayerLatency(l, accel.LayerSparsity{Pattern: sparsity.Dense, ActivationSparsity: -0.5})
	dense := sim.LayerLatency(l, denseState())
	if d2 < dense {
		t.Errorf("negative sparsity accelerated the layer: %v < %v", d2, dense)
	}
}

func TestDepthwisePenalty(t *testing.T) {
	sim := NewDefault()
	dw := models.Layer{Name: "dw", Kind: models.DWConv, Cin: 512, Cout: 512,
		KH: 3, KW: 3, Stride: 1, InH: 14, InW: 14, OutH: 14, OutW: 14}
	st := models.Layer{Name: "c", Kind: models.Conv, Cin: 1, Cout: 512,
		KH: 3, KW: 3, Stride: 1, InH: 14, InW: 14, OutH: 14, OutW: 14}
	// Same MAC count, but the depthwise mapping is less efficient.
	if dw.MACs() != st.MACs() {
		t.Fatalf("test setup: MACs differ %d vs %d", dw.MACs(), st.MACs())
	}
	if sim.LayerLatency(dw, denseState()) <= sim.LayerLatency(st, denseState()) {
		t.Error("depthwise conv not slower than equal-MAC standard conv")
	}
}

func TestInterface(t *testing.T) {
	sim := NewDefault()
	if sim.Name() != "eyeriss-v2" {
		t.Errorf("Name = %q", sim.Name())
	}
	if sim.Family() != models.CNN {
		t.Errorf("Family = %v", sim.Family())
	}
	if sim.Config().PEs != 192 {
		t.Errorf("default PEs = %d, want 192", sim.Config().PEs)
	}
}

// TestGLBSizeMatters verifies the paper's §6.1 modification rationale:
// with the original 1.5 KB banks, dense-activation VGG-16 layers overflow
// the GLB and pay split-mapping passes; the paper's 2.5 KB banks mostly
// absorb them. Under the benchmark's compressed (sparse) activations both
// sizes fit — which is exactly why the enlarged design runs the benchmark
// unhindered.
func TestGLBSizeMatters(t *testing.T) {
	big := New(DefaultConfig())
	small := New(OriginalGLBConfig())
	denseAct := accel.LayerSparsity{Pattern: sparsity.Dense}
	vgg := models.VGG16()
	lBig := accel.ModelLatency(big, vgg, denseAct)
	lSmall := accel.ModelLatency(small, vgg, denseAct)
	if float64(lSmall) < 1.05*float64(lBig) {
		t.Errorf("dense VGG on 1.5KB GLB (%v) not materially slower than on 2.5KB (%v)",
			lSmall, lBig)
	}
	// At the benchmark's activation sparsity the compressed slices fit
	// both sizes: latencies agree within 10%.
	sparseAct := accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.8, ActivationSparsity: 0.45}
	sBig := accel.ModelLatency(big, vgg, sparseAct)
	sSmall := accel.ModelLatency(small, vgg, sparseAct)
	if float64(sSmall) > 1.10*float64(sBig) {
		t.Errorf("sparse VGG should fit both GLB sizes: %v vs %v", sSmall, sBig)
	}

	cfg := DefaultConfig()
	cfg.GLBInputKB = 0
	off := New(cfg)
	l := vgg.Layers[2]
	if off.glbOverflowFactor(l, 1.0) != 1 {
		t.Error("disabled GLB model still charges overflow")
	}
}

// TestGLBOverflowScalesWithDensity: compressed (sparse) activations fit
// the banks more easily.
func TestGLBOverflowScalesWithDensity(t *testing.T) {
	sim := New(OriginalGLBConfig())
	l := models.VGG16().Layers[1] // conv1_2: 64ch x 224 x 3 rows
	dense := sim.glbOverflowFactor(l, 1.0)
	sparse := sim.glbOverflowFactor(l, 0.3)
	if sparse >= dense {
		t.Errorf("sparse overflow factor %v not below dense %v", sparse, dense)
	}
	if dense <= 1 {
		t.Errorf("dense VGG conv1_2 should overflow the original 1.5KB banks, factor %v", dense)
	}
}
