// Package eyeriss implements the analytical Eyeriss-V2 performance model
// used as the sparse CNN accelerator of the benchmark (paper §3.3.2).
//
// Eyeriss-V2 (Chen et al., JETCAS 2019) is a row-stationary accelerator
// with 192 PEs in 16 clusters connected by a hierarchical mesh NoC. It
// skips ineffectual MACs arising from both weight sparsity (static, known
// per model-pattern pair) and activation sparsity (dynamic, per sample) —
// the property that makes per-sample latency input-dependent and motivates
// Dysta's dynamic scheduler.
//
// The model is an analytical roofline: per-layer latency is the maximum of
// a compute term (effective MACs over the PE array's sparse throughput) and
// a memory term (compressed weight + activation traffic over DRAM
// bandwidth), plus a fixed per-layer configuration overhead. An
// implementation-efficiency factor calibrates the analytical optimum
// against the throughput the Eyeriss-V2 paper measures on real sparse
// networks (~42.5 fps on sparse MobileNet); see DESIGN.md §2.
package eyeriss

import (
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
)

// Config holds the hardware parameters of the Eyeriss-V2 model. The zero
// value is not useful; start from DefaultConfig.
type Config struct {
	// PEs is the number of processing elements (16 clusters x 12).
	PEs int
	// ClockHz is the accelerator clock (the paper clocks it at 200 MHz).
	ClockHz float64
	// ImplEfficiency discounts the analytical peak for NoC stalls, buffer
	// refills and mapping fragmentation, calibrated against measured
	// Eyeriss-V2 throughput.
	ImplEfficiency float64
	// DRAMBytesPerCycle is the off-chip bandwidth in bytes per cycle.
	DRAMBytesPerCycle float64
	// BytesPerElement is the quantized datatype width (8-bit).
	BytesPerElement float64
	// LayerOverheadCycles is the fixed configuration cost per layer.
	LayerOverheadCycles float64
	// DWMapEfficiency is the extra mapping efficiency factor for
	// depthwise convolutions, which lack the channel-level reuse the
	// row-stationary dataflow exploits.
	DWMapEfficiency float64
	// GLBInputKB is the per-bank input-activation global-buffer capacity
	// in KB. The paper enlarges it from Eyeriss-V2's original 1.5 KB to
	// 2.5 KB so that large CNN layers' input-row slices fit on chip
	// (§6.1); a layer whose per-bank input slice exceeds the bank must
	// re-fetch its inputs from DRAM once per overflow factor.
	GLBInputKB float64
	// GLBBanks is the number of input-activation banks (one per PE
	// cluster).
	GLBBanks int
}

// DefaultConfig returns the Eyeriss-V2 configuration of the paper's
// evaluation: 192 PEs at 200 MHz with the enlarged 2.5 KB GLB banks.
func DefaultConfig() Config {
	return Config{
		PEs:                 192,
		ClockHz:             200e6,
		ImplEfficiency:      0.22,
		DRAMBytesPerCycle:   4,
		BytesPerElement:     1,
		LayerOverheadCycles: 2000,
		DWMapEfficiency:     0.5,
		GLBInputKB:          2.5,
		GLBBanks:            16,
	}
}

// OriginalGLBConfig returns the configuration with Eyeriss-V2's original
// 1.5 KB input-activation banks, for the GLB-size ablation motivating the
// paper's modification.
func OriginalGLBConfig() Config {
	cfg := DefaultConfig()
	cfg.GLBInputKB = 1.5
	return cfg
}

// Simulator is the Eyeriss-V2 analytical latency model. It is safe for
// concurrent use.
type Simulator struct {
	cfg Config
}

// New returns a Simulator with the given configuration.
func New(cfg Config) *Simulator { return &Simulator{cfg: cfg} }

// NewDefault returns a Simulator with DefaultConfig.
func NewDefault() *Simulator { return New(DefaultConfig()) }

// Name implements accel.Accelerator.
func (s *Simulator) Name() string { return "eyeriss-v2" }

// Family implements accel.Accelerator.
func (s *Simulator) Family() models.Family { return models.CNN }

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// mapEfficiency estimates how fully a layer's output rows occupy the PE
// array: work that does not divide evenly across PEs leaves the final wave
// partially idle.
func (s *Simulator) mapEfficiency(l models.Layer) float64 {
	rows := int64(l.Cout) * int64(l.OutH)
	if l.Kind == models.FC {
		rows = int64(l.Cout)
	}
	if rows <= 0 {
		return 1
	}
	pes := int64(s.cfg.PEs)
	waves := (rows + pes - 1) / pes
	eff := float64(rows) / float64(waves*pes)
	if l.Kind == models.DWConv {
		eff *= s.cfg.DWMapEfficiency
	}
	return eff
}

// LayerLatency implements accel.Accelerator. Both weight and activation
// sparsity are zero-skipped; the realizable fraction of the ideal skip
// depends on the weight pattern (sparsity.DefaultEfficiency), and
// channel-wise masks see denser surviving activations (importance bias).
func (s *Simulator) LayerLatency(l models.Layer, sp accel.LayerSparsity) time.Duration {
	density := sp.Density()
	if density < 0 {
		density = 0
	}
	weightKeep := 1 - sp.WeightRate
	if l.Kind == models.DWConv {
		// Depthwise layers are conventionally left unpruned (negligible
		// parameter count); only activation sparsity applies.
		weightKeep = 1
	}
	eff := sparsity.DefaultEfficiency(sp.Pattern)
	effDensity := density
	if sp.Pattern == sparsity.ChannelWise {
		// Surviving channels of a magnitude-pruned model carry denser
		// activations (see sparsity.LayerMask.ValidMACFraction).
		const importanceBias = 0.75
		effDensity = 1 - (1-density)*importanceBias
	}

	glb := s.glbOverflowFactor(l, density)
	effMACs := float64(l.MACs()) * weightKeep * effDensity
	throughput := float64(s.cfg.PEs) * eff.Compute * s.mapEfficiency(l) * s.cfg.ImplEfficiency
	computeCycles := effMACs / throughput * glb

	weightBytes := float64(l.Params()) * weightKeep * eff.Storage * s.cfg.BytesPerElement
	// Input activations are stored compressed (zero-skipping formats) and
	// re-streamed once per split mapping pass; outputs are written
	// uncompressed before the next layer's encoder.
	inBytes := float64(l.InputElems()) * density * s.cfg.BytesPerElement * glb
	actBytes := inBytes + float64(l.OutputElems())*s.cfg.BytesPerElement
	memCycles := (weightBytes + actBytes) / s.cfg.DRAMBytesPerCycle

	cycles := computeCycles
	if memCycles > cycles {
		cycles = memCycles
	}
	cycles += s.cfg.LayerOverheadCycles
	return time.Duration(cycles / s.cfg.ClockHz * float64(time.Second))
}

// glbOverflowFactor models the GLB capacity constraint of the
// row-stationary mapping: each PE cluster's bank must hold its slice of a
// KH-row input window (Cin x InW x KH compressed elements across the
// banks) for the window to be reused across output channels. A layer
// whose slice overflows the bank is split into multiple mapping passes,
// each re-streaming inputs and leaving the array partially idle — the
// reason the paper enlarges the banks from 1.5 KB to 2.5 KB for
// VGG/ResNet-scale layers (§6.1). The factor is the slow-down multiple
// (1 = fits).
func (s *Simulator) glbOverflowFactor(l models.Layer, density float64) float64 {
	if s.cfg.GLBInputKB <= 0 || s.cfg.GLBBanks <= 0 || l.Kind == models.FC {
		return 1
	}
	slice := float64(l.Cin) * float64(l.InW) * float64(l.KH) * density *
		s.cfg.BytesPerElement / float64(s.cfg.GLBBanks)
	capacity := s.cfg.GLBInputKB * 1024
	if slice <= capacity {
		return 1
	}
	factor := slice / capacity
	if factor > 4 {
		factor = 4 // deeper tiling bounds the worst case
	}
	return factor
}

var _ accel.Accelerator = (*Simulator)(nil)
