package sanger

import (
	"math"
	"testing"
	"testing/quick"

	"sparsedysta/internal/rng"
)

func TestPackAndSplitExact(t *testing.T) {
	cases := []struct {
		rows      []int
		lanes     int
		rounds    int
		occupancy float64
	}{
		// Two half-rows pack into one round.
		{[]int{4, 4}, 8, 1, 1.0},
		// One long row splits across two rounds.
		{[]int{12}, 8, 2, 0.75},
		// Perfectly balanced full rows.
		{[]int{8, 8, 8}, 8, 3, 1.0},
		// Zero rows are skipped entirely.
		{[]int{0, 0, 8}, 8, 1, 1.0},
		// Mixed 7+5+4 over lanes 8: sub-lane rows cannot be split, so
		// first-fit-decreasing needs three rounds ([7],[5],[4]) despite
		// the LP bound of two.
		{[]int{7, 5, 4}, 8, 3, 16.0 / 24.0},
	}
	for _, c := range cases {
		got := PackAndSplit(c.rows, c.lanes)
		if got.Rounds != c.rounds {
			t.Errorf("PackAndSplit(%v, %d).Rounds = %d, want %d",
				c.rows, c.lanes, got.Rounds, c.rounds)
		}
		if math.Abs(got.Occupancy-c.occupancy) > 1e-9 {
			t.Errorf("PackAndSplit(%v, %d).Occupancy = %.3f, want %.3f",
				c.rows, c.lanes, got.Occupancy, c.occupancy)
		}
	}
}

func TestPackAndSplitDegenerate(t *testing.T) {
	if got := PackAndSplit(nil, 8); got.Rounds != 0 || got.Occupancy != 0 {
		t.Errorf("empty input: %+v", got)
	}
	if got := PackAndSplit([]int{5}, 0); got.Rounds != 0 {
		t.Errorf("zero lanes: %+v", got)
	}
	if got := PackAndSplit([]int{0, 0}, 8); got.Rounds != 0 {
		t.Errorf("all-zero rows: %+v", got)
	}
}

// TestPackOccupancyBounds: occupancy is in (0, 1] and rounds are at least
// the bin-packing lower bound ceil(total/lanes).
func TestPackOccupancyBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		lanes := 1 + r.Intn(64)
		rows := make([]int, n)
		total := 0
		for i := range rows {
			rows[i] = r.Intn(3 * lanes)
			total += rows[i]
		}
		got := PackAndSplit(rows, lanes)
		if total == 0 {
			return got.Rounds == 0
		}
		lower := (total + lanes - 1) / lanes
		if got.Rounds < lower {
			return false
		}
		return got.Occupancy > 0 && got.Occupancy <= 1+1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPackingBeatsNaive: first-fit-decreasing packing needs no more
// rounds than the naive one-row-per-round schedule.
func TestPackingBeatsNaive(t *testing.T) {
	r := rng.New(3)
	rows := make([]int, 64)
	naive := 0
	for i := range rows {
		rows[i] = 1 + r.Intn(16)
		naive++ // one round per non-empty row at lanes >= max nnz
	}
	got := PackAndSplit(rows, 16)
	if got.Rounds > naive {
		t.Errorf("packed rounds %d exceed naive %d", got.Rounds, naive)
	}
	if got.Occupancy < 0.5 {
		t.Errorf("packing occupancy %.3f below 0.5 on short rows", got.Occupancy)
	}
}

// TestMeasureLoadBalanceCurve: occupancy stays high (the point of
// Sanger's design) and does not collapse at high sparsity.
func TestMeasureLoadBalanceCurve(t *testing.T) {
	r := rng.New(4)
	for _, s := range []float64{0.7, 0.85, 0.95} {
		eff := MeasureLoadBalance(r, 384, 64, 20, s)
		if eff < 0.55 || eff > 1.0 {
			t.Errorf("sparsity %.2f: occupancy %.3f outside [0.55, 1.0]", s, eff)
		}
	}
}

// TestDefaultLoadBalanceCalibrated ties the DefaultConfig constant to the
// packing model: pure pack-and-split occupancy at the benchmark's
// operating sparsity (~0.9 for BERT/GPT-2) is an upper bound on the
// configured LoadBalanceEff, which additionally absorbs decode and skip
// bubbles in the sparse datapath; the constant must sit within [60%,
// 100%] of the measured occupancy.
func TestDefaultLoadBalanceCalibrated(t *testing.T) {
	r := rng.New(5)
	measured := MeasureLoadBalance(r, 384, 64, 50, 0.9)
	cfg := DefaultConfig()
	if cfg.LoadBalanceEff > measured {
		t.Errorf("configured LoadBalanceEff %.2f above packing occupancy %.2f",
			cfg.LoadBalanceEff, measured)
	}
	if cfg.LoadBalanceEff < 0.6*measured {
		t.Errorf("configured LoadBalanceEff %.2f implausibly far below occupancy %.2f",
			cfg.LoadBalanceEff, measured)
	}
}

func TestMeasureLoadBalanceDegenerate(t *testing.T) {
	r := rng.New(6)
	if got := MeasureLoadBalance(r, 0, 64, 10, 0.9); got != 0 {
		t.Errorf("zero seqLen: %v", got)
	}
	if got := MeasureLoadBalance(r, 64, 64, 0, 0.9); got != 0 {
		t.Errorf("zero samples: %v", got)
	}
}
