package sanger

import (
	"testing"
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/models"
)

func attnState(as float64) accel.LayerSparsity {
	return accel.LayerSparsity{ActivationSparsity: as}
}

func TestLatencyPositive(t *testing.T) {
	sim := NewDefault()
	for _, m := range models.BenchmarkAttNNs() {
		for _, l := range m.Layers {
			if d := sim.LayerLatency(l, attnState(0.9)); d <= 0 {
				t.Errorf("%s/%s: non-positive latency %v", m.Name, l.Name, d)
			}
		}
	}
}

func TestMonotoneInAttentionSparsity(t *testing.T) {
	sim := NewDefault()
	l := models.BERTBase().Layers[0]
	prev := time.Duration(1 << 62)
	for as := 0.0; as <= 1.0; as += 0.05 {
		d := sim.LayerLatency(l, attnState(as))
		if d > prev {
			t.Fatalf("latency increased with sparsity at as=%.2f: %v > %v", as, d, prev)
		}
		prev = d
	}
}

// TestDynamicRange verifies the calibration behind paper Fig. 2: across the
// benchmark's attention-sparsity range (~0.7 to ~0.98) per-block latency
// varies by roughly 2-3x, which normalizes to the 0.6-1.8 spread the paper
// profiles on BERT.
func TestDynamicRange(t *testing.T) {
	sim := NewDefault()
	l := models.BERTBase().Layers[11]
	slow := sim.LayerLatency(l, attnState(0.70))
	fast := sim.LayerLatency(l, attnState(0.98))
	ratio := float64(slow) / float64(fast)
	if ratio < 1.8 || ratio > 4.0 {
		t.Errorf("latency ratio across sparsity range = %.2f, want within [1.8, 4.0]", ratio)
	}
}

// TestCalibratedModelLatencies pins whole-model latencies to the DESIGN.md
// targets: the three-model benchmark mix must average tens of ms so the
// paper's 30 req/s arrival rate loads the system near capacity.
func TestCalibratedModelLatencies(t *testing.T) {
	sim := NewDefault()
	var total time.Duration
	lat := map[string]time.Duration{}
	for _, m := range models.BenchmarkAttNNs() {
		d := accel.ModelLatency(sim, m, attnState(0.9))
		lat[m.Name] = d
		total += d
	}
	mean := total / 3
	if mean < 10*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("benchmark AttNN mean latency = %v, want within [10ms, 60ms]", mean)
	}
	// BERT (S=384) must be the slowest, BART (S=128) the fastest.
	if !(lat["bert"] > lat["gpt2"] && lat["gpt2"] > lat["bart"]) {
		t.Errorf("model latency ordering wrong: %v", lat)
	}
}

func TestClamping(t *testing.T) {
	sim := NewDefault()
	l := models.GPT2Small().Layers[0]
	if d := sim.LayerLatency(l, attnState(1.5)); d <= 0 {
		t.Errorf("as>1 produced non-positive latency %v", d)
	}
	if d := sim.LayerLatency(l, attnState(-1)); d < sim.LayerLatency(l, attnState(0)) {
		t.Error("as<0 accelerated the layer")
	}
}

// TestNonAttentionFallback: the simulator accepts plain layers (it is the
// NPU for the whole model, including any classifier head).
func TestNonAttentionFallback(t *testing.T) {
	sim := NewDefault()
	l := models.Layer{Name: "head", Kind: models.FC, Cin: 768, Cout: 2}
	if d := sim.LayerLatency(l, attnState(0.9)); d <= 0 {
		t.Errorf("FC fallback latency %v", d)
	}
}

func TestWeightRateIgnoredForAttention(t *testing.T) {
	sim := NewDefault()
	l := models.BERTBase().Layers[0]
	a := sim.LayerLatency(l, accel.LayerSparsity{ActivationSparsity: 0.9})
	b := sim.LayerLatency(l, accel.LayerSparsity{ActivationSparsity: 0.9, WeightRate: 0.9})
	if a != b {
		t.Errorf("weight rate changed AttNN latency: %v vs %v", a, b)
	}
}

func TestInterface(t *testing.T) {
	sim := NewDefault()
	if sim.Name() != "sanger" {
		t.Errorf("Name = %q", sim.Name())
	}
	if sim.Family() != models.AttNN {
		t.Errorf("Family = %v", sim.Family())
	}
	if sim.Config().DensePEs != 1024 {
		t.Errorf("default DensePEs = %d", sim.Config().DensePEs)
	}
}
