package sanger

import (
	"sort"

	"sparsedysta/internal/rng"
)

// This file implements Sanger's load-balancing scheme ("pack and split"):
// after the lightweight predictor thresholds the attention matrix, rows
// have widely varying non-zero counts. The reconfigurable systolic array
// processes `lanes` elements per PE row per round; long rows are split
// across rounds and short rows are packed together, so the achieved
// occupancy — not the raw sparsity — determines the speedup. The
// DefaultConfig's LoadBalanceEff constant is calibrated from this model at
// the benchmark's operating sparsity (see TestDefaultLoadBalanceCalibrated).

// PackStats summarizes one scheduling of a sparse matrix onto the array.
type PackStats struct {
	// Rounds is the number of array passes needed.
	Rounds int
	// Occupancy is the fraction of PE-lane slots doing useful work:
	// totalNNZ / (Rounds * lanes).
	Occupancy float64
}

// PackAndSplit schedules rows with the given non-zero counts onto an
// array row of `lanes` element slots using split-then-first-fit-decreasing
// packing, and returns the resulting stats. Zero rows are skipped.
func PackAndSplit(rowNNZ []int, lanes int) PackStats {
	if lanes <= 0 {
		return PackStats{}
	}
	var total int
	var chunks []int
	for _, nnz := range rowNNZ {
		if nnz <= 0 {
			continue
		}
		total += nnz
		// Split long rows into full-lane chunks plus a remainder.
		for nnz > lanes {
			chunks = append(chunks, lanes)
			nnz -= lanes
		}
		chunks = append(chunks, nnz)
	}
	if total == 0 {
		return PackStats{}
	}
	// First-fit decreasing over round capacities.
	sort.Sort(sort.Reverse(sort.IntSlice(chunks)))
	var free []int // remaining capacity per round
	for _, c := range chunks {
		placed := false
		for i, f := range free {
			if f >= c {
				free[i] -= c
				placed = true
				break
			}
		}
		if !placed {
			free = append(free, lanes-c)
		}
	}
	rounds := len(free)
	return PackStats{
		Rounds:    rounds,
		Occupancy: float64(total) / float64(rounds*lanes),
	}
}

// MeasureLoadBalance draws synthetic thresholded attention masks at the
// given sparsity (each of seqLen rows keeps Binomial(seqLen, 1-sparsity)
// entries, with row-level correlation from a shared prompt factor) and
// returns the mean occupancy achieved by pack-and-split over samples.
func MeasureLoadBalance(r *rng.Source, seqLen, lanes, samples int, sparsity float64) float64 {
	if samples <= 0 || seqLen <= 0 {
		return 0
	}
	var sum float64
	rows := make([]int, seqLen)
	for s := 0; s < samples; s++ {
		// Rows share a sample-level factor (some prompts prune harder)
		// plus row-level variation — the imbalance the packer must absorb.
		base := sparsity + 0.03*r.Norm()
		for i := range rows {
			keep := 1 - base + 0.05*r.Norm()
			if keep < 0 {
				keep = 0
			}
			if keep > 1 {
				keep = 1
			}
			nnz := int(keep*float64(seqLen) + 0.5)
			rows[i] = nnz
		}
		sum += PackAndSplit(rows, lanes).Occupancy
	}
	return sum / float64(samples)
}
