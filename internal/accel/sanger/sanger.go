// Package sanger implements the analytical Sanger performance model used
// as the sparse attention accelerator of the benchmark (paper §3.3.2).
//
// Sanger (Lu et al., MICRO 2021) accelerates dynamically pruned attention:
// a lightweight predictor thresholds the attention matrix, and a
// reconfigurable systolic array executes the surviving entries with
// load-balanced pack-and-split scheduling. The benchmark drives it with
// threshold-pruned BERT, GPT-2 and BART (paper §3.2), whose per-sample
// attention sparsity is the dynamic signal Dysta monitors.
//
// The model splits one transformer block into:
//
//   - a dense part (QKV/output projections + FFN) on the dense systolic
//     datapath, scaled by cascade token pruning — highly sparse samples
//     drop uninformative tokens, shrinking the effective sequence length
//     (SpAtten-style; this is what makes "simple prompts" fast in the
//     paper's Fig. 1);
//   - a sparse part (the score and context products) on the load-balanced
//     sparse datapath, scaled by the surviving attention density.
//
// Latency is the roofline of compute and weight-streaming memory traffic
// plus a per-block overhead.
package sanger

import (
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/models"
)

// Config holds the hardware parameters of the Sanger model. Start from
// DefaultConfig.
type Config struct {
	// DensePEs is the MAC count of the dense systolic datapath.
	DensePEs int
	// SparsePEs is the MAC count of the sparse (attention) datapath.
	SparsePEs int
	// ClockHz is the accelerator clock.
	ClockHz float64
	// LoadBalanceEff is the fraction of sparse-datapath peak realized by
	// Sanger's pack-and-split load balancing.
	LoadBalanceEff float64
	// TokenPruneSlope maps attention sparsity to the fraction of tokens
	// cascade-pruned from the dense datapath: effSeq = S*(1 - slope*as).
	TokenPruneSlope float64
	// DRAMBytesPerCycle is the weight-streaming bandwidth in bytes/cycle.
	DRAMBytesPerCycle float64
	// BytesPerElement is the datatype width (8-bit quantized).
	BytesPerElement float64
	// BlockOverheadCycles is the fixed cost per transformer block.
	BlockOverheadCycles float64
}

// DefaultConfig returns the Sanger configuration used by the reproduction:
// a 32x32 dense array at 250 MHz with a 64-lane sparse datapath. The clock
// and token-prune slope are calibrated (DESIGN.md §2) so that (i) per-block
// latency varies ~2.5x across the benchmark's attention-sparsity range,
// normalizing to the 0.6-1.8 spread of paper Fig. 2, and (ii) the
// three-model benchmark mix averages ~25 ms, making the paper's 30 req/s
// arrival rate a ~0.75-utilization operating point as in its evaluation.
func DefaultConfig() Config {
	return Config{
		DensePEs:            1024,
		SparsePEs:           64,
		ClockHz:             210e6,
		LoadBalanceEff:      0.70,
		TokenPruneSlope:     0.8,
		DRAMBytesPerCycle:   32,
		BytesPerElement:     1,
		BlockOverheadCycles: 5000,
	}
}

// Simulator is the Sanger analytical latency model. It is safe for
// concurrent use.
type Simulator struct {
	cfg Config
}

// New returns a Simulator with the given configuration.
func New(cfg Config) *Simulator { return &Simulator{cfg: cfg} }

// NewDefault returns a Simulator with DefaultConfig.
func NewDefault() *Simulator { return New(DefaultConfig()) }

// Name implements accel.Accelerator.
func (s *Simulator) Name() string { return "sanger" }

// Family implements accel.Accelerator.
func (s *Simulator) Family() models.Family { return models.AttNN }

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// LayerLatency implements accel.Accelerator. For Attention layers the
// ActivationSparsity field is the pruned fraction of the attention matrix;
// WeightRate is ignored (the benchmark's AttNN sparsification is dynamic
// only, paper §3.2). Non-attention layers fall back to the dense datapath.
func (s *Simulator) LayerLatency(l models.Layer, sp accel.LayerSparsity) time.Duration {
	as := sp.ActivationSparsity
	if as < 0 {
		as = 0
	}
	if as > 1 {
		as = 1
	}

	var computeCycles float64
	var weightBytes float64
	switch l.Kind {
	case models.Attention:
		// Cascade token pruning shortens the sequence seen by the dense
		// datapath; the attention product additionally keeps only the
		// surviving density of entries.
		seqKeep := 1 - s.cfg.TokenPruneSlope*as
		denseMACs := float64(l.MACs()-l.AttnMatrixMACs()) * seqKeep
		attnMACs := float64(l.AttnMatrixMACs()) * seqKeep * seqKeep * (1 - as)

		denseCycles := denseMACs / float64(s.cfg.DensePEs)
		sparseCycles := attnMACs / (float64(s.cfg.SparsePEs) * s.cfg.LoadBalanceEff)
		computeCycles = denseCycles + sparseCycles
		weightBytes = float64(l.Params()) * s.cfg.BytesPerElement
	default:
		computeCycles = float64(l.MACs()) / float64(s.cfg.DensePEs)
		weightBytes = float64(l.Params()) * s.cfg.BytesPerElement
	}

	memCycles := weightBytes / s.cfg.DRAMBytesPerCycle
	cycles := computeCycles
	if memCycles > cycles {
		cycles = memCycles
	}
	cycles += s.cfg.BlockOverheadCycles
	return time.Duration(cycles / s.cfg.ClockHz * float64(time.Second))
}

var _ accel.Accelerator = (*Simulator)(nil)
