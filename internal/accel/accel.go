// Package accel defines the accelerator abstraction of the Sparse-DySta
// evaluation methodology (paper §3.3.2, Fig. 7 "Phase 1"): a hardware
// performance model that maps one layer plus its sparsity state to a
// latency. Two implementations live in subpackages: accel/eyeriss for
// sparse CNNs and accel/sanger for sparse attention NNs.
package accel

import (
	"time"

	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
)

// LayerSparsity carries the sparsity state of one layer execution: the
// static weight-side configuration and the dynamic, input-dependent
// activation (or attention) sparsity of the current sample.
type LayerSparsity struct {
	// Pattern is the weight sparsity pattern of the model instance.
	Pattern sparsity.Pattern
	// WeightRate is the static weight sparsity in [0,1). Zero for AttNN
	// models, whose benchmark sparsification is dynamic (paper §3.2).
	WeightRate float64
	// ActivationSparsity is the dynamic sparsity of this sample at this
	// layer: ReLU-induced activation sparsity for CNNs, pruned-attention
	// sparsity for AttNNs. In [0,1].
	ActivationSparsity float64
}

// Density returns the non-zero activation fraction.
func (s LayerSparsity) Density() float64 { return 1 - s.ActivationSparsity }

// Accelerator is a per-layer latency model for one hardware target.
type Accelerator interface {
	// Name identifies the accelerator in traces and reports.
	Name() string
	// Family reports which model family the accelerator serves.
	Family() models.Family
	// LayerLatency returns the execution time of one layer under the
	// given sparsity state. Implementations must be deterministic.
	LayerLatency(l models.Layer, sp LayerSparsity) time.Duration
}

// ModelLatency sums LayerLatency over every layer of m with uniform
// sparsity state, a convenience for calibration and tests.
func ModelLatency(a Accelerator, m *models.Model, sp LayerSparsity) time.Duration {
	var total time.Duration
	for _, l := range m.Layers {
		total += a.LayerLatency(l, sp)
	}
	return total
}
