package sparsity

import (
	"math"
	"testing"
	"testing/quick"

	"sparsedysta/internal/rng"
)

func mustGenerate(t *testing.T, r *rng.Source, p Pattern, cfg MaskConfig) *LayerMask {
	t.Helper()
	m, err := Generate(r, p, cfg)
	if err != nil {
		t.Fatalf("Generate(%v): %v", p, err)
	}
	return m
}

func TestPatternString(t *testing.T) {
	cases := map[Pattern]string{
		Dense: "dense", RandomPointwise: "random", BlockNM: "nm", ChannelWise: "channel",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if got := Pattern(99).String(); got != "Pattern(99)" {
		t.Errorf("unknown pattern String() = %q", got)
	}
}

func TestParsePatternRoundTrip(t *testing.T) {
	for _, p := range Patterns() {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("bogus"); err == nil {
		t.Error("ParsePattern accepted bogus name")
	}
}

func TestDenseMask(t *testing.T) {
	cfg := MaskConfig{Cin: 8, Cout: 16, KH: 3, KW: 3}
	m := mustGenerate(t, rng.New(1), Dense, cfg)
	if m.Rate() != 0 {
		t.Errorf("dense rate = %v", m.Rate())
	}
	if m.TotalKept != m.TotalWeights {
		t.Errorf("dense kept %d of %d", m.TotalKept, m.TotalWeights)
	}
	if m.TotalWeights != 8*16*3*3 {
		t.Errorf("TotalWeights = %d", m.TotalWeights)
	}
}

func TestRandomMaskRate(t *testing.T) {
	cfg := MaskConfig{Cin: 64, Cout: 128, KH: 3, KW: 3, Rate: 0.8}
	m := mustGenerate(t, rng.New(2), RandomPointwise, cfg)
	if got := m.Rate(); math.Abs(got-0.8) > 0.01 {
		t.Errorf("random mask rate = %v, want ~0.8", got)
	}
	// All channels survive under unstructured pruning.
	for c, kept := range m.ChannelKept {
		if !kept {
			t.Fatalf("channel %d pruned under random pattern", c)
		}
	}
}

func TestRandomMaskChannelVariance(t *testing.T) {
	cfg := MaskConfig{Cin: 256, Cout: 64, KH: 3, KW: 3, Rate: 0.9}
	m := mustGenerate(t, rng.New(3), RandomPointwise, cfg)
	// Kept counts should vary across channels (binomial spread), unlike
	// the exactly-balanced N:M pattern.
	first := m.KeptPerCin[0]
	same := true
	for _, k := range m.KeptPerCin[1:] {
		if k != first {
			same = false
			break
		}
	}
	if same {
		t.Error("random mask has identical kept counts in every channel")
	}
}

func TestNMMask(t *testing.T) {
	cfg := MaskConfig{Cin: 32, Cout: 64, KH: 1, KW: 1, N: 2, M: 4}
	m := mustGenerate(t, rng.New(4), BlockNM, cfg)
	if got := m.Rate(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("2:4 rate = %v, want 0.5", got)
	}
	for c, k := range m.KeptPerCin {
		if k != m.KeptPerCin[0] {
			t.Fatalf("N:M kept count differs at channel %d", c)
		}
	}
}

func TestNMMaskInvalid(t *testing.T) {
	cfg := MaskConfig{Cin: 4, Cout: 4, KH: 1, KW: 1, N: 5, M: 4}
	if _, err := Generate(rng.New(1), BlockNM, cfg); err == nil {
		t.Error("N>M accepted")
	}
	cfg.N, cfg.M = 0, 4
	if _, err := Generate(rng.New(1), BlockNM, cfg); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestChannelMask(t *testing.T) {
	cfg := MaskConfig{Cin: 100, Cout: 32, KH: 3, KW: 3, Rate: 0.6}
	m := mustGenerate(t, rng.New(5), ChannelWise, cfg)
	if got := m.Rate(); math.Abs(got-0.6) > 0.011 {
		t.Errorf("channel rate = %v, want ~0.6", got)
	}
	prunedCount := 0
	for c, kept := range m.ChannelKept {
		if !kept {
			prunedCount++
			if m.KeptPerCin[c] != 0 {
				t.Fatalf("pruned channel %d has kept weights", c)
			}
		} else if m.KeptPerCin[c] != int64(cfg.Cout*cfg.KH*cfg.KW) {
			t.Fatalf("kept channel %d is not fully dense", c)
		}
	}
	if prunedCount != 60 {
		t.Errorf("pruned %d channels, want 60", prunedCount)
	}
}

func TestChannelMaskNeverPrunesAll(t *testing.T) {
	cfg := MaskConfig{Cin: 4, Cout: 4, KH: 1, KW: 1, Rate: 0.99}
	m := mustGenerate(t, rng.New(6), ChannelWise, cfg)
	if m.TotalKept == 0 {
		t.Error("channel pruning removed every channel")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(rng.New(1), Dense, MaskConfig{Cin: 0, Cout: 1, KH: 1, KW: 1}); err == nil {
		t.Error("zero Cin accepted")
	}
	if _, err := Generate(rng.New(1), RandomPointwise, MaskConfig{Cin: 4, Cout: 4, KH: 1, KW: 1, Rate: 1.0}); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if _, err := Generate(rng.New(1), Pattern(42), MaskConfig{Cin: 4, Cout: 4, KH: 1, KW: 1}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// TestValidMACFractionDense checks the base case: with a dense mask, the
// valid fraction is the mean activation density.
func TestValidMACFractionDense(t *testing.T) {
	cfg := MaskConfig{Cin: 4, Cout: 8, KH: 1, KW: 1}
	m := mustGenerate(t, rng.New(7), Dense, cfg)
	got := m.ValidMACFraction([]float64{0.2, 0.4, 0.6, 0.8})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("valid fraction = %v, want 0.5", got)
	}
}

// TestValidMACFractionRandomMatchesProduct verifies the law-of-large-numbers
// behaviour of unstructured sparsity: valid fraction ≈ (1-ws)·density.
func TestValidMACFractionRandomMatchesProduct(t *testing.T) {
	cfg := MaskConfig{Cin: 512, Cout: 512, KH: 3, KW: 3, Rate: 0.95}
	m := mustGenerate(t, rng.New(8), RandomPointwise, cfg)
	density := make([]float64, cfg.Cin)
	for i := range density {
		density[i] = 0.6
	}
	got := m.ValidMACFraction(density)
	want := (1 - 0.95) * 0.6
	if math.Abs(got-want) > 0.002 {
		t.Errorf("valid fraction = %v, want ~%v", got, want)
	}
}

// TestChannelImportanceBias verifies the channel pattern yields more valid
// MACs than random at the same rate and density, reflecting that magnitude
// pruning keeps denser channels (paper Fig. 4's distribution shift).
func TestChannelImportanceBias(t *testing.T) {
	r := rng.New(9)
	cfgR := MaskConfig{Cin: 256, Cout: 256, KH: 3, KW: 3, Rate: 0.8}
	mr := mustGenerate(t, r, RandomPointwise, cfgR)
	mc := mustGenerate(t, r, ChannelWise, cfgR)
	density := make([]float64, cfgR.Cin)
	for i := range density {
		density[i] = 0.5
	}
	fr := mr.ValidMACFraction(density)
	fc := mc.ValidMACFraction(density)
	if fc <= fr {
		t.Errorf("channel valid fraction %v not above random %v", fc, fr)
	}
	// The shift should be material but bounded (paper reports up to ~40%).
	if fc/fr > 1.8 {
		t.Errorf("channel/random valid-MAC ratio %v implausibly large", fc/fr)
	}
}

func TestValidMACFractionPanicsOnMismatch(t *testing.T) {
	m := mustGenerate(t, rng.New(10), Dense, MaskConfig{Cin: 4, Cout: 4, KH: 1, KW: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched density profile")
		}
	}()
	m.ValidMACFraction([]float64{1, 1})
}

func TestUniformValidMatchesPerChannelUniform(t *testing.T) {
	if err := quick.Check(func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw%90) / 100
		cfg := MaskConfig{Cin: 64, Cout: 32, KH: 3, KW: 3, Rate: rate}
		m, err := Generate(rng.New(seed), RandomPointwise, cfg)
		if err != nil {
			return false
		}
		density := make([]float64, cfg.Cin)
		for i := range density {
			density[i] = 0.37
		}
		a := m.ValidMACFraction(density)
		b := m.UniformValidMACFraction(0.37)
		return math.Abs(a-b) < 1e-12
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestValidFractionBounds: the valid fraction is always within [0, 1-rate]
// up to channel-bias effects bounded by 1.
func TestValidFractionBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, pRaw, dRaw uint8) bool {
		p := Patterns()[int(pRaw)%len(Patterns())]
		cfg := MaskConfig{Cin: 32, Cout: 16, KH: 3, KW: 3, Rate: 0.5, N: 2, M: 4}
		m, err := Generate(rng.New(seed), p, cfg)
		if err != nil {
			return false
		}
		d := float64(dRaw) / 255
		f := m.UniformValidMACFraction(d)
		return f >= 0 && f <= 1+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultEfficiencyOrdering(t *testing.T) {
	// Compute efficiency: dense ≥ channel ≥ nm ≥ random.
	d := DefaultEfficiency(Dense)
	c := DefaultEfficiency(ChannelWise)
	nm := DefaultEfficiency(BlockNM)
	r := DefaultEfficiency(RandomPointwise)
	if !(d.Compute >= c.Compute && c.Compute >= nm.Compute && nm.Compute >= r.Compute) {
		t.Errorf("efficiency ordering violated: %v %v %v %v", d, c, nm, r)
	}
	if r.Storage <= 1 {
		t.Error("random pattern should have storage overhead > 1")
	}
	if d.Storage != 1 {
		t.Error("dense storage overhead must be 1")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := MaskConfig{Cin: 64, Cout: 64, KH: 3, KW: 3, Rate: 0.7}
	a := mustGenerate(t, rng.New(11), RandomPointwise, cfg)
	b := mustGenerate(t, rng.New(11), RandomPointwise, cfg)
	for c := range a.KeptPerCin {
		if a.KeptPerCin[c] != b.KeptPerCin[c] {
			t.Fatalf("mask generation not deterministic at channel %d", c)
		}
	}
}
