package sparsity

import "fmt"

// This file implements the compressed sparse-storage schemes the
// benchmark's accelerators use (paper §2.2: "efficient sparse-storage
// schemes"): run-length coding of zero gaps (Eyeriss-style RLC) and
// bitmap encoding (Sanger-style). The compression ratios they achieve are
// what the Eyeriss-V2 memory model charges for weight traffic (the
// Storage field of Efficiency).

// RLCConfig parameterizes run-length coding: each kept value is stored
// together with the count of zeros preceding it, in RunBits bits; runs
// longer than the field allows insert explicit zero values.
type RLCConfig struct {
	// ValueBits is the datatype width of one kept value.
	ValueBits int
	// RunBits is the width of the zero-run-length field.
	RunBits int
}

// DefaultRLC returns the Eyeriss configuration: 8-bit values with 4-bit
// run lengths.
func DefaultRLC() RLCConfig { return RLCConfig{ValueBits: 8, RunBits: 4} }

// RLCEncode run-length encodes the non-zero structure of a mask vector
// (true = non-zero) and returns the encoded size in bits. Values
// themselves are not stored here — only the structure matters for sizing.
func RLCEncode(mask []bool, cfg RLCConfig) (bits int, err error) {
	if cfg.ValueBits <= 0 || cfg.RunBits <= 0 {
		return 0, fmt.Errorf("sparsity: invalid RLC config %+v", cfg)
	}
	maxRun := 1<<cfg.RunBits - 1
	run := 0
	sym := cfg.ValueBits + cfg.RunBits
	for _, nz := range mask {
		if !nz {
			run++
			if run == maxRun+1 {
				// Overflowed run field: emit an explicit zero symbol
				// carrying the maximum run.
				bits += sym
				run = 0
			}
			continue
		}
		bits += sym
		run = 0
	}
	if run > 0 {
		// Trailing zeros need one final symbol.
		bits += sym
	}
	return bits, nil
}

// BitmapEncode sizes the bitmap scheme: one presence bit per position
// plus the packed non-zero values.
func BitmapEncode(mask []bool, valueBits int) (bits int, err error) {
	if valueBits <= 0 {
		return 0, fmt.Errorf("sparsity: invalid value width %d", valueBits)
	}
	bits = len(mask)
	for _, nz := range mask {
		if nz {
			bits += valueBits
		}
	}
	return bits, nil
}

// DenseBits sizes the uncompressed layout.
func DenseBits(n, valueBits int) int { return n * valueBits }

// CompressionRatio returns dense size over encoded size (>1 means the
// encoding saves space).
func CompressionRatio(denseBits, encodedBits int) float64 {
	if encodedBits == 0 {
		return 0
	}
	return float64(denseBits) / float64(encodedBits)
}

// FormatChoice reports which encoding a given sparsity structure should
// use and the resulting bits — accelerators pick per-layer (paper §2.2's
// "efficient sparse-storage schemes" are format libraries, not one
// format).
type FormatChoice struct {
	Name string
	Bits int
}

// BestFormat sizes dense, bitmap and RLC layouts for the mask and returns
// the smallest.
func BestFormat(mask []bool, valueBits int) (FormatChoice, error) {
	dense := DenseBits(len(mask), valueBits)
	best := FormatChoice{Name: "dense", Bits: dense}

	bm, err := BitmapEncode(mask, valueBits)
	if err != nil {
		return FormatChoice{}, err
	}
	if bm < best.Bits {
		best = FormatChoice{Name: "bitmap", Bits: bm}
	}

	rlc, err := RLCEncode(mask, RLCConfig{ValueBits: valueBits, RunBits: 4})
	if err != nil {
		return FormatChoice{}, err
	}
	if rlc < best.Bits {
		best = FormatChoice{Name: "rlc", Bits: rlc}
	}
	return best, nil
}
