package sparsity

import (
	"math"
	"testing"
	"testing/quick"

	"sparsedysta/internal/rng"
)

func testTensor(seed uint64) *Tensor {
	return NewTensor(rng.New(seed), 32, 16, 3, 3)
}

func TestNewTensorShape(t *testing.T) {
	tr := testTensor(1)
	if tr.Numel() != 32*16*3*3 {
		t.Fatalf("Numel = %d", tr.Numel())
	}
	// Weights must not be degenerate.
	var nonzero int
	for _, v := range tr.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < tr.Numel()*9/10 {
		t.Errorf("synthetic tensor mostly zero: %d of %d", nonzero, tr.Numel())
	}
}

func TestPruneMagnitudeRates(t *testing.T) {
	tr := testTensor(2)
	for _, rate := range []float64{0.5, 0.8, 0.95} {
		keep, err := PruneMagnitude(tr, RandomPointwise, rate, [2]int{})
		if err != nil {
			t.Fatal(err)
		}
		if got := Sparsity(keep); math.Abs(got-rate) > 0.01 {
			t.Errorf("random pruning at %.2f realized %.3f", rate, got)
		}
	}
}

// TestPruneKeepsLargeMagnitudes: magnitude pruning must keep weights
// whose magnitude exceeds every kept-out weight (global threshold).
func TestPruneKeepsLargeMagnitudes(t *testing.T) {
	tr := testTensor(3)
	keep, err := PruneMagnitude(tr, RandomPointwise, 0.7, [2]int{})
	if err != nil {
		t.Fatal(err)
	}
	minKept, maxDropped := math.Inf(1), 0.0
	for i, k := range keep {
		mag := math.Abs(tr.Data[i])
		if k && mag < minKept {
			minKept = mag
		}
		if !k && mag > maxDropped {
			maxDropped = mag
		}
	}
	if maxDropped > minKept {
		t.Errorf("dropped weight %.4f above kept weight %.4f", maxDropped, minKept)
	}
}

// TestPruneNMStructure verifies the N:M constraint: every aligned group
// of M weights keeps exactly N.
func TestPruneNMStructure(t *testing.T) {
	tr := testTensor(4)
	n, m := 2, 4
	keep, err := PruneMagnitude(tr, BlockNM, 0, [2]int{n, m})
	if err != nil {
		t.Fatal(err)
	}
	row := tr.Cin * tr.KH * tr.KW
	for co := 0; co < tr.Cout; co++ {
		for g := 0; g+m <= row; g += m {
			kept := 0
			for j := 0; j < m; j++ {
				if keep[co*row+g+j] {
					kept++
				}
			}
			if kept != n {
				t.Fatalf("group at (%d,%d) kept %d of %d", co, g, kept, m)
			}
		}
	}
	// Overall rate = 1 - N/M on the divisible portion.
	if got := Sparsity(keep); math.Abs(got-0.5) > 0.02 {
		t.Errorf("2:4 sparsity = %.3f", got)
	}
}

func TestPruneNMInvalid(t *testing.T) {
	tr := testTensor(5)
	if _, err := PruneMagnitude(tr, BlockNM, 0, [2]int{5, 4}); err == nil {
		t.Error("N>M accepted")
	}
}

// TestPruneChannelStructure: channel pruning removes whole input channels
// — the weakest ones by L2 norm.
func TestPruneChannelStructure(t *testing.T) {
	tr := testTensor(6)
	keep, err := PruneMagnitude(tr, ChannelWise, 0.5, [2]int{})
	if err != nil {
		t.Fatal(err)
	}
	mask, err := MaskFromTensor(tr, ChannelWise, keep)
	if err != nil {
		t.Fatal(err)
	}
	per := int64(tr.Cout * tr.KH * tr.KW)
	prunedCount := 0
	var keptNormMin, prunedNormMax float64 = math.Inf(1), 0
	for ci := 0; ci < tr.Cin; ci++ {
		var norm float64
		for co := 0; co < tr.Cout; co++ {
			for k := 0; k < tr.KH*tr.KW; k++ {
				v := tr.at(co, ci, k)
				norm += v * v
			}
		}
		switch mask.KeptPerCin[ci] {
		case 0:
			prunedCount++
			if norm > prunedNormMax {
				prunedNormMax = norm
			}
		case per:
			if norm < keptNormMin {
				keptNormMin = norm
			}
		default:
			t.Fatalf("channel %d partially kept: %d of %d", ci, mask.KeptPerCin[ci], per)
		}
	}
	if prunedCount != 8 {
		t.Errorf("pruned %d of 16 channels, want 8", prunedCount)
	}
	if prunedNormMax > keptNormMin {
		t.Errorf("pruned channel norm %.3f above kept channel norm %.3f",
			prunedNormMax, keptNormMin)
	}
}

func TestPruneRejectsBadRate(t *testing.T) {
	tr := testTensor(7)
	if _, err := PruneMagnitude(tr, RandomPointwise, 1.0, [2]int{}); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if _, err := PruneMagnitude(tr, Pattern(77), 0.5, [2]int{}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// TestMaskFromTensorAgreesWithStatisticalPath cross-validates the
// tensor-level pruning against the fast statistical generator: at the
// same pattern and rate the realized rates and valid-MAC fractions agree.
func TestMaskFromTensorAgreesWithStatisticalPath(t *testing.T) {
	r := rng.New(8)
	tr := NewTensor(r, 64, 64, 3, 3)
	keep, err := PruneMagnitude(tr, RandomPointwise, 0.8, [2]int{})
	if err != nil {
		t.Fatal(err)
	}
	tensorMask, err := MaskFromTensor(tr, RandomPointwise, keep)
	if err != nil {
		t.Fatal(err)
	}
	statMask, err := Generate(r, RandomPointwise, MaskConfig{
		Cin: 64, Cout: 64, KH: 3, KW: 3, Rate: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tensorMask.Rate()-statMask.Rate()) > 0.02 {
		t.Errorf("rates disagree: tensor %.3f vs statistical %.3f",
			tensorMask.Rate(), statMask.Rate())
	}
	a := tensorMask.UniformValidMACFraction(0.5)
	b := statMask.UniformValidMACFraction(0.5)
	if math.Abs(a-b) > 0.02 {
		t.Errorf("valid-MAC fractions disagree: %.4f vs %.4f", a, b)
	}
}

func TestMaskFromTensorValidation(t *testing.T) {
	tr := testTensor(9)
	if _, err := MaskFromTensor(tr, Dense, make([]bool, 3)); err == nil {
		t.Error("short mask accepted")
	}
}

func TestSparsityHelper(t *testing.T) {
	if Sparsity(nil) != 0 {
		t.Error("empty mask sparsity not 0")
	}
	if got := Sparsity([]bool{true, false, false, false}); got != 0.75 {
		t.Errorf("Sparsity = %v", got)
	}
}

// TestPruneDeterministic: same tensor + pattern + rate => same mask.
func TestPruneDeterministic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr := testTensor(seed)
		a, err1 := PruneMagnitude(tr, ChannelWise, 0.5, [2]int{})
		b, err2 := PruneMagnitude(tr, ChannelWise, 0.5, [2]int{})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRLCOnPrunedTensor end-to-ends the storage pipeline: prune a tensor,
// size its formats, and confirm sparse formats pay off at high rates.
func TestRLCOnPrunedTensor(t *testing.T) {
	tr := testTensor(10)
	keep, err := PruneMagnitude(tr, RandomPointwise, 0.9, [2]int{})
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestFormat(keep, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name == "dense" {
		t.Error("tensor pruned at rate 0.9 stored dense")
	}
	if ratio := CompressionRatio(DenseBits(len(keep), 8), best.Bits); ratio < 2.5 {
		t.Errorf("compression ratio %.2f below 2.5 at 90%% sparsity", ratio)
	}
}
