// Package sparsity models the static weight-sparsity side of the
// Sparse-DySta benchmark: the three pruning patterns of paper §3.2 (random
// point-wise, N:M block-wise, channel-wise), mask generation, effective-MAC
// accounting under combined weight and activation sparsity, and the
// pattern-dependent hardware efficiency that makes equal sparsity rates
// yield different latencies (paper Figs. 1 and 4).
package sparsity

import "fmt"

// Pattern identifies the non-zero mask structure used when sparsifying a
// model's weights (paper §2.3.2).
type Pattern int

const (
	// Dense means no weight sparsification.
	Dense Pattern = iota
	// RandomPointwise is unstructured magnitude pruning (Han et al.):
	// individual weights are zeroed with no structural constraint.
	RandomPointwise
	// BlockNM is the N:M block-wise pattern (e.g. 2:4 on NVIDIA Ampere
	// Sparse Tensor Cores): in every group of M consecutive weights along
	// the input dimension, exactly N are kept.
	BlockNM
	// ChannelWise prunes entire input channels (He et al.), leaving a
	// smaller dense computation.
	ChannelWise
)

var patternNames = map[Pattern]string{
	Dense:           "dense",
	RandomPointwise: "random",
	BlockNM:         "nm",
	ChannelWise:     "channel",
}

// String returns the short name used in trace files and CLI flags.
func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern converts a short name back to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	for p, name := range patternNames {
		if name == s {
			return p, nil
		}
	}
	return Dense, fmt.Errorf("sparsity: unknown pattern %q", s)
}

// Patterns lists all supported patterns in a stable order.
func Patterns() []Pattern {
	return []Pattern{Dense, RandomPointwise, BlockNM, ChannelWise}
}

// Efficiency captures how effectively a sparse accelerator converts skipped
// operations into saved cycles for a given pattern. It is the hardware-side
// half of the paper's observation that sparsity *pattern* matters, not just
// rate: the same 80% sparsity yields different valid-MAC and latency
// profiles per pattern (Fig. 4), and the achievable speedup depends on how
// well the pattern load-balances across the PE array.
type Efficiency struct {
	// Compute is the fraction of ideal zero-skipping speedup realized by
	// the PE array for this pattern (1 = perfect load balance).
	Compute float64
	// Storage is the effective compression ratio overhead: bytes needed
	// per kept weight relative to dense storage of that weight (>1 means
	// index/bitmap overhead, as for unstructured patterns).
	Storage float64
}

// DefaultEfficiency returns the Eyeriss-V2-calibrated efficiency for a
// pattern. Random point-wise sparsity suffers PE load imbalance and needs
// per-weight index storage (CSC-style); N:M is balanced by construction
// with cheap 2-bit indices; channel-wise pruning leaves a dense problem
// with no overhead but coarser granularity.
func DefaultEfficiency(p Pattern) Efficiency {
	switch p {
	case RandomPointwise:
		return Efficiency{Compute: 0.80, Storage: 1.25}
	case BlockNM:
		return Efficiency{Compute: 0.95, Storage: 1.06}
	case ChannelWise:
		return Efficiency{Compute: 0.98, Storage: 1.0}
	default:
		return Efficiency{Compute: 1.0, Storage: 1.0}
	}
}
