package sparsity

import (
	"fmt"
	"math"

	"sparsedysta/internal/rng"
)

// MaskConfig describes the weight tensor of one layer and the target
// sparsification. The tensor is logically [Cout][Cin][KH][KW]; fully
// connected layers use KH = KW = 1.
type MaskConfig struct {
	Cin, Cout, KH, KW int
	// Rate is the target weight sparsity in [0, 1). For BlockNM it is
	// derived from N and M instead and this field is ignored.
	Rate float64
	// N, M define the block pattern for BlockNM (keep N of every M).
	N, M int
	// ImportanceBias applies only to ChannelWise: channel pruning keeps
	// the channels with the largest weight magnitudes, which empirically
	// carry denser (more informative) activations. The bias is the factor
	// by which the surviving channels' activation sparsity is scaled
	// relative to the layer average (<1 means kept channels are denser).
	// Zero means "use the default of 0.75".
	ImportanceBias float64
}

const defaultImportanceBias = 0.75

// LayerMask is a per-layer weight-sparsity summary sufficient for exact
// effective-MAC accounting: the number of kept weights contributed by each
// input channel, aggregated over output channels and kernel positions.
// Storing per-input-channel totals (rather than a full boolean tensor)
// keeps ResNet-scale models cheap while preserving everything the valid-MAC
// computation needs, because dynamic activation sparsity acts per input
// channel.
type LayerMask struct {
	Pattern Pattern
	Config  MaskConfig
	// KeptPerCin[c] is the number of kept weights that read from input
	// channel c (summed over Cout, KH, KW).
	KeptPerCin []int64
	// TotalKept is the sum of KeptPerCin.
	TotalKept int64
	// TotalWeights is Cin*Cout*KH*KW.
	TotalWeights int64
	// ChannelKept[c] reports whether input channel c survives at all
	// (always true except under ChannelWise).
	ChannelKept []bool
}

// Generate produces a LayerMask for the given pattern. The generator is
// deterministic in r.
func Generate(r *rng.Source, p Pattern, cfg MaskConfig) (*LayerMask, error) {
	if cfg.Cin <= 0 || cfg.Cout <= 0 || cfg.KH <= 0 || cfg.KW <= 0 {
		return nil, fmt.Errorf("sparsity: invalid mask config %+v", cfg)
	}
	if p != BlockNM && (cfg.Rate < 0 || cfg.Rate >= 1) {
		return nil, fmt.Errorf("sparsity: rate %v out of [0,1)", cfg.Rate)
	}
	perCin := int64(cfg.Cout) * int64(cfg.KH) * int64(cfg.KW)
	total := perCin * int64(cfg.Cin)
	m := &LayerMask{
		Pattern:      p,
		Config:       cfg,
		KeptPerCin:   make([]int64, cfg.Cin),
		TotalWeights: total,
		ChannelKept:  make([]bool, cfg.Cin),
	}
	for i := range m.ChannelKept {
		m.ChannelKept[i] = true
	}

	switch p {
	case Dense:
		for c := range m.KeptPerCin {
			m.KeptPerCin[c] = perCin
		}
	case RandomPointwise:
		// Each weight is kept independently with probability 1-rate. Per
		// input channel the kept count is Binomial(perCin, 1-rate); a
		// normal approximation is accurate for the channel sizes of real
		// layers and keeps generation O(Cin).
		keep := 1 - cfg.Rate
		mean := float64(perCin) * keep
		sd := math.Sqrt(float64(perCin) * keep * cfg.Rate)
		for c := range m.KeptPerCin {
			k := int64(math.Round(r.NormAt(mean, sd)))
			if k < 0 {
				k = 0
			}
			if k > perCin {
				k = perCin
			}
			m.KeptPerCin[c] = k
		}
	case BlockNM:
		if cfg.N <= 0 || cfg.M <= 0 || cfg.N > cfg.M {
			return nil, fmt.Errorf("sparsity: invalid N:M = %d:%d", cfg.N, cfg.M)
		}
		// Exactly N of every M weights along the input dimension are
		// kept, so every input channel keeps the same fraction.
		for c := range m.KeptPerCin {
			m.KeptPerCin[c] = perCin * int64(cfg.N) / int64(cfg.M)
		}
	case ChannelWise:
		pruned := int(math.Round(cfg.Rate * float64(cfg.Cin)))
		if pruned >= cfg.Cin {
			pruned = cfg.Cin - 1 // never prune every channel
		}
		// Pruned channels are chosen uniformly; importance ordering is
		// modelled on the activation side (see ActDensityPerChannel).
		perm := r.Perm(cfg.Cin)
		for i := 0; i < pruned; i++ {
			m.ChannelKept[perm[i]] = false
		}
		for c := range m.KeptPerCin {
			if m.ChannelKept[c] {
				m.KeptPerCin[c] = perCin
			}
		}
	default:
		return nil, fmt.Errorf("sparsity: unknown pattern %v", p)
	}

	for _, k := range m.KeptPerCin {
		m.TotalKept += k
	}
	return m, nil
}

// Rate returns the realized weight sparsity of the mask.
func (m *LayerMask) Rate() float64 {
	if m.TotalWeights == 0 {
		return 0
	}
	return 1 - float64(m.TotalKept)/float64(m.TotalWeights)
}

// ImportanceBias returns the configured (or default) kept-channel
// activation-density bias for channel-wise masks, and 1 otherwise.
func (m *LayerMask) ImportanceBias() float64 {
	if m.Pattern != ChannelWise {
		return 1
	}
	if m.Config.ImportanceBias > 0 {
		return m.Config.ImportanceBias
	}
	return defaultImportanceBias
}

// ValidMACFraction returns the fraction of the layer's dense MACs that are
// effective (both weight and activation non-zero) for one input sample,
// given the per-input-channel activation density profile.
//
// densityPerCin[c] must be the fraction of non-zero activations in input
// channel c for this sample. For ChannelWise masks the caller should pass
// the *unconditioned* per-channel densities; the mask's importance bias is
// applied here, capturing that magnitude-pruning keeps channels whose
// activations are denser than the layer average (this is what separates the
// random and channel distributions of paper Fig. 4).
func (m *LayerMask) ValidMACFraction(densityPerCin []float64) float64 {
	if len(densityPerCin) != len(m.KeptPerCin) {
		panic(fmt.Sprintf("sparsity: density profile has %d channels, mask has %d",
			len(densityPerCin), len(m.KeptPerCin)))
	}
	if m.TotalWeights == 0 {
		return 0
	}
	bias := m.ImportanceBias()
	var valid float64
	for c, kept := range m.KeptPerCin {
		if kept == 0 {
			continue
		}
		d := densityPerCin[c]
		if m.Pattern == ChannelWise {
			// Kept channels are the high-magnitude ones: their zero
			// fraction shrinks by the importance bias.
			d = 1 - (1-d)*bias
		}
		if d < 0 {
			d = 0
		}
		if d > 1 {
			d = 1
		}
		valid += float64(kept) * d
	}
	return valid / float64(m.TotalWeights)
}

// UniformValidMACFraction is a convenience for callers that model a single
// scalar activation density for the whole layer.
func (m *LayerMask) UniformValidMACFraction(density float64) float64 {
	if m.TotalWeights == 0 {
		return 0
	}
	bias := m.ImportanceBias()
	var valid float64
	for _, kept := range m.KeptPerCin {
		if kept == 0 {
			continue
		}
		d := density
		if m.Pattern == ChannelWise {
			d = 1 - (1-d)*bias
		}
		if d > 1 {
			d = 1
		}
		valid += float64(kept) * d
	}
	return valid / float64(m.TotalWeights)
}
