package sparsity

import (
	"fmt"
	"math"
	"sort"

	"sparsedysta/internal/rng"
)

// This file is the reproduction's stand-in for SparseML's pruning recipes
// (paper §3.2): it materializes synthetic weight tensors with realistic
// magnitude statistics and applies actual magnitude-based pruning under
// each pattern, yielding bit-level masks. trace generation uses the
// statistical LayerMask summaries for speed; this tensor-level path
// validates them and feeds the storage-format analysis.

// Tensor is a dense weight tensor in [Cout][Cin*KH*KW] row-major layout.
type Tensor struct {
	Cout, Cin, KH, KW int
	Data              []float64
}

// NewTensor draws a synthetic weight tensor. Trained convolution weights
// are approximately zero-mean with near-normal magnitudes; per-channel
// scale variation models the magnitude structure channel pruning exploits.
func NewTensor(r *rng.Source, cout, cin, kh, kw int) *Tensor {
	t := &Tensor{
		Cout: cout, Cin: cin, KH: kh, KW: kw,
		Data: make([]float64, cout*cin*kh*kw),
	}
	per := kh * kw
	for ci := 0; ci < cin; ci++ {
		// Log-normal channel scale: some input channels matter much more
		// than others.
		scale := math.Exp(r.NormAt(0, 0.6))
		for co := 0; co < cout; co++ {
			base := (co*cin + ci) * per
			for k := 0; k < per; k++ {
				t.Data[base+k] = r.Norm() * scale
			}
		}
	}
	return t
}

// Numel returns the element count.
func (t *Tensor) Numel() int { return len(t.Data) }

// at indexes [co][ci][k].
func (t *Tensor) at(co, ci, k int) float64 {
	return t.Data[(co*t.Cin+ci)*t.KH*t.KW+k]
}

// PruneMagnitude applies magnitude pruning under the given pattern at the
// target rate and returns the boolean keep-mask in the tensor's layout.
func PruneMagnitude(t *Tensor, p Pattern, rate float64, nm [2]int) ([]bool, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("sparsity: rate %v out of [0,1)", rate)
	}
	keep := make([]bool, t.Numel())
	switch p {
	case Dense:
		for i := range keep {
			keep[i] = true
		}
	case RandomPointwise:
		// Global magnitude threshold at the rate quantile.
		mags := make([]float64, t.Numel())
		for i, v := range t.Data {
			mags[i] = math.Abs(v)
		}
		sort.Float64s(mags)
		cut := mags[int(rate*float64(len(mags)))]
		for i, v := range t.Data {
			keep[i] = math.Abs(v) > cut
		}
	case BlockNM:
		n, m := nm[0], nm[1]
		if n <= 0 || m <= 0 || n > m {
			return nil, fmt.Errorf("sparsity: invalid N:M %v", nm)
		}
		// Keep the N largest magnitudes of every group of M consecutive
		// weights along the flattened input dimension.
		row := t.Cin * t.KH * t.KW
		idx := make([]int, m)
		for co := 0; co < t.Cout; co++ {
			for g := 0; g+m <= row; g += m {
				base := co*row + g
				for j := 0; j < m; j++ {
					idx[j] = base + j
				}
				sort.Slice(idx, func(a, b int) bool {
					return math.Abs(t.Data[idx[a]]) > math.Abs(t.Data[idx[b]])
				})
				for j := 0; j < n; j++ {
					keep[idx[j]] = true
				}
			}
			// A ragged tail (row not divisible by M) stays dense.
			for r := co*row + (row/m)*m; r < (co+1)*row; r++ {
				keep[r] = true
			}
		}
	case ChannelWise:
		// Rank input channels by L2 norm; prune the weakest fraction.
		norms := make([]float64, t.Cin)
		for ci := 0; ci < t.Cin; ci++ {
			var s float64
			for co := 0; co < t.Cout; co++ {
				for k := 0; k < t.KH*t.KW; k++ {
					v := t.at(co, ci, k)
					s += v * v
				}
			}
			norms[ci] = s
		}
		order := make([]int, t.Cin)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return norms[order[a]] < norms[order[b]] })
		pruned := int(math.Round(rate * float64(t.Cin)))
		if pruned >= t.Cin {
			pruned = t.Cin - 1
		}
		prunedSet := make([]bool, t.Cin)
		for _, ci := range order[:pruned] {
			prunedSet[ci] = true
		}
		per := t.KH * t.KW
		for co := 0; co < t.Cout; co++ {
			for ci := 0; ci < t.Cin; ci++ {
				if prunedSet[ci] {
					continue
				}
				base := (co*t.Cin + ci) * per
				for k := 0; k < per; k++ {
					keep[base+k] = true
				}
			}
		}
	default:
		return nil, fmt.Errorf("sparsity: unknown pattern %v", p)
	}
	return keep, nil
}

// MaskFromTensor summarizes a bit-level keep-mask into the LayerMask form
// the fast path uses, so the statistical and tensor-level paths can be
// cross-validated.
func MaskFromTensor(t *Tensor, p Pattern, keep []bool) (*LayerMask, error) {
	if len(keep) != t.Numel() {
		return nil, fmt.Errorf("sparsity: mask has %d bits for %d weights", len(keep), t.Numel())
	}
	m := &LayerMask{
		Pattern: p,
		Config: MaskConfig{
			Cin: t.Cin, Cout: t.Cout, KH: t.KH, KW: t.KW,
		},
		KeptPerCin:   make([]int64, t.Cin),
		TotalWeights: int64(t.Numel()),
		ChannelKept:  make([]bool, t.Cin),
	}
	per := t.KH * t.KW
	for co := 0; co < t.Cout; co++ {
		for ci := 0; ci < t.Cin; ci++ {
			base := (co*t.Cin + ci) * per
			for k := 0; k < per; k++ {
				if keep[base+k] {
					m.KeptPerCin[ci]++
				}
			}
		}
	}
	for ci, n := range m.KeptPerCin {
		m.TotalKept += n
		m.ChannelKept[ci] = n > 0
	}
	return m, nil
}

// Sparsity returns the zero fraction of a keep-mask.
func Sparsity(keep []bool) float64 {
	if len(keep) == 0 {
		return 0
	}
	zeros := 0
	for _, k := range keep {
		if !k {
			zeros++
		}
	}
	return float64(zeros) / float64(len(keep))
}
