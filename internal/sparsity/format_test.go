package sparsity

import (
	"testing"
	"testing/quick"

	"sparsedysta/internal/rng"
)

func randomMask(r *rng.Source, n int, density float64) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = r.Bernoulli(density)
	}
	return m
}

func TestRLCDenseMask(t *testing.T) {
	mask := make([]bool, 64)
	for i := range mask {
		mask[i] = true
	}
	bits, err := RLCEncode(mask, DefaultRLC())
	if err != nil {
		t.Fatal(err)
	}
	// Dense input: one (value,run=0) symbol per element — RLC expands it.
	want := 64 * (8 + 4)
	if bits != want {
		t.Errorf("dense RLC = %d bits, want %d", bits, want)
	}
}

func TestRLCAllZeros(t *testing.T) {
	mask := make([]bool, 64)
	bits, err := RLCEncode(mask, DefaultRLC())
	if err != nil {
		t.Fatal(err)
	}
	// 64 zeros with 4-bit runs (max 15): overflow symbols every 16 zeros
	// -> ceil(64/16) = 4 symbols.
	want := 4 * (8 + 4)
	if bits != want {
		t.Errorf("all-zero RLC = %d bits, want %d", bits, want)
	}
}

func TestRLCSparseBeatsDense(t *testing.T) {
	r := rng.New(1)
	mask := randomMask(r, 4096, 0.1) // 90% sparse
	bits, err := RLCEncode(mask, DefaultRLC())
	if err != nil {
		t.Fatal(err)
	}
	dense := DenseBits(len(mask), 8)
	if bits >= dense {
		t.Errorf("90%%-sparse RLC (%d bits) not below dense (%d bits)", bits, dense)
	}
	if ratio := CompressionRatio(dense, bits); ratio < 2 {
		t.Errorf("compression ratio %.2f below 2 at 90%% sparsity", ratio)
	}
}

func TestRLCRejectsBadConfig(t *testing.T) {
	if _, err := RLCEncode([]bool{true}, RLCConfig{ValueBits: 0, RunBits: 4}); err == nil {
		t.Error("zero value bits accepted")
	}
}

func TestBitmapEncode(t *testing.T) {
	mask := []bool{true, false, false, true}
	bits, err := BitmapEncode(mask, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + 2*8; bits != want {
		t.Errorf("bitmap = %d bits, want %d", bits, want)
	}
	if _, err := BitmapEncode(mask, 0); err == nil {
		t.Error("zero value bits accepted")
	}
}

// TestEncodingSizesConsistent: for any mask, bitmap size is exact by
// construction, and the best format is never larger than dense.
func TestEncodingSizesConsistent(t *testing.T) {
	if err := quick.Check(func(seed uint64, dRaw uint8) bool {
		r := rng.New(seed)
		density := float64(dRaw) / 255
		mask := randomMask(r, 512, density)
		best, err := BestFormat(mask, 8)
		if err != nil {
			return false
		}
		return best.Bits <= DenseBits(len(mask), 8) && best.Bits >= 0
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBestFormatSelection: very sparse masks choose RLC or bitmap; dense
// masks stay dense.
func TestBestFormatSelection(t *testing.T) {
	r := rng.New(2)
	sparse, _ := BestFormat(randomMask(r, 2048, 0.05), 8)
	if sparse.Name == "dense" {
		t.Errorf("95%%-sparse mask chose dense layout")
	}
	full := make([]bool, 2048)
	for i := range full {
		full[i] = true
	}
	denseChoice, _ := BestFormat(full, 8)
	if denseChoice.Name != "dense" {
		t.Errorf("fully dense mask chose %s", denseChoice.Name)
	}
}

func TestCompressionRatioZeroGuard(t *testing.T) {
	if CompressionRatio(100, 0) != 0 {
		t.Error("zero encoded bits did not return 0")
	}
}
