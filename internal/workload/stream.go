package workload

import (
	"fmt"
	"time"

	"sparsedysta/internal/rng"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/traffic"
)

// Stream is the iterator form of Generate: it draws one request at a
// time from the scenario's sampling distribution and the configured
// traffic.Process, never materializing the stream. Generate itself is
// implemented by draining a Stream, so the two are byte-identical by
// construction — same seed, same per-request draw order (arrival gap,
// entry, trace index), same SLO arithmetic. Arrivals are monotone
// nondecreasing by construction (each gap is non-negative), which is
// what lets streaming consumers process requests without sorting.
type Stream struct {
	entries     []Entry
	store       *trace.Store
	cfg         GenConfig
	totalWeight float64
	meanIso     map[trace.Key]time.Duration
	proc        traffic.Process
	r           *rng.Source
	now         time.Duration
	next        int
}

// NewStream validates the configuration, precomputes the per-entry mean
// isolated latencies (the SLO bases), and positions the iterator before
// the first request. The configured Process is Reset here, exactly as
// Generate resets it, so a stateful process can be reused across
// streams.
func NewStream(sc Scenario, store *trace.Store, cfg GenConfig) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(sc.Entries) == 0 {
		return nil, fmt.Errorf("workload: scenario %q has no entries", sc.Name)
	}
	var totalWeight float64
	meanIso := map[trace.Key]time.Duration{}
	for _, e := range sc.Entries {
		traces := store.Get(e.Key())
		if len(traces) == 0 {
			return nil, fmt.Errorf("workload: no traces for %v", e.Key())
		}
		totalWeight += e.Weight
		var sum float64
		for i := range traces {
			sum += float64(traces[i].Total())
		}
		meanIso[e.Key()] = time.Duration(sum / float64(len(traces)))
	}

	proc := cfg.Process
	if proc == nil {
		proc = traffic.NewPoisson(cfg.RatePerSec)
	}
	proc.Reset()

	return &Stream{
		entries:     sc.Entries,
		store:       store,
		cfg:         cfg,
		totalWeight: totalWeight,
		meanIso:     meanIso,
		proc:        proc,
		r:           rng.New(cfg.Seed),
		next:        0,
	}, nil
}

// Len returns the total stream length (GenConfig.Requests).
func (s *Stream) Len() int { return s.cfg.Requests }

// Next returns the next request, or (nil, false) once the stream is
// exhausted. The draw order per request — arrival gap, entry, trace
// index — is the bit-identity contract with Generate.
func (s *Stream) Next() (*Request, bool) {
	if s.next >= s.cfg.Requests {
		return nil, false
	}
	s.now += s.proc.Next(s.r, s.now)
	e := sampleEntry(s.r, s.entries, s.totalWeight)
	traces := s.store.Get(e.Key())
	tr := traces[s.r.Intn(len(traces))]
	sloBase := s.meanIso[e.Key()]
	if s.cfg.PerSampleSLO {
		sloBase = tr.Total()
	}
	req := &Request{
		ID:      s.next,
		Key:     e.Key(),
		Trace:   tr,
		Arrival: s.now,
		SLO:     time.Duration(float64(sloBase) * s.cfg.SLOMultiplier * e.sloFactor()),
	}
	s.next++
	return req, true
}
