package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
)

// Spec is the serializable description of a benchmark scenario — the
// "public benchmark" artefact of the paper (§3): a named set of
// model-pattern entries plus the accelerator that serves them. Specs
// round-trip through JSON so scenario definitions can be shared,
// versioned and loaded by external tooling.
type Spec struct {
	Name string `json:"name"`
	// Accelerator is "eyeriss-v2" or "sanger".
	Accelerator string      `json:"accelerator"`
	Entries     []EntrySpec `json:"entries"`
}

// EntrySpec is the serializable form of Entry.
type EntrySpec struct {
	Model string `json:"model"`
	// Pattern is the sparsity-pattern short name (dense, random, nm,
	// channel).
	Pattern    string  `json:"pattern"`
	WeightRate float64 `json:"weight_rate,omitempty"`
	Weight     float64 `json:"weight"`
	SLOFactor  float64 `json:"slo_factor,omitempty"`
}

// ToSpec converts a Scenario into its serializable form.
func ToSpec(sc Scenario) Spec {
	spec := Spec{Name: sc.Name, Accelerator: sc.Accel.Name()}
	for _, e := range sc.Entries {
		spec.Entries = append(spec.Entries, EntrySpec{
			Model:      e.Model.Name,
			Pattern:    e.Pattern.String(),
			WeightRate: e.WeightRate,
			Weight:     e.Weight,
			SLOFactor:  e.SLOFactor,
		})
	}
	return spec
}

// Scenario materializes the spec: model names resolve through the zoo and
// the accelerator through its default configuration.
func (s Spec) Scenario() (Scenario, error) {
	sc := Scenario{Name: s.Name}
	switch s.Accelerator {
	case "eyeriss-v2":
		sc.Accel = eyeriss.NewDefault()
	case "sanger":
		sc.Accel = sanger.NewDefault()
	default:
		return Scenario{}, fmt.Errorf("workload: unknown accelerator %q", s.Accelerator)
	}
	if len(s.Entries) == 0 {
		return Scenario{}, fmt.Errorf("workload: spec %q has no entries", s.Name)
	}
	for i, es := range s.Entries {
		m, err := models.ByName(es.Model)
		if err != nil {
			return Scenario{}, fmt.Errorf("workload: entry %d: %w", i, err)
		}
		if m.Family != sc.Accel.Family() {
			return Scenario{}, fmt.Errorf("workload: entry %d: model %s (family %v) cannot run on %s",
				i, m.Name, m.Family, sc.Accel.Name())
		}
		p, err := sparsity.ParsePattern(es.Pattern)
		if err != nil {
			return Scenario{}, fmt.Errorf("workload: entry %d: %w", i, err)
		}
		if es.Weight <= 0 {
			return Scenario{}, fmt.Errorf("workload: entry %d: non-positive weight %v", i, es.Weight)
		}
		if es.WeightRate < 0 || es.WeightRate >= 1 {
			return Scenario{}, fmt.Errorf("workload: entry %d: weight rate %v out of [0,1)", i, es.WeightRate)
		}
		sc.Entries = append(sc.Entries, Entry{
			Model:      m,
			Pattern:    p,
			WeightRate: es.WeightRate,
			Weight:     es.Weight,
			SLOFactor:  es.SLOFactor,
		})
	}
	return sc, nil
}

// SaveSpec writes the spec as indented JSON.
func SaveSpec(w io.Writer, spec Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// LoadSpec parses a JSON spec and materializes the scenario.
func LoadSpec(r io.Reader) (Scenario, error) {
	var spec Spec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return Scenario{}, fmt.Errorf("workload: decoding spec: %w", err)
	}
	return spec.Scenario()
}
