package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, sc := range []Scenario{MultiAttNN(), MultiCNN()} {
		spec := ToSpec(sc)
		var buf bytes.Buffer
		if err := SaveSpec(&buf, spec); err != nil {
			t.Fatal(err)
		}
		got, err := LoadSpec(&buf)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if got.Name != sc.Name || got.Accel.Name() != sc.Accel.Name() {
			t.Errorf("%s: identity lost: %q on %q", sc.Name, got.Name, got.Accel.Name())
		}
		if len(got.Entries) != len(sc.Entries) {
			t.Fatalf("%s: %d entries, want %d", sc.Name, len(got.Entries), len(sc.Entries))
		}
		for i := range got.Entries {
			a, b := got.Entries[i], sc.Entries[i]
			if a.Model.Name != b.Model.Name || a.Pattern != b.Pattern ||
				a.WeightRate != b.WeightRate || a.Weight != b.Weight ||
				a.SLOFactor != b.SLOFactor {
				t.Errorf("%s entry %d differs: %+v vs %+v", sc.Name, i, a, b)
			}
		}
	}
}

func TestSpecSLOFactorSurvives(t *testing.T) {
	sc := MultiAttNN()
	sc.Entries[0].SLOFactor = 0.4
	var buf bytes.Buffer
	if err := SaveSpec(&buf, ToSpec(sc)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].SLOFactor != 0.4 {
		t.Errorf("SLO factor lost: %v", got.Entries[0].SLOFactor)
	}
}

func TestLoadSpecErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown accel":   `{"name":"x","accelerator":"tpu","entries":[{"model":"bert","pattern":"dense","weight":1}]}`,
		"no entries":      `{"name":"x","accelerator":"sanger","entries":[]}`,
		"unknown model":   `{"name":"x","accelerator":"sanger","entries":[{"model":"gpt9","pattern":"dense","weight":1}]}`,
		"family mismatch": `{"name":"x","accelerator":"sanger","entries":[{"model":"vgg16","pattern":"dense","weight":1}]}`,
		"bad pattern":     `{"name":"x","accelerator":"sanger","entries":[{"model":"bert","pattern":"wavy","weight":1}]}`,
		"zero weight":     `{"name":"x","accelerator":"sanger","entries":[{"model":"bert","pattern":"dense","weight":0}]}`,
		"bad rate":        `{"name":"x","accelerator":"eyeriss-v2","entries":[{"model":"vgg16","pattern":"random","weight":1,"weight_rate":1.0}]}`,
	}
	for name, data := range cases {
		if _, err := LoadSpec(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadedSpecGeneratesWorkload(t *testing.T) {
	spec := Spec{
		Name:        "custom",
		Accelerator: "sanger",
		Entries: []EntrySpec{
			{Model: "bert", Pattern: "dense", Weight: 1, SLOFactor: 0.5},
			{Model: "bart", Pattern: "dense", Weight: 2},
		},
	}
	var buf bytes.Buffer
	if err := SaveSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, eval, err := BuildStores(sc, 5, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := Generate(sc, eval, GenConfig{Requests: 60, RatePerSec: 30, SLOMultiplier: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// BERT requests carry the tightened SLO (factor 0.5 of BART-scale
	// multipliers); both models appear.
	seen := map[string]bool{}
	for _, r := range reqs {
		seen[r.Key.Model] = true
	}
	if !seen["bert"] || !seen["bart"] {
		t.Errorf("models missing from generated stream: %v", seen)
	}
}
