// Package workload generates multi-DNN request streams for Phase 2 of the
// paper's methodology (§3.3.1): requests are sampled from the benchmark's
// model-pattern pairs, arrive following a Poisson process (MLPerf server
// style, §6.2), and carry latency SLOs of T_isol x M_slo (§6.1).
package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/models"
	"sparsedysta/internal/rng"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/traffic"
)

// Entry is one sampleable model-pattern variant of a scenario.
type Entry struct {
	Model      *models.Model
	Pattern    sparsity.Pattern
	WeightRate float64
	// Weight is the sampling weight of the entry within its scenario.
	Weight float64
	// SLOFactor scales the workload's SLO multiplier for this entry
	// (e.g. 0.3 for a latency-critical hand-tracking task next to
	// best-effort classification, per the deployment mixes of paper
	// Table 3). Zero means 1.0.
	SLOFactor float64
}

// sloFactor returns the effective per-entry SLO scale.
func (e Entry) sloFactor() float64 {
	if e.SLOFactor <= 0 {
		return 1
	}
	return e.SLOFactor
}

// Key returns the trace key of the entry.
func (e Entry) Key() trace.Key {
	return trace.Key{Model: e.Model.Name, Pattern: e.Pattern}
}

// Scenario is a deployment setup of paper Table 3: a set of model-pattern
// entries plus the accelerator that serves them.
type Scenario struct {
	Name    string
	Entries []Entry
	Accel   accel.Accelerator
}

// MultiAttNN returns the mobile personal-assistant scenario: BERT question
// answering plus BART and GPT-2 machine translation on Sanger, all with
// dynamic attention sparsity (no static weight pattern, §3.2).
func MultiAttNN() Scenario {
	entries := make([]Entry, 0, 3)
	for _, m := range models.BenchmarkAttNNs() {
		entries = append(entries, Entry{Model: m, Pattern: sparsity.Dense, Weight: 1})
	}
	return Scenario{Name: "multi-attnn", Entries: entries, Accel: sanger.NewDefault()}
}

// MultiCNN returns the visual-perception + hand-tracking scenario: SSD,
// ResNet-50, VGG-16 and MobileNet on Eyeriss-V2, each appearing under the
// three static sparsity patterns of §3.2 (random point-wise at 80%, 1:4
// block-wise, channel-wise at 70% — the paper exposes the rate as a
// tunable parameter; these settings land the 3 req/s operating point at
// the moderately loaded utilization its Table 5 numbers imply).
func MultiCNN() Scenario {
	variants := []struct {
		pattern sparsity.Pattern
		rate    float64
	}{
		{sparsity.RandomPointwise, 0.80},
		{sparsity.BlockNM, 0.75},
		{sparsity.ChannelWise, 0.70},
	}
	var entries []Entry
	for _, m := range models.BenchmarkCNNs() {
		for _, v := range variants {
			entries = append(entries, Entry{
				Model: m, Pattern: v.pattern, WeightRate: v.rate, Weight: 1})
		}
	}
	return Scenario{Name: "multi-cnn", Entries: entries, Accel: eyeriss.NewDefault()}
}

// Request is one inference task of a workload: a sampled input of a
// model-pattern pair with an arrival time and a latency SLO.
type Request struct {
	ID  int
	Key trace.Key
	// Trace is the ground-truth runtime information of the request's
	// input. The engine executes from it; schedulers other than Oracle
	// must not read it.
	Trace trace.SampleTrace
	// Arrival is the request's arrival time from workload start.
	Arrival time.Duration
	// SLO is the relative latency objective: T_isol x M_slo.
	SLO time.Duration
}

// Deadline returns the absolute completion deadline.
func (r *Request) Deadline() time.Duration { return r.Arrival + r.SLO }

// GenConfig controls request-stream generation.
type GenConfig struct {
	// Requests is the stream length (the paper uses 1000, §6.1).
	Requests int
	// RatePerSec is the Poisson arrival rate.
	RatePerSec float64
	// SLOMultiplier is M_slo (the paper's default is 10x). The SLO of a
	// request is the *mean* isolated latency of its model-pattern pair
	// times M_slo: SLOs are part of the service contract and cannot
	// depend on the not-yet-known per-sample latency.
	SLOMultiplier float64
	// PerSampleSLO switches to SLO = this sample's true isolated latency
	// times M_slo. This leaks ground-truth latency into every
	// deadline-aware scheduler and exists only for ablation studies.
	PerSampleSLO bool
	// Seed drives sampling and arrivals.
	Seed uint64
	// Process overrides the arrival process. Nil means stationary
	// Poisson at RatePerSec — bit-identical to the historical inline
	// loop, since traffic.Poisson performs the same single Exp draw per
	// request at the same stream position. A non-nil process draws its
	// deviates inline from the generation source (never from a split
	// substream, which would shift every later sampling draw), and is
	// Reset at the start of generation so a stateful process can be
	// reused across streams.
	Process traffic.Process
}

func (c GenConfig) validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("workload: non-positive request count %d", c.Requests)
	}
	if c.Process != nil {
		if err := c.Process.Validate(); err != nil {
			return err
		}
	} else if c.RatePerSec <= 0 {
		return fmt.Errorf("workload: non-positive arrival rate %v", c.RatePerSec)
	}
	if c.SLOMultiplier < 1 {
		return fmt.Errorf("workload: SLO multiplier %v below 1", c.SLOMultiplier)
	}
	return nil
}

// Generate samples a request stream from the scenario using evaluation
// traces from the store. Every scenario entry must have traces in the
// store (use BuildStores). It is the materialized form of NewStream:
// the slice it returns is exactly the drained iterator, so the two
// paths cannot drift apart.
func Generate(sc Scenario, store *trace.Store, cfg GenConfig) ([]*Request, error) {
	st, err := NewStream(sc, store, cfg)
	if err != nil {
		return nil, err
	}
	reqs := make([]*Request, 0, cfg.Requests)
	for {
		req, ok := st.Next()
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, req)
	}
}

// sampleEntry draws an entry proportionally to weight.
func sampleEntry(r *rng.Source, entries []Entry, total float64) Entry {
	x := r.Float64() * total
	for _, e := range entries {
		x -= e.Weight
		if x < 0 {
			return e
		}
	}
	return entries[len(entries)-1]
}

// BuildStores runs Phase 1 for every entry of the scenario, producing a
// profiling store (for scheduler LUTs) and a disjoint evaluation store
// (replayed by the engine). Separate seeds keep the profiled inputs
// distinct from the evaluated ones, as offline profiling would be.
//
// Entries build concurrently, one goroutine per model-pattern pair: every
// pair's RNG seed derives from its entry index alone (seed + 2i for
// profiling, seed + 2i + 1 for evaluation), and the per-pair trace slices
// are committed to the stores in entry order after all workers finish, so
// the result is byte-identical to a sequential build (the equivalence
// test in workload_test.go enforces this).
func BuildStores(sc Scenario, profileSamples, evalSamples int, seed uint64) (prof, eval *trace.Store, err error) {
	type built struct {
		prof, eval []trace.SampleTrace
		err        error
	}
	results := make([]built, len(sc.Entries))
	var wg sync.WaitGroup
	for i := range sc.Entries {
		wg.Add(1)
		go func(i int, e Entry) {
			defer wg.Done()
			// Describe the entry without Entry.Key: trace.Build's
			// validation (nil model among it) must surface as an error,
			// and Key derefs the model.
			desc := "<nil>"
			if e.Model != nil {
				desc = e.Key().String()
			}
			base := trace.BuildConfig{
				Model:      e.Model,
				Pattern:    e.Pattern,
				WeightRate: e.WeightRate,
			}
			pcfg := base
			pcfg.Samples = profileSamples
			pcfg.Seed = seed + uint64(i)*2
			ptr, err := trace.Build(sc.Accel, pcfg)
			if err != nil {
				results[i].err = fmt.Errorf("workload: profiling %s: %w", desc, err)
				return
			}
			ecfg := base
			ecfg.Samples = evalSamples
			ecfg.Seed = seed + uint64(i)*2 + 1
			etr, err := trace.Build(sc.Accel, ecfg)
			if err != nil {
				results[i].err = fmt.Errorf("workload: evaluating %s: %w", desc, err)
				return
			}
			results[i] = built{prof: ptr, eval: etr}
		}(i, sc.Entries[i])
	}
	wg.Wait()

	prof, eval = trace.NewStore(), trace.NewStore()
	for i, e := range sc.Entries {
		if results[i].err != nil {
			return nil, nil, results[i].err
		}
		prof.Add(e.Key(), results[i].prof)
		eval.Add(e.Key(), results[i].eval)
	}
	return prof, eval, nil
}

// MeanIsolated returns the weighted mean isolated latency of the scenario
// under the store's traces — the capacity yardstick used to relate arrival
// rates to utilization.
func MeanIsolated(sc Scenario, store *trace.Store) (time.Duration, error) {
	var sum, weights float64
	for _, e := range sc.Entries {
		traces := store.Get(e.Key())
		if len(traces) == 0 {
			return 0, fmt.Errorf("workload: no traces for %v", e.Key())
		}
		var entrySum float64
		for i := range traces {
			entrySum += float64(traces[i].Total())
		}
		sum += e.Weight * entrySum / float64(len(traces))
		weights += e.Weight
	}
	return time.Duration(sum / weights), nil
}

// SortByArrival sorts requests in place by arrival time (stable on ID).
func SortByArrival(reqs []*Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
}
