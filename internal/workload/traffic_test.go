package workload

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/traffic"
)

// TestGenerateGoldenArrivals pins the seed -> stream contract with
// literal values: GenConfig.Seed fully determines arrival times, IDs and
// sampled models, and these exact bytes are what the extracted Poisson
// process must keep reproducing. If this test breaks, every historical
// experiment seed means something different.
func TestGenerateGoldenArrivals(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	reqs, err := Generate(sc, eval, GenConfig{
		Requests: 8, RatePerSec: 30, SLOMultiplier: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		arrivalNS int64
		model     string
		sloNS     int64
	}{
		{11861724, "bert", 471568550},
		{12497830, "gpt2", 307398990},
		{105862962, "bert", 471568550},
		{168699139, "bart", 210773010},
		{170798353, "gpt2", 307398990},
		{190073348, "bert", 471568550},
		{251896676, "bert", 471568550},
		{266186625, "gpt2", 307398990},
	}
	if len(reqs) != len(golden) {
		t.Fatalf("got %d requests, want %d", len(reqs), len(golden))
	}
	for i, g := range golden {
		r := reqs[i]
		if r.ID != i {
			t.Errorf("request %d: ID %d", i, r.ID)
		}
		if int64(r.Arrival) != g.arrivalNS {
			t.Errorf("request %d: arrival %dns, want %dns", i, int64(r.Arrival), g.arrivalNS)
		}
		if r.Key.Model != g.model {
			t.Errorf("request %d: model %q, want %q", i, r.Key.Model, g.model)
		}
		if int64(r.SLO) != g.sloNS {
			t.Errorf("request %d: SLO %dns, want %dns", i, int64(r.SLO), g.sloNS)
		}
	}
}

// TestGenerateExplicitPoissonBitIdentical is the neutral-knob anchor of
// the traffic extraction: passing traffic.Poisson explicitly produces
// the byte-identical stream the nil default (historical inline loop)
// produces, for every field of every request.
func TestGenerateExplicitPoissonBitIdentical(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	for seed := uint64(1); seed <= 5; seed++ {
		base := GenConfig{Requests: 200, RatePerSec: 30, SLOMultiplier: 10, Seed: seed}
		want, err := Generate(sc, eval, base)
		if err != nil {
			t.Fatal(err)
		}
		withProc := base
		withProc.Process = traffic.NewPoisson(30)
		got, err := Generate(sc, eval, withProc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: explicit poisson process diverged from default", seed)
		}
	}
}

// TestGenerateWithMMPP checks non-stationary generation end to end:
// valid monotone stream, deterministic regeneration (Process is Reset
// by Generate), and arrivals that differ from the stationary ones.
func TestGenerateWithMMPP(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	cfg := GenConfig{Requests: 300, RatePerSec: 30, SLOMultiplier: 10, Seed: 3,
		Process: traffic.Bursty(30, 8, 0.2, 500*time.Millisecond)}
	a, err := Generate(sc, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a); i++ {
		if a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals decrease at %d", i)
		}
	}
	b, err := Generate(sc, eval, cfg) // same stateful Process instance, reused
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("reusing the same MMPP instance changed the stream (Reset broken)")
	}
	plain, err := Generate(sc, eval, GenConfig{
		Requests: 300, RatePerSec: 30, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a[len(a)-1].Arrival == plain[len(plain)-1].Arrival {
		t.Fatal("MMPP stream identical to stationary Poisson")
	}
}

// TestGenerateWithReplay checks that a replayed recording drives the
// arrival clock exactly while sampling still follows the seed.
func TestGenerateWithReplay(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	rec := []time.Duration{5 * time.Millisecond, 9 * time.Millisecond, 20 * time.Millisecond}
	cfg := GenConfig{Requests: 5, SLOMultiplier: 10, Seed: 3,
		Process: traffic.NewReplay("synthetic", rec)}
	reqs, err := Generate(sc, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		5 * time.Millisecond, 9 * time.Millisecond, 20 * time.Millisecond,
		25 * time.Millisecond, 29 * time.Millisecond,
	}
	for i, r := range reqs {
		if r.Arrival != want[i] {
			t.Errorf("request %d arrives at %v, want %v", i, r.Arrival, want[i])
		}
	}
}

// TestGenerateRejectsBadProcess checks that process validation runs
// before generation (including the replay case where RatePerSec is
// legitimately zero).
func TestGenerateRejectsBadProcess(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	if _, err := Generate(sc, eval, GenConfig{
		Requests: 5, SLOMultiplier: 10, Seed: 1,
		Process: traffic.NewPoisson(0)}); err == nil {
		t.Fatal("invalid process accepted")
	}
}
