package workload

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/trace"
)

func buildSmall(t *testing.T, sc Scenario) (*trace.Store, *trace.Store) {
	t.Helper()
	prof, eval, err := BuildStores(sc, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return prof, eval
}

func TestScenarios(t *testing.T) {
	att := MultiAttNN()
	if len(att.Entries) != 3 {
		t.Errorf("multi-attnn has %d entries, want 3", len(att.Entries))
	}
	cnn := MultiCNN()
	if len(cnn.Entries) != 12 {
		t.Errorf("multi-cnn has %d entries, want 12 (4 models x 3 patterns)", len(cnn.Entries))
	}
	if att.Accel.Name() != "sanger" || cnn.Accel.Name() != "eyeriss-v2" {
		t.Error("scenario accelerators wrong")
	}
}

func TestBuildStores(t *testing.T) {
	sc := MultiAttNN()
	prof, eval := buildSmall(t, sc)
	for _, e := range sc.Entries {
		if got := len(prof.Get(e.Key())); got != 8 {
			t.Errorf("%v: %d profiling traces, want 8", e.Key(), got)
		}
		if got := len(eval.Get(e.Key())); got != 16 {
			t.Errorf("%v: %d evaluation traces, want 16", e.Key(), got)
		}
	}
	// Profiling and evaluation sets must differ (disjoint seeds).
	k := sc.Entries[0].Key()
	if prof.Get(k)[0].Total() == eval.Get(k)[0].Total() {
		t.Error("profiling and evaluation traces identical; seed split broken")
	}
}

func TestGenerate(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	reqs, err := Generate(sc, eval, GenConfig{
		Requests: 500, RatePerSec: 30, SLOMultiplier: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 500 {
		t.Fatalf("got %d requests", len(reqs))
	}
	// Arrivals strictly increasing, IDs sequential, SLO = 10x isolated.
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Arrival <= reqs[i-1].Arrival {
			t.Fatalf("arrivals not increasing at %d", i)
		}
		_ = r
		if r.SLO <= 0 {
			t.Fatalf("request %d has non-positive SLO", i)
		}
		if r.Deadline() != r.Arrival+r.SLO {
			t.Fatalf("deadline mismatch at %d", i)
		}
	}
	// Mean inter-arrival ~ 1/30 s.
	meanGap := reqs[len(reqs)-1].Arrival.Seconds() / float64(len(reqs))
	if math.Abs(meanGap-1.0/30) > 0.01 {
		t.Errorf("mean inter-arrival %.4fs, want ~%.4fs", meanGap, 1.0/30)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	cfg := GenConfig{Requests: 50, RatePerSec: 30, SLOMultiplier: 10, Seed: 9}
	a, _ := Generate(sc, eval, cfg)
	b, _ := Generate(sc, eval, cfg)
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Key != b[i].Key {
			t.Fatalf("request %d differs between identical generations", i)
		}
	}
}

func TestGenerateSamplesAllEntries(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	reqs, _ := Generate(sc, eval, GenConfig{
		Requests: 600, RatePerSec: 30, SLOMultiplier: 10, Seed: 11})
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.Key.Model]++
	}
	for _, e := range sc.Entries {
		n := counts[e.Model.Name]
		if n < 100 {
			t.Errorf("%s sampled only %d of 600 under uniform weights", e.Model.Name, n)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	bad := []GenConfig{
		{Requests: 0, RatePerSec: 30, SLOMultiplier: 10},
		{Requests: 10, RatePerSec: 0, SLOMultiplier: 10},
		{Requests: 10, RatePerSec: 30, SLOMultiplier: 0.5},
	}
	for _, cfg := range bad {
		if _, err := Generate(sc, eval, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// Missing traces.
	if _, err := Generate(sc, trace.NewStore(), GenConfig{
		Requests: 10, RatePerSec: 30, SLOMultiplier: 10}); err == nil {
		t.Error("empty store accepted")
	}
	// Empty scenario.
	if _, err := Generate(Scenario{Name: "x"}, eval, GenConfig{
		Requests: 10, RatePerSec: 30, SLOMultiplier: 10}); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestMeanIsolated(t *testing.T) {
	sc := MultiAttNN()
	_, eval := buildSmall(t, sc)
	mean, err := MeanIsolated(sc, eval)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration band from DESIGN.md: tens of milliseconds.
	if mean < 10*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("multi-attnn mean isolated latency = %v, want tens of ms", mean)
	}
	if _, err := MeanIsolated(sc, trace.NewStore()); err == nil {
		t.Error("MeanIsolated accepted empty store")
	}
}

func TestMultiCNNUtilization(t *testing.T) {
	sc := MultiCNN()
	_, eval, err := BuildStores(sc, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := MeanIsolated(sc, eval)
	if err != nil {
		t.Fatal(err)
	}
	// At the paper's 3 req/s the CNN system should sit at moderate-to-high
	// utilization (rho in [0.5, 1.1]).
	rho := 3 * mean.Seconds()
	if rho < 0.5 || rho > 1.1 {
		t.Errorf("multi-cnn utilization at 3 req/s = %.2f, want [0.5, 1.1] (mean %v)", rho, mean)
	}
}

func TestSortByArrival(t *testing.T) {
	reqs := []*Request{
		{ID: 0, Arrival: 30},
		{ID: 1, Arrival: 10},
		{ID: 2, Arrival: 20},
	}
	SortByArrival(reqs)
	if reqs[0].ID != 1 || reqs[1].ID != 2 || reqs[2].ID != 0 {
		t.Errorf("sort order wrong: %v %v %v", reqs[0].ID, reqs[1].ID, reqs[2].ID)
	}
}

// buildStoresSequential is the pre-parallelization reference: one entry
// after another, same per-entry seed derivation as BuildStores.
func buildStoresSequential(sc Scenario, profileSamples, evalSamples int, seed uint64) (*trace.Store, *trace.Store, error) {
	prof, eval := trace.NewStore(), trace.NewStore()
	for i, e := range sc.Entries {
		base := trace.BuildConfig{
			Model:      e.Model,
			Pattern:    e.Pattern,
			WeightRate: e.WeightRate,
		}
		pcfg := base
		pcfg.Samples = profileSamples
		pcfg.Seed = seed + uint64(i)*2
		ptr, err := trace.Build(sc.Accel, pcfg)
		if err != nil {
			return nil, nil, err
		}
		prof.Add(e.Key(), ptr)
		ecfg := base
		ecfg.Samples = evalSamples
		ecfg.Seed = seed + uint64(i)*2 + 1
		etr, err := trace.Build(sc.Accel, ecfg)
		if err != nil {
			return nil, nil, err
		}
		eval.Add(e.Key(), etr)
	}
	return prof, eval, nil
}

// TestBuildStoresMatchesSequential: the concurrent per-pair build must
// produce stores byte-identical to the sequential reference — same keys,
// same traces, same order — for both benchmark scenarios.
func TestBuildStoresMatchesSequential(t *testing.T) {
	for _, sc := range []Scenario{MultiAttNN(), MultiCNN()} {
		gotProf, gotEval, err := BuildStores(sc, 6, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantProf, wantEval, err := buildStoresSequential(sc, 6, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range sc.Entries {
			k := e.Key()
			if !reflect.DeepEqual(gotProf.Get(k), wantProf.Get(k)) {
				t.Errorf("%s: profiling traces for %v diverge from sequential build", sc.Name, k)
			}
			if !reflect.DeepEqual(gotEval.Get(k), wantEval.Get(k)) {
				t.Errorf("%s: evaluation traces for %v diverge from sequential build", sc.Name, k)
			}
		}
		if gotProf.Len() != wantProf.Len() || gotEval.Len() != wantEval.Len() {
			t.Errorf("%s: store key counts diverge", sc.Name)
		}
	}
}

// TestBuildStoresPropagatesError: a broken entry surfaces the first
// failing entry's error.
func TestBuildStoresPropagatesError(t *testing.T) {
	sc := MultiAttNN()
	sc.Entries[1].Model = nil
	if _, _, err := BuildStores(sc, 4, 4, 1); err == nil {
		t.Fatal("nil model accepted")
	}
}
