package workload

import (
	"testing"
	"time"

	"sparsedysta/internal/traffic"
)

// TestStreamMatchesGenerate pins the bit-identity contract between the
// iterator and the materialized path, for the default inline Poisson
// and for an explicit bursty process.
func TestStreamMatchesGenerate(t *testing.T) {
	sc := MultiAttNN()
	_, eval, err := BuildStores(sc, 10, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []GenConfig{
		{Requests: 200, RatePerSec: 30, SLOMultiplier: 10, Seed: 7},
		{Requests: 200, RatePerSec: 30, SLOMultiplier: 10, Seed: 7,
			Process: traffic.Bursty(30, 8, 0.2, 100*time.Millisecond)},
	}
	for ci, cfg := range cfgs {
		reqs, err := Generate(sc, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStream(sc, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != len(reqs) {
			t.Fatalf("cfg %d: stream length %d != %d generated", ci, st.Len(), len(reqs))
		}
		var prev time.Duration
		for i := 0; ; i++ {
			got, ok := st.Next()
			if !ok {
				if i != len(reqs) {
					t.Fatalf("cfg %d: stream ended after %d of %d requests", ci, i, len(reqs))
				}
				break
			}
			want := reqs[i]
			if got.ID != want.ID || got.Key != want.Key || got.Arrival != want.Arrival ||
				got.SLO != want.SLO || &got.Trace.LayerLatency[0] != &want.Trace.LayerLatency[0] {
				t.Fatalf("cfg %d: request %d diverged: stream %+v vs generate %+v", ci, i, got, want)
			}
			if got.Arrival < prev {
				t.Fatalf("cfg %d: arrivals not monotone at request %d", ci, i)
			}
			prev = got.Arrival
		}
		if _, ok := st.Next(); ok {
			t.Fatalf("cfg %d: exhausted stream yielded another request", ci)
		}
	}
}
