package sched

import (
	"testing"
	"testing/quick"
	"time"

	"sparsedysta/internal/rng"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// randomStream builds a random but well-formed request stream plus a
// matching estimator, for property tests over the engine.
func randomStream(seed uint64) ([]*workload.Request, *Estimator) {
	r := rng.New(seed)
	nModels := 1 + r.Intn(3)
	store := trace.NewStore()
	keys := make([]trace.Key, nModels)
	profiles := make([][]trace.SampleTrace, nModels)
	for m := 0; m < nModels; m++ {
		keys[m] = trace.Key{Model: string(rune('a' + m)), Pattern: sparsity.Dense}
		layers := 2 + r.Intn(8)
		nProf := 3
		for p := 0; p < nProf; p++ {
			tr := trace.SampleTrace{
				LayerLatency:  make([]time.Duration, layers),
				LayerSparsity: make([]float64, layers),
			}
			for l := 0; l < layers; l++ {
				tr.LayerLatency[l] = time.Duration(100+r.Intn(5000)) * time.Microsecond
				tr.LayerSparsity[l] = 0.1 + 0.8*r.Float64()
			}
			profiles[m] = append(profiles[m], tr)
		}
		store.Add(keys[m], profiles[m])
	}
	set, err := trace.NewStatsSet(store)
	if err != nil {
		panic(err)
	}

	n := 5 + r.Intn(40)
	reqs := make([]*workload.Request, n)
	var arrival time.Duration
	for i := range reqs {
		arrival += time.Duration(r.Intn(3000)) * time.Microsecond
		m := r.Intn(nModels)
		tr := profiles[m][r.Intn(len(profiles[m]))]
		reqs[i] = &workload.Request{
			ID:      i,
			Key:     keys[m],
			Trace:   tr,
			Arrival: arrival,
			SLO:     time.Duration(float64(tr.Total()) * (1 + 10*r.Float64())),
		}
	}
	return reqs, NewEstimator(set)
}

// engineInvariants checks the universal properties of any correct
// scheduler run.
func engineInvariants(t *testing.T, name string, res Result, reqs []*workload.Request) {
	t.Helper()
	if res.Requests != len(reqs) {
		t.Fatalf("%s: completed %d of %d requests", name, res.Requests, len(reqs))
	}
	if res.ANTT < 1 {
		t.Errorf("%s: ANTT %v below 1 (turnaround cannot beat isolated)", name, res.ANTT)
	}
	if res.ViolationRate < 0 || res.ViolationRate > 1 {
		t.Errorf("%s: violation rate %v outside [0,1]", name, res.ViolationRate)
	}
	var work time.Duration
	var lastArrival time.Duration
	for _, r := range reqs {
		work += r.Trace.Total()
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
	}
	// Work conservation: the makespan is at least the total service time
	// minus the head start before the last arrival, and never less than
	// any single request's service time.
	if res.Makespan < 0 {
		t.Errorf("%s: negative makespan %v", name, res.Makespan)
	}
	if res.Makespan+reqs[0].Arrival < work-lastArrival {
		t.Errorf("%s: makespan %v too small for %v of work", name, res.Makespan, work)
	}
	if res.Throughput < 0 {
		t.Errorf("%s: negative throughput", name)
	}
}

// TestEngineInvariantsAcrossSchedulers drives every baseline over random
// request streams and asserts the universal invariants hold.
func TestEngineInvariantsAcrossSchedulers(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		reqs, est := randomStream(seed)
		specs := []struct {
			name string
			mk   func() Scheduler
		}{
			{"FCFS", func() Scheduler { return NewFCFS() }},
			{"SJF", func() Scheduler { return NewSJF(est) }},
			{"PREMA", func() Scheduler { return NewPREMA(est) }},
			{"Planaria", func() Scheduler { return NewPlanaria(est) }},
			{"SDRM3", func() Scheduler { return NewSDRM3(est) }},
			{"Oracle", func() Scheduler { return NewOracle(0.05) }},
		}
		for _, spec := range specs {
			res, err := Run(spec.mk(), reqs, Options{})
			if err != nil {
				t.Logf("%s failed on seed %d: %v", spec.name, seed, err)
				return false
			}
			engineInvariants(t, spec.name, res, reqs)
		}
		return !t.Failed()
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDeterministic: identical inputs give identical results for
// every scheduler.
func TestEngineDeterministic(t *testing.T) {
	reqs, est := randomStream(77)
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewFCFS() },
		func() Scheduler { return NewSJF(est) },
		func() Scheduler { return NewPREMA(est) },
		func() Scheduler { return NewPlanaria(est) },
		func() Scheduler { return NewSDRM3(est) },
		func() Scheduler { return NewOracle(0.05) },
	} {
		a, err := Run(mk(), reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk(), reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.ANTT != b.ANTT || a.ViolationRate != b.ViolationRate ||
			a.Makespan != b.Makespan || a.Preemptions != b.Preemptions {
			t.Errorf("%s: nondeterministic results: %+v vs %+v", a.Scheduler, a, b)
		}
	}
}

// TestOracleOptimalANTTOnPair: for two simultaneous tasks with equal
// profiles, Oracle(eta=0) achieves the minimum possible ANTT (true
// shortest-first).
func TestOracleOptimalANTTOnPair(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		k := trace.Key{Model: "m", Pattern: sparsity.Dense}
		mk := func(lat time.Duration) trace.SampleTrace {
			tr := trace.SampleTrace{
				LayerLatency:  []time.Duration{lat, lat},
				LayerSparsity: []float64{0.5, 0.5},
			}
			return tr
		}
		latA := time.Duration(1+r.Intn(1000)) * time.Microsecond
		latB := time.Duration(1+r.Intn(1000)) * time.Microsecond
		a := &workload.Request{ID: 0, Key: k, Trace: mk(latA), SLO: time.Hour}
		b := &workload.Request{ID: 1, Key: k, Trace: mk(latB), SLO: time.Hour}
		res, err := Run(NewOracle(0), []*workload.Request{a, b}, Options{})
		if err != nil {
			return false
		}
		// Optimal ANTT: run the shorter first.
		short, long := 2*latA, 2*latB
		if long < short {
			short, long = long, short
		}
		optimal := (1.0 + float64(short+long)/float64(long)) / 2
		return res.ANTT <= optimal+1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
