package sched

import (
	"math"
	"testing"
	"time"
)

// TestAverageResultsPerModelWeighted pins the request-weighted per-model
// math: a seed with three times the requests of another must pull the
// averaged per-model ANTT and violation rate three times as hard.
func TestAverageResultsPerModelWeighted(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", PerModel: map[string]ModelMetrics{
			"bert": {Requests: 30, ANTT: 2.0, ViolationRate: 0.1},
			"gpt2": {Requests: 10, ANTT: 4.0, ViolationRate: 0.5},
		}},
		{Scheduler: "x", PerModel: map[string]ModelMetrics{
			"bert": {Requests: 10, ANTT: 6.0, ViolationRate: 0.5},
			// gpt2 absent this seed: its average must use only the
			// first seed's weight.
		}},
	}
	avg := AverageResults(rs)
	bert := avg.PerModel["bert"]
	if bert.Requests != 40 {
		t.Errorf("bert requests = %d, want 40", bert.Requests)
	}
	// (30*2 + 10*6) / 40 = 3.0; (30*0.1 + 10*0.5) / 40 = 0.2.
	if math.Abs(bert.ANTT-3.0) > 1e-12 {
		t.Errorf("bert ANTT = %v, want 3.0", bert.ANTT)
	}
	if math.Abs(bert.ViolationRate-0.2) > 1e-12 {
		t.Errorf("bert violation rate = %v, want 0.2", bert.ViolationRate)
	}
	gpt := avg.PerModel["gpt2"]
	if gpt.Requests != 10 || gpt.ANTT != 4.0 || gpt.ViolationRate != 0.5 {
		t.Errorf("gpt2 metrics changed by absent seed: %+v", gpt)
	}
}

// TestAverageResultsRounding: the integer counters round to nearest
// instead of truncating.
func TestAverageResultsRounding(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", Preemptions: 10, Requests: 100},
		{Scheduler: "x", Preemptions: 11, Requests: 101},
	}
	avg := AverageResults(rs)
	if avg.Preemptions != 11 { // 10.5 rounds up, not down to 10
		t.Errorf("Preemptions = %d, want 11", avg.Preemptions)
	}
	if avg.Requests != 101 { // 100.5 rounds up
		t.Errorf("Requests = %d, want 101", avg.Requests)
	}
}

// TestAverageResultsEmptyPerModel: without per-model data the average
// keeps PerModel nil and still propagates the scheduler name (from the
// first result that has one).
func TestAverageResultsEmptyPerModel(t *testing.T) {
	rs := []Result{
		{ANTT: 1},
		{Scheduler: "late-name", ANTT: 3},
	}
	avg := AverageResults(rs)
	if avg.PerModel != nil {
		t.Errorf("PerModel allocated with no per-model inputs: %+v", avg.PerModel)
	}
	if avg.Scheduler != "late-name" {
		t.Errorf("Scheduler = %q", avg.Scheduler)
	}
	if avg.ANTT != 2 {
		t.Errorf("ANTT = %v", avg.ANTT)
	}
}

// TestAverageResultsDropsScheduleRecords: Timeline and Tasks are
// documented as intentionally dropped — per-seed schedules have no
// meaningful average.
func TestAverageResultsDropsScheduleRecords(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", Timeline: &Timeline{}, Tasks: []TaskOutcome{{ID: 1}}},
		{Scheduler: "x", Timeline: &Timeline{}, Tasks: []TaskOutcome{{ID: 2}}},
	}
	avg := AverageResults(rs)
	if avg.Timeline != nil || avg.Tasks != nil {
		t.Error("averaging retained Timeline or Tasks")
	}
}

// TestSeedSpreadAcrossSeeds checks the population standard deviation over
// more than two seeds and the degenerate cases.
func TestSeedSpreadAcrossSeeds(t *testing.T) {
	rs := []Result{
		{ANTT: 2, ViolationRate: 0.1},
		{ANTT: 4, ViolationRate: 0.2},
		{ANTT: 6, ViolationRate: 0.3},
	}
	anttSD, violSD := SeedSpread(rs)
	want := math.Sqrt(8.0 / 3.0) // population SD of {2,4,6}
	if math.Abs(anttSD-want) > 1e-12 {
		t.Errorf("ANTT SD = %v, want %v", anttSD, want)
	}
	// Population SD of {0.1, 0.2, 0.3} is sqrt(0.02/3).
	if math.Abs(violSD-math.Sqrt(0.02/3.0)) > 1e-12 {
		t.Errorf("violation SD = %v", violSD)
	}
	if a, v := SeedSpread(nil); a != 0 || v != 0 {
		t.Error("nil spread not zero")
	}
	if a, v := SeedSpread(rs[:1]); a != 0 || v != 0 {
		t.Error("single-seed spread not zero")
	}
	// Identical seeds spread zero.
	same := []Result{{ANTT: 5, ViolationRate: 0.4}, {ANTT: 5, ViolationRate: 0.4}}
	if a, v := SeedSpread(same); a != 0 || v != 0 {
		t.Errorf("identical seeds spread %v, %v", a, v)
	}
	// MeanLatency-style fields do not enter the spread; only the two
	// headline metrics do.
	rs[0].MeanLatency = time.Hour
	if a, _ := SeedSpread(rs); math.Abs(a-want) > 1e-12 {
		t.Error("unrelated fields leaked into the spread")
	}
}
