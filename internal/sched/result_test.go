package sched

import (
	"math"
	"strings"
	"testing"
	"time"
)

// mustAverage averages results that are expected to pass the outcome
// conservation check.
func mustAverage(t *testing.T, rs []Result) Result {
	t.Helper()
	avg, err := AverageResults(rs)
	if err != nil {
		t.Fatal(err)
	}
	return avg
}

// TestAverageResultsPerModelWeighted pins the request-weighted per-model
// math: a seed with three times the requests of another must pull the
// averaged per-model ANTT and violation rate three times as hard.
func TestAverageResultsPerModelWeighted(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", PerModel: map[string]ModelMetrics{
			"bert": {Requests: 30, ANTT: 2.0, ViolationRate: 0.1},
			"gpt2": {Requests: 10, ANTT: 4.0, ViolationRate: 0.5},
		}},
		{Scheduler: "x", PerModel: map[string]ModelMetrics{
			"bert": {Requests: 10, ANTT: 6.0, ViolationRate: 0.5},
			// gpt2 absent this seed: its average must use only the
			// first seed's weight.
		}},
	}
	avg := mustAverage(t, rs)
	bert := avg.PerModel["bert"]
	if bert.Requests != 40 {
		t.Errorf("bert requests = %d, want 40", bert.Requests)
	}
	// (30*2 + 10*6) / 40 = 3.0; (30*0.1 + 10*0.5) / 40 = 0.2.
	if math.Abs(bert.ANTT-3.0) > 1e-12 {
		t.Errorf("bert ANTT = %v, want 3.0", bert.ANTT)
	}
	if math.Abs(bert.ViolationRate-0.2) > 1e-12 {
		t.Errorf("bert violation rate = %v, want 0.2", bert.ViolationRate)
	}
	gpt := avg.PerModel["gpt2"]
	if gpt.Requests != 10 || gpt.ANTT != 4.0 || gpt.ViolationRate != 0.5 {
		t.Errorf("gpt2 metrics changed by absent seed: %+v", gpt)
	}
}

// TestAverageResultsRounding: the integer counters round to nearest
// instead of truncating.
func TestAverageResultsRounding(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", Preemptions: 10, Requests: 100},
		{Scheduler: "x", Preemptions: 11, Requests: 101},
	}
	avg := mustAverage(t, rs)
	if avg.Preemptions != 11 { // 10.5 rounds up, not down to 10
		t.Errorf("Preemptions = %d, want 11", avg.Preemptions)
	}
	if avg.Requests != 101 { // 100.5 rounds up
		t.Errorf("Requests = %d, want 101", avg.Requests)
	}
}

// TestAverageResultsEmptyPerModel: without per-model data the average
// keeps PerModel nil and still propagates the scheduler name (from the
// first result that has one).
func TestAverageResultsEmptyPerModel(t *testing.T) {
	rs := []Result{
		{ANTT: 1},
		{Scheduler: "late-name", ANTT: 3},
	}
	avg := mustAverage(t, rs)
	if avg.PerModel != nil {
		t.Errorf("PerModel allocated with no per-model inputs: %+v", avg.PerModel)
	}
	if avg.Scheduler != "late-name" {
		t.Errorf("Scheduler = %q", avg.Scheduler)
	}
	if avg.ANTT != 2 {
		t.Errorf("ANTT = %v", avg.ANTT)
	}
}

// TestAverageResultsDropsScheduleRecords: Timeline and Tasks are
// documented as intentionally dropped — per-seed schedules have no
// meaningful average.
func TestAverageResultsDropsScheduleRecords(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", Timeline: &Timeline{}, Tasks: []TaskOutcome{{ID: 1}}},
		{Scheduler: "x", Timeline: &Timeline{}, Tasks: []TaskOutcome{{ID: 2}}},
	}
	avg := mustAverage(t, rs)
	if avg.Timeline != nil || avg.Tasks != nil {
		t.Error("averaging retained Timeline or Tasks")
	}
}

// TestAverageResultsOutcomeConservation: a result whose outcome classes
// drift out of conservation (every offered request must land in exactly
// one of goodput, violations, rejected, lost work, dropped) is a
// simulator bug, and AverageResults must refuse it instead of averaging
// the corruption away.
func TestAverageResultsOutcomeConservation(t *testing.T) {
	good := Result{Scheduler: "x",
		Offered: 10, Requests: 7, Violations: 2, Rejected: 2, LostWork: 1}
	if _, err := AverageResults([]Result{good}); err != nil {
		t.Fatalf("conserving result rejected: %v", err)
	}
	bad := good
	bad.LostWork = 0 // one request now unaccounted for
	_, err := AverageResults([]Result{good, bad})
	if err == nil {
		t.Fatal("drifted outcome classes accepted")
	}
	if !strings.Contains(err.Error(), "conserve") {
		t.Errorf("error does not name the conservation failure: %v", err)
	}
	// Legacy results that predate the Offered counter are exempt: the
	// check cannot apply without knowing the offered load.
	legacy := Result{Scheduler: "x", Requests: 5, Rejected: 3}
	if _, err := AverageResults([]Result{legacy}); err != nil {
		t.Errorf("legacy result without Offered rejected: %v", err)
	}
	// The averaged result must itself conserve: Offered is re-derived
	// from the rounded integer classes rather than rounded independently.
	avg := mustAverage(t, []Result{good, {Scheduler: "x",
		Offered: 11, Requests: 8, Violations: 2, Rejected: 2, LostWork: 1}})
	if err := CheckOutcomeConservation(avg); err != nil {
		t.Errorf("averaged result does not conserve: %v", err)
	}
}

// TestSeedSpreadAcrossSeeds checks the population standard deviation over
// more than two seeds and the degenerate cases.
func TestSeedSpreadAcrossSeeds(t *testing.T) {
	rs := []Result{
		{ANTT: 2, ViolationRate: 0.1},
		{ANTT: 4, ViolationRate: 0.2},
		{ANTT: 6, ViolationRate: 0.3},
	}
	anttSD, violSD := SeedSpread(rs)
	want := math.Sqrt(8.0 / 3.0) // population SD of {2,4,6}
	if math.Abs(anttSD-want) > 1e-12 {
		t.Errorf("ANTT SD = %v, want %v", anttSD, want)
	}
	// Population SD of {0.1, 0.2, 0.3} is sqrt(0.02/3).
	if math.Abs(violSD-math.Sqrt(0.02/3.0)) > 1e-12 {
		t.Errorf("violation SD = %v", violSD)
	}
	if a, v := SeedSpread(nil); a != 0 || v != 0 {
		t.Error("nil spread not zero")
	}
	if a, v := SeedSpread(rs[:1]); a != 0 || v != 0 {
		t.Error("single-seed spread not zero")
	}
	// Identical seeds spread zero.
	same := []Result{{ANTT: 5, ViolationRate: 0.4}, {ANTT: 5, ViolationRate: 0.4}}
	if a, v := SeedSpread(same); a != 0 || v != 0 {
		t.Errorf("identical seeds spread %v, %v", a, v)
	}
	// MeanLatency-style fields do not enter the spread; only the two
	// headline metrics do.
	rs[0].MeanLatency = time.Hour
	if a, _ := SeedSpread(rs); math.Abs(a-want) > 1e-12 {
		t.Error("unrelated fields leaked into the spread")
	}
}
