package sched

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// synthReq builds a request with uniform per-layer latency.
func synthReq(id int, model string, arrival, layerLat time.Duration, layers int, sloMult float64) *workload.Request {
	tr := trace.SampleTrace{
		LayerLatency:  make([]time.Duration, layers),
		LayerSparsity: make([]float64, layers),
	}
	for i := range tr.LayerLatency {
		tr.LayerLatency[i] = layerLat
		tr.LayerSparsity[i] = 0.5
	}
	return &workload.Request{
		ID:      id,
		Key:     trace.Key{Model: model, Pattern: sparsity.Dense},
		Trace:   tr,
		Arrival: arrival,
		SLO:     time.Duration(float64(layerLat) * float64(layers) * sloMult),
	}
}

// synthEstimator builds a profiling LUT whose averages equal the synthetic
// traces exactly.
func synthEstimator(reqs ...*workload.Request) *Estimator {
	store := trace.NewStore()
	for _, r := range reqs {
		store.Add(r.Key, []trace.SampleTrace{r.Trace})
	}
	set, err := trace.NewStatsSet(store)
	if err != nil {
		panic(err)
	}
	return NewEstimator(set)
}

func TestRunEmptyStream(t *testing.T) {
	if _, err := Run(NewFCFS(), nil, Options{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestFCFSSequential verifies the engine's arithmetic on a hand-checked
// two-task scenario: task B arrives while A runs and must wait for all of
// A under FCFS.
func TestFCFSSequential(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 4, 100) // isolated 40ms
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	res, err := Run(NewFCFS(), []*workload.Request{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A: finishes at 40ms, turnaround 40ms, NTT 1.0.
	// B: waits until 40ms, finishes at 60ms, turnaround 55ms, NTT 2.75.
	wantANTT := (1.0 + 55.0/20.0) / 2
	if math.Abs(res.ANTT-wantANTT) > 1e-9 {
		t.Errorf("ANTT = %v, want %v", res.ANTT, wantANTT)
	}
	if res.ViolationRate != 0 {
		t.Errorf("violation rate = %v", res.ViolationRate)
	}
	if res.Requests != 2 {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Makespan != 60*time.Millisecond {
		t.Errorf("makespan = %v", res.Makespan)
	}
	if res.Preemptions != 0 {
		t.Errorf("FCFS made %d preemptions", res.Preemptions)
	}
}

// TestSJFPreempts verifies layer-boundary preemption: a short job arriving
// mid-execution of a long job runs to completion first under SJF.
func TestSJFPreempts(t *testing.T) {
	long := synthReq(0, "long", 0, 10*time.Millisecond, 10, 100) // 100ms isolated
	short := synthReq(1, "short", 5*time.Millisecond, 1*time.Millisecond, 2, 100)
	est := synthEstimator(long, short)
	res, err := Run(NewSJF(est), []*workload.Request{long, short}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Short arrives at 5ms during long's first layer (completes 10ms),
	// then runs its 2ms and finishes at 12ms: turnaround 7ms, NTT 3.5.
	// Long finishes at 102ms: NTT 1.02.
	wantANTT := (1.02 + 3.5) / 2
	if math.Abs(res.ANTT-wantANTT) > 1e-9 {
		t.Errorf("ANTT = %v, want %v", res.ANTT, wantANTT)
	}
	if res.Preemptions == 0 {
		t.Error("SJF never preempted")
	}
}

func TestViolationAccounting(t *testing.T) {
	// SLO multiplier 1.0: any queueing delay violates.
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 1)
	b := synthReq(1, "b", 0, 10*time.Millisecond, 2, 1)
	res, err := Run(NewFCFS(), []*workload.Request{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A meets exactly; B finishes at 40ms vs deadline 20ms.
	if res.ViolationRate != 0.5 {
		t.Errorf("violation rate = %v, want 0.5", res.ViolationRate)
	}
}

func TestPreemptionOverhead(t *testing.T) {
	long := synthReq(0, "long", 0, 10*time.Millisecond, 4, 100)
	short := synthReq(1, "short", 5*time.Millisecond, time.Millisecond, 1, 100)
	est := synthEstimator(long, short)
	base, _ := Run(NewSJF(est), []*workload.Request{long, short}, Options{})
	withOv, _ := Run(NewSJF(synthEstimator(long, short)), []*workload.Request{long, short},
		Options{PreemptionOverhead: time.Millisecond})
	if withOv.Makespan <= base.Makespan {
		t.Errorf("preemption overhead did not extend makespan: %v vs %v",
			withOv.Makespan, base.Makespan)
	}
}

func TestIdleGapHandling(t *testing.T) {
	a := synthReq(0, "a", 0, time.Millisecond, 1, 100)
	b := synthReq(1, "b", time.Second, time.Millisecond, 1, 100)
	res, err := Run(NewFCFS(), []*workload.Request{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ANTT != 1.0 {
		t.Errorf("idle-gap ANTT = %v, want 1.0", res.ANTT)
	}
}

// badScheduler returns a task outside the ready queue.
type badScheduler struct{}

func (badScheduler) Name() string                                       { return "bad" }
func (badScheduler) OnArrival(*Task, time.Duration)                     {}
func (badScheduler) OnLayerComplete(*Task, int, float64, time.Duration) {}
func (badScheduler) PickNext(ready []*Task, _ time.Duration) *Task {
	return &Task{}
}

func TestEngineRejectsForeignPick(t *testing.T) {
	a := synthReq(0, "a", 0, time.Millisecond, 1, 100)
	if _, err := Run(badScheduler{}, []*workload.Request{a}, Options{}); err == nil {
		t.Fatal("foreign pick accepted")
	}
}

// TestWorkConservation: with zero preemption overhead, makespan of a
// saturated system equals total service time, independent of scheduler.
func TestWorkConservation(t *testing.T) {
	var reqs []*workload.Request
	var total time.Duration
	for i := 0; i < 10; i++ {
		r := synthReq(i, "m", 0, time.Millisecond, 5, 1000)
		reqs = append(reqs, r)
		total += r.Trace.Total()
	}
	est := synthEstimator(reqs[0])
	for _, s := range []Scheduler{NewFCFS(), NewPlanaria(est), NewOracle(0.4)} {
		res, err := Run(s, reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != total {
			t.Errorf("%s: makespan %v, want %v", s.Name(), res.Makespan, total)
		}
		if res.ANTT < 1 {
			t.Errorf("%s: ANTT %v < 1", s.Name(), res.ANTT)
		}
	}
}

func TestTaskAccessors(t *testing.T) {
	r := synthReq(3, "m", 10*time.Millisecond, 2*time.Millisecond, 4, 10)
	task := newTask(r)
	if task.NumLayers() != 4 {
		t.Errorf("NumLayers = %d", task.NumLayers())
	}
	if task.TrueIsolated() != 8*time.Millisecond {
		t.Errorf("TrueIsolated = %v", task.TrueIsolated())
	}
	if task.TrueRemaining() != 8*time.Millisecond {
		t.Errorf("TrueRemaining = %v", task.TrueRemaining())
	}
	// TrueRemaining is maintained by the engine as layers execute.
	task.NextLayer = 2
	task.trueRemaining -= 4 * time.Millisecond
	if task.TrueRemaining() != 4*time.Millisecond {
		t.Errorf("TrueRemaining after 2 layers = %v", task.TrueRemaining())
	}
	if task.Deadline() != 10*time.Millisecond+80*time.Millisecond {
		t.Errorf("Deadline = %v", task.Deadline())
	}
	// Waited 5ms of the 7ms since arrival (2ms executing).
	task.ExecTime = 2 * time.Millisecond
	if got := task.WaitTime(17 * time.Millisecond); got != 5*time.Millisecond {
		t.Errorf("WaitTime = %v", got)
	}
	if got := task.WaitTime(0); got != 0 {
		t.Errorf("WaitTime before arrival = %v", got)
	}
}

func TestAverageResults(t *testing.T) {
	rs := []Result{
		{Scheduler: "x", ANTT: 1, ViolationRate: 0.2, Throughput: 10,
			MeanLatency: 10 * time.Millisecond, Requests: 100},
		{Scheduler: "x", ANTT: 3, ViolationRate: 0.4, Throughput: 20,
			MeanLatency: 30 * time.Millisecond, Requests: 100},
	}
	avg := mustAverage(t, rs)
	if avg.ANTT != 2 || math.Abs(avg.ViolationRate-0.3) > 1e-12 || avg.Throughput != 15 {
		t.Errorf("averages wrong: %+v", avg)
	}
	if avg.MeanLatency != 20*time.Millisecond {
		t.Errorf("MeanLatency = %v", avg.MeanLatency)
	}
	if avg.Requests != 100 {
		t.Errorf("Requests = %d", avg.Requests)
	}
	if empty := mustAverage(t, nil); empty.Scheduler != "" {
		t.Error("empty average not zero")
	}
}

func TestPerModelBreakdown(t *testing.T) {
	a := synthReq(0, "alpha", 0, 10*time.Millisecond, 2, 1) // meets exactly
	b := synthReq(1, "beta", 0, 10*time.Millisecond, 2, 1)  // waits, violates
	res, err := Run(NewFCFS(), []*workload.Request{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerModel) != 2 {
		t.Fatalf("PerModel has %d entries", len(res.PerModel))
	}
	alpha, beta := res.PerModel["alpha"], res.PerModel["beta"]
	if alpha.Requests != 1 || beta.Requests != 1 {
		t.Errorf("per-model counts wrong: %+v %+v", alpha, beta)
	}
	if alpha.ANTT != 1.0 {
		t.Errorf("alpha ANTT = %v, want 1", alpha.ANTT)
	}
	if beta.ANTT != 2.0 {
		t.Errorf("beta ANTT = %v, want 2 (waited its own length)", beta.ANTT)
	}
	if alpha.ViolationRate != 0 || beta.ViolationRate != 1 {
		t.Errorf("per-model violations wrong: %+v %+v", alpha, beta)
	}
}

func TestSeedSpread(t *testing.T) {
	rs := []Result{
		{ANTT: 1, ViolationRate: 0.1},
		{ANTT: 3, ViolationRate: 0.3},
	}
	anttSD, violSD := SeedSpread(rs)
	if anttSD != 1 {
		t.Errorf("ANTT SD = %v, want 1", anttSD)
	}
	if math.Abs(violSD-0.1) > 1e-12 {
		t.Errorf("violation SD = %v, want 0.1", violSD)
	}
	if a, v := SeedSpread(rs[:1]); a != 0 || v != 0 {
		t.Error("single-seed spread not zero")
	}
}

// TestLatencyScale: a scaled engine runs the same schedule at scaled
// speed — exact doubling for scale 2, exact halving for 0.5 — while the
// ground-truth isolated latency (and so the SLO contract) stays in
// reference units. Scale 1 (and 0) must be bit-identical to the unscaled
// engine.
func TestLatencyScale(t *testing.T) {
	reqs := []*workload.Request{
		synthReq(0, "a", 0, 4*time.Millisecond, 3, 10),
		synthReq(1, "b", 1*time.Millisecond, 2*time.Millisecond, 2, 10),
	}
	run := func(scale float64) Result {
		res, err := Run(NewFCFS(), reqs, Options{LatencyScale: scale, RecordTasks: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if zero := run(0); !reflect.DeepEqual(ref, zero) {
		t.Error("LatencyScale 0 differs from 1 (both mean reference speed)")
	}
	slow := run(2)
	// FCFS on this stream never idles after the first arrival, so every
	// execution interval doubles: request 0 completes at 2x its reference
	// completion, and the trailing request's turnaround more than doubles.
	if want := ref.Tasks[0].Completion * 2; slow.Tasks[0].Completion != want {
		t.Errorf("scaled completion %v, want exactly %v", slow.Tasks[0].Completion, want)
	}
	// Isolated stays the reference contract, so NTT doubles with latency.
	if slow.Tasks[0].Isolated != ref.Tasks[0].Isolated {
		t.Errorf("scaling changed the isolated latency contract: %v vs %v",
			slow.Tasks[0].Isolated, ref.Tasks[0].Isolated)
	}
	if slow.ANTT <= ref.ANTT {
		t.Errorf("half-speed ANTT %.3f not above reference %.3f", slow.ANTT, ref.ANTT)
	}
	fast := run(0.5)
	if fast.MeanLatency >= ref.MeanLatency {
		t.Errorf("double-speed mean latency %v not below reference %v", fast.MeanLatency, ref.MeanLatency)
	}
}

// TestGoodputAccounting: goodput is SLO-met completions per makespan
// second — Throughput * (1 - ViolationRate) by construction.
func TestGoodputAccounting(t *testing.T) {
	reqs := []*workload.Request{
		synthReq(0, "a", 0, 4*time.Millisecond, 3, 1.01),                  // tight: violated once queued behind
		synthReq(1, "a", 1*time.Millisecond, 4*time.Millisecond, 3, 1.01), // waits, violates
		synthReq(2, "a", 40*time.Millisecond, 4*time.Millisecond, 3, 10),  // relaxed, meets
	}
	res, err := Run(NewFCFS(), reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput <= 0 || res.Goodput > res.Throughput {
		t.Fatalf("goodput %v outside (0, throughput %v]", res.Goodput, res.Throughput)
	}
	want := res.Throughput * (1 - res.ViolationRate)
	if diff := res.Goodput - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("goodput %v, want throughput*(1-viol) = %v", res.Goodput, want)
	}
}
