package sched

import (
	"math"
	"testing"
	"time"
)

// TestIndexedHeapOrdering drives an IndexedHeap through pushes, key
// changes and removals, checking the minimum against a linear scan and
// the setIdx positions against the backing slice. Two heaps share the
// same tasks to exercise the external-index contract TaskHeap cannot
// provide.
func TestIndexedHeapOrdering(t *testing.T) {
	type slots struct{ a, b int }
	idx := map[int]*slots{}
	lessArr := func(x, y *Task) bool {
		return x.Arrival < y.Arrival || (x.Arrival == y.Arrival && x.ID < y.ID)
	}
	lessExec := func(x, y *Task) bool {
		return x.ExecTime < y.ExecTime || (x.ExecTime == y.ExecTime && x.ID < y.ID)
	}
	ha := NewIndexedHeap(lessArr, func(task *Task, i int) { idx[task.ID].a = i })
	hb := NewIndexedHeap(lessExec, func(task *Task, i int) { idx[task.ID].b = i })
	if ha.Min() != nil || ha.PopMin() != nil {
		t.Fatal("empty heap yielded a task")
	}
	arrivals := []time.Duration{9, 3, 7, 3, 11, 1, 5, 2}
	var tasks []*Task
	for i, a := range arrivals {
		task := &Task{ID: i, Arrival: a, ExecTime: time.Duration(len(arrivals) - i)}
		idx[i] = &slots{-1, -1}
		tasks = append(tasks, task)
		ha.Push(task)
		hb.Push(task)
	}
	check := func(live []*Task) {
		t.Helper()
		for _, h := range []struct {
			h    *IndexedHeap
			less func(a, b *Task) bool
			get  func(id int) int
		}{
			{ha, lessArr, func(id int) int { return idx[id].a }},
			{hb, lessExec, func(id int) int { return idx[id].b }},
		} {
			if h.h.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", h.h.Len(), len(live))
			}
			for i := 0; i < h.h.Len(); i++ {
				if got := h.get(h.h.At(i).ID); got != i {
					t.Fatalf("task %d carries index %d, sits at %d", h.h.At(i).ID, got, i)
				}
			}
			if len(live) == 0 {
				continue
			}
			want := live[0]
			for _, x := range live[1:] {
				if h.less(x, want) {
					want = x
				}
			}
			if got := h.h.Min(); got != want {
				t.Fatalf("Min = task %d, want %d", got.ID, want.ID)
			}
		}
	}
	check(tasks)
	// Key change in one heap must not disturb the other.
	tasks[0].Arrival = 0
	ha.FixAt(idx[0].a)
	check(tasks)
	// Remove from the middle of each heap, then drain.
	live := append([]*Task(nil), tasks...)
	for len(live) > 0 {
		victim := live[len(live)/2]
		ha.RemoveAt(idx[victim.ID].a)
		hb.RemoveAt(idx[victim.ID].b)
		if idx[victim.ID].a != -1 || idx[victim.ID].b != -1 {
			t.Fatalf("removed task %d keeps indices %+v", victim.ID, idx[victim.ID])
		}
		live = append(live[:len(live)/2], live[len(live)/2+1:]...)
		check(live)
	}
}

// TestScalableMatchesReference proves the ScalablePick path produces
// bit-identical schedules to the reference PickNext for the schedulers
// whose heap bounds are exact (SDRM3 here; Dysta's equivalence test
// lives in internal/core). PREMA's lazy accrual is the documented
// inexact variant, covered by the tolerance test below.
func TestScalableMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		reqs, est := randomStream(seed)
		scalable := Options{RecordTimeline: true, RecordTasks: true, ScalablePick: true}
		reference := Options{RecordTimeline: true, RecordTasks: true, ReferencePick: true}
		fast, err := Run(NewSDRM3(est), reqs, scalable)
		if err != nil {
			t.Fatalf("SDRM3 scalable (seed %d): %v", seed, err)
		}
		ref, err := Run(NewSDRM3(est), reqs, reference)
		if err != nil {
			t.Fatalf("SDRM3 reference (seed %d): %v", seed, err)
		}
		sameResults(t, "SDRM3", fast, ref)
	}
}

// TestScalablePREMAWithinTolerance bounds the drift of PREMA's lazy
// token accrual against the eager reference. The two round threshold
// crossings differently in the last ulps, so individual picks may
// diverge near the boundary; what must hold is that the run is
// conserved (every request completes, work conservation pins the
// makespan) and the aggregate metrics stay within a small tolerance.
func TestScalablePREMAWithinTolerance(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		reqs, est := randomStream(seed)
		fast, err := Run(NewPREMA(est), reqs, Options{ScalablePick: true})
		if err != nil {
			t.Fatalf("PREMA scalable (seed %d): %v", seed, err)
		}
		ref, err := Run(NewPREMA(est), reqs, Options{ReferencePick: true})
		if err != nil {
			t.Fatalf("PREMA reference (seed %d): %v", seed, err)
		}
		if fast.Requests != ref.Requests {
			t.Fatalf("seed %d: scalable completed %d requests, reference %d", seed, fast.Requests, ref.Requests)
		}
		// A work-conserving single engine finishes the same total work
		// over the same arrival pattern whatever the interleaving.
		if fast.Makespan != ref.Makespan {
			t.Errorf("seed %d: makespan %v vs %v", seed, fast.Makespan, ref.Makespan)
		}
		if rel := math.Abs(fast.ANTT-ref.ANTT) / ref.ANTT; rel > 0.05 {
			t.Errorf("seed %d: ANTT diverged %.2f%% (%.4f vs %.4f)", seed, rel*100, fast.ANTT, ref.ANTT)
		}
		if d := math.Abs(fast.ViolationRate - ref.ViolationRate); d > 0.05 {
			t.Errorf("seed %d: violation rate diverged by %.3f (%.3f vs %.3f)", seed, d, fast.ViolationRate, ref.ViolationRate)
		}
	}
}

// TestScalableFallsBackWithoutImplementation checks that ScalablePick on
// a scheduler without the interface silently uses the next-best path and
// changes nothing.
func TestScalableFallsBackWithoutImplementation(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		reqs, _ := randomStream(seed)
		opts := Options{RecordTimeline: true, RecordTasks: true}
		withFlag := opts
		withFlag.ScalablePick = true
		plain, err := Run(NewFCFS(), reqs, opts)
		if err != nil {
			t.Fatalf("FCFS (seed %d): %v", seed, err)
		}
		flagged, err := Run(NewFCFS(), reqs, withFlag)
		if err != nil {
			t.Fatalf("FCFS with ScalablePick (seed %d): %v", seed, err)
		}
		sameResults(t, "FCFS", plain, flagged)
	}
}
