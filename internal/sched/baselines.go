package sched

import (
	"time"

	"sparsedysta/internal/trace"
)

// Estimator wraps the offline profiling LUT (trace.StatsSet) with the
// latency estimates every non-oracle scheduler relies on. This is the
// "execution time estimates obtained through an offline profiling stage"
// of paper §2.1.
//
// The default Estimator is pattern-blind: its profile is per model,
// averaged across sparsity patterns, exactly the limitation the paper's
// Table 1 ascribes to the status-quo schedulers ("Pattern Aware: no").
// Dysta's LUT (trace.StatsSet used directly in internal/core) keys by
// model-pattern pair instead.
type Estimator struct {
	set *trace.StatsSet
	// byModel caches the pattern-blind merge per model.
	byModel map[string]*trace.Stats
}

// NewEstimator returns a pattern-blind Estimator over the profiling LUT.
func NewEstimator(set *trace.StatsSet) *Estimator {
	return &Estimator{set: set, byModel: map[string]*trace.Stats{}}
}

// stats returns the pattern-blind profile for the task's model.
func (e *Estimator) stats(t *Task) *trace.Stats {
	if st, ok := e.byModel[t.Key.Model]; ok {
		return st
	}
	st := e.set.MergedByModel(t.Key.Model)
	if st == nil {
		panic("sched: no profiling stats for model " + t.Key.Model)
	}
	e.byModel[t.Key.Model] = st
	return st
}

// Isolated returns the profiled mean isolated latency of the task's model
// (across patterns).
func (e *Estimator) Isolated(t *Task) time.Duration {
	return e.stats(t).AvgTotal
}

// Remaining returns the profiled mean latency of the task's unexecuted
// layers.
func (e *Estimator) Remaining(t *Task) time.Duration {
	return e.stats(t).AvgRemaining(t.NextLayer)
}

// FCFS is First-Come First-Served: non-preemptive in effect, since the
// earliest arrival stays the minimum until it finishes.
type FCFS struct{}

// NewFCFS returns the FCFS baseline.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (*FCFS) Name() string { return "FCFS" }

// OnArrival implements Scheduler.
func (*FCFS) OnArrival(*Task, time.Duration) {}

// OnLayerComplete implements Scheduler.
func (*FCFS) OnLayerComplete(*Task, int, float64, time.Duration) {}

// PickNext implements Scheduler: earliest arrival, ties by ID.
func (*FCFS) PickNext(ready []*Task, _ time.Duration) *Task {
	best := ready[0]
	for _, t := range ready[1:] {
		if t.Arrival < best.Arrival || (t.Arrival == best.Arrival && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

// SJF is preemptive Shortest-Job First on profiled average remaining time
// — the "traditional heuristic" of paper §2.3.3, whose latency estimate
// ignores per-sample sparsity (Fig. 5a).
type SJF struct {
	est *Estimator
}

// NewSJF returns the SJF baseline.
func NewSJF(est *Estimator) *SJF { return &SJF{est: est} }

// Name implements Scheduler.
func (*SJF) Name() string { return "SJF" }

// OnArrival implements Scheduler.
func (*SJF) OnArrival(*Task, time.Duration) {}

// OnLayerComplete implements Scheduler.
func (*SJF) OnLayerComplete(*Task, int, float64, time.Duration) {}

// PickNext implements Scheduler: minimum estimated remaining time.
func (s *SJF) PickNext(ready []*Task, _ time.Duration) *Task {
	best := ready[0]
	bestRem := s.est.Remaining(best)
	for _, t := range ready[1:] {
		if rem := s.est.Remaining(t); rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	return best
}

// Planaria adapts the deadline-driven task selection of Planaria (Ghodrati
// et al., MICRO 2020) to a time-shared accelerator: with the resource
// requirement pinned to 1 for every task (paper §6.1), its
// slack-and-QoS-driven dispatch reduces to least-slack-first among tasks
// that can still meet their SLO (Planaria's scheduler explicitly checks
// whether a task fits its remaining slack before committing resources);
// tasks that can no longer meet their deadline stop pre-empting feasible
// ones and drain shortest-first. This minimizes SLO violations but makes
// short jobs queue behind urgent long ones, giving the poor ANTT the paper
// reports.
type Planaria struct {
	est *Estimator
}

// NewPlanaria returns the Planaria baseline.
func NewPlanaria(est *Estimator) *Planaria { return &Planaria{est: est} }

// Name implements Scheduler.
func (*Planaria) Name() string { return "Planaria" }

// OnArrival implements Scheduler.
func (*Planaria) OnArrival(*Task, time.Duration) {}

// OnLayerComplete implements Scheduler.
func (*Planaria) OnLayerComplete(*Task, int, float64, time.Duration) {}

// PickNext implements Scheduler: least slack first among feasible tasks;
// if none is feasible, shortest remaining among the hopeless.
func (p *Planaria) PickNext(ready []*Task, now time.Duration) *Task {
	var best *Task
	var bestSlack float64
	for _, t := range ready {
		slack := ms(t.Deadline()-now) - ms(p.est.Remaining(t))
		if slack < 0 {
			continue
		}
		if best == nil || slack < bestSlack || (slack == bestSlack && t.ID < best.ID) {
			best, bestSlack = t, slack
		}
	}
	if best != nil {
		return best
	}
	// All hopeless: drain shortest-first to limit the damage.
	best = ready[0]
	bestRem := p.est.Remaining(best)
	for _, t := range ready[1:] {
		if rem := p.est.Remaining(t); rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	return best
}

// Oracle is the paper's upper-bound scheduler (§6.4): it scores tasks with
// the same balanced objective as Dysta's dynamic level but substitutes the
// ground-truth remaining latency for the prediction, so it bounds what any
// latency predictor could achieve.
type Oracle struct {
	// Eta balances the remaining-time (ANTT) and slack (violation)
	// objectives exactly as in Dysta's dynamic score.
	Eta float64
	// DemotionMS is added to the score of tasks that can no longer meet
	// their deadline, mirroring Dysta's hopeless-task demotion.
	DemotionMS float64
}

// NewOracle returns the Oracle scheduler with the given eta and the
// default demotion.
func NewOracle(eta float64) *Oracle { return &Oracle{Eta: eta, DemotionMS: 1000} }

// Name implements Scheduler.
func (*Oracle) Name() string { return "Oracle" }

// OnArrival implements Scheduler.
func (*Oracle) OnArrival(*Task, time.Duration) {}

// OnLayerComplete implements Scheduler.
func (*Oracle) OnLayerComplete(*Task, int, float64, time.Duration) {}

// PickNext implements Scheduler.
func (o *Oracle) PickNext(ready []*Task, now time.Duration) *Task {
	best := ready[0]
	bestScore := o.score(best, now)
	for _, t := range ready[1:] {
		if sc := o.score(t, now); sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// score mirrors Dysta's dynamic score (Alg. 2 line 11) with perfect
// latency information, in milliseconds. Negative slack is clamped to zero
// so already-hopeless tasks compete on remaining time instead of hijacking
// the queue (the EDF overload pathology).
func (o *Oracle) score(t *Task, now time.Duration) float64 {
	remain := ms(t.TrueRemaining())
	slack := ms(t.Deadline()-now) - remain
	demotion := 0.0
	if slack < 0 {
		slack = 0
		demotion = o.DemotionMS
	}
	return remain + o.Eta*slack + demotion
}

// ms converts a duration to float64 milliseconds, the score unit used
// throughout the schedulers (matching the FP16 hardware's operand scale).
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
