package sched

import (
	"sort"
	"time"

	"sparsedysta/internal/trace"
)

// Estimator wraps the offline profiling LUT (trace.StatsSet) with the
// latency estimates every non-oracle scheduler relies on. This is the
// "execution time estimates obtained through an offline profiling stage"
// of paper §2.1.
//
// The default Estimator is pattern-blind: its profile is per model,
// averaged across sparsity patterns, exactly the limitation the paper's
// Table 1 ascribes to the status-quo schedulers ("Pattern Aware: no").
// Dysta's LUT (trace.StatsSet used directly in internal/core) keys by
// model-pattern pair instead.
//
// All merges are computed eagerly at construction, so an Estimator is
// immutable afterwards and safe to share across concurrently running
// simulations (the parallel experiment runner relies on this).
type Estimator struct {
	set *trace.StatsSet
	// byModel holds the pattern-blind merge per model.
	byModel map[string]*trace.Stats
	// meanIsolated is the mean AvgTotal across profiled models: the
	// population prior for traffic the profiling stage never saw.
	meanIsolated time.Duration
}

// NewEstimator returns a pattern-blind Estimator over the profiling LUT.
func NewEstimator(set *trace.StatsSet) *Estimator {
	e := &Estimator{set: set, byModel: map[string]*trace.Stats{}}
	for _, k := range set.Keys() {
		if _, ok := e.byModel[k.Model]; !ok {
			e.byModel[k.Model] = set.MergedByModel(k.Model)
		}
	}
	// Accumulate in sorted-model order: float addition is not
	// associative, so map-iteration order would make the prior vary
	// between processes for the same inputs.
	models := make([]string, 0, len(e.byModel))
	for m := range e.byModel {
		models = append(models, m)
	}
	sort.Strings(models)
	var sum float64
	for _, m := range models {
		sum += float64(e.byModel[m].AvgTotal)
	}
	if len(models) > 0 {
		e.meanIsolated = time.Duration(sum / float64(len(models)))
	}
	return e
}

// ModelStats returns the pattern-blind profile merged across the model's
// profiled patterns, or nil when the model was never profiled. Cluster
// dispatch fallbacks use it to avoid the panic of the scheduler-facing
// accessors, which run only after workload validation.
func (e *Estimator) ModelStats(model string) *trace.Stats { return e.byModel[model] }

// MeanIsolated returns the mean profiled isolated latency across models:
// the deterministic last-resort estimate for entirely unprofiled traffic.
func (e *Estimator) MeanIsolated() time.Duration { return e.meanIsolated }

// stats returns the pattern-blind profile for the task's model.
func (e *Estimator) stats(t *Task) *trace.Stats {
	st, ok := e.byModel[t.Key.Model]
	if !ok {
		panic("sched: no profiling stats for model " + t.Key.Model)
	}
	return st
}

// Isolated returns the profiled mean isolated latency of the task's model
// (across patterns).
func (e *Estimator) Isolated(t *Task) time.Duration {
	return e.stats(t).AvgTotal
}

// Remaining returns the profiled mean latency of the task's unexecuted
// layers.
func (e *Estimator) Remaining(t *Task) time.Duration {
	return e.stats(t).AvgRemaining(t.NextLayer)
}

// estStats reads the profile a baseline attached at arrival, falling back
// to the estimator lookup for tasks the scheduler never saw arrive.
func estStats(e *Estimator, t *Task) *trace.Stats {
	if st, ok := t.Attachment.(*trace.Stats); ok {
		return st
	}
	return e.stats(t)
}

// FCFS is First-Come First-Served: non-preemptive in effect, since the
// earliest arrival stays the minimum until it finishes. The incremental
// path keeps the ready set in a min-heap keyed by (arrival, ID).
type FCFS struct {
	h *TaskHeap
}

// NewFCFS returns the FCFS baseline.
func NewFCFS() *FCFS {
	return &FCFS{h: NewTaskHeap(func(a, b *Task) bool {
		return a.Arrival < b.Arrival || (a.Arrival == b.Arrival && a.ID < b.ID)
	})}
}

// Name implements Scheduler.
func (*FCFS) Name() string { return "FCFS" }

// OnArrival implements Scheduler.
func (f *FCFS) OnArrival(t *Task, _ time.Duration) { f.h.Push(t) }

// OnLayerComplete implements Scheduler.
func (f *FCFS) OnLayerComplete(t *Task, _ int, _ float64, _ time.Duration) {
	if t.Done {
		f.h.Remove(t)
	}
}

// OnExtract implements TaskExtractor: release the heap slot.
func (f *FCFS) OnExtract(t *Task, _ time.Duration) { f.h.Remove(t) }

// PickNext implements Scheduler: earliest arrival, ties by ID (the
// reference linear scan).
func (*FCFS) PickNext(ready []*Task, _ time.Duration) *Task {
	best := ready[0]
	for _, t := range ready[1:] {
		if t.Arrival < best.Arrival || (t.Arrival == best.Arrival && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

// PickNextIncremental implements IncrementalScheduler: the heap minimum.
func (f *FCFS) PickNextIncremental(*ReadyQueue, time.Duration) *Task { return f.h.Min() }

// SJF is preemptive Shortest-Job First on profiled average remaining time
// — the "traditional heuristic" of paper §2.3.3, whose latency estimate
// ignores per-sample sparsity (Fig. 5a). The incremental path keeps a
// min-heap on (remaining, ID); a task's key only changes when it executes
// a layer, so one Fix per layer completion maintains the order.
type SJF struct {
	est *Estimator
	h   *TaskHeap
}

// NewSJF returns the SJF baseline.
func NewSJF(est *Estimator) *SJF {
	s := &SJF{est: est}
	s.h = NewTaskHeap(func(a, b *Task) bool {
		ra, rb := s.remaining(a), s.remaining(b)
		return ra < rb || (ra == rb && a.ID < b.ID)
	})
	return s
}

// remaining reads the profile attached at arrival (O(1), no model lookup).
func (s *SJF) remaining(t *Task) time.Duration {
	return estStats(s.est, t).AvgRemaining(t.NextLayer)
}

// Name implements Scheduler.
func (*SJF) Name() string { return "SJF" }

// OnArrival implements Scheduler.
func (s *SJF) OnArrival(t *Task, _ time.Duration) {
	t.Attachment = s.est.stats(t)
	s.h.Push(t)
}

// OnLayerComplete implements Scheduler: the executed task's remaining
// estimate shrank, so its heap position is repaired (or released).
func (s *SJF) OnLayerComplete(t *Task, _ int, _ float64, _ time.Duration) {
	if t.Done {
		s.h.Remove(t)
		t.Attachment = nil
		return
	}
	s.h.Fix(t)
}

// OnExtract implements TaskExtractor: release the heap slot and the
// attached profile (the adopting scheduler re-attaches its own).
func (s *SJF) OnExtract(t *Task, _ time.Duration) {
	s.h.Remove(t)
	t.Attachment = nil
}

// PickNext implements Scheduler: minimum estimated remaining time (the
// reference linear scan).
func (s *SJF) PickNext(ready []*Task, _ time.Duration) *Task {
	best := ready[0]
	bestRem := s.est.Remaining(best)
	for _, t := range ready[1:] {
		if rem := s.est.Remaining(t); rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	return best
}

// PickNextIncremental implements IncrementalScheduler: the heap minimum.
func (s *SJF) PickNextIncremental(*ReadyQueue, time.Duration) *Task { return s.h.Min() }

// Planaria adapts the deadline-driven task selection of Planaria (Ghodrati
// et al., MICRO 2020) to a time-shared accelerator: with the resource
// requirement pinned to 1 for every task (paper §6.1), its
// slack-and-QoS-driven dispatch reduces to least-slack-first among tasks
// that can still meet their SLO (Planaria's scheduler explicitly checks
// whether a task fits its remaining slack before committing resources);
// tasks that can no longer meet their deadline stop pre-empting feasible
// ones and drain shortest-first. This minimizes SLO violations but makes
// short jobs queue behind urgent long ones, giving the poor ANTT the paper
// reports.
type Planaria struct {
	est *Estimator
}

// NewPlanaria returns the Planaria baseline.
func NewPlanaria(est *Estimator) *Planaria { return &Planaria{est: est} }

// Name implements Scheduler.
func (*Planaria) Name() string { return "Planaria" }

// OnArrival implements Scheduler.
func (p *Planaria) OnArrival(t *Task, _ time.Duration) { t.Attachment = p.est.stats(t) }

// OnLayerComplete implements Scheduler.
func (*Planaria) OnLayerComplete(t *Task, _ int, _ float64, _ time.Duration) {
	if t.Done {
		t.Attachment = nil
	}
}

// OnExtract implements TaskExtractor: only the attachment holds state.
func (*Planaria) OnExtract(t *Task, _ time.Duration) { t.Attachment = nil }

// PickNext implements Scheduler: least slack first among feasible tasks;
// if none is feasible, shortest remaining among the hopeless (the
// reference two-pass scan).
func (p *Planaria) PickNext(ready []*Task, now time.Duration) *Task {
	var best *Task
	var bestSlack float64
	for _, t := range ready {
		slack := ms(t.Deadline()-now) - ms(p.est.Remaining(t))
		if slack < 0 {
			continue
		}
		if best == nil || slack < bestSlack || (slack == bestSlack && t.ID < best.ID) {
			best, bestSlack = t, slack
		}
	}
	if best != nil {
		return best
	}
	// All hopeless: drain shortest-first to limit the damage.
	best = ready[0]
	bestRem := p.est.Remaining(best)
	for _, t := range ready[1:] {
		if rem := p.est.Remaining(t); rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	return best
}

// PickNextIncremental implements IncrementalScheduler: one pass over the
// queue tracking the feasible and hopeless minima simultaneously, with
// the profile read from the arrival-time attachment.
func (p *Planaria) PickNextIncremental(q *ReadyQueue, now time.Duration) *Task {
	var feasible, hopeless *Task
	var bestSlack float64
	var bestRem time.Duration
	for _, t := range q.Tasks() {
		rem := estStats(p.est, t).AvgRemaining(t.NextLayer)
		slack := ms(t.Deadline()-now) - ms(rem)
		if slack < 0 {
			if hopeless == nil || rem < bestRem || (rem == bestRem && t.ID < hopeless.ID) {
				hopeless, bestRem = t, rem
			}
			continue
		}
		if feasible == nil || slack < bestSlack || (slack == bestSlack && t.ID < feasible.ID) {
			feasible, bestSlack = t, slack
		}
	}
	if feasible != nil {
		return feasible
	}
	return hopeless
}

// Oracle is the paper's upper-bound scheduler (§6.4): it scores tasks with
// the same balanced objective as Dysta's dynamic level but substitutes the
// ground-truth remaining latency for the prediction, so it bounds what any
// latency predictor could achieve.
type Oracle struct {
	// Eta balances the remaining-time (ANTT) and slack (violation)
	// objectives exactly as in Dysta's dynamic score.
	Eta float64
	// DemotionMS is added to the score of tasks that can no longer meet
	// their deadline, mirroring Dysta's hopeless-task demotion.
	DemotionMS float64
}

// NewOracle returns the Oracle scheduler with the given eta and the
// default demotion.
func NewOracle(eta float64) *Oracle { return &Oracle{Eta: eta, DemotionMS: 1000} }

// Name implements Scheduler.
func (*Oracle) Name() string { return "Oracle" }

// OnArrival implements Scheduler.
func (*Oracle) OnArrival(*Task, time.Duration) {}

// OnLayerComplete implements Scheduler.
func (*Oracle) OnLayerComplete(*Task, int, float64, time.Duration) {}

// OnExtract implements TaskExtractor: Oracle keeps no per-task state.
func (*Oracle) OnExtract(*Task, time.Duration) {}

// PickNext implements Scheduler (the reference scan).
func (o *Oracle) PickNext(ready []*Task, now time.Duration) *Task {
	best := ready[0]
	bestScore := o.score(best, now)
	for _, t := range ready[1:] {
		if sc := o.score(t, now); sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// PickNextIncremental implements IncrementalScheduler. Oracle's score is
// already O(1) per task (the engine maintains TrueRemaining as a running
// suffix), so the incremental path is the same scan over the queue view.
func (o *Oracle) PickNextIncremental(q *ReadyQueue, now time.Duration) *Task {
	return o.PickNext(q.Tasks(), now)
}

// score mirrors Dysta's dynamic score (Alg. 2 line 11) with perfect
// latency information, in milliseconds. Negative slack is clamped to zero
// so already-hopeless tasks compete on remaining time instead of hijacking
// the queue (the EDF overload pathology).
func (o *Oracle) score(t *Task, now time.Duration) float64 {
	remain := ms(t.TrueRemaining())
	slack := ms(t.Deadline()-now) - remain
	demotion := 0.0
	if slack < 0 {
		slack = 0
		demotion = o.DemotionMS
	}
	return remain + o.Eta*slack + demotion
}

// ms converts a duration to float64 milliseconds, the score unit used
// throughout the schedulers (matching the FP16 hardware's operand scale).
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

var (
	_ IncrementalScheduler = (*FCFS)(nil)
	_ IncrementalScheduler = (*SJF)(nil)
	_ IncrementalScheduler = (*Planaria)(nil)
	_ IncrementalScheduler = (*Oracle)(nil)

	_ TaskExtractor = (*FCFS)(nil)
	_ TaskExtractor = (*SJF)(nil)
	_ TaskExtractor = (*Planaria)(nil)
	_ TaskExtractor = (*Oracle)(nil)
)
