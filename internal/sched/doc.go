// Package sched implements Phase 2 of the paper's methodology: a
// discrete-event, layer-granularity preemptive scheduling engine for a
// single time-shared accelerator (§4.2.2: "execution is performed in a
// per-layer or per-layer-block manner ... whenever the execution of one
// layer completes, the scheduler is invoked"), the scheduling metrics
// (ANTT, SLO violation rate, STP — §6.1), and the status-quo baseline
// schedulers the paper compares against (§6.1).
//
// # Determinism contracts
//
// Everything above this package (internal/cluster, internal/exp) depends
// on a simulation being a pure function of its inputs. The engine
// guarantees:
//
//   - Virtual-clock ordering. The engine clock advances only in Step,
//     one scheduling decision at a time; NextEvent never mutates state,
//     so an orchestrator can totally order N engines' events before
//     committing any of them. Requests must be injected before the
//     clock passes their arrival; a late injection delays delivery but
//     never rewrites history.
//   - Tie-break totality. Every scheduler's selection rule is a strict
//     lexicographic minimum (score, then task ID), so the pick is
//     independent of ready-queue iteration order — the queue itself
//     (swap-removal, heap internals) carries no semantic order.
//   - Incremental equivalence. Schedulers implementing
//     IncrementalScheduler must pick the identical task the reference
//     PickNext would; Options.ReferencePick forces the reference path
//     and the equivalence tests in this package and internal/exp prove
//     bit-identical schedules.
//   - Extraction integrity. Engine.Extract / Engine.Adopt (request
//     migration) only move tasks that have executed no layer, through
//     the scheduler's TaskExtractor hook, so scheduler state and the
//     task's ground-truth accounting (TrueIsolated/TrueRemaining, kept
//     in reference units) stay exact across engines. A run with no
//     extractions is bit-identical to one on an engine without the
//     migration surfaces.
//
// These contracts are restated operationally in DESIGN.md §7 (hot-path
// architecture) and §9 (migration); the per-knob neutral-settings
// bit-identity rules live with internal/cluster and internal/exp.
package sched
