package sched

import (
	"testing"
	"time"

	"sparsedysta/internal/workload"
)

func tasksOf(reqs ...*workload.Request) []*Task {
	ts := make([]*Task, len(reqs))
	for i, r := range reqs {
		ts[i] = newTask(r)
	}
	return ts
}

func TestFCFSPicksEarliest(t *testing.T) {
	ready := tasksOf(
		synthReq(0, "a", 20*time.Millisecond, time.Millisecond, 1, 10),
		synthReq(1, "b", 10*time.Millisecond, time.Millisecond, 1, 10),
	)
	if got := NewFCFS().PickNext(ready, 0); got != ready[1] {
		t.Errorf("FCFS picked task %d", got.ID)
	}
}

func TestFCFSTieBreaksOnID(t *testing.T) {
	ready := tasksOf(
		synthReq(5, "a", 10*time.Millisecond, time.Millisecond, 1, 10),
		synthReq(2, "b", 10*time.Millisecond, time.Millisecond, 1, 10),
	)
	if got := NewFCFS().PickNext(ready, 0); got.ID != 2 {
		t.Errorf("FCFS tie-break picked %d", got.ID)
	}
}

func TestSJFPicksShortest(t *testing.T) {
	long := synthReq(0, "long", 0, 10*time.Millisecond, 10, 10)
	short := synthReq(1, "short", 0, time.Millisecond, 2, 10)
	est := synthEstimator(long, short)
	ready := tasksOf(long, short)
	if got := NewSJF(est).PickNext(ready, 0); got != ready[1] {
		t.Errorf("SJF picked task %d", got.ID)
	}
	// After the long task executes most layers, its remaining estimate
	// shrinks below the short task's.
	ready[0].NextLayer = 9 // 10ms left under the LUT average
	ready[1].NextLayer = 0 // 2ms left; still shorter
	if got := NewSJF(est).PickNext(ready, 0); got != ready[1] {
		t.Errorf("SJF with progress picked task %d", got.ID)
	}
}

func TestPlanariaPicksLeastFeasibleSlack(t *testing.T) {
	// Task 0: arrival 0, SLO 100ms, 100ms remaining -> slack at t=60ms is
	// 100-60-100 = -60ms: hopeless.
	// Task 1: arrival 50ms, SLO 20ms, 10ms remaining -> slack 0: feasible.
	a := synthReq(0, "a", 0, 10*time.Millisecond, 10, 1)
	b := synthReq(1, "b", 50*time.Millisecond, 10*time.Millisecond, 1, 2)
	est := synthEstimator(a, b)
	ready := tasksOf(a, b)
	if got := NewPlanaria(est).PickNext(ready, 60*time.Millisecond); got != ready[1] {
		t.Errorf("Planaria picked task %d", got.ID)
	}
}

func TestPlanariaDrainsHopelessShortestFirst(t *testing.T) {
	// Both tasks past any chance of meeting their deadlines: the shorter
	// one drains first.
	a := synthReq(0, "a", 0, 10*time.Millisecond, 10, 1)
	b := synthReq(1, "b", 0, 10*time.Millisecond, 2, 1)
	est := synthEstimator(a, b)
	ready := tasksOf(a, b)
	if got := NewPlanaria(est).PickNext(ready, time.Second); got != ready[1] {
		t.Errorf("Planaria drained task %d first", got.ID)
	}
}

func TestOraclePrefersTrueShortJob(t *testing.T) {
	// Two tasks with identical profiles but different true latencies:
	// Oracle (eta=0 -> pure true-SJF) must pick the truly shorter one.
	fast := synthReq(0, "m", 0, time.Millisecond, 4, 100)
	slow := synthReq(1, "m", 0, 10*time.Millisecond, 4, 100)
	ready := tasksOf(fast, slow)
	if got := NewOracle(0).PickNext(ready, 0); got != ready[0] {
		t.Errorf("Oracle picked task %d", got.ID)
	}
}

func TestOracleEtaShiftsToDeadline(t *testing.T) {
	// Short job with loose deadline vs long job about to violate: at
	// eta=1 (pure EDF) the urgent long job wins.
	shortLoose := synthReq(0, "m", 0, time.Millisecond, 2, 10000)
	longUrgent := synthReq(1, "m", 0, 20*time.Millisecond, 5, 1)
	ready := tasksOf(shortLoose, longUrgent)
	if got := NewOracle(1).PickNext(ready, 0); got != ready[1] {
		t.Errorf("Oracle(eta=1) picked task %d", got.ID)
	}
	if got := NewOracle(0).PickNext(ready, 0); got != ready[0] {
		t.Errorf("Oracle(eta=0) picked task %d", got.ID)
	}
}

func TestPREMATokensPromoteStarvedTask(t *testing.T) {
	long := synthReq(0, "long", 0, 50*time.Millisecond, 10, 100)
	short := synthReq(1, "short", 0, time.Millisecond, 2, 100)
	est := synthEstimator(long, short)
	p := NewPREMA(est)
	ready := tasksOf(long, short)
	p.OnArrival(ready[0], 0)
	p.OnArrival(ready[1], 0)

	// Immediately, no tokens: all tasks are candidates, and SJF picks the
	// short one.
	if got := p.PickNext(ready, 0); got != ready[1] {
		t.Errorf("initial pick was task %d", got.ID)
	}

	// Candidate mechanism (white box, accrual suppressed by keeping
	// lastSeen at `now`): the starved long task sits above the threshold
	// while the short one is below and not the incumbent — the long task
	// becomes the sole candidate and overrides SJF order.
	now := 300 * time.Millisecond
	p.state(ready[0]).tokens = p.Threshold + 1
	p.state(ready[1]).tokens = 0
	p.state(ready[0]).lastSeen = now
	p.state(ready[1]).lastSeen = now
	p.lastPick = nil
	if got := p.PickNext(ready, now); got != ready[0] {
		t.Errorf("starved pick was task %d", got.ID)
	}
}

func TestPREMAIncumbentStaysCandidate(t *testing.T) {
	// The running (incumbent) task remains a candidate even with zero
	// tokens, so PREMA does not churn between equals every layer.
	long := synthReq(0, "long", 0, 50*time.Millisecond, 10, 100)
	short := synthReq(1, "short", 0, time.Millisecond, 2, 100)
	est := synthEstimator(long, short)
	p := NewPREMA(est)
	ready := tasksOf(long, short)
	p.OnArrival(ready[0], 0)
	p.OnArrival(ready[1], 0)

	now := 300 * time.Millisecond
	p.state(ready[0]).tokens = p.Threshold + 1
	p.state(ready[1]).tokens = 0
	p.state(ready[0]).lastSeen = now
	p.state(ready[1]).lastSeen = now
	p.lastPick = ready[1] // short is running
	// Both are candidates (long by tokens, short as incumbent): SJF keeps
	// the short incumbent.
	if got := p.PickNext(ready, now); got != ready[1] {
		t.Errorf("incumbent displaced by task %d", got.ID)
	}
}

func TestPREMACleansUpDoneTasks(t *testing.T) {
	r := synthReq(0, "m", 0, time.Millisecond, 1, 100)
	est := synthEstimator(r)
	p := NewPREMA(est)
	task := newTask(r)
	p.OnArrival(task, 0)
	task.NextLayer = 1
	task.Done = true
	p.OnLayerComplete(task, 0, 0.5, time.Millisecond)
	if task.Attachment != nil {
		t.Error("PREMA retained state for a finished task")
	}
}

func TestPriorityForLatencyBuckets(t *testing.T) {
	cases := []struct {
		iso  time.Duration
		want float64
	}{
		{10 * time.Millisecond, 8},
		{40 * time.Millisecond, 4},
		{100 * time.Millisecond, 2},
		{time.Second, 1},
	}
	for _, c := range cases {
		if got := priorityForLatency(c.iso); got != c.want {
			t.Errorf("priorityForLatency(%v) = %v, want %v", c.iso, got, c.want)
		}
	}
}

func TestSDRM3FavorsStarvedTask(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 10, 100)
	b := synthReq(1, "b", 0, 10*time.Millisecond, 10, 100)
	est := synthEstimator(a, b)
	s := NewSDRM3(est)
	ready := tasksOf(a, b)
	// Task 0 has received lots of service; task 1 none: fairness must
	// select task 1.
	ready[0].ExecTime = 50 * time.Millisecond
	ready[0].NextLayer = 5
	if got := s.PickNext(ready, 60*time.Millisecond); got != ready[1] {
		t.Errorf("SDRM3 picked task %d", got.ID)
	}
}

func TestSDRM3UrgencySaturates(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 1)
	est := synthEstimator(a)
	s := NewSDRM3(est)
	task := newTask(a)
	// Past the deadline, the score must stay finite.
	sc := s.mapScore(task, time.Second)
	if sc != sc || sc > 1e12 { // NaN or absurd
		t.Errorf("mapScore past deadline = %v", sc)
	}
}

// TestBaselineCharacters runs all baselines on a contended synthetic
// workload and checks their qualitative characters: SJF beats FCFS on
// ANTT; Planaria (EDF) does not beat SJF on ANTT.
func TestBaselineCharacters(t *testing.T) {
	var reqs []*workload.Request
	id := 0
	// Alternating long and short jobs arriving in bursts.
	for burst := 0; burst < 20; burst++ {
		base := time.Duration(burst) * 30 * time.Millisecond
		reqs = append(reqs,
			synthReq(id, "long", base, 10*time.Millisecond, 5, 8),
			synthReq(id+1, "short", base+time.Millisecond, time.Millisecond, 2, 8),
		)
		id += 2
	}
	est := synthEstimator(reqs[0], reqs[1])
	run := func(s Scheduler) Result {
		res, err := Run(s, reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fcfs := run(NewFCFS())
	sjf := run(NewSJF(est))
	edf := run(NewPlanaria(est))
	if sjf.ANTT >= fcfs.ANTT {
		t.Errorf("SJF ANTT %.3f not below FCFS %.3f", sjf.ANTT, fcfs.ANTT)
	}
	if sjf.ANTT > edf.ANTT {
		t.Errorf("SJF ANTT %.3f above EDF %.3f", sjf.ANTT, edf.ANTT)
	}
}
