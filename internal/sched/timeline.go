package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one contiguous execution interval of a task on the accelerator.
type Span struct {
	TaskID     int
	Start, End time.Duration
	// Layers is the number of consecutive layers executed in the span.
	Layers int
}

// Timeline records who ran when during a simulation — the raw material of
// schedule visualizations like the paper's Fig. 5 timelines. Enable it
// via Options.RecordTimeline.
type Timeline struct {
	Spans []Span
}

// record extends the last span or opens a new one.
func (tl *Timeline) record(taskID int, start, end time.Duration) {
	if n := len(tl.Spans); n > 0 {
		last := &tl.Spans[n-1]
		if last.TaskID == taskID && last.End == start {
			last.End = end
			last.Layers++
			return
		}
	}
	tl.Spans = append(tl.Spans, Span{TaskID: taskID, Start: start, End: end, Layers: 1})
}

// TaskIDs returns the distinct task ids in first-appearance order.
func (tl *Timeline) TaskIDs() []int {
	seen := map[int]bool{}
	var ids []int
	for _, s := range tl.Spans {
		if !seen[s.TaskID] {
			seen[s.TaskID] = true
			ids = append(ids, s.TaskID)
		}
	}
	return ids
}

// Switches counts the context switches (span boundaries between different
// tasks).
func (tl *Timeline) Switches() int {
	n := 0
	for i := 1; i < len(tl.Spans); i++ {
		if tl.Spans[i].TaskID != tl.Spans[i-1].TaskID {
			n++
		}
	}
	return n
}

// Busy returns the total accelerator-busy time.
func (tl *Timeline) Busy() time.Duration {
	var sum time.Duration
	for _, s := range tl.Spans {
		sum += s.End - s.Start
	}
	return sum
}

// Gantt renders the timeline as an ASCII chart, one row per task, `width`
// characters across the full horizon. Idle time shows as '.', execution
// as '#'.
func (tl *Timeline) Gantt(width int) string {
	if len(tl.Spans) == 0 {
		return "(empty timeline)\n"
	}
	if width <= 0 {
		width = 60
	}
	start := tl.Spans[0].Start
	end := tl.Spans[len(tl.Spans)-1].End
	for _, s := range tl.Spans {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	horizon := end - start
	if horizon <= 0 {
		return "(degenerate timeline)\n"
	}
	ids := tl.TaskIDs()
	sort.Ints(ids)
	rows := map[int][]byte{}
	for _, id := range ids {
		rows[id] = []byte(strings.Repeat(".", width))
	}
	for _, s := range tl.Spans {
		lo := int(float64(s.Start-start) / float64(horizon) * float64(width))
		hi := int(float64(s.End-start) / float64(horizon) * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			rows[s.TaskID][i] = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t = [%v, %v]\n", start, end)
	for _, id := range ids {
		fmt.Fprintf(&b, "task %3d |%s|\n", id, rows[id])
	}
	return b.String()
}
