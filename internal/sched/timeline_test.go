package sched

import (
	"strings"
	"testing"
	"time"

	"sparsedysta/internal/workload"
)

func TestTimelineRecordMerging(t *testing.T) {
	tl := &Timeline{}
	tl.record(1, 0, 10)
	tl.record(1, 10, 20) // contiguous same task: merges
	tl.record(2, 20, 30)
	tl.record(1, 30, 40)
	if len(tl.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 (merged)", len(tl.Spans))
	}
	if tl.Spans[0].End != 20 || tl.Spans[0].Layers != 2 {
		t.Errorf("merged span wrong: %+v", tl.Spans[0])
	}
	if tl.Switches() != 2 {
		t.Errorf("switches = %d, want 2", tl.Switches())
	}
	if tl.Busy() != 40 {
		t.Errorf("busy = %v, want 40", tl.Busy())
	}
	ids := tl.TaskIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("task ids = %v", ids)
	}
}

func TestGanttRender(t *testing.T) {
	tl := &Timeline{}
	tl.record(0, 0, 50*time.Millisecond)
	tl.record(1, 50*time.Millisecond, 100*time.Millisecond)
	out := tl.Gantt(20)
	if !strings.Contains(out, "task   0") || !strings.Contains(out, "task   1") {
		t.Errorf("gantt missing rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("gantt missing marks:\n%s", out)
	}
	// Empty and degenerate timelines render without panicking.
	if out := (&Timeline{}).Gantt(20); !strings.Contains(out, "empty") {
		t.Errorf("empty gantt: %q", out)
	}
}

func TestEngineTimelineIntegration(t *testing.T) {
	long := synthReq(0, "long", 0, 10*time.Millisecond, 4, 100)
	short := synthReq(1, "short", 5*time.Millisecond, time.Millisecond, 2, 100)
	est := synthEstimator(long, short)
	res, err := Run(NewSJF(est), []*workload.Request{long, short},
		Options{RecordTimeline: true, RecordTasks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("timeline not recorded")
	}
	if res.Timeline.Busy() != 42*time.Millisecond {
		t.Errorf("busy = %v, want 42ms", res.Timeline.Busy())
	}
	if res.Timeline.Switches() != res.Preemptions+1 {
		// Every preemption is a switch; the final return to the long
		// task adds one more.
		t.Errorf("switches = %d, preemptions = %d", res.Timeline.Switches(), res.Preemptions)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("task outcomes = %d", len(res.Tasks))
	}
	if res.Tasks[0].ID != 0 || res.Tasks[1].ID != 1 {
		t.Errorf("outcomes not sorted by id: %+v", res.Tasks)
	}
	// Short task: arrives 5ms, runs 10..12ms -> NTT = 7/2 = 3.5.
	if got := res.Tasks[1].NTT; got != 3.5 {
		t.Errorf("short NTT = %v, want 3.5", got)
	}
	if res.Tasks[0].Violated || res.Tasks[1].Violated {
		t.Error("loose SLOs should not violate")
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	a := synthReq(0, "a", 0, time.Millisecond, 1, 100)
	res, err := Run(NewFCFS(), []*workload.Request{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil || res.Tasks != nil {
		t.Error("recording enabled without opt-in")
	}
}

func TestWriteOutcomesCSV(t *testing.T) {
	long := synthReq(0, "long", 0, 10*time.Millisecond, 4, 100)
	short := synthReq(1, "short", 5*time.Millisecond, time.Millisecond, 2, 100)
	est := synthEstimator(long, short)
	res, err := Run(NewSJF(est), []*workload.Request{long, short}, Options{RecordTasks: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteOutcomesCSV(&buf, res.Tasks); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,model,arrival_ns") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "short") || !strings.Contains(lines[2], "3.5") {
		t.Errorf("short-task row wrong: %q", lines[2])
	}
}
