package sched

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteOutcomesCSV exports per-request outcomes (from a Run with
// Options.RecordTasks) as CSV for external analysis:
//
//	id, model, arrival_ns, completion_ns, isolated_ns, ntt, violated
func WriteOutcomesCSV(w io.Writer, outcomes []TaskOutcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"id", "model", "arrival_ns", "completion_ns", "isolated_ns", "ntt", "violated",
	}); err != nil {
		return fmt.Errorf("sched: writing outcome header: %w", err)
	}
	for _, o := range outcomes {
		rec := []string{
			strconv.Itoa(o.ID),
			o.Model,
			strconv.FormatInt(int64(o.Arrival), 10),
			strconv.FormatInt(int64(o.Completion), 10),
			strconv.FormatInt(int64(o.Isolated), 10),
			strconv.FormatFloat(o.NTT, 'g', -1, 64),
			strconv.FormatBool(o.Violated),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sched: writing outcome %d: %w", o.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
