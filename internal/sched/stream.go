package sched

import (
	"fmt"
	"time"

	"sparsedysta/internal/workload"
)

// RequestSource is the streaming form of a request slice: an iterator
// yielding requests in nondecreasing arrival order, one at a time, so a
// run never materializes its stream (workload.Stream implements it).
// RunStream and cluster.RunStream enforce the ordering — a source that
// yields a request earlier than its predecessor fails the run, because
// lazy injection would otherwise let the engine's clock pass an arrival
// before the request exists, silently rewriting history.
type RequestSource interface {
	Next() (*workload.Request, bool)
}

// SliceSource adapts a materialized request slice to RequestSource. The
// slice must already be sorted by arrival (use workload.SortByArrival);
// the adapter does not copy or reorder it.
type SliceSource struct {
	reqs []*workload.Request
	next int
}

// NewSliceSource wraps reqs.
func NewSliceSource(reqs []*workload.Request) *SliceSource {
	return &SliceSource{reqs: reqs}
}

// Next implements RequestSource.
func (s *SliceSource) Next() (*workload.Request, bool) {
	if s.next >= len(s.reqs) {
		return nil, false
	}
	r := s.reqs[s.next]
	s.next++
	return r, true
}

// RunStream simulates a request stream under the scheduler without ever
// holding more than the in-flight requests: each request is injected
// when the iterator yields it, after stepping the engine strictly past
// every event before that arrival. The schedule is bit-identical to
// Run on the materialized stream — the engine's next event never
// precedes the next arrival when the step loop breaks, and injection
// happens before any scheduling point at or after the arrival, which is
// exactly the visibility Run's up-front injection provides.
func RunStream(s Scheduler, src RequestSource, opts Options) (Result, error) {
	e := NewEngine(s, opts)
	req, ok := src.Next()
	if !ok {
		return Result{}, fmt.Errorf("sched: empty request stream")
	}
	var lastArrival int64 = -1
	for ok {
		if int64(req.Arrival) < lastArrival {
			return Result{}, fmt.Errorf(
				"sched: RunStream source yielded request %d at %v after an arrival at %v (stream must be sorted)",
				req.ID, req.Arrival, time.Duration(lastArrival))
		}
		lastArrival = int64(req.Arrival)
		for !e.Drained() {
			t, _ := e.NextEvent()
			if t >= req.Arrival {
				break
			}
			if _, err := e.Step(); err != nil {
				return Result{}, err
			}
		}
		if err := e.Inject(req, req.Arrival); err != nil {
			return Result{}, err
		}
		req, ok = src.Next()
	}
	for !e.Drained() {
		if _, err := e.Step(); err != nil {
			return Result{}, err
		}
	}
	return e.Finish(), nil
}
