package sched

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/workload"
)

// TestEngineStepMatchesRun drives the steppable API by hand — injecting
// requests one at a time just before the engine reaches their arrival, the
// way a cluster dispatcher does — and demands a bit-identical Result to
// the all-upfront Run loop, for every scheduler.
func TestEngineStepMatchesRun(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		reqs, est := randomStream(seed)
		specs := []struct {
			name string
			mk   func() Scheduler
		}{
			{"FCFS", func() Scheduler { return NewFCFS() }},
			{"SJF", func() Scheduler { return NewSJF(est) }},
			{"PREMA", func() Scheduler { return NewPREMA(est) }},
			{"Planaria", func() Scheduler { return NewPlanaria(est) }},
			{"SDRM3", func() Scheduler { return NewSDRM3(est) }},
			{"Oracle", func() Scheduler { return NewOracle(0.05) }},
		}
		opts := Options{RecordTimeline: true, RecordTasks: true}
		for _, spec := range specs {
			want, err := Run(spec.mk(), reqs, opts)
			if err != nil {
				t.Fatalf("%s Run (seed %d): %v", spec.name, seed, err)
			}

			e := NewEngine(spec.mk(), opts)
			sorted := append([]*workload.Request(nil), reqs...)
			workload.SortByArrival(sorted)
			next := 0
			for next < len(sorted) || !e.Drained() {
				// Inject every request whose arrival the engine's next
				// event would reach or pass.
				for next < len(sorted) {
					ev, ok := e.NextEvent()
					if ok && ev < sorted[next].Arrival {
						break
					}
					if err := e.Inject(sorted[next], sorted[next].Arrival); err != nil {
						t.Fatal(err)
					}
					next++
				}
				if e.Drained() {
					continue
				}
				if _, err := e.Step(); err != nil {
					t.Fatalf("%s Step (seed %d): %v", spec.name, seed, err)
				}
			}
			got := e.Finish()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s (seed %d): stepped engine diverges from Run:\n%+v\nvs\n%+v",
					spec.name, seed, got, want)
			}
		}
	}
}

// TestEngineStepReturnsClock verifies Step's return value is the time of
// the next scheduling decision and NextEvent agrees with it.
func TestEngineStepReturnsClock(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 100)
	b := synthReq(1, "b", time.Second, 10*time.Millisecond, 1, 100)
	e := NewEngine(NewFCFS(), Options{})
	for _, r := range []*workload.Request{a, b} {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if ev, ok := e.NextEvent(); !ok || ev != 0 {
		t.Fatalf("NextEvent before first step = %v, %v", ev, ok)
	}
	now, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	if now != 10*time.Millisecond {
		t.Errorf("clock after layer 1 = %v", now)
	}
	if e.Now() != now {
		t.Errorf("Now() = %v, Step returned %v", e.Now(), now)
	}
	if _, err := e.Step(); err != nil { // finishes a at 20ms
		t.Fatal(err)
	}
	// Engine idle until b arrives at 1s.
	if ev, ok := e.NextEvent(); !ok || ev != time.Second {
		t.Errorf("NextEvent over idle gap = %v, %v", ev, ok)
	}
	now, err = e.Step()
	if err != nil {
		t.Fatal(err)
	}
	if now != time.Second+10*time.Millisecond {
		t.Errorf("clock after idle jump + layer = %v", now)
	}
	if !e.Drained() {
		t.Error("engine not drained after all layers")
	}
	if _, ok := e.NextEvent(); ok {
		t.Error("drained engine still reports a next event")
	}
}

// TestEngineAccessors exercises the dispatcher-facing state accessors.
func TestEngineAccessors(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 100)
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	e := NewEngine(NewFCFS(), Options{})
	if e.Outstanding() != 0 || e.Completed() != 0 || e.BusyTime() != 0 {
		t.Fatal("fresh engine not empty")
	}
	for _, r := range []*workload.Request{a, b} {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if e.Outstanding() != 2 {
		t.Errorf("Outstanding = %d", e.Outstanding())
	}
	// Uniform unit load: backlog counts outstanding tasks.
	unit := func(*Task) time.Duration { return time.Millisecond }
	if got := e.EstimatedBacklog(unit); got != 2*time.Millisecond {
		t.Errorf("EstimatedBacklog = %v", got)
	}
	for !e.Drained() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Outstanding() != 0 || e.Completed() != 2 {
		t.Errorf("after drain: outstanding %d, completed %d", e.Outstanding(), e.Completed())
	}
	if e.BusyTime() != 40*time.Millisecond {
		t.Errorf("BusyTime = %v", e.BusyTime())
	}
	if got := e.EstimatedBacklog(unit); got != 0 {
		t.Errorf("EstimatedBacklog after drain = %v", got)
	}
}

// TestEngineLifecycleErrors covers the seal-after-Finish contract and
// stepping a drained engine.
func TestEngineLifecycleErrors(t *testing.T) {
	e := NewEngine(NewFCFS(), Options{})
	if _, err := e.Step(); err == nil {
		t.Error("Step on a drained engine accepted")
	}
	r := synthReq(0, "a", 0, time.Millisecond, 1, 100)
	if err := e.Inject(r, r.Arrival); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	res := e.Finish()
	if res.Requests != 1 {
		t.Errorf("Requests = %d", res.Requests)
	}
	if err := e.Inject(r, r.Arrival); err == nil {
		t.Error("Inject after Finish accepted")
	}
	if _, err := e.Step(); err == nil {
		t.Error("Step after Finish accepted")
	}
	// Finish is idempotent.
	if again := e.Finish(); !reflect.DeepEqual(again, res) {
		t.Error("second Finish diverges")
	}
}

// TestEngineEarlyFinishReportsDropped: finalizing an undrained engine is
// visible — the outstanding requests surface in Result.Dropped instead of
// silently vanishing from the metrics.
func TestEngineEarlyFinishReportsDropped(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 100)
	b := synthReq(1, "b", 0, 10*time.Millisecond, 2, 100)
	e := NewEngine(NewFCFS(), Options{})
	for _, r := range []*workload.Request{a, b} {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	// Complete only a (two layers), leaving b outstanding.
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Finish()
	if res.Requests != 1 || res.Dropped != 1 {
		t.Errorf("Requests = %d, Dropped = %d; want 1, 1", res.Requests, res.Dropped)
	}
	// A drained run reports zero dropped.
	full, err := Run(NewFCFS(), []*workload.Request{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Dropped != 0 {
		t.Errorf("drained run Dropped = %d", full.Dropped)
	}
}

// TestEngineLateInjection: a request injected after its nominal arrival is
// delivered at the injection time, not retroactively.
func TestEngineLateInjection(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 100)
	late := synthReq(1, "b", 0, 10*time.Millisecond, 1, 100) // nominal arrival 0
	e := NewEngine(NewFCFS(), Options{})
	if err := e.Inject(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil { // clock now 10ms
		t.Fatal(err)
	}
	// Injected at 15ms: visible from 15ms, so delivered at the 20ms
	// boundary even though its arrival field says 0.
	if err := e.Inject(late, 15*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for !e.Drained() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Finish()
	// b runs 20..30ms; its turnaround still counts from the nominal
	// arrival (30ms), NTT 3.
	if res.Requests != 2 {
		t.Fatalf("Requests = %d", res.Requests)
	}
	wantANTT := (1.0 + 3.0) / 2
	if res.ANTT != wantANTT {
		t.Errorf("ANTT = %v, want %v", res.ANTT, wantANTT)
	}
}
