package sched

import (
	"strings"
	"testing"
	"time"

	"sparsedysta/internal/workload"
)

// This file pins the incremental backlog accounting: an engine bound to a
// BacklogEstimator maintains Backlog() as a running integer sum that must
// equal the O(n) EstimatedBacklog scan — bit for bit, at every instant,
// across every queue mutation (Inject, delivery, layer completion,
// Extract, Adopt, Crash). The scan stays in the codebase precisely to be
// the reference these tests compare against.

// backlogLoad returns the estimator-backed load and its curve form for
// the synthetic fixtures (the sched-package analogue of the cluster
// package's BlindLoad/BlindCurve pair).
func backlogLoad(est *Estimator) (func(*Task) time.Duration, func(*Task) []time.Duration) {
	load := func(t *Task) time.Duration { return est.Remaining(t) }
	curve := func(t *Task) []time.Duration {
		if st := est.ModelStats(t.Key.Model); st != nil {
			return st.RemainingCurve()
		}
		return nil
	}
	return load, curve
}

// checkBacklog asserts the incremental sum equals the reference scan.
func checkBacklog(t *testing.T, label string, e *Engine, load func(*Task) time.Duration) {
	t.Helper()
	if !e.BacklogBound() {
		t.Fatalf("%s: engine not backlog-bound", label)
	}
	if got, want := e.Backlog(), e.EstimatedBacklog(load); got != want {
		t.Fatalf("%s: incremental backlog %v != scan %v", label, got, want)
	}
}

// TestBacklogMatchesScanThroughLifecycle drives one engine through every
// queue mutation — injection, visibility delivery, per-layer execution,
// completion — checking the invariant after each step, with and without
// the curve fast path (the two paths must agree exactly: the curve is the
// same suffix table AvgRemaining indexes).
func TestBacklogMatchesScanThroughLifecycle(t *testing.T) {
	reqs := []*workload.Request{
		synthReq(0, "a", 0, 10*time.Millisecond, 4, 100),
		synthReq(1, "b", 5*time.Millisecond, 7*time.Millisecond, 3, 100),
		synthReq(2, "a", 12*time.Millisecond, 10*time.Millisecond, 4, 100),
		synthReq(3, "b", 30*time.Millisecond, 7*time.Millisecond, 3, 100),
	}
	est := synthEstimator(reqs...)
	load, curve := backlogLoad(est)
	for _, mode := range []struct {
		name  string
		curve func(*Task) []time.Duration
	}{{"scalar", nil}, {"curve", curve}} {
		e := NewEngine(NewSJF(est), Options{
			BacklogEstimator: load, BacklogCurve: mode.curve})
		checkBacklog(t, mode.name+"/empty", e, load)
		for _, r := range reqs {
			if err := e.Inject(r, 0); err != nil {
				t.Fatal(err)
			}
			checkBacklog(t, mode.name+"/inject", e, load)
		}
		for !e.Drained() {
			if _, err := e.Step(); err != nil {
				t.Fatal(err)
			}
			checkBacklog(t, mode.name+"/step", e, load)
		}
		if e.Backlog() != 0 {
			t.Fatalf("%s: drained engine reports backlog %v", mode.name, e.Backlog())
		}
	}
}

// TestBacklogMatchesScanAcrossMigration pins the invariant across the
// extraction contract: Extract removes the task's contribution from the
// donor, Adopt adds it to the adopter (visibility delay included — an
// adopted-but-undelivered request is backlog, see
// TestPendingBacklogCountsVisibilityDelayed), and Crash zeroes the sum.
func TestBacklogMatchesScanAcrossMigration(t *testing.T) {
	reqs := []*workload.Request{
		synthReq(0, "a", 0, 10*time.Millisecond, 4, 100),
		synthReq(1, "b", 0, 7*time.Millisecond, 3, 100),
		synthReq(2, "a", 1*time.Millisecond, 10*time.Millisecond, 4, 100),
	}
	est := synthEstimator(reqs...)
	load, curve := backlogLoad(est)
	donor := NewEngine(NewFCFS(), Options{BacklogEstimator: load, BacklogCurve: curve})
	adopter := NewEngine(NewFCFS(), Options{BacklogEstimator: load})
	for _, r := range reqs {
		if err := donor.Inject(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	tk, err := donor.Extract(2)
	if err != nil {
		t.Fatal(err)
	}
	checkBacklog(t, "donor/extract", donor, load)
	if adopter.Backlog() != 0 {
		t.Fatalf("fresh adopter backlog %v", adopter.Backlog())
	}
	if err := adopter.Adopt(tk, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	checkBacklog(t, "adopter/adopt", adopter, load)
	if adopter.Backlog() == 0 {
		t.Fatal("adopted request contributes no backlog")
	}

	queued, started, err := donor.Crash(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(queued)+len(started) != 2 {
		t.Fatalf("crash returned %d+%d tasks, want 2", len(queued), len(started))
	}
	checkBacklog(t, "donor/crash", donor, load)
	if donor.Backlog() != 0 {
		t.Fatalf("crashed engine reports backlog %v", donor.Backlog())
	}
	drainEngine(t, adopter)
	checkBacklog(t, "adopter/drained", adopter, load)
}

// TestPendingBacklogCountsVisibilityDelayed pins the EstimatedBacklog
// semantics decision: a visibility-delayed pending request (injected
// ahead of its arrival, or adopted with a migration cost) counts exactly
// like a ready one — it is committed future work for this engine, and
// ignoring it would make an adopting engine look idle to every signal
// consumer at precisely the instant it was chosen to absorb load. The
// incremental sum inherits the same semantics (accountAdd at
// Inject/Adopt, not at delivery).
func TestPendingBacklogCountsVisibilityDelayed(t *testing.T) {
	future := synthReq(0, "a", 50*time.Millisecond, 10*time.Millisecond, 4, 100)
	est := synthEstimator(future)
	load, _ := backlogLoad(est)
	e := NewEngine(NewFCFS(), Options{BacklogEstimator: load})
	// Injected at t=0, not deliverable before t=50ms: pending, invisible
	// to the scheduler — but already this engine's committed work.
	if err := e.Inject(future, 0); err != nil {
		t.Fatal(err)
	}
	want := load(mustTask(t, e, 0))
	if got := e.EstimatedBacklog(load); got != want {
		t.Fatalf("pending request contributes %v to the scan, want full estimate %v", got, want)
	}
	if got := e.Backlog(); got != want {
		t.Fatalf("pending request contributes %v to the incremental sum, want %v", got, want)
	}
}

// mustTask fetches an engine-held task by ID via the migration surface
// (Migratable lists pending and never-started ready tasks).
func mustTask(t *testing.T, e *Engine, id int) *Task {
	t.Helper()
	for _, tk := range e.Migratable() {
		if tk.ID == id {
			return tk
		}
	}
	t.Fatalf("task %d not migratable", id)
	return nil
}

// TestBacklogCurveMismatchRejected: the curve is an optimization of the
// scalar estimate and the engine cross-checks the pair at every
// enrollment, so a curve that disagrees with its estimator is an
// immediate injection error — never a silently diverging signal.
func TestBacklogCurveMismatchRejected(t *testing.T) {
	r := synthReq(0, "a", 0, 10*time.Millisecond, 4, 100)
	est := synthEstimator(r)
	load, _ := backlogLoad(est)
	lying := func(*Task) []time.Duration {
		c := make([]time.Duration, 5)
		for i := range c {
			c[i] = time.Second // not what load says
		}
		return c
	}
	e := NewEngine(NewFCFS(), Options{BacklogEstimator: load, BacklogCurve: lying})
	err := e.Inject(r, 0)
	if err == nil {
		t.Fatal("injection with a disagreeing BacklogCurve succeeded")
	}
	if !strings.Contains(err.Error(), "BacklogCurve disagrees") {
		t.Fatalf("unexpected error: %v", err)
	}
}
