package sched_test

import (
	"reflect"
	"testing"

	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// streamFixture builds the shared workload for the streaming tests.
func streamFixture(t *testing.T, requests int, seed uint64) (*trace.StatsSet, []*workload.Request, workload.Scenario, *trace.Store, workload.GenConfig) {
	t.Helper()
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 20, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.GenConfig{Requests: requests, RatePerSec: 40, SLOMultiplier: 10, Seed: seed}
	reqs, err := workload.Generate(sc, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lut, reqs, sc, eval, cfg
}

// TestRunStreamMatchesRun pins the lazy-injection equivalence: driving
// the engine from an iterator produces the byte-identical Result of the
// materialized Run, for every standard scheduler.
func TestRunStreamMatchesRun(t *testing.T) {
	lut, reqs, sc, eval, cfg := streamFixture(t, 400, 3)
	est := sched.NewEstimator(lut)
	mks := map[string]func() sched.Scheduler{
		"FCFS":  func() sched.Scheduler { return sched.NewFCFS() },
		"SJF":   func() sched.Scheduler { return sched.NewSJF(est) },
		"PREMA": func() sched.Scheduler { return sched.NewPREMA(est) },
		"SDRM3": func() sched.Scheduler { return sched.NewSDRM3(est) },
		"Dysta": func() sched.Scheduler { return core.NewDefault(lut) },
	}
	for name, mk := range mks {
		want, err := sched.Run(mk(), reqs, sched.Options{RecordTasks: true})
		if err != nil {
			t.Fatal(err)
		}
		st, err := workload.NewStream(sc, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sched.RunStream(mk(), st, sched.Options{RecordTasks: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: RunStream diverged from Run:\n run:    %+v\n stream: %+v", name, want, got)
		}
	}
}

// TestBoundedCaptureMatchesFull pins the bounded-memory metric
// contract: every Result field except the histogram-derived latency
// percentiles and the capture payloads (Tasks, Timeline, Exemplars) is
// bit-identical between full and bounded capture, and the bounded
// percentiles sit within one histogram bucket above the exact ones.
func TestBoundedCaptureMatchesFull(t *testing.T) {
	lut, reqs, _, _, _ := streamFixture(t, 400, 5)
	full, err := sched.Run(core.NewDefault(lut), reqs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := sched.Run(core.NewDefault(lut), reqs,
		sched.Options{BoundedCapture: true, Exemplars: 16, ExemplarSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded.Exemplars) != 16 {
		t.Fatalf("bounded run kept %d exemplars, want 16", len(bounded.Exemplars))
	}

	// Compare everything except the documented divergences.
	fullCmp, boundedCmp := full, bounded
	fullCmp.P50Latency, fullCmp.P95Latency, fullCmp.P99Latency = 0, 0, 0
	boundedCmp.P50Latency, boundedCmp.P95Latency, boundedCmp.P99Latency = 0, 0, 0
	fullCmp.Tasks, fullCmp.Timeline, fullCmp.Exemplars = nil, nil, nil
	boundedCmp.Tasks, boundedCmp.Timeline, boundedCmp.Exemplars = nil, nil, nil
	if !reflect.DeepEqual(fullCmp, boundedCmp) {
		t.Errorf("bounded capture diverged beyond percentiles:\n full:    %+v\n bounded: %+v", fullCmp, boundedCmp)
	}

	for _, p := range []struct {
		name        string
		exact, hist int64
	}{
		{"p50", int64(full.P50Latency), int64(bounded.P50Latency)},
		{"p95", int64(full.P95Latency), int64(bounded.P95Latency)},
		{"p99", int64(full.P99Latency), int64(bounded.P99Latency)},
	} {
		// One bucket width at the histogram value is at most hist/32+1;
		// the interpolated exact quantile can additionally sit up to one
		// order statistic below the nearest-rank one the histogram
		// brackets, so allow two widths.
		slack := 2 * (p.hist/32 + 1)
		if p.exact > p.hist || p.hist-p.exact > slack {
			t.Errorf("%s: bounded %d vs exact %d outside histogram error bound %d",
				p.name, p.hist, p.exact, slack)
		}
	}
}
