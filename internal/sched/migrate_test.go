package sched

import (
	"testing"
	"time"

	"sparsedysta/internal/workload"
)

// drainEngine steps the engine until it has no more events.
func drainEngine(t *testing.T, e *Engine) {
	t.Helper()
	for !e.Drained() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExtractFromPending: a request injected but not yet delivered can be
// extracted without scheduler cooperation, and the donor's accounting
// forgets it entirely.
func TestExtractFromPending(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 4, 100)
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	e := NewEngine(NewFCFS(), Options{})
	if err := e.Inject(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(b, 0); err != nil {
		t.Fatal(err)
	}
	// No Step yet: both requests sit in pending.
	tk, err := e.Extract(1)
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID != 1 || tk.NextLayer != 0 {
		t.Fatalf("extracted task %+v", tk)
	}
	if e.Outstanding() != 1 {
		t.Fatalf("outstanding %d after extraction", e.Outstanding())
	}
	drainEngine(t, e)
	res := e.Finish()
	if res.Requests != 1 || res.Dropped != 0 {
		t.Fatalf("donor result %+v: extracted request still counted", res)
	}
	if res.Makespan != 40*time.Millisecond {
		t.Errorf("makespan %v, want 40ms", res.Makespan)
	}
}

// TestExtractFromReady: a delivered-but-never-started request is
// extracted through the scheduler's OnExtract, which must release its
// bookkeeping — under FCFS the heap slot, whose staleness would otherwise
// resurface the departed task as a future pick.
func TestExtractFromReady(t *testing.T) {
	// Long A arrives first and runs; B arrives during A and queues.
	a := synthReq(0, "a", 0, 10*time.Millisecond, 4, 100)
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	e := NewEngine(NewFCFS(), Options{})
	for _, r := range []*workload.Request{a, b} {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	// Two steps: both delivered, A has executed layers, B is queued.
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	tk, err := e.Extract(1)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Attachment != nil {
		t.Error("extracted task still carries scheduler state")
	}
	if tk.TrueRemaining() != tk.TrueIsolated() {
		t.Errorf("never-started task TrueRemaining %v != TrueIsolated %v",
			tk.TrueRemaining(), tk.TrueIsolated())
	}
	drainEngine(t, e)
	res := e.Finish()
	if res.Requests != 1 || res.Dropped != 0 {
		t.Fatalf("donor result %+v", res)
	}
}

// TestExtractErrors: unknown IDs, started tasks, and schedulers without
// TaskExtractor all fail loudly instead of corrupting state.
func TestExtractErrors(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 4, 100)
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	e := NewEngine(NewFCFS(), Options{})
	for _, r := range []*workload.Request{a, b} {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Extract(42); err == nil {
		t.Error("unknown ID accepted")
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Extract(0); err == nil {
		t.Error("started task extracted")
	}

	// A scheduler without OnExtract refuses ready-queue extraction but
	// still allows pending extraction (which needs no cooperation).
	ne := NewEngine(noExtract{s: NewFCFS()}, Options{})
	for _, r := range []*workload.Request{a, b} {
		if err := ne.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ne.Extract(1); err != nil {
		t.Errorf("pending extraction should not need TaskExtractor: %v", err)
	}
	if err := ne.Inject(b, b.Arrival); err != nil {
		t.Fatal(err)
	}
	// Two steps: b gets delivered to the ready queue but never runs
	// (FCFS keeps executing the earlier a).
	for i := 0; i < 2; i++ {
		if _, err := ne.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ne.Extract(1); err == nil {
		t.Error("ready-queue extraction without TaskExtractor accepted")
	}
}

// noExtract forwards the core Scheduler methods of a wrapped FCFS while
// hiding its OnExtract (an embedded field would re-export it).
type noExtract struct{ s *FCFS }

func (n noExtract) Name() string                                { return "no-extract" }
func (n noExtract) OnArrival(t *Task, now time.Duration)        { n.s.OnArrival(t, now) }
func (n noExtract) PickNext(r []*Task, now time.Duration) *Task { return n.s.PickNext(r, now) }
func (n noExtract) OnLayerComplete(t *Task, layer int, mon float64, now time.Duration) {
	n.s.OnLayerComplete(t, layer, mon, now)
}

// TestAdoptChargesVisibilityDelay: an adopted request becomes schedulable
// only at the adoption instant (extraction time + migration cost), so the
// transfer penalty lands in the request's own turnaround.
func TestAdoptChargesVisibilityDelay(t *testing.T) {
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	donor := NewEngine(NewFCFS(), Options{})
	if err := donor.Inject(b, b.Arrival); err != nil {
		t.Fatal(err)
	}
	tk, err := donor.Extract(1)
	if err != nil {
		t.Fatal(err)
	}
	thief := NewEngine(NewFCFS(), Options{})
	const at = 30 * time.Millisecond // extraction instant + cost
	if err := thief.Adopt(tk, at); err != nil {
		t.Fatal(err)
	}
	if next, ok := thief.NextEvent(); !ok || next != at {
		t.Fatalf("next event %v ok=%v, want %v", next, ok, at)
	}
	drainEngine(t, thief)
	res := thief.Finish()
	if res.Requests != 1 {
		t.Fatalf("thief result %+v", res)
	}
	// Starts at 30ms, runs 20ms, completes at 50ms; turnaround from the
	// ORIGINAL 5ms arrival = 45ms (NTT 2.25): history is never rewritten.
	if res.MeanLatency != 45*time.Millisecond {
		t.Errorf("latency %v, want 45ms", res.MeanLatency)
	}
	if res.Makespan != 45*time.Millisecond {
		t.Errorf("makespan %v, want 45ms (from original arrival)", res.Makespan)
	}

	// Adopt guards: completed and still-queued tasks are rejected.
	if err := thief.Adopt(tk, at); err == nil {
		t.Error("completed task adopted")
	}
	d1 := synthReq(3, "b", 0, 10*time.Millisecond, 2, 100)
	d2 := synthReq(4, "b", time.Millisecond, 10*time.Millisecond, 2, 100)
	owner := NewEngine(NewFCFS(), Options{})
	for _, r := range []*workload.Request{d1, d2} {
		if err := owner.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := owner.Step(); err != nil {
			t.Fatal(err)
		}
	}
	queued := owner.Migratable()
	if len(queued) != 1 || queued[0].ID != 4 {
		t.Fatalf("migratable %v", queued)
	}
	fresh := NewEngine(NewFCFS(), Options{})
	if err := fresh.Adopt(queued[0], 0); err == nil {
		t.Error("task still owned by a ready queue adopted")
	}
}

// TestExtractRepairsFirstArrival: extracting the engine's earliest
// request must stop it anchoring the donor's makespan — the window it
// defines is served elsewhere.
func TestExtractRepairsFirstArrival(t *testing.T) {
	a := synthReq(0, "a", 0, 10*time.Millisecond, 2, 100)
	b := synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100)
	e := NewEngine(NewFCFS(), Options{})
	for _, r := range []*workload.Request{a, b} {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Extract(0); err != nil {
		t.Fatal(err)
	}
	drainEngine(t, e)
	res := e.Finish()
	// b starts at 5ms, completes at 25ms: makespan 20ms from b's own
	// arrival, not 25ms from the departed a's.
	if res.Makespan != 20*time.Millisecond {
		t.Errorf("makespan %v, want 20ms (measured from the remaining request)", res.Makespan)
	}
}

// TestAverageResultsMigrationInvariant: seed averaging must preserve
// wins + losses == migrations even when independent rounding would not.
func TestAverageResultsMigrationInvariant(t *testing.T) {
	avg := mustAverage(t, []Result{
		{Migrations: 1, MigrationWins: 1, MigrationLosses: 0},
		{Migrations: 1, MigrationWins: 0, MigrationLosses: 1},
	})
	if avg.MigrationWins+avg.MigrationLosses != avg.Migrations {
		t.Errorf("averaged wins %d + losses %d != migrations %d",
			avg.MigrationWins, avg.MigrationLosses, avg.Migrations)
	}
}

// TestMigratableExcludesStarted: the running/started tasks never appear
// in the migratable view, and the view is in ascending ID order.
func TestMigratableExcludesStarted(t *testing.T) {
	reqs := []*workload.Request{
		synthReq(0, "a", 0, 10*time.Millisecond, 4, 100),
		synthReq(2, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100),
		synthReq(1, "b", 6*time.Millisecond, 10*time.Millisecond, 2, 100),
		synthReq(3, "b", 90*time.Millisecond, 10*time.Millisecond, 2, 100),
	}
	e := NewEngine(NewFCFS(), Options{})
	for _, r := range reqs {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Task 0 started; 1 and 2 are delivered and queued; 3 is pending.
	got := e.Migratable()
	if len(got) != 3 {
		t.Fatalf("migratable %v", got)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i].ID != want {
			t.Errorf("migratable[%d] = %d, want %d (ascending ID order)", i, got[i].ID, want)
		}
	}
}

// TestMigrationEndToEnd: extract from a loaded engine, adopt on an idle
// one, and check the union of outcomes — every request completes exactly
// once with exact ground-truth accounting, for every scheduler in the
// lineup (each must release and rebuild its per-task state correctly).
func TestMigrationEndToEnd(t *testing.T) {
	mk := func() []*workload.Request {
		return []*workload.Request{
			synthReq(0, "a", 0, 10*time.Millisecond, 4, 100),
			synthReq(1, "b", 5*time.Millisecond, 10*time.Millisecond, 2, 100),
			synthReq(2, "b", 6*time.Millisecond, 10*time.Millisecond, 2, 100),
		}
	}
	est := synthEstimator(mk()...)
	for _, spec := range []struct {
		name string
		new  func() Scheduler
	}{
		{"FCFS", func() Scheduler { return NewFCFS() }},
		{"SJF", func() Scheduler { return NewSJF(est) }},
		{"PREMA", func() Scheduler { return NewPREMA(est) }},
		{"Planaria", func() Scheduler { return NewPlanaria(est) }},
		{"SDRM3", func() Scheduler { return NewSDRM3(est) }},
		{"Oracle", func() Scheduler { return NewOracle(0.05) }},
	} {
		reqs := mk()
		donor := NewEngine(spec.new(), Options{RecordTasks: true})
		thief := NewEngine(spec.new(), Options{RecordTasks: true})
		for _, r := range reqs {
			if err := donor.Inject(r, r.Arrival); err != nil {
				t.Fatal(err)
			}
		}
		// Deliver everything due, then migrate task 2.
		for i := 0; i < 2; i++ {
			if _, err := donor.Step(); err != nil {
				t.Fatal(err)
			}
		}
		tk, err := donor.Extract(2)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		if err := thief.Adopt(tk, donor.Now()+time.Millisecond); err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		drainEngine(t, donor)
		drainEngine(t, thief)
		dres, tres := donor.Finish(), thief.Finish()
		if dres.Requests+tres.Requests != len(reqs) || dres.Dropped != 0 || tres.Dropped != 0 {
			t.Fatalf("%s: donor %d + thief %d of %d requests (dropped %d/%d)",
				spec.name, dres.Requests, tres.Requests, len(reqs), dres.Dropped, tres.Dropped)
		}
		for _, o := range append(dres.Tasks, tres.Tasks...) {
			if o.Isolated != 20*time.Millisecond && o.Isolated != 40*time.Millisecond {
				t.Errorf("%s: outcome %+v has corrupted ground truth", spec.name, o)
			}
			if o.NTT < 1 {
				t.Errorf("%s: outcome %+v has NTT < 1", spec.name, o)
			}
		}
	}
}
