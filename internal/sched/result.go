package sched

import (
	"fmt"
	"math"
	"time"

	"sparsedysta/internal/stats"
)

// Result aggregates one simulation run's metrics (paper §6.1).
type Result struct {
	Scheduler string
	// ANTT is the average normalized turnaround time:
	// mean(T_multi / T_isol) over requests.
	ANTT float64
	// ViolationRate is the fraction of requests finishing past
	// Arrival + SLO.
	ViolationRate float64
	// Throughput is completed requests per second of makespan (the
	// paper's STP, inf/s).
	Throughput float64
	// Goodput is completed requests that met their SLO per second of
	// makespan: the throughput a serving operator actually gets paid
	// for. Admission control trades throughput for goodput by shedding
	// requests predicted to violate anyway.
	Goodput float64
	// MeanLatency and the latency percentiles summarize multi-tenant
	// turnaround. Full-capture runs compute the percentiles from the
	// exact per-request latency slice (linear interpolation between
	// closest ranks); bounded-capture runs read them from a log-bucketed
	// streaming histogram, which biases each percentile upward by at
	// most one bucket width (~3% of its magnitude) — the price of
	// request-count-independent memory.
	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	// Preemptions counts scheduling decisions that switched tasks while
	// the previous choice still had layers left.
	Preemptions int
	// Requests is the number of simulated requests.
	Requests int
	// Dropped counts requests injected but not completed when the engine
	// was finalized. Zero for every drained run (Run and cluster.Run
	// always drain); nonzero flags an orchestrator that called
	// Engine.Finish early, whose metrics cover only the completed subset
	// — typically biased optimistic, since the unfinished stragglers are
	// the slow, violating ones.
	Dropped int
	// Rejected counts requests shed by a dispatch-layer admission policy
	// before ever reaching an engine (internal/cluster). A rejected
	// request appears in no other metric: ANTT, latency percentiles and
	// violation rate cover admitted requests only, which is why Goodput —
	// not ViolationRate — is the headline metric under admission control.
	Rejected int
	// Offered is the total number of requests that entered the system:
	// Engine.Finish sets it to the injected count, cluster.Run to the
	// full stream length (admitted + rejected). Every offered request
	// must land in exactly one outcome class — SLO-met completion,
	// violated completion, Rejected, LostWork, or Dropped — which is the
	// conservation law AverageResults enforces. Zero marks a Result that
	// predates the accounting (hand-built fixtures); the check skips it.
	Offered int
	// Violations is the number of completed requests that missed their
	// deadline — the integer behind ViolationRate, carried so the
	// outcome classes add up exactly (Requests - Violations is the
	// SLO-met completion count behind Goodput).
	Violations int
	// LostWork counts admitted requests that never completed because
	// engine failures destroyed them past the retry budget (or no engine
	// ever came back to serve them). They appear in no latency metric —
	// like Rejected, they are a terminal outcome class of their own.
	LostWork int
	// Failovers counts queued-but-never-started requests force-extracted
	// from a failing or draining engine and redistributed to a live one;
	// Retries counts restart-from-zero re-injections of requests whose
	// partial execution a failure destroyed; Redirects counts dispatch
	// decisions that landed on a dead engine (the router's signals were
	// stale) and had to bounce to a live one. All are dispatch-layer
	// counters carried here so they survive the seed-averaging pipeline.
	Failovers, Retries, Redirects int
	// ScaleUps and ScaleDowns count autoscaler actions — engines joined
	// into and drained out of the live set by the cluster's SLO-driven
	// engine-count policy (internal/cluster, zero without one). The cost
	// the actions trade against Goodput is EngineSeconds. Dispatch-layer
	// counters carried here so they survive the seed-averaging pipeline.
	ScaleUps, ScaleDowns int
	// Migrations counts requests moved between engines by the cluster
	// rebalancer (internal/cluster work stealing / shedding); zero on
	// every single-engine run. MigrationWins and MigrationLosses split
	// the migrated requests by whether they ultimately met their SLO —
	// the accounting that shows whether moving work paid for its
	// transfer cost. Like Rejected, these are dispatch-layer counters
	// carried here so they survive the seed-averaging pipeline.
	Migrations, MigrationWins, MigrationLosses int
	// Makespan is the time from first arrival to last completion.
	Makespan time.Duration
	// EngineSeconds is the provisioned-capacity cost of the run: the
	// total engine-time paid for, in seconds (the serving analogue of
	// core-hours). A single engine bills its makespan; a fixed N-engine
	// cluster bills N x makespan; an autoscaled or churned cluster bills
	// only the spans its engines were actually in service, which is what
	// makes the cost-vs-goodput frontier comparable across policies.
	// Like the dispatch-layer counters above, it is carried here so it
	// survives the seed-averaging pipeline.
	EngineSeconds float64
	// PerModel breaks ANTT and violation rate down by model name; short
	// and long tenants often fare very differently under the same
	// scheduler.
	PerModel map[string]ModelMetrics
	// Timeline is the execution schedule (only with
	// Options.RecordTimeline).
	Timeline *Timeline
	// Tasks holds per-request outcomes (only with Options.RecordTasks).
	Tasks []TaskOutcome
	// Exemplars is a fixed-size uniform sample of per-request outcomes,
	// the bounded-capture replacement for full Tasks capture (only with
	// Options.BoundedCapture and a positive Options.Exemplars).
	Exemplars []TaskOutcome
}

// ModelMetrics aggregates one model's requests within a run.
type ModelMetrics struct {
	Requests      int
	ANTT          float64
	ViolationRate float64
}

// TaskOutcome is one request's final accounting.
type TaskOutcome struct {
	ID         int
	Model      string
	Arrival    time.Duration
	Completion time.Duration
	Isolated   time.Duration
	// NTT is the normalized turnaround (T_multi / T_isol).
	NTT float64
	// Violated reports a missed deadline.
	Violated bool
}

// outcomeOf snapshots a completed task's final accounting. Both capture
// modes derive their per-request records through it, so Tasks entries,
// Exemplars and Observer callbacks carry identical values.
func outcomeOf(t *Task) TaskOutcome {
	return TaskOutcome{
		ID:         t.ID,
		Model:      t.Key.Model,
		Arrival:    t.Arrival,
		Completion: t.Completion,
		Isolated:   t.TrueIsolated(),
		NTT:        float64(t.Completion-t.Arrival) / float64(t.TrueIsolated()),
		Violated:   t.Violated(t.Completion),
	}
}

// CheckOutcomeConservation verifies the outcome accounting of one run:
// every offered request must land in exactly one terminal class, so
// Offered == (Requests - Violations) + Violations + Rejected + LostWork
// + Dropped, where Requests - Violations is the SLO-met completion count
// behind Goodput. A Result with Offered == 0 predates the accounting (or
// is empty) and passes vacuously. The check catches silent metric drift
// as new outcome classes appear: a class added to the simulation but not
// to this identity fails every run that exercises it.
func CheckOutcomeConservation(r Result) error {
	if r.Offered == 0 {
		return nil
	}
	goodput := r.Requests - r.Violations
	accounted := goodput + r.Violations + r.Rejected + r.LostWork + r.Dropped
	if r.Offered != accounted {
		return fmt.Errorf(
			"sched: outcome classes do not conserve requests: offered %d != %d accounted (goodput %d + violations %d + rejected %d + lost %d + dropped %d)",
			r.Offered, accounted, goodput, r.Violations, r.Rejected, r.LostWork, r.Dropped)
	}
	return nil
}

// AverageResults averages the metric fields of per-seed results of the
// same scheduler, the paper's five-seed reporting protocol (§6.1).
// Scheduler is taken from the first result carrying a name. The integer
// counters (Preemptions, Requests) are rounded to the nearest integer,
// not truncated. Per-model means are weighted by their per-seed request
// counts; PerModel stays nil when no input has a per-model breakdown.
// Timeline, Tasks and Exemplars are intentionally dropped: per-seed
// schedules have no meaningful average, so callers wanting them must read
// the individual per-seed Results.
//
// Every input is checked against CheckOutcomeConservation — a mismatch
// returns an error instead of silently averaging drifted metrics. The
// averaged output re-derives Offered from its own rounded classes so the
// identity survives the independent roundings.
func AverageResults(rs []Result) (Result, error) {
	if len(rs) == 0 {
		return Result{}, nil
	}
	avg := Result{}
	var meanLat, p50Lat, p95Lat, p99Lat, makespan float64
	for _, r := range rs {
		if err := CheckOutcomeConservation(r); err != nil {
			return Result{}, err
		}
		if avg.Scheduler == "" {
			avg.Scheduler = r.Scheduler
		}
		avg.ANTT += r.ANTT
		avg.ViolationRate += r.ViolationRate
		avg.Throughput += r.Throughput
		avg.Goodput += r.Goodput
		avg.Preemptions += r.Preemptions
		avg.Requests += r.Requests
		avg.Dropped += r.Dropped
		avg.Rejected += r.Rejected
		avg.Offered += r.Offered
		avg.Migrations += r.Migrations
		avg.MigrationWins += r.MigrationWins
		avg.MigrationLosses += r.MigrationLosses
		avg.Violations += r.Violations
		avg.LostWork += r.LostWork
		avg.Failovers += r.Failovers
		avg.Retries += r.Retries
		avg.Redirects += r.Redirects
		avg.ScaleUps += r.ScaleUps
		avg.ScaleDowns += r.ScaleDowns
		avg.EngineSeconds += r.EngineSeconds
		meanLat += float64(r.MeanLatency)
		p50Lat += float64(r.P50Latency)
		p95Lat += float64(r.P95Latency)
		p99Lat += float64(r.P99Latency)
		makespan += float64(r.Makespan)
		// Allocate lazily outside the traversal so nil PerModel still
		// propagates as nil — and so the loop body stays provably
		// order-insensitive for dysta-lint's detrange (keyed writes
		// only, no shared-state initialisation mid-iteration).
		if len(r.PerModel) > 0 && avg.PerModel == nil {
			avg.PerModel = map[string]ModelMetrics{}
		}
		for name, m := range r.PerModel {
			agg := avg.PerModel[name]
			agg.Requests += m.Requests
			// Weight per-seed means by their request counts.
			agg.ANTT += m.ANTT * float64(m.Requests)
			agg.ViolationRate += m.ViolationRate * float64(m.Requests)
			avg.PerModel[name] = agg
		}
	}
	for name, m := range avg.PerModel {
		if m.Requests > 0 {
			m.ANTT /= float64(m.Requests)
			m.ViolationRate /= float64(m.Requests)
		}
		avg.PerModel[name] = m
	}
	n := float64(len(rs))
	avg.ANTT /= n
	avg.ViolationRate /= n
	avg.Throughput /= n
	avg.Goodput /= n
	avg.Preemptions = int(math.Round(float64(avg.Preemptions) / n))
	avg.Requests = int(math.Round(float64(avg.Requests) / n))
	avg.Dropped = int(math.Round(float64(avg.Dropped) / n))
	avg.Rejected = int(math.Round(float64(avg.Rejected) / n))
	avg.Migrations = int(math.Round(float64(avg.Migrations) / n))
	avg.MigrationWins = int(math.Round(float64(avg.MigrationWins) / n))
	// Derive losses instead of rounding them independently, so the
	// per-run invariant wins + losses == migrations survives averaging
	// (three independent roundings can disagree by one). Rounding is
	// monotone and wins <= migrations per run, so this never goes
	// negative.
	avg.MigrationLosses = avg.Migrations - avg.MigrationWins
	avg.Violations = int(math.Round(float64(avg.Violations) / n))
	avg.LostWork = int(math.Round(float64(avg.LostWork) / n))
	avg.Failovers = int(math.Round(float64(avg.Failovers) / n))
	avg.Retries = int(math.Round(float64(avg.Retries) / n))
	avg.Redirects = int(math.Round(float64(avg.Redirects) / n))
	avg.ScaleUps = int(math.Round(float64(avg.ScaleUps) / n))
	avg.ScaleDowns = int(math.Round(float64(avg.ScaleDowns) / n))
	avg.EngineSeconds /= n
	// Re-derive Offered from the rounded classes (only when the inputs
	// carried the accounting at all), so the conservation identity that
	// held per input also holds on the average despite each class
	// rounding independently.
	if avg.Offered > 0 {
		avg.Offered = avg.Requests + avg.Rejected + avg.LostWork + avg.Dropped
	}
	avg.MeanLatency = time.Duration(meanLat / n)
	avg.P50Latency = time.Duration(p50Lat / n)
	avg.P95Latency = time.Duration(p95Lat / n)
	avg.P99Latency = time.Duration(p99Lat / n)
	avg.Makespan = time.Duration(makespan / n)
	return avg, nil
}

// SeedSpread summarizes per-seed variability of the two headline metrics:
// the population standard deviation of ANTT and violation rate across
// runs. Reported alongside five-seed averages to show result stability.
func SeedSpread(rs []Result) (anttSD, violSD float64) {
	if len(rs) < 2 {
		return 0, 0
	}
	antts := make([]float64, len(rs))
	viols := make([]float64, len(rs))
	for i, r := range rs {
		antts[i] = r.ANTT
		viols[i] = r.ViolationRate
	}
	return stats.StdDev(antts), stats.StdDev(viols)
}
