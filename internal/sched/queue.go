package sched

import "time"

// ReadyQueue is the engine's indexed ready set. Tasks carry their own
// position (Task.queueIndex), so membership checks and removals are O(1)
// instead of the linear scans the engine used to perform per scheduling
// decision. Removal swaps the last element into the vacated slot, so the
// queue does NOT preserve insertion order; every scheduler's selection rule
// is a strict lexicographic minimum (score, then task ID), which is
// order-independent, and the invariants test cross-checks this.
type ReadyQueue struct {
	tasks []*Task
}

// Len returns the number of ready tasks.
func (q *ReadyQueue) Len() int { return len(q.tasks) }

// Tasks returns the live backing slice for iteration. Callers must not
// mutate it; the engine passes it to the reference Scheduler.PickNext.
func (q *ReadyQueue) Tasks() []*Task { return q.tasks }

// Contains reports membership in O(1) via the task-carried index.
func (q *ReadyQueue) Contains(t *Task) bool {
	i := t.queueIndex
	return i >= 0 && i < len(q.tasks) && q.tasks[i] == t
}

// add appends a task, recording its index.
func (q *ReadyQueue) add(t *Task) {
	t.queueIndex = len(q.tasks)
	q.tasks = append(q.tasks, t)
}

// remove deletes a task in O(1) by swapping the last element into its
// slot. Unlike the old append(ts[:i], ts[i+1:]...) helper this never
// shifts the tail (no aliasing of a caller-visible backing array) and
// clears the vacated slot so completed tasks are not retained.
func (q *ReadyQueue) remove(t *Task) {
	i := t.queueIndex
	if i < 0 || i >= len(q.tasks) || q.tasks[i] != t {
		return
	}
	last := len(q.tasks) - 1
	q.tasks[i] = q.tasks[last]
	q.tasks[i].queueIndex = i
	q.tasks[last] = nil
	q.tasks = q.tasks[:last]
	t.queueIndex = -1
}

// IncrementalScheduler is the optional fast-path extension of Scheduler.
// Implementations keep their scoring state incremental — a heap keyed by a
// time-invariant priority, or per-task cached score components refreshed
// only at the events that change them (arrival, layer completion) — so a
// scheduling decision avoids the from-scratch re-scoring of the reference
// PickNext. The engine prefers this path when available; the reference
// PickNext remains mandatory and must pick the identical task (the
// equivalence tests in this package and internal/exp enforce bit-identical
// schedules between the two paths).
type IncrementalScheduler interface {
	Scheduler
	// PickNextIncremental selects the next task from the non-empty ready
	// queue, equivalently to PickNext(q.Tasks(), now).
	PickNextIncremental(q *ReadyQueue, now time.Duration) *Task
}

// TaskHeap is a binary min-heap of tasks under a scheduler-supplied strict
// ordering, used by schedulers whose priority is time-invariant between
// task events (FCFS, SJF). The heap position is carried on the task
// (Task.heapIndex), so Remove and Fix are O(log n) with no auxiliary map.
// Only one scheduler owns a task's heap slot at a time — one scheduler
// instance runs per engine invocation.
type TaskHeap struct {
	less  func(a, b *Task) bool
	tasks []*Task
}

// NewTaskHeap returns an empty heap over the ordering. less must be a
// strict weak ordering that never reports ties (break them by Task.ID) so
// the minimum is unique and matches the reference linear scan.
func NewTaskHeap(less func(a, b *Task) bool) *TaskHeap {
	return &TaskHeap{less: less}
}

// Len returns the number of tasks in the heap.
func (h *TaskHeap) Len() int { return len(h.tasks) }

// Min returns the minimum task without removing it, or nil when empty.
func (h *TaskHeap) Min() *Task {
	if len(h.tasks) == 0 {
		return nil
	}
	return h.tasks[0]
}

// At returns the task at heap position i (0 is the minimum; children of
// i sit at 2i+1 and 2i+2). It is the traversal surface of the pruned
// DFS the scalable pick paths run: the heap property guarantees every
// descendant's key is >= the node's, so a subtree whose root key
// already exceeds the best score found can be skipped wholesale.
func (h *TaskHeap) At(i int) *Task { return h.tasks[i] }

// Push inserts a task.
func (h *TaskHeap) Push(t *Task) {
	t.heapIndex = len(h.tasks)
	h.tasks = append(h.tasks, t)
	h.up(t.heapIndex)
}

// Remove deletes the task if present.
func (h *TaskHeap) Remove(t *Task) {
	i := t.heapIndex
	if i < 0 || i >= len(h.tasks) || h.tasks[i] != t {
		return
	}
	last := len(h.tasks) - 1
	h.swap(i, last)
	h.tasks[last] = nil
	h.tasks = h.tasks[:last]
	t.heapIndex = -1
	if i < last {
		h.fix(i)
	}
}

// Fix restores the heap order after the task's key changed.
func (h *TaskHeap) Fix(t *Task) {
	i := t.heapIndex
	if i < 0 || i >= len(h.tasks) || h.tasks[i] != t {
		return
	}
	h.fix(i)
}

func (h *TaskHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *TaskHeap) swap(i, j int) {
	h.tasks[i], h.tasks[j] = h.tasks[j], h.tasks[i]
	h.tasks[i].heapIndex = i
	h.tasks[j].heapIndex = j
}

func (h *TaskHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.tasks[i], h.tasks[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts index i toward the leaves; it reports whether i moved.
func (h *TaskHeap) down(i int) bool {
	start := i
	n := len(h.tasks)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(h.tasks[r], h.tasks[child]) {
			child = r
		}
		if !h.less(h.tasks[child], h.tasks[i]) {
			break
		}
		h.swap(i, child)
		i = child
	}
	return i > start
}
