package sched

import (
	"strings"
	"testing"
	"time"

	"sparsedysta/internal/workload"
)

// TestExtractAtRunInstant pins the tie-break when an extraction lands at
// the exact instant a queued task would start running: the control plane
// wins. Until Step commits the scheduling decision, the task has executed
// nothing (NextLayer 0) and Extract succeeds — the engine then picks
// someone else at the same instant. The moment Step commits, the same
// task is started and Extract must refuse it, loudly. "Becomes running"
// is therefore a property of the committed schedule, not of the clock:
// two observers at the same virtual instant see one consistent answer
// determined by whether Step has run.
func TestExtractAtRunInstant(t *testing.T) {
	a := synthReq(0, "a", 0, time.Millisecond, 2, 100)
	b := synthReq(1, "a", 0, time.Millisecond, 2, 100)

	// Before the commit: task 0 is FCFS's next pick at t=0, but it has
	// not run — extraction at its would-be start instant succeeds.
	e := NewEngine(NewFCFS(), Options{})
	if err := e.Inject(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(b, 0); err != nil {
		t.Fatal(err)
	}
	if at, ok := e.NextEvent(); !ok || at != 0 {
		t.Fatalf("next event %v, %v; want 0, true", at, ok)
	}
	got, err := e.Extract(0)
	if err != nil {
		t.Fatalf("Extract at the run instant, before the commit: %v", err)
	}
	if got.NextLayer != 0 || got.ExecTime != 0 {
		t.Fatalf("extracted task has progress: %d layers, %v exec", got.NextLayer, got.ExecTime)
	}
	// The engine now runs task 1 at the same instant.
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if b.Trace.NumLayers() != 2 {
		t.Fatal("unexpected trace shape")
	}

	// After the commit: the same extraction refuses with a started-task
	// error naming the progress.
	e2 := NewEngine(NewFCFS(), Options{})
	if err := e2.Inject(synthReq(0, "a", 0, time.Millisecond, 2, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Step(); err != nil { // commits layer 0 at t=0
		t.Fatal(err)
	}
	_, err = e2.Extract(0)
	if err == nil {
		t.Fatal("Extract of a started task succeeded")
	}
	if !strings.Contains(err.Error(), "started") {
		t.Fatalf("error does not name the started-task refusal: %v", err)
	}
}

// TestCrashClassifiesOutstanding: Crash returns never-started work
// (pending and delivered alike) as queued and partially-executed work as
// started, in ID order, with scheduler-facing state scrubbed; the sealed
// incarnation's books balance (no drops, only completions).
func TestCrashClassifiesOutstanding(t *testing.T) {
	e := NewEngine(NewFCFS(), Options{})
	// Four layers of 1ms each. Request 0 runs first; crash at 2.5ms
	// virtual time, after two layers committed.
	reqs := []*workload.Request{
		synthReq(0, "a", 0, time.Millisecond, 4, 100),                    // running at crash
		synthReq(1, "a", 500*time.Microsecond, time.Millisecond, 4, 100), // delivered, never started
		synthReq(2, "a", 30*time.Millisecond, time.Millisecond, 4, 100),  // still pending at crash
	}
	for _, r := range reqs {
		if err := e.Inject(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	// Commit scheduling points until the next would land at or past
	// 2.5ms — the cluster's crash discipline.
	for {
		at, ok := e.NextEvent()
		if !ok || at >= 2500*time.Microsecond {
			break
		}
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	queued, started, err := e.Crash(2500 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(queued) != 2 || queued[0].ID != 1 || queued[1].ID != 2 {
		t.Fatalf("queued = %v", ids(queued))
	}
	if len(started) != 1 || started[0].ID != 0 {
		t.Fatalf("started = %v", ids(started))
	}
	if started[0].NextLayer == 0 || started[0].ExecTime == 0 {
		t.Fatalf("started task shows no progress: layer %d, exec %v",
			started[0].NextLayer, started[0].ExecTime)
	}
	for _, task := range append(append([]*Task(nil), queued...), started...) {
		if task.Attachment != nil {
			t.Errorf("task %d keeps a scheduler attachment through the crash", task.ID)
		}
	}
	// The sealed incarnation completed nothing and dropped nothing: the
	// crash took every outstanding request off its books.
	res := e.Finish()
	if res.Requests != 0 || res.Dropped != 0 || res.Offered != 0 {
		t.Errorf("sealed incarnation books: %d requests, %d dropped, %d offered",
			res.Requests, res.Dropped, res.Offered)
	}
	if err := CheckOutcomeConservation(res); err != nil {
		t.Error(err)
	}
	// Crashing a finished engine is an error.
	if _, _, err := e.Crash(3 * time.Millisecond); err == nil {
		t.Error("Crash after Finish succeeded")
	}
}

// TestCrashAfterCompletions: completions before the crash stay on the
// sealed incarnation's books and conserve.
func TestCrashAfterCompletions(t *testing.T) {
	e := NewEngine(NewFCFS(), Options{})
	short := synthReq(0, "a", 0, time.Millisecond, 1, 100)
	long := synthReq(1, "a", 0, time.Millisecond, 8, 100)
	for _, r := range []*workload.Request{short, long} {
		if err := e.Inject(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	for {
		at, ok := e.NextEvent()
		if !ok || at >= 1500*time.Microsecond {
			break
		}
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	queued, started, err := e.Crash(1500 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(queued) != 0 || len(started) != 1 {
		t.Fatalf("queued %v, started %v", ids(queued), ids(started))
	}
	res := e.Finish()
	if res.Requests != 1 || res.Dropped != 0 || res.Offered != 1 {
		t.Errorf("sealed books: %d requests, %d dropped, %d offered",
			res.Requests, res.Dropped, res.Offered)
	}
	if err := CheckOutcomeConservation(res); err != nil {
		t.Error(err)
	}
}

// TestRestartRewindsToZero: Restart returns a partially-executed task to
// the never-started state — adoptable again — while preserving identity,
// arrival and SLO, and counting the attempt.
func TestRestartRewindsToZero(t *testing.T) {
	e := NewEngine(NewFCFS(), Options{})
	r := synthReq(7, "a", time.Millisecond, time.Millisecond, 4, 100)
	if err := e.Inject(r, r.Arrival); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	_, started, err := e.Crash(3 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 {
		t.Fatalf("started = %v", ids(started))
	}
	task := started[0]
	remBefore := task.TrueRemaining()
	task.Restart()
	if task.NextLayer != 0 || task.ExecTime != 0 || task.Done || task.Completion != 0 {
		t.Errorf("Restart left progress: %+v", task)
	}
	if task.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", task.Attempts)
	}
	if task.TrueRemaining() != task.TrueIsolated() {
		t.Errorf("ground-truth remaining %v not rewound to %v",
			task.TrueRemaining(), task.TrueIsolated())
	}
	if remBefore == task.TrueRemaining() {
		t.Error("test vacuous: no progress existed before Restart")
	}
	if task.ID != 7 || task.Arrival != time.Millisecond {
		t.Errorf("Restart rewrote identity: ID %d, arrival %v", task.ID, task.Arrival)
	}
	// The restarted task is adoptable and completes normally elsewhere.
	e2 := NewEngine(NewFCFS(), Options{})
	if err := e2.Adopt(task, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := e2.NextEvent(); !ok {
			break
		}
		if _, err := e2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := e2.Finish()
	if res.Requests != 1 {
		t.Fatalf("restarted task did not complete: %+v", res)
	}
	// Turnaround measures from the ORIGINAL arrival: the failure's delay
	// is paid in the retry's own latency.
	if res.MeanLatency <= 4*time.Millisecond {
		t.Errorf("mean latency %v does not include the pre-crash wait", res.MeanLatency)
	}
}

func ids(tasks []*Task) []int {
	out := make([]int, len(tasks))
	for i, t := range tasks {
		out[i] = t.ID
	}
	return out
}
