package sched

import (
	"fmt"
	"sort"
	"time"

	"sparsedysta/internal/stats"
	"sparsedysta/internal/workload"
)

// Options tunes the engine.
type Options struct {
	// PreemptionOverhead is charged whenever the engine switches away
	// from the previously running task at a layer boundary. The paper's
	// preemptive time-multiplexing model treats this as negligible;
	// nonzero values support overhead-sensitivity ablations.
	PreemptionOverhead time.Duration
	// RecordTimeline captures the execution schedule in Result.Timeline
	// (off by default: long runs record many spans).
	RecordTimeline bool
	// RecordTasks captures per-request outcomes in Result.Tasks.
	RecordTasks bool
	// ReferencePick forces the reference Scheduler.PickNext path even for
	// schedulers implementing IncrementalScheduler. The equivalence tests
	// use it to prove both paths produce bit-identical schedules.
	ReferencePick bool
}

// Result aggregates one simulation run's metrics (paper §6.1).
type Result struct {
	Scheduler string
	// ANTT is the average normalized turnaround time:
	// mean(T_multi / T_isol) over requests.
	ANTT float64
	// ViolationRate is the fraction of requests finishing past
	// Arrival + SLO.
	ViolationRate float64
	// Throughput is completed requests per second of makespan (the
	// paper's STP, inf/s).
	Throughput float64
	// MeanLatency and P99Latency summarize multi-tenant turnaround.
	MeanLatency time.Duration
	P99Latency  time.Duration
	// Preemptions counts scheduling decisions that switched tasks while
	// the previous choice still had layers left.
	Preemptions int
	// Requests is the number of simulated requests.
	Requests int
	// Makespan is the time from first arrival to last completion.
	Makespan time.Duration
	// PerModel breaks ANTT and violation rate down by model name; short
	// and long tenants often fare very differently under the same
	// scheduler.
	PerModel map[string]ModelMetrics
	// Timeline is the execution schedule (only with
	// Options.RecordTimeline).
	Timeline *Timeline
	// Tasks holds per-request outcomes (only with Options.RecordTasks).
	Tasks []TaskOutcome
}

// ModelMetrics aggregates one model's requests within a run.
type ModelMetrics struct {
	Requests      int
	ANTT          float64
	ViolationRate float64
}

// TaskOutcome is one request's final accounting.
type TaskOutcome struct {
	ID         int
	Model      string
	Arrival    time.Duration
	Completion time.Duration
	Isolated   time.Duration
	// NTT is the normalized turnaround (T_multi / T_isol).
	NTT float64
	// Violated reports a missed deadline.
	Violated bool
}

// Run simulates the request stream under the scheduler and returns the
// aggregated metrics. Requests are processed on a single time-shared
// accelerator; preemption happens only at layer boundaries.
func Run(s Scheduler, reqs []*workload.Request, opts Options) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("sched: empty request stream")
	}
	pending := make([]*Task, len(reqs))
	sorted := append([]*workload.Request(nil), reqs...)
	workload.SortByArrival(sorted)
	for i, r := range sorted {
		pending[i] = newTask(r)
	}

	var (
		now        time.Duration
		ready      ReadyQueue
		done       []*Task
		nextIdx    int
		last       *Task
		preempts   int
		turnRatios []float64
		latencies  []float64
		timeline   *Timeline
	)
	if opts.RecordTimeline {
		timeline = &Timeline{}
	}
	inc, _ := s.(IncrementalScheduler)
	if opts.ReferencePick {
		inc = nil
	}

	deliver := func() {
		for nextIdx < len(pending) && pending[nextIdx].Arrival <= now {
			t := pending[nextIdx]
			ready.add(t)
			s.OnArrival(t, now)
			nextIdx++
		}
	}

	for len(done) < len(pending) {
		deliver()
		if ready.Len() == 0 {
			// Idle: jump to the next arrival.
			now = pending[nextIdx].Arrival
			deliver()
		}

		var pick *Task
		if inc != nil {
			pick = inc.PickNextIncremental(&ready, now)
		} else {
			pick = s.PickNext(ready.Tasks(), now)
		}
		if pick == nil || !ready.Contains(pick) {
			return Result{}, fmt.Errorf("sched: %s picked a task outside the ready queue", s.Name())
		}
		if last != nil && last != pick && !last.Done {
			preempts++
			now += opts.PreemptionOverhead
		}
		last = pick

		layer := pick.NextLayer
		dur := pick.nextLayerLatency()
		if timeline != nil {
			timeline.record(pick.ID, now, now+dur)
		}
		now += dur
		pick.ExecTime += dur
		pick.LastRun = now
		pick.NextLayer++
		pick.trueRemaining -= dur
		if pick.NextLayer == pick.NumLayers() {
			// Mark completion before notifying the scheduler, so
			// OnLayerComplete implementations can release their per-task
			// state on the final layer.
			pick.Done = true
			pick.Completion = now
			ready.remove(pick)
			done = append(done, pick)
			turn := now - pick.Arrival
			turnRatios = append(turnRatios, float64(turn)/float64(pick.TrueIsolated()))
			latencies = append(latencies, float64(turn))
		}
		s.OnLayerComplete(pick, layer, pick.monitoredSparsity(layer), now)
	}

	res := Result{
		Scheduler:   s.Name(),
		ANTT:        stats.Mean(turnRatios),
		Preemptions: preempts,
		Requests:    len(done),
	}
	violations := 0
	var lastDone time.Duration
	for _, t := range done {
		if t.Violated(t.Completion) {
			violations++
		}
		if t.Completion > lastDone {
			lastDone = t.Completion
		}
	}
	res.ViolationRate = float64(violations) / float64(len(done))
	res.MeanLatency = time.Duration(stats.Mean(latencies))
	res.P99Latency = time.Duration(stats.Percentile(latencies, 99))
	res.Makespan = lastDone - pending[0].Arrival
	if res.Makespan > 0 {
		res.Throughput = float64(len(done)) / res.Makespan.Seconds()
	}
	res.PerModel = map[string]ModelMetrics{}
	for _, t := range done {
		m := res.PerModel[t.Key.Model]
		m.Requests++
		m.ANTT += float64(t.Completion-t.Arrival) / float64(t.TrueIsolated())
		if t.Violated(t.Completion) {
			m.ViolationRate++
		}
		res.PerModel[t.Key.Model] = m
	}
	for name, m := range res.PerModel {
		m.ANTT /= float64(m.Requests)
		m.ViolationRate /= float64(m.Requests)
		res.PerModel[name] = m
	}
	res.Timeline = timeline
	if opts.RecordTasks {
		res.Tasks = make([]TaskOutcome, 0, len(done))
		for _, t := range done {
			res.Tasks = append(res.Tasks, TaskOutcome{
				ID:         t.ID,
				Model:      t.Key.Model,
				Arrival:    t.Arrival,
				Completion: t.Completion,
				Isolated:   t.TrueIsolated(),
				NTT:        float64(t.Completion-t.Arrival) / float64(t.TrueIsolated()),
				Violated:   t.Violated(t.Completion),
			})
		}
		sort.Slice(res.Tasks, func(i, j int) bool { return res.Tasks[i].ID < res.Tasks[j].ID })
	}
	return res, nil
}

// AverageResults averages the metric fields of per-seed results of the
// same scheduler, the paper's five-seed reporting protocol (§6.1).
func AverageResults(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	avg := Result{Scheduler: rs[0].Scheduler, PerModel: map[string]ModelMetrics{}}
	var meanLat, p99Lat, makespan float64
	for _, r := range rs {
		avg.ANTT += r.ANTT
		avg.ViolationRate += r.ViolationRate
		avg.Throughput += r.Throughput
		avg.Preemptions += r.Preemptions
		avg.Requests += r.Requests
		meanLat += float64(r.MeanLatency)
		p99Lat += float64(r.P99Latency)
		makespan += float64(r.Makespan)
		for name, m := range r.PerModel {
			agg := avg.PerModel[name]
			agg.Requests += m.Requests
			// Weight per-seed means by their request counts.
			agg.ANTT += m.ANTT * float64(m.Requests)
			agg.ViolationRate += m.ViolationRate * float64(m.Requests)
			avg.PerModel[name] = agg
		}
	}
	for name, m := range avg.PerModel {
		if m.Requests > 0 {
			m.ANTT /= float64(m.Requests)
			m.ViolationRate /= float64(m.Requests)
		}
		avg.PerModel[name] = m
	}
	n := float64(len(rs))
	avg.ANTT /= n
	avg.ViolationRate /= n
	avg.Throughput /= n
	avg.Preemptions = int(float64(avg.Preemptions) / n)
	avg.Requests = int(float64(avg.Requests) / n)
	avg.MeanLatency = time.Duration(meanLat / n)
	avg.P99Latency = time.Duration(p99Lat / n)
	avg.Makespan = time.Duration(makespan / n)
	return avg
}

// SeedSpread summarizes per-seed variability of the two headline metrics:
// the population standard deviation of ANTT and violation rate across
// runs. Reported alongside five-seed averages to show result stability.
func SeedSpread(rs []Result) (anttSD, violSD float64) {
	if len(rs) < 2 {
		return 0, 0
	}
	antts := make([]float64, len(rs))
	viols := make([]float64, len(rs))
	for i, r := range rs {
		antts[i] = r.ANTT
		viols[i] = r.ViolationRate
	}
	return stats.StdDev(antts), stats.StdDev(viols)
}
