package sched

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"time"

	"sparsedysta/internal/stats"
	"sparsedysta/internal/workload"
)

// Options tunes the engine.
type Options struct {
	// PreemptionOverhead is charged whenever the engine switches away
	// from the previously running task at a layer boundary. The paper's
	// preemptive time-multiplexing model treats this as negligible;
	// nonzero values support overhead-sensitivity ablations.
	PreemptionOverhead time.Duration
	// RecordTimeline captures the execution schedule in Result.Timeline
	// (off by default: long runs record many spans).
	RecordTimeline bool
	// RecordTasks captures per-request outcomes in Result.Tasks.
	RecordTasks bool
	// ReferencePick forces the reference Scheduler.PickNext path even for
	// schedulers implementing IncrementalScheduler. The equivalence tests
	// use it to prove both paths produce bit-identical schedules.
	ReferencePick bool
	// ScalablePick enables the heap-backed sublinear pick path for
	// schedulers implementing ScalableScheduler (off by default: the
	// incremental single-pass scan is the bit-identity anchor, and the
	// heap structures only pay off once thousands of requests queue).
	// Schedulers without the interface fall back to their usual path.
	ScalablePick bool
	// BoundedCapture drops every O(requests) capture structure — the
	// completed-task slice behind Tasks, the per-request latency and
	// turnaround slices — in favor of streaming aggregates, so engine
	// memory is independent of run length. ANTT, MeanLatency, violation
	// and throughput accounting, Makespan and PerModel stay bit-identical
	// to full capture (ordered float sums over the same completion
	// sequence); the latency percentiles switch to a log-bucketed
	// histogram (upward bias of at most one bucket width, ~3%), and
	// RecordTimeline/RecordTasks are forced off. Exemplars provides a
	// bounded substitute for Tasks.
	BoundedCapture bool
	// Exemplars is the reservoir size of the uniform per-request outcome
	// sample kept under BoundedCapture (0 = none); ExemplarSeed drives
	// the reservoir's private deterministic rng stream.
	Exemplars    int
	ExemplarSeed uint64
	// Observer, when non-nil, is called once per completed request, at
	// its completion instant, with the final outcome. The cluster layer
	// uses it to aggregate run-wide bounded metrics in global event
	// order without any engine retaining per-request state. It must not
	// call back into the engine.
	Observer func(TaskOutcome)
	// LatencyScale models a faster or slower accelerator of the same
	// architecture: every executed layer latency (and the preemption
	// overhead) is multiplied by this factor in the engine's cost model.
	// 0 (and 1) mean reference speed, 2 a half-speed device, 0.5 a
	// double-speed one. Task ground truth (TrueIsolated/TrueRemaining)
	// stays in reference units, so NTT and SLOs keep measuring against
	// the service contract of the reference hardware, independent of
	// which device serves the request.
	LatencyScale float64
	// BacklogEstimator, when non-nil, arms O(1) incremental backlog
	// accounting: the engine maintains a running sum of the estimate over
	// every outstanding task, updated at injection, adoption, extraction,
	// crash, and after each executed layer, and serves it through
	// Backlog(). The estimator must be a pure function of (t.Key,
	// t.NextLayer) — the same contract EstimatedBacklog's load argument
	// has — so the running integer sum is bit-identical to the O(n) scan
	// at every instant. The cluster layer binds the run's shared load
	// estimate here so SignalBoard refreshes and rebalance rounds stop
	// walking queues.
	BacklogEstimator func(*Task) time.Duration
	// BacklogCurve optionally accelerates the accounting: curve(t), when
	// non-nil, must satisfy curve(t)[l] == BacklogEstimator(t') for every
	// t' equal to t at NextLayer l (indices past len(curve)-1 mean 0), so
	// the engine resolves the curve once per enrollment and re-estimates
	// after each executed layer by slice index instead of an estimator
	// call. A nil curve for a given task falls back to per-event
	// estimator calls; a curve that disagrees with the estimator at
	// enrollment fails the run (the cross-check that keeps the O(1) sum
	// honest). Ignored without BacklogEstimator.
	BacklogCurve func(*Task) []time.Duration
}

// Engine is one steppable simulated accelerator: a discrete-event,
// layer-granularity preemptive scheduling engine whose clock advances one
// scheduling decision at a time. Callers inject requests (Inject), advance
// the simulation event by event (Step), and finalize the metrics (Finish).
// Run drives a single engine to completion; internal/cluster interleaves
// many engines' events on one virtual clock.
//
// The contract that makes multi-engine composition deterministic:
//
//   - Requests must be injected before the engine's clock passes their
//     arrival (Step never rewinds). The engine delivers an injected
//     request to its scheduler at the first scheduling point at or after
//     the request's arrival, exactly as Run always has.
//   - Step executes exactly one layer of the picked task (plus any idle
//     jump to the next pending arrival) and returns the engine clock
//     after it, which is the time of the next scheduling decision.
//   - NextEvent never mutates state, so an orchestrator can order N
//     engines' events globally before committing any of them.
type Engine struct {
	s        Scheduler
	inc      IncrementalScheduler
	scalable ScalableScheduler
	opts     Options
	// scale is the effective latency scale (Options.LatencyScale, 0 → 1).
	scale float64

	// est/curve are Options.BacklogEstimator/BacklogCurve; backlog is the
	// running estimate sum over outstanding tasks they maintain (always
	// equal to EstimatedBacklog(est) — the invariant tests pin it).
	est     func(*Task) time.Duration
	curve   func(*Task) []time.Duration
	backlog time.Duration

	now     time.Duration
	ready   ReadyQueue
	pending pendingQueue

	injected     int
	firstArrival time.Duration
	last         *Task
	preempts     int
	busy         time.Duration

	done       []*Task
	turnRatios []float64
	latencies  []float64
	timeline   *Timeline
	finished   bool

	// Bounded-capture aggregates (Options.BoundedCapture): the streaming
	// replacements for the slices above. nDone is maintained in both
	// modes (== len(done) under full capture).
	bounded        bool
	nDone          int
	turnSum        float64
	latSum         float64
	violations     int
	lastDone       time.Duration
	doneAny        bool
	doneMinArrival time.Duration
	latHist        *stats.DurationHist
	perModel       map[string]ModelMetrics
	exemplars      *stats.Reservoir[TaskOutcome]
}

// NewEngine returns an idle engine at virtual time zero driving the
// scheduler. Exactly one scheduler instance must own each engine:
// schedulers carry per-run state (heaps, per-task attachments).
func NewEngine(s Scheduler, opts Options) *Engine {
	e := &Engine{s: s, opts: opts, scale: opts.LatencyScale}
	if e.scale <= 0 {
		e.scale = 1
	}
	e.est = opts.BacklogEstimator
	if e.est != nil {
		e.curve = opts.BacklogCurve
	}
	if inc, ok := s.(IncrementalScheduler); ok && !opts.ReferencePick {
		e.inc = inc
	}
	if opts.ScalablePick && !opts.ReferencePick {
		if sc, ok := s.(ScalableScheduler); ok {
			sc.EnableScalable()
			e.scalable = sc
		}
	}
	if opts.BoundedCapture {
		e.bounded = true
		// Full capture is the thing bounded mode exists to avoid.
		e.opts.RecordTimeline = false
		e.opts.RecordTasks = false
		e.latHist = &stats.DurationHist{}
		e.perModel = map[string]ModelMetrics{}
		if opts.Exemplars > 0 {
			e.exemplars = stats.NewReservoir[TaskOutcome](opts.Exemplars, opts.ExemplarSeed)
		}
	}
	if e.opts.RecordTimeline {
		e.timeline = &Timeline{}
	}
	return e
}

// Inject makes a request known to the engine. now is the caller's virtual
// time of the injection; the request becomes visible to the scheduler at
// the first scheduling point at or after max(r.Arrival, now), so a late
// injection (a dispatcher that held the request back) delays delivery but
// never rewrites history. Injecting after Finish is an error.
func (e *Engine) Inject(r *workload.Request, now time.Duration) error {
	if e.finished {
		return fmt.Errorf("sched: Inject after Finish")
	}
	t := newTask(r)
	eff := t.Arrival
	if now > eff {
		eff = now
	}
	if err := e.accountAdd(t); err != nil {
		return err
	}
	if e.injected == 0 || t.Arrival < e.firstArrival {
		e.firstArrival = t.Arrival
	}
	e.injected++
	e.pending.push(t, eff)
	return nil
}

// Extract withdraws a queued-but-never-started request from the engine by
// task ID, for migration to another engine (cluster work stealing). The
// returned task is detached: it sits in no queue, the scheduler holds no
// state for it, and its ground-truth bookkeeping (TrueIsolated,
// TrueRemaining — untouched, since no layer executed) travels with it, so
// a subsequent Adopt on any engine resumes exact accounting.
//
// Only requests that have executed no layer are extractable: a started
// task's activations live on this accelerator and its scheduler state
// (predictor observations, accrued tokens) is not transferable. Extracting
// a task the scheduler has already seen arrive additionally requires the
// scheduler to implement TaskExtractor; extraction from the undelivered
// pending set needs no scheduler cooperation. Extract fails with an error
// — never silently — on an unknown ID, a started task, or a
// non-extracting scheduler.
func (e *Engine) Extract(id int) (*Task, error) {
	if e.finished {
		return nil, fmt.Errorf("sched: Extract after Finish")
	}
	// Undelivered requests first: the scheduler never saw them.
	if t, ok := e.pending.removeByID(id); ok {
		e.accountRemove(t)
		e.injected--
		e.forgetArrival(t)
		return t, nil
	}
	for _, t := range e.ready.Tasks() {
		if t.ID != id {
			continue
		}
		if t.NextLayer > 0 {
			return nil, fmt.Errorf("sched: Extract of started task %d (%d of %d layers executed)",
				id, t.NextLayer, t.NumLayers())
		}
		x, ok := e.s.(TaskExtractor)
		if !ok {
			return nil, fmt.Errorf("sched: scheduler %s does not implement TaskExtractor", e.s.Name())
		}
		x.OnExtract(t, e.now)
		e.ready.remove(t)
		e.accountRemove(t)
		e.injected--
		e.forgetArrival(t)
		return t, nil
	}
	return nil, fmt.Errorf("sched: Extract: no queued request %d", id)
}

// Crash force-removes every outstanding request from the engine at a
// failure instant, the sched-layer surface of cluster fault injection.
// Queued-but-never-started requests (delivered or still pending) come
// back intact in `queued`, ready for Adopt on a surviving engine exactly
// like a migration extract. Started requests come back in `started` with
// their partial execution still recorded; their activations died with
// the accelerator, so the only way forward is Task.Restart (discard all
// progress, increment the attempt counter) followed by Adopt, or
// counting them as lost work. Both slices are in ascending task-ID order.
//
// Unlike Extract, Crash does not consult the scheduler: a crashed
// engine's scheduler instance is dead state — the orchestrator must seal
// this engine (Finish) and build a fresh Engine + scheduler for the slot
// if the hardware recovers. To keep the departing tasks adoptable, Crash
// scrubs the scheduler-facing state it cannot hand over (Attachment,
// heap index) itself. Crashing a finished engine is an error; crashing
// an idle engine returns two empty slices.
func (e *Engine) Crash(now time.Duration) (queued, started []*Task, err error) {
	if e.finished {
		return nil, nil, fmt.Errorf("sched: Crash after Finish")
	}
	for len(e.pending.entries) > 0 {
		t := e.pending.entries[0].t
		e.pending.removeAt(0)
		e.accountRemove(t)
		t.Attachment = nil
		t.heapIndex = -1
		queued = append(queued, t)
	}
	for _, t := range append([]*Task(nil), e.ready.Tasks()...) {
		e.ready.remove(t)
		e.accountRemove(t)
		t.Attachment = nil
		t.heapIndex = -1
		if t.NextLayer == 0 {
			queued = append(queued, t)
		} else {
			started = append(started, t)
		}
	}
	e.injected -= len(queued) + len(started)
	e.last = nil
	// The departed requests must not anchor this incarnation's makespan;
	// only completed work remains, so re-seed firstArrival from it.
	if e.bounded {
		if e.doneAny {
			e.firstArrival = e.doneMinArrival
		}
	} else if len(e.done) > 0 {
		first := e.done[0].Arrival
		for _, d := range e.done {
			if d.Arrival < first {
				first = d.Arrival
			}
		}
		e.firstArrival = first
	}
	sort.Slice(queued, func(i, j int) bool { return queued[i].ID < queued[j].ID })
	sort.Slice(started, func(i, j int) bool { return started[i].ID < started[j].ID })
	return queued, started, nil
}

// forgetArrival repairs firstArrival after an extraction: a departed
// request must not anchor this engine's makespan (the window it defines
// is served elsewhere). Only needed when the extracted task was the
// earliest; the rescan covers every request still owned by the engine
// (queued, pending, completed — injected counts them all).
func (e *Engine) forgetArrival(t *Task) {
	if t.Arrival != e.firstArrival {
		return
	}
	seen := false
	first := time.Duration(0)
	note := func(a time.Duration) {
		if !seen || a < first {
			seen, first = true, a
		}
	}
	for _, q := range e.ready.Tasks() {
		note(q.Arrival)
	}
	for i := range e.pending.entries {
		note(e.pending.entries[i].t.Arrival)
	}
	if e.bounded {
		// Completed requests survive only as aggregates; their minimum
		// arrival is tracked incrementally and equals the full-mode scan.
		if e.doneAny {
			note(e.doneMinArrival)
		}
	} else {
		for _, d := range e.done {
			note(d.Arrival)
		}
	}
	if seen {
		e.firstArrival = first
	}
	// Nothing left: injected is 0, and the next Inject/Adopt re-seeds
	// firstArrival unconditionally.
}

// Adopt hands an extracted task to this engine. at is the virtual time the
// task becomes visible — the extraction instant plus any migration cost
// the orchestrator charges — and delivery follows the Inject contract: the
// scheduler sees the task (through its own OnArrival) at the first
// scheduling point at or after max(at, t.Arrival). The task keeps its
// original ID, arrival and SLO, so turnaround metrics keep measuring from
// the real arrival: a migrated request pays the transfer delay in its own
// latency, never by rewriting history.
func (e *Engine) Adopt(t *Task, at time.Duration) error {
	if e.finished {
		return fmt.Errorf("sched: Adopt after Finish")
	}
	if t.Done {
		return fmt.Errorf("sched: Adopt of completed task %d", t.ID)
	}
	if t.NextLayer > 0 {
		return fmt.Errorf("sched: Adopt of started task %d", t.ID)
	}
	if t.queueIndex != -1 {
		return fmt.Errorf("sched: Adopt of task %d still owned by another ready queue", t.ID)
	}
	eff := at
	if t.Arrival > eff {
		eff = t.Arrival
	}
	if err := e.accountAdd(t); err != nil {
		return err
	}
	if e.injected == 0 || t.Arrival < e.firstArrival {
		e.firstArrival = t.Arrival
	}
	e.injected++
	e.pending.push(t, eff)
	return nil
}

// Migratable returns the engine's queued-but-never-started tasks — the
// requests Extract accepts — in ascending task-ID order (the ready queue's
// internal order is scan-order-free, so callers get a deterministic view).
// The running task (if any) and everything that has executed a layer are
// excluded.
func (e *Engine) Migratable() []*Task { return e.MigratableInto(nil) }

// MigratableInto is Migratable appending into a caller-owned buffer
// (passed with len 0), the allocation-free form rebalance rounds use:
// the returned slice shares the buffer's storage and is valid until its
// next reuse. The sort is comparison-based over plain ints, so it
// allocates nothing either.
func (e *Engine) MigratableInto(buf []*Task) []*Task {
	out := buf
	for _, t := range e.ready.Tasks() {
		if t.NextLayer == 0 {
			out = append(out, t)
		}
	}
	for i := range e.pending.entries {
		out = append(out, e.pending.entries[i].t)
	}
	slices.SortFunc(out, func(a, b *Task) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Drained reports whether every injected request has completed.
func (e *Engine) Drained() bool { return e.ready.Len() == 0 && e.pending.len() == 0 }

// Now returns the engine's virtual clock: the time of its last scheduling
// decision (or idle jump).
func (e *Engine) Now() time.Duration { return e.now }

// NextEvent returns the virtual time of the engine's next scheduling
// decision. ok is false when the engine is drained (nothing to schedule
// until the next Inject). It never mutates engine state.
func (e *Engine) NextEvent() (next time.Duration, ok bool) {
	if e.ready.Len() > 0 {
		return e.now, true
	}
	eff, ok := e.pending.minTime()
	if !ok {
		return 0, false
	}
	if eff < e.now {
		eff = e.now
	}
	return eff, true
}

// Outstanding returns the number of requests injected but not yet
// completed (queued, running, or awaiting delivery).
func (e *Engine) Outstanding() int { return e.ready.Len() + e.pending.len() }

// Completed returns the number of finished requests.
func (e *Engine) Completed() int { return e.nDone }

// BusyTime returns the accumulated accelerator-occupied time: executed
// layer latency plus charged preemption overhead.
func (e *Engine) BusyTime() time.Duration { return e.busy }

// LatencyScale returns the engine's effective latency scale factor
// (Options.LatencyScale, defaulted to 1): the capacity signal cluster
// dispatchers use to normalize load estimates across a heterogeneous
// cluster. It is a static hardware property, never stale.
func (e *Engine) LatencyScale() float64 { return e.scale }

// scaleDur applies the engine's latency scale to a reference-hardware
// duration. The scale-1 fast path avoids float arithmetic so homogeneous
// runs stay bit-identical to the pre-heterogeneity engine.
func (e *Engine) scaleDur(d time.Duration) time.Duration {
	if e.scale == 1 {
		return d
	}
	return time.Duration(float64(d) * e.scale)
}

// estimate evaluates the bound backlog estimator for a task at its
// current NextLayer: a slice index when the task carries a resolved
// curve, an estimator call otherwise.
func (e *Engine) estimate(t *Task) time.Duration {
	if t.estCurve != nil {
		if t.NextLayer < len(t.estCurve) {
			return t.estCurve[t.NextLayer]
		}
		return 0
	}
	return e.est(t)
}

// accountAdd enrolls a task entering the engine (Inject/Adopt) in the
// incremental backlog sum, resolving its estimate curve. The one scalar
// estimator call per enrollment cross-checks a resolved curve against the
// estimator it claims to accelerate, so mis-wired curves fail loudly at
// the injection instant instead of silently skewing every signal after
// it.
func (e *Engine) accountAdd(t *Task) error {
	if e.est == nil {
		return nil
	}
	t.estCurve = nil
	if e.curve != nil {
		t.estCurve = e.curve(t)
	}
	amt := e.est(t)
	if t.estCurve != nil {
		if c := e.estimate(t); c != amt {
			return fmt.Errorf(
				"sched: BacklogCurve disagrees with BacklogEstimator for task %d at layer %d (%v vs %v)",
				t.ID, t.NextLayer, c, amt)
		}
	}
	t.estAccounted = amt
	e.backlog += amt
	return nil
}

// accountRemove strikes a departing task (completion, Extract, Crash)
// from the incremental backlog sum and clears its accounting state: the
// curve belongs to the engine that resolved it, so an adopting engine
// re-resolves from scratch.
func (e *Engine) accountRemove(t *Task) {
	if e.est == nil {
		return
	}
	e.backlog -= t.estAccounted
	t.estAccounted = 0
	t.estCurve = nil
}

// accountStep re-evaluates the running task's contribution after an
// executed layer: the only per-event accounting update, O(1) by curve
// index (or one estimator call without a curve).
func (e *Engine) accountStep(t *Task) {
	if e.est == nil {
		return
	}
	amt := e.estimate(t)
	e.backlog += amt - t.estAccounted
	t.estAccounted = amt
}

// BacklogBound reports whether the engine maintains the incremental
// backlog sum (Options.BacklogEstimator was set).
func (e *Engine) BacklogBound() bool { return e.est != nil }

// Backlog returns the engine's incrementally maintained backlog estimate:
// the sum of Options.BacklogEstimator over every outstanding task, in
// reference-hardware units — bit-identical to
// EstimatedBacklog(Options.BacklogEstimator), at O(1) instead of a queue
// walk. Zero (and meaningless) when no estimator is bound; callers gate
// on BacklogBound.
func (e *Engine) Backlog() time.Duration { return e.backlog }

// EstimatedBacklog sums load(t) over every outstanding task, the
// engine-load signal cluster dispatchers use. load typically wraps a
// profiling estimate (Estimator.Remaining, or the Dysta LUT's per-pattern
// AvgRemaining); it must not mutate the task.
//
// Visibility-delayed pending tasks — freshly adopted migrants still
// paying MigrationCost, or requests a dispatcher injected ahead of their
// arrival — count identically to delivered ready tasks. This is the
// intended semantics, not an accident: an outstanding request is
// committed future work for this engine whether or not the scheduler can
// see it yet, and a backlog that ignored in-flight adoptions would make
// the adopting engine look idle at exactly the instant the rebalancer
// (or dispatcher) is deciding whether to send it more. The
// pending-counts-fully regression test pins this, and the incremental
// sum (Backlog) implements the same spec.
//
// With a BacklogEstimator bound, this scan remains the O(n) reference
// the invariant tests compare Backlog against; hot paths (SignalBoard
// refreshes, rebalancer views) read the incremental sum instead.
func (e *Engine) EstimatedBacklog(load func(*Task) time.Duration) time.Duration {
	var sum time.Duration
	for _, t := range e.ready.Tasks() {
		sum += load(t)
	}
	for i := range e.pending.entries {
		sum += load(e.pending.entries[i].t)
	}
	return sum
}

// deliver hands every pending request visible at or before the clock to
// the scheduler, in (visibility, injection order) order.
func (e *Engine) deliver() {
	for {
		t, ok := e.pending.popAtOrBefore(e.now)
		if !ok {
			return
		}
		e.ready.add(t)
		e.s.OnArrival(t, e.now)
	}
}

// Step advances the simulation by one scheduling decision: deliver due
// arrivals (jumping the clock over an idle gap if nothing is ready),
// invoke the scheduler, execute one layer of the picked task, and notify
// the scheduler of its completion. It returns the engine clock after the
// layer — the time of the next scheduling decision. Calling Step on a
// drained or finished engine is an error.
func (e *Engine) Step() (time.Duration, error) {
	if e.finished {
		return 0, fmt.Errorf("sched: Step after Finish")
	}
	e.deliver()
	if e.ready.Len() == 0 {
		eff, ok := e.pending.minTime()
		if !ok {
			return 0, fmt.Errorf("sched: Step on a drained engine")
		}
		// Idle: jump to the next arrival.
		e.now = eff
		e.deliver()
	}

	var pick *Task
	if e.scalable != nil {
		pick = e.scalable.PickNextScalable(&e.ready, e.now)
	} else if e.inc != nil {
		pick = e.inc.PickNextIncremental(&e.ready, e.now)
	} else {
		pick = e.s.PickNext(e.ready.Tasks(), e.now)
	}
	if pick == nil || !e.ready.Contains(pick) {
		return 0, fmt.Errorf("sched: %s picked a task outside the ready queue", e.s.Name())
	}
	if e.last != nil && e.last != pick && !e.last.Done {
		e.preempts++
		overhead := e.scaleDur(e.opts.PreemptionOverhead)
		e.now += overhead
		e.busy += overhead
	}
	e.last = pick

	layer := pick.NextLayer
	raw := pick.nextLayerLatency()
	dur := e.scaleDur(raw)
	if e.timeline != nil {
		e.timeline.record(pick.ID, e.now, e.now+dur)
	}
	e.now += dur
	e.busy += dur
	pick.ExecTime += dur
	pick.LastRun = e.now
	pick.NextLayer++
	// Ground-truth remaining stays in reference units (the unscaled
	// trace), so Oracle scoring and profiling estimates remain
	// comparable across engines of different speeds.
	pick.trueRemaining -= raw
	if pick.NextLayer == pick.NumLayers() {
		// Mark completion before notifying the scheduler, so
		// OnLayerComplete implementations can release their per-task
		// state on the final layer.
		pick.Done = true
		pick.Completion = e.now
		e.ready.remove(pick)
		e.accountRemove(pick)
		e.nDone++
		turn := e.now - pick.Arrival
		if e.bounded {
			e.noteDone(pick, turn)
		} else {
			e.done = append(e.done, pick)
			e.turnRatios = append(e.turnRatios, float64(turn)/float64(pick.TrueIsolated()))
			e.latencies = append(e.latencies, float64(turn))
		}
		if e.opts.Observer != nil {
			e.opts.Observer(outcomeOf(pick))
		}
	} else {
		e.accountStep(pick)
	}
	e.s.OnLayerComplete(pick, layer, pick.monitoredSparsity(layer), e.now)
	if pick.Done && e.bounded {
		// Bounded capture retains nothing per request past this point
		// (the aggregates and exemplar reservoir hold copies), so the
		// task goes back to the pool. e.last must not dangle into the
		// pool: nil carries the same "no preemption on the next pick"
		// meaning Done did. Full capture keeps tasks in e.done until
		// Finish and never pools them.
		if e.last == pick {
			e.last = nil
		}
		releaseTask(pick)
	}
	return e.now, nil
}

// noteDone folds one completion into the bounded-capture aggregates, in
// completion order — the same order the full-capture Finish traverses
// e.done in, which is what keeps the ordered float sums (ANTT,
// MeanLatency, PerModel) bit-identical between the two modes.
func (e *Engine) noteDone(t *Task, turn time.Duration) {
	ntt := float64(turn) / float64(t.TrueIsolated())
	e.turnSum += ntt
	e.latSum += float64(turn)
	e.latHist.Add(turn)
	violated := t.Violated(t.Completion)
	if violated {
		e.violations++
	}
	if t.Completion > e.lastDone {
		e.lastDone = t.Completion
	}
	if !e.doneAny || t.Arrival < e.doneMinArrival {
		e.doneAny, e.doneMinArrival = true, t.Arrival
	}
	m := e.perModel[t.Key.Model]
	m.Requests++
	m.ANTT += ntt
	if violated {
		m.ViolationRate++
	}
	e.perModel[t.Key.Model] = m
	if e.exemplars != nil {
		e.exemplars.Add(outcomeOf(t))
	}
}

// finishBounded is Finish for bounded-capture engines: the same metric
// definitions recomputed from the streaming aggregates.
func (e *Engine) finishBounded() Result {
	res := Result{Scheduler: e.s.Name(), Dropped: e.injected - e.nDone,
		Offered: e.injected}
	if e.nDone == 0 {
		return res
	}
	n := float64(e.nDone)
	res.ANTT = e.turnSum / n
	res.Preemptions = e.preempts
	res.Requests = e.nDone
	res.Violations = e.violations
	res.ViolationRate = float64(e.violations) / n
	res.MeanLatency = time.Duration(e.latSum / n)
	res.P50Latency = e.latHist.Quantile(50)
	res.P95Latency = e.latHist.Quantile(95)
	res.P99Latency = e.latHist.Quantile(99)
	res.Makespan = e.lastDone - e.firstArrival
	res.EngineSeconds = res.Makespan.Seconds()
	if res.Makespan > 0 {
		res.Throughput = n / res.Makespan.Seconds()
		res.Goodput = float64(e.nDone-e.violations) / res.Makespan.Seconds()
	}
	res.PerModel = map[string]ModelMetrics{}
	for name, m := range e.perModel {
		m.ANTT /= float64(m.Requests)
		m.ViolationRate /= float64(m.Requests)
		res.PerModel[name] = m
	}
	if e.exemplars != nil {
		res.Exemplars = append([]TaskOutcome(nil), e.exemplars.Items()...)
	}
	return res
}

// Finish seals the engine and aggregates the run's metrics. Stepping or
// injecting afterwards is an error; calling Finish twice returns the same
// Result recomputed from the same completed set. Finalizing an undrained
// engine is allowed (deadline-bounded simulations stop mid-stream), but
// the metrics then cover only the completed requests: Result.Dropped
// counts the outstanding ones so the truncation is never silent.
func (e *Engine) Finish() Result {
	e.finished = true
	if e.bounded {
		return e.finishBounded()
	}
	res := Result{Scheduler: e.s.Name(), Dropped: e.injected - len(e.done),
		Offered: e.injected}
	if len(e.done) == 0 {
		return res
	}
	res.ANTT = stats.Mean(e.turnRatios)
	res.Preemptions = e.preempts
	res.Requests = len(e.done)
	violations := 0
	var lastDone time.Duration
	for _, t := range e.done {
		if t.Violated(t.Completion) {
			violations++
		}
		if t.Completion > lastDone {
			lastDone = t.Completion
		}
	}
	res.Violations = violations
	res.ViolationRate = float64(violations) / float64(len(e.done))
	res.MeanLatency = time.Duration(stats.Mean(e.latencies))
	res.P50Latency = time.Duration(stats.Percentile(e.latencies, 50))
	res.P95Latency = time.Duration(stats.Percentile(e.latencies, 95))
	res.P99Latency = time.Duration(stats.Percentile(e.latencies, 99))
	res.Makespan = lastDone - e.firstArrival
	// A standalone engine bills exactly its makespan of capacity; the
	// cluster layer overwrites this with the pool's in-service total.
	res.EngineSeconds = res.Makespan.Seconds()
	if res.Makespan > 0 {
		res.Throughput = float64(len(e.done)) / res.Makespan.Seconds()
		res.Goodput = float64(len(e.done)-violations) / res.Makespan.Seconds()
	}
	res.PerModel = map[string]ModelMetrics{}
	for _, t := range e.done {
		m := res.PerModel[t.Key.Model]
		m.Requests++
		m.ANTT += float64(t.Completion-t.Arrival) / float64(t.TrueIsolated())
		if t.Violated(t.Completion) {
			m.ViolationRate++
		}
		res.PerModel[t.Key.Model] = m
	}
	for name, m := range res.PerModel {
		m.ANTT /= float64(m.Requests)
		m.ViolationRate /= float64(m.Requests)
		res.PerModel[name] = m
	}
	res.Timeline = e.timeline
	if e.opts.RecordTasks {
		res.Tasks = make([]TaskOutcome, 0, len(e.done))
		for _, t := range e.done {
			res.Tasks = append(res.Tasks, outcomeOf(t))
		}
		sort.Slice(res.Tasks, func(i, j int) bool { return res.Tasks[i].ID < res.Tasks[j].ID })
	}
	return res
}

// Run simulates the request stream under the scheduler and returns the
// aggregated metrics: a thin loop over the steppable Engine API. Requests
// are processed on a single time-shared accelerator; preemption happens
// only at layer boundaries.
func Run(s Scheduler, reqs []*workload.Request, opts Options) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("sched: empty request stream")
	}
	sorted := append([]*workload.Request(nil), reqs...)
	workload.SortByArrival(sorted)
	e := NewEngine(s, opts)
	for _, r := range sorted {
		if err := e.Inject(r, r.Arrival); err != nil {
			return Result{}, err
		}
	}
	for !e.Drained() {
		if _, err := e.Step(); err != nil {
			return Result{}, err
		}
	}
	return e.Finish(), nil
}

// pendingEntry is one injected-but-undelivered request: the task plus its
// visibility time and injection sequence number.
type pendingEntry struct {
	t   *Task
	eff time.Duration
	seq int
}

// pendingQueue is a min-heap of injected requests ordered by (visibility
// time, injection order), so delivery reproduces the stable
// sorted-by-arrival order Run has always used, while still accepting
// out-of-order injection from an external dispatcher.
type pendingQueue struct {
	entries []pendingEntry
	seq     int
}

func (q *pendingQueue) len() int { return len(q.entries) }

// minTime returns the earliest visibility time, or false when empty.
func (q *pendingQueue) minTime() (time.Duration, bool) {
	if len(q.entries) == 0 {
		return 0, false
	}
	return q.entries[0].eff, true
}

func (q *pendingQueue) push(t *Task, eff time.Duration) {
	q.entries = append(q.entries, pendingEntry{t: t, eff: eff, seq: q.seq})
	q.seq++
	i := len(q.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
		i = parent
	}
}

// popAtOrBefore removes and returns the earliest entry whose visibility
// time is at or before now, or false when none is due.
func (q *pendingQueue) popAtOrBefore(now time.Duration) (*Task, bool) {
	if len(q.entries) == 0 || q.entries[0].eff > now {
		return nil, false
	}
	t := q.entries[0].t
	q.removeAt(0)
	return t, true
}

// removeByID removes and returns the entry holding the task with the
// given ID, or false when absent. Migration extracts undelivered requests
// through this path; the linear scan is fine at queue sizes the engine
// sees (rebalancing is interval-gated, not per-event).
func (q *pendingQueue) removeByID(id int) (*Task, bool) {
	for i := range q.entries {
		if q.entries[i].t.ID == id {
			t := q.entries[i].t
			q.removeAt(i)
			return t, true
		}
	}
	return nil, false
}

// removeAt deletes the entry at heap index i, swapping the last entry
// into its slot and restoring the heap order in both directions (a swap
// from the tail can violate order toward either the root or the leaves).
func (q *pendingQueue) removeAt(i int) {
	last := len(q.entries) - 1
	q.entries[i] = q.entries[last]
	q.entries[last] = pendingEntry{}
	q.entries = q.entries[:last]
	if i == last {
		return
	}
	// Sift down, then up if it never moved down.
	start := i
	for {
		child := 2*i + 1
		if child >= last {
			break
		}
		if r := child + 1; r < last && q.less(r, child) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q.entries[i], q.entries[child] = q.entries[child], q.entries[i]
		i = child
	}
	if i == start {
		for i > 0 {
			parent := (i - 1) / 2
			if !q.less(i, parent) {
				break
			}
			q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
			i = parent
		}
	}
}

// less orders entries by visibility time, then injection order.
func (q *pendingQueue) less(i, j int) bool {
	a, b := q.entries[i], q.entries[j]
	return a.eff < b.eff || (a.eff == b.eff && a.seq < b.seq)
}
