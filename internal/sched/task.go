package sched

import (
	"sync"
	"time"

	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// Task is the engine-side state of one request. Schedulers read its public
// identity and progress fields; the ground-truth trace is reserved to the
// engine and the Oracle scheduler (TrueRemaining documents the exception).
type Task struct {
	ID  int
	Key trace.Key
	// Arrival is the absolute arrival time.
	Arrival time.Duration
	// SLO is the relative latency objective; Deadline = Arrival + SLO.
	SLO time.Duration
	// NextLayer is the index of the next layer to execute.
	NextLayer int
	// ExecTime is the accelerator time the task has received so far.
	ExecTime time.Duration
	// LastRun is the time the task last finished executing a layer (its
	// arrival time before it ever ran). The interval now-LastRun is the
	// T_wait of the paper's preemption penalty (Alg. 2 line 10): a
	// recently executed request has a near-zero penalty, which keeps it
	// running.
	LastRun time.Duration
	// Completion is the finish time (valid once Done).
	Completion time.Duration
	// Done reports whether every layer has executed.
	Done bool
	// Attempts counts how many times the request was restarted from
	// scratch after an engine failure destroyed its partial execution
	// (zero for a request that never lost work). The cluster's retry
	// policy bounds it: a request whose engine dies with Attempts already
	// at the retry cap becomes lost work instead of restarting again.
	Attempts int
	// Attachment is a scheduler-private per-task state slot: schedulers
	// set it in OnArrival and read it back at every scheduling point,
	// replacing the per-pick map lookups the baselines used to do. Exactly
	// one scheduler instance runs per engine invocation, so the slot is
	// never shared. The engine ignores it.
	Attachment any

	// tr is the ground-truth sample trace, embedded by value: the struct
	// is two slice headers, so copying it at construction is cheaper than
	// the per-request heap allocation a pointer would cost.
	tr trace.SampleTrace
	// trueTotal caches the trace's end-to-end latency; trueRemaining is
	// maintained by the engine as layers execute so TrueRemaining is O(1)
	// instead of re-summing the trace suffix.
	trueTotal, trueRemaining time.Duration
	// queueIndex is the task's position in the engine's ReadyQueue
	// (-1 when not queued); heapIndex is its position in the active
	// scheduler's TaskHeap (-1 when absent).
	queueIndex, heapIndex int
	// estCurve and estAccounted belong to the owning engine's incremental
	// backlog accounting (Options.BacklogEstimator): estAccounted is the
	// amount this task currently contributes to the engine's running
	// backlog sum, and estCurve, when non-nil, is the cached per-layer
	// remaining-estimate curve (indexed by NextLayer) that makes the
	// post-layer re-estimate a slice index instead of an estimator call.
	estCurve     []time.Duration
	estAccounted time.Duration
}

// taskPool recycles Task structs across requests. Tasks are released only
// by bounded-capture engines at the completion instant (full capture
// retains every completed task until Finish, so those are never pooled);
// newTask reinitializes every field, so a recycled struct is
// indistinguishable from a fresh one and pool reuse can never leak state
// across requests or runs.
var taskPool = sync.Pool{New: func() any { return new(Task) }}

// newTask wraps a workload request.
func newTask(r *workload.Request) *Task {
	total := r.Trace.Total()
	t := taskPool.Get().(*Task)
	*t = Task{ID: r.ID, Key: r.Key, Arrival: r.Arrival, SLO: r.SLO,
		LastRun: r.Arrival, tr: r.Trace,
		trueTotal: total, trueRemaining: total,
		queueIndex: -1, heapIndex: -1}
	return t
}

// releaseTask returns a completed task to the pool. Only the engine's
// bounded-capture completion path calls it, after the scheduler's final
// OnLayerComplete: past that point nothing in the engine, the cluster
// layer, or the capture machinery retains the pointer (observers and
// exemplar reservoirs receive TaskOutcome copies).
func releaseTask(t *Task) {
	*t = Task{}
	taskPool.Put(t)
}

// NumLayers returns the task's layer count.
func (t *Task) NumLayers() int { return t.tr.NumLayers() }

// Deadline returns the absolute completion deadline.
func (t *Task) Deadline() time.Duration { return t.Arrival + t.SLO }

// WaitTime returns the cumulative time the task has spent in the system
// not executing.
func (t *Task) WaitTime(now time.Duration) time.Duration {
	w := now - t.Arrival - t.ExecTime
	if w < 0 {
		return 0
	}
	return w
}

// SinceLastRun returns the time since the task last executed a layer (or
// since arrival, if it never ran): the T_wait of the paper's preemption
// penalty.
func (t *Task) SinceLastRun(now time.Duration) time.Duration {
	w := now - t.LastRun
	if w < 0 {
		return 0
	}
	return w
}

// Restart rewinds a task that lost its partial execution to an engine
// failure back to the never-started state, for re-injection (Adopt) on a
// surviving engine: progress, accrued accelerator time and scheduler
// attachments are discarded (restart-from-zero — the activations died
// with the accelerator), the attempt counter increments, and identity,
// arrival and SLO are preserved so turnaround metrics keep measuring
// from the original arrival. The retry pays for the failure in its own
// latency, never by rewriting history. Restarting a completed task is a
// caller bug; the cluster only restarts tasks ripped from a crashed
// engine, which are never Done.
func (t *Task) Restart() {
	t.NextLayer = 0
	t.ExecTime = 0
	t.LastRun = t.Arrival
	t.Completion = 0
	t.Done = false
	t.Attempts++
	t.Attachment = nil
	t.trueRemaining = t.trueTotal
	t.queueIndex, t.heapIndex = -1, -1
	// Backlog-accounting state belongs to the engine that owned the task;
	// the adopting engine re-resolves both on arrival.
	t.estCurve, t.estAccounted = nil, 0
}

// Violated reports whether the task finished past its deadline (or, if
// still running at `now`, has already passed it).
func (t *Task) Violated(now time.Duration) bool {
	if t.Done {
		return t.Completion > t.Deadline()
	}
	return now > t.Deadline()
}

// TrueIsolated returns the ground-truth isolated latency (T_isol). The
// engine uses it for metrics; among schedulers only Oracle may call it.
func (t *Task) TrueIsolated() time.Duration { return t.trueTotal }

// TrueRemaining returns the ground-truth remaining isolated latency from
// the task's next layer, maintained incrementally by the engine (O(1)).
// Reserved to the Oracle scheduler, which the paper defines as having
// perfect latency knowledge (§6.4).
func (t *Task) TrueRemaining() time.Duration { return t.trueRemaining }

// nextLayerLatency is the engine's accessor for ground-truth execution.
func (t *Task) nextLayerLatency() time.Duration { return t.tr.LayerLatency[t.NextLayer] }

// monitoredSparsity returns the hardware monitor's reading for a completed
// layer: the dynamic sparsity the zero-counting circuit observes (§5.2.1).
func (t *Task) monitoredSparsity(layer int) float64 { return t.tr.LayerSparsity[layer] }

// Scheduler decides which ready task runs next. Implementations are
// invoked by the engine at every scheduling point: task arrival delivery
// and layer completion.
type Scheduler interface {
	// Name identifies the scheduler in results.
	Name() string
	// OnArrival is called once when a task enters the ready queue.
	OnArrival(t *Task, now time.Duration)
	// OnLayerComplete is called after each layer of the running task
	// finishes, with the monitored dynamic sparsity of that layer — the
	// runtime signal Dysta's hardware monitor provides (§5.2.1).
	OnLayerComplete(t *Task, layer int, monitored float64, now time.Duration)
	// PickNext selects the next task to run from the non-empty ready
	// slice. Returning a task not in ready is a programming error the
	// engine reports.
	PickNext(ready []*Task, now time.Duration) *Task
}

// TaskExtractor is the optional Scheduler extension request migration
// requires: Engine.Extract withdraws a delivered-but-never-executed task
// from the ready queue, and the scheduler must release every trace of it
// — heap slots, attachments, candidate bookkeeping — as if the task had
// never arrived, because the same task will re-enter another scheduler
// instance through its OnArrival. Schedulers that keep no per-task state
// outside Task.Attachment only need to clear the attachment. A scheduler
// without this method cannot serve on a migrating cluster: Engine.Extract
// refuses (with an error) to withdraw a delivered task from it rather
// than corrupt its internal ordering structures.
type TaskExtractor interface {
	// OnExtract is called once, before the task leaves the ready queue,
	// with the engine clock of the extraction.
	OnExtract(t *Task, now time.Duration)
}
