package sched

import (
	"reflect"
	"testing"
	"time"
)

// TestReadyQueueIndexing exercises the O(1) membership/removal contract.
func TestReadyQueueIndexing(t *testing.T) {
	var q ReadyQueue
	tasks := make([]*Task, 5)
	for i := range tasks {
		tasks[i] = &Task{ID: i, queueIndex: -1, heapIndex: -1}
		if q.Contains(tasks[i]) {
			t.Errorf("task %d contained before add", i)
		}
		q.add(tasks[i])
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	for _, task := range tasks {
		if !q.Contains(task) {
			t.Errorf("task %d not contained after add", task.ID)
		}
	}
	// Remove from the middle: the last element is swapped in and stays
	// reachable.
	q.remove(tasks[2])
	if q.Contains(tasks[2]) {
		t.Error("removed task still contained")
	}
	if q.Len() != 4 {
		t.Errorf("Len after remove = %d", q.Len())
	}
	for _, task := range []*Task{tasks[0], tasks[1], tasks[3], tasks[4]} {
		if !q.Contains(task) {
			t.Errorf("task %d lost by swap-removal", task.ID)
		}
	}
	// Double-removal is a no-op.
	q.remove(tasks[2])
	if q.Len() != 4 {
		t.Errorf("Len after double remove = %d", q.Len())
	}
	// A foreign zero-value task is not contained.
	if q.Contains(&Task{}) {
		t.Error("foreign task reported contained")
	}
}

// TestTaskHeapOrdering drives the heap through pushes, key changes and
// removals, checking the minimum against a linear scan.
func TestTaskHeapOrdering(t *testing.T) {
	less := func(a, b *Task) bool {
		return a.Arrival < b.Arrival || (a.Arrival == b.Arrival && a.ID < b.ID)
	}
	h := NewTaskHeap(less)
	if h.Min() != nil {
		t.Fatal("empty heap has a minimum")
	}
	arrivals := []time.Duration{9, 3, 7, 3, 11, 1, 5}
	var tasks []*Task
	for i, a := range arrivals {
		task := &Task{ID: i, Arrival: a, queueIndex: -1, heapIndex: -1}
		tasks = append(tasks, task)
		h.Push(task)
	}
	scanMin := func(ts []*Task) *Task {
		best := ts[0]
		for _, x := range ts[1:] {
			if less(x, best) {
				best = x
			}
		}
		return best
	}
	if got, want := h.Min(), scanMin(tasks); got != want {
		t.Fatalf("Min = task %d, want %d", got.ID, want.ID)
	}
	// Key change: push task 0 to the front via Fix.
	tasks[0].Arrival = 0
	h.Fix(tasks[0])
	if h.Min() != tasks[0] {
		t.Fatalf("Min after Fix = task %d", h.Min().ID)
	}
	// Drain by repeated Remove(Min), checking against the scan each time.
	remaining := append([]*Task(nil), tasks...)
	for len(remaining) > 0 {
		want := scanMin(remaining)
		got := h.Min()
		if got != want {
			t.Fatalf("drain Min = task %d, want %d", got.ID, want.ID)
		}
		h.Remove(got)
		for i, x := range remaining {
			if x == got {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	if h.Len() != 0 {
		t.Errorf("heap not empty after drain: %d", h.Len())
	}
}

// sameResults compares every metric of two runs, including per-request
// outcomes and the execution timeline, demanding bit-identical floats.
func sameResults(t *testing.T, name string, a, b Result) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: incremental and reference schedules diverge:\n%+v\nvs\n%+v", name, a, b)
	}
}

// TestIncrementalMatchesReference proves the IncrementalScheduler fast
// path produces bit-identical schedules to the reference PickNext for
// every baseline in this package, across many random request streams.
func TestIncrementalMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		reqs, est := randomStream(seed)
		specs := []struct {
			name string
			mk   func() Scheduler
		}{
			{"FCFS", func() Scheduler { return NewFCFS() }},
			{"SJF", func() Scheduler { return NewSJF(est) }},
			{"PREMA", func() Scheduler { return NewPREMA(est) }},
			{"Planaria", func() Scheduler { return NewPlanaria(est) }},
			{"SDRM3", func() Scheduler { return NewSDRM3(est) }},
			{"Oracle", func() Scheduler { return NewOracle(0.05) }},
		}
		record := Options{RecordTimeline: true, RecordTasks: true}
		reference := record
		reference.ReferencePick = true
		for _, spec := range specs {
			if _, ok := spec.mk().(IncrementalScheduler); !ok {
				t.Fatalf("%s does not implement IncrementalScheduler", spec.name)
			}
			fast, err := Run(spec.mk(), reqs, record)
			if err != nil {
				t.Fatalf("%s incremental (seed %d): %v", spec.name, seed, err)
			}
			ref, err := Run(spec.mk(), reqs, reference)
			if err != nil {
				t.Fatalf("%s reference (seed %d): %v", spec.name, seed, err)
			}
			sameResults(t, spec.name, fast, ref)
		}
	}
}
