package sched

import "time"

// SDRM3 implements the MapScore scheduler of Kim et al. (ASPLOS 2024),
// adapted per paper §6.1: MapScore is the weighted sum of Urgency and
// Fairness with the hardware-preference term Pref pinned to 1 (a single
// accelerator) and Alpha tuned following SDRM3's own methodology.
//
// Urgency grows as a task's deadline approaches relative to its estimated
// remaining work; Fairness grows with the service deficit a task has
// accumulated relative to uniform progress. The highest MapScore runs.
// Because Fairness keeps rotating service toward the most-starved task,
// the schedule approaches layer-granularity processor sharing under load —
// which inflates both ANTT and violations exactly as the paper observes
// (Table 5: SDRM3 trails even FCFS on these single-accelerator workloads).
type SDRM3 struct {
	est *Estimator
	// Alpha weights Urgency against Fairness.
	Alpha float64
}

// NewSDRM3 returns the SDRM3 baseline with the tuned default alpha.
func NewSDRM3(est *Estimator) *SDRM3 { return &SDRM3{est: est, Alpha: 0.5} }

// Name implements Scheduler.
func (*SDRM3) Name() string { return "SDRM3" }

// OnArrival implements Scheduler: the pattern-blind profile is attached
// once, so per-decision scoring needs no model lookup.
func (s *SDRM3) OnArrival(t *Task, _ time.Duration) { t.Attachment = s.est.stats(t) }

// OnLayerComplete implements Scheduler.
func (*SDRM3) OnLayerComplete(t *Task, _ int, _ float64, _ time.Duration) {
	if t.Done {
		t.Attachment = nil
	}
}

// OnExtract implements TaskExtractor: only the attachment holds state.
func (*SDRM3) OnExtract(t *Task, _ time.Duration) { t.Attachment = nil }

// PickNext implements Scheduler: maximum MapScore (the reference scan).
func (s *SDRM3) PickNext(ready []*Task, now time.Duration) *Task {
	best := ready[0]
	bestScore := s.mapScore(best, now)
	for _, t := range ready[1:] {
		if sc := s.mapScore(t, now); sc > bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// PickNextIncremental implements IncrementalScheduler. MapScore depends
// on wall-clock time for every task, so the scan stays linear; the gain
// is the O(1) per-task profile access via the attachment.
func (s *SDRM3) PickNextIncremental(q *ReadyQueue, now time.Duration) *Task {
	return s.PickNext(q.Tasks(), now)
}

// mapScore = Alpha*Urgency + Fairness (Pref = 1 folded in).
func (s *SDRM3) mapScore(t *Task, now time.Duration) float64 {
	st := estStats(s.est, t)
	remain := ms(st.AvgRemaining(t.NextLayer))
	slack := ms(t.Deadline() - now)
	urgency := 0.0
	if slack > 0 {
		urgency = remain / slack
	} else {
		// Past-deadline tasks are maximally urgent.
		urgency = 1
	}
	if urgency > 1 {
		urgency = 1
	}

	iso := ms(st.AvgTotal)
	fairness := 0.0
	if iso > 0 {
		// Service deficit: how far the task lags uniform progress.
		expected := ms(now - t.Arrival)
		received := ms(t.ExecTime)
		fairness = (expected - received) / iso
	}
	return s.Alpha*urgency + fairness
}

var (
	_ IncrementalScheduler = (*SDRM3)(nil)
	_ TaskExtractor        = (*SDRM3)(nil)
)
