package sched

import (
	"time"

	"sparsedysta/internal/trace"
)

// SDRM3 implements the MapScore scheduler of Kim et al. (ASPLOS 2024),
// adapted per paper §6.1: MapScore is the weighted sum of Urgency and
// Fairness with the hardware-preference term Pref pinned to 1 (a single
// accelerator) and Alpha tuned following SDRM3's own methodology.
//
// Urgency grows as a task's deadline approaches relative to its estimated
// remaining work; Fairness grows with the service deficit a task has
// accumulated relative to uniform progress. The highest MapScore runs.
// Because Fairness keeps rotating service toward the most-starved task,
// the schedule approaches layer-granularity processor sharing under load —
// which inflates both ANTT and violations exactly as the paper observes
// (Table 5: SDRM3 trails even FCFS on these single-accelerator workloads).
type SDRM3 struct {
	est *Estimator
	// Alpha weights Urgency against Fairness.
	Alpha float64

	// Scalable-pick state (Options.ScalablePick). MapScore moves with
	// the clock for every task, so no single time-invariant key orders
	// it; but within one ISOLATION CLASS — tasks sharing the profiled
	// iso = AvgTotal, i.e. one class per model — fairness at any instant
	// is ordered (in real arithmetic) by the integer k = Arrival +
	// ExecTime: fairness = (ms(now-Arrival) - ms(ExecTime))/iso, and for
	// a shared now and iso the numerators order by -(Arrival+ExecTime).
	// Each class therefore keeps an IndexedHeap min-ordered by (k, ID),
	// whose root is the class's fairness maximum. The pick DFS-walks
	// each class heap under the upper bound
	//     score <= Alpha + ms(now-k)/iso + guard,
	// monotone decreasing in k: Urgency is clamped to [0,1] so the
	// Alpha term is at most Alpha (float multiplication by a value <= 1
	// never rounds above Alpha), and the guard absorbs the float
	// rounding by which the two ms() divisions can deviate from the
	// real-arithmetic ordering — it overestimates the true error (a few
	// ulps) by orders of magnitude while staying far below real score
	// gaps, so pruning loses little. A subtree is skipped only when its
	// bound is STRICTLY below the best exact score found, so a
	// potential tie (which the min-ID rule would resolve) is never
	// pruned: the pick is bit-identical to the reference scan. Visited
	// nodes are re-scored with the exact mapScore.
	classes  []*sdrmClass
	classIdx map[time.Duration]*sdrmClass
}

// sdrmClass is one isolation class of the scalable pick: the tasks of
// one model (one profiled AvgTotal), heap-ordered by (Arrival+ExecTime,
// ID) ascending — fairness descending.
type sdrmClass struct {
	iso float64 // ms(AvgTotal), the fairness denominator
	h   *IndexedHeap
}

// sdrmState is the per-task attachment in scalable mode: the profile
// plus the task's position in its class heap.
type sdrmState struct {
	st    *trace.Stats
	class *sdrmClass
	idx   int
}

// sdrmGuard over-covers the float rounding between the real-arithmetic
// class ordering and the rounded mapScore: the true deviation is a few
// ulps of the fairness magnitude (~1e-16 relative), while real score
// gaps between tasks are set by inter-arrival spacing over iso
// (~1e-1). 1e-6 sits safely between the two for any simulation length
// this codebase reaches (fairness stays far below 1e10).
const sdrmGuard = 1e-6

// NewSDRM3 returns the SDRM3 baseline with the tuned default alpha.
func NewSDRM3(est *Estimator) *SDRM3 { return &SDRM3{est: est, Alpha: 0.5} }

// Name implements Scheduler.
func (*SDRM3) Name() string { return "SDRM3" }

// EnableScalable implements ScalableScheduler: switch to class-heap
// maintained picks. Must precede the first arrival (the engine calls it
// at construction).
func (s *SDRM3) EnableScalable() {
	s.classIdx = map[time.Duration]*sdrmClass{}
}

// classFor returns (creating on first use) the isolation class of a
// profile. Classes live in a slice in creation order — deterministic,
// since arrivals are — so the pick never ranges over a map.
func (s *SDRM3) classFor(st *trace.Stats) *sdrmClass {
	if c, ok := s.classIdx[st.AvgTotal]; ok {
		return c
	}
	c := &sdrmClass{iso: ms(st.AvgTotal)}
	c.h = NewIndexedHeap(
		func(a, b *Task) bool {
			ka, kb := a.Arrival+a.ExecTime, b.Arrival+b.ExecTime
			return ka < kb || (ka == kb && a.ID < b.ID)
		},
		func(t *Task, i int) {
			if st, ok := t.Attachment.(*sdrmState); ok {
				st.idx = i
			}
		},
	)
	s.classIdx[st.AvgTotal] = c
	s.classes = append(s.classes, c)
	return c
}

// OnArrival implements Scheduler: the pattern-blind profile is attached
// once, so per-decision scoring needs no model lookup. In scalable mode
// the task also enters its isolation class's heap.
func (s *SDRM3) OnArrival(t *Task, _ time.Duration) {
	st := s.est.stats(t)
	if s.classIdx == nil {
		t.Attachment = st
		return
	}
	c := s.classFor(st)
	t.Attachment = &sdrmState{st: st, class: c, idx: -1}
	c.h.Push(t)
}

// OnLayerComplete implements Scheduler: in scalable mode the executed
// task's ExecTime grew, so its class-heap key moved.
func (*SDRM3) OnLayerComplete(t *Task, _ int, _ float64, _ time.Duration) {
	st, scal := t.Attachment.(*sdrmState)
	if t.Done {
		if scal && st.idx >= 0 {
			st.class.h.RemoveAt(st.idx)
		}
		t.Attachment = nil
		return
	}
	if scal && st.idx >= 0 {
		st.class.h.FixAt(st.idx)
	}
}

// OnExtract implements TaskExtractor: only the attachment holds state.
func (*SDRM3) OnExtract(t *Task, _ time.Duration) {
	if st, ok := t.Attachment.(*sdrmState); ok && st.idx >= 0 {
		st.class.h.RemoveAt(st.idx)
	}
	t.Attachment = nil
}

// PickNext implements Scheduler: maximum MapScore (the reference scan).
func (s *SDRM3) PickNext(ready []*Task, now time.Duration) *Task {
	best := ready[0]
	bestScore := s.mapScore(best, now)
	for _, t := range ready[1:] {
		if sc := s.mapScore(t, now); sc > bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// PickNextIncremental implements IncrementalScheduler. MapScore depends
// on wall-clock time for every task, so the scan stays linear; the gain
// is the O(1) per-task profile access via the attachment.
func (s *SDRM3) PickNextIncremental(q *ReadyQueue, now time.Duration) *Task {
	return s.PickNext(q.Tasks(), now)
}

// PickNextScalable implements ScalableScheduler: the exact reference
// argmax via bound-pruned DFS over each class heap (see the field doc
// on classes for the bound derivation).
func (s *SDRM3) PickNextScalable(_ *ReadyQueue, now time.Duration) *Task {
	var best *Task
	bestScore := 0.0
	for _, c := range s.classes {
		h := c.h
		if h.Len() == 0 {
			continue
		}
		var walk func(i int)
		walk = func(i int) {
			if i >= h.Len() {
				return
			}
			t := h.At(i)
			if best != nil {
				ub := s.Alpha + sdrmGuard
				if c.iso > 0 {
					ub += ms(now-(t.Arrival+t.ExecTime)) / c.iso
				}
				if ub < bestScore {
					return
				}
			}
			sc := s.mapScore(t, now)
			if best == nil || sc > bestScore || (sc == bestScore && t.ID < best.ID) {
				best, bestScore = t, sc
			}
			walk(2*i + 1)
			walk(2*i + 2)
		}
		walk(0)
	}
	return best
}

// taskStats reads the profile behind either attachment form.
func (s *SDRM3) taskStats(t *Task) *trace.Stats {
	switch a := t.Attachment.(type) {
	case *trace.Stats:
		return a
	case *sdrmState:
		return a.st
	}
	return s.est.stats(t)
}

// mapScore = Alpha*Urgency + Fairness (Pref = 1 folded in).
func (s *SDRM3) mapScore(t *Task, now time.Duration) float64 {
	st := s.taskStats(t)
	remain := ms(st.AvgRemaining(t.NextLayer))
	slack := ms(t.Deadline() - now)
	urgency := 0.0
	if slack > 0 {
		urgency = remain / slack
	} else {
		// Past-deadline tasks are maximally urgent.
		urgency = 1
	}
	if urgency > 1 {
		urgency = 1
	}

	iso := ms(st.AvgTotal)
	fairness := 0.0
	if iso > 0 {
		// Service deficit: how far the task lags uniform progress.
		expected := ms(now - t.Arrival)
		received := ms(t.ExecTime)
		fairness = (expected - received) / iso
	}
	return s.Alpha*urgency + fairness
}

var (
	_ IncrementalScheduler = (*SDRM3)(nil)
	_ ScalableScheduler    = (*SDRM3)(nil)
	_ TaskExtractor        = (*SDRM3)(nil)
)
