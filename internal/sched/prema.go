package sched

import (
	"time"

	"sparsedysta/internal/trace"
)

// PREMA implements the predictive multi-task scheduling algorithm of Choi
// & Rhu (HPCA 2020), adapted per paper §6.1: the candidate condition is
// Token_i >= Threshold (the paper's modification, so scheduling works from
// the very first decision), and execution-time estimates come from the
// offline profiling LUT, sparsity-blind as in the original.
//
// PREMA's mechanism: each task carries a static priority; while waiting it
// accumulates tokens proportional to priority and waiting time, and spends
// them when dispatched. Tasks whose tokens reach the threshold form the
// candidate set (all tasks, if none qualify); among candidates the task
// with the shortest estimated remaining time runs — so PREMA behaves like
// SJF with token-based starvation protection, matching its near-SJF ANTT
// and violation numbers in the paper's Table 5.
//
// Per-task bookkeeping (priority, tokens, accrual clock, profile) lives in
// a task attachment set at arrival, so every scheduling decision is free
// of map lookups.
type PREMA struct {
	est *Estimator
	// Threshold is the token level that makes a task a candidate.
	Threshold float64

	lastPick *Task

	// Scalable-pick state (Options.ScalablePick), nil until
	// EnableScalable. The eager accrue() materializes every ready
	// task's tokens at every pick — an O(queue) pass the scalable path
	// replaces with LAZY accrual: tokens are a pure function
	// tokens + prio*ms(now - lastSeen) of the per-task state, touched
	// only at the events that change its slope (dispatch resets, layer
	// completions). Candidacy (tokens >= Threshold) then becomes a
	// precomputed threshold-CROSSING INSTANT per task, and the pick is
	// three heap lookups: promote due crossers from crossH (keyed by
	// crossing time) into candH (keyed by (remaining, ID)), take
	// candH's minimum against the lastPick's standing candidacy, and
	// fall back to remH's all-tasks minimum when no candidate exists.
	//
	// This is the ONE documented inexact scalable path: summing
	// per-pick rounded increments (eager) and rounding one accumulated
	// span (lazy) differ in the last float ulps, so a task can cross
	// the threshold one scheduling decision earlier or later than under
	// the reference, and picks may diverge near the boundary. The
	// equivalence tests therefore compare aggregate metrics under a
	// tolerance rather than schedules bit-for-bit (see scalable.go).
	remH   *IndexedHeap // all ready tasks, keyed (remaining, ID)
	candH  *IndexedHeap // tasks past the threshold, keyed (remaining, ID)
	crossH *IndexedHeap // tasks below it, keyed (crossing instant, ID)
}

// premaState is PREMA's per-task attachment. The idx fields are the
// task's positions in the scalable heaps (-1 when absent).
type premaState struct {
	prio     float64
	tokens   float64
	lastSeen time.Duration
	st       *trace.Stats

	cross                     time.Duration
	remIdx, candIdx, crossIdx int
}

// NewPREMA returns the PREMA baseline with the default threshold.
func NewPREMA(est *Estimator) *PREMA {
	return &PREMA{est: est, Threshold: 64}
}

// Name implements Scheduler.
func (*PREMA) Name() string { return "PREMA" }

// state returns the task's attachment, creating a zero state for tasks
// the scheduler never saw arrive (mirroring the zero values the map-based
// bookkeeping used to yield).
func (p *PREMA) state(t *Task) *premaState {
	if s, ok := t.Attachment.(*premaState); ok {
		return s
	}
	s := &premaState{st: p.est.stats(t), remIdx: -1, candIdx: -1, crossIdx: -1}
	t.Attachment = s
	return s
}

// remainingOf reads the profiled remaining time through the attachment.
func (p *PREMA) remainingOf(t *Task) time.Duration {
	if s, ok := t.Attachment.(*premaState); ok {
		return s.st.AvgRemaining(t.NextLayer)
	}
	return p.est.Remaining(t)
}

// crossAt returns the instant the task's lazily-accrued tokens reach
// the threshold: lastSeen plus the remaining deficit over the accrual
// slope. Already-qualified tasks cross immediately.
func (p *PREMA) crossAt(s *premaState) time.Duration {
	if s.tokens >= p.Threshold {
		return s.lastSeen
	}
	if s.prio <= 0 {
		// No accrual: never crosses. A sentinel far past any simulated
		// horizon keeps it ordered without a special case.
		return 1 << 62
	}
	wait := (p.Threshold - s.tokens) / s.prio // ms until crossing
	return s.lastSeen + time.Duration(wait*float64(time.Millisecond))
}

// EnableScalable implements ScalableScheduler. Must precede the first
// arrival (the engine calls it at construction).
func (p *PREMA) EnableScalable() {
	remLess := func(a, b *Task) bool {
		ra, rb := p.remainingOf(a), p.remainingOf(b)
		return ra < rb || (ra == rb && a.ID < b.ID)
	}
	p.remH = NewIndexedHeap(remLess, func(t *Task, i int) {
		if s, ok := t.Attachment.(*premaState); ok {
			s.remIdx = i
		}
	})
	p.candH = NewIndexedHeap(remLess, func(t *Task, i int) {
		if s, ok := t.Attachment.(*premaState); ok {
			s.candIdx = i
		}
	})
	p.crossH = NewIndexedHeap(
		func(a, b *Task) bool {
			ca, cb := p.state(a).cross, p.state(b).cross
			return ca < cb || (ca == cb && a.ID < b.ID)
		},
		func(t *Task, i int) {
			if s, ok := t.Attachment.(*premaState); ok {
				s.crossIdx = i
			}
		})
}

// dropScalable releases a departing task's heap slots.
func (p *PREMA) dropScalable(s *premaState, t *Task) {
	if s.remIdx >= 0 {
		p.remH.RemoveAt(s.remIdx)
	}
	if s.candIdx >= 0 {
		p.candH.RemoveAt(s.candIdx)
	}
	if s.crossIdx >= 0 {
		p.crossH.RemoveAt(s.crossIdx)
	}
}

// PickNextScalable implements ScalableScheduler (see the field doc for
// the lazy-accrual contract).
func (p *PREMA) PickNextScalable(q *ReadyQueue, now time.Duration) *Task {
	// Promote every task whose crossing instant has passed; promotions
	// are permanent until a dispatch resets the tokens, exactly like
	// eager tokens only falling at dispatch.
	for p.crossH.Len() > 0 {
		t := p.crossH.Min()
		s := p.state(t)
		if s.cross > now {
			break
		}
		p.crossH.RemoveAt(s.crossIdx)
		p.candH.Push(t)
	}
	best := p.candH.Min()
	// The running task is a candidate by fiat (it occupies the NPU
	// until preempted), whatever its token balance.
	if lp := p.lastPick; lp != nil {
		if s, ok := lp.Attachment.(*premaState); ok && s.candIdx < 0 && q.Contains(lp) {
			if best == nil {
				best = lp
			} else if rl, rb := p.remainingOf(lp), p.remainingOf(best); rl < rb || (rl == rb && lp.ID < best.ID) {
				best = lp
			}
		}
	}
	if best == nil {
		best = p.remH.Min()
	}
	// Dispatch semantics mirror dispatch(): a change of pick spends the
	// new task's tokens, demoting it back below the threshold.
	if best != p.lastPick {
		s := p.state(best)
		s.tokens = 0
		s.lastSeen = now
		s.cross = p.crossAt(s)
		if s.candIdx >= 0 {
			p.candH.RemoveAt(s.candIdx)
			p.crossH.Push(best)
		} else if s.crossIdx >= 0 {
			p.crossH.FixAt(s.crossIdx)
		}
		p.lastPick = best
	}
	return best
}

// OnArrival implements Scheduler: assign the task's static priority.
// PREMA assigns priorities by task criticality; with uniform SLO
// multipliers, criticality is driven by job length — short jobs receive
// high priority so they are not starved by long-running tenants.
func (p *PREMA) OnArrival(t *Task, now time.Duration) {
	st := p.est.stats(t)
	s := &premaState{
		prio:     priorityForLatency(st.AvgTotal),
		lastSeen: now,
		st:       st,
		remIdx:   -1, candIdx: -1, crossIdx: -1,
	}
	t.Attachment = s
	if p.remH != nil {
		p.remH.Push(t)
		s.cross = p.crossAt(s)
		if s.tokens >= p.Threshold {
			p.candH.Push(t)
		} else {
			p.crossH.Push(t)
		}
	}
}

// priorityForLatency buckets estimated isolated latency into PREMA's
// discrete priority levels (shorter job -> higher priority).
func priorityForLatency(iso time.Duration) float64 {
	switch {
	case iso < 20*time.Millisecond:
		return 8
	case iso < 60*time.Millisecond:
		return 4
	case iso < 200*time.Millisecond:
		return 2
	default:
		return 1
	}
}

// OnLayerComplete implements Scheduler: the task that just executed was
// not waiting, so its accrual clock resets; a completed task's bookkeeping
// is released.
func (p *PREMA) OnLayerComplete(t *Task, _ int, _ float64, now time.Duration) {
	if t.Done {
		if s, ok := t.Attachment.(*premaState); ok && p.remH != nil {
			p.dropScalable(s, t)
		}
		t.Attachment = nil
		if p.lastPick == t {
			// A completed task is never in the ready queue, so every
			// lastPick comparison against ready tasks already fails —
			// clearing it is behaviorally free, and mandatory: under
			// bounded capture the engine recycles completed tasks, and a
			// dangling lastPick would spuriously grant running-task
			// candidacy to whichever new request reuses the allocation.
			p.lastPick = nil
		}
		return
	}
	s := p.state(t)
	s.lastSeen = now
	if p.remH != nil {
		// The remaining estimate shrank and the accrual clock moved:
		// repair whichever heaps key on them.
		s.cross = p.crossAt(s)
		if s.remIdx >= 0 {
			p.remH.FixAt(s.remIdx)
		}
		if s.candIdx >= 0 {
			p.candH.FixAt(s.candIdx)
		} else if s.crossIdx >= 0 {
			p.crossH.FixAt(s.crossIdx)
		}
	}
}

// OnExtract implements TaskExtractor: the migrated request forfeits its
// accumulated tokens (starvation credit is engine-local seniority — part
// of the price of moving), and a dangling last-pick reference is dropped
// so the departed task cannot shadow the next dispatch decision.
func (p *PREMA) OnExtract(t *Task, _ time.Duration) {
	if p.lastPick == t {
		p.lastPick = nil
	}
	if s, ok := t.Attachment.(*premaState); ok && p.remH != nil {
		p.dropScalable(s, t)
	}
	t.Attachment = nil
}

// accrue credits waiting-time tokens to every ready task since the last
// decision; the running task accrues nothing while executing (it was not
// waiting).
func (p *PREMA) accrue(ready []*Task, now time.Duration) {
	for _, t := range ready {
		s := p.state(t)
		if wait := ms(now - s.lastSeen); wait > 0 {
			s.tokens += s.prio * wait
		}
		s.lastSeen = now
	}
}

// dispatch finalizes a pick: a fresh dispatch spends the task's
// accumulated tokens.
func (p *PREMA) dispatch(t *Task) *Task {
	if t != p.lastPick {
		p.state(t).tokens = 0
		p.lastPick = t
	}
	return t
}

// PickNext implements Scheduler (the reference implementation). The
// running task stays a candidate (it occupies the NPU until preempted);
// tokens are spent when a *different* task is dispatched, matching
// PREMA's dispatch-slot semantics rather than per-layer churn.
func (p *PREMA) PickNext(ready []*Task, now time.Duration) *Task {
	p.accrue(ready, now)

	candidates := make([]*Task, 0, len(ready))
	for _, t := range ready {
		if p.state(t).tokens >= p.Threshold || t == p.lastPick {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		candidates = ready
	}

	best := candidates[0]
	bestRem := p.est.Remaining(best)
	for _, t := range candidates[1:] {
		rem := p.est.Remaining(t)
		if rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	return p.dispatch(best)
}

// PickNextIncremental implements IncrementalScheduler: accrue tokens,
// then track the candidate and overall (remaining, ID) minima in one
// scan with no candidate-slice allocation.
func (p *PREMA) PickNextIncremental(q *ReadyQueue, now time.Duration) *Task {
	p.accrue(q.Tasks(), now)
	var cand, all *Task
	var candRem, allRem time.Duration
	for _, t := range q.Tasks() {
		s := p.state(t)
		rem := s.st.AvgRemaining(t.NextLayer)
		if all == nil || rem < allRem || (rem == allRem && t.ID < all.ID) {
			all, allRem = t, rem
		}
		if s.tokens >= p.Threshold || t == p.lastPick {
			if cand == nil || rem < candRem || (rem == candRem && t.ID < cand.ID) {
				cand, candRem = t, rem
			}
		}
	}
	if cand == nil {
		cand = all
	}
	return p.dispatch(cand)
}

var (
	_ IncrementalScheduler = (*PREMA)(nil)
	_ ScalableScheduler    = (*PREMA)(nil)
	_ TaskExtractor        = (*PREMA)(nil)
)
