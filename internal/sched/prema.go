package sched

import "time"

// PREMA implements the predictive multi-task scheduling algorithm of Choi
// & Rhu (HPCA 2020), adapted per paper §6.1: the candidate condition is
// Token_i >= Threshold (the paper's modification, so scheduling works from
// the very first decision), and execution-time estimates come from the
// offline profiling LUT, sparsity-blind as in the original.
//
// PREMA's mechanism: each task carries a static priority; while waiting it
// accumulates tokens proportional to priority and waiting time, and spends
// them when dispatched. Tasks whose tokens reach the threshold form the
// candidate set (all tasks, if none qualify); among candidates the task
// with the shortest estimated remaining time runs — so PREMA behaves like
// SJF with token-based starvation protection, matching its near-SJF ANTT
// and violation numbers in the paper's Table 5.
type PREMA struct {
	est *Estimator
	// Threshold is the token level that makes a task a candidate.
	Threshold float64

	tokens   map[int]float64
	lastSeen map[int]time.Duration
	prio     map[int]float64
	lastPick *Task
}

// NewPREMA returns the PREMA baseline with the default threshold.
func NewPREMA(est *Estimator) *PREMA {
	return &PREMA{
		est:       est,
		Threshold: 64,
		tokens:    map[int]float64{},
		lastSeen:  map[int]time.Duration{},
		prio:      map[int]float64{},
	}
}

// Name implements Scheduler.
func (*PREMA) Name() string { return "PREMA" }

// OnArrival implements Scheduler: assign the task's static priority.
// PREMA assigns priorities by task criticality; with uniform SLO
// multipliers, criticality is driven by job length — short jobs receive
// high priority so they are not starved by long-running tenants.
func (p *PREMA) OnArrival(t *Task, now time.Duration) {
	iso := p.est.Isolated(t)
	p.prio[t.ID] = priorityForLatency(iso)
	p.tokens[t.ID] = 0
	p.lastSeen[t.ID] = now
}

// priorityForLatency buckets estimated isolated latency into PREMA's
// discrete priority levels (shorter job -> higher priority).
func priorityForLatency(iso time.Duration) float64 {
	switch {
	case iso < 20*time.Millisecond:
		return 8
	case iso < 60*time.Millisecond:
		return 4
	case iso < 200*time.Millisecond:
		return 2
	default:
		return 1
	}
}

// OnLayerComplete implements Scheduler: the task that just executed was
// not waiting, so its accrual clock resets; a completed task's bookkeeping
// is dropped.
func (p *PREMA) OnLayerComplete(t *Task, _ int, _ float64, now time.Duration) {
	if t.Done {
		delete(p.tokens, t.ID)
		delete(p.lastSeen, t.ID)
		delete(p.prio, t.ID)
		return
	}
	p.lastSeen[t.ID] = now
}

// PickNext implements Scheduler. The running task stays a candidate (it
// occupies the NPU until preempted); tokens are spent when a *different*
// task is dispatched, matching PREMA's dispatch-slot semantics rather than
// per-layer churn.
func (p *PREMA) PickNext(ready []*Task, now time.Duration) *Task {
	// Accrue tokens for waiting time since the last decision; the running
	// task accrues nothing while executing (it was not waiting).
	for _, t := range ready {
		wait := ms(now - p.lastSeen[t.ID])
		if wait > 0 {
			p.tokens[t.ID] += p.prio[t.ID] * wait
		}
		p.lastSeen[t.ID] = now
	}

	candidates := make([]*Task, 0, len(ready))
	for _, t := range ready {
		if p.tokens[t.ID] >= p.Threshold || t == p.lastPick {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		candidates = ready
	}

	best := candidates[0]
	bestRem := p.est.Remaining(best)
	for _, t := range candidates[1:] {
		rem := p.est.Remaining(t)
		if rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	if best != p.lastPick {
		// A fresh dispatch spends the task's accumulated tokens.
		p.tokens[best.ID] = 0
		p.lastPick = best
	}
	return best
}

var _ Scheduler = (*PREMA)(nil)
