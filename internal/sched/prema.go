package sched

import (
	"time"

	"sparsedysta/internal/trace"
)

// PREMA implements the predictive multi-task scheduling algorithm of Choi
// & Rhu (HPCA 2020), adapted per paper §6.1: the candidate condition is
// Token_i >= Threshold (the paper's modification, so scheduling works from
// the very first decision), and execution-time estimates come from the
// offline profiling LUT, sparsity-blind as in the original.
//
// PREMA's mechanism: each task carries a static priority; while waiting it
// accumulates tokens proportional to priority and waiting time, and spends
// them when dispatched. Tasks whose tokens reach the threshold form the
// candidate set (all tasks, if none qualify); among candidates the task
// with the shortest estimated remaining time runs — so PREMA behaves like
// SJF with token-based starvation protection, matching its near-SJF ANTT
// and violation numbers in the paper's Table 5.
//
// Per-task bookkeeping (priority, tokens, accrual clock, profile) lives in
// a task attachment set at arrival, so every scheduling decision is free
// of map lookups.
type PREMA struct {
	est *Estimator
	// Threshold is the token level that makes a task a candidate.
	Threshold float64

	lastPick *Task
}

// premaState is PREMA's per-task attachment.
type premaState struct {
	prio     float64
	tokens   float64
	lastSeen time.Duration
	st       *trace.Stats
}

// NewPREMA returns the PREMA baseline with the default threshold.
func NewPREMA(est *Estimator) *PREMA {
	return &PREMA{est: est, Threshold: 64}
}

// Name implements Scheduler.
func (*PREMA) Name() string { return "PREMA" }

// state returns the task's attachment, creating a zero state for tasks
// the scheduler never saw arrive (mirroring the zero values the map-based
// bookkeeping used to yield).
func (p *PREMA) state(t *Task) *premaState {
	if s, ok := t.Attachment.(*premaState); ok {
		return s
	}
	s := &premaState{st: p.est.stats(t)}
	t.Attachment = s
	return s
}

// OnArrival implements Scheduler: assign the task's static priority.
// PREMA assigns priorities by task criticality; with uniform SLO
// multipliers, criticality is driven by job length — short jobs receive
// high priority so they are not starved by long-running tenants.
func (p *PREMA) OnArrival(t *Task, now time.Duration) {
	st := p.est.stats(t)
	t.Attachment = &premaState{
		prio:     priorityForLatency(st.AvgTotal),
		lastSeen: now,
		st:       st,
	}
}

// priorityForLatency buckets estimated isolated latency into PREMA's
// discrete priority levels (shorter job -> higher priority).
func priorityForLatency(iso time.Duration) float64 {
	switch {
	case iso < 20*time.Millisecond:
		return 8
	case iso < 60*time.Millisecond:
		return 4
	case iso < 200*time.Millisecond:
		return 2
	default:
		return 1
	}
}

// OnLayerComplete implements Scheduler: the task that just executed was
// not waiting, so its accrual clock resets; a completed task's bookkeeping
// is released.
func (p *PREMA) OnLayerComplete(t *Task, _ int, _ float64, now time.Duration) {
	if t.Done {
		t.Attachment = nil
		return
	}
	p.state(t).lastSeen = now
}

// OnExtract implements TaskExtractor: the migrated request forfeits its
// accumulated tokens (starvation credit is engine-local seniority — part
// of the price of moving), and a dangling last-pick reference is dropped
// so the departed task cannot shadow the next dispatch decision.
func (p *PREMA) OnExtract(t *Task, _ time.Duration) {
	if p.lastPick == t {
		p.lastPick = nil
	}
	t.Attachment = nil
}

// accrue credits waiting-time tokens to every ready task since the last
// decision; the running task accrues nothing while executing (it was not
// waiting).
func (p *PREMA) accrue(ready []*Task, now time.Duration) {
	for _, t := range ready {
		s := p.state(t)
		if wait := ms(now - s.lastSeen); wait > 0 {
			s.tokens += s.prio * wait
		}
		s.lastSeen = now
	}
}

// dispatch finalizes a pick: a fresh dispatch spends the task's
// accumulated tokens.
func (p *PREMA) dispatch(t *Task) *Task {
	if t != p.lastPick {
		p.state(t).tokens = 0
		p.lastPick = t
	}
	return t
}

// PickNext implements Scheduler (the reference implementation). The
// running task stays a candidate (it occupies the NPU until preempted);
// tokens are spent when a *different* task is dispatched, matching
// PREMA's dispatch-slot semantics rather than per-layer churn.
func (p *PREMA) PickNext(ready []*Task, now time.Duration) *Task {
	p.accrue(ready, now)

	candidates := make([]*Task, 0, len(ready))
	for _, t := range ready {
		if p.state(t).tokens >= p.Threshold || t == p.lastPick {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		candidates = ready
	}

	best := candidates[0]
	bestRem := p.est.Remaining(best)
	for _, t := range candidates[1:] {
		rem := p.est.Remaining(t)
		if rem < bestRem || (rem == bestRem && t.ID < best.ID) {
			best, bestRem = t, rem
		}
	}
	return p.dispatch(best)
}

// PickNextIncremental implements IncrementalScheduler: accrue tokens,
// then track the candidate and overall (remaining, ID) minima in one
// scan with no candidate-slice allocation.
func (p *PREMA) PickNextIncremental(q *ReadyQueue, now time.Duration) *Task {
	p.accrue(q.Tasks(), now)
	var cand, all *Task
	var candRem, allRem time.Duration
	for _, t := range q.Tasks() {
		s := p.state(t)
		rem := s.st.AvgRemaining(t.NextLayer)
		if all == nil || rem < allRem || (rem == allRem && t.ID < all.ID) {
			all, allRem = t, rem
		}
		if s.tokens >= p.Threshold || t == p.lastPick {
			if cand == nil || rem < candRem || (rem == candRem && t.ID < cand.ID) {
				cand, candRem = t, rem
			}
		}
	}
	if cand == nil {
		cand = all
	}
	return p.dispatch(cand)
}

var (
	_ IncrementalScheduler = (*PREMA)(nil)
	_ TaskExtractor        = (*PREMA)(nil)
)
