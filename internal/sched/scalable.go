package sched

import "time"

// ScalableScheduler is the opt-in sublinear pick interface behind
// Options.ScalablePick: a scheduler that maintains heap-ordered score
// structures across the arrival/completion/extract hooks so a pick no
// longer scans the whole ready queue. The contract mirrors
// IncrementalScheduler's: PickNextScalable must return exactly the task
// the reference PickNext would (same lexicographic tie-breaks), with the
// sole documented exception of PREMA, whose lazily-accrued token
// arithmetic rounds differently from the eager per-pick accrual (see
// prema.go). Implementations achieve exactness by treating their heaps
// as candidate filters — heap keys are provable score bounds, and every
// surviving candidate is re-scored with the reference formula.
type ScalableScheduler interface {
	Scheduler
	// EnableScalable switches the scheduler into heap-maintained mode.
	// It must be called before any task arrives; the engine calls it at
	// construction when Options.ScalablePick is set.
	EnableScalable()
	// PickNextScalable picks the next task to run at virtual time now.
	// The returned task must be in the ready queue.
	PickNextScalable(q *ReadyQueue, now time.Duration) *Task
}

// IndexedHeap is a binary min-heap of tasks whose heap indices live
// outside the Task struct: the owner supplies a setIdx callback that
// stores each task's position (or -1 on removal) wherever it keeps
// per-task state, so one task can sit in several heaps at once —
// Task.heapIndex, the single built-in slot TaskHeap uses, cannot.
// Ordering is the owner's less function; like TaskHeap, owners must
// use keys that are time-invariant between explicit updates and break
// ties on task ID so heap shape never depends on arrival interleaving.
//
// The DFS pruning the scalable pick paths run on top (child keys are
// always >= the parent's) relies on nothing beyond the standard heap
// property, which every mutation below preserves.
type IndexedHeap struct {
	tasks  []*Task
	less   func(a, b *Task) bool
	setIdx func(t *Task, i int)
}

// NewIndexedHeap returns an empty heap with the given order and index
// store.
func NewIndexedHeap(less func(a, b *Task) bool, setIdx func(t *Task, i int)) *IndexedHeap {
	return &IndexedHeap{less: less, setIdx: setIdx}
}

// Len returns the number of tasks in the heap.
func (h *IndexedHeap) Len() int { return len(h.tasks) }

// At returns the task at heap position i (0 is the minimum; children of
// i are 2i+1 and 2i+2 — the traversal surface of the pruned DFS).
func (h *IndexedHeap) At(i int) *Task { return h.tasks[i] }

// Push inserts a task.
func (h *IndexedHeap) Push(t *Task) {
	h.tasks = append(h.tasks, t)
	i := len(h.tasks) - 1
	h.setIdx(t, i)
	h.up(i)
}

// RemoveAt deletes the task at heap position i, stamping its index -1.
func (h *IndexedHeap) RemoveAt(i int) {
	t := h.tasks[i]
	last := len(h.tasks) - 1
	h.tasks[i] = h.tasks[last]
	h.tasks[last] = nil
	h.tasks = h.tasks[:last]
	h.setIdx(t, -1)
	if i < last {
		h.setIdx(h.tasks[i], i)
		h.FixAt(i)
	}
}

// FixAt restores heap order after the task at position i changed key.
func (h *IndexedHeap) FixAt(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

// PopMin removes and returns the minimum task, or nil when empty.
func (h *IndexedHeap) PopMin() *Task {
	if len(h.tasks) == 0 {
		return nil
	}
	t := h.tasks[0]
	h.RemoveAt(0)
	return t
}

// Min returns the minimum task without removing it, or nil when empty.
func (h *IndexedHeap) Min() *Task {
	if len(h.tasks) == 0 {
		return nil
	}
	return h.tasks[0]
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.tasks[i], h.tasks[parent]) {
			return
		}
		h.tasks[i], h.tasks[parent] = h.tasks[parent], h.tasks[i]
		h.setIdx(h.tasks[i], i)
		h.setIdx(h.tasks[parent], parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) bool {
	moved := false
	for {
		child := 2*i + 1
		if child >= len(h.tasks) {
			return moved
		}
		if r := child + 1; r < len(h.tasks) && h.less(h.tasks[r], h.tasks[child]) {
			child = r
		}
		if !h.less(h.tasks[child], h.tasks[i]) {
			return moved
		}
		h.tasks[i], h.tasks[child] = h.tasks[child], h.tasks[i]
		h.setIdx(h.tasks[i], i)
		h.setIdx(h.tasks[child], child)
		i = child
		moved = true
	}
}
