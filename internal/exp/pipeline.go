package exp

import (
	"fmt"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// Options sizes an experiment run. DefaultOptions reproduces the paper's
// protocol; QuickOptions shrinks everything for benchmarks and CI.
type Options struct {
	// Seeds is the number of random seeds averaged per data point (the
	// paper uses 5, §6.1).
	Seeds int
	// Requests is the stream length per run (the paper uses 1000).
	Requests int
	// ProfileSamples sizes the offline profiling set per model-pattern
	// pair; EvalSamples sizes the evaluation trace pool.
	ProfileSamples, EvalSamples int
	// DatasetSamples sizes the profiling experiments (Figs. 2-4, 9,
	// Tables 2 and 4).
	DatasetSamples int
	// Workers bounds the worker pool of the parallel grid runner
	// (RunGrid/RunPoint). 0 means GOMAXPROCS; 1 forces sequential
	// execution. Results are bit-identical for any value.
	Workers int
	// Engines is the number of simulated accelerators per run. 0 or 1
	// uses the single-engine sched.Run path; larger values route the
	// request stream through internal/cluster behind the Dispatch policy.
	Engines int
	// Dispatch names the cluster dispatch policy for Engines > 1:
	// "rr" (round-robin, the default), "jsq" (join-shortest-queue),
	// "load" (sparsity-aware least-predicted-load via the Dysta LUT), or
	// "blind-load" (least-predicted-load on the pattern-blind estimator).
	Dispatch string
	// EngineSpecs configures a heterogeneous cluster (one entry per
	// engine, see ParseEngines for the CLI syntax). Non-empty overrides
	// Engines and always routes runs through the cluster.
	EngineSpecs []cluster.EngineSpec
	// SignalInterval bounds the staleness of the dispatcher-visible
	// engine signals (cluster runs): snapshots refresh only when an
	// arrival is at least this much virtual time past the last refresh.
	// 0 is the idealized exact-state router.
	SignalInterval time.Duration
	// Admission names the dispatch-layer admission policy: "" or "none"
	// (admit everything), "queue-cap[:N]" (shed when every engine holds
	// >= N outstanding requests, default 16), or "slo" (shed requests
	// predicted to miss their SLO on every engine). Setting it (like
	// setting SignalInterval) routes even single-engine runs through the
	// cluster dispatch layer so the policy always applies.
	Admission string
	// Rebalance names the migration policy moving queued-but-never-
	// started requests between engines: "" or "none" (no migration),
	// "steal" (idle engines pull from the longest normalized backlog),
	// or "shed" (engines push requests predicted to miss their SLO to
	// whoever can still save them). Setting it routes runs through the
	// cluster layer; migration only activates with a positive
	// RebalanceInterval.
	Rebalance string
	// RebalanceInterval is the minimum virtual time between rebalance
	// rounds. 0 disables migration — bit-identical to no rebalancer.
	RebalanceInterval time.Duration
	// MigrationCost is the per-request latency penalty of a migration,
	// in reference-hardware units (a moved request becomes schedulable
	// on its new engine only after the rebalance instant plus this).
	MigrationCost time.Duration
	// MigrationBudget caps total migrations per run (0 = no cap beyond
	// the built-in once-per-request rule).
	MigrationBudget int
	// Churn enables deterministic fault injection: every engine
	// alternates exponential up/down phases (mean MTBF / MTTR), with the
	// whole fail/recover schedule derived per cell from the seed index,
	// so results stay bit-identical across -workers. Setting it routes
	// runs through the cluster layer even on one engine.
	Churn bool
	// MTBF and MTTR are the mean time between failures and mean time to
	// repair of the churn generator, in virtual time. Both must be
	// positive when Churn is set.
	MTBF, MTTR time.Duration
	// RetryMax caps restart-from-zero retries per request after a
	// failure destroys its partial execution; past the cap the request
	// is counted as LostWork. 0 means retry without limit.
	RetryMax int
	// Traffic names the arrival process: "" or "poisson" (stationary
	// Poisson — "" keeps the historical inline draw, "poisson" the
	// explicit process, byte-for-byte identical streams), "mmpp"
	// (two-phase Markov-modulated bursts, shaped by Burst), "diurnal"
	// (sinusoidal rate curve, one cycle per stream), or "replay:PATH"
	// (arrival instants from a recorded CSV trace).
	Traffic string
	// Burst is the burst-to-quiet rate ratio of the mmpp process; 0
	// means the default of 8.
	Burst float64
	// Autoscale enables the SLO-driven engine-count policy: the live
	// set scales between ScaleMin and ScaleMax by draining and
	// re-joining engines at signal-refresh instants. Setting it routes
	// runs through the cluster layer.
	Autoscale bool
	// ScaleMin and ScaleMax bound the autoscaler's live engine count.
	// 0 means Min 1 and Max = the cluster size.
	ScaleMin, ScaleMax int
	// Stream generates each cell's arrivals lazily and injects them one
	// at a time (sched.RunStream / cluster.RunStream) instead of
	// materializing the request slice — the schedule is bit-identical,
	// but run memory stops growing with Requests once Capture is
	// "bounded" too. Incompatible with Autoscale, whose thresholds
	// derive from the materialized stream (Validate rejects the pair).
	Stream bool
	// Capture selects the engine's result-capture mode: "" or "full"
	// keeps the per-request structures; "bounded" switches to
	// constant-size streaming aggregates (sched.Options.BoundedCapture —
	// exact everything except percentiles, which move to a ~3%-error
	// histogram).
	Capture string
	// ScalablePick enables the heap-backed sublinear pick path for
	// schedulers implementing sched.ScalableScheduler; others keep their
	// usual path.
	ScalablePick bool
}

// schedOptions resolves the per-engine sched.Options the cell runner
// derives from the experiment options, rejecting unknown capture modes.
func (o Options) schedOptions() (sched.Options, error) {
	s := sched.Options{ScalablePick: o.ScalablePick}
	switch o.Capture {
	case "", "full":
	case "bounded":
		s.BoundedCapture = true
	default:
		return s, fmt.Errorf("exp: unknown capture mode %q (valid: full, bounded)", o.Capture)
	}
	return s, nil
}

// DefaultOptions returns the paper-scale protocol.
func DefaultOptions() Options {
	return Options{
		Seeds:          5,
		Requests:       1000,
		ProfileSamples: 100,
		EvalSamples:    400,
		DatasetSamples: 2000,
	}
}

// QuickOptions returns a reduced protocol for fast regeneration.
func QuickOptions() Options {
	return Options{
		Seeds:          2,
		Requests:       300,
		ProfileSamples: 40,
		EvalSamples:    150,
		DatasetSamples: 500,
	}
}

// Pipeline bundles the Phase 1 outputs for one scenario: trace stores, the
// profiling LUT and the baseline estimator.
type Pipeline struct {
	Scenario workload.Scenario
	Prof     *trace.Store
	Eval     *trace.Store
	LUT      *trace.StatsSet
	Est      *sched.Estimator
}

// NewPipeline runs Phase 1 for the scenario.
func NewPipeline(sc workload.Scenario, opts Options, seed uint64) (*Pipeline, error) {
	prof, eval, err := workload.BuildStores(sc, opts.ProfileSamples, opts.EvalSamples, seed)
	if err != nil {
		return nil, err
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Scenario: sc,
		Prof:     prof,
		Eval:     eval,
		LUT:      lut,
		Est:      sched.NewEstimator(lut),
	}, nil
}

// SchedSpec names a scheduler and constructs a fresh instance per run.
type SchedSpec struct {
	Name string
	New  func(p *Pipeline) sched.Scheduler
}

// StandardScheds returns the paper's Table 5 scheduler lineup.
func StandardScheds() []SchedSpec {
	return []SchedSpec{
		{"FCFS", func(p *Pipeline) sched.Scheduler { return sched.NewFCFS() }},
		{"SJF", func(p *Pipeline) sched.Scheduler { return sched.NewSJF(p.Est) }},
		{"SDRM3", func(p *Pipeline) sched.Scheduler { return sched.NewSDRM3(p.Est) }},
		{"PREMA", func(p *Pipeline) sched.Scheduler { return sched.NewPREMA(p.Est) }},
		{"Planaria", func(p *Pipeline) sched.Scheduler { return sched.NewPlanaria(p.Est) }},
		{"Dysta", func(p *Pipeline) sched.Scheduler { return core.NewDefault(p.LUT) }},
	}
}

// WithOracle appends the Oracle upper bound (used by the sweep figures).
func WithOracle(specs []SchedSpec) []SchedSpec {
	return append(specs, SchedSpec{"Oracle", func(p *Pipeline) sched.Scheduler {
		return sched.NewOracle(core.DefaultConfig().Eta)
	}})
}

// RunSeeds evaluates one scheduler at one (rate, SLO-multiplier)
// operating point, returning the per-seed results. This is the sequential
// reference path; the parallel RunGrid/RunPoint must produce bit-identical
// aggregates (see runner_test.go).
func (p *Pipeline) RunSeeds(spec SchedSpec, rate, mslo float64, opts Options) ([]sched.Result, error) {
	rs := make([]sched.Result, 0, opts.Seeds)
	for s := 0; s < opts.Seeds; s++ {
		res, err := p.runCell(spec, Point{Rate: rate, MSLO: mslo}, s, opts)
		if err != nil {
			return nil, err
		}
		rs = append(rs, res)
	}
	return rs, nil
}

// RunPoint evaluates every scheduler at one (rate, SLO-multiplier)
// operating point, averaging over opts.Seeds seeds, and returns results
// keyed by scheduler name. The (scheduler, seed) cells fan out over the
// parallel grid runner.
func (p *Pipeline) RunPoint(specs []SchedSpec, rate, mslo float64, opts Options) (map[string]sched.Result, error) {
	grid, err := p.RunGrid(specs, []Point{{Rate: rate, MSLO: mslo}}, opts)
	if err != nil {
		return nil, err
	}
	return grid[0].Results, nil
}

// AttNNRates and CNNRates are the paper's operating points (§6.2, §6.4).
var (
	AttNNRates = []float64{30, 40}
	CNNRates   = []float64{3, 4}
)
