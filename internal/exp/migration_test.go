package exp

import (
	"encoding/json"
	"testing"
	"time"
)

// TestMigrationRegistered: the experiment resolves through Lookup and
// appears in the scaling-study listing.
func TestMigrationRegistered(t *testing.T) {
	if _, err := Lookup("migration"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ScaleIDs() {
		if id == "migration" {
			found = true
		}
	}
	if !found {
		t.Error("migration missing from ScaleIDs")
	}
}

// TestNeutralRebalanceOptionsBitIdentical: rebalance "none" (any
// interval) and a real policy at interval 0 must be byte-identical to a
// run with no migration options at all, across every dispatch policy —
// the exp-layer end of the PR's equivalence chain.
func TestNeutralRebalanceOptionsBitIdentical(t *testing.T) {
	opts := tiny()
	opts.Engines = 3
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()[:3]
	for _, policy := range DispatchPolicies {
		o := opts
		o.Dispatch = policy
		want, err := p.RunPoint(specs, 90, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, _ := json.Marshal(want)
		for name, neutral := range map[string]Options{
			"none-with-interval": func() Options {
				n := o
				n.Rebalance = "none"
				n.RebalanceInterval = 2 * time.Millisecond
				n.MigrationCost = time.Millisecond
				return n
			}(),
			"steal-zero-interval": func() Options {
				n := o
				n.Rebalance = "steal"
				n.RebalanceInterval = 0
				return n
			}(),
		} {
			got, err := p.RunPoint(specs, 90, 10, neutral)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := json.Marshal(got)
			if string(wantJSON) != string(b) {
				t.Errorf("dispatch=%s %s: neutral migration knobs diverge", policy, name)
			}
		}
	}
}

// TestMigrationWorkersBitIdentical: steal and shed grids are
// byte-identical across worker counts — migration preserves the parallel
// runner's determinism contract.
func TestMigrationWorkersBitIdentical(t *testing.T) {
	opts := tiny()
	opts.Seeds = 2
	opts.Engines = 0
	_, specs, err := ParseEngines("1x0.5,1x1,2x2")
	if err != nil {
		t.Fatal(err)
	}
	opts.EngineSpecs = specs
	opts.Dispatch = "load"
	opts.SignalInterval = 20 * time.Millisecond
	opts.RebalanceInterval = time.Millisecond
	opts.MigrationCost = 200 * time.Microsecond
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"steal", "shed"} {
		o := opts
		o.Rebalance = policy
		seq := o
		seq.Workers = 1
		want, err := p.RunPoint(StandardScheds(), 120, 10, seq)
		if err != nil {
			t.Fatal(err)
		}
		par := o
		par.Workers = 8
		got, err := p.RunPoint(StandardScheds(), 120, 10, par)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(want)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Errorf("%s: migrating grid differs across worker counts", policy)
		}
	}
}

// TestUnknownRebalanceRejected: a bad policy name surfaces as an error on
// both the cluster and the direct path.
func TestUnknownRebalanceRejected(t *testing.T) {
	opts := tiny()
	opts.Rebalance = "pilfer"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, engines := range []int{0, 1, 2} {
		o := opts
		o.Engines = engines
		if _, err := p.RunPoint(StandardScheds()[:1], 30, 10, o); err == nil {
			t.Fatalf("unknown rebalance policy accepted on %d engines", engines)
		}
	}
}

// TestStealRecoversStaleSignalGap is the PR's acceptance property at a
// reduced protocol: on the heterogeneous mixed cluster with stale
// dispatch signals, work stealing must win back at least half of the
// violation-rate gap that staleness opened over the exact-signal router.
func TestStealRecoversStaleSignalGap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	opts := tiny()
	opts.Seeds = 2
	opts.Requests = 400
	opts.Engines = 0
	_, specs, err := ParseEngines("1x0.5,1x1,2x2")
	if err != nil {
		t.Fatal(err)
	}
	opts.EngineSpecs = specs
	opts.Dispatch = "load"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	dysta := dystaOnly()
	const rate = 120
	run := func(stale time.Duration, policy string) float64 {
		o := opts
		o.SignalInterval = stale
		o.Rebalance = policy
		if policy != "none" {
			o.RebalanceInterval = 500 * time.Microsecond
			o.MigrationCost = 200 * time.Microsecond
		}
		rs, err := p.RunPoint(dysta, rate, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		return rs["Dysta"].ViolationRate
	}
	exact := run(0, "none")
	staleNone := run(MigrationStaleInterval, "none")
	steal := run(MigrationStaleInterval, "steal")
	gap := staleNone - exact
	if gap <= 0 {
		t.Fatalf("no stale-signal gap to recover: exact %.4f, stale %.4f", exact, staleNone)
	}
	if rec := staleNone - steal; rec < gap/2 {
		t.Errorf("steal recovered %.4f of a %.4f violation-rate gap (< half): exact %.4f stale %.4f steal %.4f",
			rec, gap, exact, staleNone, steal)
	}
}

// TestMigrationExperimentStructure runs the registered experiment at a
// tiny protocol: the table covers every (mix, cell) row, the series has a
// point per interval for each line, migrating rows actually migrate, and
// the none rows report zero migrations.
func TestMigrationExperimentStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := tiny()
	opts.Requests = 150
	opts.Workers = 4
	arts, err := Migration(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("got %d artifacts", len(arts))
	}
	tbl := arts[0].(*Table)
	wantRows := len(MigrationMixes) * (2 + 2*len(RebalanceIntervals))
	if len(tbl.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), wantRows)
	}
	for _, row := range tbl.Rows {
		if row[2] == "none" && row[4] != "0" {
			t.Errorf("none row migrated: %v", row)
		}
	}
	viol := arts[1].(*Series)
	for line, ys := range viol.Lines {
		if len(ys) != len(RebalanceIntervals) {
			t.Fatalf("%s: %d points, want %d", line, len(ys), len(RebalanceIntervals))
		}
	}
}
