package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sparsedysta/internal/traffic"
)

// autoscaleTestOpts is the shared cell of the autoscale exp-layer tests:
// the experiment's operating point (half the 4-engine knee, stale
// signals) at CI scale.
func autoscaleTestOpts() Options {
	o := tiny()
	o.Seeds = 2
	o.Requests = 300
	o.ProfileSamples = 40
	o.EvalSamples = 150
	o.Engines = 4
	o.Dispatch = "load"
	o.SignalInterval = autoscaleSignalInterval
	return o
}

// TestTrafficPoissonBitIdentical is the exp-layer end of the neutral-knob
// chain: -traffic poisson must reproduce the default (inline-draw)
// results byte for byte, on both the direct and the cluster path.
func TestTrafficPoissonBitIdentical(t *testing.T) {
	for _, engines := range []int{1, 3} {
		opts := tiny()
		opts.Engines = engines
		p, err := NewPipeline(workloadAttNN(), opts, 7)
		if err != nil {
			t.Fatal(err)
		}
		dysta := dystaOnly()
		want, err := p.RunPoint(dysta, 60, 10, opts)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Traffic = "poisson"
		got, err := p.RunPoint(dysta, 60, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(want)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Errorf("engines=%d: -traffic poisson changed results:\ndefault: %s\npoisson: %s", engines, a, b)
		}
	}
}

// TestTrafficReplayRoundTrip drives a run from a recorded arrival trace:
// write a CSV, replay it through the full exp pipeline, and check the
// request count survives.
func TestTrafficReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.csv")
	arrivals := make([]time.Duration, 40)
	for i := range arrivals {
		arrivals[i] = time.Duration(i) * 10 * time.Millisecond
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traffic.WriteArrivalsCSV(f, arrivals); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	opts := tiny()
	opts.Requests = 40
	opts.Traffic = "replay:" + path
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := p.RunPoint(dystaOnly(), 60, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs["Dysta"].Requests; got != 40 {
		t.Errorf("replayed run completed %d requests, want 40", got)
	}
}

// TestAutoscaleGridDeterministicAcrossWorkers: the autoscaled mmpp grid
// must be bit-identical for any -workers value — traffic shape and
// autoscaler thresholds both derive from the cell's seed index alone.
func TestAutoscaleGridDeterministicAcrossWorkers(t *testing.T) {
	opts := autoscaleTestOpts()
	opts.Traffic = "mmpp"
	opts.Burst = 8
	opts.Autoscale = true
	opts.ScaleMin, opts.ScaleMax = 1, 4
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	dysta := dystaOnly()
	seq := opts
	seq.Workers = 1
	want, err := p.RunPoint(dysta, 66, 10, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	got, err := p.RunPoint(dysta, 66, 10, par)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Errorf("autoscaled grid diverges across worker counts:\nworkers=1: %s\nworkers=8: %s", a, b)
	}
	if r := got["Dysta"]; r.ScaleUps == 0 {
		t.Error("autoscaler never acted; the determinism check is vacuous")
	}
}

// TestAutoscaleFrontier is the experiment's headline claim as an
// assertion: under bursty (mmpp) traffic at half the cluster's knee
// capacity, the SLO-driven autoscaler holds at least 95% of the
// fixed-max arm's goodput while billing measurably fewer engine-seconds.
func TestAutoscaleFrontier(t *testing.T) {
	opts := autoscaleTestOpts()
	opts.Traffic = "mmpp"
	opts.Burst = 8
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	dysta := dystaOnly()
	fixed, err := p.RunPoint(dysta, 66, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Autoscale = true
	o.ScaleMin, o.ScaleMax = 1, 4
	scaled, err := p.RunPoint(dysta, 66, 10, o)
	if err != nil {
		t.Fatal(err)
	}
	f, s := fixed["Dysta"], scaled["Dysta"]
	if s.ScaleUps == 0 || s.ScaleDowns == 0 {
		t.Fatalf("autoscaler never cycled (%d ups, %d downs); the frontier claim is untestable here",
			s.ScaleUps, s.ScaleDowns)
	}
	if s.Goodput < 0.95*f.Goodput {
		t.Errorf("autoscaled goodput %.2f < 95%% of fixed-max %.2f", s.Goodput, f.Goodput)
	}
	if s.EngineSeconds > 0.9*f.EngineSeconds {
		t.Errorf("autoscaled run billed %.2f engine-seconds, want <= 90%% of fixed-max %.2f",
			s.EngineSeconds, f.EngineSeconds)
	}
}

// TestNewTrafficNames pins the name -> process mapping and its failure
// modes.
func TestNewTrafficNames(t *testing.T) {
	if p, err := NewTraffic("", 30, 100, 0); err != nil || p != nil {
		t.Errorf("empty name: got (%v, %v), want (nil, nil)", p, err)
	}
	for name, want := range map[string]string{
		"poisson": "poisson",
		"mmpp":    "mmpp",
		"diurnal": "diurnal",
	} {
		p, err := NewTraffic(name, 30, 100, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("%s built process %q", name, p.Name())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: built invalid process: %v", name, err)
		}
	}
	for _, bad := range []string{"uniform", "replay:/no/such/file.csv"} {
		if _, err := NewTraffic(bad, 30, 100, 0); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
	if _, err := NewTraffic("mmpp", 30, 100, 0.5); err == nil {
		t.Error("burst ratio below 1 accepted")
	}
}

// TestOptionsValidate is the satellite CLI check: inconsistent flag
// combinations fail with a clear error instead of a silent no-op.
func TestOptionsValidate(t *testing.T) {
	ok := func(mod func(*Options)) Options {
		o := tiny()
		mod(&o)
		return o
	}
	good := map[string]Options{
		"defaults":        ok(func(o *Options) {}),
		"poisson":         ok(func(o *Options) { o.Traffic = "poisson" }),
		"mmpp burst":      ok(func(o *Options) { o.Traffic = "mmpp"; o.Burst = 4 }),
		"autoscale":       ok(func(o *Options) { o.Engines = 4; o.Autoscale = true }),
		"autoscale range": ok(func(o *Options) { o.Engines = 4; o.Autoscale = true; o.ScaleMin = 2; o.ScaleMax = 3 }),
	}
	for name, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("%s: rejected: %v", name, err)
		}
	}
	bad := map[string]Options{
		"burst without mmpp":        ok(func(o *Options) { o.Burst = 4 }),
		"burst with poisson":        ok(func(o *Options) { o.Traffic = "poisson"; o.Burst = 4 }),
		"unknown traffic":           ok(func(o *Options) { o.Traffic = "uniform" }),
		"unreadable replay":         ok(func(o *Options) { o.Traffic = "replay:/no/such/file.csv" }),
		"scale-min without scaler":  ok(func(o *Options) { o.Engines = 4; o.ScaleMin = 2 }),
		"scale-max without scaler":  ok(func(o *Options) { o.Engines = 4; o.ScaleMax = 2 }),
		"scale-min over scale-max":  ok(func(o *Options) { o.Engines = 4; o.Autoscale = true; o.ScaleMin = 3; o.ScaleMax = 2 }),
		"scale-max over cluster":    ok(func(o *Options) { o.Engines = 4; o.Autoscale = true; o.ScaleMax = 8 }),
		"scale-max over hetero mix": ok(func(o *Options) { _, o.EngineSpecs, _ = ParseEngines("2x1"); o.Autoscale = true; o.ScaleMax = 3 }),
	}
	for name, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
