package exp

import (
	"fmt"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// DispatchPolicies lists the cluster dispatch policy names accepted by
// Options.Dispatch (and the CLIs' -dispatch flag), in presentation order.
var DispatchPolicies = []string{"rr", "jsq", "load", "blind-load"}

// NewDispatcher builds a fresh dispatcher for the named policy, wired to
// the pipeline's profiling artefacts (the sparsity-aware policy reads the
// Dysta LUT; the blind one the pattern-merged Estimator). Dispatchers are
// stateful, so every simulation cell gets its own instance.
func NewDispatcher(name string, p *Pipeline) (cluster.Dispatcher, error) {
	switch name {
	case "", "rr":
		return cluster.NewRoundRobin(), nil
	case "jsq":
		return cluster.NewJSQ(), nil
	case "load":
		return cluster.NewLeastLoad("load", cluster.SparsityAwareLoad(p.LUT)), nil
	case "blind-load":
		return cluster.NewLeastLoad("blind-load", cluster.BlindLoad(p.Est)), nil
	}
	return nil, fmt.Errorf("exp: unknown dispatch policy %q (valid: %v)", name, DispatchPolicies)
}

// EngineCounts is the scale-engines sweep grid.
var EngineCounts = []int{1, 2, 4, 8}

// ScaleEngines is the multi-accelerator scaling experiment: the full
// scheduler lineup on the AttNN workload across engine counts and
// dispatch policies, at an arrival rate pinned to the saturation knee of
// one engine (just above the ~30 req/s capacity the Fig. 15 sweep
// locates, scaled with the engine count so per-engine pressure stays
// constant). The knee is where dispatch quality matters most: transient
// imbalance leaves one engine idle while another queues, which round-robin
// cannot see, queue length partially sees, and predicted load sees best.
// The experiment answers the two questions a sharded deployment asks:
// does throughput scale with engines, and how much does load-aware (and
// sparsity-aware) dispatch buy over round-robin at saturating load.
func ScaleEngines(opts Options) ([]Artifact, error) {
	const ratePerEngine = 33.0 // just past the single-engine knee (Fig. 15)
	policies := []string{"rr", "jsq", "load"}

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "scale-engines",
		Title: fmt.Sprintf("multi-attnn at %.0f req/s per engine: scaling vs engine count and dispatch", ratePerEngine),
		Columns: []string{"dispatch", "engines", "scheduler",
			"viol%", "ANTT", "throughput (inf/s)"},
		Notes: []string{
			"arrival rate scales with the engine count, so per-engine pressure is constant",
			"dispatch policies: rr = round-robin, jsq = join-shortest-queue, load = sparsity-aware least-predicted-load (Dysta LUT)",
		},
	}
	specs := StandardScheds()
	xs := make([]float64, len(EngineCounts))
	for i, n := range EngineCounts {
		xs[i] = float64(n)
	}
	mkSeries := func(ylabel string) *Series {
		return &Series{
			ID:     "scale-engines",
			Title:  "Dysta under each dispatch policy",
			XLabel: "engines",
			YLabel: ylabel,
			X:      xs,
			Lines:  map[string][]float64{},
			Order:  policies,
		}
	}
	viol, stp := mkSeries("SLO violation rate (%)"), mkSeries("throughput (inf/s)")

	// A 1-engine run has nothing to dispatch, so its results are policy-
	// independent: run that column once, emit it under a "-" dispatch
	// label, and share its value as every policy's series anchor.
	var single map[string]sched.Result
	runCount := func(policy string, engines int) (map[string]sched.Result, error) {
		if engines == 1 && single != nil {
			return single, nil
		}
		o := opts
		o.Engines = engines
		o.Dispatch = policy
		grid, err := p.RunGrid(specs, []Point{{Rate: ratePerEngine * float64(engines), MSLO: 10}}, o)
		if err != nil {
			return nil, err
		}
		if engines == 1 {
			single = grid[0].Results
		}
		return grid[0].Results, nil
	}
	addRows := func(policy string, engines int, rs map[string]sched.Result) {
		label := policy
		if engines == 1 {
			label = "-"
		}
		for _, spec := range specs {
			r := rs[spec.Name]
			tbl.Rows = append(tbl.Rows, []string{
				label, fmt.Sprintf("%d", engines), spec.Name,
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.2f", r.ANTT),
				fmt.Sprintf("%.1f", r.Throughput),
			})
		}
	}

	for pi, policy := range policies {
		for _, engines := range EngineCounts {
			rs, err := runCount(policy, engines)
			if err != nil {
				return nil, err
			}
			if engines != 1 || pi == 0 {
				addRows(policy, engines, rs)
			}
			r := rs["Dysta"]
			viol.Lines[policy] = append(viol.Lines[policy], 100*r.ViolationRate)
			stp.Lines[policy] = append(stp.Lines[policy], r.Throughput)
		}
	}
	return []Artifact{tbl, stp, viol}, nil
}
