package exp

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// DispatchPolicies lists the cluster dispatch policy names accepted by
// Options.Dispatch (and the CLIs' -dispatch flag), in presentation order.
var DispatchPolicies = []string{"rr", "jsq", "load", "blind-load"}

// NewDispatcher builds a fresh dispatcher for the named policy, wired to
// the pipeline's profiling artefacts (the sparsity-aware policy reads the
// Dysta LUT with a pattern-blind fallback; the blind one the
// pattern-merged Estimator). Dispatchers are stateful, so every
// simulation cell gets its own instance.
func NewDispatcher(name string, p *Pipeline) (cluster.Dispatcher, error) {
	switch name {
	case "", "rr":
		return cluster.NewRoundRobin(), nil
	case "jsq":
		return cluster.NewJSQ(), nil
	case "load":
		return cluster.NewLeastLoad("load", cluster.SparsityAwareLoad(p.LUT, p.Est)).
			WithCurve(cluster.SparsityAwareCurve(p.LUT, p.Est)), nil
	case "blind-load":
		return cluster.NewLeastLoad("blind-load", cluster.BlindLoad(p.Est)).
			WithCurve(cluster.BlindCurve(p.Est)), nil
	}
	return nil, fmt.Errorf("exp: unknown dispatch policy %q (valid: %v)", name, DispatchPolicies)
}

// AdmissionPolicies lists the admission policy names accepted by
// Options.Admission (and the CLIs' -admission flag).
var AdmissionPolicies = []string{"none", "queue-cap[:N]", "slo"}

// NewAdmission builds the named admission policy. "" and "none" admit
// everything; "queue-cap" sheds when every engine already holds the cap
// (default 16, override with "queue-cap:N"); "slo" sheds requests
// predicted to miss their SLO on every engine, using the same
// sparsity-aware-with-fallback estimate the load dispatcher uses.
func NewAdmission(name string, p *Pipeline) (cluster.Admission, error) {
	switch {
	case name == "" || name == "none":
		return cluster.AdmitAll{}, nil
	case name == "queue-cap":
		return cluster.QueueCap{Cap: 16}, nil
	case strings.HasPrefix(name, "queue-cap:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "queue-cap:"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("exp: bad queue-cap bound in %q (want queue-cap:N, N >= 1)", name)
		}
		return cluster.QueueCap{Cap: n}, nil
	case name == "slo":
		return cluster.SLOShed{
			Iso:   cluster.RequestIsolated(p.LUT, p.Est),
			Load:  cluster.SparsityAwareLoad(p.LUT, p.Est),
			Curve: cluster.SparsityAwareCurve(p.LUT, p.Est),
		}, nil
	}
	return nil, fmt.Errorf("exp: unknown admission policy %q (valid: %v)", name, AdmissionPolicies)
}

// RebalancePolicies lists the migration policy names accepted by
// Options.Rebalance (and the CLIs' -rebalance flag).
var RebalancePolicies = []string{"none", "steal", "shed"}

// NewRebalancer builds the named migration policy, wired to the
// pipeline's sparsity-aware load estimate (the same LUT-with-fallback
// chain the load dispatcher and SLO admission use, so routing, admission
// and rebalancing never disagree about what a request costs). "" and
// "none" return the inert policy.
func NewRebalancer(name string, p *Pipeline) (cluster.RebalancePolicy, error) {
	switch name {
	case "", "none":
		return cluster.NoRebalance{}, nil
	case "steal":
		return cluster.Steal{
			Load:  cluster.SparsityAwareLoad(p.LUT, p.Est),
			Curve: cluster.SparsityAwareCurve(p.LUT, p.Est),
		}, nil
	case "shed":
		return cluster.Shed{
			Load:  cluster.SparsityAwareLoad(p.LUT, p.Est),
			Curve: cluster.SparsityAwareCurve(p.LUT, p.Est),
		}, nil
	}
	return nil, fmt.Errorf("exp: unknown rebalance policy %q (valid: %v)", name, RebalancePolicies)
}

// ParseEngines parses the CLI engine syntax: either a plain count ("4",
// a homogeneous reference-speed cluster, returned with nil specs) or a
// comma-separated list of "NxS" terms where N engines get latency scale S
// ("2x1,2x2" = two reference-speed plus two half-speed engines; a term
// without x means scale 1). It returns the total engine count and the
// per-engine specs (nil for the homogeneous plain-count form).
func ParseEngines(s string) (int, []cluster.EngineSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return 0, nil, fmt.Errorf("exp: engine count %d < 1", n)
		}
		return n, nil, nil
	}
	var specs []cluster.EngineSpec
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		countStr, scaleStr, hasScale := strings.Cut(term, "x")
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return 0, nil, fmt.Errorf("exp: bad engine term %q in %q (want N or NxSCALE)", term, s)
		}
		scale := 1.0
		if hasScale {
			scale, err = strconv.ParseFloat(scaleStr, 64)
			if err != nil || scale <= 0 {
				return 0, nil, fmt.Errorf("exp: bad latency scale in term %q of %q", term, s)
			}
		}
		for i := 0; i < count; i++ {
			specs = append(specs, cluster.EngineSpec{LatencyScale: scale})
		}
	}
	return len(specs), specs, nil
}

// EngineCounts is the scale-engines sweep grid.
var EngineCounts = []int{1, 2, 4, 8}

// SignalIntervals is the stale-signals sweep grid: the staleness bound of
// the dispatcher's view of engine state, from the idealized exact-state
// router (0) up to a refresh interval spanning many mean service times.
var SignalIntervals = []time.Duration{
	0,
	1 * time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
}

// StaleSignals is the delayed-load-signal experiment: a 4-engine cluster
// running Dysta on the AttNN workload at the saturation knee, sweeping the
// SignalBoard refresh interval against the dispatch policy. The question a
// real deployment asks: how fresh must the router's metrics pipeline be
// for load-aware (and sparsity-aware) dispatch to keep its edge over
// round-robin? With stale snapshots every state-aware policy sends whole
// bursts to whichever engine looked emptiest at the last refresh —
// concentrating work exactly like the queue-blind baseline, just with
// extra steps — so the violation-rate curves of jsq and load converge
// toward (and can cross above) the interval-invariant rr line.
func StaleSignals(opts Options) ([]Artifact, error) {
	const engines = 4
	const ratePerEngine = 33.0 // just past the single-engine knee (Fig. 15)
	policies := []string{"rr", "jsq", "load"}

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}
	dysta := dystaOnly()

	tbl := &Table{
		ID: "stale-signals",
		Title: fmt.Sprintf("Dysta on %d engines at %.0f req/s per engine: dispatch under stale load signals",
			engines, ratePerEngine),
		Columns: []string{"dispatch", "signal interval", "viol%", "ANTT", "throughput (inf/s)"},
		Notes: []string{
			"signal interval = staleness bound of the dispatcher's engine-state snapshots (0 = exact state)",
			"rr ignores load signals, so its row is the interval-invariant baseline the stale policies degrade toward",
		},
	}
	xs := make([]float64, len(SignalIntervals))
	for i, iv := range SignalIntervals {
		xs[i] = float64(iv) / float64(time.Millisecond)
	}
	viol := &Series{
		ID:     "stale-signals",
		Title:  "SLO violation rate vs signal staleness",
		XLabel: "signal interval (ms)",
		YLabel: "SLO violation rate (%)",
		X:      xs,
		Lines:  map[string][]float64{},
		Order:  policies,
	}

	for _, policy := range policies {
		for _, interval := range SignalIntervals {
			o := opts
			o.Engines = engines
			o.EngineSpecs = nil // the sweep pins its composition
			o.Dispatch = policy
			o.SignalInterval = interval
			rs, err := p.RunPoint(dysta, ratePerEngine*engines, 10, o)
			if err != nil {
				return nil, err
			}
			r := rs["Dysta"]
			tbl.Rows = append(tbl.Rows, []string{
				policy, interval.String(),
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.2f", r.ANTT),
				fmt.Sprintf("%.1f", r.Throughput),
			})
			viol.Lines[policy] = append(viol.Lines[policy], 100*r.ViolationRate)
		}
	}
	return []Artifact{tbl, viol}, nil
}

// HeteroMixes is the hetero-scale sweep grid: cluster compositions in the
// CLI -engines syntax, all with the same total capacity (sum of 1/scale =
// 4 reference engines' worth), so differences between rows are purely
// about how the dispatcher copes with the composition, not about how much
// hardware it has.
var HeteroMixes = []struct {
	Name string
	Spec string
}{
	{"uniform", "4x1"},
	{"fast-pair", "2x0.5"},
	{"slow-octet", "8x2"},
	{"mixed", "1x0.5,1x1,2x2"},
}

// HeteroScale is the heterogeneous-cluster experiment: Dysta on the AttNN
// workload at a rate saturating four reference engines, across cluster
// compositions of identical total capacity but different engine speeds.
// Round-robin ignores capacity entirely (a half-speed engine receives the
// same share as a double-speed one, so mixed clusters drown their slow
// members); capacity-normalized jsq and predicted-load weigh each queue
// by the engine's latency scale and keep fast engines fed. The policy
// ordering rr > jsq > load in violation rate should therefore widen as
// the composition gets more lopsided.
func HeteroScale(opts Options) ([]Artifact, error) {
	const capacity = 4.0 // reference-engine equivalents per mix
	const ratePerCapacity = 33.0
	policies := []string{"rr", "jsq", "load"}

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}
	dysta := dystaOnly()

	tbl := &Table{
		ID: "hetero-scale",
		Title: fmt.Sprintf("Dysta on capacity-%d heterogeneous clusters at %.0f req/s: dispatch vs composition",
			int(capacity), ratePerCapacity*capacity),
		Columns: []string{"mix", "engines", "dispatch", "viol%", "ANTT", "throughput (inf/s)"},
		Notes: []string{
			"every mix has the same total capacity (sum of engine speeds = 4 reference engines)",
			"engines syntax: NxS = N engines at latency scale S (2 = half speed, 0.5 = double speed)",
		},
	}
	xs := make([]float64, len(HeteroMixes))
	for i := range HeteroMixes {
		xs[i] = float64(i)
	}
	viol := &Series{
		ID:     "hetero-scale",
		Title:  "SLO violation rate vs cluster composition (x = mix index, see table)",
		XLabel: "mix index",
		YLabel: "SLO violation rate (%)",
		X:      xs,
		Lines:  map[string][]float64{},
		Order:  policies,
	}

	for _, mix := range HeteroMixes {
		_, specs, err := ParseEngines(mix.Spec)
		if err != nil {
			return nil, err
		}
		for _, policy := range policies {
			o := opts
			o.Engines = 0
			o.EngineSpecs = specs // the sweep pins its composition
			o.Dispatch = policy
			rs, err := p.RunPoint(dysta, ratePerCapacity*capacity, 10, o)
			if err != nil {
				return nil, err
			}
			r := rs["Dysta"]
			tbl.Rows = append(tbl.Rows, []string{
				mix.Name, mix.Spec, policy,
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.2f", r.ANTT),
				fmt.Sprintf("%.1f", r.Throughput),
			})
			viol.Lines[policy] = append(viol.Lines[policy], 100*r.ViolationRate)
		}
	}
	return []Artifact{tbl, viol}, nil
}

// dystaOnly returns the Dysta spec alone: the cluster sweeps vary the
// dispatch layer, not the per-engine scheduler, so one scheduler keeps
// the grids affordable.
func dystaOnly() []SchedSpec {
	for _, s := range StandardScheds() {
		if s.Name == "Dysta" {
			return []SchedSpec{s}
		}
	}
	panic("exp: Dysta missing from the standard lineup")
}

// ScaleEngines is the multi-accelerator scaling experiment: the full
// scheduler lineup on the AttNN workload across engine counts and
// dispatch policies, at an arrival rate pinned to the saturation knee of
// one engine (just above the ~30 req/s capacity the Fig. 15 sweep
// locates, scaled with the engine count so per-engine pressure stays
// constant). The knee is where dispatch quality matters most: transient
// imbalance leaves one engine idle while another queues, which round-robin
// cannot see, queue length partially sees, and predicted load sees best.
// The experiment answers the two questions a sharded deployment asks:
// does throughput scale with engines, and how much does load-aware (and
// sparsity-aware) dispatch buy over round-robin at saturating load.
func ScaleEngines(opts Options) ([]Artifact, error) {
	const ratePerEngine = 33.0 // just past the single-engine knee (Fig. 15)
	policies := []string{"rr", "jsq", "load"}

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "scale-engines",
		Title: fmt.Sprintf("multi-attnn at %.0f req/s per engine: scaling vs engine count and dispatch", ratePerEngine),
		Columns: []string{"dispatch", "engines", "scheduler",
			"viol%", "ANTT", "throughput (inf/s)"},
		Notes: []string{
			"arrival rate scales with the engine count, so per-engine pressure is constant",
			"dispatch policies: rr = round-robin, jsq = join-shortest-queue, load = sparsity-aware least-predicted-load (Dysta LUT)",
		},
	}
	specs := StandardScheds()
	xs := make([]float64, len(EngineCounts))
	for i, n := range EngineCounts {
		xs[i] = float64(n)
	}
	mkSeries := func(ylabel string) *Series {
		return &Series{
			ID:     "scale-engines",
			Title:  "Dysta under each dispatch policy",
			XLabel: "engines",
			YLabel: ylabel,
			X:      xs,
			Lines:  map[string][]float64{},
			Order:  policies,
		}
	}
	viol, stp := mkSeries("SLO violation rate (%)"), mkSeries("throughput (inf/s)")

	// A 1-engine run has nothing to dispatch, so its results are policy-
	// independent: run that column once, emit it under a "-" dispatch
	// label, and share its value as every policy's series anchor.
	var single map[string]sched.Result
	runCount := func(policy string, engines int) (map[string]sched.Result, error) {
		if engines == 1 && single != nil {
			return single, nil
		}
		o := opts
		o.Engines = engines
		o.EngineSpecs = nil // the sweep pins its composition
		o.Dispatch = policy
		grid, err := p.RunGrid(specs, []Point{{Rate: ratePerEngine * float64(engines), MSLO: 10}}, o)
		if err != nil {
			return nil, err
		}
		if engines == 1 {
			single = grid[0].Results
		}
		return grid[0].Results, nil
	}
	addRows := func(policy string, engines int, rs map[string]sched.Result) {
		label := policy
		if engines == 1 {
			label = "-"
		}
		for _, spec := range specs {
			r := rs[spec.Name]
			tbl.Rows = append(tbl.Rows, []string{
				label, fmt.Sprintf("%d", engines), spec.Name,
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.2f", r.ANTT),
				fmt.Sprintf("%.1f", r.Throughput),
			})
		}
	}

	for pi, policy := range policies {
		for _, engines := range EngineCounts {
			rs, err := runCount(policy, engines)
			if err != nil {
				return nil, err
			}
			if engines != 1 || pi == 0 {
				addRows(policy, engines, rs)
			}
			r := rs["Dysta"]
			viol.Lines[policy] = append(viol.Lines[policy], 100*r.ViolationRate)
			stp.Lines[policy] = append(stp.Lines[policy], r.Throughput)
		}
	}
	return []Artifact{tbl, stp, viol}, nil
}
