package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// This file is the parallel experiment runner: evaluation grids fan out
// over a worker pool, one goroutine-safe simulation cell per
// (operating point, scheduler, seed), and results merge back in
// deterministic order. Every stochastic input of a cell derives from its
// seed index alone (cellSeed), so a grid's output is bit-identical to the
// sequential reference path (RunSeeds + AverageResults) regardless of
// worker count or completion order — the determinism test in
// runner_test.go enforces this.

// Point is one operating point of an evaluation grid: an arrival rate and
// an SLO multiplier.
type Point struct {
	Rate float64
	MSLO float64
}

// PointResult pairs an operating point with its per-scheduler results,
// each averaged over the run's seeds.
type PointResult struct {
	Point   Point
	Results map[string]sched.Result
}

// cellSeed derives the workload RNG seed for one seed index, shared by
// the sequential and parallel paths (the paper's five-seed protocol).
func cellSeed(seed int) uint64 { return uint64(1000*seed) + 17 }

// churnSeed derives the fault-injection seed for one seed index. It is
// deliberately offset from cellSeed so the failure schedule is not
// correlated with the arrival stream of the same cell.
func churnSeed(seed int) uint64 { return uint64(1000*seed) + 29 }

// runCell executes one simulation cell: generate the request stream for
// the seed index and run one fresh scheduler instance over it.
func (p *Pipeline) runCell(spec SchedSpec, pt Point, seed int, opts Options) (sched.Result, error) {
	proc, err := NewTraffic(opts.Traffic, pt.Rate, opts.Requests, opts.Burst)
	if err != nil {
		return sched.Result{}, err
	}
	sOpts, err := opts.schedOptions()
	if err != nil {
		return sched.Result{}, err
	}
	if opts.Stream && opts.Autoscale {
		// Mirrors Validate for programmatically built option blocks: the
		// autoscaler's thresholds need the materialized slice.
		return sched.Result{}, fmt.Errorf("exp: streaming runs cannot autoscale")
	}
	gcfg := workload.GenConfig{
		Requests:      opts.Requests,
		RatePerSec:    pt.Rate,
		SLOMultiplier: pt.MSLO,
		Seed:          cellSeed(seed),
		Process:       proc,
	}
	// A streamed cell never materializes its requests; everything the
	// setup below consumes (churn horizons, autoscale thresholds) either
	// derives from the operating point alone or is rejected above.
	var reqs []*workload.Request
	if !opts.Stream {
		reqs, err = workload.Generate(p.Scenario, p.Eval, gcfg)
		if err != nil {
			return sched.Result{}, fmt.Errorf("exp: generating %s workload: %w", p.Scenario.Name, err)
		}
	}
	// The cluster path serves any run that needs the dispatch layer:
	// more than one engine, an explicit (possibly heterogeneous) spec, a
	// stale signal board, an admission policy, or a migration policy. A
	// 1-engine cluster is bit-identical to the direct path at neutral
	// knob settings, so admission on a single accelerator still works —
	// and a bad -admission or -rebalance name errors instead of being
	// silently ignored.
	clustered := opts.Engines > 1 || len(opts.EngineSpecs) > 0 ||
		opts.SignalInterval > 0 || (opts.Admission != "" && opts.Admission != "none") ||
		(opts.Rebalance != "" && opts.Rebalance != "none") || opts.Churn || opts.Autoscale
	if clustered {
		d, err := NewDispatcher(opts.Dispatch, p)
		if err != nil {
			return sched.Result{}, err
		}
		adm, err := NewAdmission(opts.Admission, p)
		if err != nil {
			return sched.Result{}, err
		}
		rbp, err := NewRebalancer(opts.Rebalance, p)
		if err != nil {
			return sched.Result{}, err
		}
		cfg := cluster.Config{
			Engines:           opts.Engines,
			Specs:             opts.EngineSpecs,
			Dispatch:          d,
			Admission:         adm,
			SignalInterval:    opts.SignalInterval,
			Rebalance:         rbp,
			RebalanceInterval: opts.RebalanceInterval,
			MigrationCost:     opts.MigrationCost,
			MigrationBudget:   opts.MigrationBudget,
			Sched:             sOpts,
		}
		engines := cfg.Engines
		if len(cfg.Specs) > 0 {
			cfg.Engines = 0 // Specs define the count
			engines = len(cfg.Specs)
		} else if cfg.Engines < 1 {
			// Admission/staleness on the default single accelerator.
			cfg.Engines = 1
			engines = 1
		}
		if opts.Autoscale {
			// Bounds default to [1, cluster size]; thresholds derive from
			// this cell's stream (pure function of the seed index, so
			// autoscaled grids stay bit-identical for any -workers). The
			// policy always reads the sparsity-aware load estimate — its
			// decisions should be as informed as the best dispatcher's,
			// whatever policy actually routes.
			min, max := opts.ScaleMin, opts.ScaleMax
			if min == 0 {
				min = 1
			}
			if max == 0 {
				max = engines
			}
			cfg.Autoscale = NewAutoscaler(reqs, min, max, cluster.SparsityAwareLoad(p.LUT, p.Est))
			cfg.Autoscale.Curve = cluster.SparsityAwareCurve(p.LUT, p.Est)
		}
		if opts.Churn {
			// The fail/recover schedule is a pure function of the seed
			// index, the engine count, and the operating point — never of
			// worker scheduling — so churned grids stay bit-identical for
			// any -workers. The horizon covers twice the expected stream
			// span so late arrivals still see churn through the drain.
			if opts.MTBF <= 0 || opts.MTTR <= 0 {
				return sched.Result{}, fmt.Errorf(
					"exp: churn needs positive MTBF and MTTR (got %v, %v)", opts.MTBF, opts.MTTR)
			}
			horizon := time.Duration(2 * float64(opts.Requests) / pt.Rate * float64(time.Second))
			plan, err := cluster.GenChurn(engines, horizon, opts.MTBF, opts.MTTR, churnSeed(seed))
			if err != nil {
				return sched.Result{}, fmt.Errorf("exp: generating churn plan: %w", err)
			}
			cfg.Churn = &plan
			cfg.RetryMax = opts.RetryMax
		}
		var cres cluster.Result
		if opts.Stream {
			src, serr := workload.NewStream(p.Scenario, p.Eval, gcfg)
			if serr != nil {
				return sched.Result{}, fmt.Errorf("exp: streaming %s workload: %w", p.Scenario.Name, serr)
			}
			cres, err = cluster.RunStream(func(int) sched.Scheduler { return spec.New(p) }, src, cfg)
		} else {
			cres, err = cluster.Run(func(int) sched.Scheduler { return spec.New(p) }, reqs, cfg)
		}
		if err != nil {
			return sched.Result{}, fmt.Errorf("exp: running %s on %d engines: %w",
				spec.Name, engines, err)
		}
		return cres.Result, nil
	}
	// The direct path never dispatches, but a bad -dispatch name is a
	// misconfiguration either way: validate it instead of silently
	// ignoring it (mirrors the admission-name validation above).
	if _, err := NewDispatcher(opts.Dispatch, p); err != nil {
		return sched.Result{}, err
	}
	if _, err := NewRebalancer(opts.Rebalance, p); err != nil {
		return sched.Result{}, err
	}
	var res sched.Result
	if opts.Stream {
		src, serr := workload.NewStream(p.Scenario, p.Eval, gcfg)
		if serr != nil {
			return sched.Result{}, fmt.Errorf("exp: streaming %s workload: %w", p.Scenario.Name, serr)
		}
		res, err = sched.RunStream(spec.New(p), src, sOpts)
	} else {
		res, err = sched.Run(spec.New(p), reqs, sOpts)
	}
	if err != nil {
		return sched.Result{}, fmt.Errorf("exp: running %s: %w", spec.Name, err)
	}
	return res, nil
}

// RunGrid evaluates every scheduler at every operating point, averaging
// over opts.Seeds seeds per cell. Cells run concurrently on
// opts.Workers goroutines (default: GOMAXPROCS); the returned slice is
// ordered as `points` and each map is keyed by scheduler name. The
// pipeline's stores, LUT and estimator are shared read-only across
// workers; each cell gets a fresh request stream and scheduler instance.
func (p *Pipeline) RunGrid(specs []SchedSpec, points []Point, opts Options) ([]PointResult, error) {
	type cell struct{ pi, si, seed int }
	if opts.Seeds <= 0 {
		return nil, fmt.Errorf("exp: RunGrid with %d seeds", opts.Seeds)
	}

	// Per-cell result slots are preallocated so workers write disjoint
	// memory and the merge below reads them in deterministic order.
	results := make([][][]sched.Result, len(points))
	for pi := range results {
		results[pi] = make([][]sched.Result, len(specs))
		for si := range results[pi] {
			results[pi][si] = make([]sched.Result, opts.Seeds)
		}
	}

	total := len(points) * len(specs) * opts.Seeds
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	jobs := make(chan cell)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range jobs {
				if failed() {
					continue // drain remaining jobs after a failure
				}
				res, err := p.runCell(specs[c.si], points[c.pi], c.seed, opts)
				if err != nil {
					setErr(err)
					continue
				}
				results[c.pi][c.si][c.seed] = res
			}
		}()
	}
	for pi := range points {
		for si := range specs {
			for s := 0; s < opts.Seeds; s++ {
				jobs <- cell{pi, si, s}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]PointResult, len(points))
	for pi, pt := range points {
		m := make(map[string]sched.Result, len(specs))
		for si, spec := range specs {
			avg, err := sched.AverageResults(results[pi][si])
			if err != nil {
				return nil, fmt.Errorf("exp: %s at point %d: %w", spec.Name, pi, err)
			}
			avg.Scheduler = spec.Name
			m[spec.Name] = avg
		}
		out[pi] = PointResult{Point: pt, Results: m}
	}
	return out, nil
}

// RatePoints builds a grid over arrival rates at one SLO multiplier.
func RatePoints(rates []float64, mslo float64) []Point {
	pts := make([]Point, len(rates))
	for i, r := range rates {
		pts[i] = Point{Rate: r, MSLO: mslo}
	}
	return pts
}
