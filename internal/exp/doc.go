// Package exp is the experiment harness of the reproduction: one runner
// per table and figure of the paper (see DESIGN.md §4 for the index and
// docs/EXPERIMENTS.md for the full catalog with CLI invocations), each
// regenerating the corresponding rows or series on the Go substrate.
// cmd/dysta-bench is the CLI front end; bench_test.go wires each runner
// into a testing.B benchmark.
//
// # Determinism contracts
//
// Grids fan out over a worker pool (RunGrid/RunPoint), and the whole
// harness promises bit-identical output regardless of parallelism:
//
//   - Every stochastic input of a simulation cell derives from its seed
//     index alone (cellSeed), never from scheduling order, worker
//     identity, or the wall clock; workers write preallocated disjoint
//     result slots and the merge reads them in deterministic order. The
//     parallel path must match the sequential reference (RunSeeds +
//     AverageResults) byte for byte — runner_test.go enforces it, also
//     for migrating cluster cells.
//   - Neutral-knob bit-identity: Options at neutral cluster settings
//     (Engines <= 1 with homogeneous specs, SignalInterval 0, Admission
//     none, Rebalance none or RebalanceInterval 0) produce output
//     byte-identical to the plain single-path run, so turning a knob's
//     dial to zero is always a true control. The option-level
//     equivalence tests pin each knob.
//   - Float accumulation happens in sorted, explicit orders (see e.g.
//     sched.NewEstimator), so results are reproducible across processes
//     and machines, not just within a run.
package exp
