package exp

import (
	"fmt"
	"strings"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/traffic"
	"sparsedysta/internal/workload"
)

// This file is the live-serving subsystem's experiment layer: the
// arrival-process catalogue behind Options.Traffic, the SLO-derived
// autoscaling policy behind Options.Autoscale, and the cost-vs-goodput
// frontier experiment that compares fixed provisioning against scaling
// with the load. The question a serving operator asks: bursty traffic
// forces a choice between provisioning for the burst (fixed-max: best
// goodput, engines idle between bursts) and for the mean (fixed-min:
// cheap, drowns in every burst) — how much of the fixed-max goodput does
// an SLO-driven autoscaler keep while shedding idle capacity cost?

// TrafficModels lists the arrival-process names accepted by
// Options.Traffic (and the CLIs' -traffic flag).
var TrafficModels = []string{"poisson", "mmpp", "diurnal", "replay:PATH"}

// DefaultBurst is the mmpp burst-to-quiet rate ratio used when
// Options.Burst is 0.
const DefaultBurst = 8.0

const (
	// mmppBurstFrac is the long-run fraction of time the mmpp process
	// spends in its burst phase.
	mmppBurstFrac = 0.2
	// mmppBurstLen shapes the mean burst dwell: bursts long enough to
	// span ~20 mean inter-arrival times, so a burst floods queues rather
	// than blurring into Poisson jitter.
	mmppBurstLen = 20.0
	// diurnalAmplitude is the rate swing of the diurnal curve: peaks at
	// 1.7x the mean, troughs at 0.3x.
	diurnalAmplitude = 0.7
)

// NewTraffic builds the arrival process named by Options.Traffic for a
// stream of `requests` at long-run mean rate `rate` req/s. "" returns
// nil — workload.Generate's historical inline Poisson draw, the
// bit-identity anchor — and "poisson" the explicit equivalent process
// (byte-for-byte identical streams, pinned by test). The mmpp burst
// ratio comes from `burst` (0 = DefaultBurst); the diurnal period spans
// the expected stream (one day/night cycle per run).
func NewTraffic(name string, rate float64, requests int, burst float64) (traffic.Process, error) {
	switch {
	case name == "":
		return nil, nil
	case name == "poisson":
		return traffic.NewPoisson(rate), nil
	case name == "mmpp":
		if burst == 0 {
			burst = DefaultBurst
		}
		if burst < 1 {
			return nil, fmt.Errorf("exp: mmpp burst ratio %v < 1 (bursts must raise the rate)", burst)
		}
		meanBurst := time.Duration(mmppBurstLen / rate * float64(time.Second))
		return traffic.Bursty(rate, burst, mmppBurstFrac, meanBurst), nil
	case name == "diurnal":
		period := time.Duration(float64(requests) / rate * float64(time.Second))
		return &traffic.Diurnal{Base: rate, Amplitude: diurnalAmplitude, Period: period}, nil
	case strings.HasPrefix(name, "replay:"):
		return traffic.LoadReplay(strings.TrimPrefix(name, "replay:"))
	}
	return nil, fmt.Errorf("exp: unknown traffic model %q (valid: %v)", name, TrafficModels)
}

// NewAutoscaler derives the SLO-driven engine-count policy for a request
// stream: the thresholds are proportional to the stream's mean SLO
// budget, so the same policy shape serves workloads whose service times
// differ by orders of magnitude (attnn vs cnn). Scale up when the mean
// predicted queueing delay eats a quarter of the budget — early enough
// that a burst is answered before violations spread — and back down only
// when it falls under a tenth, with a cooldown of a tenth of the budget
// (roughly a mean service time at the paper's M_slo = 10) between
// actions.
func NewAutoscaler(reqs []*workload.Request, min, max int, load func(*sched.Task) time.Duration) *cluster.Autoscaler {
	var total time.Duration
	for _, r := range reqs {
		total += r.SLO
	}
	budget := total / time.Duration(len(reqs))
	return &cluster.Autoscaler{
		Min:      min,
		Max:      max,
		Up:       budget / 4,
		Down:     budget / 10,
		Cooldown: budget / 10,
		Load:     load,
	}
}

// Validate rejects inconsistent option combinations before any pipeline
// work starts. It is the CLI-facing check — flags that only make sense
// together fail loudly here instead of being silently ignored — and is
// deliberately NOT called by runCell: experiment sweeps build option
// blocks programmatically and own their own consistency.
func (o Options) Validate() error {
	if _, err := o.schedOptions(); err != nil {
		return err
	}
	if o.Stream && o.Autoscale {
		// NewAutoscaler derives its thresholds from the materialized
		// request slice; a streamed run never has one.
		return fmt.Errorf("exp: -stream cannot combine with -autoscale (scaling thresholds derive from the materialized stream)")
	}
	if o.Burst != 0 && o.Traffic != "mmpp" {
		return fmt.Errorf("exp: -burst shapes the mmpp process (got -traffic %q)", o.Traffic)
	}
	if o.Traffic != "" {
		// A placeholder rate/length: the real ones arrive per operating
		// point. This catches unknown names, bad burst ratios, and
		// unreadable replay traces up front.
		if _, err := NewTraffic(o.Traffic, 1, 1, o.Burst); err != nil {
			return err
		}
	}
	if !o.Autoscale {
		if o.ScaleMin != 0 || o.ScaleMax != 0 {
			return fmt.Errorf("exp: -scale-min/-scale-max need -autoscale")
		}
		return nil
	}
	engines := o.Engines
	if len(o.EngineSpecs) > 0 {
		engines = len(o.EngineSpecs)
	}
	if engines < 1 {
		engines = 1
	}
	min, max := o.ScaleMin, o.ScaleMax
	if min == 0 {
		min = 1
	}
	if max == 0 {
		max = engines
	}
	if min < 1 {
		return fmt.Errorf("exp: -scale-min %d < 1", min)
	}
	if max < min {
		return fmt.Errorf("exp: -scale-min %d exceeds -scale-max %d", min, max)
	}
	if max > engines {
		return fmt.Errorf("exp: -scale-max %d exceeds the %d-engine cluster", max, engines)
	}
	return nil
}

// autoscaleSignalInterval is the signal staleness every arm of the
// autoscale experiment routes (and the autoscaler decides) under: fresh
// enough to track bursts, stale enough that scaling decisions ride the
// same delayed metrics pipeline real routers have.
const autoscaleSignalInterval = 5 * time.Millisecond

// AutoscaleTraffic is the burstiness axis of the autoscale experiment:
// stationary Poisson, then mmpp at increasing burst-to-quiet ratios with
// the same long-run mean rate.
var AutoscaleTraffic = []struct {
	Name    string
	Traffic string
	Burst   float64
}{
	{"poisson", "poisson", 0},
	{"mmpp-4x", "mmpp", 4},
	{"mmpp-8x", "mmpp", 8},
}

// Autoscale is the cost-vs-goodput frontier experiment: Dysta behind
// sparsity-aware least-load dispatch at a mean rate of half the
// cluster's knee capacity, swept over traffic burstiness × provisioning
// policy. The fixed-max arm provisions for the burst (4 engines always
// on), the fixed-min arm for well under the mean (1 engine), and the
// autoscale arm scales 1..4 on the SLO-derived policy. The frontier
// property — the autoscaler holds nearly all of fixed-max's goodput at
// measurably fewer engine-seconds — is pinned by TestAutoscaleFrontier.
func Autoscale(opts Options) ([]Artifact, error) {
	const engines = 4
	const rate = 66.0 // half the 4-engine knee capacity (Fig. 15: ~33/engine)

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}
	dysta := dystaOnly()

	tbl := &Table{
		ID: "autoscale",
		Title: fmt.Sprintf("Dysta + load dispatch at %.0f req/s: provisioning policy vs traffic burstiness (%d-engine cluster)",
			rate, engines),
		Columns: []string{"traffic", "policy", "engines",
			"viol%", "goodput (inf/s)", "engine-s", "ups", "downs"},
		Notes: []string{
			"every traffic model has the same long-run mean rate; mmpp-Kx bursts at K times its quiet rate",
			"engine-s: provisioned capacity actually billed (in-service engine-time); fixed arms bill engines x makespan",
			fmt.Sprintf("autoscaler: scale up when mean predicted queueing delay > SLO/4, down below SLO/10 (signals refresh every %v)",
				autoscaleSignalInterval),
		},
	}
	xs := make([]float64, len(AutoscaleTraffic))
	for i := range AutoscaleTraffic {
		xs[i] = float64(i)
	}
	goodput := &Series{
		ID:     "autoscale",
		Title:  "goodput vs traffic burstiness (x = traffic index, see table)",
		XLabel: "traffic index",
		YLabel: "goodput (inf/s)",
		X:      xs,
		Lines:  map[string][]float64{},
		Order:  []string{"fixed-min", "fixed-max", "autoscale"},
	}
	cost := &Series{
		ID:     "autoscale-cost",
		Title:  "provisioned capacity billed vs traffic burstiness",
		XLabel: "traffic index",
		YLabel: "engine-seconds",
		X:      xs,
		Lines:  map[string][]float64{},
		Order:  []string{"fixed-min", "fixed-max", "autoscale"},
	}

	arms := []struct {
		name      string
		engines   int
		autoscale bool
	}{
		{"fixed-min", 1, false},
		{"fixed-max", engines, false},
		{"autoscale", engines, true},
	}
	for _, tr := range AutoscaleTraffic {
		for _, a := range arms {
			o := opts
			o.Engines = a.engines
			o.EngineSpecs = nil // the sweep pins its composition
			o.Dispatch = "load"
			o.SignalInterval = autoscaleSignalInterval
			o.Traffic = tr.Traffic
			o.Burst = tr.Burst
			o.Autoscale = a.autoscale
			if a.autoscale {
				o.ScaleMin, o.ScaleMax = 1, engines
			}
			rs, err := p.RunPoint(dysta, rate, 10, o)
			if err != nil {
				return nil, err
			}
			r := rs["Dysta"]
			engCell := fmt.Sprintf("%d", a.engines)
			if a.autoscale {
				engCell = fmt.Sprintf("%d..%d", o.ScaleMin, o.ScaleMax)
			}
			tbl.Rows = append(tbl.Rows, []string{
				tr.Name, a.name, engCell,
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.1f", r.Goodput),
				fmt.Sprintf("%.1f", r.EngineSeconds),
				fmt.Sprintf("%d", r.ScaleUps),
				fmt.Sprintf("%d", r.ScaleDowns),
			})
			goodput.Lines[a.name] = append(goodput.Lines[a.name], r.Goodput)
			cost.Lines[a.name] = append(cost.Lines[a.name], r.EngineSeconds)
		}
	}
	return []Artifact{tbl, goodput, cost}, nil
}
