package exp

import (
	"fmt"
	"strings"

	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/dataset"
	"sparsedysta/internal/models"
	"sparsedysta/internal/rng"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/stats"
	"sparsedysta/internal/trace"
)

// Fig2 reproduces the dynamic-sparsity profiling of paper Fig. 2: the
// distribution of normalized latency of BERT's last and second-last
// layers over a SQuAD-like stream on Sanger. The paper reports a 0.6-1.8
// spread; the histograms and the min/max summary show the reproduction's
// spread.
func Fig2(opts Options) ([]Artifact, error) {
	m := models.BERTBase()
	traces, err := trace.Build(sanger.NewDefault(), trace.BuildConfig{
		Model: m, Samples: opts.DatasetSamples, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	var arts []Artifact
	summary := &Table{
		ID:      "fig2",
		Title:   "Normalized latency spread of BERT layers under dynamic attention sparsity (paper: 0.6-1.8)",
		Columns: []string{"layer", "min", "p1", "mean", "p99", "max"},
	}
	for _, layer := range []int{m.NumLayers() - 2, m.NumLayers() - 1} {
		lats := make([]float64, len(traces))
		for i := range traces {
			lats[i] = traces[i].LayerLatency[layer].Seconds()
		}
		mean := stats.Mean(lats)
		norm := make([]float64, len(lats))
		for i, v := range lats {
			norm[i] = v / mean
		}
		h := stats.NewHistogram(0.5, 2.0, 30)
		h.AddAll(norm)
		name := "second-last layer"
		if layer == m.NumLayers()-1 {
			name = "last layer"
		}
		arts = append(arts, &Text{
			ID:    "fig2",
			Title: fmt.Sprintf("normalized latency distribution, BERT %s", name),
			Body:  h.Render(48),
		})
		summary.Rows = append(summary.Rows, []string{
			name,
			fmt.Sprintf("%.2f", stats.Min(norm)),
			fmt.Sprintf("%.2f", stats.Percentile(norm, 1)),
			"1.00",
			fmt.Sprintf("%.2f", stats.Percentile(norm, 99)),
			fmt.Sprintf("%.2f", stats.Max(norm)),
		})
	}
	arts = append(arts, summary)
	return arts, nil
}

// Fig3 reproduces the activation-sparsity profiling of paper Fig. 3: the
// per-layer sparsity of the last six layers of ResNet-50 and VGG-16 over
// an ImageNet + low-light mixture.
func Fig3(opts Options) ([]Artifact, error) {
	var arts []Artifact
	for _, name := range []string{"resnet50", "vgg16"} {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		stream := dataset.MustStream(m, dataset.VisionPreset(m, true), 3)
		nl := m.NumLayers()
		series := make([][]float64, 6)
		for i := range series {
			series[i] = make([]float64, opts.DatasetSamples)
		}
		for s := 0; s < opts.DatasetSamples; s++ {
			sp := stream.Next().Sparsity
			for j := 0; j < 6; j++ {
				series[j][s] = sp[nl-6+j]
			}
		}
		tbl := &Table{
			ID:      "fig3",
			Title:   fmt.Sprintf("activation sparsity of the last six layers of %s (paper: most layers 10-45%%)", m.Name),
			Columns: []string{"layer", "min", "mean", "max"},
		}
		for j, ss := range series {
			tbl.Rows = append(tbl.Rows, []string{
				m.Layers[nl-6+j].Name,
				fmt.Sprintf("%.3f", stats.Min(ss)),
				fmt.Sprintf("%.3f", stats.Mean(ss)),
				fmt.Sprintf("%.3f", stats.Max(ss)),
			})
		}
		arts = append(arts, tbl)
	}
	return arts, nil
}

// Table2 reproduces the paper's Table 2: the relative range of network
// sparsity per model, with the paper's reported values alongside.
func Table2(opts Options) ([]Artifact, error) {
	paper := []struct {
		model string
		value float64
	}{
		{"googlenet", 0.283},
		{"vgg16", 0.218},
		{"inceptionv3", 0.230},
		{"resnet50", 0.151},
	}
	tbl := &Table{
		ID:      "table2",
		Title:   "Relative range of network sparsity",
		Columns: []string{"model", "measured", "paper"},
	}
	for _, p := range paper {
		m, err := models.ByName(p.model)
		if err != nil {
			return nil, err
		}
		stream := dataset.MustStream(m, dataset.VisionPreset(m, true), 42)
		net := make([]float64, opts.DatasetSamples)
		for i := range net {
			net[i] = stream.Next().NetworkSparsity()
		}
		tbl.Rows = append(tbl.Rows, []string{
			p.model,
			fmt.Sprintf("%.1f%%", 100*stats.RelativeRange(net)),
			fmt.Sprintf("%.1f%%", 100*p.value),
		})
	}
	return []Artifact{tbl}, nil
}

// Fig4 reproduces the valid-MAC profiling of paper Fig. 4: the
// distribution of normalized effective MAC operations under random
// point-wise vs channel-wise weight sparsity at equal rates (ResNet-50 at
// 95%, MobileNet at 80%), over identical input streams.
func Fig4(opts Options) ([]Artifact, error) {
	cases := []struct {
		model string
		rate  float64
	}{
		{"resnet50", 0.95},
		{"mobilenet", 0.80},
	}
	var arts []Artifact
	for _, c := range cases {
		m, err := models.ByName(c.model)
		if err != nil {
			return nil, err
		}
		r := rng.New(4)
		// Generate one mask per layer and pattern; identical inputs
		// evaluate both patterns.
		patterns := []sparsity.Pattern{sparsity.RandomPointwise, sparsity.ChannelWise}
		masks := map[sparsity.Pattern][]*sparsity.LayerMask{}
		for _, p := range patterns {
			for _, l := range m.Layers {
				if l.Kind != models.Conv {
					masks[p] = append(masks[p], nil)
					continue
				}
				mask, err := sparsity.Generate(r, p, sparsity.MaskConfig{
					Cin: l.Cin, Cout: l.Cout, KH: l.KH, KW: l.KW, Rate: c.rate})
				if err != nil {
					return nil, err
				}
				masks[p] = append(masks[p], mask)
			}
		}

		stream := dataset.MustStream(m, dataset.VisionPreset(m, true), 5)
		n := opts.DatasetSamples / 2
		if n < 100 {
			n = 100
		}
		macs := map[sparsity.Pattern][]float64{}
		chRNG := rng.New(6)
		for s := 0; s < n; s++ {
			sample := stream.Next()
			// Per-channel density profiles per layer, shared by both
			// patterns (identical inputs).
			for _, p := range patterns {
				var valid float64
				for li, l := range m.Layers {
					mask := masks[p][li]
					if mask == nil {
						continue
					}
					density := dataset.ChannelDensities(chRNG.Split(), mask.Config.Cin,
						1-sample.Sparsity[li], 0.08)
					valid += mask.ValidMACFraction(density) * float64(l.MACs())
				}
				macs[p] = append(macs[p], valid)
			}
		}

		tbl := &Table{
			ID:      "fig4",
			Title:   fmt.Sprintf("valid MACs under equal %.0f%% sparsity, %s (paper: up to 40%% pattern gap)", 100*c.rate, c.model),
			Columns: []string{"pattern", "mean valid MACs", "normalized mean", "spread (rel range)"},
		}
		ref := stats.Mean(macs[sparsity.RandomPointwise])
		for _, p := range patterns {
			vals := macs[p]
			tbl.Rows = append(tbl.Rows, []string{
				p.String(),
				fmt.Sprintf("%.3g", stats.Mean(vals)),
				fmt.Sprintf("%.3f", stats.Mean(vals)/ref),
				fmt.Sprintf("%.3f", stats.RelativeRange(vals)),
			})
		}
		arts = append(arts, tbl)
	}
	return arts, nil
}

// Fig9 reproduces the inter-layer sparsity correlation analysis of paper
// Fig. 9 for BERT and GPT-2 (the property motivating the linear latency
// predictor).
func Fig9(opts Options) ([]Artifact, error) {
	var arts []Artifact
	for _, name := range []string{"bert", "gpt2"} {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		stream := dataset.MustStream(m, dataset.LanguagePreset(m), 9)
		corr := dataset.Correlation(stream, opts.DatasetSamples)

		var b strings.Builder
		fmt.Fprintf(&b, "Pearson correlation of per-layer sparsity (%d layers)\n", len(corr))
		var sum float64
		var count int
		for i := range corr {
			for j := range corr[i] {
				fmt.Fprintf(&b, "%5.2f ", corr[i][j])
				if i != j {
					sum += corr[i][j]
					count++
				}
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "mean off-diagonal correlation: %.3f (paper: ~0.8-1.0)\n",
			sum/float64(count))
		arts = append(arts, &Text{ID: "fig9", Title: "sparsity correlation, " + name, Body: b.String()})
	}
	return arts, nil
}
