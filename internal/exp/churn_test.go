package exp

import (
	"encoding/json"
	"testing"
	"time"
)

// churnTestOpts is the shared sweep cell for the churn exp-layer tests:
// heavy-but-not-saturated load on a 4-engine cluster with stale signals
// and moderate per-engine churn (each engine down ~150ms out of every
// ~2s).
func churnTestOpts() Options {
	o := tiny()
	o.Seeds = 2
	o.Requests = 300
	o.ProfileSamples = 40
	o.EvalSamples = 150
	return churnOpts(o, 2*time.Second, ChurnStaleInterval, "none")
}

// TestChurnGridDeterministicAcrossWorkers: a churned grid must be
// bit-identical for any -workers value — the fail/recover schedule is a
// pure function of the cell's seed index (churnSeed), never of worker
// scheduling or completion order.
func TestChurnGridDeterministicAcrossWorkers(t *testing.T) {
	opts := churnTestOpts()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	dysta := dystaOnly()
	seq := opts
	seq.Workers = 1
	want, err := p.RunPoint(dysta, 120, 10, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	got, err := p.RunPoint(dysta, 120, 10, par)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Errorf("churned grid diverges across worker counts:\nworkers=1: %s\nworkers=8: %s", a, b)
	}
	r := got["Dysta"]
	if r.Failovers == 0 && r.Retries == 0 {
		t.Error("churn never disrupted the run; the determinism check is vacuous")
	}
}

// TestChurnOffOptionsMatchPlainCluster: Options with Churn unset must
// produce the exact pre-churn cluster results — the exp-layer end of the
// bit-identity chain (the cluster-level end is pinned in
// internal/cluster's TestChurnOffBitIdentical).
func TestChurnOffOptionsMatchPlainCluster(t *testing.T) {
	opts := tiny()
	opts.Engines = 3
	opts.Dispatch = "load"
	opts.SignalInterval = 5 * time.Millisecond
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	dysta := dystaOnly()
	want, err := p.RunPoint(dysta, 90, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	// RetryMax without Churn is inert by design (the cluster only reads
	// it through the fault injector).
	o := opts
	o.RetryMax = 3
	got, err := p.RunPoint(dysta, 90, 10, o)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("RetryMax without Churn changed cluster results")
	}
}

// TestChurnNeedsAvailabilityModel: enabling churn without a positive
// MTBF/MTTR is a configuration error, not a silent no-churn run.
func TestChurnNeedsAvailabilityModel(t *testing.T) {
	opts := tiny()
	opts.Engines = 2
	opts.Churn = true // MTBF/MTTR left zero
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunPoint(dystaOnly(), 60, 10, opts); err == nil {
		t.Error("churn without MTBF/MTTR ran")
	}
}

// TestChurnStealRecoversGap is the experiment's headline claim as an
// assertion: at stale signals and moderate churn, work stealing wins
// back at least half of the SLO-violation gap that churn opens over the
// no-churn anchor. The mechanism: a recovered engine re-enters empty,
// and steal rounds immediately re-spread the outage backlog onto it,
// while without migration that backlog stays queued on the survivors.
func TestChurnStealRecoversGap(t *testing.T) {
	opts := churnTestOpts()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	dysta := dystaOnly()
	run := func(o Options) float64 {
		t.Helper()
		rs, err := p.RunPoint(dysta, 120, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		return rs["Dysta"].ViolationRate
	}
	base := opts
	base.Churn = false
	base.MTBF, base.MTTR = 0, 0
	anchor := run(base)  // no churn, no migration
	churned := run(opts) // churn, no migration
	steal := opts
	steal.Rebalance = "steal"
	steal.RebalanceInterval = churnRebalanceInterval
	steal.MigrationCost = churnMigrationCost
	repaired := run(steal) // churn + work stealing

	gap := churned - anchor
	if gap <= 0 {
		t.Fatalf("churn opened no violation gap (anchor %.4f, churned %.4f); the recovery claim is untestable here",
			anchor, churned)
	}
	if recovered := churned - repaired; recovered < gap/2 {
		t.Errorf("steal recovered %.4f of the %.4f churn gap (< half): anchor %.4f, churned %.4f, steal %.4f",
			recovered, gap, anchor, churned, repaired)
	}
}
