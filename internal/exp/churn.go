package exp

import (
	"fmt"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// This file is the engine-churn experiment: the robustness study asking
// what engine failures cost a cluster that was tuned assuming every
// accelerator stays up, and how much of that cost recovery-driven
// redistribution wins back. A failure destroys in-flight work (paid
// again as a retry from layer zero), strands the backlog the dead engine
// had accumulated, and — under a stale signal board — keeps attracting
// new arrivals to the corpse until the next refresh. Work stealing is
// the natural repair: a freshly recovered engine is exactly the idle
// thief the Steal policy looks for, so it drains the outage backlog
// instead of sitting empty while the survivors drown.

// ChurnMTBFs is the failure-rate axis of the sweep: mean time between
// failures per engine, from roughly one failure per stream up to near-
// continuous churn (the request stream spans ~8 virtual seconds at the
// experiment's operating point).
var ChurnMTBFs = []time.Duration{
	4 * time.Second,
	2 * time.Second,
	time.Second,
}

// ChurnMTTR is the mean down-time per failure. It is held fixed across
// the sweep so the MTBF axis changes only how often engines die, not how
// long each death lasts.
const ChurnMTTR = 150 * time.Millisecond

// ChurnStaleInterval is the signal staleness the churned cluster routes
// under: long enough that a freshly dead engine keeps looking alive (and
// attractive) to the dispatcher for many arrivals, forcing redirects.
const ChurnStaleInterval = 20 * time.Millisecond

// ChurnRetryMax caps per-request restart-from-zero retries in the
// experiment; a request that loses its partial execution more often than
// this is written off as lost work.
const ChurnRetryMax = 4

// churnRebalanceInterval and churnMigrationCost configure the steal
// repair arm: rounds frequent enough to catch a recovery within a small
// fraction of the mean outage, at the migration experiment's cost.
const (
	churnRebalanceInterval = 2 * time.Millisecond
	churnMigrationCost     = 200 * time.Microsecond
)

// churnOpts returns the experiment's option block for one sweep cell.
// MTBF 0 means the no-churn anchor.
func churnOpts(base Options, mtbf, signals time.Duration, policy string) Options {
	o := base
	o.Engines = 4
	o.EngineSpecs = nil
	o.Dispatch = "load"
	o.SignalInterval = signals
	o.Rebalance = policy
	if policy != "none" {
		o.RebalanceInterval = churnRebalanceInterval
		o.MigrationCost = churnMigrationCost
	}
	// The sweep owns the churn knobs outright — a CLI -churn override must
	// not leak fault injection into the no-churn anchor cells.
	o.Churn = mtbf > 0
	o.MTBF = mtbf
	o.MTTR = ChurnMTTR
	o.RetryMax = ChurnRetryMax
	return o
}

// EngineChurn is the fault-tolerance experiment: Dysta on a 4-engine
// cluster behind sparsity-aware least-load dispatch, swept over failure
// rate × rebalance policy × signal staleness, with the no-churn runs as
// anchors. The headline comparison is at stale signals: churn opens an
// SLO-violation gap over the no-churn anchor (lost progress is re-run,
// outage backlogs queue behind redirected arrivals), and work stealing
// closes most of it, because recovered engines re-enter empty and the
// steal rounds immediately re-spread the survivors' backlog onto them.
func EngineChurn(opts Options) ([]Artifact, error) {
	const rate = 120.0 // the migration study's heavy-but-not-saturated point

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}
	dysta := dystaOnly()

	tbl := &Table{
		ID: "engine-churn",
		Title: fmt.Sprintf("Dysta + load dispatch at %.0f req/s under engine churn (MTTR %v)",
			rate, ChurnMTTR),
		Columns: []string{"mtbf", "signals", "rebalance",
			"failovers", "retries", "redirects", "lost", "viol%", "ANTT", "throughput (inf/s)"},
		Notes: []string{
			fmt.Sprintf("signals: staleness of the router's engine snapshots (exact = 0, stale = %v)", ChurnStaleInterval),
			fmt.Sprintf("retries restart from layer zero; each request is written off as lost after %d of them", ChurnRetryMax),
			"failovers: queued requests re-dispatched off a dead engine; redirects: arrivals bounced off a stale dead pick",
			fmt.Sprintf("steal arm rebalances every %v at %v per moved request", churnRebalanceInterval, churnMigrationCost),
		},
	}
	xs := make([]float64, len(ChurnMTBFs))
	for i, mtbf := range ChurnMTBFs {
		xs[i] = float64(mtbf) / float64(time.Second)
	}
	viol := &Series{
		ID:     "engine-churn",
		Title:  "stale signals, SLO violation rate vs per-engine MTBF (anchor is flat)",
		XLabel: "MTBF (s)",
		YLabel: "SLO violation rate (%)",
		X:      xs,
		Lines:  map[string][]float64{},
		Order:  []string{"no-churn/none", "churn/none", "churn/steal"},
	}

	type cell struct {
		mtbf    time.Duration
		signals time.Duration
		sigName string
		policy  string
	}
	run := func(c cell) (sched.Result, error) {
		rs, err := p.RunPoint(dysta, rate, 10, churnOpts(opts, c.mtbf, c.signals, c.policy))
		if err != nil {
			return sched.Result{}, err
		}
		r := rs["Dysta"]
		mtbfCell := "-"
		if c.mtbf > 0 {
			mtbfCell = c.mtbf.String()
		}
		tbl.Rows = append(tbl.Rows, []string{
			mtbfCell, c.sigName, c.policy,
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Redirects),
			fmt.Sprintf("%d", r.LostWork),
			fmt.Sprintf("%.1f", 100*r.ViolationRate),
			fmt.Sprintf("%.2f", r.ANTT),
			fmt.Sprintf("%.1f", r.Throughput),
		})
		return r, nil
	}

	for _, sig := range []struct {
		iv   time.Duration
		name string
	}{{0, "exact"}, {ChurnStaleInterval, "stale"}} {
		anchor, err := run(cell{0, sig.iv, sig.name, "none"})
		if err != nil {
			return nil, err
		}
		if sig.iv > 0 {
			for range ChurnMTBFs {
				viol.Lines["no-churn/none"] = append(viol.Lines["no-churn/none"], 100*anchor.ViolationRate)
			}
		}
		for _, mtbf := range ChurnMTBFs {
			for _, policy := range []string{"none", "steal"} {
				r, err := run(cell{mtbf, sig.iv, sig.name, policy})
				if err != nil {
					return nil, err
				}
				if sig.iv > 0 {
					line := "churn/" + policy
					viol.Lines[line] = append(viol.Lines[line], 100*r.ViolationRate)
				}
			}
		}
	}
	return []Artifact{tbl, viol}, nil
}
