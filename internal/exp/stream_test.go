package exp

import (
	"encoding/json"
	"testing"
	"time"
)

// TestStreamGridMatchesMaterialized: a grid run with streaming arrivals
// must be byte-identical to the materialized path — same cells, same
// seeds, same floats — across single-engine, clustered and churning
// configurations, and across worker counts (streamed cells must stay a
// pure function of the seed index). This pins the exp-layer half of the
// streaming equivalence: workload.NewStream yields exactly the requests
// workload.Generate materializes, in the same order, per cell.
func TestStreamGridMatchesMaterialized(t *testing.T) {
	base := tiny()
	base.Seeds = 2
	p, err := NewPipeline(workloadAttNN(), base, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()[:3]
	for name, mut := range map[string]func(*Options){
		"single-engine": func(*Options) {},
		"cluster":       func(o *Options) { o.Engines = 3; o.Dispatch = "load" },
		"churning": func(o *Options) {
			o.Engines = 3
			o.Churn = true
			o.MTBF = 500 * time.Millisecond
			o.MTTR = 50 * time.Millisecond
			o.RetryMax = 2
		},
	} {
		opts := base
		mut(&opts)
		want, err := p.RunPoint(specs, 30, 10, opts)
		if err != nil {
			t.Fatalf("%s materialized: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			streamed := opts
			streamed.Stream = true
			streamed.Workers = workers
			got, err := p.RunPoint(specs, 30, 10, streamed)
			if err != nil {
				t.Fatalf("%s streamed (workers=%d): %v", name, workers, err)
			}
			a, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("%s (workers=%d): streamed grid diverges from materialized:\n%s\nvs\n%s",
					name, workers, b, a)
			}
		}
	}
}

// TestStreamOptionValidation: the option combinations the streaming path
// cannot honor must fail loudly at Validate time.
func TestStreamOptionValidation(t *testing.T) {
	o := tiny()
	o.Stream = true
	o.Autoscale = true
	o.Engines = 4
	if err := o.Validate(); err == nil {
		t.Error("-stream with -autoscale accepted")
	}
	o = tiny()
	o.Capture = "sideways"
	if err := o.Validate(); err == nil {
		t.Error("unknown capture mode accepted")
	}
	o = tiny()
	o.Stream = true
	o.Capture = "bounded"
	o.ScalablePick = true
	if err := o.Validate(); err != nil {
		t.Errorf("valid streaming options rejected: %v", err)
	}
}
