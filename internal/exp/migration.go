package exp

import (
	"fmt"
	"time"

	"sparsedysta/internal/workload"
)

// This file is the migration/work-stealing experiment: the scale-out
// study answering whether runtime placement revision can repair the
// damage the PR 3 studies quantified — stale dispatch signals
// concentrating bursts (stale-signals) and heterogeneous clusters
// punishing capacity-blind routing (hetero-scale). A misrouted request
// used to be stuck with its engine forever; with a Rebalancer it can
// move once, for a price.

// RebalanceIntervals is the migration sweep grid: how often the
// rebalancer may revise placement, from near-continuous up to a round
// every couple of mean service times.
var RebalanceIntervals = []time.Duration{
	500 * time.Microsecond,
	2 * time.Millisecond,
	10 * time.Millisecond,
}

// MigrationStaleInterval is the signal staleness the experiment pits
// migration against: the top of the stale-signals sweep grid, deep in
// the regime where load-aware dispatch has degraded to bursty
// concentration (every arrival in a refresh window lands on whichever
// engine looked emptiest at the last snapshot).
const MigrationStaleInterval = 100 * time.Millisecond

// MigrationMixes is the hetero dimension of the sweep: the uniform
// reference cluster and the lopsided mix from the hetero-scale study,
// both with the same total capacity (4 reference engines' worth).
var MigrationMixes = []struct {
	Name string
	Spec string
}{
	{"uniform", "4x1"},
	{"mixed", "1x0.5,1x1,2x2"},
}

// Migration is the work-stealing experiment: Dysta behind sparsity-aware
// least-load dispatch whose signals are MigrationStaleInterval stale,
// across RebalanceIntervals × {steal, shed} × MigrationMixes, with the
// exact-signal and stale-signal no-migration runs as the two anchors.
// The question: how much of the violation-rate gap that signal staleness
// opens (exact/none vs stale/none) does runtime migration win back?
// Stealing reads live engine state — an engine always knows its own
// queue — which is exactly the information advantage the stale
// centralized router lacks, so it recovers most of the gap; shedding
// helps less because the overload signal it acts on is itself built
// from backlogs that keep changing under it.
func Migration(opts Options) ([]Artifact, error) {
	// At the per-engine knee (Fig. 15), not past it: stealing needs
	// thieves, and a cluster pushed past saturation has no engine whose
	// deque ever runs dry — the regime where the gap is recoverable is
	// heavy-but-not-drowning load, which is also where a real operator
	// runs.
	const ratePerCapacity = 30.0
	const capacity = 4.0
	const cost = 200 * time.Microsecond

	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}
	dysta := dystaOnly()

	tbl := &Table{
		ID: "migration",
		Title: fmt.Sprintf("Dysta + load dispatch at %.0f req/s: migration vs %v-stale signals",
			ratePerCapacity*capacity, MigrationStaleInterval),
		Columns: []string{"mix", "signals", "rebalance", "interval",
			"migrations", "win/loss", "viol%", "ANTT", "throughput (inf/s)"},
		Notes: []string{
			fmt.Sprintf("signals: staleness of the router's engine snapshots (exact = 0, stale = %v)", MigrationStaleInterval),
			fmt.Sprintf("migration cost %v charged to each moved request as a transfer delay; every request moves at most once", cost),
			"win/loss: migrated requests that met / missed their SLO",
		},
	}
	xs := make([]float64, len(RebalanceIntervals))
	for i, iv := range RebalanceIntervals {
		xs[i] = float64(iv) / float64(time.Millisecond)
	}
	viol := &Series{
		ID:     "migration",
		Title:  "mixed cluster, SLO violation rate vs rebalance interval (anchors are flat)",
		XLabel: "rebalance interval (ms)",
		YLabel: "SLO violation rate (%)",
		X:      xs,
		Lines:  map[string][]float64{},
		Order:  []string{"exact/none", "stale/none", "stale/steal", "stale/shed"},
	}

	type cell struct {
		signals  time.Duration
		sigName  string
		policy   string
		interval time.Duration
	}
	run := func(mixSpec string, c cell) error {
		_, specs, err := ParseEngines(mixSpec)
		if err != nil {
			return err
		}
		o := opts
		o.Engines = 0
		o.EngineSpecs = specs
		o.Dispatch = "load"
		o.SignalInterval = c.signals
		o.Rebalance = c.policy
		o.RebalanceInterval = c.interval
		o.MigrationCost = cost
		rs, err := p.RunPoint(dysta, ratePerCapacity*capacity, 10, o)
		if err != nil {
			return err
		}
		r := rs["Dysta"]
		ivCell := "-"
		if c.policy != "none" {
			ivCell = c.interval.String()
		}
		mixName := mixSpec
		for _, m := range MigrationMixes {
			if m.Spec == mixSpec {
				mixName = m.Name
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			mixName, c.sigName, c.policy, ivCell,
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d/%d", r.MigrationWins, r.MigrationLosses),
			fmt.Sprintf("%.1f", 100*r.ViolationRate),
			fmt.Sprintf("%.2f", r.ANTT),
			fmt.Sprintf("%.1f", r.Throughput),
		})
		if mixName == "mixed" {
			line := c.sigName + "/" + c.policy
			if c.policy == "none" {
				// Anchor lines are interval-independent: repeat the value
				// across the x axis so they render as flat references.
				for range RebalanceIntervals {
					viol.Lines[line] = append(viol.Lines[line], 100*r.ViolationRate)
				}
			} else {
				viol.Lines[line] = append(viol.Lines[line], 100*r.ViolationRate)
			}
		}
		return nil
	}

	for _, mix := range MigrationMixes {
		cells := []cell{
			{0, "exact", "none", 0},
			{MigrationStaleInterval, "stale", "none", 0},
		}
		for _, policy := range []string{"steal", "shed"} {
			for _, iv := range RebalanceIntervals {
				cells = append(cells, cell{MigrationStaleInterval, "stale", policy, iv})
			}
		}
		for _, c := range cells {
			if err := run(mix.Spec, c); err != nil {
				return nil, err
			}
		}
	}
	return []Artifact{tbl, viol}, nil
}
