package exp

import (
	"encoding/json"
	"reflect"
	"testing"

	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// TestParallelRunnerMatchesSequential: the worker-pool grid runner must
// produce byte-identical Results to the sequential reference path
// (RunSeeds + AverageResults) for a fixed seed protocol, regardless of
// worker count.
func TestParallelRunnerMatchesSequential(t *testing.T) {
	opts := tiny()
	opts.Seeds = 3
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()

	// Sequential reference.
	want := map[string]sched.Result{}
	for _, spec := range specs {
		rs, err := p.RunSeeds(spec, 30, 10, opts)
		if err != nil {
			t.Fatal(err)
		}
		avg, err := sched.AverageResults(rs)
		if err != nil {
			t.Fatal(err)
		}
		avg.Scheduler = spec.Name
		want[spec.Name] = avg
	}

	for _, workers := range []int{1, 4, 16} {
		par := opts
		par.Workers = workers
		got, err := p.RunPoint(specs, 30, 10, par)
		if err != nil {
			t.Fatal(err)
		}
		// Byte-level comparison: any float divergence (reordered
		// accumulation, a different seed derivation) must surface.
		a, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("workers=%d: parallel results diverge from sequential:\n%s\nvs\n%s",
				workers, a, b)
		}
	}
}

// TestRunGridShape: grid results come back ordered as the input points.
func TestRunGridShape(t *testing.T) {
	opts := tiny()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	points := []Point{{Rate: 20, MSLO: 10}, {Rate: 30, MSLO: 10}, {Rate: 30, MSLO: 40}}
	grid, err := p.RunGrid(StandardScheds()[:2], points, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(points) {
		t.Fatalf("grid has %d points, want %d", len(grid), len(points))
	}
	for i, pr := range grid {
		if pr.Point != points[i] {
			t.Errorf("grid[%d].Point = %+v, want %+v", i, pr.Point, points[i])
		}
		if len(pr.Results) != 2 {
			t.Errorf("grid[%d] has %d results", i, len(pr.Results))
		}
	}
	if _, err := p.RunGrid(StandardScheds()[:1], points, Options{}); err == nil {
		t.Error("zero-seed grid accepted")
	}
}

// TestStandardSchedsIncrementalEquivalence: every scheduler of the
// paper's Table 5 lineup — including Dysta, whose incremental path caches
// predictor-derived score components — must produce bit-identical
// schedules on the incremental and reference engine paths over a real
// generated workload.
func TestStandardSchedsIncrementalEquivalence(t *testing.T) {
	opts := tiny()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(p.Scenario, p.Eval, workload.GenConfig{
		Requests: 200, RatePerSec: 30, SLOMultiplier: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	record := sched.Options{RecordTimeline: true, RecordTasks: true}
	reference := record
	reference.ReferencePick = true

	// Dysta config variants: every ablation ships results through the
	// cachedScore fast path, so each non-default branch (gamma strategy,
	// coefficient space, static-only, literal Alg. 3, knob extremes)
	// must also match the reference scoring.
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"Dysta/last-n", func(c *core.Config) { c.Strategy = core.LastN }},
		{"Dysta/average-all", func(c *core.Config) { c.Strategy = core.AverageAll }},
		{"Dysta/density-ratio", func(c *core.Config) { c.Mode = core.DensityRatio }},
		{"Dysta/w-o-sparse", func(c *core.Config) { c.DynamicEnabled = false }},
		{"Dysta/literal-alg3", func(c *core.Config) { c.LiteralAlg3 = true }},
		{"Dysta/eta-0", func(c *core.Config) { c.Eta = 0 }},
		{"Dysta/no-demotion", func(c *core.Config) { c.DemotionMS = 0; c.PenaltyWeight = 100 }},
	}
	specs := WithOracle(StandardScheds())
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mut(&cfg)
		specs = append(specs, SchedSpec{Name: v.name, New: func(p *Pipeline) sched.Scheduler {
			return core.New(cfg, p.LUT)
		}})
	}

	for _, spec := range specs {
		if _, ok := spec.New(p).(sched.IncrementalScheduler); !ok {
			t.Fatalf("%s does not implement IncrementalScheduler", spec.Name)
		}
		fast, err := sched.Run(spec.New(p), reqs, record)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sched.Run(spec.New(p), reqs, reference)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("%s: incremental and reference schedules diverge", spec.Name)
		}
	}
}
