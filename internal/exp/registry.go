package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Runner regenerates one paper artefact.
type Runner func(Options) ([]Artifact, error)

// registry maps experiment ids (DESIGN.md §4) to runners.
var registry = map[string]Runner{
	"fig2":   Fig2,
	"fig3":   Fig3,
	"table2": Table2,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig9":   Fig9,
	"table4": Table4,
	"table5": Table5,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"table6": Table6,

	"ablation-beta":     AblationBeta,
	"ablation-eta":      AblationEta,
	"ablation-strategy": AblationStrategy,
	"ablation-penalty":  AblationPenalty,
	"ablation-demotion": AblationDemotion,
	"ablation-overhead": AblationOverhead,
	"ablation-fifo":     AblationFIFO,
	"ablation-glb":      AblationGLB,

	"scale-engines": ScaleEngines,
	"stale-signals": StaleSignals,
	"hetero-scale":  HeteroScale,
	"migration":     Migration,
	"engine-churn":  EngineChurn,
	"autoscale":     Autoscale,
	"stream-scale":  StreamScale,
}

// order is the presentation order of the paper artefacts.
var order = []string{
	"fig2", "fig3", "table2", "fig4", "fig5", "fig9",
	"table4", "table5", "fig12", "fig13", "fig14", "fig15",
	"fig16", "table6",
}

// IDs returns the paper-artefact experiment ids in paper order.
func IDs() []string { return append([]string(nil), order...) }

// AblationIDs returns the ablation experiment ids.
func AblationIDs() []string {
	var out []string
	for id := range registry {
		if strings.HasPrefix(id, "ablation-") {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// scale lists the beyond-the-paper scaling studies.
var scale = []string{"scale-engines", "stale-signals", "hetero-scale", "migration", "engine-churn", "autoscale", "stream-scale"}

// ScaleIDs returns the scaling-study experiment ids.
func ScaleIDs() []string { return append([]string(nil), scale...) }

// AllIDs returns every registered id: paper artefacts, then ablations,
// then scaling studies.
func AllIDs() []string { return append(append(IDs(), AblationIDs()...), ScaleIDs()...) }

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (valid: %v)", id, AllIDs())
	}
	return r, nil
}
