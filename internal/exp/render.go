package exp

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// Artifact is anything an experiment emits for display.
type Artifact interface {
	// Render returns the artifact as printable text.
	Render() string
}

// Table is a rows-and-columns artifact (the paper's tables, and figures
// that reduce to per-configuration numbers).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render implements Artifact.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is a line-chart artifact: a shared x axis with named y lines,
// rendered as a column-per-line table (the text equivalent of the paper's
// sweep figures).
type Series struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Lines  map[string][]float64
	// Order fixes the column order; unspecified lines follow sorted.
	Order []string
}

// lineNames returns the ordered line names.
func (s *Series) lineNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, n := range s.Order {
		if _, ok := s.Lines[n]; ok && !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range s.Lines {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}

// Render implements Artifact.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", s.ID, s.Title)
	fmt.Fprintf(&b, "y: %s\n", s.YLabel)
	names := s.lineNames()
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t%s\n", s.XLabel, strings.Join(names, "\t"))
	for i, x := range s.X {
		cells := make([]string, 0, len(names)+1)
		cells = append(cells, fmt.Sprintf("%g", x))
		for _, n := range names {
			ys := s.Lines[n]
			if i < len(ys) {
				cells = append(cells, fmt.Sprintf("%.3f", ys[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	tw.Flush()
	return b.String()
}

// Text is a freeform artifact (rendered histograms, matrices, timelines).
type Text struct {
	ID    string
	Title string
	Body  string
}

// Render implements Artifact.
func (t *Text) Render() string {
	return fmt.Sprintf("== %s: %s ==\n%s", t.ID, t.Title, t.Body)
}
