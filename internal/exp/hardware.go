package exp

import (
	"fmt"

	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/core"
	"sparsedysta/internal/hwsched"
	"sparsedysta/internal/models"
	"sparsedysta/internal/trace"
)

// Table4 reproduces the sparse-latency-predictor accuracy comparison of
// paper Table 4: RMSE of the average-all, last-N and last-one coefficient
// strategies on BERT and GPT-2 traces. The paper's finding — average-all
// and last-one comparable, both beating last-N slightly, motivating the
// cheap last-one hardware — is checked by the shape of the rows.
func Table4(opts Options) ([]Artifact, error) {
	tbl := &Table{
		ID:    "table4",
		Title: "RMSE of the sparse latency predictor (seconds; normalized by mean isolated latency in parens)",
		Columns: []string{"model",
			"average-all", "last-n (N=3)", "last-one", "static (gamma=1)", "literal Alg.3"},
		Notes: []string{
			"paper reports average-all and last-one comparable; static shows the value of monitoring at all",
			"literal Alg.3 scales average latency proportionally by gamma instead of using the profiled slopes (DESIGN.md §6)",
		},
	}
	for _, name := range []string{"bert", "gpt2"} {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		prof, err := trace.Build(sanger.NewDefault(), trace.BuildConfig{
			Model: m, Samples: opts.ProfileSamples, Seed: 100})
		if err != nil {
			return nil, err
		}
		st, err := trace.Summarize(trace.Key{Model: m.Name}, prof)
		if err != nil {
			return nil, err
		}
		eval, err := trace.Build(sanger.NewDefault(), trace.BuildConfig{
			Model: m, Samples: opts.DatasetSamples / 4, Seed: 200})
		if err != nil {
			return nil, err
		}

		row := []string{name}
		for _, strat := range []core.Strategy{core.AverageAll, core.LastN, core.LastOne} {
			cfg := core.DefaultConfig()
			cfg.Strategy = strat
			pe := core.EvaluatePredictor(cfg, st, eval)
			row = append(row, fmt.Sprintf("%.6f (%.3f)", pe.RMSE, pe.NormalizedRMSE))
		}
		static := core.DefaultConfig()
		static.GammaClamp = 1.0001 // pins gamma to ~1
		pe := core.EvaluatePredictor(static, st, eval)
		row = append(row, fmt.Sprintf("%.6f (%.3f)", pe.RMSE, pe.NormalizedRMSE))

		literal := core.DefaultConfig()
		literal.LiteralAlg3 = true
		pe = core.EvaluatePredictor(literal, st, eval)
		row = append(row, fmt.Sprintf("%.6f (%.3f)", pe.RMSE, pe.NormalizedRMSE))
		tbl.Rows = append(tbl.Rows, row)
	}
	return []Artifact{tbl}, nil
}

// Fig16 reproduces the hardware-optimization comparison of paper Fig. 16:
// normalized LUT/FF/DSP usage of the Non_Opt_FP32, Opt_FP32 and Opt_FP16
// scheduler designs at FIFO depths 512 and 64.
func Fig16(Options) ([]Artifact, error) {
	var arts []Artifact
	for _, depth := range []int{512, 64} {
		designs := []hwsched.Design{
			hwsched.NonOptFP32(depth),
			hwsched.OptFP32(depth),
			hwsched.OptFP16(depth),
		}
		base := hwsched.Estimate(designs[0])
		tbl := &Table{
			ID:      "fig16",
			Title:   fmt.Sprintf("normalized resource usage, request depth %d", depth),
			Columns: []string{"design", "LUT", "FF", "DSP", "LUT(abs)", "FF(abs)", "DSP(abs)", "RAM(abs)"},
		}
		for _, d := range designs {
			r := hwsched.Estimate(d)
			tbl.Rows = append(tbl.Rows, []string{
				d.String(),
				fmt.Sprintf("%.2f", float64(r.LUTs)/float64(base.LUTs)),
				fmt.Sprintf("%.2f", float64(r.FFs)/float64(base.FFs)),
				fmt.Sprintf("%.2f", float64(r.DSPs)/float64(base.DSPs)),
				fmt.Sprintf("%d", r.LUTs),
				fmt.Sprintf("%d", r.FFs),
				fmt.Sprintf("%d", r.DSPs),
				fmt.Sprintf("%.2f KB", float64(r.RAMBytes)/1024),
			})
		}
		arts = append(arts, tbl)
	}
	return arts, nil
}

// Table6 reproduces the resource-overhead summary of paper Table 6: the
// optimized FP16 scheduler at FIFO depth 64 next to Eyeriss-V2.
func Table6(Options) ([]Artifact, error) {
	schedRes := hwsched.Estimate(hwsched.OptFP16(64))
	e := hwsched.EyerissV2Resources
	lutFrac, dspFrac, ramFrac := hwsched.Overhead(schedRes)
	tbl := &Table{
		ID:      "table6",
		Title:   "Resource overhead of the Dysta scheduler (paper: 553 LUTs / 3 DSPs / 0.5 KB; overhead 0.55% / 1.5% / 0.35%)",
		Columns: []string{"module", "LUTs", "DSPs", "on-chip RAM"},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"Eyeriss-V2", fmt.Sprintf("%d", e.LUTs), fmt.Sprintf("%d", e.DSPs),
			fmt.Sprintf("%.1f KB", float64(e.RAMBytes)/1024)},
		[]string{"Scheduler", fmt.Sprintf("%d", schedRes.LUTs), fmt.Sprintf("%d", schedRes.DSPs),
			fmt.Sprintf("%.2f KB", float64(schedRes.RAMBytes)/1024)},
		[]string{"Dysta-Eyeriss-V2", fmt.Sprintf("%d", e.LUTs+schedRes.LUTs),
			fmt.Sprintf("%d", e.DSPs+schedRes.DSPs),
			fmt.Sprintf("%.2f KB", float64(e.RAMBytes+schedRes.RAMBytes)/1024)},
		[]string{"Total overhead", fmt.Sprintf("%.2f%%", 100*lutFrac),
			fmt.Sprintf("%.2f%%", 100*dspFrac), fmt.Sprintf("%.2f%%", 100*ramFrac)},
	)
	return []Artifact{tbl}, nil
}
