package exp

import (
	"fmt"
	"time"

	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// paperTable5 records the paper's reported Table 5 values for side-by-side
// shape comparison: {ANTT, violation %} per scheduler per workload.
var paperTable5 = map[string]map[string][2]float64{
	"multi-attnn": {
		"FCFS": {18.9, 55.1}, "SJF": {5.0, 15.2}, "SDRM3": {18.9, 63.3},
		"PREMA": {5.4, 15.3}, "Planaria": {16.0, 6.8}, "Dysta": {4.7, 5.1},
	},
	"multi-cnn": {
		"FCFS": {11.4, 23.1}, "SJF": {2.6, 3.4}, "SDRM3": {9.3, 33.7},
		"PREMA": {3.0, 3.2}, "Planaria": {4.2, 2.1}, "Dysta": {2.5, 2.0},
	},
}

// Table5 reproduces the paper's headline comparison: ANTT and SLO
// violation rate for the six schedulers on both workloads at the default
// operating points (30 req/s AttNN, 3 req/s CNN, M_slo = 10x).
func Table5(opts Options) ([]Artifact, error) {
	tbl := &Table{
		ID:    "table5",
		Title: "Comparison of scheduling approaches (measured vs paper)",
		Columns: []string{"scheduler",
			"attnn ANTT", "paper", "attnn viol%", "paper",
			"cnn ANTT", "paper", "cnn viol%", "paper"},
		Notes: []string{
			"absolute values differ from the paper (different substrate); compare ordering and factors",
		},
	}
	order := []string{"FCFS", "SJF", "SDRM3", "PREMA", "Planaria", "Dysta"}
	results := map[string]map[string]sched.Result{}
	for _, setup := range []struct {
		sc   workload.Scenario
		rate float64
	}{
		{workload.MultiAttNN(), 30},
		{workload.MultiCNN(), 3},
	} {
		p, err := NewPipeline(setup.sc, opts, 7)
		if err != nil {
			return nil, err
		}
		rs, err := p.RunPoint(StandardScheds(), setup.rate, 10, opts)
		if err != nil {
			return nil, err
		}
		results[setup.sc.Name] = rs

		// Seed stability of the headline scheduler.
		for _, spec := range StandardScheds() {
			if spec.Name != "Dysta" {
				continue
			}
			seedRuns, err := p.RunSeeds(spec, setup.rate, 10, opts)
			if err != nil {
				return nil, err
			}
			anttSD, violSD := sched.SeedSpread(seedRuns)
			tbl.Notes = append(tbl.Notes, fmt.Sprintf(
				"%s Dysta seed spread over %d seeds: ANTT ±%.2f, violations ±%.1f%%",
				setup.sc.Name, opts.Seeds, anttSD, 100*violSD))
		}
	}
	for _, name := range order {
		att := results["multi-attnn"][name]
		cnn := results["multi-cnn"][name]
		pAtt := paperTable5["multi-attnn"][name]
		pCnn := paperTable5["multi-cnn"][name]
		tbl.Rows = append(tbl.Rows, []string{
			name,
			fmt.Sprintf("%.1f", att.ANTT), fmt.Sprintf("%.1f", pAtt[0]),
			fmt.Sprintf("%.1f", 100*att.ViolationRate), fmt.Sprintf("%.1f", pAtt[1]),
			fmt.Sprintf("%.1f", cnn.ANTT), fmt.Sprintf("%.1f", pCnn[0]),
			fmt.Sprintf("%.1f", 100*cnn.ViolationRate), fmt.Sprintf("%.1f", pCnn[1]),
		})
	}
	return []Artifact{tbl}, nil
}

// Fig12 reproduces the ANTT vs violation-rate trade-off scatter of paper
// Fig. 12: each scheduler at two arrival rates per workload. Dysta should
// sit in the lower-left corner of every panel.
func Fig12(opts Options) ([]Artifact, error) {
	var arts []Artifact
	for _, setup := range []struct {
		sc    workload.Scenario
		rates []float64
	}{
		{workload.MultiAttNN(), AttNNRates},
		{workload.MultiCNN(), CNNRates},
	} {
		p, err := NewPipeline(setup.sc, opts, 7)
		if err != nil {
			return nil, err
		}
		grid, err := p.RunGrid(StandardScheds(), RatePoints(setup.rates, 10), opts)
		if err != nil {
			return nil, err
		}
		for _, pr := range grid {
			tbl := &Table{
				ID:      "fig12",
				Title:   fmt.Sprintf("%s at %.0f req/s: violation rate vs ANTT", setup.sc.Name, pr.Point.Rate),
				Columns: []string{"scheduler", "viol%", "ANTT"},
			}
			for _, spec := range StandardScheds() {
				r := pr.Results[spec.Name]
				tbl.Rows = append(tbl.Rows, []string{
					spec.Name,
					fmt.Sprintf("%.1f", 100*r.ViolationRate),
					fmt.Sprintf("%.2f", r.ANTT),
				})
			}
			arts = append(arts, tbl)
		}
	}
	return arts, nil
}

// Fig13 reproduces the optimization breakdown of paper Fig. 13: PREMA vs
// the Dysta-w/o-sparse ablation (static level only) vs full Dysta, on
// both workloads.
func Fig13(opts Options) ([]Artifact, error) {
	specs := []SchedSpec{
		{"PREMA", func(p *Pipeline) sched.Scheduler { return sched.NewPREMA(p.Est) }},
		{"Dysta-w/o-sparse", func(p *Pipeline) sched.Scheduler { return core.NewWithoutSparse(p.LUT) }},
		{"Dysta", func(p *Pipeline) sched.Scheduler { return core.NewDefault(p.LUT) }},
	}
	var arts []Artifact
	for _, setup := range []struct {
		sc   workload.Scenario
		rate float64
	}{
		{workload.MultiAttNN(), 30},
		{workload.MultiCNN(), 3},
	} {
		p, err := NewPipeline(setup.sc, opts, 7)
		if err != nil {
			return nil, err
		}
		rs, err := p.RunPoint(specs, setup.rate, 10, opts)
		if err != nil {
			return nil, err
		}
		tbl := &Table{
			ID:      "fig13",
			Title:   fmt.Sprintf("optimization breakdown, %s", setup.sc.Name),
			Columns: []string{"variant", "viol%", "ANTT"},
			Notes: []string{
				"static level (w/o-sparse) improves over PREMA; the dynamic sparse level adds the rest",
			},
		}
		for _, spec := range specs {
			r := rs[spec.Name]
			tbl.Rows = append(tbl.Rows, []string{
				spec.Name,
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.2f", r.ANTT),
			})
		}
		arts = append(arts, tbl)
	}
	return arts, nil
}

// SLOMultipliers is the paper's Fig. 14 sweep grid (10x to 150x).
var SLOMultipliers = []float64{10, 20, 40, 80, 150}

// Fig14 reproduces the SLO-robustness sweep of paper Fig. 14: violation
// rate and ANTT vs the SLO multiplier, for both workloads at two arrival
// rates each, including the Oracle.
func Fig14(opts Options) ([]Artifact, error) {
	var arts []Artifact
	for _, setup := range []struct {
		sc    workload.Scenario
		rates []float64
	}{
		{workload.MultiAttNN(), AttNNRates},
		{workload.MultiCNN(), CNNRates},
	} {
		p, err := NewPipeline(setup.sc, opts, 7)
		if err != nil {
			return nil, err
		}
		specs := WithOracle(StandardScheds())
		// One grid per scenario: rates x SLO multipliers, all cells in
		// flight at once.
		var points []Point
		for _, rate := range setup.rates {
			for _, mslo := range SLOMultipliers {
				points = append(points, Point{Rate: rate, MSLO: mslo})
			}
		}
		grid, err := p.RunGrid(specs, points, opts)
		if err != nil {
			return nil, err
		}
		for ri, rate := range setup.rates {
			viol := &Series{
				ID:     "fig14",
				Title:  fmt.Sprintf("%s at %.0f req/s", setup.sc.Name, rate),
				XLabel: "slo_mult",
				YLabel: "SLO violation rate (%)",
				X:      SLOMultipliers,
				Lines:  map[string][]float64{},
				Order:  specNames(specs),
			}
			antt := &Series{
				ID:     "fig14",
				Title:  viol.Title,
				XLabel: "slo_mult",
				YLabel: "ANTT",
				X:      SLOMultipliers,
				Lines:  map[string][]float64{},
				Order:  specNames(specs),
			}
			for mi := range SLOMultipliers {
				rs := grid[ri*len(SLOMultipliers)+mi].Results
				for _, spec := range specs {
					r := rs[spec.Name]
					viol.Lines[spec.Name] = append(viol.Lines[spec.Name], 100*r.ViolationRate)
					antt.Lines[spec.Name] = append(antt.Lines[spec.Name], r.ANTT)
				}
			}
			arts = append(arts, viol, antt)
		}
	}
	return arts, nil
}

// Fig15 reproduces the arrival-rate robustness sweep of paper Fig. 15:
// violation rate, throughput and ANTT vs the arrival rate for both
// workloads at M_slo = 10x.
func Fig15(opts Options) ([]Artifact, error) {
	var arts []Artifact
	for _, setup := range []struct {
		sc    workload.Scenario
		rates []float64
	}{
		{workload.MultiAttNN(), []float64{10, 20, 30, 40}},
		{workload.MultiCNN(), []float64{2, 3, 4, 5, 6}},
	} {
		p, err := NewPipeline(setup.sc, opts, 7)
		if err != nil {
			return nil, err
		}
		specs := WithOracle(StandardScheds())
		mk := func(ylabel string) *Series {
			return &Series{
				ID:     "fig15",
				Title:  setup.sc.Name,
				XLabel: "arrival rate (req/s)",
				YLabel: ylabel,
				X:      setup.rates,
				Lines:  map[string][]float64{},
				Order:  specNames(specs),
			}
		}
		viol, stp, antt := mk("SLO violation rate (%)"), mk("throughput (inf/s)"), mk("ANTT")
		grid, err := p.RunGrid(specs, RatePoints(setup.rates, 10), opts)
		if err != nil {
			return nil, err
		}
		for _, pr := range grid {
			for _, spec := range specs {
				r := pr.Results[spec.Name]
				viol.Lines[spec.Name] = append(viol.Lines[spec.Name], 100*r.ViolationRate)
				stp.Lines[spec.Name] = append(stp.Lines[spec.Name], r.Throughput)
				antt.Lines[spec.Name] = append(antt.Lines[spec.Name], r.ANTT)
			}
		}
		arts = append(arts, viol, stp, antt)
	}
	return arts, nil
}

// specNames extracts the order of a spec slice.
func specNames(specs []SchedSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Fig5 reproduces the motivating example of paper Fig. 5: a ResNet is
// running when a MobileNet request with a tight SLO arrives. A
// sparsity-blind SJF estimates the MobileNet from a pattern-merged profile
// (4.6 ms) and declines to preempt the ResNet (4 ms remaining), so the
// MobileNet violates; the sparsity-pattern-aware scheduler knows this
// MobileNet variant runs in 2.2 ms, preempts, and meets the SLO.
func Fig5(Options) ([]Artifact, error) {
	kRes := trace.Key{Model: "resnet-like", Pattern: sparsity.Dense}
	kMobFast := trace.Key{Model: "mobilenet-like", Pattern: sparsity.RandomPointwise}
	kMobSlow := trace.Key{Model: "mobilenet-like", Pattern: sparsity.ChannelWise}

	store := trace.NewStore()
	store.Add(kRes, []trace.SampleTrace{uniform(10, time.Millisecond, 0.5)})
	store.Add(kMobFast, []trace.SampleTrace{uniform(4, 550*time.Microsecond, 0.5)})
	store.Add(kMobSlow, []trace.SampleTrace{uniform(4, 1750*time.Microsecond, 0.5)})
	lut, err := trace.NewStatsSet(store)
	if err != nil {
		return nil, err
	}

	// The ResNet starts at t=0; the fast-pattern MobileNet arrives at
	// 5.2 ms (mid-layer) with a 5 ms SLO. At the 6 ms layer boundary the
	// ResNet has 4 ms left; the pattern-blind MobileNet estimate is
	// (2.2 + 7.0)/2 = 4.6 ms.
	resnet := &workload.Request{ID: 0, Key: kRes,
		Trace: uniform(10, time.Millisecond, 0.5), SLO: 40 * time.Millisecond}
	mobile := &workload.Request{ID: 1, Key: kMobFast,
		Trace:   uniform(4, 550*time.Microsecond, 0.5),
		Arrival: 5200 * time.Microsecond, SLO: 5 * time.Millisecond}

	run := func(s sched.Scheduler) sched.Result {
		res, err := sched.Run(s, []*workload.Request{resnet, mobile},
			sched.Options{RecordTimeline: true})
		if err != nil {
			panic(err)
		}
		return res
	}
	blind := run(sched.NewSJF(sched.NewEstimator(lut)))
	aware := run(core.NewDefault(lut))

	tbl := &Table{
		ID:      "fig5",
		Title:   "SJF scheduling with and without sparsity information (2-request scenario)",
		Columns: []string{"scheduler", "violations", "ANTT"},
		Notes: []string{
			"blind SJF estimates the arriving MobileNet at 4.6 ms (pattern-merged) vs the ResNet's 4 ms remaining: no preemption, SLO violated",
			"the pattern-aware scheduler estimates 2.2 ms, preempts, and both requests meet their SLOs",
		},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"SJF (no sparsity info)",
			fmt.Sprintf("%.0f", blind.ViolationRate*2), fmt.Sprintf("%.2f", blind.ANTT)},
		[]string{"Dysta (sparsity info)",
			fmt.Sprintf("%.0f", aware.ViolationRate*2), fmt.Sprintf("%.2f", aware.ANTT)},
	)
	return []Artifact{
		tbl,
		&Text{ID: "fig5", Title: "timeline without sparsity info (task 0 = ResNet, 1 = MobileNet)",
			Body: blind.Timeline.Gantt(60)},
		&Text{ID: "fig5", Title: "timeline with sparsity info",
			Body: aware.Timeline.Gantt(60)},
	}, nil
}

// uniform builds a trace with constant per-layer latency and sparsity.
func uniform(layers int, lat time.Duration, sp float64) trace.SampleTrace {
	tr := trace.SampleTrace{
		LayerLatency:  make([]time.Duration, layers),
		LayerSparsity: make([]float64, layers),
	}
	for i := range tr.LayerLatency {
		tr.LayerLatency[i] = lat
		tr.LayerSparsity[i] = sp
	}
	return tr
}
