package exp

import (
	"fmt"
	"time"

	"sparsedysta/internal/workload"
)

// StreamScale is the beyond-the-paper streaming study: the same cluster
// operating point swept over growing stream lengths, run entirely
// through the streaming path (lazy arrivals, bounded capture, scalable
// picks) whose memory footprint is independent of the stream length.
// The sweep shows the steady-state metrics converging as the stream
// grows — the warm-up and drain transients wash out — which is the
// regime the materialized paths cannot reach without O(requests) memory.
func StreamScale(opts Options) ([]Artifact, error) {
	// 25 req/s per engine sits at ~83% of an engine's capacity (~30
	// req/s on this workload): high enough that queues form, low enough
	// that they reach a steady state. At or past saturation the backlog
	// grows with the horizon and the per-length metrics measure stream
	// length, not scheduling.
	const (
		engines       = 4
		ratePerEngine = 25.0
		mslo          = 10.0
	)
	p, err := NewPipeline(workload.MultiAttNN(), opts, 7)
	if err != nil {
		return nil, err
	}

	// Stream lengths scale off the configured protocol so -quick stays
	// quick; the top length is 64x the base (64k at paper scale).
	lengths := []int{
		opts.Requests,
		4 * opts.Requests,
		16 * opts.Requests,
		64 * opts.Requests,
	}

	specs := StandardScheds()
	tbl := &Table{
		ID: "stream-scale",
		Title: fmt.Sprintf("multi-attnn on %d engines at %.0f req/s per engine: streaming runs vs stream length",
			engines, ratePerEngine),
		Columns: []string{"requests", "scheduler", "ANTT", "viol%", "throughput (inf/s)", "p99 lat"},
		Notes: []string{
			"arrivals stream from the generator and metrics aggregate in bounded memory (-stream -capture bounded -scalable-pick)",
			"percentiles come from the log-bucketed histogram (at most one bucket width high, ~3%)",
			"per-run memory is independent of the request count, so the sweep extends to lengths the materialized path cannot hold",
		},
	}
	xs := make([]float64, len(lengths))
	for i, n := range lengths {
		xs[i] = float64(n)
	}
	antt := &Series{
		ID:     "stream-scale",
		Title:  "steady-state ANTT vs stream length (streaming runs)",
		XLabel: "requests",
		YLabel: "ANTT",
		X:      xs,
		Lines:  map[string][]float64{},
	}

	for _, n := range lengths {
		o := opts
		o.Requests = n
		o.Stream = true
		o.Capture = "bounded"
		o.ScalablePick = true
		o.Engines = engines
		o.EngineSpecs = nil // the sweep pins its composition
		o.Dispatch = "load"
		grid, err := p.RunGrid(specs, []Point{{Rate: ratePerEngine * engines, MSLO: mslo}}, o)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			r := grid[0].Results[spec.Name]
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", n), spec.Name,
				fmt.Sprintf("%.2f", r.ANTT),
				fmt.Sprintf("%.1f", 100*r.ViolationRate),
				fmt.Sprintf("%.1f", r.Throughput),
				r.P99Latency.Round(time.Microsecond).String(),
			})
			antt.Lines[spec.Name] = append(antt.Lines[spec.Name], r.ANTT)
		}
	}
	return []Artifact{tbl, antt}, nil
}
