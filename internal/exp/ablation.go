package exp

import (
	"fmt"
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/core"
	"sparsedysta/internal/hwsched"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/workload"
)

// This file holds the ablation studies DESIGN.md §5 calls out: sweeps of
// Dysta's configuration knobs that the paper fixes (eta, beta, predictor
// strategy, penalty, demotion, preemption overhead, FIFO depth). They are
// registered alongside the paper experiments under "ablation-*" ids.

// runDystaVariants evaluates one Dysta configuration per row on a single
// scenario operating point.
// dystaVariant labels one Dysta configuration under test.
type dystaVariant struct {
	label string
	cfg   core.Config
}

func runDystaVariants(sc workload.Scenario, rate float64, opts Options,
	rows []dystaVariant) (*Table, error) {
	p, err := NewPipeline(sc, opts, 7)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Columns: []string{"variant", "ANTT", "viol%", "preemptions"},
	}
	// All variants go into one grid point so the (variant, seed) cells
	// fan out over the parallel runner together.
	specs := make([]SchedSpec, len(rows))
	for i, row := range rows {
		cfg := row.cfg
		specs[i] = SchedSpec{Name: row.label, New: func(p *Pipeline) sched.Scheduler {
			return core.New(cfg, p.LUT)
		}}
	}
	rs, err := p.RunPoint(specs, rate, 10, opts)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		r := rs[row.label]
		tbl.Rows = append(tbl.Rows, []string{
			row.label,
			fmt.Sprintf("%.2f", r.ANTT),
			fmt.Sprintf("%.1f", 100*r.ViolationRate),
			fmt.Sprintf("%d", r.Preemptions),
		})
	}
	return tbl, nil
}

// AblationEta sweeps the dynamic slack weight eta on both workloads.
func AblationEta(opts Options) ([]Artifact, error) {
	var arts []Artifact
	for _, setup := range []struct {
		sc   workload.Scenario
		rate float64
	}{
		{workload.MultiAttNN(), 30},
		{workload.MultiCNN(), 3},
	} {
		var rows []dystaVariant
		for _, eta := range []float64{0, 0.01, 0.05, 0.1, 0.3} {
			cfg := core.DefaultConfig()
			cfg.Eta = eta
			rows = append(rows, dystaVariant{fmt.Sprintf("eta=%.2f", eta), cfg})
		}
		tbl, err := runDystaVariants(setup.sc, setup.rate, opts, rows)
		if err != nil {
			return nil, err
		}
		tbl.ID = "ablation-eta"
		tbl.Title = fmt.Sprintf("eta sweep (ANTT vs violation balance), %s", setup.sc.Name)
		tbl.Notes = []string{"eta=0 is sparsity-refined SJF; larger eta weighs deadline slack"}
		arts = append(arts, tbl)
	}
	return arts, nil
}

// AblationStrategy compares the predictor strategies and coefficient
// spaces inside the full scheduling loop (Table 4 measures them offline).
func AblationStrategy(opts Options) ([]Artifact, error) {
	var rows []dystaVariant
	for _, s := range []core.Strategy{core.LastOne, core.LastN, core.AverageAll} {
		cfg := core.DefaultConfig()
		cfg.Strategy = s
		rows = append(rows, dystaVariant{"strategy=" + s.String(), cfg})
	}
	dr := core.DefaultConfig()
	dr.Mode = core.DensityRatio
	rows = append(rows, dystaVariant{"mode=density-ratio", dr})

	tbl, err := runDystaVariants(workload.MultiAttNN(), 30, opts, rows)
	if err != nil {
		return nil, err
	}
	tbl.ID = "ablation-strategy"
	tbl.Title = "predictor strategy / coefficient space inside the scheduler, multi-attnn"
	return []Artifact{tbl}, nil
}

// AblationPenalty sweeps the preemption-penalty weight.
func AblationPenalty(opts Options) ([]Artifact, error) {
	var rows []dystaVariant
	for _, w := range []float64{0, 1, 10, 100} {
		cfg := core.DefaultConfig()
		cfg.PenaltyWeight = w
		rows = append(rows, dystaVariant{fmt.Sprintf("penalty=%g", w), cfg})
	}
	tbl, err := runDystaVariants(workload.MultiAttNN(), 30, opts, rows)
	if err != nil {
		return nil, err
	}
	tbl.ID = "ablation-penalty"
	tbl.Title = "preemption penalty weight (Alg. 2 line 10), multi-attnn"
	tbl.Notes = []string{"larger weights suppress switching away from the recently executed request"}
	return []Artifact{tbl}, nil
}

// AblationDemotion sweeps the hopeless-task demotion constant (the
// documented refinement of Alg. 2; DESIGN.md §6).
func AblationDemotion(opts Options) ([]Artifact, error) {
	var rows []dystaVariant
	for _, d := range []float64{0, 100, 1000, 10000} {
		cfg := core.DefaultConfig()
		cfg.DemotionMS = d
		rows = append(rows, dystaVariant{fmt.Sprintf("demotion=%gms", d), cfg})
	}
	tbl, err := runDystaVariants(workload.MultiAttNN(), 30, opts, rows)
	if err != nil {
		return nil, err
	}
	tbl.ID = "ablation-demotion"
	tbl.Title = "hopeless-request demotion, multi-attnn"
	tbl.Notes = []string{"demotion=0 is the literal Alg. 2 with clamped slack"}
	return []Artifact{tbl}, nil
}

// AblationOverhead sweeps the per-preemption overhead charged by the
// engine, checking that Dysta's advantage survives non-zero switching
// costs.
func AblationOverhead(opts Options) ([]Artifact, error) {
	sc := workload.MultiAttNN()
	p, err := NewPipeline(sc, opts, 7)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "ablation-overhead",
		Title:   "preemption overhead sensitivity, multi-attnn at 30 req/s",
		Columns: []string{"overhead", "SJF ANTT", "SJF viol%", "Dysta ANTT", "Dysta viol%"},
	}
	for _, ov := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		var sjfR, dystaR []sched.Result
		for s := 0; s < opts.Seeds; s++ {
			reqs, err := workload.Generate(sc, p.Eval, workload.GenConfig{
				Requests: opts.Requests, RatePerSec: 30, SLOMultiplier: 10,
				Seed: uint64(1000*s) + 17})
			if err != nil {
				return nil, err
			}
			a, err := sched.Run(sched.NewSJF(p.Est), reqs, sched.Options{PreemptionOverhead: ov})
			if err != nil {
				return nil, err
			}
			b, err := sched.Run(core.NewDefault(p.LUT), reqs, sched.Options{PreemptionOverhead: ov})
			if err != nil {
				return nil, err
			}
			sjfR, dystaR = append(sjfR, a), append(dystaR, b)
		}
		sjf, err := sched.AverageResults(sjfR)
		if err != nil {
			return nil, err
		}
		dysta, err := sched.AverageResults(dystaR)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			ov.String(),
			fmt.Sprintf("%.2f", sjf.ANTT), fmt.Sprintf("%.1f", 100*sjf.ViolationRate),
			fmt.Sprintf("%.2f", dysta.ANTT), fmt.Sprintf("%.1f", 100*dysta.ViolationRate),
		})
	}
	return []Artifact{tbl}, nil
}

// AblationFIFO sweeps the hardware FIFO depth, reporting back-pressure
// (dropped arrivals) and the resource cost of deeper queues.
func AblationFIFO(opts Options) ([]Artifact, error) {
	sc := workload.MultiAttNN()
	p, err := NewPipeline(sc, opts, 7)
	if err != nil {
		return nil, err
	}
	reqs, err := workload.Generate(sc, p.Eval, workload.GenConfig{
		Requests: opts.Requests, RatePerSec: 40, SLOMultiplier: 10, Seed: 17})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "ablation-fifo",
		Title:   "hardware FIFO depth under heavy load (40 req/s), multi-attnn",
		Columns: []string{"depth", "saturated arrivals", "ANTT", "viol%", "RAM"},
	}
	for _, depth := range []int{8, 16, 64, 512} {
		eng, err := hwsched.NewEngine(core.DefaultConfig(), p.LUT, hwsched.FP16, depth)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(eng, reqs, sched.Options{})
		if err != nil {
			return nil, err
		}
		res := hwsched.Estimate(hwsched.OptFP16(depth))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", eng.Dropped()),
			fmt.Sprintf("%.2f", r.ANTT),
			fmt.Sprintf("%.1f", 100*r.ViolationRate),
			fmt.Sprintf("%.2f KB", float64(res.RAMBytes)/1024),
		})
	}
	tbl.Notes = []string{"saturated arrivals would back-pressure the host; the model still schedules them so metrics stay comparable"}
	return []Artifact{tbl}, nil
}

// AblationBeta sweeps the static slack weight beta on a mixed-criticality
// workload. With the benchmark's uniform SLO multiplier beta cannot
// reorder requests (every model's latency and SLO move together); the
// paper's deployment mixes (Table 3) pair latency-critical tasks with
// best-effort ones, which this scenario models with per-entry SLO classes.
func AblationBeta(opts Options) ([]Artifact, error) {
	sc := workload.MultiAttNN()
	// BERT question answering is interactive (tight SLO); translation is
	// background (loose SLO).
	for i := range sc.Entries {
		if sc.Entries[i].Model.Name == "bert" {
			sc.Entries[i].SLOFactor = 0.4
		} else {
			sc.Entries[i].SLOFactor = 2.0
		}
	}
	var rows []dystaVariant
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := core.DefaultConfig().WithoutSparse()
		cfg.Beta = beta
		rows = append(rows, dystaVariant{fmt.Sprintf("beta=%.2f", beta), cfg})
	}
	tbl, err := runDystaVariants(sc, 30, opts, rows)
	if err != nil {
		return nil, err
	}
	tbl.ID = "ablation-beta"
	tbl.Title = "beta sweep (static level only) on a mixed-criticality multi-attnn workload"
	tbl.Notes = []string{
		"beta=0 is per-model SJF; larger beta prioritizes the tight-SLO interactive requests",
	}
	return []Artifact{tbl}, nil
}

// AblationGLB reproduces the rationale for the paper's §6.1 hardware
// modification: enlarging Eyeriss-V2's input-activation GLB banks from
// 1.5 KB to 2.5 KB reduces refill stalls on the large benchmark CNNs.
func AblationGLB(opts Options) ([]Artifact, error) {
	big := eyeriss.New(eyeriss.DefaultConfig())
	small := eyeriss.New(eyeriss.OriginalGLBConfig())
	tbl := &Table{
		ID:    "ablation-glb",
		Title: "Eyeriss-V2 input GLB size: paper's 2.5 KB banks vs original 1.5 KB",
		Columns: []string{"model",
			"dense acts, 1.5 KB", "dense acts, 2.5 KB", "slowdown",
			"sparse acts, 1.5 KB", "sparse acts, 2.5 KB"},
	}
	denseAct := accel.LayerSparsity{Pattern: sparsity.Dense}
	sparseAct := accel.LayerSparsity{
		Pattern: sparsity.RandomPointwise, WeightRate: 0.8, ActivationSparsity: 0.45}
	for _, m := range models.BenchmarkCNNs() {
		dSmall := accel.ModelLatency(small, m, denseAct)
		dBig := accel.ModelLatency(big, m, denseAct)
		sSmall := accel.ModelLatency(small, m, sparseAct)
		sBig := accel.ModelLatency(big, m, sparseAct)
		tbl.Rows = append(tbl.Rows, []string{
			m.Name,
			dSmall.Round(time.Millisecond).String(),
			dBig.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(dSmall)/float64(dBig)),
			sSmall.Round(time.Millisecond).String(),
			sBig.Round(time.Millisecond).String(),
		})
	}
	tbl.Notes = []string{
		"dense activations overflow the original banks on wide layers (split-mapping slowdown)",
		"the benchmark's compressed activations fit either size - the enlarged GLB removes the constraint",
	}
	return []Artifact{tbl}, nil
}
