package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestAblationRunners executes every registered ablation at tiny scale
// and checks the artefacts are well-formed.
func TestAblationRunners(t *testing.T) {
	opts := tiny()
	for _, id := range AblationIDs() {
		r, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		arts, err := r(opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(arts) == 0 {
			t.Fatalf("%s: no artifacts", id)
		}
		for _, a := range arts {
			if a.Render() == "" {
				t.Errorf("%s: empty render", id)
			}
		}
	}
}

func TestAblationIDsRegistered(t *testing.T) {
	ids := AblationIDs()
	if len(ids) != 8 {
		t.Errorf("found %d ablations, want 8: %v", len(ids), ids)
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "ablation-") {
			t.Errorf("ablation id %q lacks prefix", id)
		}
	}
	all := AllIDs()
	if len(all) != len(IDs())+len(ids)+len(ScaleIDs()) {
		t.Errorf("AllIDs has %d entries, want %d", len(all), len(IDs())+len(ids)+len(ScaleIDs()))
	}
}

// TestAblationEtaTradeoff checks the knob's documented direction: larger
// eta must not improve ANTT (it trades ANTT for deadline-awareness).
func TestAblationEtaTradeoff(t *testing.T) {
	opts := tiny()
	opts.Requests = 300
	arts, err := AblationEta(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table) // multi-attnn table
	first, err1 := strconv.ParseFloat(tbl.Rows[0][1], 64)
	last, err2 := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable ANTT cells: %v %v", err1, err2)
	}
	if last < first*0.95 {
		t.Errorf("eta=0.3 ANTT %.2f materially below eta=0 %.2f", last, first)
	}
}

// TestAblationGLBStory checks the GLB table: dense-activation VGG slows
// down on the original banks; sparse runs are unaffected.
func TestAblationGLBStory(t *testing.T) {
	arts, err := AblationGLB(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	for _, row := range tbl.Rows {
		if row[0] != "vgg16" {
			continue
		}
		slow, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("bad slowdown cell %q", row[3])
		}
		if slow < 1.2 {
			t.Errorf("dense VGG GLB slowdown %.2fx below 1.2x", slow)
		}
		return
	}
	t.Fatal("vgg16 row missing")
}
