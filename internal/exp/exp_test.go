package exp

import (
	"strconv"
	"strings"
	"testing"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// workloadAttNN and schedSeedSpread are thin aliases keeping test bodies
// terse.
func workloadAttNN() workload.Scenario { return workload.MultiAttNN() }

func schedSeedSpread(rs []sched.Result) (float64, float64) { return sched.SeedSpread(rs) }

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{
		Seeds:          1,
		Requests:       120,
		ProfileSamples: 20,
		EvalSamples:    60,
		DatasetSamples: 300,
	}
}

func TestRenderTable(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"a note"},
	}
	out := tbl.Render()
	for _, want := range []string{"demo", "a", "3", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("table render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	s := &Series{
		ID: "y", Title: "sweep", XLabel: "x", YLabel: "metric",
		X:     []float64{1, 2},
		Lines: map[string][]float64{"B": {3, 4}, "A": {1, 2}},
		Order: []string{"B"},
	}
	out := s.Render()
	// B is ordered first; A follows alphabetically.
	if bi, ai := strings.Index(out, "B"), strings.Index(out, "A"); bi < 0 || ai < 0 || bi > ai {
		t.Errorf("series column order wrong:\n%s", out)
	}
	if !strings.Contains(out, "3.000") || !strings.Contains(out, "2.000") {
		t.Errorf("series values missing:\n%s", out)
	}
	// Ragged line: missing point renders as '-'.
	s.Lines["C"] = []float64{9}
	if out := s.Render(); !strings.Contains(out, "-") {
		t.Errorf("ragged series not padded:\n%s", out)
	}
}

func TestRenderText(t *testing.T) {
	x := &Text{ID: "z", Title: "t", Body: "body\n"}
	if out := x.Render(); !strings.Contains(out, "body") {
		t.Errorf("text render wrong: %q", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Errorf("registry has %d experiments, want 14 (every paper table+figure)", len(ids))
	}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestOptionsPresets(t *testing.T) {
	d, q := DefaultOptions(), QuickOptions()
	if d.Seeds != 5 || d.Requests != 1000 {
		t.Errorf("default options deviate from the paper protocol: %+v", d)
	}
	if q.Requests >= d.Requests || q.Seeds >= d.Seeds {
		t.Error("quick options not smaller than default")
	}
}

// TestProfilingExperiments runs every Phase 1 experiment at tiny scale and
// sanity-checks the artefacts.
func TestProfilingExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "fig3", "table2", "fig4", "fig9"} {
		r, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		arts, err := r(tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(arts) == 0 {
			t.Fatalf("%s produced no artifacts", id)
		}
		for _, a := range arts {
			if a.Render() == "" {
				t.Errorf("%s produced empty render", id)
			}
		}
	}
}

// TestFig2Spread checks the reproduction target: the last-layer normalized
// latency spread reaches at least [0.8, 1.3] (paper: 0.6-1.8).
func TestFig2Spread(t *testing.T) {
	arts, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := arts[len(arts)-1].(*Table)
	if !ok {
		t.Fatalf("fig2 summary is not a table")
	}
	for _, row := range tbl.Rows {
		min, _ := strconv.ParseFloat(row[1], 64)
		max, _ := strconv.ParseFloat(row[5], 64)
		if min > 0.85 || max < 1.25 {
			t.Errorf("%s spread [%.2f, %.2f] too narrow for Fig. 2", row[0], min, max)
		}
	}
}

// TestFig4PatternGap checks the pattern effect: channel-wise valid MACs
// exceed random at equal sparsity, by a bounded factor (paper: up to 40%).
func TestFig4PatternGap(t *testing.T) {
	arts, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arts {
		tbl := a.(*Table)
		if len(tbl.Rows) != 2 {
			t.Fatalf("fig4 table has %d rows", len(tbl.Rows))
		}
		norm, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
		if norm <= 1.0 || norm > 1.9 {
			t.Errorf("%s: channel/random valid-MAC ratio %.3f outside (1.0, 1.9]", tbl.Title, norm)
		}
	}
}

// TestFig5Story checks the motivating example's outcome: blind SJF
// violates the MobileNet request; the sparsity-aware scheduler does not.
func TestFig5Story(t *testing.T) {
	arts, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	if tbl.Rows[0][1] != "1" {
		t.Errorf("blind SJF violations = %s, want 1", tbl.Rows[0][1])
	}
	if tbl.Rows[1][1] != "0" {
		t.Errorf("sparsity-aware violations = %s, want 0", tbl.Rows[1][1])
	}
}

// TestTable5Shape runs the headline experiment at tiny scale and checks
// the paper's qualitative claims: Dysta has the best ANTT and the best
// violation rate of the six schedulers on both workloads.
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	opts := tiny()
	opts.Requests = 400
	opts.Seeds = 2
	arts, err := Table5(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	get := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", row[col], err)
		}
		return v
	}
	var dysta []float64
	bestANTTAtt, bestViolAtt := 1e18, 1e18
	bestANTTCnn, bestViolCnn := 1e18, 1e18
	for _, row := range tbl.Rows {
		antt, viol := get(row, 1), get(row, 3)
		anttC, violC := get(row, 5), get(row, 7)
		if row[0] == "Dysta" {
			dysta = []float64{antt, viol, anttC, violC}
		}
		if antt < bestANTTAtt {
			bestANTTAtt = antt
		}
		if viol < bestViolAtt {
			bestViolAtt = viol
		}
		if anttC < bestANTTCnn {
			bestANTTCnn = anttC
		}
		if violC < bestViolCnn {
			bestViolCnn = violC
		}
	}
	if dysta == nil {
		t.Fatal("Dysta row missing")
	}
	// Dysta leads (within 5% slack for seed noise) on all four columns.
	if dysta[0] > bestANTTAtt*1.05 || dysta[2] > bestANTTCnn*1.05 {
		t.Errorf("Dysta ANTT not best: attnn %.2f (best %.2f), cnn %.2f (best %.2f)",
			dysta[0], bestANTTAtt, dysta[2], bestANTTCnn)
	}
	if dysta[1] > bestViolAtt+1.0 || dysta[3] > bestViolCnn+1.0 {
		t.Errorf("Dysta violations not best: attnn %.1f%% (best %.1f%%), cnn %.1f%% (best %.1f%%)",
			dysta[1], bestViolAtt, dysta[3], bestViolCnn)
	}
}

// TestHardwareExperiments checks Fig. 16 and Table 6 artefacts.
func TestHardwareExperiments(t *testing.T) {
	arts, err := Fig16(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("fig16 produced %d tables, want 2 (two FIFO depths)", len(arts))
	}
	for _, a := range arts {
		tbl := a.(*Table)
		// Normalized columns must be monotonically non-increasing down
		// the design list.
		prev := 1e18
		for _, row := range tbl.Rows {
			lut, _ := strconv.ParseFloat(row[1], 64)
			if lut > prev {
				t.Errorf("%s: normalized LUT not decreasing: %v", tbl.Title, row)
			}
			prev = lut
		}
	}

	t6, err := Table6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := t6[0].Render()
	if !strings.Contains(out, "Eyeriss-V2") || !strings.Contains(out, "overhead") {
		t.Errorf("table6 render incomplete:\n%s", out)
	}
}

// TestTable4Artifacts checks the predictor comparison rows.
func TestTable4Artifacts(t *testing.T) {
	arts, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	if len(tbl.Rows) != 2 {
		t.Fatalf("table4 has %d rows, want 2", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 6 {
			t.Fatalf("table4 row has %d cells", len(row))
		}
	}
}

// TestTradeoffAndBreakdownSmoke runs fig12 and fig13 at tiny scale.
func TestTradeoffAndBreakdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipelines; skipped in -short")
	}
	opts := tiny()
	opts.Requests = 80
	for _, id := range []string{"fig12", "fig13"} {
		r, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		arts, err := r(opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(arts) == 0 {
			t.Fatalf("%s: no artifacts", id)
		}
	}
}

// TestRunSeedsSpread exercises the per-seed API behind Table 5's
// stability notes.
func TestRunSeedsSpread(t *testing.T) {
	opts := tiny()
	opts.Seeds = 3
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := StandardScheds()[1] // SJF
	rs, err := p.RunSeeds(spec, 30, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d seed results", len(rs))
	}
	anttSD, violSD := schedSeedSpread(rs)
	if anttSD < 0 || violSD < 0 {
		t.Error("negative spreads")
	}
}

// TestSweepSmoke runs the two sweep figures at a drastically reduced
// protocol, temporarily narrowing the multiplier grid.
func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps; skipped in -short")
	}
	old := SLOMultipliers
	SLOMultipliers = []float64{10, 40}
	defer func() { SLOMultipliers = old }()

	opts := tiny()
	opts.Requests = 50
	for _, id := range []string{"fig14", "fig15"} {
		r, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		arts, err := r(opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		// Each sweep emits multiple Series with consistent lengths.
		for _, a := range arts {
			s, ok := a.(*Series)
			if !ok {
				t.Fatalf("%s produced a non-series artifact", id)
			}
			for name, ys := range s.Lines {
				if len(ys) != len(s.X) {
					t.Errorf("%s %s line %q has %d points for %d xs",
						id, s.Title, name, len(ys), len(s.X))
				}
			}
		}
	}
}
