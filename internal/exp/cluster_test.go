package exp

import (
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// TestClusterCellMatchesSingleEngine: a 1-engine cluster cell must be
// byte-identical to the plain sched.Run cell for every dispatch policy —
// the exp-layer end of the cluster equivalence chain (runCell routes
// Engines <= 1 to sched.Run, so this also pins that gate: a 1-engine
// cluster and the direct path agree, whichever runs).
func TestClusterCellMatchesSingleEngine(t *testing.T) {
	opts := tiny()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()
	want, err := p.RunPoint(specs, 30, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range DispatchPolicies {
		// Engines=1 through the options surface.
		o := opts
		o.Engines = 1
		o.Dispatch = policy
		got, err := p.RunPoint(specs, 30, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(got)
		if string(wantJSON) != string(b) {
			t.Errorf("dispatch=%s engines=1 diverges from the single-engine path", policy)
		}
		// A true 1-engine cluster.Run cell, via the same dispatcher
		// factory runCell uses.
		for _, spec := range specs {
			d, err := NewDispatcher(policy, p)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := workload.Generate(p.Scenario, p.Eval, workload.GenConfig{
				Requests: opts.Requests, RatePerSec: 30, SLOMultiplier: 10, Seed: cellSeed(0)})
			if err != nil {
				t.Fatal(err)
			}
			cres, err := cluster.Run(func(int) sched.Scheduler { return spec.New(p) }, reqs,
				cluster.Config{Engines: 1, Dispatch: d})
			if err != nil {
				t.Fatal(err)
			}
			direct, err := sched.Run(spec.New(p), reqs, sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cres.Result, direct) {
				t.Errorf("%s/%s: 1-engine cluster cell diverges from sched.Run", spec.Name, policy)
			}
		}
	}
}

// TestClusterGridRuns: the parallel grid runner executes multi-engine
// cells, all requests complete, and results are deterministic across
// worker counts.
func TestClusterGridRuns(t *testing.T) {
	opts := tiny()
	opts.Engines = 3
	opts.Dispatch = "load"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()
	seq := opts
	seq.Workers = 1
	want, err := p.RunPoint(specs, 90, 10, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	got, err := p.RunPoint(specs, 90, 10, par)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("multi-engine grid results differ across worker counts")
	}
	for name, r := range got {
		if r.Requests != opts.Requests {
			t.Errorf("%s: %d of %d requests completed", name, r.Requests, opts.Requests)
		}
	}
}

// TestUnknownDispatchRejected: a bad policy name surfaces as an error —
// also on single-engine runs, which never dispatch but must not silently
// swallow a misconfiguration.
func TestUnknownDispatchRejected(t *testing.T) {
	opts := tiny()
	opts.Dispatch = "nope"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, engines := range []int{0, 1, 2} {
		o := opts
		o.Engines = engines
		if _, err := p.RunPoint(StandardScheds()[:1], 30, 10, o); err == nil {
			t.Fatalf("unknown dispatch policy accepted on %d engines", engines)
		}
	}
}

// TestScaleEnginesRegistered: the experiment is reachable through Lookup
// and produces the scaling table plus the two Dysta series.
func TestScaleEnginesRegistered(t *testing.T) {
	if _, err := Lookup("scale-engines"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range AllIDs() {
		if id == "scale-engines" {
			found = true
		}
	}
	if !found {
		t.Error("scale-engines missing from AllIDs")
	}
}

// TestScaleEnginesThroughputScales runs the experiment at a tiny protocol
// and checks the headline property: Dysta's throughput grows with the
// engine count under every dispatch policy.
func TestScaleEnginesThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := tiny()
	opts.Requests = 200
	arts, err := ScaleEngines(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 3 {
		t.Fatalf("got %d artifacts", len(arts))
	}
	stp, ok := arts[1].(*Series)
	if !ok || stp.YLabel != "throughput (inf/s)" {
		t.Fatalf("second artifact is not the throughput series: %+v", arts[1])
	}
	for policy, ys := range stp.Lines {
		if len(ys) != len(EngineCounts) {
			t.Fatalf("%s: %d points, want %d", policy, len(ys), len(EngineCounts))
		}
		if ys[len(ys)-1] <= ys[0] {
			t.Errorf("%s: throughput did not scale with engines: %v", policy, ys)
		}
	}
	// The table's engine column is well-formed.
	tbl := arts[0].(*Table)
	for _, row := range tbl.Rows {
		if _, err := strconv.Atoi(row[1]); err != nil {
			t.Fatalf("bad engines cell %q", row[1])
		}
	}
}

// TestParseEngines covers the homogeneous and heterogeneous -engines
// syntax and its error cases.
func TestParseEngines(t *testing.T) {
	n, specs, err := ParseEngines("4")
	if err != nil || n != 4 || specs != nil {
		t.Errorf("plain count: n=%d specs=%v err=%v", n, specs, err)
	}
	n, specs, err = ParseEngines("2x1,2x2")
	if err != nil || n != 4 || len(specs) != 4 {
		t.Fatalf("mixed: n=%d specs=%v err=%v", n, specs, err)
	}
	if specs[0].LatencyScale != 1 || specs[3].LatencyScale != 2 {
		t.Errorf("mixed scales %v", specs)
	}
	n, specs, err = ParseEngines("1x0.5,3")
	if err != nil || n != 4 || specs[0].LatencyScale != 0.5 || specs[3].LatencyScale != 1 {
		t.Errorf("scale-and-plain: n=%d specs=%v err=%v", n, specs, err)
	}
	if n, specs, err = ParseEngines(""); err != nil || n != 0 || specs != nil {
		t.Errorf("empty: n=%d specs=%v err=%v", n, specs, err)
	}
	for _, bad := range []string{"0", "-2", "2x0", "2x-1", "x2", "2x", "ax1", "2x1,,3"} {
		if _, _, err := ParseEngines(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestNewAdmission covers the admission policy factory.
func TestNewAdmission(t *testing.T) {
	opts := tiny()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"":            "none",
		"none":        "none",
		"queue-cap":   "queue-cap:16",
		"queue-cap:4": "queue-cap:4",
		"slo":         "slo",
	} {
		a, err := NewAdmission(name, p)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("%q -> %q, want %q", name, a.Name(), want)
		}
	}
	for _, bad := range []string{"nope", "queue-cap:0", "queue-cap:x"} {
		if _, err := NewAdmission(bad, p); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestNeutralClusterOptionsBitIdentical is the options-level equivalence
// anchor: explicit homogeneous EngineSpecs + SignalInterval 0 + admission
// "none" must be byte-identical to the plain Engines count across the
// whole grid-runner path.
func TestNeutralClusterOptionsBitIdentical(t *testing.T) {
	opts := tiny()
	opts.Engines = 3
	opts.Dispatch = "load"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()[:3]
	want, err := p.RunPoint(specs, 90, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	neutral := opts
	neutral.Engines = 0
	_, neutral.EngineSpecs, err = ParseEngines("3x1")
	if err != nil {
		t.Fatal(err)
	}
	neutral.SignalInterval = 0
	neutral.Admission = "none"
	got, err := p.RunPoint(specs, 90, 10, neutral)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("neutral cluster knobs diverge from the plain engine count")
	}
}

// TestStaleSignalsExperiment runs the sweep at a tiny protocol under the
// parallel runner and checks the structural invariants: every policy has
// a point per interval, and round-robin — which never reads the signals —
// is exactly interval-invariant.
func TestStaleSignalsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := tiny()
	opts.Requests = 150
	opts.Workers = 4
	arts, err := StaleSignals(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("got %d artifacts", len(arts))
	}
	viol, ok := arts[1].(*Series)
	if !ok || viol.YLabel != "SLO violation rate (%)" {
		t.Fatalf("second artifact is not the violation series: %+v", arts[1])
	}
	for policy, ys := range viol.Lines {
		if len(ys) != len(SignalIntervals) {
			t.Fatalf("%s: %d points, want %d", policy, len(ys), len(SignalIntervals))
		}
	}
	for i, y := range viol.Lines["rr"] {
		if y != viol.Lines["rr"][0] {
			t.Errorf("rr is not interval-invariant: point %d is %v vs %v", i, y, viol.Lines["rr"][0])
		}
	}
}

// TestHeteroScaleExperiment runs the composition sweep at a tiny protocol
// under the parallel runner: every (mix, policy) cell produces a row, and
// the uniform mix reproduces the plain homogeneous 4-engine cluster
// byte-identically (composition "4x1" is the neutral case).
func TestHeteroScaleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := tiny()
	opts.Requests = 150
	opts.Workers = 4
	arts, err := HeteroScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("got %d artifacts", len(arts))
	}
	tbl := arts[0].(*Table)
	if len(tbl.Rows) != len(HeteroMixes)*3 {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), len(HeteroMixes)*3)
	}
	viol := arts[1].(*Series)
	for policy, ys := range viol.Lines {
		if len(ys) != len(HeteroMixes) {
			t.Fatalf("%s: %d points, want %d", policy, len(ys), len(HeteroMixes))
		}
	}

	// The uniform "4x1" column equals a plain Engines=4 run.
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	plain := opts
	plain.Engines = 4
	plain.Dispatch = "load"
	want, err := p.RunPoint(dystaOnly(), 132, 10, plain)
	if err != nil {
		t.Fatal(err)
	}
	if got := viol.Lines["load"][0]; got != 100*want["Dysta"].ViolationRate {
		t.Errorf("uniform mix viol %v differs from plain 4-engine run %v",
			got, 100*want["Dysta"].ViolationRate)
	}
}

// TestNewExperimentsRegistered: both new ids resolve and appear in the
// scaling-study listing.
func TestNewExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"stale-signals", "hetero-scale"} {
		if _, err := Lookup(id); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, got := range ScaleIDs() {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from ScaleIDs", id)
		}
	}
}

// TestUnknownAdmissionRejected: a bad policy name surfaces as an error
// from the grid runner — also on a single-engine run, where admission
// routes the cell through the cluster path instead of being silently
// ignored.
func TestUnknownAdmissionRejected(t *testing.T) {
	opts := tiny()
	opts.Admission = "yolo"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, engines := range []int{0, 1, 2} {
		o := opts
		o.Engines = engines
		if _, err := p.RunPoint(StandardScheds()[:1], 30, 10, o); err == nil {
			t.Fatalf("unknown admission policy accepted on %d engines", engines)
		}
	}
}

// TestSingleEngineAdmissionApplies: an admission policy on the default
// single accelerator actually sheds (the cell routes through a 1-engine
// cluster rather than the admission-blind direct path).
func TestSingleEngineAdmissionApplies(t *testing.T) {
	opts := tiny()
	opts.Admission = "queue-cap:1"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := p.RunPoint(StandardScheds()[:1], 120, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rs["FCFS"]
	if r.Rejected == 0 {
		t.Error("cap-1 admission on a saturated single engine shed nothing")
	}
	if r.Requests+r.Rejected != opts.Requests {
		t.Errorf("completed %d + rejected %d != offered %d", r.Requests, r.Rejected, opts.Requests)
	}
}
