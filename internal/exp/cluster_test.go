package exp

import (
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// TestClusterCellMatchesSingleEngine: a 1-engine cluster cell must be
// byte-identical to the plain sched.Run cell for every dispatch policy —
// the exp-layer end of the cluster equivalence chain (runCell routes
// Engines <= 1 to sched.Run, so this also pins that gate: a 1-engine
// cluster and the direct path agree, whichever runs).
func TestClusterCellMatchesSingleEngine(t *testing.T) {
	opts := tiny()
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()
	want, err := p.RunPoint(specs, 30, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range DispatchPolicies {
		// Engines=1 through the options surface.
		o := opts
		o.Engines = 1
		o.Dispatch = policy
		got, err := p.RunPoint(specs, 30, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(got)
		if string(wantJSON) != string(b) {
			t.Errorf("dispatch=%s engines=1 diverges from the single-engine path", policy)
		}
		// A true 1-engine cluster.Run cell, via the same dispatcher
		// factory runCell uses.
		for _, spec := range specs {
			d, err := NewDispatcher(policy, p)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := workload.Generate(p.Scenario, p.Eval, workload.GenConfig{
				Requests: opts.Requests, RatePerSec: 30, SLOMultiplier: 10, Seed: cellSeed(0)})
			if err != nil {
				t.Fatal(err)
			}
			cres, err := cluster.Run(func(int) sched.Scheduler { return spec.New(p) }, reqs,
				cluster.Config{Engines: 1, Dispatch: d})
			if err != nil {
				t.Fatal(err)
			}
			direct, err := sched.Run(spec.New(p), reqs, sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cres.Result, direct) {
				t.Errorf("%s/%s: 1-engine cluster cell diverges from sched.Run", spec.Name, policy)
			}
		}
	}
}

// TestClusterGridRuns: the parallel grid runner executes multi-engine
// cells, all requests complete, and results are deterministic across
// worker counts.
func TestClusterGridRuns(t *testing.T) {
	opts := tiny()
	opts.Engines = 3
	opts.Dispatch = "load"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	specs := StandardScheds()
	seq := opts
	seq.Workers = 1
	want, err := p.RunPoint(specs, 90, 10, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	got, err := p.RunPoint(specs, 90, 10, par)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("multi-engine grid results differ across worker counts")
	}
	for name, r := range got {
		if r.Requests != opts.Requests {
			t.Errorf("%s: %d of %d requests completed", name, r.Requests, opts.Requests)
		}
	}
}

// TestUnknownDispatchRejected: a bad policy name surfaces as an error.
func TestUnknownDispatchRejected(t *testing.T) {
	opts := tiny()
	opts.Engines = 2
	opts.Dispatch = "nope"
	p, err := NewPipeline(workloadAttNN(), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunPoint(StandardScheds()[:1], 30, 10, opts); err == nil {
		t.Fatal("unknown dispatch policy accepted")
	}
}

// TestScaleEnginesRegistered: the experiment is reachable through Lookup
// and produces the scaling table plus the two Dysta series.
func TestScaleEnginesRegistered(t *testing.T) {
	if _, err := Lookup("scale-engines"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range AllIDs() {
		if id == "scale-engines" {
			found = true
		}
	}
	if !found {
		t.Error("scale-engines missing from AllIDs")
	}
}

// TestScaleEnginesThroughputScales runs the experiment at a tiny protocol
// and checks the headline property: Dysta's throughput grows with the
// engine count under every dispatch policy.
func TestScaleEnginesThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	opts := tiny()
	opts.Requests = 200
	arts, err := ScaleEngines(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 3 {
		t.Fatalf("got %d artifacts", len(arts))
	}
	stp, ok := arts[1].(*Series)
	if !ok || stp.YLabel != "throughput (inf/s)" {
		t.Fatalf("second artifact is not the throughput series: %+v", arts[1])
	}
	for policy, ys := range stp.Lines {
		if len(ys) != len(EngineCounts) {
			t.Fatalf("%s: %d points, want %d", policy, len(ys), len(EngineCounts))
		}
		if ys[len(ys)-1] <= ys[0] {
			t.Errorf("%s: throughput did not scale with engines: %v", policy, ys)
		}
	}
	// The table's engine column is well-formed.
	tbl := arts[0].(*Table)
	for _, row := range tbl.Rows {
		if _, err := strconv.Atoi(row[1]); err != nil {
			t.Fatalf("bad engines cell %q", row[1])
		}
	}
}
