package core

import (
	"reflect"
	"testing"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// TestScalableDystaMatchesReference proves the heap-backed
// PickNextScalable returns bit-identical schedules to the reference
// PickNext for both Dysta configurations: with the dynamic level
// disabled the heap key IS the static score, and with it enabled the
// pruned DFS re-scores every unpruned candidate with the exact cached
// formula under a float-rigorous lower bound (see the field doc on
// Dysta.h), so no tolerance is needed — Results must be DeepEqual,
// timeline and per-task outcomes included.
func TestScalableDystaMatchesReference(t *testing.T) {
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 30, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		t.Fatal(err)
	}
	scalable := sched.Options{RecordTimeline: true, RecordTasks: true, ScalablePick: true}
	reference := sched.Options{RecordTimeline: true, RecordTasks: true, ReferencePick: true}
	for seed := uint64(1); seed <= 8; seed++ {
		reqs, err := workload.Generate(sc, eval, workload.GenConfig{
			Requests: 250, RatePerSec: 40, SLOMultiplier: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, mk := range []func() *Dysta{
			func() *Dysta { return NewDefault(lut) },
			func() *Dysta { return NewWithoutSparse(lut) },
		} {
			name := mk().Name()
			fast, err := sched.Run(mk(), reqs, scalable)
			if err != nil {
				t.Fatalf("%s scalable (seed %d): %v", name, seed, err)
			}
			ref, err := sched.Run(mk(), reqs, reference)
			if err != nil {
				t.Fatalf("%s reference (seed %d): %v", name, seed, err)
			}
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s (seed %d): scalable and reference schedules diverge:\n%+v\nvs\n%+v", name, seed, fast, ref)
			}
		}
	}
}
