package core

import (
	"math"
	"testing"

	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
)

func bertStatsAndTraces(t *testing.T, profN, evalN int) (*trace.Stats, []trace.SampleTrace) {
	t.Helper()
	m := models.BERTBase()
	prof, err := trace.Build(sanger.NewDefault(), trace.BuildConfig{
		Model: m, Samples: profN, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	k := trace.Key{Model: m.Name, Pattern: sparsity.Dense}
	st, err := trace.Summarize(k, prof)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := trace.Build(sanger.NewDefault(), trace.BuildConfig{
		Model: m, Samples: evalN, Seed: 200})
	if err != nil {
		t.Fatal(err)
	}
	return st, eval
}

func TestStrategyString(t *testing.T) {
	if LastOne.String() != "last-one" || LastN.String() != "last-n" ||
		AverageAll.String() != "average-all" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name wrong")
	}
	if DensityRatio.String() != "density-ratio" || SparsityRatio.String() != "sparsity-ratio" {
		t.Error("coeff mode names wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Beta = -0.1 },
		func(c *Config) { c.Beta = 1.5 },
		func(c *Config) { c.Eta = 2 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Strategy = LastN; c.N = 0 },
		func(c *Config) { c.GammaClamp = 1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWithoutSparse(t *testing.T) {
	c := DefaultConfig().WithoutSparse()
	if c.DynamicEnabled {
		t.Error("WithoutSparse left dynamic enabled")
	}
	if !DefaultConfig().DynamicEnabled {
		t.Error("default config has dynamic disabled")
	}
}

func TestGammaBeforeObservation(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	p := NewPredictor(DefaultConfig(), st)
	if p.Gamma() != 1 {
		t.Errorf("initial gamma = %v, want 1", p.Gamma())
	}
	if p.Remaining(0) != st.AvgRemaining(0) {
		t.Errorf("initial Remaining = %v, want LUT average %v", p.Remaining(0), st.AvgRemaining(0))
	}
	if p.Observations() != 0 {
		t.Errorf("Observations = %d", p.Observations())
	}
}

func TestGammaTracksSparsity(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	cfg := DefaultConfig()
	avg := st.AvgLayerSparsity[0]

	// A sparser-than-average layer raises gamma above 1 (Alg. 3's
	// sparsity ratio) and must *lower* the remaining-latency estimate
	// below the LUT average (sparser runs faster).
	p := NewPredictor(cfg, st)
	p.Observe(0, avg+0.05)
	if g := p.Gamma(); g <= 1 {
		t.Errorf("sparser observation gave gamma %v <= 1", g)
	}
	if p.Remaining(1) >= st.AvgRemaining(1) {
		t.Errorf("sparser observation did not lower the estimate: %v >= %v",
			p.Remaining(1), st.AvgRemaining(1))
	}

	// A denser layer must raise the estimate.
	p2 := NewPredictor(cfg, st)
	p2.Observe(0, avg-0.05)
	if g := p2.Gamma(); g >= 1 {
		t.Errorf("denser observation gave gamma %v >= 1", g)
	}
	if p2.Remaining(1) <= st.AvgRemaining(1) {
		t.Errorf("denser observation did not raise the estimate: %v <= %v",
			p2.Remaining(1), st.AvgRemaining(1))
	}
}

// TestDensityRatioModeAgreesOnDirection verifies both coefficient spaces
// move the estimate the same way.
func TestDensityRatioModeAgreesOnDirection(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	cfg := DefaultConfig()
	cfg.Mode = DensityRatio
	avg := st.AvgLayerSparsity[0]
	p := NewPredictor(cfg, st)
	p.Observe(0, avg+0.05)
	if p.Remaining(1) >= st.AvgRemaining(1) {
		t.Errorf("density-ratio mode: sparser observation did not lower the estimate")
	}
}

func TestGammaStrategies(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	obs := []float64{0.95, 0.85, 0.80, 0.90}
	mk := func(s Strategy, n int) *Predictor {
		cfg := DefaultConfig()
		cfg.Strategy = s
		cfg.N = n
		p := NewPredictor(cfg, st)
		for l, o := range obs {
			p.Observe(l, o)
		}
		return p
	}
	lastOne := mk(LastOne, 0).Gamma()
	avgAll := mk(AverageAll, 0).Gamma()
	last2 := mk(LastN, 2).Gamma()
	lastBig := mk(LastN, 100).Gamma()

	// last-one must equal the final ratio; with mixed observations the
	// three aggregates must differ.
	if lastOne == avgAll && avgAll == last2 {
		t.Error("all strategies produced identical gamma on mixed observations")
	}
	// LastN with a window larger than history equals average-all.
	if math.Abs(lastBig-avgAll) > 1e-12 {
		t.Errorf("LastN(100) = %v, AverageAll = %v", lastBig, avgAll)
	}
}

func TestGammaClamped(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	cfg := DefaultConfig()
	p := NewPredictor(cfg, st)
	// Monitored density of ~0 would blow the ratio up without clamping.
	p.Observe(0, 0.999999)
	if g := p.Gamma(); g < 1/cfg.GammaClamp-1e-9 || g > cfg.GammaClamp+1e-9 {
		t.Errorf("gamma %v escaped clamp [%v, %v]", g, 1/cfg.GammaClamp, cfg.GammaClamp)
	}
}

func TestSparsityRatioMode(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	cfg := DefaultConfig()
	cfg.Mode = SparsityRatio
	p := NewPredictor(cfg, st)
	avg := st.AvgLayerSparsity[0]
	p.Observe(0, avg)
	if g := p.Gamma(); math.Abs(g-1) > 1e-9 {
		t.Errorf("sparsity-ratio gamma at the average = %v, want 1", g)
	}
}

// TestPredictorBeatsStaticEstimate is the heart of §5.1: with monitored
// sparsity (any strategy), remaining-latency RMSE must be materially lower
// than the static LUT estimate (gamma pinned to 1).
func TestPredictorBeatsStaticEstimate(t *testing.T) {
	st, eval := bertStatsAndTraces(t, 100, 100)
	static := DefaultConfig()
	static.GammaClamp = 1.0001 // pins gamma ~1: static estimate
	staticErr := EvaluatePredictor(static, st, eval)

	for _, s := range []Strategy{LastOne, LastN, AverageAll} {
		cfg := DefaultConfig()
		cfg.Strategy = s
		err := EvaluatePredictor(cfg, st, eval)
		if err.RMSE <= 0 {
			t.Fatalf("%v: RMSE = %v", s, err.RMSE)
		}
		if err.RMSE >= staticErr.RMSE*0.8 {
			t.Errorf("%v RMSE %.6f not materially below static %.6f",
				s, err.RMSE, staticErr.RMSE)
		}
	}
}

// TestTable4Shape verifies the paper's Table 4 finding: average-all and
// last-one perform comparably (within 2x of each other).
func TestTable4Shape(t *testing.T) {
	st, eval := bertStatsAndTraces(t, 100, 100)
	rmse := map[Strategy]float64{}
	for _, s := range []Strategy{LastOne, LastN, AverageAll} {
		cfg := DefaultConfig()
		cfg.Strategy = s
		rmse[s] = EvaluatePredictor(cfg, st, eval).RMSE
	}
	if r := rmse[LastOne] / rmse[AverageAll]; r > 2 || r < 0.5 {
		t.Errorf("last-one/average-all RMSE ratio %.2f outside [0.5, 2]", r)
	}
}

func TestEvaluatePredictorCounts(t *testing.T) {
	st, eval := bertStatsAndTraces(t, 20, 10)
	res := EvaluatePredictor(DefaultConfig(), st, eval)
	if res.Samples != 10 {
		t.Errorf("Samples = %d", res.Samples)
	}
	// 12-layer BERT gives 11 prediction points per trace.
	if res.Points != 10*11 {
		t.Errorf("Points = %d, want 110", res.Points)
	}
	if res.NormalizedRMSE <= 0 {
		t.Errorf("NormalizedRMSE = %v", res.NormalizedRMSE)
	}
	empty := EvaluatePredictor(DefaultConfig(), st, nil)
	if empty.RMSE != 0 || empty.Points != 0 {
		t.Errorf("empty evaluation nonzero: %+v", empty)
	}
}

func TestPredictorIsolated(t *testing.T) {
	st, _ := bertStatsAndTraces(t, 20, 1)
	p := NewPredictor(DefaultConfig(), st)
	if p.Isolated() != st.AvgTotal {
		t.Errorf("initial Isolated = %v, want %v", p.Isolated(), st.AvgTotal)
	}
	p.Observe(0, st.AvgLayerSparsity[0]-0.05)
	if p.Isolated() <= st.AvgTotal {
		t.Error("denser sample did not raise the isolated estimate")
	}
}

func TestSafeRatio(t *testing.T) {
	if got := safeRatio(1, 0, 8); got != 1 {
		t.Errorf("safeRatio with zero denominator = %v", got)
	}
	if got := safeRatio(100, 1, 8); got != 8 {
		t.Errorf("safeRatio clamp high = %v", got)
	}
	if got := safeRatio(1, 100, 8); got != 0.125 {
		t.Errorf("safeRatio clamp low = %v", got)
	}
}

// TestLiteralAlg3Mode verifies the verbatim Alg. 3 form is selectable and
// behaves as documented: it scales the average proportionally by gamma
// (so a gamma of ~1.05 at sparsity 0.9 moves the estimate by ~5%), and on
// this substrate its remaining-latency RMSE is no better than the
// slope-mapped linear model.
func TestLiteralAlg3Mode(t *testing.T) {
	st, eval := bertStatsAndTraces(t, 100, 100)

	literal := DefaultConfig()
	literal.LiteralAlg3 = true
	p := NewPredictor(literal, st)
	avg := st.AvgLayerSparsity[0]
	p.Observe(0, avg*1.05)
	wantNS := float64(st.AvgRemaining(1)) * p.Gamma()
	if got := float64(p.Remaining(1)); math.Abs(got-wantNS) > 1 {
		t.Errorf("literal remaining = %v ns, want gamma-scaled %v ns", got, wantNS)
	}

	linear := DefaultConfig()
	litErr := EvaluatePredictor(literal, st, eval)
	linErr := EvaluatePredictor(linear, st, eval)
	if litErr.RMSE < linErr.RMSE {
		t.Errorf("literal Alg.3 RMSE %.6f unexpectedly beats the linear model %.6f",
			litErr.RMSE, linErr.RMSE)
	}
}
