package core

import (
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
)

// Dysta is the bi-level scheduler (paper §4.2). It implements
// sched.Scheduler; construct it with New and run it under sched.Run.
type Dysta struct {
	cfg Config
	lut *trace.StatsSet
	// state tracks per-request runtime information keyed by task ID.
	state map[int]*requestState
}

// requestState is the per-request bookkeeping of the dynamic level.
type requestState struct {
	// staticScore is the arrival-time score of the static level (Alg. 1),
	// in milliseconds. It fully determines ordering when the dynamic
	// level is disabled (Dysta-w/o-sparse).
	staticScore float64
	// pred refines remaining-latency estimates from monitored sparsity.
	pred *Predictor
}

// New returns a Dysta scheduler over the profiling LUT. It panics on an
// invalid configuration (construction-time programming error).
func New(cfg Config, lut *trace.StatsSet) *Dysta {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Dysta{cfg: cfg, lut: lut, state: map[int]*requestState{}}
}

// NewDefault returns Dysta with DefaultConfig.
func NewDefault(lut *trace.StatsSet) *Dysta { return New(DefaultConfig(), lut) }

// NewWithoutSparse returns the Dysta-w/o-sparse ablation (Fig. 13).
func NewWithoutSparse(lut *trace.StatsSet) *Dysta {
	return New(DefaultConfig().WithoutSparse(), lut)
}

// Name implements sched.Scheduler.
func (d *Dysta) Name() string {
	if !d.cfg.DynamicEnabled {
		return "Dysta-w/o-sparse"
	}
	return "Dysta"
}

// Config returns the scheduler's configuration.
func (d *Dysta) Config() Config { return d.cfg }

// OnArrival implements sched.Scheduler: the static level (Alg. 1).
// Lat_n is the LUT's average latency for the model-pattern pair — the
// pattern-aware estimate of line 5 — and the score is
// Lat_n + Beta * (SLO_n - Lat_n).
func (d *Dysta) OnArrival(t *sched.Task, _ time.Duration) {
	st := d.lut.MustLookup(t.Key)
	lat := ms(st.AvgTotal)
	slack := ms(t.SLO) - lat
	d.state[t.ID] = &requestState{
		staticScore: lat + d.cfg.Beta*slack,
		pred:        NewPredictor(d.cfg, st),
	}
}

// OnLayerComplete implements sched.Scheduler: the hardware monitor's
// sparsity reading feeds the request's sparse latency predictor (Alg. 2
// line 7, Alg. 3).
func (d *Dysta) OnLayerComplete(t *sched.Task, layer int, monitored float64, _ time.Duration) {
	if t.Done {
		delete(d.state, t.ID)
		return
	}
	if s := d.state[t.ID]; s != nil && d.cfg.DynamicEnabled {
		s.pred.Observe(layer, monitored)
	}
}

// PickNext implements sched.Scheduler: the dynamic level (Alg. 2). Every
// queued request is re-scored with its refined remaining time, slack and
// preemption penalty; the minimum score runs next. With the dynamic level
// disabled, arrival-time static scores order the queue instead.
func (d *Dysta) PickNext(ready []*sched.Task, now time.Duration) *sched.Task {
	best := ready[0]
	bestScore := d.score(best, now, len(ready))
	for _, t := range ready[1:] {
		if sc := d.score(t, now, len(ready)); sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// score computes the request's current score in milliseconds.
func (d *Dysta) score(t *sched.Task, now time.Duration, queueLen int) float64 {
	s := d.state[t.ID]
	if s == nil {
		// Defensive: a task the scheduler never saw arrive sorts last.
		return 1e18
	}
	if !d.cfg.DynamicEnabled {
		return s.staticScore
	}
	// Alg. 2 lines 7-11. Negative slack is clamped to zero so a task that
	// can no longer meet its deadline competes on remaining time instead
	// of hijacking the queue (the EDF overload pathology); the clamp is a
	// documented refinement of the literal Alg. 2 (see DESIGN.md §6).
	remain := ms(s.pred.Remaining(t.NextLayer))
	slack := ms(t.Deadline()-now) - remain
	demotion := 0.0
	if slack < 0 {
		slack = 0
		demotion = d.cfg.DemotionMS
	}
	isol := ms(s.pred.Isolated())
	penalty := 0.0
	if isol > 0 && queueLen > 0 {
		penalty = (ms(t.SinceLastRun(now)) / isol) / float64(queueLen) * d.cfg.PenaltyWeight
	}
	return remain + d.cfg.Eta*(slack+penalty) + demotion
}

// ms converts a duration to float64 milliseconds, the score unit (matching
// the FP16 operand scale of the hardware implementation).
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

var _ sched.Scheduler = (*Dysta)(nil)
