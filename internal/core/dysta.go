package core

import (
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
)

// Dysta is the bi-level scheduler (paper §4.2). It implements
// sched.Scheduler; construct it with New and run it under sched.Run.
//
// Per-request state lives in a task attachment set at arrival, and the
// score components that only change at task events — the predictor's
// refined remaining latency and isolated estimate — are cached there, so
// a scheduling decision is a scan of cheap float arithmetic with no map
// lookups and no predictor evaluations (the IncrementalScheduler fast
// path). The reference PickNext recomputes everything from the predictor
// and must agree bit-for-bit; the equivalence tests enforce this.
type Dysta struct {
	cfg Config
	lut *trace.StatsSet

	// h is the scalable-pick heap (Options.ScalablePick), ordered by
	// (staticScore, ID) when the dynamic level is disabled — the score
	// itself, so the pick is the heap minimum — and by (remainMS, ID)
	// otherwise. remainMS is a provable lower bound of the dynamic score
	// in BOTH regimes: every term the score adds to remain (Eta*slack,
	// Eta*penalty, the demotion constant) is non-negative, and float
	// addition of a non-negative term never rounds below the other
	// operand, so cachedScore(t) >= state(t).remainMS holds in float
	// arithmetic, not just in the reals. PickNextScalable runs a pruned
	// DFS over the heap: the heap property makes every descendant's
	// remainMS >= the node's, so a subtree whose root bound strictly
	// exceeds the best exact score found so far cannot contain the
	// argmin (nor a tie, strictness preserving the min-ID tie-break)
	// and is skipped. Visited nodes are re-scored with cachedScore, so
	// the pick is bit-identical to the reference scan regardless of how
	// much the pruning helps. nil until EnableScalable.
	h *sched.TaskHeap
}

// requestState is the per-request bookkeeping of the dynamic level,
// attached to the task at arrival.
type requestState struct {
	// staticScore is the arrival-time score of the static level (Alg. 1),
	// in milliseconds. It fully determines ordering when the dynamic
	// level is disabled (Dysta-w/o-sparse).
	staticScore float64
	// pred refines remaining-latency estimates from monitored sparsity.
	pred *Predictor
	// remainMS and isolMS cache ms(pred.Remaining(NextLayer)) and
	// ms(pred.Isolated()): they change only when the request executes a
	// layer (NextLayer advances and the predictor observes), so refresh
	// happens there rather than at every scheduling decision.
	remainMS, isolMS float64
}

// New returns a Dysta scheduler over the profiling LUT. It panics on an
// invalid configuration (construction-time programming error).
func New(cfg Config, lut *trace.StatsSet) *Dysta {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Dysta{cfg: cfg, lut: lut}
}

// NewDefault returns Dysta with DefaultConfig.
func NewDefault(lut *trace.StatsSet) *Dysta { return New(DefaultConfig(), lut) }

// NewWithoutSparse returns the Dysta-w/o-sparse ablation (Fig. 13).
func NewWithoutSparse(lut *trace.StatsSet) *Dysta {
	return New(DefaultConfig().WithoutSparse(), lut)
}

// Name implements sched.Scheduler.
func (d *Dysta) Name() string {
	if !d.cfg.DynamicEnabled {
		return "Dysta-w/o-sparse"
	}
	return "Dysta"
}

// Config returns the scheduler's configuration.
func (d *Dysta) Config() Config { return d.cfg }

// state returns the task's attachment, or nil for a task the scheduler
// never saw arrive.
func state(t *sched.Task) *requestState {
	s, _ := t.Attachment.(*requestState)
	return s
}

// heapKey is the scalable heap's ordering key: the score lower bound
// (remainMS, or the exact staticScore without the dynamic level). Tasks
// without state sort last, mirroring cachedScore's defensive 1e18.
func (d *Dysta) heapKey(t *sched.Task) float64 {
	s := state(t)
	if s == nil {
		return 1e18
	}
	if !d.cfg.DynamicEnabled {
		return s.staticScore
	}
	return s.remainMS
}

// EnableScalable implements sched.ScalableScheduler: switch to the
// heap-maintained pick. Must precede the first arrival (the engine calls
// it at construction).
func (d *Dysta) EnableScalable() {
	d.h = sched.NewTaskHeap(func(a, b *sched.Task) bool {
		ka, kb := d.heapKey(a), d.heapKey(b)
		return ka < kb || (ka == kb && a.ID < b.ID)
	})
}

// PickNextScalable implements sched.ScalableScheduler: the exact
// reference argmin via bound-pruned DFS over the heap (see the field
// doc on h for why the pruning cannot change the pick).
func (d *Dysta) PickNextScalable(q *sched.ReadyQueue, now time.Duration) *sched.Task {
	if !d.cfg.DynamicEnabled {
		// The key IS the score: the heap minimum is the reference pick,
		// tie-break included.
		return d.h.Min()
	}
	queueLen := float64(q.Len())
	var best *sched.Task
	bestScore := 0.0
	var walk func(i int)
	walk = func(i int) {
		if i >= d.h.Len() {
			return
		}
		t := d.h.At(i)
		if best != nil && d.heapKey(t) > bestScore {
			return
		}
		sc := d.cachedScore(t, now, queueLen)
		if best == nil || sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return best
}

// refresh re-derives the cached score components from the predictor.
func (s *requestState) refresh(t *sched.Task) {
	s.remainMS = ms(s.pred.Remaining(t.NextLayer))
	s.isolMS = ms(s.pred.Isolated())
}

// OnArrival implements sched.Scheduler: the static level (Alg. 1).
// Lat_n is the LUT's average latency for the model-pattern pair — the
// pattern-aware estimate of line 5 — and the score is
// Lat_n + Beta * (SLO_n - Lat_n).
func (d *Dysta) OnArrival(t *sched.Task, _ time.Duration) {
	st := d.lut.MustLookup(t.Key)
	lat := ms(st.AvgTotal)
	slack := ms(t.SLO) - lat
	s := &requestState{
		staticScore: lat + d.cfg.Beta*slack,
		pred:        NewPredictor(d.cfg, st),
	}
	s.refresh(t)
	t.Attachment = s
	if d.h != nil {
		d.h.Push(t)
	}
}

// OnLayerComplete implements sched.Scheduler: the hardware monitor's
// sparsity reading feeds the request's sparse latency predictor (Alg. 2
// line 7, Alg. 3), and the cached score components are re-derived. A
// completed request's state is released.
func (d *Dysta) OnLayerComplete(t *sched.Task, layer int, monitored float64, _ time.Duration) {
	if t.Done {
		// Release the heap slot before the state it keys on.
		if d.h != nil {
			d.h.Remove(t)
		}
		t.Attachment = nil
		return
	}
	if s := state(t); s != nil {
		if d.cfg.DynamicEnabled {
			s.pred.Observe(layer, monitored)
		}
		s.refresh(t)
		if d.h != nil {
			d.h.Fix(t)
		}
	}
}

// OnExtract implements sched.TaskExtractor: all of Dysta's per-request
// state (static score, predictor) lives in the attachment, and a migrated
// request has executed no layer, so the predictor holds no monitored
// sparsity worth carrying — the adopting engine's OnArrival rebuilds an
// identical fresh state from the LUT.
func (d *Dysta) OnExtract(t *sched.Task, _ time.Duration) {
	if d.h != nil {
		d.h.Remove(t)
	}
	t.Attachment = nil
}

// PickNext implements sched.Scheduler: the dynamic level (Alg. 2). Every
// queued request is re-scored with its refined remaining time, slack and
// preemption penalty; the minimum score runs next. With the dynamic level
// disabled, arrival-time static scores order the queue instead. This is
// the reference implementation: it evaluates the predictor from scratch
// for every task.
func (d *Dysta) PickNext(ready []*sched.Task, now time.Duration) *sched.Task {
	best := ready[0]
	bestScore := d.score(best, now, len(ready))
	for _, t := range ready[1:] {
		if sc := d.score(t, now, len(ready)); sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// PickNextIncremental implements sched.IncrementalScheduler: the same
// argmin as PickNext, computed from the cached score components.
func (d *Dysta) PickNextIncremental(q *sched.ReadyQueue, now time.Duration) *sched.Task {
	tasks := q.Tasks()
	queueLen := float64(len(tasks))
	var best *sched.Task
	var bestScore float64
	for _, t := range tasks {
		sc := d.cachedScore(t, now, queueLen)
		if best == nil || sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// cachedScore is the fast-path score: identical arithmetic to score, with
// the predictor-derived terms read from the attachment cache.
func (d *Dysta) cachedScore(t *sched.Task, now time.Duration, queueLen float64) float64 {
	s := state(t)
	if s == nil {
		return 1e18
	}
	if !d.cfg.DynamicEnabled {
		return s.staticScore
	}
	remain := s.remainMS
	slack := ms(t.Deadline()-now) - remain
	demotion := 0.0
	if slack < 0 {
		slack = 0
		demotion = d.cfg.DemotionMS
	}
	penalty := 0.0
	if s.isolMS > 0 && queueLen > 0 {
		penalty = (ms(t.SinceLastRun(now)) / s.isolMS) / queueLen * d.cfg.PenaltyWeight
	}
	return remain + d.cfg.Eta*(slack+penalty) + demotion
}

// score computes the request's current score in milliseconds from
// scratch (Alg. 2 lines 7-11). Negative slack is clamped to zero so a
// task that can no longer meet its deadline competes on remaining time
// instead of hijacking the queue (the EDF overload pathology); the clamp
// is a documented refinement of the literal Alg. 2 (see DESIGN.md §6).
func (d *Dysta) score(t *sched.Task, now time.Duration, queueLen int) float64 {
	s := state(t)
	if s == nil {
		// Defensive: a task the scheduler never saw arrive sorts last.
		return 1e18
	}
	if !d.cfg.DynamicEnabled {
		return s.staticScore
	}
	remain := ms(s.pred.Remaining(t.NextLayer))
	slack := ms(t.Deadline()-now) - remain
	demotion := 0.0
	if slack < 0 {
		slack = 0
		demotion = d.cfg.DemotionMS
	}
	isol := ms(s.pred.Isolated())
	penalty := 0.0
	if isol > 0 && queueLen > 0 {
		penalty = (ms(t.SinceLastRun(now)) / isol) / float64(queueLen) * d.cfg.PenaltyWeight
	}
	return remain + d.cfg.Eta*(slack+penalty) + demotion
}

// ms converts a duration to float64 milliseconds, the score unit (matching
// the FP16 operand scale of the hardware implementation).
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

var (
	_ sched.IncrementalScheduler = (*Dysta)(nil)
	_ sched.ScalableScheduler    = (*Dysta)(nil)
	_ sched.TaskExtractor        = (*Dysta)(nil)
)
