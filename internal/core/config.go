// Package core implements the paper's primary contribution: Dysta, the
// bi-level dynamic and static scheduler for sparse multi-DNN workloads
// (paper §4), together with its sparse latency predictor (§5.1, Alg. 3).
//
// The two levels map onto the paper's software/hardware split:
//
//   - The static (software) level runs at request arrival (Alg. 1): it
//     looks up the model-info LUT for the request's model-pattern pair and
//     assigns an initial score Lat + beta*(SLO - Lat), balancing
//     shortest-job-first (ANTT) against slack urgency (SLO violations).
//   - The dynamic (hardware) level runs at every layer completion
//     (Alg. 2): a hardware monitor reports the layer's observed sparsity,
//     the sparse latency predictor refines the request's remaining-time
//     estimate, and all queued requests are re-scored as
//     Remain + eta*(Slack + Penalty); the minimum runs next.
//
// The behavioural FP16 hardware implementation of the dynamic level lives
// in internal/hwsched; this package is the algorithmic reference.
package core

import "fmt"

// Strategy selects how the sparsity coefficient gamma aggregates monitored
// layer sparsity (paper §5.1, Table 4).
type Strategy int

const (
	// LastOne derives gamma from the most recently executed layer only —
	// the paper's choice, cheapest in hardware and matching average-all
	// in accuracy.
	LastOne Strategy = iota
	// LastN averages the last N executed layers.
	LastN
	// AverageAll averages every executed layer.
	AverageAll
)

// String returns the strategy name used in Table 4.
func (s Strategy) String() string {
	switch s {
	case LastOne:
		return "last-one"
	case LastN:
		return "last-n"
	case AverageAll:
		return "average-all"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CoeffMode selects the space in which the sparsity coefficient gamma is
// formed. SparsityRatio is the paper's Alg. 3 line 6 (monitored divided by
// average layer sparsity) and the default; DensityRatio forms the
// analogous ratio over non-zero fractions, which can be more stable when
// sparsity sits near zero. Either way the coefficient is mapped to latency
// through the profiled linear model (see Predictor).
type CoeffMode int

const (
	// SparsityRatio is gamma = monitored / average (Alg. 3 line 6).
	SparsityRatio CoeffMode = iota
	// DensityRatio is gamma = (1 - monitored) / (1 - average).
	DensityRatio
)

// String returns the mode name.
func (m CoeffMode) String() string {
	if m == DensityRatio {
		return "density-ratio"
	}
	return "sparsity-ratio"
}

// Config parameterizes Dysta. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// Beta weighs slack in the static score (Alg. 1 line 7). Beta = 0 is
	// pure SJF on profiled averages; Beta = 1 is pure slack ordering.
	Beta float64
	// Eta weighs slack plus penalty in the dynamic score (Alg. 2
	// line 11). Eta = 0 is sparsity-refined SJF; Eta = 1 approaches EDF.
	Eta float64
	// Alpha scales predicted latency by how effectively the hardware
	// turns sparsity into latency reduction (Alg. 3 line 7). The
	// benchmark accelerators support both weight and activation
	// sparsity, so the paper sets Alpha = 1.
	Alpha float64
	// Strategy picks the gamma aggregation (Table 4).
	Strategy Strategy
	// N is the window for the LastN strategy (the paper grid-searches
	// N = 3).
	N int
	// Mode picks the gamma formula (see CoeffMode).
	Mode CoeffMode
	// PenaltyWeight converts the dimensionless preemption penalty
	// (Alg. 2 line 10) into score units (milliseconds).
	PenaltyWeight float64
	// DynamicEnabled switches the second (hardware) level on. Disabling
	// it yields the paper's Dysta-w/o-sparse ablation (Fig. 13): requests
	// keep their static arrival-time scores forever.
	DynamicEnabled bool
	// GammaClamp bounds the sparsity coefficient for robustness against
	// near-zero average densities.
	GammaClamp float64
	// DemotionMS is added to the score of a request whose refined
	// estimate says it can no longer meet its deadline, so that
	// already-lost requests stop delaying feasible ones. A bounded
	// constant (rather than absolute demotion) caps the ANTT damage to
	// the demoted requests. 0 disables. This is a documented refinement
	// of the literal Alg. 2 (DESIGN.md §6).
	DemotionMS float64
	// LiteralAlg3 switches the predictor to the paper's Alg. 3 line 7
	// verbatim: T = Alpha * gamma * Lat_avg (the coefficient scales the
	// average latency proportionally), instead of mapping gamma through
	// the profiled latency-vs-sparsity slopes. On substrates where
	// latency is linear but not proportional in sparsity the literal
	// form mis-tracks (see Table 4's "literal" column); it exists for
	// fidelity comparison.
	LiteralAlg3 bool
}

// DefaultConfig returns the tuned Dysta configuration used across the
// evaluation.
func DefaultConfig() Config {
	return Config{
		Beta:           0.4,
		Eta:            0.05,
		Alpha:          1.0,
		Strategy:       LastOne,
		N:              3,
		Mode:           SparsityRatio,
		PenaltyWeight:  1.0,
		DynamicEnabled: true,
		GammaClamp:     8.0,
		DemotionMS:     1000,
	}
}

// WithoutSparse returns the configuration of the Dysta-w/o-sparse
// ablation: the static software level only.
func (c Config) WithoutSparse() Config {
	c.DynamicEnabled = false
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("core: Beta %v outside [0,1]", c.Beta)
	}
	if c.Eta < 0 || c.Eta > 1 {
		return fmt.Errorf("core: Eta %v outside [0,1]", c.Eta)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("core: Alpha %v not positive", c.Alpha)
	}
	if c.Strategy == LastN && c.N <= 0 {
		return fmt.Errorf("core: LastN strategy with N=%d", c.N)
	}
	if c.GammaClamp <= 1 {
		return fmt.Errorf("core: GammaClamp %v must exceed 1", c.GammaClamp)
	}
	return nil
}
