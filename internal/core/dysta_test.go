package core

import (
	"testing"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// synthLUT builds a StatsSet whose averages equal the given traces.
func synthLUT(t *testing.T, entries map[trace.Key][]trace.SampleTrace) *trace.StatsSet {
	t.Helper()
	store := trace.NewStore()
	for k, trs := range entries {
		store.Add(k, trs)
	}
	set, err := trace.NewStatsSet(store)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// uniformTrace builds a trace with equal per-layer latency and sparsity.
func uniformTrace(layerLat time.Duration, layers int, sp float64) trace.SampleTrace {
	tr := trace.SampleTrace{
		LayerLatency:  make([]time.Duration, layers),
		LayerSparsity: make([]float64, layers),
	}
	for i := range tr.LayerLatency {
		tr.LayerLatency[i] = layerLat
		tr.LayerSparsity[i] = sp
	}
	return tr
}

func req(id int, k trace.Key, tr trace.SampleTrace, arrival time.Duration, sloMult float64) *workload.Request {
	return &workload.Request{
		ID: id, Key: k, Trace: tr, Arrival: arrival,
		SLO: time.Duration(float64(tr.Total()) * sloMult),
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Beta = 7
	New(cfg, nil)
}

func TestNames(t *testing.T) {
	lut := synthLUT(t, map[trace.Key][]trace.SampleTrace{})
	if got := NewDefault(lut).Name(); got != "Dysta" {
		t.Errorf("Name = %q", got)
	}
	if got := NewWithoutSparse(lut).Name(); got != "Dysta-w/o-sparse" {
		t.Errorf("ablation Name = %q", got)
	}
}

// TestStaticScoreOrdering checks Alg. 1: with beta between 0 and 1, a
// short job with a loose SLO and a long job with a tight SLO trade places
// as beta moves.
func TestStaticScoreOrdering(t *testing.T) {
	kShort := trace.Key{Model: "short", Pattern: sparsity.Dense}
	kLong := trace.Key{Model: "long", Pattern: sparsity.Dense}
	shortTr := uniformTrace(time.Millisecond, 2, 0.5)   // 2ms isolated
	longTr := uniformTrace(10*time.Millisecond, 5, 0.5) // 50ms isolated
	lut := synthLUT(t, map[trace.Key][]trace.SampleTrace{
		kShort: {shortTr}, kLong: {longTr},
	})
	// Short job, huge slack; long job, nearly no slack.
	shortReq := req(0, kShort, shortTr, 0, 1000)
	longReq := req(1, kLong, longTr, 0, 1.01)

	// Behavioural check: beta=0 (pure SJF) runs the short job first;
	// beta=1 (pure slack) runs the tight-deadline long job first.
	runOrder := func(beta float64) (shortFirst bool) {
		cfg := DefaultConfig().WithoutSparse()
		cfg.Beta = beta
		d := New(cfg, lut)
		res, err := sched.Run(d, []*workload.Request{shortReq, longReq}, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// If the short job ran first its turnaround is its isolated 2ms
		// (NTT 1); otherwise it waited 50ms (NTT 26). ANTT separates the
		// two orders decisively.
		return res.ANTT < 5
	}
	if !runOrder(0) {
		t.Error("beta=0 did not run the short job first")
	}
	if runOrder(1) {
		t.Error("beta=1 did not prioritize the tight-deadline job")
	}
}

// TestDynamicRefinement checks Alg. 2+3 end to end: two requests of the
// same model, one truly fast (sparser than average) and one truly slow.
// After one layer of each, sparsity-aware Dysta finishes the truly fast
// one first, while the static ablation cannot tell them apart.
func TestDynamicRefinement(t *testing.T) {
	k := trace.Key{Model: "m", Pattern: sparsity.Dense}
	// Profiling set with sparsity-latency variation so the LUT learns the
	// slope: 10ms/layer at s=0.5 and 6ms/layer at s=0.7 (slope -20ms per
	// unit sparsity; average 8ms at s=0.6).
	lut := synthLUT(t, map[trace.Key][]trace.SampleTrace{
		k: {uniformTrace(10*time.Millisecond, 6, 0.5), uniformTrace(6*time.Millisecond, 6, 0.7)},
	})
	fast := uniformTrace(4*time.Millisecond, 6, 0.8)  // sparser => faster
	slow := uniformTrace(16*time.Millisecond, 6, 0.2) // denser => slower
	// Arrive together with identical absolute SLOs (as in the benchmark,
	// SLOs are per task type, not per sample). The slow job gets the
	// lower ID so that a scheduler without sparsity information (which
	// sees two identical profiles and tie-breaks on ID) runs it first —
	// only monitored sparsity can reveal the better order.
	slowReq := &workload.Request{ID: 0, Key: k, Trace: slow, SLO: 5 * time.Second}
	fastReq := &workload.Request{ID: 1, Key: k, Trace: fast, SLO: 5 * time.Second}

	cfg := DefaultConfig()
	cfg.Eta = 0 // isolate the SJF component
	res, err := sched.Run(New(cfg, lut), []*workload.Request{slowReq, fastReq}, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resAblate, err := sched.Run(NewWithoutSparse(lut), []*workload.Request{slowReq, fastReq}, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The ablation runs the slow job to completion first (ANTT 3.0);
	// sparsity-aware Dysta observes the slow job's first layer, predicts
	// it is the longer one, and switches (ANTT ~1.46).
	if res.ANTT >= resAblate.ANTT {
		t.Errorf("sparsity-aware ANTT %.3f not below ablation %.3f", res.ANTT, resAblate.ANTT)
	}
	if res.Preemptions == 0 {
		t.Error("dynamic level never acted on the monitored sparsity")
	}
}

// TestPenaltyReducesPreemptions checks the Alg. 2 line 10 term: raising
// the penalty weight must not increase preemption count.
func TestPenaltyReducesPreemptions(t *testing.T) {
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 30, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(sc, eval, workload.GenConfig{
		Requests: 200, RatePerSec: 35, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(pw float64) int {
		cfg := DefaultConfig()
		cfg.PenaltyWeight = pw
		res, err := sched.Run(New(cfg, lut), reqs, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Preemptions
	}
	low, high := run(0), run(500)
	// The penalty discourages switching away from the recently executed
	// request; a strong weight must not inflate preemptions (small-count
	// noise tolerance of 5%).
	if float64(high) > float64(low)*1.05 {
		t.Errorf("penalty weight 500 produced more preemptions (%d) than 0 (%d)", high, low)
	}
}

// TestDystaEndToEnd runs the full multi-AttNN pipeline and checks the
// paper's headline ordering (Table 5 shape): Dysta matches or beats SJF on
// ANTT while cutting violations, and beats the static ablation on ANTT.
func TestDystaEndToEnd(t *testing.T) {
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 50, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		t.Fatal(err)
	}
	est := sched.NewEstimator(lut)
	reqs, err := workload.Generate(sc, eval, workload.GenConfig{
		Requests: 400, RatePerSec: 30, SLOMultiplier: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	run := func(s sched.Scheduler) sched.Result {
		res, err := sched.Run(s, reqs, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dysta := run(NewDefault(lut))
	sjf := run(sched.NewSJF(est))
	fcfs := run(sched.NewFCFS())

	if dysta.ANTT > sjf.ANTT*1.10 {
		t.Errorf("Dysta ANTT %.3f more than 10%% above SJF %.3f", dysta.ANTT, sjf.ANTT)
	}
	if dysta.ViolationRate > sjf.ViolationRate+1e-9 {
		t.Errorf("Dysta violations %.3f above SJF %.3f", dysta.ViolationRate, sjf.ViolationRate)
	}
	if dysta.ANTT >= fcfs.ANTT {
		t.Errorf("Dysta ANTT %.3f not below FCFS %.3f", dysta.ANTT, fcfs.ANTT)
	}
}

func TestScoreForUnknownTask(t *testing.T) {
	lut := synthLUT(t, map[trace.Key][]trace.SampleTrace{})
	d := NewDefault(lut)
	// A task the scheduler never saw must sort last, not crash.
	unknown := &sched.Task{ID: 99}
	if sc := d.score(unknown, 0, 1); sc < 1e17 {
		t.Errorf("unknown task scored %v", sc)
	}
}
