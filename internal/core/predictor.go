package core

import (
	"time"

	"sparsedysta/internal/stats"
	"sparsedysta/internal/trace"
)

// Predictor is the sparse latency predictor of paper §5.1 (Alg. 3) for one
// in-flight request.
//
// The hardware monitor reports each completed layer's observed sparsity.
// The predictor maintains the sparsity coefficient gamma — the ratio of
// monitored to average layer sparsity, aggregated by the configured
// strategy (Alg. 3 line 6, Table 4) — and maps it to latency through the
// linear model the paper motivates from the inter-layer correlation of
// Fig. 9 ("monitor the layer sparsity at runtime and adopt a linear model
// for sparse latency prediction"):
//
//	s_hat[l]  = gamma * AvgSparsity[l]                  (future layers)
//	T_remain  = Alpha * ( AvgRemaining(next)
//	                    + (gamma-1) * SensitivityRemaining(next) )
//
// where the per-layer latency-vs-sparsity slopes inside
// SensitivityRemaining come from the offline profiling LUTs (the "shape"
// LUT of the hardware design, §5.2.1). With CoeffMode DensityRatio the
// same construction is applied in density space.
type Predictor struct {
	cfg   Config
	stats *trace.Stats
	// gamma is the current coefficient under the configured strategy,
	// maintained incrementally by Observe so Gamma — and therefore every
	// score the scheduler computes — is O(1) regardless of how many
	// layers have executed.
	gamma float64
	// count is the number of observed layers.
	count int
	// sum is the running sum of all ratios (AverageAll). Ratios are
	// accumulated in execution order, so the mean is bit-identical to a
	// from-scratch summation over the history.
	sum float64
	// window is a chronological ring buffer of the last cfg.N ratios
	// (LastN only; allocated lazily), with wpos the slot the next ratio
	// overwrites — i.e. the oldest entry once the window has filled.
	window []float64
	wpos   int
}

// NewPredictor returns a Predictor over the LUT entry for the request's
// model-pattern pair.
func NewPredictor(cfg Config, st *trace.Stats) *Predictor {
	return &Predictor{cfg: cfg, stats: st, gamma: 1}
}

// Observe records the hardware monitor's sparsity reading for a completed
// layer and folds it into the running gamma aggregate (Alg. 3 line 6).
func (p *Predictor) Observe(layer int, monitored float64) {
	avg := p.stats.AvgLayerSparsity[layer]
	var ratio float64
	switch p.cfg.Mode {
	case DensityRatio:
		ratio = safeRatio(1-monitored, 1-avg, p.cfg.GammaClamp)
	default: // SparsityRatio, the paper's Alg. 3 line 6
		ratio = safeRatio(monitored, avg, p.cfg.GammaClamp)
	}
	p.count++
	switch p.cfg.Strategy {
	case AverageAll:
		p.sum += ratio
		p.gamma = p.sum / float64(p.count)
	case LastN:
		if p.window == nil {
			p.window = make([]float64, p.cfg.N)
		}
		p.window[p.wpos] = ratio
		p.wpos = (p.wpos + 1) % p.cfg.N
		// Mean over the window in chronological order: once full, the
		// oldest entry sits at wpos.
		n := p.count
		if n > p.cfg.N {
			n = p.cfg.N
		}
		start := 0
		if p.count >= p.cfg.N {
			start = p.wpos
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += p.window[(start+i)%p.cfg.N]
		}
		p.gamma = sum / float64(n)
	default: // LastOne
		p.gamma = ratio
	}
}

// safeRatio returns num/den clamped to [1/clamp, clamp], treating a
// degenerate denominator as ratio 1.
func safeRatio(num, den, clamp float64) float64 {
	if den <= 1e-9 {
		return 1
	}
	return stats.Clamp(num/den, 1/clamp, clamp)
}

// Gamma returns the current sparsity coefficient under the configured
// strategy; 1 before any observation. O(1): the aggregate is maintained
// by Observe.
func (p *Predictor) Gamma() float64 { return p.gamma }

// predict maps the current gamma through the linear latency model for the
// given base latency and sensitivity (or scales the base proportionally
// under LiteralAlg3). Results are floored at a small fraction of the base
// to stay physical under extreme coefficients.
func (p *Predictor) predict(base time.Duration, sensitivity float64) time.Duration {
	var est float64
	if p.cfg.LiteralAlg3 {
		est = p.cfg.Alpha * p.Gamma() * float64(base)
	} else {
		est = p.cfg.Alpha * (float64(base) + (p.Gamma()-1)*sensitivity)
	}
	if floor := 0.05 * float64(base); est < floor {
		est = floor
	}
	return time.Duration(est)
}

// Remaining predicts the latency of layers nextLayer..end.
func (p *Predictor) Remaining(nextLayer int) time.Duration {
	base := p.stats.AvgRemaining(nextLayer)
	if base == 0 {
		return 0
	}
	return p.predict(base, p.sensitivity(nextLayer))
}

// Isolated predicts the request's end-to-end isolated latency with the
// current coefficient.
func (p *Predictor) Isolated() time.Duration {
	return p.predict(p.stats.AvgTotal, p.sensitivity(0))
}

// sensitivity selects the suffix sensitivity for the configured
// coefficient space.
func (p *Predictor) sensitivity(from int) float64 {
	if p.cfg.Mode == DensityRatio {
		return p.stats.SensitivityRemainingDensity(from)
	}
	return p.stats.SensitivityRemaining(from)
}

// Observations returns how many layers have been observed.
func (p *Predictor) Observations() int { return p.count }

// PredictorError quantifies one prediction-vs-truth comparison of the
// Table 4 evaluation.
type PredictorError struct {
	// RMSE is the root-mean-square error of predicted remaining latency
	// in seconds, over all (sample, layer-position) pairs.
	RMSE float64
	// NormalizedRMSE divides by the mean isolated latency, making values
	// comparable across accelerators with different absolute scales.
	NormalizedRMSE float64
	// Samples and Points count the traces and prediction points used.
	Samples, Points int
}

// EvaluatePredictor replays traces through the predictor, predicting the
// remaining latency after each executed layer and comparing against ground
// truth — the paper's Table 4 experiment. The stats must come from a
// profiling set disjoint from the evaluated traces.
func EvaluatePredictor(cfg Config, st *trace.Stats, traces []trace.SampleTrace) PredictorError {
	var preds, truths []float64
	var meanIso float64
	for i := range traces {
		tr := &traces[i]
		p := NewPredictor(cfg, st)
		meanIso += tr.Total().Seconds()
		// After executing layer l (observing its sparsity), predict the
		// latency of layers l+1..end.
		for l := 0; l+1 < tr.NumLayers(); l++ {
			p.Observe(l, tr.LayerSparsity[l])
			preds = append(preds, p.Remaining(l+1).Seconds())
			truths = append(truths, tr.Remaining(l+1).Seconds())
		}
	}
	if len(preds) == 0 {
		return PredictorError{Samples: len(traces)}
	}
	rmse := stats.RMSE(preds, truths)
	meanIso /= float64(len(traces))
	norm := 0.0
	if meanIso > 0 {
		norm = rmse / meanIso
	}
	return PredictorError{
		RMSE:           rmse,
		NormalizedRMSE: norm,
		Samples:        len(traces),
		Points:         len(preds),
	}
}
