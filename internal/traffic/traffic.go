// Package traffic provides the deterministic arrival processes behind
// workload generation: stationary Poisson (the MLPerf-server default the
// paper evaluates under), Markov-modulated Poisson bursts, diurnal rate
// curves, and replay of recorded arrival traces.
//
// Determinism contract: a Process draws every deviate it needs inline
// from the *rng.Source passed to Next, in a fixed order, and keeps no
// hidden randomness of its own. Generation therefore consumes the
// workload seed's stream exactly as the pre-extraction Poisson loop did
// — Poisson.Next performs the identical single Exp draw, so
// traffic=poisson reproduces historical arrival streams byte-for-byte —
// and a stateful process (MMPP phase, replay cursor, thinning clock) is
// returned to its initial state by Reset, so one instance can drive
// several runs reproducibly. Rate-modulated processes (Diurnal,
// Schedule) use Lewis-Shedler thinning: candidate gaps are drawn at the
// peak rate and accepted with probability rate(t)/peak, two draws per
// candidate, which keeps the stream position a deterministic function of
// the accepted arrivals alone.
package traffic

import (
	"fmt"
	"math"
	"time"

	"sparsedysta/internal/rng"
)

// Process generates request inter-arrival gaps. Implementations must be
// deterministic: the same Source state and arrival clock always produce
// the same gap, with all randomness drawn from r in a fixed order.
type Process interface {
	// Name identifies the process in results and experiment tables.
	Name() string
	// Validate reports a configuration error before generation starts.
	Validate() error
	// Reset returns the process to its initial state (phase, cursor,
	// thinning clock) without consuming randomness, so the next stream
	// starts from scratch.
	Reset()
	// Next returns the gap from the arrival at now to the next arrival,
	// drawing every deviate it needs from r.
	Next(r *rng.Source, now time.Duration) time.Duration
}

// expGap draws one exponential inter-arrival gap at rate arrivals/s —
// the single draw the historical workload.Generate loop performed.
func expGap(r *rng.Source, rate float64) time.Duration {
	return time.Duration(r.Exp(rate) * float64(time.Second))
}

// Poisson is the stationary Poisson process: independent exponential
// gaps at a constant rate. This is the process extracted from
// workload.Generate, bit-identical to the pre-extraction loop under the
// same seed.
type Poisson struct {
	// Rate is the arrival rate in requests per second.
	Rate float64
}

// NewPoisson returns a stationary Poisson process at rate arrivals/s.
func NewPoisson(rate float64) *Poisson { return &Poisson{Rate: rate} }

// Name implements Process.
func (*Poisson) Name() string { return "poisson" }

// Validate implements Process.
func (p *Poisson) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("traffic: non-positive poisson rate %v", p.Rate)
	}
	return nil
}

// Reset implements Process (Poisson is memoryless; nothing to reset).
func (*Poisson) Reset() {}

// Next implements Process.
func (p *Poisson) Next(r *rng.Source, _ time.Duration) time.Duration {
	return expGap(r, p.Rate)
}

// MMPP is a two-phase Markov-modulated Poisson process: arrivals follow
// a Poisson process whose rate switches between a quiet and a burst
// phase, with exponentially distributed phase dwell times. The classic
// minimal model of bursty serving traffic: the long-run mean rate is
//
//	(QuietRate*MeanQuiet + BurstRate*MeanBurst) / (MeanQuiet + MeanBurst)
//
// while the instantaneous rate is always one of the two extremes.
type MMPP struct {
	// QuietRate and BurstRate are the per-phase arrival rates in
	// requests per second (BurstRate > QuietRate for a bursty process,
	// though the model does not require it).
	QuietRate, BurstRate float64
	// MeanQuiet and MeanBurst are the mean phase dwell times.
	MeanQuiet, MeanBurst time.Duration

	// Phase state: the process starts in the quiet phase with the dwell
	// drawn lazily on the first Next, so that construction and Reset
	// consume no randomness.
	burst    bool
	started  bool
	phaseEnd time.Duration
}

// Bursty returns an MMPP with the given long-run mean rate and
// burst-to-quiet rate ratio, spending burstFrac of the time in bursts of
// mean length meanBurst. Solving the mean-rate identity for the quiet
// rate: quiet = mean / (1 - burstFrac + burstFrac*burst).
func Bursty(mean, burst, burstFrac float64, meanBurst time.Duration) *MMPP {
	quiet := mean / (1 - burstFrac + burstFrac*burst)
	var meanQuiet time.Duration
	if burstFrac > 0 {
		meanQuiet = time.Duration(float64(meanBurst) * (1 - burstFrac) / burstFrac)
	}
	return &MMPP{
		QuietRate: quiet,
		BurstRate: quiet * burst,
		MeanQuiet: meanQuiet,
		MeanBurst: meanBurst,
	}
}

// Name implements Process.
func (*MMPP) Name() string { return "mmpp" }

// Validate implements Process.
func (m *MMPP) Validate() error {
	if m.QuietRate <= 0 || m.BurstRate <= 0 {
		return fmt.Errorf("traffic: non-positive mmpp rates (quiet %v, burst %v)", m.QuietRate, m.BurstRate)
	}
	if m.MeanQuiet <= 0 || m.MeanBurst <= 0 {
		return fmt.Errorf("traffic: non-positive mmpp dwell times (quiet %v, burst %v)", m.MeanQuiet, m.MeanBurst)
	}
	return nil
}

// Reset implements Process: back to the quiet phase with no dwell drawn.
func (m *MMPP) Reset() {
	m.burst = false
	m.started = false
	m.phaseEnd = 0
}

// rate returns the arrival rate of the current phase.
func (m *MMPP) rate() float64 {
	if m.burst {
		return m.BurstRate
	}
	return m.QuietRate
}

// dwell returns the mean dwell time of the current phase.
func (m *MMPP) dwell() time.Duration {
	if m.burst {
		return m.MeanBurst
	}
	return m.MeanQuiet
}

// Next implements Process by competing exponentials: a candidate arrival
// gap at the current phase's rate races the end of the phase. A
// candidate landing past the phase boundary is discarded — the Poisson
// process is memoryless, so redrawing from the boundary is exact, not an
// approximation — the phase toggles, and a fresh dwell is drawn.
func (m *MMPP) Next(r *rng.Source, now time.Duration) time.Duration {
	t := now
	if !m.started {
		m.started = true
		m.phaseEnd = t + time.Duration(r.Exp(1/m.dwell().Seconds())*float64(time.Second))
	}
	for {
		if gap := expGap(r, m.rate()); t+gap <= m.phaseEnd {
			return t + gap - now
		}
		t = m.phaseEnd
		m.burst = !m.burst
		m.phaseEnd = t + time.Duration(r.Exp(1/m.dwell().Seconds())*float64(time.Second))
	}
}

// rateCurve is a time-varying arrival-rate function with a known peak,
// shared by the thinned (Lewis-Shedler) processes.
type rateCurve interface {
	rateAt(t time.Duration) float64
	peak() float64
}

// nextThinned draws the next arrival of an inhomogeneous Poisson process
// by thinning: candidates arrive at the peak rate and are accepted with
// probability rateAt(t)/peak. Two draws per candidate, deterministic in
// the accepted stream.
func nextThinned(r *rng.Source, c rateCurve, now time.Duration) time.Duration {
	peak := c.peak()
	t := now
	for {
		t += expGap(r, peak)
		if r.Float64()*peak <= c.rateAt(t) {
			return t - now
		}
	}
}

// Diurnal is a sinusoidal rate curve: the classic day/night load cycle,
//
//	rate(t) = Base * (1 + Amplitude*sin(2*pi*t/Period + Phase))
//
// so the long-run mean rate over whole periods is Base and the peak is
// Base*(1+Amplitude).
type Diurnal struct {
	// Base is the mean arrival rate in requests per second.
	Base float64
	// Amplitude in [0, 1) scales the swing around Base.
	Amplitude float64
	// Period is the length of one cycle of virtual time.
	Period time.Duration
	// Phase offsets the cycle in radians (0 starts at the mean, rising).
	Phase float64
}

// Name implements Process.
func (*Diurnal) Name() string { return "diurnal" }

// Validate implements Process.
func (d *Diurnal) Validate() error {
	if d.Base <= 0 {
		return fmt.Errorf("traffic: non-positive diurnal base rate %v", d.Base)
	}
	if d.Amplitude < 0 || d.Amplitude >= 1 {
		return fmt.Errorf("traffic: diurnal amplitude %v outside [0, 1)", d.Amplitude)
	}
	if d.Period <= 0 {
		return fmt.Errorf("traffic: non-positive diurnal period %v", d.Period)
	}
	return nil
}

// Reset implements Process (the curve is a pure function of the clock).
func (*Diurnal) Reset() {}

func (d *Diurnal) rateAt(t time.Duration) float64 {
	return d.Base * (1 + d.Amplitude*math.Sin(2*math.Pi*t.Seconds()/d.Period.Seconds()+d.Phase))
}

func (d *Diurnal) peak() float64 { return d.Base * (1 + d.Amplitude) }

// Next implements Process via thinning against the peak rate.
func (d *Diurnal) Next(r *rng.Source, now time.Duration) time.Duration {
	return nextThinned(r, d, now)
}

// ScheduleStep is one segment of a piecewise rate schedule.
type ScheduleStep struct {
	// Dur is the segment length.
	Dur time.Duration
	// Scale multiplies the schedule's base rate during the segment.
	Scale float64
}

// Schedule is a piecewise-constant rate curve: the segments repeat
// cyclically, each scaling the base rate — an operator-legible
// alternative to the sinusoid (e.g. "2x for 30s every 5min").
type Schedule struct {
	// Base is the rate in requests per second that Scale multiplies.
	Base float64
	// Steps are the repeating segments, in order.
	Steps []ScheduleStep
}

// Name implements Process.
func (*Schedule) Name() string { return "schedule" }

// Validate implements Process.
func (s *Schedule) Validate() error {
	if s.Base <= 0 {
		return fmt.Errorf("traffic: non-positive schedule base rate %v", s.Base)
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("traffic: schedule has no steps")
	}
	for i, st := range s.Steps {
		if st.Dur <= 0 {
			return fmt.Errorf("traffic: schedule step %d has non-positive duration %v", i, st.Dur)
		}
		if st.Scale <= 0 {
			return fmt.Errorf("traffic: schedule step %d has non-positive scale %v", i, st.Scale)
		}
	}
	return nil
}

// Reset implements Process (the curve is a pure function of the clock).
func (*Schedule) Reset() {}

func (s *Schedule) total() time.Duration {
	var total time.Duration
	for _, st := range s.Steps {
		total += st.Dur
	}
	return total
}

func (s *Schedule) rateAt(t time.Duration) float64 {
	t %= s.total()
	for _, st := range s.Steps {
		if t < st.Dur {
			return s.Base * st.Scale
		}
		t -= st.Dur
	}
	return s.Base * s.Steps[len(s.Steps)-1].Scale
}

func (s *Schedule) peak() float64 {
	max := s.Steps[0].Scale
	for _, st := range s.Steps[1:] {
		if st.Scale > max {
			max = st.Scale
		}
	}
	return s.Base * max
}

// Next implements Process via thinning against the peak rate.
func (s *Schedule) Next(r *rng.Source, now time.Duration) time.Duration {
	return nextThinned(r, s, now)
}
