package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"sparsedysta/internal/rng"
)

// Arrival-trace CSV layout, following the internal/trace conventions
// (header row, strict validation, fmt-prefixed errors): one row per
// request with columns
//
//	request, arrival_ns
//
// ordered by request index with non-decreasing arrival times, which is
// how WriteArrivalsCSV emits them.

var arrivalsHeader = []string{"request", "arrival_ns"}

// WriteArrivalsCSV writes one arrival per row, in order.
func WriteArrivalsCSV(w io.Writer, arrivals []time.Duration) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(arrivalsHeader); err != nil {
		return fmt.Errorf("traffic: writing header: %w", err)
	}
	for i, at := range arrivals {
		rec := []string{strconv.Itoa(i), strconv.FormatInt(int64(at), 10)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("traffic: writing arrival %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadArrivalsCSV parses a file written by WriteArrivalsCSV.
func ReadArrivalsCSV(r io.Reader) ([]time.Duration, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(arrivalsHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("traffic: reading header: %w", err)
	}
	for i, want := range arrivalsHeader {
		if header[i] != want {
			return nil, fmt.Errorf("traffic: header column %d is %q, want %q", i, header[i], want)
		}
	}

	var arrivals []time.Duration
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traffic: reading row: %w", err)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("traffic: bad request index %q: %w", rec[0], err)
		}
		if idx != len(arrivals) {
			return nil, fmt.Errorf("traffic: row out of order: request %d after %d rows", idx, len(arrivals))
		}
		ns, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: bad arrival %q: %w", rec[1], err)
		}
		at := time.Duration(ns)
		if at < 0 {
			return nil, fmt.Errorf("traffic: negative arrival %v at request %d", at, idx)
		}
		if n := len(arrivals); n > 0 && at < arrivals[n-1] {
			return nil, fmt.Errorf("traffic: arrival %v at request %d before previous %v", at, idx, arrivals[n-1])
		}
		arrivals = append(arrivals, at)
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("traffic: file has no data rows")
	}
	return arrivals, nil
}

// Replay replays a recorded sequence of inter-arrival gaps, cycling when
// the recording is shorter than the requested stream. It consumes no
// randomness: the replayed stream is a pure function of the recording.
type Replay struct {
	// Source names the recording in results (e.g. the file it came from).
	Source string
	// Gaps are the inter-arrival gaps, in order.
	Gaps []time.Duration

	next int
}

// NewReplay returns a replay of the given recorded arrival times: the
// replayed gaps are the successive differences (the first arrival's
// offset from zero is the first gap).
func NewReplay(source string, arrivals []time.Duration) *Replay {
	gaps := make([]time.Duration, len(arrivals))
	var prev time.Duration
	for i, at := range arrivals {
		gaps[i] = at - prev
		prev = at
	}
	return &Replay{Source: source, Gaps: gaps}
}

// LoadReplay reads an arrival-trace CSV from path and returns its replay.
func LoadReplay(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	defer f.Close()
	arrivals, err := ReadArrivalsCSV(f)
	if err != nil {
		return nil, err
	}
	return NewReplay(path, arrivals), nil
}

// Name implements Process.
func (*Replay) Name() string { return "replay" }

// Validate implements Process.
func (p *Replay) Validate() error {
	if len(p.Gaps) == 0 {
		return fmt.Errorf("traffic: replay %q has no recorded gaps", p.Source)
	}
	for i, g := range p.Gaps {
		if g < 0 {
			return fmt.Errorf("traffic: replay %q has negative gap %v at %d", p.Source, g, i)
		}
	}
	return nil
}

// Reset implements Process: back to the start of the recording.
func (p *Replay) Reset() { p.next = 0 }

// Next implements Process, cycling through the recorded gaps.
func (p *Replay) Next(_ *rng.Source, _ time.Duration) time.Duration {
	g := p.Gaps[p.next]
	p.next = (p.next + 1) % len(p.Gaps)
	return g
}
