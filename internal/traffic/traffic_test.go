package traffic

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"sparsedysta/internal/rng"
)

// stream generates n arrivals from a fresh copy of the process.
func stream(t *testing.T, p Process, seed uint64, n int) []time.Duration {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	p.Reset()
	r := rng.New(seed)
	out := make([]time.Duration, n)
	var now time.Duration
	for i := range out {
		gap := p.Next(r, now)
		if gap < 0 {
			t.Fatalf("%s: negative gap %v at %d", p.Name(), gap, i)
		}
		now += gap
		out[i] = now
	}
	return out
}

// meanRate returns the empirical arrival rate of a stream.
func meanRate(arrivals []time.Duration) float64 {
	return float64(len(arrivals)) / arrivals[len(arrivals)-1].Seconds()
}

// TestPoissonMatchesInlineExp pins the extraction contract: Poisson.Next
// is the exact draw the pre-extraction workload.Generate loop performed,
// so the stream positions (and with them every later sampling draw) are
// unchanged.
func TestPoissonMatchesInlineExp(t *testing.T) {
	const rate = 30.0
	p := NewPoisson(rate)
	a, b := rng.New(7), rng.New(7)
	var now time.Duration
	for i := 0; i < 1000; i++ {
		got := p.Next(a, now)
		want := time.Duration(b.Exp(rate) * float64(time.Second))
		if got != want {
			t.Fatalf("draw %d: Poisson.Next = %v, inline loop = %v", i, got, want)
		}
		now += got
	}
	if au, bu := a.Uint64(), b.Uint64(); au != bu {
		t.Fatalf("stream positions diverged: %d vs %d", au, bu)
	}
}

// TestProcessDeterminism checks that every process replays its stream
// exactly after Reset, from the same source seed.
func TestProcessDeterminism(t *testing.T) {
	procs := []Process{
		NewPoisson(30),
		Bursty(30, 8, 0.2, 500*time.Millisecond),
		&Diurnal{Base: 30, Amplitude: 0.7, Period: 10 * time.Second},
		&Schedule{Base: 30, Steps: []ScheduleStep{{Dur: time.Second, Scale: 1}, {Dur: 500 * time.Millisecond, Scale: 3}}},
		NewReplay("synthetic", []time.Duration{time.Millisecond, 3 * time.Millisecond, 10 * time.Millisecond}),
	}
	for _, p := range procs {
		first := stream(t, p, 11, 500)
		second := stream(t, p, 11, 500)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: stream not reproducible after Reset", p.Name())
		}
	}
}

// TestBurstyMeanRate checks the Bursty parameterization: the long-run
// empirical rate stays near the nominal mean even though the
// instantaneous rate alternates between quiet and burst extremes.
func TestBurstyMeanRate(t *testing.T) {
	const mean = 50.0
	p := Bursty(mean, 8, 0.2, 500*time.Millisecond)
	arrivals := stream(t, p, 3, 60000)
	if got := meanRate(arrivals); math.Abs(got-mean)/mean > 0.08 {
		t.Fatalf("empirical rate %.2f, want ~%.2f", got, mean)
	}
	if p.BurstRate <= p.QuietRate {
		t.Fatalf("burst rate %v not above quiet rate %v", p.BurstRate, p.QuietRate)
	}
}

// TestMMPPBurstierThanPoisson checks that MMPP arrivals are actually
// burstier: the coefficient of variation of the gaps must exceed the
// exponential's 1.
func TestMMPPBurstierThanPoisson(t *testing.T) {
	p := Bursty(50, 8, 0.2, 500*time.Millisecond)
	arrivals := stream(t, p, 5, 20000)
	var sum, sumSq float64
	prev := time.Duration(0)
	for _, at := range arrivals {
		g := (at - prev).Seconds()
		sum += g
		sumSq += g * g
		prev = at
	}
	n := float64(len(arrivals))
	meanGap := sum / n
	cv := math.Sqrt(sumSq/n-meanGap*meanGap) / meanGap
	if cv < 1.2 {
		t.Fatalf("gap coefficient of variation %.2f, want > 1.2 (Poisson is 1.0)", cv)
	}
}

// TestDiurnalMeanRate checks that thinning preserves the base rate over
// whole periods and that arrivals concentrate in the high-rate half.
func TestDiurnalMeanRate(t *testing.T) {
	const base = 40.0
	period := 10 * time.Second
	p := &Diurnal{Base: base, Amplitude: 0.7, Period: period}
	arrivals := stream(t, p, 9, 40000)
	// Truncate to whole periods so the sinusoid integrates to zero.
	whole := arrivals[:0:0]
	last := arrivals[len(arrivals)-1] / period * period
	for _, at := range arrivals {
		if at < last {
			whole = append(whole, at)
		}
	}
	got := float64(len(whole)) / last.Seconds()
	if math.Abs(got-base)/base > 0.05 {
		t.Fatalf("empirical rate %.2f, want ~%.2f", got, base)
	}
	// First half of each period (sin > 0) must carry more arrivals.
	var high int
	for _, at := range whole {
		if at%period < period/2 {
			high++
		}
	}
	if frac := float64(high) / float64(len(whole)); frac < 0.6 {
		t.Fatalf("high-rate half carries %.0f%% of arrivals, want > 60%%", 100*frac)
	}
}

// TestScheduleRates pins the piecewise curve: rate lookup inside each
// segment, cyclic repetition, and the peak used for thinning.
func TestScheduleRates(t *testing.T) {
	s := &Schedule{Base: 10, Steps: []ScheduleStep{
		{Dur: 2 * time.Second, Scale: 1},
		{Dur: time.Second, Scale: 4},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10},
		{1900 * time.Millisecond, 10},
		{2 * time.Second, 40},
		{2900 * time.Millisecond, 40},
		{3 * time.Second, 10}, // wrapped into the next cycle
		{5 * time.Second, 40},
	}
	for _, c := range cases {
		if got := s.rateAt(c.at); got != c.want {
			t.Errorf("rateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := s.peak(); got != 40 {
		t.Errorf("peak = %v, want 40", got)
	}
}

// TestReplayCycles checks gap reconstruction from arrivals and cycling
// past the end of the recording.
func TestReplayCycles(t *testing.T) {
	rec := []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 6 * time.Millisecond}
	p := NewReplay("synthetic", rec)
	arrivals := stream(t, p, 1, 7)
	want := []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 6 * time.Millisecond,
		8 * time.Millisecond, 11 * time.Millisecond, 12 * time.Millisecond,
		14 * time.Millisecond,
	}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("replayed arrivals %v, want %v", arrivals, want)
	}
}

// TestArrivalsCSVRoundTrip checks Write -> Read identity.
func TestArrivalsCSVRoundTrip(t *testing.T) {
	arrivals := stream(t, NewPoisson(100), 4, 50)
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, arrivals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, arrivals) {
		t.Fatalf("round trip changed arrivals")
	}
	// A replay of the round-tripped recording regenerates the stream.
	replayed := stream(t, NewReplay("rt", got), 1, len(arrivals))
	if !reflect.DeepEqual(replayed, arrivals) {
		t.Fatalf("replay of round-tripped recording diverged")
	}
}

// TestArrivalsCSVRejectsMalformed maps malformed inputs to errors.
func TestArrivalsCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"wrong header":    "request,arrival\n0,5\n",
		"no rows":         "request,arrival_ns\n",
		"bad index":       "request,arrival_ns\nx,5\n",
		"index gap":       "request,arrival_ns\n0,5\n2,9\n",
		"bad arrival":     "request,arrival_ns\n0,zzz\n",
		"negative":        "request,arrival_ns\n0,-5\n",
		"decreasing":      "request,arrival_ns\n0,9\n1,5\n",
		"too many fields": "request,arrival_ns\n0,5,7\n",
	}
	for name, in := range cases {
		if _, err := ReadArrivalsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestValidateRejectsBadConfigs maps invalid process parameters to
// errors before generation starts.
func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := map[string]Process{
		"poisson zero rate":  NewPoisson(0),
		"mmpp zero quiet":    &MMPP{QuietRate: 0, BurstRate: 10, MeanQuiet: time.Second, MeanBurst: time.Second},
		"mmpp zero dwell":    &MMPP{QuietRate: 5, BurstRate: 10, MeanQuiet: 0, MeanBurst: time.Second},
		"diurnal amp 1":      &Diurnal{Base: 10, Amplitude: 1, Period: time.Second},
		"diurnal neg amp":    &Diurnal{Base: 10, Amplitude: -0.1, Period: time.Second},
		"diurnal zero base":  &Diurnal{Base: 0, Amplitude: 0.5, Period: time.Second},
		"diurnal no period":  &Diurnal{Base: 10, Amplitude: 0.5},
		"schedule no steps":  &Schedule{Base: 10},
		"schedule zero dur":  &Schedule{Base: 10, Steps: []ScheduleStep{{Dur: 0, Scale: 1}}},
		"schedule neg scale": &Schedule{Base: 10, Steps: []ScheduleStep{{Dur: time.Second, Scale: -1}}},
		"replay empty":       &Replay{Source: "x"},
		"replay negative":    &Replay{Source: "x", Gaps: []time.Duration{-time.Millisecond}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
