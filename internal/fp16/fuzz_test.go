package fp16

import (
	"math"
	"testing"
)

// FuzzFromFloat32 checks two universal properties over arbitrary float32
// inputs: the conversion never produces a value closer to a *different*
// representable binary16 neighbour (round-to-nearest), and converting the
// decoded value again is idempotent.
func FuzzFromFloat32(f *testing.F) {
	f.Add(float32(0))
	f.Add(float32(1))
	f.Add(float32(-1))
	f.Add(float32(65504))
	f.Add(float32(65520)) // halfway to overflow
	f.Add(float32(5.9e-8))
	f.Add(float32(math.Pi))
	f.Add(float32(math.Inf(1)))
	f.Add(float32(math.NaN()))

	f.Fuzz(func(t *testing.T, x float32) {
		n := FromFloat32(x)
		if math.IsNaN(float64(x)) {
			if !n.IsNaN() {
				t.Fatalf("NaN input produced %#04x", n)
			}
			return
		}
		back := n.Float32()
		// Idempotence: re-encoding the decoded value is exact.
		if again := FromFloat32(back); !again.IsNaN() && again != n {
			t.Fatalf("re-encode changed %#04x -> %#04x (x=%g)", n, again, x)
		}
		if n.IsInf() {
			// Overflow is only legal beyond the halfway point to the next
			// representable value above MaxValue (2^16 = 65536... the
			// rounding boundary is 65520).
			if math.Abs(float64(x)) < 65520 {
				t.Fatalf("|x|=%g overflowed to infinity prematurely", x)
			}
			return
		}
		// Round-to-nearest: error bounded by half a ULP at the result's
		// magnitude (ULP = 2^(exp-10) for normals, 2^-24 for subnormals).
		ulp := math.Pow(2, -24)
		if abs := math.Abs(float64(back)); abs >= 6.103515625e-05 {
			exp := math.Floor(math.Log2(abs))
			ulp = math.Pow(2, exp-10)
		}
		if diff := math.Abs(float64(back) - float64(x)); diff > ulp/2+1e-12 {
			t.Fatalf("x=%g rounded to %g: error %g exceeds half-ULP %g",
				x, back, diff, ulp/2)
		}
	})
}
