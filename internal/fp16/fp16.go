// Package fp16 implements IEEE-754 binary16 (half-precision) floating point
// in software.
//
// The Dysta hardware scheduler (paper §5.2.2) performs all score and
// sparsity-coefficient arithmetic in FP16 to cut FPGA resource usage
// (Fig. 16). This package provides the exact datatype so that the
// behavioural hardware model in internal/hwsched computes bit-accurate FP16
// results, and so the reproduction can quantify the scheduling impact of the
// reduced precision against the float64 reference in internal/core.
//
// Arithmetic is performed by converting to float32, operating, and rounding
// back to binary16 with round-to-nearest-even — the standard behaviour of
// FPGA half-precision operator IP.
package fp16

import "math"

// Num is an IEEE-754 binary16 value in its raw 16-bit encoding:
// 1 sign bit, 5 exponent bits, 10 mantissa bits.
type Num uint16

// Useful constants in binary16 encoding.
const (
	PositiveZero Num = 0x0000
	NegativeZero Num = 0x8000
	PositiveInf  Num = 0x7c00
	NegativeInf  Num = 0xfc00
	// NaN is the canonical quiet NaN.
	NaN Num = 0x7e00
	// MaxValue is the largest finite binary16 value, 65504.
	MaxValue Num = 0x7bff
	// SmallestNormal is the smallest positive normal value, 2^-14.
	SmallestNormal Num = 0x0400
	// One is the value 1.0.
	One Num = 0x3c00
)

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even.
// Values too large for binary16 become infinities; NaN payloads collapse to
// the canonical NaN.
func FromFloat32(f float32) Num {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23) & 0xff
	mant := bits & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			return NaN
		}
		return Num(sign | 0x7c00)
	case exp == 0 && mant == 0: // signed zero
		return Num(sign)
	}

	// Unbiased exponent in binary32, re-biased for binary16 (bias 15).
	e := exp - 127 + 15
	switch {
	case e >= 0x1f: // overflow -> infinity
		return Num(sign | 0x7c00)
	case e <= 0: // subnormal in binary16 (or underflow to zero)
		if e < -10 {
			return Num(sign) // underflows to zero even after rounding
		}
		// Add the implicit leading 1, then shift right into the subnormal
		// position, rounding to nearest even.
		m := mant | 0x800000
		shift := uint32(14 - e) // between 14 and 24
		half := uint32(1) << (shift - 1)
		rounded := m + half
		// Round-to-even: if exactly halfway, clear the LSB after shifting.
		if m&(half<<1|(half-1)) == half {
			rounded = m + half - 1 + (m>>shift)&1
		}
		return Num(sign | uint16(rounded>>shift))
	default: // normal
		half := uint32(0x1000) // round bit for a 13-bit shift
		rounded := mant + half
		if mant&0x1fff == half { // exactly halfway: round to even
			rounded = mant + half - 1 + (mant>>13)&1
		}
		if rounded&0x800000 != 0 { // mantissa overflowed into exponent
			rounded = 0
			e++
			if e >= 0x1f {
				return Num(sign | 0x7c00)
			}
		}
		return Num(sign | uint16(e)<<10 | uint16(rounded>>13))
	}
}

// FromFloat64 converts a float64 to binary16 via float32. Double rounding
// through float32 cannot change the binary16 result for the magnitudes used
// by the scheduler (all well inside float32's exact range).
func FromFloat64(f float64) Num { return FromFloat32(float32(f)) }

// Float32 converts a binary16 value to float32 exactly (every binary16
// value is representable in binary32).
func (n Num) Float32() float32 {
	sign := uint32(n&0x8000) << 16
	exp := uint32(n>>10) & 0x1f
	mant := uint32(n) & 0x3ff

	switch {
	case exp == 0x1f: // Inf or NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7fc00000)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// Float64 converts a binary16 value to float64 exactly.
func (n Num) Float64() float64 { return float64(n.Float32()) }

// IsNaN reports whether n encodes a NaN.
func (n Num) IsNaN() bool { return n&0x7c00 == 0x7c00 && n&0x3ff != 0 }

// IsInf reports whether n encodes an infinity.
func (n Num) IsInf() bool { return n&0x7fff == 0x7c00 }

// Neg returns n with its sign flipped.
func (n Num) Neg() Num { return n ^ 0x8000 }

// Add returns the binary16 sum a+b with round-to-nearest-even.
func Add(a, b Num) Num { return FromFloat32(a.Float32() + b.Float32()) }

// Sub returns the binary16 difference a-b with round-to-nearest-even.
func Sub(a, b Num) Num { return FromFloat32(a.Float32() - b.Float32()) }

// Mul returns the binary16 product a*b with round-to-nearest-even.
func Mul(a, b Num) Num { return FromFloat32(a.Float32() * b.Float32()) }

// Div returns the binary16 quotient a/b with round-to-nearest-even. The
// hardware scheduler avoids divider IP by multiplying with precomputed
// reciprocals (paper §5.2.2); Div exists for reference and testing.
func Div(a, b Num) Num { return FromFloat32(a.Float32() / b.Float32()) }

// Recip returns the binary16 reciprocal 1/n, used to model the offline
// reciprocal precomputation of the paper's reconfigurable compute unit.
func Recip(n Num) Num { return FromFloat32(1 / n.Float32()) }

// Less reports whether a < b in the usual IEEE ordering (NaN compares
// false with everything).
func Less(a, b Num) bool { return a.Float32() < b.Float32() }
