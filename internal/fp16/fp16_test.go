package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		f    float32
		want Num
	}{
		{0, PositiveZero},
		{float32(math.Copysign(0, -1)), NegativeZero},
		{1, One},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, MaxValue},
		{float32(math.Inf(1)), PositiveInf},
		{float32(math.Inf(-1)), NegativeInf},
		{0.099976, 0x2e66}, // ~0.1 in binary16
		{6.1035156e-05, SmallestNormal},
		{5.9604645e-08, 0x0001}, // smallest positive subnormal
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
}

func TestKnownDecodings(t *testing.T) {
	cases := []struct {
		n    Num
		want float32
	}{
		{PositiveZero, 0},
		{One, 1},
		{0x4000, 2},
		{0x3800, 0.5},
		{MaxValue, 65504},
		{SmallestNormal, 6.103515625e-05},
		{0x0001, 5.960464477539063e-08},
		{0x3555, 0.333251953125}, // ~1/3
	}
	for _, c := range cases {
		if got := c.n.Float32(); got != c.want {
			t.Errorf("%#04x.Float32() = %g, want %g", c.n, got, c.want)
		}
	}
}

func TestInfAndNaN(t *testing.T) {
	if !PositiveInf.IsInf() || !NegativeInf.IsInf() {
		t.Error("IsInf false for infinities")
	}
	if PositiveInf.IsNaN() || One.IsNaN() {
		t.Error("IsNaN true for non-NaN")
	}
	if !NaN.IsNaN() {
		t.Error("IsNaN false for canonical NaN")
	}
	if !math.IsNaN(float64(NaN.Float32())) {
		t.Error("NaN decodes to non-NaN float32")
	}
	if got := FromFloat32(float32(math.NaN())); !got.IsNaN() {
		t.Errorf("FromFloat32(NaN) = %#04x", got)
	}
	if got := FromFloat32(1e10); got != PositiveInf {
		t.Errorf("overflow should produce +Inf, got %#04x", got)
	}
	if got := FromFloat32(-1e10); got != NegativeInf {
		t.Errorf("overflow should produce -Inf, got %#04x", got)
	}
	if got := FromFloat32(1e-10); got != PositiveZero {
		t.Errorf("underflow should produce +0, got %#04x", got)
	}
}

// TestRoundTripAllValues decodes every one of the 65536 possible binary16
// values and re-encodes it; all non-NaN values must round-trip exactly.
func TestRoundTripAllValues(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		n := Num(i)
		if n.IsNaN() {
			continue
		}
		if got := FromFloat32(n.Float32()); got != n {
			t.Fatalf("round trip %#04x -> %g -> %#04x", n, n.Float32(), got)
		}
	}
}

// TestRoundToNearestEven checks ties round to even mantissas.
func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next binary16 value
	// (1 + 2^-10); it must round down to the even mantissa (1.0).
	halfwayLow := float32(1) + float32(math.Pow(2, -11))
	if got := FromFloat32(halfwayLow); got != One {
		t.Errorf("tie at 1+2^-11 rounded to %#04x, want 0x3c00", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; must round up to
	// the even mantissa 1+2^-9.
	halfwayHigh := float32(1) + 3*float32(math.Pow(2, -11))
	if got := FromFloat32(halfwayHigh); got != 0x3c02 {
		t.Errorf("tie at 1+3*2^-11 rounded to %#04x, want 0x3c02", got)
	}
}

func TestRoundingIsNearest(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		// Uniform in [-70000, 70000] to cover normal, subnormal and
		// overflow territory.
		f := (float32(seed)/float32(math.MaxUint32) - 0.5) * 140000
		n := FromFloat32(f)
		if n.IsNaN() || n.IsInf() {
			return float64(math.Abs(float64(f))) > 65504
		}
		back := n.Float32()
		// The absolute error must not exceed half a ULP at this magnitude,
		// which is bounded by |f| * 2^-10 for normals.
		tol := math.Abs(float64(f))*math.Pow(2, -10) + math.Pow(2, -24)
		return math.Abs(float64(back-f)) <= tol
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNeg(t *testing.T) {
	if One.Neg() != 0xbc00 {
		t.Errorf("Neg(1) = %#04x", One.Neg())
	}
	if One.Neg().Neg() != One {
		t.Error("double negation is not identity")
	}
}

func TestArithmetic(t *testing.T) {
	two := FromFloat32(2)
	three := FromFloat32(3)
	if got := Add(two, three); got.Float32() != 5 {
		t.Errorf("2+3 = %g", got.Float32())
	}
	if got := Sub(two, three); got.Float32() != -1 {
		t.Errorf("2-3 = %g", got.Float32())
	}
	if got := Mul(two, three); got.Float32() != 6 {
		t.Errorf("2*3 = %g", got.Float32())
	}
	if got := Div(three, two); got.Float32() != 1.5 {
		t.Errorf("3/2 = %g", got.Float32())
	}
}

func TestAddCommutative(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		x, y := Num(a), Num(b)
		if x.IsNaN() || y.IsNaN() {
			return true
		}
		return Add(x, y) == Add(y, x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutative(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		x, y := Num(a), Num(b)
		if x.IsNaN() || y.IsNaN() {
			return true
		}
		return Mul(x, y) == Mul(y, x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulByOneIdentity(t *testing.T) {
	if err := quick.Check(func(a uint16) bool {
		x := Num(a)
		if x.IsNaN() {
			return true
		}
		got := Mul(x, One)
		// -0 * 1 = -0, +0 * 1 = +0, etc: exact identity.
		return got == x
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecipMatchesDiv(t *testing.T) {
	for _, f := range []float32{1, 2, 3, 7, 100, 0.25, 1000} {
		n := FromFloat32(f)
		if got, want := Recip(n), Div(One, n); got != want {
			t.Errorf("Recip(%g) = %#04x, Div(1,%g) = %#04x", f, got, f, want)
		}
	}
}

func TestLess(t *testing.T) {
	if !Less(FromFloat32(1), FromFloat32(2)) {
		t.Error("1 < 2 failed")
	}
	if Less(FromFloat32(2), FromFloat32(1)) {
		t.Error("2 < 1 succeeded")
	}
	if Less(NaN, One) || Less(One, NaN) {
		t.Error("NaN comparison returned true")
	}
	if !Less(NegativeInf, PositiveInf) {
		t.Error("-Inf < +Inf failed")
	}
}

// TestRelativeErrorBound verifies the documented precision property used by
// the scheduler analysis: FP16 quantization error for scheduler scores
// (magnitudes within [2^-14, 65504]) stays within 2^-10 relative error.
func TestRelativeErrorBound(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		// Log-uniform magnitude across the normal range.
		exp := float64(seed%28) - 14
		mant := 1 + float64(seed%1000)/1000
		f := mant * math.Pow(2, exp)
		n := FromFloat64(f)
		rel := math.Abs(n.Float64()-f) / f
		return rel <= math.Pow(2, -10)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFromFloat64MatchesFloat32Path(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.1, 3.14159, 65504, 1e-5, 123.456} {
		if got, want := FromFloat64(f), FromFloat32(float32(f)); got != want {
			t.Errorf("FromFloat64(%g) = %#04x, want %#04x", f, got, want)
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FromFloat32(float32(i) * 0.001)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat32(1.5), FromFloat32(2.25)
	for i := 0; i < b.N; i++ {
		_ = Mul(x, y)
	}
}
