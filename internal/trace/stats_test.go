package trace

import (
	"math"
	"testing"
	"time"

	"sparsedysta/internal/sparsity"
)

// slopedTraces builds two traces whose latency varies linearly with
// sparsity: lat = base + slope*(s - 0.5) per layer.
func slopedTraces(base time.Duration, slope float64, layers int) []SampleTrace {
	mk := func(s float64) SampleTrace {
		tr := SampleTrace{
			LayerLatency:  make([]time.Duration, layers),
			LayerSparsity: make([]float64, layers),
		}
		for l := range tr.LayerLatency {
			tr.LayerLatency[l] = base + time.Duration(slope*(s-0.5))
			tr.LayerSparsity[l] = s
		}
		return tr
	}
	return []SampleTrace{mk(0.3), mk(0.7)}
}

func TestLatSparsitySlopeFit(t *testing.T) {
	k := Key{Model: "m", Pattern: sparsity.Dense}
	// lat = 1ms - 2ms*(s-0.5): slope must fit to -2e6 ns per sparsity unit.
	st, err := Summarize(k, slopedTraces(time.Millisecond, -2e6, 3))
	if err != nil {
		t.Fatal(err)
	}
	for l, slope := range st.LatSparsitySlope {
		if math.Abs(slope-(-2e6)) > 50 {
			t.Errorf("layer %d slope = %v, want -2e6", l, slope)
		}
	}
	// Constant-sparsity traces carry no signal: slope 0.
	flat := []SampleTrace{
		{LayerLatency: []time.Duration{1000}, LayerSparsity: []float64{0.5}},
		{LayerLatency: []time.Duration{2000}, LayerSparsity: []float64{0.5}},
	}
	st2, err := Summarize(k, flat)
	if err != nil {
		t.Fatal(err)
	}
	if st2.LatSparsitySlope[0] != 0 {
		t.Errorf("constant-sparsity slope = %v, want 0", st2.LatSparsitySlope[0])
	}
}

func TestSensitivityRemaining(t *testing.T) {
	k := Key{Model: "m", Pattern: sparsity.Dense}
	st, err := Summarize(k, slopedTraces(time.Millisecond, -2e6, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Sensitivity from layer l = sum of slope*avgSparsity over l..end:
	// 3 layers x (-2e6 * 0.5) = -3e6 from layer 0.
	if got := st.SensitivityRemaining(0); math.Abs(got-(-3e6)) > 50 {
		t.Errorf("SensitivityRemaining(0) = %v, want -3e6", got)
	}
	if got := st.SensitivityRemaining(2); math.Abs(got-(-1e6)) > 50 {
		t.Errorf("SensitivityRemaining(2) = %v, want -1e6", got)
	}
	// Density sensitivity: -slope*(1-avgS) summed = +2e6*0.5*3 = 3e6.
	if got := st.SensitivityRemainingDensity(0); math.Abs(got-3e6) > 50 {
		t.Errorf("SensitivityRemainingDensity(0) = %v, want 3e6", got)
	}
	// Bounds handling.
	if st.SensitivityRemaining(-5) != st.SensitivityRemaining(0) {
		t.Error("negative index not clamped")
	}
	if st.SensitivityRemaining(99) != 0 || st.SensitivityRemainingDensity(99) != 0 {
		t.Error("past-the-end sensitivity not zero")
	}
	if st.SensitivityRemainingDensity(-1) != st.SensitivityRemainingDensity(0) {
		t.Error("negative index not clamped (density)")
	}
	if st.NumLayers() != 3 {
		t.Errorf("NumLayers = %d", st.NumLayers())
	}
}

func TestMergedByModel(t *testing.T) {
	store := NewStore()
	kA := Key{Model: "m", Pattern: sparsity.RandomPointwise}
	kB := Key{Model: "m", Pattern: sparsity.ChannelWise}
	kOther := Key{Model: "other", Pattern: sparsity.Dense}
	// Pattern A: 1ms/layer at s=0.4 (2 samples); pattern B: 3ms/layer at
	// s=0.8 (2 samples). Equal sample counts -> merged averages are the
	// midpoints.
	mk := func(lat time.Duration, s float64) SampleTrace {
		return SampleTrace{
			LayerLatency:  []time.Duration{lat, lat},
			LayerSparsity: []float64{s, s},
		}
	}
	store.Add(kA, []SampleTrace{mk(time.Millisecond, 0.4), mk(time.Millisecond, 0.4)})
	store.Add(kB, []SampleTrace{mk(3*time.Millisecond, 0.8), mk(3*time.Millisecond, 0.8)})
	store.Add(kOther, []SampleTrace{mk(time.Microsecond, 0.1)})
	set, err := NewStatsSet(store)
	if err != nil {
		t.Fatal(err)
	}

	merged := set.MergedByModel("m")
	if merged == nil {
		t.Fatal("merge returned nil")
	}
	if merged.Samples != 4 {
		t.Errorf("merged samples = %d, want 4", merged.Samples)
	}
	if got, want := merged.AvgTotal, 4*time.Millisecond; got != want {
		t.Errorf("merged AvgTotal = %v, want %v", got, want)
	}
	if math.Abs(merged.AvgLayerSparsity[0]-0.6) > 1e-12 {
		t.Errorf("merged layer sparsity = %v, want 0.6", merged.AvgLayerSparsity[0])
	}
	if math.Abs(merged.AvgNetworkSparsity-0.6) > 1e-12 {
		t.Errorf("merged network sparsity = %v", merged.AvgNetworkSparsity)
	}
	if merged.AvgRemaining(1) != 2*time.Millisecond {
		t.Errorf("merged AvgRemaining(1) = %v, want 2ms", merged.AvgRemaining(1))
	}

	// A model with a single pattern returns its entry unmerged.
	single := set.MergedByModel("other")
	if single != set.Lookup(kOther) {
		t.Error("single-pattern merge did not reuse the entry")
	}
	// Unknown models merge to nil.
	if set.MergedByModel("ghost") != nil {
		t.Error("unknown model merged to non-nil")
	}
}

func TestMergedByModelWeightsBySamples(t *testing.T) {
	store := NewStore()
	kA := Key{Model: "m", Pattern: sparsity.RandomPointwise}
	kB := Key{Model: "m", Pattern: sparsity.ChannelWise}
	mk := func(lat time.Duration) SampleTrace {
		return SampleTrace{LayerLatency: []time.Duration{lat}, LayerSparsity: []float64{0.5}}
	}
	// 3 samples at 1ms vs 1 sample at 5ms: weighted mean = 2ms.
	store.Add(kA, []SampleTrace{mk(time.Millisecond), mk(time.Millisecond), mk(time.Millisecond)})
	store.Add(kB, []SampleTrace{mk(5 * time.Millisecond)})
	set, err := NewStatsSet(store)
	if err != nil {
		t.Fatal(err)
	}
	merged := set.MergedByModel("m")
	if got, want := merged.AvgTotal, 2*time.Millisecond; got != want {
		t.Errorf("weighted merge AvgTotal = %v, want %v", got, want)
	}
}
