package trace

import (
	"fmt"
	"sort"
	"time"
)

// Stats is the offline profiling summary for one model-pattern pair — the
// content of Dysta's model-info LUT entry (paper §4.2.1: sparsity pattern,
// average sparsity across layers, average latency on the target hardware)
// extended with the per-layer averages the predictor and baselines consume.
type Stats struct {
	Key Key
	// AvgTotal is the mean isolated end-to-end latency.
	AvgTotal time.Duration
	// AvgLayerLatency[l] is the mean isolated latency of layer l.
	AvgLayerLatency []time.Duration
	// AvgLayerSparsity[l] is the mean dynamic sparsity of layer l.
	AvgLayerSparsity []float64
	// AvgNetworkSparsity is the mean over layers of AvgLayerSparsity.
	AvgNetworkSparsity float64
	// LatSparsitySlope[l] is the fitted linear sensitivity of layer l's
	// latency to its dynamic sparsity, in nanoseconds per unit sparsity
	// (negative: sparser runs faster). This is the "shape" information of
	// the hardware LUTs (paper §5.2.1) that lets the sparse latency
	// predictor map a monitored sparsity coefficient to latency.
	LatSparsitySlope []float64
	// Samples is the number of profiled requests.
	Samples int
	// suffix[l] is the mean isolated latency of layers l..end, so that
	// AvgRemaining is O(1).
	suffix []time.Duration
	// suffixSens[l] is the suffix sum of LatSparsitySlope[l]*AvgLayerSparsity[l]:
	// the remaining-latency sensitivity to a multiplicative sparsity
	// coefficient (see SensitivityRemaining).
	suffixSens []float64
	// suffixSensDensity[l] is the suffix sum of
	// -LatSparsitySlope[l]*(1-AvgLayerSparsity[l]): the sensitivity to a
	// multiplicative density coefficient.
	suffixSensDensity []float64
}

// Summarize profiles a set of traces into LUT statistics. It returns an
// error on empty or ragged input.
func Summarize(k Key, traces []SampleTrace) (*Stats, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: no traces to summarize for %v", k)
	}
	layers := traces[0].NumLayers()
	st := &Stats{
		Key:              k,
		AvgLayerLatency:  make([]time.Duration, layers),
		AvgLayerSparsity: make([]float64, layers),
		Samples:          len(traces),
	}
	latSums := make([]float64, layers)
	for _, tr := range traces {
		if tr.NumLayers() != layers {
			return nil, fmt.Errorf("trace: ragged traces for %v: %d vs %d layers",
				k, tr.NumLayers(), layers)
		}
		for l := 0; l < layers; l++ {
			latSums[l] += float64(tr.LayerLatency[l])
			st.AvgLayerSparsity[l] += tr.LayerSparsity[l]
		}
	}
	n := float64(len(traces))
	var totalLat float64
	var totalSp float64
	for l := 0; l < layers; l++ {
		st.AvgLayerLatency[l] = time.Duration(latSums[l] / n)
		st.AvgLayerSparsity[l] /= n
		totalLat += latSums[l] / n
		totalSp += st.AvgLayerSparsity[l]
	}
	st.AvgTotal = time.Duration(totalLat)
	st.AvgNetworkSparsity = totalSp / float64(layers)

	// Fit the per-layer latency-vs-sparsity slope by least squares over
	// the profiling set: slope = cov(lat, s) / var(s). Constant-sparsity
	// layers get slope 0 (their latency carries no dynamic signal).
	st.LatSparsitySlope = make([]float64, layers)
	for l := 0; l < layers; l++ {
		var cov, varS float64
		meanLat := float64(st.AvgLayerLatency[l])
		meanS := st.AvgLayerSparsity[l]
		for _, tr := range traces {
			ds := tr.LayerSparsity[l] - meanS
			cov += ds * (float64(tr.LayerLatency[l]) - meanLat)
			varS += ds * ds
		}
		if varS > 1e-12 {
			st.LatSparsitySlope[l] = cov / varS
		}
	}

	st.suffix = make([]time.Duration, layers+1)
	st.suffixSens = make([]float64, layers+1)
	st.suffixSensDensity = make([]float64, layers+1)
	for l := layers - 1; l >= 0; l-- {
		st.suffix[l] = st.suffix[l+1] + st.AvgLayerLatency[l]
		st.suffixSens[l] = st.suffixSens[l+1] +
			st.LatSparsitySlope[l]*st.AvgLayerSparsity[l]
		st.suffixSensDensity[l] = st.suffixSensDensity[l+1] -
			st.LatSparsitySlope[l]*(1-st.AvgLayerSparsity[l])
	}
	return st, nil
}

// RemainingCurve returns the per-layer remaining-latency curve c, with
// c[l] == AvgRemaining(l) for 0 <= l <= NumLayers (c[NumLayers] is 0).
// The slice is the Stats' own suffix table, shared across callers:
// read-only, never to be mutated. Engines cache it per task so that
// re-evaluating the remaining-work estimate after each executed layer is
// a slice index instead of a LUT lookup (the incremental-backlog hot
// path).
func (s *Stats) RemainingCurve() []time.Duration { return s.suffix }

// AvgRemaining returns the mean isolated latency of layers from index
// `from` to the end; from == NumLayers yields 0.
func (s *Stats) AvgRemaining(from int) time.Duration {
	if from < 0 {
		from = 0
	}
	if from >= len(s.suffix) {
		return 0
	}
	return s.suffix[from]
}

// SensitivityRemaining returns d(remaining latency)/d(gamma) in
// nanoseconds for a multiplicative sparsity coefficient gamma (predicted
// layer sparsity = gamma * average): the linear-model term the sparse
// latency predictor adds to AvgRemaining. It is negative when sparser
// samples run faster.
func (s *Stats) SensitivityRemaining(from int) float64 {
	if from < 0 {
		from = 0
	}
	if from >= len(s.suffixSens) {
		return 0
	}
	return s.suffixSens[from]
}

// SensitivityRemainingDensity is the analogous sensitivity for a
// multiplicative density coefficient (predicted layer density =
// gammaD * average density).
func (s *Stats) SensitivityRemainingDensity(from int) float64 {
	if from < 0 {
		from = 0
	}
	if from >= len(s.suffixSensDensity) {
		return 0
	}
	return s.suffixSensDensity[from]
}

// NumLayers returns the profiled layer count.
func (s *Stats) NumLayers() int { return len(s.AvgLayerLatency) }

// StatsSet indexes Stats by key: the full model-info LUT shared by the
// static scheduler and the hardware LUTs.
type StatsSet struct {
	byKey map[Key]*Stats
}

// NewStatsSet builds the LUT from a profiling store.
func NewStatsSet(profiling *Store) (*StatsSet, error) {
	set := &StatsSet{byKey: map[Key]*Stats{}}
	for _, k := range profiling.Keys() {
		st, err := Summarize(k, profiling.Get(k))
		if err != nil {
			return nil, err
		}
		set.byKey[k] = st
	}
	return set, nil
}

// Lookup returns the LUT entry for a key, or nil if the pair was never
// profiled.
func (s *StatsSet) Lookup(k Key) *Stats { return s.byKey[k] }

// MustLookup returns the LUT entry or panics; schedulers use it after
// workload validation has ensured every pair is profiled.
func (s *StatsSet) MustLookup(k Key) *Stats {
	st := s.byKey[k]
	if st == nil {
		panic(fmt.Sprintf("trace: no profiling stats for %v", k))
	}
	return st
}

// Keys returns the profiled keys (order unspecified).
func (s *StatsSet) Keys() []Key {
	out := make([]Key, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	return out
}

// MergedByModel collapses the per-pattern LUT entries of one model into a
// single pattern-blind summary, weighting each pattern by its profiled
// sample count. This models the status-quo schedulers of paper Table 1,
// whose offline profiles are per-model and ignore the sparsity pattern.
// It returns nil if the model was never profiled.
func (s *StatsSet) MergedByModel(model string) *Stats {
	var members []*Stats
	total := 0
	for k, st := range s.byKey {
		if k.Model == model {
			members = append(members, st)
			total += st.Samples
		}
	}
	if len(members) == 0 {
		return nil
	}
	// Accumulate in pattern order: float addition is not associative, so
	// merging in (random) map-iteration order would make the merged
	// profile — and every schedule derived from it — vary between
	// processes for the same inputs.
	sort.Slice(members, func(i, j int) bool { return members[i].Key.Pattern < members[j].Key.Pattern })
	if len(members) == 1 {
		return members[0]
	}
	layers := members[0].NumLayers()
	merged := &Stats{
		Key:              Key{Model: model},
		AvgLayerLatency:  make([]time.Duration, layers),
		AvgLayerSparsity: make([]float64, layers),
		LatSparsitySlope: make([]float64, layers),
		Samples:          total,
	}
	for _, st := range members {
		w := float64(st.Samples) / float64(total)
		for l := 0; l < layers; l++ {
			merged.AvgLayerLatency[l] += time.Duration(w * float64(st.AvgLayerLatency[l]))
			merged.AvgLayerSparsity[l] += w * st.AvgLayerSparsity[l]
			merged.LatSparsitySlope[l] += w * st.LatSparsitySlope[l]
		}
		merged.AvgNetworkSparsity += w * st.AvgNetworkSparsity
	}
	merged.suffix = make([]time.Duration, layers+1)
	merged.suffixSens = make([]float64, layers+1)
	merged.suffixSensDensity = make([]float64, layers+1)
	var totalLat time.Duration
	for l := layers - 1; l >= 0; l-- {
		totalLat += merged.AvgLayerLatency[l]
		merged.suffix[l] = merged.suffix[l+1] + merged.AvgLayerLatency[l]
		merged.suffixSens[l] = merged.suffixSens[l+1] +
			merged.LatSparsitySlope[l]*merged.AvgLayerSparsity[l]
		merged.suffixSensDensity[l] = merged.suffixSensDensity[l+1] -
			merged.LatSparsitySlope[l]*(1-merged.AvgLayerSparsity[l])
	}
	merged.AvgTotal = totalLat
	return merged
}
