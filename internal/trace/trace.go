// Package trace implements Phase 1 of the paper's evaluation methodology
// (§3.3.1, Fig. 7): running the hardware simulator over a dataset to
// produce "runtime information" — per-layer latency and sparsity for every
// (model, pattern, input) triple — which is saved to files and later
// replayed by the scheduler engine in Phase 2.
//
// It also derives the offline profiling statistics (average latency and
// average layer sparsity per model-pattern pair) that populate Dysta's
// model-info LUTs (paper §4.2.1) and every baseline's latency estimates.
package trace

import (
	"fmt"
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/dataset"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
)

// Key identifies one model-pattern pair, the granularity at which the
// paper stores LUT entries and runtime-info files.
type Key struct {
	Model   string
	Pattern sparsity.Pattern
}

// String renders the key as model/pattern.
func (k Key) String() string { return k.Model + "/" + k.Pattern.String() }

// SampleTrace is the runtime information of one input processed in
// isolation: what the hardware simulator measured per layer.
type SampleTrace struct {
	// LayerLatency[l] is layer l's isolated execution latency.
	LayerLatency []time.Duration
	// LayerSparsity[l] is the dynamic sparsity the hardware monitor
	// observes at layer l.
	LayerSparsity []float64
}

// Total returns the isolated end-to-end latency (the paper's T_isol).
func (t *SampleTrace) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.LayerLatency {
		sum += d
	}
	return sum
}

// Remaining returns the isolated latency of layers from index `from` to
// the end.
func (t *SampleTrace) Remaining(from int) time.Duration {
	var sum time.Duration
	for _, d := range t.LayerLatency[from:] {
		sum += d
	}
	return sum
}

// NumLayers returns the layer count of the trace.
func (t *SampleTrace) NumLayers() int { return len(t.LayerLatency) }

// BuildConfig controls trace generation for one model-pattern pair.
type BuildConfig struct {
	Model *models.Model
	// Pattern and WeightRate define the static sparsification. AttNN
	// models conventionally use Dense/0 (their sparsity is dynamic).
	Pattern    sparsity.Pattern
	WeightRate float64
	// Preset is the dataset preset; zero value selects
	// dataset.DefaultPreset.
	Preset *dataset.Preset
	// Samples is the number of inputs to process.
	Samples int
	// Seed makes generation reproducible.
	Seed uint64
}

// Build runs the hardware simulator over cfg.Samples inputs and returns
// their runtime information, the Phase 1 step of Fig. 7.
func Build(acc accel.Accelerator, cfg BuildConfig) ([]SampleTrace, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("trace: nil model")
	}
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("trace: non-positive sample count %d", cfg.Samples)
	}
	if acc.Family() != cfg.Model.Family {
		return nil, fmt.Errorf("trace: model %s (family %v) on accelerator %s (family %v)",
			cfg.Model.Name, cfg.Model.Family, acc.Name(), acc.Family())
	}
	preset := dataset.DefaultPreset(cfg.Model)
	if cfg.Preset != nil {
		preset = *cfg.Preset
	}
	stream, err := dataset.NewStream(cfg.Model, preset, cfg.Seed)
	if err != nil {
		return nil, err
	}

	out := make([]SampleTrace, cfg.Samples)
	for i := range out {
		sample := stream.Next()
		tr := SampleTrace{
			LayerLatency:  make([]time.Duration, cfg.Model.NumLayers()),
			LayerSparsity: sample.Sparsity,
		}
		for l, layer := range cfg.Model.Layers {
			tr.LayerLatency[l] = acc.LayerLatency(layer, accel.LayerSparsity{
				Pattern:            cfg.Pattern,
				WeightRate:         cfg.WeightRate,
				ActivationSparsity: sample.Sparsity[l],
			})
		}
		out[i] = tr
	}
	return out, nil
}

// Store holds runtime information for many model-pattern pairs: the file
// set produced by Phase 1.
type Store struct {
	byKey map[Key][]SampleTrace
}

// NewStore returns an empty Store.
func NewStore() *Store { return &Store{byKey: map[Key][]SampleTrace{}} }

// Add appends traces under the key.
func (s *Store) Add(k Key, traces []SampleTrace) {
	s.byKey[k] = append(s.byKey[k], traces...)
}

// Get returns the traces stored under the key (nil if absent).
func (s *Store) Get(k Key) []SampleTrace { return s.byKey[k] }

// Keys returns all stored keys (order unspecified).
func (s *Store) Keys() []Key {
	out := make([]Key, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	return out
}

// Len returns the number of stored keys.
func (s *Store) Len() int { return len(s.byKey) }
