package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/accel/sanger"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sparsity"
)

func buildCNN(t *testing.T, samples int) (Key, []SampleTrace) {
	t.Helper()
	m := models.MobileNet()
	traces, err := Build(eyeriss.NewDefault(), BuildConfig{
		Model: m, Pattern: sparsity.RandomPointwise, WeightRate: 0.8,
		Samples: samples, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Key{Model: m.Name, Pattern: sparsity.RandomPointwise}, traces
}

func TestBuildShapes(t *testing.T) {
	m := models.MobileNet()
	_, traces := buildCNN(t, 16)
	if len(traces) != 16 {
		t.Fatalf("got %d traces", len(traces))
	}
	for i, tr := range traces {
		if tr.NumLayers() != m.NumLayers() {
			t.Fatalf("trace %d has %d layers, want %d", i, tr.NumLayers(), m.NumLayers())
		}
		if tr.Total() <= 0 {
			t.Fatalf("trace %d total latency %v", i, tr.Total())
		}
		for l, d := range tr.LayerLatency {
			if d <= 0 {
				t.Fatalf("trace %d layer %d latency %v", i, l, d)
			}
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	_, a := buildCNN(t, 5)
	_, b := buildCNN(t, 5)
	for i := range a {
		for l := range a[i].LayerLatency {
			if a[i].LayerLatency[l] != b[i].LayerLatency[l] {
				t.Fatalf("trace %d layer %d latency differs", i, l)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(eyeriss.NewDefault(), BuildConfig{Model: nil, Samples: 1}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Build(eyeriss.NewDefault(), BuildConfig{Model: models.MobileNet(), Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	// Family mismatch: an AttNN on the CNN accelerator.
	if _, err := Build(eyeriss.NewDefault(), BuildConfig{Model: models.BERTBase(), Samples: 1}); err == nil {
		t.Error("family mismatch accepted")
	}
}

func TestBuildAttNN(t *testing.T) {
	m := models.BERTBase()
	traces, err := Build(sanger.NewDefault(), BuildConfig{Model: m, Samples: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Per-sample totals must vary: this is the dynamicity the paper's
	// Fig. 2 profiles.
	first := traces[0].Total()
	varies := false
	for _, tr := range traces[1:] {
		if tr.Total() != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("AttNN isolated latency identical across samples")
	}
}

func TestRemaining(t *testing.T) {
	tr := SampleTrace{LayerLatency: []time.Duration{10, 20, 30}}
	if got := tr.Remaining(0); got != 60 {
		t.Errorf("Remaining(0) = %v", got)
	}
	if got := tr.Remaining(2); got != 30 {
		t.Errorf("Remaining(2) = %v", got)
	}
	if got := tr.Remaining(3); got != 0 {
		t.Errorf("Remaining(3) = %v", got)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	k, traces := buildCNN(t, 4)
	s := NewStore()
	s.Add(k, traces[:2])
	s.Add(k, traces[2:])
	if got := len(s.Get(k)); got != 4 {
		t.Errorf("store holds %d traces", got)
	}
	if s.Len() != 1 || len(s.Keys()) != 1 {
		t.Errorf("store has %d keys", s.Len())
	}
	if s.Get(Key{Model: "nope"}) != nil {
		t.Error("missing key returned traces")
	}
}

func TestSummarize(t *testing.T) {
	k := Key{Model: "m", Pattern: sparsity.Dense}
	traces := []SampleTrace{
		{LayerLatency: []time.Duration{100, 200}, LayerSparsity: []float64{0.2, 0.4}},
		{LayerLatency: []time.Duration{300, 400}, LayerSparsity: []float64{0.4, 0.8}},
	}
	st, err := Summarize(k, traces)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgTotal != 500 {
		t.Errorf("AvgTotal = %v, want 500", st.AvgTotal)
	}
	if st.AvgLayerLatency[0] != 200 || st.AvgLayerLatency[1] != 300 {
		t.Errorf("AvgLayerLatency = %v", st.AvgLayerLatency)
	}
	if math.Abs(st.AvgLayerSparsity[0]-0.3) > 1e-12 || math.Abs(st.AvgLayerSparsity[1]-0.6) > 1e-12 {
		t.Errorf("AvgLayerSparsity = %v", st.AvgLayerSparsity)
	}
	if math.Abs(st.AvgNetworkSparsity-0.45) > 1e-12 {
		t.Errorf("AvgNetworkSparsity = %v", st.AvgNetworkSparsity)
	}
	if st.AvgRemaining(0) != 500 || st.AvgRemaining(1) != 300 || st.AvgRemaining(2) != 0 {
		t.Errorf("AvgRemaining wrong: %v %v %v",
			st.AvgRemaining(0), st.AvgRemaining(1), st.AvgRemaining(2))
	}
	if st.AvgRemaining(-1) != 500 || st.AvgRemaining(99) != 0 {
		t.Error("AvgRemaining bounds handling wrong")
	}
}

func TestSummarizeErrors(t *testing.T) {
	k := Key{Model: "m"}
	if _, err := Summarize(k, nil); err == nil {
		t.Error("empty traces accepted")
	}
	ragged := []SampleTrace{
		{LayerLatency: []time.Duration{1}, LayerSparsity: []float64{0}},
		{LayerLatency: []time.Duration{1, 2}, LayerSparsity: []float64{0, 0}},
	}
	if _, err := Summarize(k, ragged); err == nil {
		t.Error("ragged traces accepted")
	}
}

func TestStatsSet(t *testing.T) {
	k, traces := buildCNN(t, 6)
	s := NewStore()
	s.Add(k, traces)
	set, err := NewStatsSet(s)
	if err != nil {
		t.Fatal(err)
	}
	if set.Lookup(k) == nil {
		t.Fatal("profiled key missing from stats set")
	}
	if set.Lookup(Key{Model: "nope"}) != nil {
		t.Error("unknown key found")
	}
	if len(set.Keys()) != 1 {
		t.Errorf("stats set has %d keys", len(set.Keys()))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on missing key did not panic")
		}
	}()
	set.MustLookup(Key{Model: "nope"})
}

func TestCSVRoundTrip(t *testing.T) {
	k, traces := buildCNN(t, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, k, traces); err != nil {
		t.Fatal(err)
	}
	gotKey, gotTraces, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != k {
		t.Errorf("key round trip: %v != %v", gotKey, k)
	}
	if len(gotTraces) != len(traces) {
		t.Fatalf("trace count %d != %d", len(gotTraces), len(traces))
	}
	for i := range traces {
		for l := range traces[i].LayerLatency {
			if gotTraces[i].LayerLatency[l] != traces[i].LayerLatency[l] {
				t.Fatalf("latency differs at sample %d layer %d", i, l)
			}
			if gotTraces[i].LayerSparsity[l] != traces[i].LayerSparsity[l] {
				t.Fatalf("sparsity differs at sample %d layer %d", i, l)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header": "a,b,c,d,e,f\n",
		"empty file": "model,pattern,sample,layer,latency_ns,sparsity\n",
		"bad pattern": "model,pattern,sample,layer,latency_ns,sparsity\n" +
			"m,wat,0,0,100,0.5\n",
		"out of order": "model,pattern,sample,layer,latency_ns,sparsity\n" +
			"m,dense,1,0,100,0.5\n",
		"bad latency": "model,pattern,sample,layer,latency_ns,sparsity\n" +
			"m,dense,0,0,xyz,0.5\n",
		"mixed keys": "model,pattern,sample,layer,latency_ns,sparsity\n" +
			"m,dense,0,0,100,0.5\nn,dense,1,0,100,0.5\n",
	}
	for name, data := range cases {
		if _, _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Model: "bert", Pattern: sparsity.Dense}
	if got := k.String(); got != "bert/dense" {
		t.Errorf("Key.String() = %q", got)
	}
}
