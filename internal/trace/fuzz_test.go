package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV feeds arbitrary bytes to the runtime-info parser: it must
// reject or accept, never panic, and anything it accepts must re-serialize
// and re-parse to the same data (parse/print round trip).
func FuzzReadCSV(f *testing.F) {
	// Seed with a valid file, a truncation, and assorted corruptions.
	var buf bytes.Buffer
	k := Key{Model: "m"}
	_ = WriteCSV(&buf, k, []SampleTrace{{
		LayerLatency:  []time.Duration{100, 200},
		LayerSparsity: []float64{0.1, 0.9},
	}})
	valid := buf.String()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add("model,pattern,sample,layer,latency_ns,sparsity\nm,dense,0,0,xx,0.5\n")
	f.Add("model,pattern,sample,layer,latency_ns,sparsity\nm,dense,1,0,100,0.5\n")
	f.Add("")
	f.Add("a,b\n1,2\n")

	f.Fuzz(func(t *testing.T, data string) {
		key, traces, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		var out bytes.Buffer
		if err := WriteCSV(&out, key, traces); err != nil {
			t.Fatalf("accepted data failed to re-serialize: %v", err)
		}
		key2, traces2, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-serialized data failed to parse: %v", err)
		}
		if key2 != key || len(traces2) != len(traces) {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
				key, len(traces), key2, len(traces2))
		}
		for i := range traces {
			for l := range traces[i].LayerLatency {
				if traces[i].LayerLatency[l] != traces2[i].LayerLatency[l] ||
					traces[i].LayerSparsity[l] != traces2[i].LayerSparsity[l] {
					t.Fatalf("round trip changed sample %d layer %d", i, l)
				}
			}
		}
	})
}
