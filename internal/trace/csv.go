package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"sparsedysta/internal/sparsity"
)

// CSV layout, mirroring the paper's "save as files" step (Fig. 7): one row
// per (sample, layer) with columns
//
//	model, pattern, sample, layer, latency_ns, sparsity
//
// A header row is written first. Rows must be grouped by sample and
// ordered by layer, which is how WriteCSV emits them.

var csvHeader = []string{"model", "pattern", "sample", "layer", "latency_ns", "sparsity"}

// WriteCSV writes the traces of one model-pattern pair.
func WriteCSV(w io.Writer, k Key, traces []SampleTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i, tr := range traces {
		for l := range tr.LayerLatency {
			rec := []string{
				k.Model,
				k.Pattern.String(),
				strconv.Itoa(i),
				strconv.Itoa(l),
				strconv.FormatInt(int64(tr.LayerLatency[l]), 10),
				strconv.FormatFloat(tr.LayerSparsity[l], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: writing sample %d layer %d: %w", i, l, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a file written by WriteCSV, returning its key and traces.
func ReadCSV(r io.Reader) (Key, []SampleTrace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return Key{}, nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return Key{}, nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}

	var key Key
	var traces []SampleTrace
	cur := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Key{}, nil, fmt.Errorf("trace: reading row: %w", err)
		}
		pat, err := sparsity.ParsePattern(rec[1])
		if err != nil {
			return Key{}, nil, err
		}
		rowKey := Key{Model: rec[0], Pattern: pat}
		if cur == -1 {
			key = rowKey
		} else if rowKey != key {
			return Key{}, nil, fmt.Errorf("trace: mixed keys in one file: %v and %v", key, rowKey)
		}
		sample, err := strconv.Atoi(rec[2])
		if err != nil {
			return Key{}, nil, fmt.Errorf("trace: bad sample index %q: %w", rec[2], err)
		}
		layer, err := strconv.Atoi(rec[3])
		if err != nil {
			return Key{}, nil, fmt.Errorf("trace: bad layer index %q: %w", rec[3], err)
		}
		latNS, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return Key{}, nil, fmt.Errorf("trace: bad latency %q: %w", rec[4], err)
		}
		sp, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return Key{}, nil, fmt.Errorf("trace: bad sparsity %q: %w", rec[5], err)
		}

		switch {
		case sample == cur+1 && layer == 0:
			traces = append(traces, SampleTrace{})
			cur = sample
		case sample == cur && layer == len(traces[cur].LayerLatency):
			// next layer of the current sample
		default:
			return Key{}, nil, fmt.Errorf("trace: row out of order: sample %d layer %d after sample %d",
				sample, layer, cur)
		}
		tr := &traces[cur]
		tr.LayerLatency = append(tr.LayerLatency, time.Duration(latNS))
		tr.LayerSparsity = append(tr.LayerSparsity, sp)
	}
	if cur == -1 {
		return Key{}, nil, fmt.Errorf("trace: file has no data rows")
	}
	return key, traces, nil
}
