package wallclock_test

import (
	"testing"

	"sparsedysta/internal/analysis/analysistest"
	"sparsedysta/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "wallclock")
}
