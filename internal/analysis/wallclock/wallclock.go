// Package wallclock forbids reading the wall clock in virtual-clock
// packages. The simulation's only time source is the event loop
// (reference units advanced by sched.Engine.Step); a stray time.Now or
// time.Sleep couples results to the host machine and breaks
// cross-process reproducibility. CLI packages under cmd/ are exempt —
// the suite driver never applies this analyzer there — because wall
// time is legitimate for progress reporting and bench stamping.
package wallclock

import (
	"go/ast"

	"sparsedysta/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Sleep and friends in virtual-clock packages; " +
		"simulation time must come from the event loop",
	Run: run,
}

// forbidden lists the package-level time functions that read or wait on
// the wall clock. Pure duration/formatting helpers (ParseDuration,
// Duration.String) stay allowed: the codebase uses time.Duration as its
// reference unit everywhere.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(sel.X)
			if pn == nil || pn.Imported().Path() != "time" || !forbidden[sel.Sel.Name] {
				return true
			}
			if pass.Allowed(sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in a virtual-clock package: simulation time "+
				"advances only through the event loop; thread a reference-unit instant instead "+
				"or annotate //dysta:allow wallclock <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil
}
