// Package wallclock is golden input for the wallclock analyzer.
package wallclock

import (
	"time"

	vt "time"
)

// Flagged: direct wall-clock reads and waits.
func bad() time.Duration {
	start := time.Now()          // want `wall-clock time.Now`
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep`
	return time.Since(start)     // want `wall-clock time.Since`
}

// Flagged: the import alias does not hide the package identity, and a
// method value counts the same as a call.
func aliased() func() vt.Time {
	return vt.Now // want `wall-clock time.Now`
}

// Clean: durations, parsing, and formatting never touch the clock.
func durations(d time.Duration) string {
	if d > 5*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	parsed, _ := time.ParseDuration("20ms")
	return parsed.String()
}

// Clean: an explicit waiver with its justification.
func waived() time.Time {
	return time.Now() //dysta:allow wallclock process start stamp for log file names only
}

// Flagged: sleeping has no meaning on the virtual clock.
func sleepy() {
	time.Sleep(time.Second) // want `wall-clock time.Sleep`
}
