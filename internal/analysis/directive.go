package analysis

import (
	"go/token"
	"strings"
)

// A Directive is one parsed //dysta: suppression comment.
//
// Two forms exist:
//
//	//dysta:ordered <reason>          — this map traversal (or this
//	                                    accumulation) is order-insensitive
//	                                    for the stated reason
//	//dysta:allow <analyzer> <reason> — this specific finding of the
//	                                    named analyzer is intentional
//
// A directive suppresses a diagnostic when it sits on the reported
// line itself or on the line immediately above it. The <reason> is
// mandatory: a bare directive does not suppress anything and is itself
// reported, so every waiver in the tree carries its justification.
type Directive struct {
	Pos      token.Pos
	Line     int    // line the comment occupies
	File     string // file the comment occupies
	Kind     string // "ordered" or "allow"
	Analyzer string // target analyzer for "allow", "" for "ordered"
	Reason   string // justification text; "" means malformed
}

const directivePrefix = "//dysta:"

// Directives parses and caches every //dysta: comment in the pass's
// files.
func (p *Pass) Directives() []Directive {
	if p.directives != nil {
		return p.directives
	}
	p.directives = []Directive{} // non-nil: parse once even if empty
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				// Allow analysistest golden files to carry a // want
				// expectation in the same line comment as a directive.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := Directive{
					Pos:  c.Pos(),
					Line: pos.Line,
					File: pos.Filename,
				}
				switch kind := fields[0]; kind {
				case "ordered":
					d.Kind = "ordered"
					d.Reason = strings.TrimSpace(strings.TrimPrefix(rest, "ordered"))
				case "allow":
					d.Kind = "allow"
					if len(fields) >= 2 {
						d.Analyzer = fields[1]
						idx := strings.Index(rest, fields[1])
						d.Reason = strings.TrimSpace(rest[idx+len(fields[1]):])
					}
				default:
					// Unknown //dysta: directives are surfaced rather
					// than silently ignored, so typos cannot disable a
					// check.
					d.Kind = kind
				}
				p.directives = append(p.directives, d)
			}
		}
	}
	return p.directives
}

// suppressedBy reports whether a matching directive covers pos, and
// reports malformed matches (missing reason) exactly once as their own
// diagnostics. match decides whether a well-formed directive applies.
func (p *Pass) suppressedBy(pos token.Pos, match func(Directive) bool) bool {
	where := p.Fset.Position(pos)
	for i := range p.Directives() {
		d := &p.directives[i]
		if d.File != where.Filename || (d.Line != where.Line && d.Line != where.Line-1) {
			continue
		}
		if !match(*d) {
			continue
		}
		if d.Reason == "" {
			// Report through the suppression site once, then blank the
			// kind so a second finding on the same line does not
			// duplicate the complaint (the directive still never
			// suppresses).
			p.Reportf(d.Pos, "//dysta:%s suppression is missing its mandatory reason", d.Kind)
			d.Kind = d.Kind + " (reported)"
			return false
		}
		return true
	}
	return false
}

// Ordered reports whether a well-formed //dysta:ordered directive
// covers pos.
func (p *Pass) Ordered(pos token.Pos) bool {
	return p.suppressedBy(pos, func(d Directive) bool { return d.Kind == "ordered" })
}

// Allowed reports whether a well-formed //dysta:allow directive for
// this pass's analyzer covers pos.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.suppressedBy(pos, func(d Directive) bool {
		return d.Kind == "allow" && d.Analyzer == p.Analyzer.Name
	})
}
