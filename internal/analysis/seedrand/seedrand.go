// Package seedrand forbids math/rand (and math/rand/v2) in favour of
// the repository's seeded internal/rng substreams. The global
// math/rand functions share one process-wide source, so two engines
// drawing from it interleave nondeterministically and every schedule
// becomes a function of cluster size and goroutine timing; rand.New
// sources are no better, because nothing ties their seeds to the
// experiment seed. internal/rng's Split substreams keep engine i's
// stream independent of how many other engines exist (see
// cluster.GenChurn).
package seedrand

import (
	"go/ast"
	"go/types"

	"sparsedysta/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc: "forbids math/rand global functions and ad-hoc sources; randomness " +
		"must come from seeded internal/rng substreams",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(sel.X)
			if pn == nil {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Naming a type (rand.Rand in a signature) draws nothing;
			// only function and variable references are hazards.
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			if pass.Allowed(sel.Pos()) {
				return true
			}
			switch sel.Sel.Name {
			case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
				pass.Reportf(sel.Pos(), "ad-hoc %s source %s: derive a substream from the experiment "+
					"seed via internal/rng (rng.New + Source.Split) so per-engine schedules stay "+
					"independent of cluster size, or annotate //dysta:allow seedrand <reason>",
					path, sel.Sel.Name)
			default:
				pass.Reportf(sel.Pos(), "global %s.%s draws from the shared process-wide source: "+
					"use a seeded internal/rng substream, or annotate //dysta:allow seedrand <reason>",
					pn.Name(), sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
