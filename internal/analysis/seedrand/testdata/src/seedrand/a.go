// Package seedrand is golden input for the seedrand analyzer.
package seedrand

import (
	"math/rand"
	rv2 "math/rand/v2"
)

// Flagged: the package-level functions draw from the process-wide
// shared source.
func global() int {
	return rand.Intn(10) // want `global rand.Intn draws from the shared process-wide source`
}

// Flagged: v2 is the same hazard behind an alias.
func globalV2() uint64 {
	return rv2.Uint64() // want `global rv2.Uint64 draws from the shared process-wide source`
}

// Flagged twice: an ad-hoc source, however it is seeded, is invisible
// to the experiment seed plumbing.
func adHoc() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `ad-hoc math/rand source New` `ad-hoc math/rand source NewSource`
}

// Flagged: shuffling through the global source.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

// Clean: a justified waiver.
func waived() float64 {
	return rand.Float64() //dysta:allow seedrand jitter for a log message, never observed by the simulation
}
