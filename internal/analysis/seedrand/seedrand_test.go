package seedrand_test

import (
	"testing"

	"sparsedysta/internal/analysis/analysistest"
	"sparsedysta/internal/analysis/seedrand"
)

func TestSeedrand(t *testing.T) {
	analysistest.Run(t, "testdata", seedrand.Analyzer, "seedrand")
}
