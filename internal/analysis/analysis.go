// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, specialised for the dysta-lint suite.
//
// The repository's determinism contracts (virtual clock, seeded
// internal/rng substreams, sorted-order map traversals, bit-identical
// equivalence suites) are enforced by static analyzers built on this
// package. The x/tools module is deliberately not imported: the build
// must stay self-contained, so the three pieces dysta-lint needs — the
// Analyzer/Pass/Diagnostic vocabulary, a source-level package loader,
// and the `go vet -vettool` unit-checker protocol — are implemented
// here against the standard library only.
//
// Analyzers live in subpackages (detrange, wallclock, seedrand,
// floatorder, gospawn); the suite subpackage maps each analyzer onto
// the import paths whose determinism contract it guards; cmd/dysta-lint
// is the multichecker driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors the x/tools
// analysis.Analyzer surface that dysta-lint relies on.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dysta:allow suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string

	// Run applies the analyzer to a typechecked package, reporting
	// findings through pass.Report.
	Run func(*Pass) error
}

// A Pass provides one analyzer with a single typechecked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)

	directives []Directive           // lazily built by Directives
	parents    map[ast.Node]ast.Node // lazily built by Parent
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// IsTestFile reports whether the file enclosing pos is a _test.go file.
// The determinism contracts bind production code; tests routinely range
// over maps to assert on their contents, so every analyzer in the suite
// skips test files through this helper.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// PkgNameOf resolves e to the *types.PkgName it denotes, or nil. It is
// how analyzers recognise qualified references (time.Now, rand.Intn)
// robustly across import aliases.
func (p *Pass) PkgNameOf(e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.TypesInfo.Uses[id].(*types.PkgName)
	return pn
}

// Parent returns the immediate syntactic parent of n within the pass's
// files, building the parent index on first use.
func (p *Pass) Parent(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = make(map[ast.Node]ast.Node)
		for _, f := range p.Files {
			stack := []ast.Node{f}
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				p.parents[n] = stack[len(stack)-1]
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents[n]
}

// EnclosingFunc returns the top-level function declaration containing n,
// or nil when n sits outside any function body.
func (p *Pass) EnclosingFunc(n ast.Node) *ast.FuncDecl {
	for c := n; c != nil; c = p.Parent(c) {
		if fd, ok := c.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// EnclosingBlock returns the innermost *ast.BlockStmt that directly or
// transitively contains n, or nil.
func (p *Pass) EnclosingBlock(n ast.Node) *ast.BlockStmt {
	for c := p.Parent(n); c != nil; c = p.Parent(c) {
		if b, ok := c.(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to pkg and returns the merged
// diagnostics in file/position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}
