package floatorder_test

import (
	"testing"

	"sparsedysta/internal/analysis/analysistest"
	"sparsedysta/internal/analysis/floatorder"
)

func TestFloatorder(t *testing.T) {
	analysistest.Run(t, "testdata", floatorder.Analyzer, "floatorder")
}
