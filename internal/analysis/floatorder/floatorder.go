// Package floatorder flags floating-point accumulation inside the body
// of a map range. Float addition is not associative, so `sum += v`
// driven by map iteration yields a different low-order result every
// run — the exact hazard sched.NewEstimator documents and works around
// by accumulating in sorted-model order.
//
// The check is independent of detrange on purpose: a range annotated
// `//dysta:ordered` for a coarse reason still gets its float
// accumulations reported individually, so a blanket waiver on the loop
// cannot silently absorb a numeric one. Suppressing a specific
// accumulation takes a `//dysta:ordered <reason>` on the accumulation's
// own line (or the line above it).
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"sparsedysta/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc: "flags floating-point accumulation inside map-range bodies, where " +
		"non-associative addition order follows the random iteration order",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rs)
			// Nested map ranges are visited again by the outer
			// Inspect, so their accumulations are judged in their own
			// right; stop here to avoid double-reporting this body.
			return true
		})
	}
	return nil
}

// checkBody reports every order-sensitive float accumulation directly
// inside rs's body (including within nested non-map loops, whose trip
// order is still driven by the map).
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs {
			if t := pass.TypeOf(inner.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false // the inner map range owns its body
				}
			}
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if target := accumTarget(pass, as); target != "" {
			if crossesIterations(pass, rs, as) && !pass.Ordered(as.Pos()) {
				pass.Reportf(as.Pos(), "floating-point accumulation into %s inside a map-range body: "+
					"addition order follows the nondeterministic iteration order; accumulate over "+
					"sorted keys (see sched.NewEstimator) or annotate //dysta:ordered <reason>", target)
			}
		}
		return true
	})
}

// accumTarget reports the printed lvalue when as is a float
// accumulation (x += e, x -= e, x *= e, or x = x + e and variants), or
// "" otherwise.
func accumTarget(pass *analysis.Pass, as *ast.AssignStmt) string {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return ""
	}
	lhs := as.Lhs[0]
	if !isFloat(pass.TypeOf(lhs)) {
		return ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		return types.ExprString(lhs)
	case token.ASSIGN:
		// x = x + e / x = e + x, and the - and * forms.
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return ""
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL:
		default:
			return ""
		}
		want := types.ExprString(lhs)
		if types.ExprString(bin.X) == want || types.ExprString(bin.Y) == want {
			return want
		}
	}
	return ""
}

// crossesIterations reports whether the accumulation target outlives a
// single iteration of rs: a variable declared inside the body resets
// every pass and cannot observe iteration order.
func crossesIterations(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) bool {
	// Strip selector/index layers: agg.ANTT lives exactly as long as
	// agg does — unless agg can alias longer-lived memory.
	lhs := as.Lhs[0]
	stripped := false
	for {
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			lhs, stripped = x.X, true
			continue
		case *ast.IndexExpr:
			lhs, stripped = x.X, true
			continue
		case *ast.ParenExpr:
			lhs = x.X
			continue
		}
		break
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		// Dereferences and other indirect lvalues; assume they escape
		// the iteration.
		return true
	}
	if stripped {
		if t := pass.TypeOf(id); t != nil {
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Slice, *types.Map, *types.Interface:
				return true
			}
		}
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End()
}

// isFloat reports whether t's underlying type is a float or complex
// kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
