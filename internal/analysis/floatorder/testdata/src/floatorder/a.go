// Package floatorder is golden input for the floatorder analyzer.
package floatorder

// Flagged: the classic non-associativity hazard.
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation into s`
	}
	return s
}

// Flagged: the spelled-out form and the subtractive form.
func forms(m map[string]float64) (a, b float64) {
	for _, v := range m {
		a = a + v // want `floating-point accumulation into a`
		b -= v    // want `floating-point accumulation into b`
	}
	return a, b
}

// Flagged: accumulation into longer-lived structured state.
type agg struct{ total float64 }

func intoField(m map[string]float64, out *agg) {
	for _, v := range m {
		out.total += v // want `floating-point accumulation into out.total`
	}
}

// Flagged: a nested slice loop inside the map range still follows map
// order.
func nested(m map[string][]float64) float64 {
	var s float64
	for _, vs := range m {
		for _, v := range vs {
			s += v // want `floating-point accumulation into s`
		}
	}
	return s
}

// Clean: integer accumulation is commutative and exact.
func count(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// Clean: the accumulator dies with the iteration — per-key means never
// observe cross-key order.
func perKeyMean(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out[k] = local / float64(len(vs))
	}
	return out
}

// Clean: a value-typed struct local is iteration-scoped even when the
// accumulation goes through a field.
func localStruct(m map[string][]float64) map[string]agg {
	out := make(map[string]agg, len(m))
	for k, vs := range m {
		var a agg
		for _, v := range vs {
			a.total += v
		}
		out[k] = a
	}
	return out
}

// Clean: accumulation over a slice is ordered by the slice.
func sliceSum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// Clean: an explicit waiver on the accumulation itself.
func waived(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		//dysta:ordered result only feeds a greater-than-zero check
		s += v
	}
	return s
}
