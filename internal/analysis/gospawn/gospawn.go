// Package gospawn flags `go` statements outside the approved
// worker-pool sites. The repository's two sanctioned fan-outs —
// exp.(*Pipeline).RunGrid's cell workers and workload.BuildStores's
// per-entry builders — are engineered to be byte-identical to their
// sequential counterparts (per-cell seeds, commit-in-entry-order); an
// ad-hoc goroutine anywhere else is how scheduling nondeterminism
// sneaks into grids.
package gospawn

import (
	"go/ast"
	"strings"

	"sparsedysta/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "gospawn",
	Doc: "flags go statements outside the approved worker-pool sites " +
		"(exp.RunGrid, workload.BuildStores)",
	Run: run,
}

// Approved lists the functions allowed to spawn goroutines, as
// "import/path.Func" or "import/path.Receiver.Method". Tests point this
// at their own fixtures; the default covers the two deterministic
// worker pools.
var Approved = []string{
	"sparsedysta/internal/exp.Pipeline.RunGrid",
	"sparsedysta/internal/workload.BuildStores",
}

func run(pass *analysis.Pass) error {
	approved := make(map[string]bool, len(Approved))
	for _, site := range Approved {
		approved[site] = true
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			site := "package scope"
			if fd := pass.EnclosingFunc(gs); fd != nil {
				site = siteName(pass, fd)
				if approved[site] {
					return true
				}
			}
			if pass.Allowed(gs.Pos()) {
				return true
			}
			pass.Reportf(gs.Pos(), "go statement in %s, outside the approved worker-pool sites: "+
				"ad-hoc goroutines make schedules depend on goroutine timing; route the fan-out "+
				"through exp.RunGrid or workload.BuildStores, or annotate //dysta:allow gospawn <reason>",
				site)
			return true
		})
	}
	return nil
}

// siteName renders fd as "pkgpath.Func" or "pkgpath.Receiver.Method",
// with any pointer star dropped from the receiver.
func siteName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		recv := fd.Recv.List[0].Type
		if star, ok := recv.(*ast.StarExpr); ok {
			recv = star.X
		}
		if id, ok := recv.(*ast.Ident); ok {
			name = id.Name + "." + name
		} else if ix, ok := recv.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
	}
	path := strings.TrimSuffix(pass.Pkg.Path(), "/")
	return path + "." + name
}
