package gospawn_test

import (
	"testing"

	"sparsedysta/internal/analysis/analysistest"
	"sparsedysta/internal/analysis/gospawn"
)

func TestGospawn(t *testing.T) {
	saved := gospawn.Approved
	defer func() { gospawn.Approved = saved }()
	gospawn.Approved = append([]string{"gospawn.BuildAll", "gospawn.Pool.Run"}, saved...)

	analysistest.Run(t, "testdata", gospawn.Analyzer, "gospawn")
}

// TestDefaultApproved pins the production allowlist to the two
// deterministic worker pools; growing it is a determinism-contract
// change that should be made deliberately.
func TestDefaultApproved(t *testing.T) {
	want := map[string]bool{
		"sparsedysta/internal/exp.Pipeline.RunGrid": true,
		"sparsedysta/internal/workload.BuildStores": true,
	}
	if len(gospawn.Approved) != len(want) {
		t.Fatalf("Approved = %v, want the two deterministic worker pools", gospawn.Approved)
	}
	for _, site := range gospawn.Approved {
		if !want[site] {
			t.Errorf("unexpected approved site %q", site)
		}
	}
}
