// Package gospawn is golden input for the gospawn analyzer. The test
// registers gospawn.BuildAll and gospawn.Pool.Run as approved sites.
package gospawn

import "sync"

// Flagged: an ad-hoc goroutine in an ordinary function.
func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() { // want `go statement in gospawn.fanOut`
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}

// Clean: an approved plain-function site.
func BuildAll(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}

type Pool struct{ jobs chan func() }

// Clean: an approved method site, pointer receiver included.
func (p *Pool) Run(workers int) {
	for i := 0; i < workers; i++ {
		go func() {
			for j := range p.jobs {
				j()
			}
		}()
	}
}

// Flagged: other methods of the same type are not blessed by the
// receiver.
func (p *Pool) Drain() {
	go func() { // want `go statement in gospawn.Pool.Drain`
		for range p.jobs {
		}
	}()
}

// Clean: a justified waiver.
func waived(done chan struct{}) {
	//dysta:allow gospawn fire-and-forget close, joined before any simulation state is read
	go close(done)
}
