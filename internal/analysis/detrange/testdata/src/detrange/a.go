// Package detrange is golden input for the detrange analyzer: map
// traversals that must be flagged, the order-insensitive shapes that
// must not be, and the //dysta:ordered suppression contract.
package detrange

import (
	"sort"
	"strings"
)

var sink []string

// Flagged: the append publishes iteration order and nothing re-sorts it.
func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m`
		keys = append(keys, k)
	}
	return keys
}

// Clean: the collect-then-sort idiom.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clean: collect under a pure condition, sorted via the slices-style
// sort.Slice form.
func collectFiltered(m map[string]int) []string {
	var keys []string
	for k := range m {
		if strings.HasPrefix(k, "ablation-") {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Clean: commutative integer accumulation.
func countValues(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// Clean: writes keyed by the ranged key touch a distinct entry each
// iteration; the normalise idiom on the value copy is body-local.
func normalize(m map[string]metrics) {
	for k, v := range m {
		v.antt /= float64(v.requests)
		m[k] = v
	}
}

// Clean: per-key deletes.
func clear2(m map[string]int, dead map[string]bool) {
	for k := range dead {
		delete(m, k)
	}
}

// Flagged: the early return races against iteration order.
func firstError(m map[string]error) error {
	for _, err := range m { // want `range over map m`
		if err != nil {
			return err
		}
	}
	return nil
}

// Flagged: calling an arbitrary function can observe order.
func visit(m map[string]int, f func(string)) {
	for k := range m { // want `range over map m`
		f(k)
	}
}

// Flagged: float accumulation is order-sensitive even though it looks
// like the counting shape.
func meanLatency(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map m`
		sum += v
	}
	return sum / float64(len(m))
}

// Flagged: reading the accumulator mid-loop makes control flow depend
// on visit order.
func cappedCount(m map[string]int) int {
	n := 0
	for range m { // want `range over map m`
		if n > 3 {
			continue
		}
		n++
	}
	return n
}

// Clean: an explicit, justified waiver on the line above.
func waived(m map[string]int) {
	//dysta:ordered every entry is printed on its own line and the consumer sorts
	for k, v := range m {
		sink = append(sink, k)
		_ = v
	}
}

// Flagged twice: a bare directive both fails to suppress and is itself
// reported for the missing reason.
func bareWaiver(m map[string]int) {
	//dysta:ordered // want `missing its mandatory reason`
	for k := range m { // want `range over map m`
		sink = append(sink, k)
	}
}

// Clean: a local pointer does not launder an escaping write — this one
// stays flagged.
func pointerEscape(m map[string]int, total *float64) {
	for _, v := range m { // want `range over map m`
		p := total
		p2 := p
		*p2 += float64(v)
	}
}

type metrics struct {
	requests int
	antt     float64
}
