// Package detrange flags `range` statements over maps in the
// deterministic packages. Go randomises map iteration order per run, so
// any map traversal whose effect depends on visit order breaks the
// repository's bit-identical reproducibility contract (doc.go of
// internal/sched, internal/cluster, internal/exp).
//
// A traversal escapes the diagnostic in exactly two ways:
//
//   - Its body is provably order-insensitive: every statement is a
//     commutative integer accumulation, a write keyed by the ranged
//     key, a per-key delete, a body-local definition, or a
//     collect-into-slice append whose slice is sorted later in the same
//     block (the collect-then-sort idiom of sched/baselines.go).
//   - It carries an explicit `//dysta:ordered <reason>` suppression on
//     the range line or the line above.
//
// Everything else — early returns, calls with side effects, float
// accumulation, appends that are never sorted — is reported.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"sparsedysta/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map traversals in deterministic packages unless provably " +
		"order-insensitive or suppressed with //dysta:ordered <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) || pass.Ordered(rs.Pos()) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s: iteration order is nondeterministic; "+
				"collect keys and sort (see sched.NewEstimator) or annotate //dysta:ordered <reason>",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// prover holds the state of the order-insensitivity proof for one
// map-range body.
type prover struct {
	pass *analysis.Pass
	rs   *ast.RangeStmt

	keyObj types.Object // object of the ranged key variable, if an ident

	// accums maps each non-local object the body writes commutatively
	// (count++, n += len(v), bits |= f) to the identifiers that
	// perform those writes; any *other* read of the object breaks
	// commutativity (e.g. `if count > 3` mid-loop).
	accums map[types.Object][]*ast.Ident

	// collects maps each slice object built by `s = append(s, ...)` to
	// its writing identifiers; the proof additionally demands a
	// sort.X/slices.X call on the slice later in the enclosing block.
	collects map[types.Object][]*ast.Ident

	// locals are objects declared inside the body: writes to them
	// cannot leak state across iterations into the caller.
	locals map[types.Object]bool
}

// orderInsensitive reports whether the body of rs provably has the same
// effect under every map iteration order.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	p := &prover{
		pass:     pass,
		rs:       rs,
		accums:   make(map[types.Object][]*ast.Ident),
		collects: make(map[types.Object][]*ast.Ident),
		locals:   make(map[types.Object]bool),
	}
	if id, ok := rs.Key.(*ast.Ident); ok {
		p.keyObj = pass.TypesInfo.Defs[id]
		if p.keyObj == nil {
			p.keyObj = pass.TypesInfo.Uses[id]
		}
	}
	// The key and value variables rebind every iteration: writes
	// through them cannot carry state across iterations.
	p.noteLocal(rs.Key)
	p.noteLocal(rs.Value)
	for _, s := range rs.Body.List {
		if !p.stmtOK(s) {
			return false
		}
	}
	if !p.readsAreClean() {
		return false
	}
	for obj := range p.collects {
		if !p.sortedLater(obj) {
			return false
		}
	}
	return true
}

// stmtOK classifies one body statement as order-insensitive, recording
// accumulators and collect targets as it goes.
func (p *prover) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return p.assignOK(s)
	case *ast.IncDecStmt:
		return p.lvalueAccumOK(s.X)
	case *ast.ExprStmt:
		// delete(m, k) removes a distinct entry per iteration.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
				if p.isKey(call.Args[1]) && p.exprPure(call.Args[0]) {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !p.stmtOK(s.Init) {
			return false
		}
		if !p.exprPure(s.Cond) {
			return false
		}
		for _, b := range s.Body.List {
			if !p.stmtOK(b) {
				return false
			}
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				for _, b := range e.List {
					if !p.stmtOK(b) {
						return false
					}
				}
			case *ast.IfStmt:
				return p.stmtOK(e)
			default:
				return false
			}
		}
		return true
	case *ast.BlockStmt:
		for _, b := range s.List {
			if !p.stmtOK(b) {
				return false
			}
		}
		return true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR && gd.Tok != token.CONST {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !p.exprPure(v) {
					return false
				}
			}
			for _, name := range vs.Names {
				if obj := p.pass.TypesInfo.Defs[name]; obj != nil {
					p.locals[obj] = true
				}
			}
		}
		return true
	case *ast.BranchStmt:
		// `continue` merely skips an iteration; break/goto/labels make
		// the set of visited entries order-dependent.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.RangeStmt:
		// A nested traversal of a slice/array (typically the ranged
		// value) stays inside this iteration; nested map ranges are
		// judged as their own sites, so treating the statement as
		// opaque here would double-report.
		t := p.pass.TypeOf(s.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return false
		}
		if !p.exprPure(s.X) {
			return false
		}
		p.noteLocal(s.Key)
		p.noteLocal(s.Value)
		for _, b := range s.Body.List {
			if !p.stmtOK(b) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// noteLocal records a range/assign-defined ident as body-local.
func (p *prover) noteLocal(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.pass.TypesInfo.Defs[id]; obj != nil {
			p.locals[obj] = true
		}
	}
}

// assignOK classifies an assignment statement.
func (p *prover) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		// Fresh body-local bindings; the initialisers must be pure.
		for _, rhs := range s.Rhs {
			if !p.exprPure(rhs) {
				return false
			}
		}
		for _, lhs := range s.Lhs {
			p.noteLocal(lhs)
		}
		return true
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		// s = append(s, pure...) — the collect half of
		// collect-then-sort; order lands in the slice, so the proof
		// completes only if the slice is sorted afterwards.
		if target, args, ok := appendTo(lhs, rhs); ok {
			obj := p.objOf(target)
			if obj == nil {
				return false
			}
			for _, a := range args {
				if !p.exprPure(a) {
					return false
				}
			}
			p.collects[obj] = append(p.collects[obj], identsOf(lhs, rhs)...)
			return true
		}
		// Plain overwrite of a body-local temp (m.ANTT = 0 on the
		// range value variable included).
		if p.localWrite(lhs) {
			return p.exprPure(rhs)
		}
		// other[k] = pure — a write to a distinct key per iteration.
		if p.keyedWrite(lhs) {
			return p.exprPure(rhs)
		}
		return false
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !p.exprPure(s.Rhs[0]) {
			return false
		}
		if p.localWrite(s.Lhs[0]) {
			return true
		}
		if p.keyedWrite(s.Lhs[0]) {
			return true
		}
		return p.lvalueAccumOK(s.Lhs[0])
	default:
		// The remaining compound assignments (-=, *=, /=, shifts) are
		// not commutative-safe in general; they are accepted only on
		// state that dies with the iteration — the normalise idiom
		// `m.ANTT /= float64(m.Requests)` on the range value variable,
		// never on anything that outlives the loop.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !p.exprPure(s.Rhs[0]) {
			return false
		}
		return p.localWrite(s.Lhs[0])
	}
}

// lvalueAccumOK accepts ++/+=-style updates of integer lvalues,
// registering them as accumulators, and of body-locals.
func (p *prover) lvalueAccumOK(e ast.Expr) bool {
	obj := p.objOf(e)
	if obj == nil {
		return false
	}
	if p.locals[obj] {
		return true
	}
	if !isInteger(obj.Type()) {
		// Float accumulation is exactly the non-associativity hazard;
		// floatorder reports the statement, detrange reports the range.
		return false
	}
	if id, ok := e.(*ast.Ident); ok {
		p.accums[obj] = append(p.accums[obj], id)
		return true
	}
	return false
}

// keyedWrite reports whether lhs is an index expression keyed by the
// ranged key variable — each iteration then touches a distinct element.
func (p *prover) keyedWrite(lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok || p.keyObj == nil {
		return false
	}
	return p.isKey(ix.Index) && p.exprPure(ix.X)
}

// isKey reports whether e denotes the ranged key variable.
func (p *prover) isKey(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && p.keyObj != nil && p.pass.TypesInfo.Uses[id] == p.keyObj
}

// objOf resolves an lvalue expression to a variable object (idents and
// selector fields), or nil when it has no stable identity.
func (p *prover) objOf(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := p.pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return p.pass.TypesInfo.Defs[e]
	}
	return nil
}

// baseObjOf strips selector and index layers off an lvalue and resolves
// the base identifier (agg in agg.ANTT, m in m[i].x), or nil.
// Dereferences are not stripped: a write through a pointer escapes
// whatever scope the pointer variable lives in.
func (p *prover) baseObjOf(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return p.objOf(e)
		}
	}
}

// localWrite reports whether lhs writes state that dies with the
// iteration: a body-local variable, or a field/element of one whose
// type is a value type (a local pointer, slice, or map may alias state
// that outlives the loop).
func (p *prover) localWrite(lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok {
		obj := p.objOf(id)
		return obj != nil && p.locals[obj]
	}
	obj := p.baseObjOf(lhs)
	return obj != nil && p.locals[obj] && !isRef(obj.Type())
}

// isRef reports whether t can alias memory not owned by the variable
// holding it.
func isRef(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// exprPure reports whether evaluating e cannot produce side effects or
// order-dependent values: no calls (except len/cap/min/max and type
// conversions of pure operands), no channel receives.
func (p *prover) exprPure(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !p.pureCall(n) {
				pure = false
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return pure
	})
	return pure
}

// purePkgs lists standard-library packages whose exported functions are
// free of side effects and process-level nondeterminism, so calling
// them inside a map-range body cannot make the body order-sensitive.
var purePkgs = map[string]bool{
	"strings":      true,
	"math":         true,
	"math/bits":    true,
	"unicode":      true,
	"unicode/utf8": true,
	"strconv":      true,
}

// pureCall accepts len/cap/min/max, type conversions, and calls into
// the whitelisted pure standard-library packages.
func (p *prover) pureCall(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "min", "max":
			if obj := p.pass.TypesInfo.Uses[id]; obj != nil {
				_, isBuiltin := obj.(*types.Builtin)
				return isBuiltin
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pn := p.pass.PkgNameOf(sel.X); pn != nil && purePkgs[pn.Imported().Path()] {
			return true
		}
	}
	if tv, ok := p.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// readsAreClean verifies that no accumulator or collect target is read
// anywhere in the body other than at its own write sites. Reading an
// accumulator mid-loop (`if count > 3`) makes the control flow depend
// on visit order.
func (p *prover) readsAreClean() bool {
	writers := make(map[*ast.Ident]bool)
	tracked := make(map[types.Object]bool)
	for obj, ids := range p.accums {
		tracked[obj] = true
		for _, id := range ids {
			writers[id] = true
		}
	}
	for obj, ids := range p.collects {
		tracked[obj] = true
		for _, id := range ids {
			writers[id] = true
		}
	}
	clean := true
	ast.Inspect(p.rs.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writers[id] {
			return true
		}
		if obj := p.pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] {
			clean = false
		}
		return clean
	})
	return clean
}

// sortedLater reports whether the enclosing block sorts the collected
// slice after the range statement: a sort.X(...) or slices.X(...) call,
// or a sort.Sort/Stable over a type constructed from it, mentioning the
// slice object in its arguments.
func (p *prover) sortedLater(obj types.Object) bool {
	block := p.pass.EnclosingBlock(p.rs)
	if block == nil {
		return false
	}
	past := false
	for _, s := range block.List {
		if s == ast.Stmt(p.rs) {
			past = true
			continue
		}
		if !past {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pn := p.pass.PkgNameOf(sel.X)
		if pn == nil {
			continue
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			continue
		}
		mentions := false
		for _, a := range call.Args {
			ast.Inspect(a, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && p.pass.TypesInfo.Uses[id] == obj {
					mentions = true
				}
				return !mentions
			})
		}
		if mentions {
			return true
		}
	}
	return false
}

// appendTo matches the collect shape `lhs = append(lhs, args...)` where
// lhs is a plain identifier, returning the identifier and the appended
// arguments.
func appendTo(lhs, rhs ast.Expr) (*ast.Ident, []ast.Expr, bool) {
	target, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil, nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return nil, nil, false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != target.Name {
		return nil, nil, false
	}
	return target, call.Args[1:], true
}

// identsOf gathers the identifiers within the given expressions that
// should count as write sites rather than stray reads.
func identsOf(exprs ...ast.Expr) []*ast.Ident {
	var ids []*ast.Ident
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				ids = append(ids, id)
			}
			return true
		})
	}
	return ids
}

// isInteger reports whether t's underlying type is any integer kind.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
