package detrange_test

import (
	"testing"

	"sparsedysta/internal/analysis/analysistest"
	"sparsedysta/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer, "detrange")
}
