// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against `// want`
// comments, mirroring the x/tools harness of the same name on the
// standard library alone.
//
// Expectations are written on the line they apply to:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression; the line must produce exactly one diagnostic per
// expectation, each matched by one of them. Lines without a want
// comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sparsedysta/internal/analysis"
)

// Run loads each named package from dir/src/<pkg>, applies a, and
// reports mismatches between actual diagnostics and // want comments
// through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		loader := analysis.NewLoader(dir)
		p, err := loader.Load(filepath.Join(dir, "src", filepath.FromSlash(pkg)), pkg)
		if err != nil {
			t.Errorf("load %s: %v", pkg, err)
			continue
		}
		diags, err := analysis.RunAnalyzers(p, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, pkg, err)
			continue
		}
		check(t, p, diags)
	}
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRx pulls the quoted expressions out of a want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func check(t *testing.T, p *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// The expectation is the last `// want` marker in the
				// comment, so a //dysta: directive under test can carry
				// its own expectation in the same line comment.
				idx := strings.LastIndex(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column), d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
