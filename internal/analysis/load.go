package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one typechecked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory the files were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and typechecks packages from source, resolving
// standard-library imports through GOROOT source and module-local
// imports (sparsedysta/...) through the module tree. It exists so both
// the standalone dysta-lint driver and the analysistest harness can
// typecheck packages without network access, a populated build cache,
// or golang.org/x/tools.
type Loader struct {
	Fset *token.FileSet

	// ModRoot and ModPath locate the enclosing module so that
	// module-internal import paths resolve from source. Both may be
	// empty when loading self-contained test packages.
	ModRoot string
	ModPath string

	// IncludeTests controls whether _test.go files in the package
	// directory are parsed and typechecked alongside the package.
	IncludeTests bool

	std  types.Importer
	pkgs map[string]*types.Package
}

// NewLoader returns a Loader rooted at the module containing dir (found
// by walking up to go.mod); modRoot and modPath stay empty when no
// module encloses dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Fset: token.NewFileSet(), pkgs: make(map[string]*types.Package)}
	if root, path, err := FindModule(dir); err == nil {
		l.ModRoot, l.ModPath = root, path
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l
}

// FindModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-local paths load from
// source, "unsafe" maps to types.Unsafe, and everything else defers to
// the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.ModPath != "" && (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.load(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path, false)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg.Types
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// goFiles lists the package's source files in dir, sorted by name, with
// _test.go files included only on request.
func goFiles(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// Load parses and typechecks the package rooted at dir under the given
// import path, retaining syntax and type information for analysis.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	return l.load(dir, importPath, l.IncludeTests)
}

func (l *Loader) load(dir, importPath string, includeTests bool) (*Package, error) {
	names, err := goFiles(dir, includeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// External test packages (package foo_test) typecheck
		// separately; dysta-lint's contracts bind production code, so
		// they are simply dropped rather than loaded as a second unit.
		if strings.HasSuffix(f.Name.Name, "_test") && includeTests {
			continue
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModulePackages walks the module tree under root and returns the
// directories containing at least one non-test Go file, each paired
// with its import path. testdata, hidden, and underscore-prefixed
// directories are skipped, matching the go tool's convention.
func ModulePackages(root, modPath string) (dirs, paths []string, err error) {
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFiles(p, false)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs = append(dirs, p)
		paths = append(paths, importPath)
		return nil
	})
	return dirs, paths, err
}
