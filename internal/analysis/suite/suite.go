// Package suite binds the dysta-lint analyzers to the import paths
// whose determinism contract each one guards. Both drivers — the
// standalone walker and the `go vet -vettool` unit checker in
// cmd/dysta-lint — consult the same table, so a package is held to
// identical rules however the linter is invoked.
package suite

import (
	"strings"

	"sparsedysta/internal/analysis"
	"sparsedysta/internal/analysis/detrange"
	"sparsedysta/internal/analysis/floatorder"
	"sparsedysta/internal/analysis/gospawn"
	"sparsedysta/internal/analysis/seedrand"
	"sparsedysta/internal/analysis/wallclock"
)

// Module is the import path of the module the suite polices.
const Module = "sparsedysta"

// deterministic lists the packages whose outputs must be bit-identical
// across processes: the event-loop core, the cluster layered on it, the
// experiment grids, and the stochastic-input generators.
var deterministic = map[string]bool{
	Module + "/internal/sched":    true,
	Module + "/internal/cluster":  true,
	Module + "/internal/exp":      true,
	Module + "/internal/workload": true,
	Module + "/internal/traffic":  true,
	Module + "/internal/hwsched":  true,
}

// A Rule pairs an analyzer with the predicate deciding which packages
// it runs on.
type Rule struct {
	Analyzer *analysis.Analyzer
	Scope    func(pkgPath string) bool
}

// Rules returns the full suite in a fixed order.
func Rules() []Rule {
	inModule := func(p string) bool {
		return p == Module || strings.HasPrefix(p, Module+"/")
	}
	internal := func(p string) bool {
		return strings.HasPrefix(p, Module+"/internal/")
	}
	det := func(p string) bool { return deterministic[p] }
	return []Rule{
		// Map order and float order are hazards only where bit-identity
		// is the contract.
		{detrange.Analyzer, det},
		{floatorder.Analyzer, det},
		// The virtual clock governs every internal package; cmd/ and
		// examples/ own the process boundary where wall time is fine.
		{wallclock.Analyzer, internal},
		// Seeded randomness and sanctioned fan-out are module-wide
		// rules: a CLI drawing from math/rand would already poison
		// reproducibility at the flag-parsing layer.
		{seedrand.Analyzer, inModule},
		{gospawn.Analyzer, inModule},
	}
}

// For returns the analyzers that apply to pkgPath. The path may carry a
// test-variant suffix ("pkg [pkg.test]") as produced by go vet; the
// variant is held to the same rules as the package it shadows.
func For(pkgPath string) []*analysis.Analyzer {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	var as []*analysis.Analyzer
	for _, r := range Rules() {
		if r.Scope(pkgPath) {
			as = append(as, r.Analyzer)
		}
	}
	return as
}
