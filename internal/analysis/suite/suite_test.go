package suite_test

import (
	"testing"

	"sparsedysta/internal/analysis/suite"
)

// names flattens the analyzers applying to path.
func names(path string) map[string]bool {
	out := map[string]bool{}
	for _, a := range suite.For(path) {
		out[a.Name] = true
	}
	return out
}

func TestScopes(t *testing.T) {
	cases := []struct {
		path string
		want []string
	}{
		// Deterministic packages get the full battery.
		{"sparsedysta/internal/sched", []string{"detrange", "floatorder", "wallclock", "seedrand", "gospawn"}},
		{"sparsedysta/internal/cluster", []string{"detrange", "floatorder", "wallclock", "seedrand", "gospawn"}},
		{"sparsedysta/internal/exp", []string{"detrange", "floatorder", "wallclock", "seedrand", "gospawn"}},
		{"sparsedysta/internal/workload", []string{"detrange", "floatorder", "wallclock", "seedrand", "gospawn"}},
		{"sparsedysta/internal/traffic", []string{"detrange", "floatorder", "wallclock", "seedrand", "gospawn"}},
		{"sparsedysta/internal/hwsched", []string{"detrange", "floatorder", "wallclock", "seedrand", "gospawn"}},
		// Supporting internal packages: virtual clock and module-wide
		// rules, but map order may be observed (their outputs feed
		// sorted merges).
		{"sparsedysta/internal/trace", []string{"wallclock", "seedrand", "gospawn"}},
		{"sparsedysta/internal/rng", []string{"wallclock", "seedrand", "gospawn"}},
		// CLIs own the process boundary: wall time is fine there,
		// seeded randomness and sanctioned fan-out still are not.
		{"sparsedysta/cmd/dysta-sim", []string{"seedrand", "gospawn"}},
		{"sparsedysta/examples/work_stealing", []string{"seedrand", "gospawn"}},
		// Foreign packages are out of scope however they are spelled.
		{"fmt", nil},
		{"github.com/other/mod", nil},
	}
	for _, c := range cases {
		got := names(c.path)
		if len(got) != len(c.want) {
			t.Errorf("For(%q) = %v, want %v", c.path, got, c.want)
			continue
		}
		for _, w := range c.want {
			if !got[w] {
				t.Errorf("For(%q) missing %s", c.path, w)
			}
		}
	}
}

// TestVariantSuffix pins that go vet's test-variant import paths
// ("pkg [pkg.test]") are held to the same rules as the package itself.
func TestVariantSuffix(t *testing.T) {
	plain := names("sparsedysta/internal/sched")
	variant := names("sparsedysta/internal/sched [sparsedysta/internal/sched.test]")
	if len(plain) != len(variant) {
		t.Fatalf("test variant scoped differently: %v vs %v", plain, variant)
	}
	for n := range plain {
		if !variant[n] {
			t.Errorf("test variant missing %s", n)
		}
	}
}
