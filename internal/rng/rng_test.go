package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(7)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want %.0f ±5%%", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %.4f, want ~1", variance)
	}
}

func TestNormAt(t *testing.T) {
	r := New(3)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormAt(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("NormAt(5,2) mean = %.4f, want ~5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	rate := 4.0
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("negative exponential deviate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(%.0f) mean = %.5f, want %.5f", rate, mean, 1/rate)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBernoulli(t *testing.T) {
	r := New(17)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate = %.4f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided on %d of 100 draws", same)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []int {
		v := []int{0, 1, 2, 3, 4, 5, 6, 7}
		New(9).Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
		return v
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shuffle not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
