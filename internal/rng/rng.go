// Package rng provides deterministic, splittable pseudo-random number
// generation for the Sparse-DySta simulation stack.
//
// Every stochastic component of the reproduction (dataset synthesis, request
// arrival processes, model-mix sampling) draws from an rng.Source seeded
// explicitly, so that each experiment is reproducible bit-for-bit from its
// seed. The generator is xoshiro256**, seeded through splitmix64, following
// the recommendation of Blackman & Vigna. The package is intentionally free
// of global state.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random number generator.
// It is not safe for concurrent use; derive independent child generators
// with Split for concurrent or per-subsystem streams.
type Source struct {
	s [4]uint64
	// spare holds a cached second normal deviate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// New returns a Source seeded from seed via splitmix64, which guarantees a
// well-distributed internal state even for small or structured seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitmix64(sm)
	}
	// xoshiro256** must not start from the all-zero state.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// splitmix64 advances the splitmix64 state and returns the next state and
// output value.
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one draw.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// simple modulo rejection keeps the stream easy to reason about.
	bound := uint64(n)
	limit := (math.MaxUint64 / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Norm returns a standard normal deviate (mean 0, stddev 1) using the
// Box-Muller transform.
func (r *Source) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		radius := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		r.spare = radius * math.Sin(theta)
		r.spareOK = true
		return radius * math.Cos(theta)
	}
}

// NormAt returns a normal deviate with the given mean and standard
// deviation.
func (r *Source) NormAt(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponential deviate with the given rate parameter
// (events per unit time). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u) / rate
	}
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in a Fisher-Yates shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
