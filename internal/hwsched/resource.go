// Package hwsched models the hardware implementation of Dysta's dynamic
// scheduler (paper §5.2): the microarchitecture of Fig. 10 — request FIFOs,
// model-info LUTs, a zero-counting sparsity monitor and a reconfigurable
// compute unit — together with its FPGA resource footprint (Fig. 16,
// Table 6) and a bit-accurate FP16 behavioural model that plugs into the
// scheduling engine.
//
// Two deliverables live here:
//
//   - Engine (fp16 behavioural model): a sched.Scheduler that computes the
//     dynamic-level scores through the compute unit's FP16 dataflows and
//     counts the cycles each scheduling invocation takes, demonstrating
//     that the reduced precision does not change scheduling quality and
//     that the scheduler's latency is negligible against layer execution.
//   - Resource estimation: a component-level LUT/FF/DSP/BRAM cost model of
//     the three design points the paper synthesizes (Non_Opt_FP32,
//     Opt_FP32, Opt_FP16) at configurable FIFO depths, calibrated against
//     the absolute numbers of Table 6.
package hwsched

import "fmt"

// Precision selects the datapath width of the hardware scheduler.
type Precision int

const (
	// FP32 is single-precision floating point.
	FP32 Precision = iota
	// FP16 is half-precision floating point, the paper's optimized
	// datatype (§5.2.2).
	FP16
)

// String returns the precision name.
func (p Precision) String() string {
	if p == FP16 {
		return "fp16"
	}
	return "fp32"
}

// Resources is an FPGA utilization estimate.
type Resources struct {
	LUTs, FFs, DSPs int
	// RAMBytes is on-chip RAM (FIFO + LUT storage).
	RAMBytes int
}

// Add accumulates another component's resources.
func (r *Resources) Add(o Resources) {
	r.LUTs += o.LUTs
	r.FFs += o.FFs
	r.DSPs += o.DSPs
	r.RAMBytes += o.RAMBytes
}

// Scale multiplies a component's resources by a count.
func (r Resources) Scale(n int) Resources {
	return Resources{LUTs: r.LUTs * n, FFs: r.FFs * n, DSPs: r.DSPs * n,
		RAMBytes: r.RAMBytes * n}
}

// Component cost library, calibrated so that the optimized FP16 design at
// FIFO depth 64 lands on the paper's Table 6 footprint (553 LUTs, 3 DSPs,
// 0.5 KB RAM) and the relative savings across design points track Fig. 16.
// Costs approximate Xilinx UltraScale+ floating-point operator IP.
var (
	fpAdd = map[Precision]Resources{
		FP32: {LUTs: 215, FFs: 324, DSPs: 2},
		FP16: {LUTs: 50, FFs: 90, DSPs: 0},
	}
	fpMul = map[Precision]Resources{
		FP32: {LUTs: 130, FFs: 196, DSPs: 3},
		FP16: {LUTs: 30, FFs: 60, DSPs: 1},
	}
	// fpDiv is a full floating-point divider. The optimized designs
	// eliminate every divider by multiplying with offline-precomputed
	// reciprocals (§5.2.2); only the Non_Opt baseline instantiates them.
	fpDiv = map[Precision]Resources{
		FP32: {LUTs: 750, FFs: 1100, DSPs: 0},
		FP16: {LUTs: 210, FFs: 320, DSPs: 0},
	}
	// mux2 is a 2:1 multiplexer over one operand word.
	mux2 = map[Precision]Resources{
		FP32: {LUTs: 32, FFs: 0},
		FP16: {LUTs: 10, FFs: 0},
	}
	// comparator drives the argmin scan over scores.
	comparator = map[Precision]Resources{
		FP32: {LUTs: 40, FFs: 16},
		FP16: {LUTs: 20, FFs: 8},
	}
	// controller covers the FSM, request hand-shaking and LUT addressing.
	controller = Resources{LUTs: 80, FFs: 120}
	// monitor is the zero-counting circuit of the runtime monitor plus
	// its accumulator; the accumulate-multiply sits in one DSP.
	monitor = Resources{LUTs: 40, FFs: 60, DSPs: 1}
)

// wordBits returns the operand width.
func wordBits(p Precision) int {
	if p == FP16 {
		return 16
	}
	return 32
}

// fifoCost models one FIFO of the given depth and word width: registers
// for the head/tail stages, control LUTs, and RAM for the body.
func fifoCost(depth, bits int) Resources {
	return Resources{
		LUTs:     24,
		FFs:      2*bits + 16,
		RAMBytes: depth * bits / 8,
	}
}

// Design identifies one synthesized configuration of the scheduler.
type Design struct {
	// Precision is the datapath datatype.
	Precision Precision
	// SharedComputeUnit applies the reconfigurable-unit optimization of
	// §5.2.2: one mux-steered unit serves both the sparsity-coefficient
	// and score dataflows instead of two separate units.
	SharedComputeUnit bool
	// FIFODepth is the request capacity (the paper evaluates 512 and 64).
	FIFODepth int
}

// String names the design in the paper's Fig. 16 notation.
func (d Design) String() string {
	name := "Non_Opt_"
	if d.SharedComputeUnit {
		name = "Opt_"
	}
	if d.Precision == FP16 {
		name += "FP16"
	} else {
		name += "FP32"
	}
	return fmt.Sprintf("%s(depth %d)", name, d.FIFODepth)
}

// NonOptFP32 returns the unoptimized FP32 baseline design.
func NonOptFP32(depth int) Design {
	return Design{Precision: FP32, SharedComputeUnit: false, FIFODepth: depth}
}

// OptFP32 returns the shared-compute-unit FP32 design.
func OptFP32(depth int) Design {
	return Design{Precision: FP32, SharedComputeUnit: true, FIFODepth: depth}
}

// OptFP16 returns the fully optimized design of the paper (shared unit +
// FP16), the one deployed next to Eyeriss-V2 in Table 6.
func OptFP16(depth int) Design {
	return Design{Precision: FP16, SharedComputeUnit: true, FIFODepth: depth}
}

// Estimate returns the FPGA resource footprint of the design.
//
// The Non_Opt baseline instantiates the two dataflows of Fig. 11 as
// separate units with real dividers: the score unit (2 adders, 2
// subtractors, 2 multipliers, 1 divider for the normalized isolation
// time) and the coefficient unit (1 divider by the layer shape plus 1
// multiplier). The optimized designs share a single six-operator unit
// through the mux/demux steering network of Fig. 10 and replace every
// division with a multiplication by an offline-precomputed reciprocal.
func Estimate(d Design) Resources {
	p := d.Precision
	var r Resources

	if d.SharedComputeUnit {
		r.Add(fpAdd[p].Scale(4)) // 2 adders + 2 subtractors
		r.Add(fpMul[p].Scale(2))
		r.Add(mux2[p].Scale(6)) // 5 muxes + 1 demux (Fig. 10)
	} else {
		// Score unit with its divider.
		r.Add(fpAdd[p].Scale(4))
		r.Add(fpMul[p].Scale(2))
		r.Add(fpDiv[p])
		// Separate sparsity-coefficient unit (Fig. 11a).
		r.Add(fpDiv[p])
		r.Add(fpMul[p])
	}

	r.Add(comparator[p])
	r.Add(controller)
	r.Add(monitor)

	// FIFOs: tags (8-bit IDs), scores, SLOs and remaining-time words
	// (Fig. 10's Tags/Score queues plus per-request timing state).
	r.Add(fifoCost(d.FIFODepth, 8))
	r.Add(fifoCost(d.FIFODepth, wordBits(p)).Scale(3))
	return r
}

// EyerissV2Resources is the accelerator-side utilization the paper quotes
// from the third-party Eyeriss-V2 FPGA implementation (Table 6), used to
// express the scheduler's overhead as a ratio.
var EyerissV2Resources = Resources{
	LUTs:     99168,
	DSPs:     194,
	RAMBytes: 140 * 1024,
	FFs:      120000, // not reported in Table 6; representative scale
}

// Overhead returns the scheduler's resource overhead relative to
// Eyeriss-V2 (Table 6's bottom row), as fractions.
func Overhead(sched Resources) (lutFrac, dspFrac, ramFrac float64) {
	e := EyerissV2Resources
	return float64(sched.LUTs) / float64(e.LUTs+sched.LUTs),
		float64(sched.DSPs) / float64(e.DSPs+sched.DSPs),
		float64(sched.RAMBytes) / float64(e.RAMBytes+sched.RAMBytes)
}
