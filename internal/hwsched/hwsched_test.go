package hwsched

import (
	"math"
	"testing"
	"time"

	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func attnnSetup(t *testing.T) (*trace.StatsSet, []*workload.Request) {
	t.Helper()
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 40, 150, 13)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(sc, eval, workload.GenConfig{
		Requests: 300, RatePerSec: 30, SLOMultiplier: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return lut, reqs
}

func TestNewEngineValidation(t *testing.T) {
	lut := trace.StatsSet{}
	_ = lut
	cfg := core.DefaultConfig()
	cfg.Strategy = core.AverageAll
	if _, err := NewEngine(cfg, nil, FP16, 64); err == nil {
		t.Error("non-last-one strategy accepted")
	}
	cfg = core.DefaultConfig()
	if _, err := NewEngine(cfg, nil, FP16, 0); err == nil {
		t.Error("zero FIFO depth accepted")
	}
	bad := core.DefaultConfig()
	bad.Beta = 5
	if _, err := NewEngine(bad, nil, FP16, 64); err == nil {
		t.Error("invalid core config accepted")
	}
}

func TestPrecisionNames(t *testing.T) {
	if FP16.String() != "fp16" || FP32.String() != "fp32" {
		t.Error("precision names wrong")
	}
	lut, _ := attnnSetup(t)
	e, err := NewEngine(core.DefaultConfig(), lut, FP16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "Dysta-HW-fp16" || e.Precision() != FP16 {
		t.Errorf("engine identity wrong: %q %v", e.Name(), e.Precision())
	}
}

// TestFP16MatchesReference is the software/hardware co-design check: the
// FP16 hardware engine must reproduce the float64 Dysta reference's
// scheduling quality within a small tolerance (the paper's justification
// for the FP16 optimization).
func TestFP16MatchesReference(t *testing.T) {
	lut, reqs := attnnSetup(t)
	ref, err := sched.Run(core.NewDefault(lut), reqs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []Precision{FP32, FP16} {
		eng, err := NewEngine(core.DefaultConfig(), lut, prec, 512)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.Run(eng, reqs, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.ANTT-ref.ANTT) > 0.10*ref.ANTT {
			t.Errorf("%v ANTT %.3f deviates >10%% from reference %.3f", prec, res.ANTT, ref.ANTT)
		}
		if math.Abs(res.ViolationRate-ref.ViolationRate) > 0.03 {
			t.Errorf("%v violations %.3f deviate from reference %.3f",
				prec, res.ViolationRate, ref.ViolationRate)
		}
	}
}

// TestOverheadNegligible verifies §6.5's premise: at 200 MHz the
// scheduler's total compute time is a vanishing fraction of the workload
// makespan.
func TestOverheadNegligible(t *testing.T) {
	lut, reqs := attnnSetup(t)
	eng, err := NewEngine(core.DefaultConfig(), lut, FP16, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(eng, reqs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Invocations() == 0 || eng.Cycles() == 0 {
		t.Fatal("no cycle accounting recorded")
	}
	overhead := eng.OverheadSeconds(200e6)
	if frac := overhead / res.Makespan.Seconds(); frac > 0.001 {
		t.Errorf("scheduler overhead fraction %.5f exceeds 0.1%%", frac)
	}
}

func TestFIFODepthDropAccounting(t *testing.T) {
	lut, reqs := attnnSetup(t)
	eng, err := NewEngine(core.DefaultConfig(), lut, FP16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(eng, reqs, sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if eng.Dropped() == 0 {
		t.Error("depth-2 FIFO never saturated on a 300-request stream")
	}
	deep, _ := NewEngine(core.DefaultConfig(), lut, FP16, 4096)
	if _, err := sched.Run(deep, reqs, sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if deep.Dropped() != 0 {
		t.Errorf("depth-4096 FIFO dropped %d requests", deep.Dropped())
	}
}

func TestStaticOnlyEngine(t *testing.T) {
	lut, reqs := attnnSetup(t)
	cfg := core.DefaultConfig().WithoutSparse()
	eng, err := NewEngine(cfg, lut, FP16, 512)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(eng, reqs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sched.Run(core.NewWithoutSparse(lut), reqs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ANTT-ref.ANTT) > 0.10*ref.ANTT {
		t.Errorf("static-only FP16 ANTT %.3f deviates from reference %.3f", res.ANTT, ref.ANTT)
	}
}

func TestRounding(t *testing.T) {
	// fp16Round must quantize (1/3 is inexact) and fp32Round must keep
	// more precision than fp16Round.
	v := 1.0 / 3.0
	h, s := fp16Round(v), fp32Round(v)
	if h == v || s == v {
		t.Error("rounding left the value exact")
	}
	if math.Abs(h-v) <= math.Abs(s-v) {
		t.Errorf("fp16 error %.3g not larger than fp32 error %.3g",
			math.Abs(h-v), math.Abs(s-v))
	}
}

func TestResourcesAddScale(t *testing.T) {
	a := Resources{LUTs: 1, FFs: 2, DSPs: 3, RAMBytes: 4}
	b := a.Scale(3)
	if b.LUTs != 3 || b.FFs != 6 || b.DSPs != 9 || b.RAMBytes != 12 {
		t.Errorf("Scale wrong: %+v", b)
	}
	a.Add(b)
	if a.LUTs != 4 || a.RAMBytes != 16 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestDesignNames(t *testing.T) {
	cases := map[string]Design{
		"Non_Opt_FP32(depth 64)": NonOptFP32(64),
		"Opt_FP32(depth 512)":    OptFP32(512),
		"Opt_FP16(depth 64)":     OptFP16(64),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("Design.String() = %q, want %q", got, want)
		}
	}
}

// TestTable6Footprint pins the optimized FP16 design at depth 64 to the
// paper's Table 6 absolute numbers (553 LUTs, 3 DSPs, 0.5 KB RAM) within
// a calibration band.
func TestTable6Footprint(t *testing.T) {
	r := Estimate(OptFP16(64))
	if r.LUTs < 400 || r.LUTs > 700 {
		t.Errorf("Opt_FP16 LUTs = %d, want ~553", r.LUTs)
	}
	if r.DSPs != 3 {
		t.Errorf("Opt_FP16 DSPs = %d, want 3", r.DSPs)
	}
	if r.RAMBytes < 384 || r.RAMBytes > 640 {
		t.Errorf("Opt_FP16 RAM = %dB, want ~512B", r.RAMBytes)
	}
}

// TestFig16Ordering verifies the relative resource reductions of Fig. 16:
// each optimization strictly reduces LUTs, FFs and DSPs at both FIFO
// depths.
func TestFig16Ordering(t *testing.T) {
	for _, depth := range []int{512, 64} {
		non := Estimate(NonOptFP32(depth))
		opt32 := Estimate(OptFP32(depth))
		opt16 := Estimate(OptFP16(depth))
		if !(opt32.LUTs < non.LUTs && opt16.LUTs < opt32.LUTs) {
			t.Errorf("depth %d: LUT ordering violated: %d, %d, %d",
				depth, non.LUTs, opt32.LUTs, opt16.LUTs)
		}
		if !(opt32.FFs < non.FFs && opt16.FFs < opt32.FFs) {
			t.Errorf("depth %d: FF ordering violated: %d, %d, %d",
				depth, non.FFs, opt32.FFs, opt16.FFs)
		}
		if !(opt32.DSPs <= non.DSPs && opt16.DSPs < opt32.DSPs) {
			t.Errorf("depth %d: DSP ordering violated: %d, %d, %d",
				depth, non.DSPs, opt32.DSPs, opt16.DSPs)
		}
	}
}

// TestTable6Overhead verifies the scheduler's overhead vs Eyeriss-V2 stays
// in the sub-2% band of Table 6 (0.55% LUTs, 1.5% DSPs, 0.35% RAM).
func TestTable6Overhead(t *testing.T) {
	lutFrac, dspFrac, ramFrac := Overhead(Estimate(OptFP16(64)))
	if lutFrac > 0.02 {
		t.Errorf("LUT overhead %.4f exceeds 2%%", lutFrac)
	}
	if dspFrac > 0.03 {
		t.Errorf("DSP overhead %.4f exceeds 3%%", dspFrac)
	}
	if ramFrac > 0.02 {
		t.Errorf("RAM overhead %.4f exceeds 2%%", ramFrac)
	}
}

func TestFIFOScalesWithDepth(t *testing.T) {
	shallow := Estimate(OptFP16(64))
	deep := Estimate(OptFP16(512))
	if deep.RAMBytes <= shallow.RAMBytes {
		t.Error("FIFO RAM did not grow with depth")
	}
	if deep.DSPs != shallow.DSPs {
		t.Error("FIFO depth changed DSP count")
	}
}

// TestScoreArgminAgreement compares the FP16 score pipeline against the
// float64 core reference at the decision level: over random queue states,
// the two must pick the same task in the overwhelming majority of cases
// (FP16 rounding may flip near-ties, which are harmless to metrics).
func TestScoreArgminAgreement(t *testing.T) {
	lut, reqs := attnnSetup(t)
	ref := core.NewDefault(lut)
	eng, err := NewEngine(core.DefaultConfig(), lut, FP16, 512)
	if err != nil {
		t.Fatal(err)
	}

	// Drive both schedulers through the same run and count decision
	// disagreements via a shadow comparison inside a wrapper.
	shadow := &shadowScheduler{a: ref, b: eng}
	if _, err := sched.Run(shadow, reqs, sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if shadow.decisions == 0 {
		t.Fatal("no decisions observed")
	}
	agree := float64(shadow.agreements) / float64(shadow.decisions)
	if agree < 0.97 {
		t.Errorf("FP16/float64 argmin agreement %.4f below 0.97 (%d of %d)",
			agree, shadow.agreements, shadow.decisions)
	}
}

// shadowScheduler runs scheduler a, while also asking b for its pick at
// every decision point and counting agreements.
type shadowScheduler struct {
	a, b                  sched.Scheduler
	decisions, agreements int
}

func (s *shadowScheduler) Name() string { return "shadow" }

func (s *shadowScheduler) OnArrival(t *sched.Task, now time.Duration) {
	s.a.OnArrival(t, now)
	s.b.OnArrival(t, now)
}

func (s *shadowScheduler) OnLayerComplete(t *sched.Task, layer int, monitored float64, now time.Duration) {
	s.a.OnLayerComplete(t, layer, monitored, now)
	s.b.OnLayerComplete(t, layer, monitored, now)
}

func (s *shadowScheduler) PickNext(ready []*sched.Task, now time.Duration) *sched.Task {
	pa := s.a.PickNext(ready, now)
	pb := s.b.PickNext(ready, now)
	s.decisions++
	if pa == pb {
		s.agreements++
	}
	return pa
}
