package hwsched

import (
	"fmt"
	"math"
	"time"

	"sparsedysta/internal/core"
	"sparsedysta/internal/fp16"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
)

// Engine is the behavioural model of the hardware dynamic scheduler: a
// sched.Scheduler whose score arithmetic runs through the reconfigurable
// compute unit's dataflows in the hardware datatype (FP16 or FP32), with
// cycle accounting per invocation.
//
// It mirrors internal/core's Dysta exactly in structure — the static
// software level is identical, the dynamic level computes the same
// formulas — but every dynamic-level operand and every intermediate result
// is rounded to the datapath precision, in *seconds* (the operand scale
// that keeps all benchmark quantities inside FP16's normal range).
// Rounding after every operation is bit-equivalent to performing the
// operation in the target precision, because the float64 intermediate is
// exact for 16/32-bit inputs and IEEE rounding is applied once.
//
// Comparing Engine's end-to-end metrics against core.Dysta's float64
// reference quantifies the cost of the FP16 optimization: none, per the
// paper's §6.5 claim.
type Engine struct {
	cfg   core.Config
	prec  Precision
	round func(float64) float64
	lut   *trace.StatsSet

	luts  map[trace.Key]*hwLUT
	state map[int]*hwState

	invocations uint64
	cycles      uint64
	depth       int
	dropped     int
}

// hwLUT is the quantized model-info LUT entry for one model-pattern pair
// (the latency / sparsity / shape LUTs of Fig. 10). All values are
// pre-rounded to the datapath precision, as they would be stored on chip.
type hwLUT struct {
	// remainSec[l] is the average remaining latency from layer l (s).
	remainSec []float64
	// sensSec[l] is the remaining-latency sensitivity from layer l (s).
	sensSec []float64
	// recipAvgSparsity[l] is 1/AvgLayerSparsity[l], precomputed offline
	// (the DIV-to-MULT optimization); 0 marks a structurally dense layer.
	recipAvgSparsity []float64
	// recipTotalSec is 1/avg isolated latency for the penalty dataflow.
	recipTotalSec float64
	// staticScore is the software static level's arrival score (s).
	staticScore float64
}

// hwState is one request's FIFO entry.
type hwState struct {
	gamma float64 // sparsity coefficient (last-one, per §5.1)
	lut   *hwLUT
}

// fp16Round rounds through IEEE binary16.
func fp16Round(v float64) float64 { return fp16.FromFloat64(v).Float64() }

// fp32Round rounds through IEEE binary32.
func fp32Round(v float64) float64 { return float64(float32(v)) }

// NewEngine returns a hardware-scheduler model over the profiling LUT.
// The config's strategy must be LastOne — the only strategy the hardware
// implements (§5.1 chooses it for its minimal compute and storage).
func NewEngine(cfg core.Config, lut *trace.StatsSet, prec Precision, fifoDepth int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy != core.LastOne {
		return nil, fmt.Errorf("hwsched: hardware implements only the last-one strategy, got %v", cfg.Strategy)
	}
	if fifoDepth <= 0 {
		return nil, fmt.Errorf("hwsched: non-positive FIFO depth %d", fifoDepth)
	}
	round := fp32Round
	if prec == FP16 {
		round = fp16Round
	}
	return &Engine{
		cfg:   cfg,
		prec:  prec,
		round: round,
		lut:   lut,
		luts:  map[trace.Key]*hwLUT{},
		state: map[int]*hwState{},
		depth: fifoDepth,
	}, nil
}

// Name implements sched.Scheduler.
func (e *Engine) Name() string { return "Dysta-HW-" + e.prec.String() }

// Precision returns the datapath precision.
func (e *Engine) Precision() Precision { return e.prec }

// sec converts a duration to seconds.
func sec(d time.Duration) float64 { return d.Seconds() }

// hwLUTFor builds (once) the quantized LUT image of a key.
func (e *Engine) hwLUTFor(k trace.Key, slo time.Duration) *hwLUT {
	if l, ok := e.luts[k]; ok {
		return l
	}
	st := e.lut.MustLookup(k)
	n := st.NumLayers()
	l := &hwLUT{
		remainSec:        make([]float64, n+1),
		sensSec:          make([]float64, n+1),
		recipAvgSparsity: make([]float64, n),
	}
	for i := 0; i <= n; i++ {
		l.remainSec[i] = e.round(sec(st.AvgRemaining(i)))
		l.sensSec[i] = e.round(e.sensitivity(st, i) / 1e9)
	}
	for i := 0; i < n; i++ {
		if avg := st.AvgLayerSparsity[i]; avg > 1e-9 {
			l.recipAvgSparsity[i] = e.round(1 / avg)
		}
	}
	total := sec(st.AvgTotal)
	l.recipTotalSec = e.round(1 / total)
	l.staticScore = e.round(total + e.cfg.Beta*(sec(slo)-total))
	e.luts[k] = l
	return l
}

// sensitivity selects the configured coefficient space, mirroring
// core.Predictor.
func (e *Engine) sensitivity(st *trace.Stats, from int) float64 {
	if e.cfg.Mode == core.DensityRatio {
		return st.SensitivityRemainingDensity(from)
	}
	return st.SensitivityRemaining(from)
}

// OnArrival implements sched.Scheduler: the software static level pushes
// the request, its static score and its LUT references into the FIFOs.
// Arrivals beyond the FIFO depth are counted (the hardware would
// back-pressure the host) but still scheduled so that metrics stay
// comparable across schedulers; Dropped reports the count.
func (e *Engine) OnArrival(t *sched.Task, _ time.Duration) {
	if len(e.state) >= e.depth {
		e.dropped++
	}
	e.state[t.ID] = &hwState{gamma: 1, lut: e.hwLUTFor(t.Key, t.SLO)}
}

// Cycle costs of the pipelined compute unit at 200 MHz (§6.1): the
// coefficient dataflow is two multiplies deep; a scheduling invocation
// pays a pipeline fill and then streams one request per cycle through the
// score dataflow and one per cycle through the argmin comparator.
const (
	coeffCycles = 4
	pipeFill    = 8
)

// OnLayerComplete implements sched.Scheduler: the runtime monitor's
// zero-count becomes the layer sparsity, and the coefficient dataflow
// (Fig. 11c) computes the last-one gamma = S_monitor x (1/S_avg).
func (e *Engine) OnLayerComplete(t *sched.Task, layer int, monitored float64, _ time.Duration) {
	if t.Done {
		delete(e.state, t.ID)
		return
	}
	s := e.state[t.ID]
	if s == nil || !e.cfg.DynamicEnabled {
		return
	}
	recip := s.lut.recipAvgSparsity[layer]
	if recip == 0 {
		return // structurally dense layer carries no signal
	}
	gamma := e.round(e.round(monitored) * recip)
	// The hardware clamps the coefficient with a comparator pair.
	gamma = math.Max(e.round(1/e.cfg.GammaClamp), math.Min(e.round(e.cfg.GammaClamp), gamma))
	s.gamma = gamma
	e.cycles += coeffCycles
}

// PickNext implements sched.Scheduler: re-score every FIFO entry through
// the score dataflow and take the argmin.
func (e *Engine) PickNext(ready []*sched.Task, now time.Duration) *sched.Task {
	e.invocations++
	e.cycles += pipeFill + 2*uint64(len(ready))

	best := ready[0]
	bestScore := e.score(best, now, len(ready))
	for _, t := range ready[1:] {
		// Ties break by task ID so the decision is independent of the
		// ready queue's (unspecified) iteration order; the FP16 rounding
		// of the score datapath makes exact ties likelier than in the
		// float64 reference.
		if sc := e.score(t, now, len(ready)); sc < bestScore || (sc == bestScore && t.ID < best.ID) {
			best, bestScore = t, sc
		}
	}
	return best
}

// score runs the dynamic score dataflow (Fig. 11d) in the hardware
// datatype, in seconds.
func (e *Engine) score(t *sched.Task, now time.Duration, queueLen int) float64 {
	s := e.state[t.ID]
	if s == nil {
		return math.Inf(1)
	}
	if !e.cfg.DynamicEnabled {
		return s.lut.staticScore
	}
	r := e.round
	lut := s.lut

	// remain = avgRemain + (gamma - 1) x sensitivity  [Sub, Mul, Add]
	dGamma := r(s.gamma - 1)
	remain := r(lut.remainSec[t.NextLayer] + r(dGamma*lut.sensSec[t.NextLayer]))
	if remain < 0 {
		remain = 0
	}

	// slack = (deadline - now) - remain  [Sub, Sub]
	slack := r(r(sec(t.Deadline()-now)) - remain)
	demotion := 0.0
	if slack < 0 {
		slack = 0
		demotion = r(e.cfg.DemotionMS / 1e3)
	}

	// penalty = wait x (1/isol) x (eta-scaled queue reciprocal)  [Mul, Mul]
	penalty := r(r(r(sec(t.SinceLastRun(now)))*lut.recipTotalSec) *
		r(e.cfg.PenaltyWeight/(1e3*float64(queueLen))))

	// score = remain + eta x (slack + penalty) + demotion  [Add, Mul, Add, Add]
	score := r(remain + r(r(e.cfg.Eta)*r(slack+penalty)))
	return r(score + demotion)
}

// Invocations returns how many scheduling decisions were taken.
func (e *Engine) Invocations() uint64 { return e.invocations }

// Cycles returns the total compute-unit cycles consumed.
func (e *Engine) Cycles() uint64 { return e.cycles }

// Dropped returns how many arrivals exceeded the FIFO depth.
func (e *Engine) Dropped() int { return e.dropped }

// OverheadSeconds converts the consumed cycles to wall time at the given
// clock (the paper clocks the scheduler at 200 MHz).
func (e *Engine) OverheadSeconds(clockHz float64) float64 {
	return float64(e.cycles) / clockHz
}

var _ sched.Scheduler = (*Engine)(nil)
