package cluster

import (
	"math"
	"reflect"
	"testing"

	"sparsedysta/internal/sched"
)

// TestAdmitAllMatchesNilAdmission: the explicit no-op policy is the nil
// default, bit-identically, and rejects nothing.
func TestAdmitAllMatchesNilAdmission(t *testing.T) {
	reqs, est, _ := randomStream(4, 50)
	mk := func(int) sched.Scheduler { return sched.NewSJF(est) }
	plain, err := Run(mk, reqs, Config{Engines: 2, Dispatch: NewJSQ()})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(mk, reqs, Config{Engines: 2, Dispatch: NewJSQ(), Admission: AdmitAll{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, explicit) {
		t.Error("AdmitAll diverges from nil admission")
	}
	if plain.Rejected != 0 {
		t.Errorf("nil admission rejected %d requests", plain.Rejected)
	}
}

// TestQueueCapSheds: a tight per-engine cap under a saturating stream
// must shed some requests, count them, and keep the accounting identity
// completed + rejected == offered.
func TestQueueCapSheds(t *testing.T) {
	reqs, est, _ := randomStream(6, 200)
	for _, r := range reqs {
		r.Arrival /= 20
	}
	res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
		Config{Engines: 2, Dispatch: NewJSQ(), Admission: QueueCap{Cap: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("cap 3 under saturation shed nothing")
	}
	if res.Requests+res.Rejected != len(reqs) {
		t.Fatalf("completed %d + rejected %d != offered %d", res.Requests, res.Rejected, len(reqs))
	}
	if res.Admission != "queue-cap:3" {
		t.Errorf("admission echoed as %q", res.Admission)
	}
	// No engine ever holds more than the cap at an admission instant, so
	// outstanding work per engine stays bounded; all admitted requests
	// still complete (the cluster always drains).
	if res.Dropped != 0 {
		t.Errorf("admitted requests dropped: %d", res.Dropped)
	}
	if res.Goodput <= 0 || math.IsNaN(res.Goodput) {
		t.Errorf("goodput %v", res.Goodput)
	}
	if res.Goodput > res.Throughput {
		t.Errorf("goodput %.2f above throughput %.2f", res.Goodput, res.Throughput)
	}
}

// TestSLOShedRaisesGoodputShare: under a saturating stream with tight
// SLOs the predictive shed rejects some arrivals, every metric stays
// consistent, and the admitted traffic violates less often than the
// unprotected run's — the policy removes predicted violators at the door
// instead of letting them burn accelerator time in the queue.
func TestSLOShedRaisesGoodputShare(t *testing.T) {
	reqs, est, lut := randomStream(8, 250)
	for _, r := range reqs {
		r.Arrival /= 25
		r.SLO /= 4
	}
	load := SparsityAwareLoad(lut, est)
	mk := func(int) sched.Scheduler { return sched.NewSJF(est) }
	unprotected, err := Run(mk, reqs, Config{Engines: 2, Dispatch: NewLeastLoad("load", load)})
	if err != nil {
		t.Fatal(err)
	}
	shed, err := Run(mk, reqs, Config{
		Engines:   2,
		Dispatch:  NewLeastLoad("load", load),
		Admission: SLOShed{Iso: RequestIsolated(lut, est)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if shed.Rejected == 0 {
		t.Fatal("predictive shed rejected nothing under saturation with tight SLOs")
	}
	if shed.Requests+shed.Rejected != len(reqs) {
		t.Fatalf("completed %d + rejected %d != offered %d", shed.Requests, shed.Rejected, len(reqs))
	}
	if shed.ViolationRate > unprotected.ViolationRate {
		t.Errorf("admitted traffic violates more under shedding (%.3f) than without (%.3f)",
			shed.ViolationRate, unprotected.ViolationRate)
	}
	if unprotected.Rejected != 0 {
		t.Errorf("unprotected run rejected %d", unprotected.Rejected)
	}
}

// TestSLOShedSuppliesBacklogSignal: behind a dispatcher with no load
// estimate of its own (round-robin), the shed's Load function must back
// the board's Backlog signal — otherwise every queue reads as empty and
// the policy silently degrades to AdmitAll.
func TestSLOShedSuppliesBacklogSignal(t *testing.T) {
	reqs, est, lut := randomStream(8, 250)
	for _, r := range reqs {
		r.Arrival /= 25
		r.SLO /= 4
	}
	res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
		Config{
			Engines:  2,
			Dispatch: NewRoundRobin(),
			Admission: SLOShed{
				Iso:  RequestIsolated(lut, est),
				Load: SparsityAwareLoad(lut, est),
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("slo shed behind round-robin saw every queue as empty and shed nothing")
	}
	if res.Requests+res.Rejected != len(reqs) {
		t.Fatalf("completed %d + rejected %d != offered %d", res.Requests, res.Rejected, len(reqs))
	}
}

// TestRequestIsolatedFallbackChain: profiled pair -> LUT entry; profiled
// model under another pattern -> pattern-blind merge; unknown model ->
// population mean. Deterministic at every level.
func TestRequestIsolatedFallbackChain(t *testing.T) {
	reqs, est, lut := unprofiledStream(1)
	iso := RequestIsolated(lut, est)

	profiled := *reqs[0]
	profiled.Key = lut.Keys()[0]
	if got := iso(&profiled); got != lut.Lookup(profiled.Key).AvgTotal {
		t.Errorf("profiled pair estimate %v, want LUT AvgTotal", got)
	}
	if got := iso(reqs[0]); got != est.ModelStats(reqs[0].Key.Model).AvgTotal {
		t.Errorf("unprofiled-pattern estimate %v, want model merge", got)
	}
	alien := *reqs[0]
	alien.Key.Model = "never-profiled"
	if got := iso(&alien); got != est.MeanIsolated() {
		t.Errorf("unknown-model estimate %v, want population mean %v", got, est.MeanIsolated())
	}
}
