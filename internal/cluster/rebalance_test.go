package cluster

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// TestRebalanceNeutralKnobsBitIdentical: migration disabled — by a nil
// policy, the none policy, or a zero interval — must be bit-identical to
// the pre-migration cluster for every dispatcher and scheduler. This is
// the PR's primary equivalence anchor.
func TestRebalanceNeutralKnobsBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		load := SparsityAwareLoad(lut, est)
		for _, spec := range schedSpecs(est, lut) {
			for _, d := range dispatchers(est, lut) {
				base := Config{Engines: 3, Dispatch: d}
				want, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, base)
				if err != nil {
					t.Fatalf("%s/%s (seed %d): %v", spec.name, d.Name(), seed, err)
				}
				for name, cfg := range map[string]Config{
					"none-policy": {Engines: 3, Dispatch: d,
						Rebalance: NoRebalance{}, RebalanceInterval: 2 * time.Millisecond},
					"zero-interval": {Engines: 3, Dispatch: d,
						Rebalance: Steal{Load: load}, RebalanceInterval: 0,
						MigrationCost: time.Millisecond},
				} {
					got, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s (seed %d): %v", spec.name, d.Name(), name, seed, err)
					}
					if got.Rebalance != "none" {
						t.Fatalf("%s/%s/%s: effective policy %q, want none",
							spec.name, d.Name(), name, got.Rebalance)
					}
					if !reflect.DeepEqual(got.Result, want.Result) ||
						!reflect.DeepEqual(got.PerEngine, want.PerEngine) {
						t.Fatalf("%s/%s/%s (seed %d): neutral migration knobs diverge",
							spec.name, d.Name(), name, seed)
					}
				}
			}
		}
	}
}

// concentrate is a deliberately terrible dispatcher: everything lands on
// engine 0, the worst case work stealing exists to repair.
type concentrate struct{}

func (concentrate) Name() string { return "concentrate" }
func (concentrate) Pick([]EngineSignal, *workload.Request, time.Duration) int {
	return 0
}

// TestStealRescuesConcentratedLoad: with every request dispatched to one
// engine of a 4-engine cluster, work stealing must move work, spread
// completions across engines, and beat the no-migration run on violation
// rate; win/loss accounting must cover exactly the migrated requests.
func TestStealRescuesConcentratedLoad(t *testing.T) {
	reqs, est, lut := randomStream(9, 120)
	// Compress arrivals so the concentrated engine is badly backlogged.
	for _, r := range reqs {
		r.Arrival /= 4
	}
	load := SparsityAwareLoad(lut, est)
	newSched := func(int) sched.Scheduler { return sched.NewSJF(est) }

	stuck, err := Run(newSched, reqs, Config{Engines: 4, Dispatch: concentrate{}})
	if err != nil {
		t.Fatal(err)
	}
	steal, err := Run(newSched, reqs, Config{
		Engines: 4, Dispatch: concentrate{},
		Rebalance:         Steal{Load: load},
		RebalanceInterval: time.Millisecond,
		MigrationCost:     100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if steal.Rebalance != "steal" {
		t.Fatalf("effective policy %q", steal.Rebalance)
	}
	if steal.Migrations == 0 {
		t.Fatal("no migrations on a fully concentrated cluster")
	}
	if steal.MigrationWins+steal.MigrationLosses != steal.Migrations {
		t.Errorf("wins %d + losses %d != migrations %d",
			steal.MigrationWins, steal.MigrationLosses, steal.Migrations)
	}
	if steal.Requests != len(reqs) {
		t.Fatalf("%d of %d requests completed", steal.Requests, len(reqs))
	}
	busyEngines := 0
	for _, r := range steal.PerEngine {
		if r.Requests > 0 {
			busyEngines++
		}
	}
	if busyEngines < 2 {
		t.Errorf("stealing left work on %d engines", busyEngines)
	}
	if steal.ViolationRate >= stuck.ViolationRate {
		t.Errorf("stealing did not improve violations: %.3f vs %.3f",
			steal.ViolationRate, stuck.ViolationRate)
	}
	if steal.Makespan >= stuck.Makespan {
		t.Errorf("stealing did not shorten the makespan: %v vs %v",
			steal.Makespan, stuck.Makespan)
	}
}

// TestShedRescuesConcentratedLoad: the push policy must also move work
// off a doomed backlog and not lose any requests doing so.
func TestShedRescuesConcentratedLoad(t *testing.T) {
	reqs, est, lut := randomStream(9, 120)
	for _, r := range reqs {
		r.Arrival /= 4
	}
	load := SparsityAwareLoad(lut, est)
	newSched := func(int) sched.Scheduler { return sched.NewSJF(est) }
	shed, err := Run(newSched, reqs, Config{
		Engines: 4, Dispatch: concentrate{},
		Rebalance:         Shed{Load: load},
		RebalanceInterval: time.Millisecond,
		MigrationCost:     100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shed.Rebalance != "shed" || shed.Migrations == 0 {
		t.Fatalf("policy %q migrated %d", shed.Rebalance, shed.Migrations)
	}
	if shed.Requests != len(reqs) {
		t.Fatalf("%d of %d requests completed", shed.Requests, len(reqs))
	}
}

// TestMigrationDeterministic: migrating runs are pure functions of their
// inputs — two identical invocations agree exactly, for both policies.
func TestMigrationDeterministic(t *testing.T) {
	reqs, est, lut := randomStream(21, 100)
	for _, r := range reqs {
		r.Arrival /= 3
	}
	load := SparsityAwareLoad(lut, est)
	for _, mk := range []func() RebalancePolicy{
		func() RebalancePolicy { return Steal{Load: load} },
		func() RebalancePolicy { return Shed{Load: load} },
	} {
		run := func() Result {
			res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs, Config{
				Engines: 3, Dispatch: NewJSQ(),
				Rebalance:         mk(),
				RebalanceInterval: 2 * time.Millisecond,
				MigrationCost:     200 * time.Microsecond,
				Sched:             sched.Options{RecordTasks: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: nondeterministic migrating runs", mk().Name())
		}
	}
}

// TestStealNoPointlessSwaps: two near-idle engines holding one queued
// task each must not swap them — stealing needs a victim with work
// actually waiting and a longer backlog than the thief, or both requests
// would pay the migration cost for zero gain.
func TestStealNoPointlessSwaps(t *testing.T) {
	reqs, est, lut := randomStream(9, 40)
	load := SparsityAwareLoad(lut, est)
	// Spread arrivals far apart: each engine holds at most one request
	// at a time, so every rebalance instant sees only near-idle engines.
	for i, r := range reqs {
		r.Arrival = time.Duration(i) * 50 * time.Millisecond
	}
	res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs, Config{
		Engines: 2, Dispatch: NewRoundRobin(),
		Rebalance:         Steal{Load: load},
		RebalanceInterval: time.Millisecond,
		MigrationCost:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("%d pointless migrations on an uncontended cluster", res.Migrations)
	}
}

// TestInertPolicyDoesNotFeedSignals: with RebalanceInterval 0 an inert
// policy's load estimate must not leak into the SignalBoard — Backlog-
// driven admission would otherwise behave differently from a run without
// a migration subsystem, breaking the documented bit-identity contract.
func TestInertPolicyDoesNotFeedSignals(t *testing.T) {
	reqs, est, lut := randomStream(9, 120)
	for _, r := range reqs {
		r.Arrival /= 4
	}
	load := SparsityAwareLoad(lut, est)
	// Round-robin + SLOShed with a nil Load: without any provider the
	// board leaves Backlog zero and the shed never predicts a miss.
	run := func(cfg Config) Result {
		cfg.Engines = 2
		cfg.Dispatch = NewRoundRobin()
		cfg.Admission = SLOShed{Iso: RequestIsolated(lut, est)}
		res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(Config{})
	got := run(Config{Rebalance: Steal{Load: load}, RebalanceInterval: 0})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("inert steal policy changed the run: rejected %d vs %d",
			got.Rejected, want.Rejected)
	}
}

// TestMigrationBudgetCaps: the total-migration budget is a hard cap.
func TestMigrationBudgetCaps(t *testing.T) {
	reqs, est, lut := randomStream(9, 120)
	for _, r := range reqs {
		r.Arrival /= 4
	}
	load := SparsityAwareLoad(lut, est)
	res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs, Config{
		Engines: 4, Dispatch: concentrate{},
		Rebalance:         Steal{Load: load},
		RebalanceInterval: time.Millisecond,
		MigrationBudget:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations > 3 {
		t.Errorf("budget 3 exceeded: %d migrations", res.Migrations)
	}
	if res.Migrations == 0 {
		t.Error("budget 3 prevented all migrations")
	}
	if res.Requests != len(reqs) {
		t.Errorf("%d of %d requests completed", res.Requests, len(reqs))
	}
}

// TestMigrationOncePerRequest: no request migrates twice, so migrations
// can never exceed the stream length however aggressive the policy and
// however tight the interval (the thrash-impossibility invariant).
func TestMigrationOncePerRequest(t *testing.T) {
	reqs, est, lut := randomStream(5, 80)
	for _, r := range reqs {
		r.Arrival /= 5
	}
	load := SparsityAwareLoad(lut, est)
	res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs, Config{
		Engines: 4, Dispatch: concentrate{},
		Rebalance:         Steal{Load: load},
		RebalanceInterval: time.Nanosecond, // every instant is a rebalance instant
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations > len(reqs) {
		t.Errorf("%d migrations for %d requests", res.Migrations, len(reqs))
	}
	if res.Requests != len(reqs) {
		t.Errorf("%d of %d requests completed", res.Requests, len(reqs))
	}
}
