package cluster

import (
	"fmt"
	"time"

	"sparsedysta/internal/sched"
)

// This file is the migration subsystem: a Rebalancer that, at
// interval-gated instants of virtual time, moves queued-but-never-started
// requests between engines under a pluggable RebalancePolicy. It is the
// first feature that mutates engine queues from outside the engine, so it
// leans entirely on the sched.Engine extraction contract
// (Extract/Adopt/Migratable): the engine guarantees scheduler-state
// integrity; this layer decides who moves where, charges the migration
// cost, and makes thrashing impossible (once-per-request plus an optional
// total budget).
//
// Migration decisions read LIVE engine state, deliberately unlike
// dispatch: the router's admission and routing run on the SignalBoard's
// possibly-stale snapshots (a centralized metrics pipeline), while
// rebalancing models peer-to-peer work stealing — an engine always knows
// its own queue exactly, which is precisely why stealing can recover the
// damage stale dispatch signals cause. What the rebalancer shares with
// the board is its timing discipline: rebalance instants derive from the
// request stream and the interval alone (no wall clock), so a migrating
// run stays a pure function of (schedulers, stream, config).

// Candidate is one migratable request as a policy sees it.
type Candidate struct {
	// Task is the queued-but-never-started request (read-only to
	// policies; the Rebalancer performs the actual move).
	Task *sched.Task
	// Est is the task's estimated service demand in reference-hardware
	// units under the run's load estimator (a uniform placeholder when
	// the run has none), the data-dependent cost a rebalancing decision
	// must weigh — two requests to the same model can differ ~40% in
	// effective work across sparsity patterns.
	Est time.Duration
}

// EngineView is one engine's live state at a rebalance instant.
type EngineView struct {
	// Engine is the index into the cluster's engine slice.
	Engine int
	// LatencyScale is the engine's static capacity spec (1 = reference).
	LatencyScale float64
	// Outstanding is the live injected-but-uncompleted request count.
	Outstanding int
	// NormBacklog is the live capacity-normalized backlog: the summed
	// Est of every outstanding request, scaled by LatencyScale — the
	// engine's predicted drain time as a float64 of duration units.
	NormBacklog float64
	// Eligible lists the engine's migratable requests in ascending
	// task-ID order, excluding requests that already migrated once.
	Eligible []Candidate
	// Down reports the engine is out of service (failed or draining) at
	// this rebalance instant. Unlike the dispatch-layer signal this is
	// live truth, not a stale snapshot — peers always know who answers.
	// Policies must neither raid nor feed a Down engine; the Rebalancer
	// rejects such moves as malformed. The zero value is "in service".
	Down bool
}

// Move is one proposed migration: the request with task ID moves from
// engines[From] to engines[To].
type Move struct {
	ID       int
	From, To int
}

// RebalancePolicy proposes migrations. Plan is called at each rebalance
// instant with the live per-engine views; it must be a deterministic
// function of (views, now, cost) and must only reference eligible task
// IDs. The Rebalancer executes the plan in order, dropping moves beyond
// the migration budget, so policies should emit their most valuable
// moves first. The views are scratch the Rebalancer rebuilds from live
// engine state every round, so policies may consume them in place —
// mutate NormBacklog as planned moves accumulate, truncate or reorder
// Eligible — instead of copying them.
type RebalancePolicy interface {
	// Name identifies the policy in results.
	Name() string
	// Plan proposes migrations at virtual time now; cost is the
	// per-request migration latency penalty the Rebalancer will charge.
	Plan(views []EngineView, now, cost time.Duration) []Move
}

// NoRebalance is the identity policy: no request ever moves. A cluster
// configured with it (or with no policy, or interval 0) is bit-identical
// to one without a migration subsystem at all.
type NoRebalance struct{}

// Name implements RebalancePolicy.
func (NoRebalance) Name() string { return "none" }

// Plan implements RebalancePolicy.
func (NoRebalance) Plan([]EngineView, time.Duration, time.Duration) []Move { return nil }

// Steal is work stealing: idle engines pull from the engine with the
// longest normalized backlog. "Idle" follows the classic work-stealing
// definition — nothing *waiting* (at most the currently running request
// outstanding), the moment a worker's own deque runs dry — not "fully
// drained", which at serving load almost never happens and would leave
// the thief starved for a full round trip. Each thief takes up to half
// of the victim's eligible queue, newest arrivals first: the oldest
// queued request is about to run on the victim and is closest to its
// deadline, so it can least afford the transfer penalty, while the
// newest would wait the longest and carries the most slack across the
// move.
type Steal struct {
	// Load estimates a queued task's remaining work in reference units
	// (typically SparsityAwareLoad); it backs the views' NormBacklog and
	// Candidate.Est through the loadProvider chain. Nil falls back to a
	// queue-length proxy.
	Load func(*sched.Task) time.Duration
	// Curve is Load's optional curve form (see SparsityAwareCurve): it
	// lets the engines' incremental backlog accounting index instead of
	// re-estimating. Must agree with Load.
	Curve func(*sched.Task) []time.Duration
}

// Name implements RebalancePolicy.
func (Steal) Name() string { return "steal" }

// LoadFunc exposes the estimate to the SignalBoard and Rebalancer
// (loadProvider); the dispatcher's own estimate, if any, takes precedence
// so the whole run shares one metrics pipeline.
func (s Steal) LoadFunc() func(*sched.Task) time.Duration { return s.Load }

// CurveFunc exposes the estimate's curve form (curveProvider).
func (s Steal) CurveFunc() func(*sched.Task) []time.Duration { return s.Curve }

// Plan implements RebalancePolicy: for each idle engine in index order,
// raid the engine with the currently longest normalized backlog. Backlogs
// are adjusted as moves accumulate so two idle thieves in one round never
// both raid the same victim blindly. A victim must have work actually
// waiting behind its running request (Outstanding >= 2) and a longer
// normalized backlog than the thief — without that benefit check two
// near-idle engines would swap their single queued tasks, delaying both
// by the migration cost for zero gain and burning their once-ever
// migration allowance.
// The plan consumes the views in place (the Plan contract permits it):
// NormBacklog tracks planned moves and Eligible shrinks by swap-delete as
// candidates are taken. Swap-delete reorders the slice, but the selection
// is a strict maximum over (Arrival, ID) with unique IDs, so the pick —
// and therefore the emitted plan — is independent of element order.
func (Steal) Plan(views []EngineView, _, _ time.Duration) []Move {
	var moves []Move
	for thief := range views {
		if views[thief].Down || views[thief].Outstanding > 1 {
			continue
		}
		victim := -1
		for i := range views {
			if i == thief || views[i].Down || len(views[i].Eligible) == 0 ||
				views[i].Outstanding < 2 || views[i].NormBacklog <= views[thief].NormBacklog {
				continue
			}
			if victim < 0 || views[i].NormBacklog > views[victim].NormBacklog {
				victim = i
			}
		}
		if victim < 0 {
			continue
		}
		// Take up to half the victim's eligible queue, newest arrival
		// (then highest ID) first, stopping once the imbalance the raid
		// was fixing is gone.
		take := (len(views[victim].Eligible) + 1) / 2
		for k := 0; k < take && views[victim].NormBacklog > views[thief].NormBacklog; k++ {
			rem := views[victim].Eligible
			best := 0
			for i, c := range rem {
				b := rem[best]
				if c.Task.Arrival > b.Task.Arrival ||
					(c.Task.Arrival == b.Task.Arrival && c.Task.ID > b.Task.ID) {
					best = i
				}
			}
			c := rem[best]
			rem[best] = rem[len(rem)-1]
			views[victim].Eligible = rem[:len(rem)-1]
			moves = append(moves, Move{ID: c.Task.ID, From: victim, To: thief})
			shift := float64(c.Est)
			views[victim].NormBacklog -= shift * views[victim].LatencyScale
			views[thief].NormBacklog += shift * views[thief].LatencyScale
		}
	}
	return moves
}

// Shed is predicted-SLO shedding: an engine whose backlog pushes a queued
// request past its deadline hands that request to the engine predicting
// the earliest completion for it — but only when the receiving engine
// (after the migration cost) is predicted to actually save it. Unlike
// Steal it triggers before anyone is idle, and unlike a threshold on
// queue length it is per-request and data-dependent: the same backlog
// dooms a tight-SLO request while a slack one rides it out.
type Shed struct {
	// Load estimates a queued task's remaining work in reference units
	// (see Steal.Load).
	Load func(*sched.Task) time.Duration
	// Curve is Load's optional curve form (see Steal.Curve).
	Curve func(*sched.Task) []time.Duration
}

// Name implements RebalancePolicy.
func (Shed) Name() string { return "shed" }

// LoadFunc exposes the estimate to the SignalBoard and Rebalancer
// (loadProvider).
func (s Shed) LoadFunc() func(*sched.Task) time.Duration { return s.Load }

// CurveFunc exposes the estimate's curve form (curveProvider).
func (s Shed) CurveFunc() func(*sched.Task) []time.Duration { return s.Curve }

// Plan implements RebalancePolicy: engines in index order, candidates in
// ascending task-ID order; drain-time predictions are adjusted as moves
// accumulate.
// Like Steal.Plan, the plan consumes the views in place: NormBacklog is
// the working drain-time prediction, updated as moves accumulate.
func (Shed) Plan(views []EngineView, now, cost time.Duration) []Move {
	var moves []Move
	for i := range views {
		if views[i].Down {
			continue
		}
		for _, c := range views[i].Eligible {
			// Predicted completion here: behind the engine's whole
			// normalized backlog (which includes this request).
			here := float64(now) + views[i].NormBacklog
			if here <= float64(c.Task.Deadline()) {
				continue
			}
			service := float64(c.Est)
			best, bestDone := -1, 0.0
			for j := range views {
				if j == i || views[j].Down {
					continue
				}
				done := float64(now+cost) + views[j].NormBacklog + service*views[j].LatencyScale
				if best < 0 || done < bestDone {
					best, bestDone = j, done
				}
			}
			if best < 0 || bestDone > float64(c.Task.Deadline()) {
				continue // nobody is predicted to save it: keep it local
			}
			moves = append(moves, Move{ID: c.Task.ID, From: i, To: best})
			views[i].NormBacklog -= service * views[i].LatencyScale
			views[best].NormBacklog += service * views[best].LatencyScale
		}
	}
	return moves
}

// Rebalancer executes a RebalancePolicy over the cluster's engines. It is
// created by Run when migration is enabled; all state is per-run.
type Rebalancer struct {
	policy   RebalancePolicy
	engines  []*sched.Engine
	load     func(*sched.Task) time.Duration
	interval time.Duration
	cost     time.Duration
	budget   int
	up       func(engine int) bool
	last     time.Duration
	moved    map[int]bool
	count    int
	// uniform records that the run has no load estimate and load is the
	// 1ms placeholder, so a view's backlog is Outstanding() placeholder
	// units — O(1) instead of a queue scan.
	uniform bool
	// viewBuf, eligBuf and migBuf are per-round scratch, reused across
	// rebalance instants: views() rebuilds them in place, and policies may
	// consume them (see RebalancePolicy.Plan). One allocation per
	// high-water mark instead of one per round.
	viewBuf []EngineView
	eligBuf [][]Candidate
	migBuf  []*sched.Task
}

// bindLiveness attaches the fault injector's availability source: views
// carry live (not stale) liveness, and moves touching a Down engine are
// rejected as malformed. Unbound, every engine is in service.
func (rb *Rebalancer) bindLiveness(up func(engine int) bool) { rb.up = up }

// newRebalancer wires the policy to the engines. load is the shared
// per-task estimate of the run's metrics pipeline (nil = queue-length
// proxy); interval must be positive (interval 0 means "no rebalancer" and
// is handled by Run, not here).
func newRebalancer(policy RebalancePolicy, engines []*sched.Engine,
	load func(*sched.Task) time.Duration, interval, cost time.Duration, budget int) *Rebalancer {
	uniform := load == nil
	if uniform {
		// Uniform placeholder so NormBacklog degrades to a capacity-
		// weighted queue length instead of an all-zero signal.
		load = func(*sched.Task) time.Duration { return time.Millisecond }
	}
	return &Rebalancer{
		policy:   policy,
		engines:  engines,
		load:     load,
		interval: interval,
		cost:     cost,
		budget:   budget,
		moved:    map[int]bool{},
		uniform:  uniform,
		viewBuf:  make([]EngineView, len(engines)),
		eligBuf:  make([][]Candidate, len(engines)),
	}
}

// due reports whether a rebalance instant has been reached, following the
// SignalBoard's refresh discipline: at least one interval of virtual time
// past the last rebalance. An exhausted migration budget ends rounds for
// good — building views and planning moves that the budget would
// immediately discard is pure waste.
func (rb *Rebalancer) due(now time.Duration) bool {
	if rb.budget > 0 && rb.count >= rb.budget {
		return false
	}
	return now-rb.last >= rb.interval
}

// Migrations returns the number of executed migrations so far.
func (rb *Rebalancer) Migrations() int { return rb.count }

// Moved reports whether the request with the given task ID has migrated.
func (rb *Rebalancer) Moved(id int) bool { return rb.moved[id] }

// views snapshots live engine state for the policy, excluding requests
// that already migrated (once per request, ever — the invariant that
// makes thrashing structurally impossible: a request's total migration
// delay is bounded by one cost, and ping-pong cycles cannot form).
//
// The backlog is O(1) per engine on every configured path: the engines'
// incremental sum when they are bound to the run's estimator, the
// placeholder arithmetic when the run has none. The O(n) EstimatedBacklog
// scan remains only as the fallback for engines constructed without a
// BacklogEstimator, and as the reference the invariant tests compare the
// incremental sum against.
func (rb *Rebalancer) views() []EngineView {
	views := rb.viewBuf
	for i, e := range rb.engines {
		var backlog time.Duration
		switch {
		case rb.uniform:
			// Bit-identical to scanning with the placeholder: every
			// outstanding request (ready or pending) contributes exactly
			// one placeholder unit.
			backlog = time.Duration(e.Outstanding()) * time.Millisecond
		case e.BacklogBound():
			backlog = e.Backlog()
		default:
			backlog = e.EstimatedBacklog(rb.load)
		}
		elig := rb.eligBuf[i][:0]
		rb.migBuf = e.MigratableInto(rb.migBuf[:0])
		for _, t := range rb.migBuf {
			if rb.moved[t.ID] {
				continue
			}
			elig = append(elig, Candidate{Task: t, Est: rb.load(t)})
		}
		rb.eligBuf[i] = elig
		views[i] = EngineView{
			Engine:       i,
			LatencyScale: e.LatencyScale(),
			Outstanding:  e.Outstanding(),
			NormBacklog:  float64(backlog) * e.LatencyScale(),
			Eligible:     elig,
			Down:         rb.up != nil && !rb.up(i),
		}
	}
	return views
}

// rebalance runs one policy round at virtual time now: plan on live
// views, then execute the plan prefix the budget allows, charging each
// moved request the migration cost as a visibility delay on the adopting
// engine. A malformed plan (unknown ID, out-of-range engine, self-move)
// fails the run — policies are deterministic functions and a bad move is
// a bug, not a runtime condition.
func (rb *Rebalancer) rebalance(now time.Duration) error {
	rb.last = now
	moves := rb.policy.Plan(rb.views(), now, rb.cost)
	for _, m := range moves {
		if rb.budget > 0 && rb.count >= rb.budget {
			break
		}
		if m.From < 0 || m.From >= len(rb.engines) || m.To < 0 || m.To >= len(rb.engines) || m.From == m.To {
			return fmt.Errorf("cluster: policy %s proposed invalid move %+v", rb.policy.Name(), m)
		}
		if rb.up != nil && (!rb.up(m.From) || !rb.up(m.To)) {
			return fmt.Errorf("cluster: policy %s moved request %d through an out-of-service engine (%d -> %d)",
				rb.policy.Name(), m.ID, m.From, m.To)
		}
		if rb.moved[m.ID] {
			return fmt.Errorf("cluster: policy %s re-moved request %d", rb.policy.Name(), m.ID)
		}
		t, err := rb.engines[m.From].Extract(m.ID)
		if err != nil {
			return fmt.Errorf("cluster: policy %s: %w", rb.policy.Name(), err)
		}
		if err := rb.engines[m.To].Adopt(t, now+rb.cost); err != nil {
			return fmt.Errorf("cluster: policy %s: %w", rb.policy.Name(), err)
		}
		rb.moved[m.ID] = true
		rb.count++
	}
	return nil
}
