package cluster

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/sched"
)

// TestNeutralKnobsBitIdentical is the equivalence anchor for the router
// rearchitecture: explicit homogeneous specs + SignalInterval 0 +
// AdmitAll must reproduce the plain idealized configuration bit-
// identically, for every dispatcher — the new knobs at their neutral
// settings change nothing.
func TestNeutralKnobsBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		for _, mk := range []func() Dispatcher{
			func() Dispatcher { return NewRoundRobin() },
			func() Dispatcher { return NewJSQ() },
			func() Dispatcher { return NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est)) },
			func() Dispatcher { return NewLeastLoad("blind-load", BlindLoad(est)) },
		} {
			plain, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
				Config{Engines: 3, Dispatch: mk()})
			if err != nil {
				t.Fatal(err)
			}
			specs := []EngineSpec{{LatencyScale: 1}, {LatencyScale: 1}, {LatencyScale: 1}}
			explicit, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
				Config{Specs: specs, Dispatch: mk(), SignalInterval: 0, Admission: AdmitAll{}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, explicit) {
				t.Fatalf("%s (seed %d): neutral knobs diverge from the idealized router",
					mk().Name(), seed)
			}
		}
	}
}

// TestSignalBoardCachesBetweenRefreshes: within the interval Observe
// returns the frozen snapshot; past it, a refresh picks up live state.
func TestSignalBoardCachesBetweenRefreshes(t *testing.T) {
	reqs, est, _ := randomStream(3, 8)
	e := sched.NewEngine(sched.NewFCFS(), sched.Options{})
	board := NewSignalBoard([]*sched.Engine{e}, 10*time.Millisecond, BlindLoad(est))

	sig := board.Observe(0)
	if sig[0].Outstanding != 0 {
		t.Fatalf("fresh engine reads %d outstanding", sig[0].Outstanding)
	}
	if err := e.Inject(reqs[0], reqs[0].Arrival); err != nil {
		t.Fatal(err)
	}
	// Inside the interval: the injection is invisible.
	if sig = board.Observe(5 * time.Millisecond); sig[0].Outstanding != 0 {
		t.Errorf("stale snapshot saw a post-refresh injection (outstanding %d)", sig[0].Outstanding)
	}
	if age := board.Age(5 * time.Millisecond); age != 5*time.Millisecond {
		t.Errorf("age %v, want 5ms", age)
	}
	// At the interval boundary: refreshed.
	if sig = board.Observe(10 * time.Millisecond); sig[0].Outstanding != 1 {
		t.Errorf("boundary observation not refreshed (outstanding %d)", sig[0].Outstanding)
	}
	if sig[0].Backlog == 0 {
		t.Error("refresh did not recompute the backlog signal")
	}
}

// TestObservedSnapshotSurvivesRefresh pins the double-buffering contract:
// a slice handed out by Observe stays valid across exactly one subsequent
// Refresh. This is the aliasing bug class where an interval-0 autoscaler
// action mid-arrival forces a refresh between the arrival's Observe and
// the dispatch that reads it — the scale action at instant t must not
// mutate the snapshot the same arrival's dispatch is holding.
func TestObservedSnapshotSurvivesRefresh(t *testing.T) {
	reqs, est, lut := randomStream(5, 12)
	load := SparsityAwareLoad(lut, est)
	engines := []*sched.Engine{
		sched.NewEngine(sched.NewFCFS(), sched.Options{BacklogEstimator: load}),
		sched.NewEngine(sched.NewFCFS(), sched.Options{BacklogEstimator: load}),
	}
	if err := engines[0].Inject(reqs[0], reqs[0].Arrival); err != nil {
		t.Fatal(err)
	}
	board := NewSignalBoard(engines, 0, load)

	sig := board.Observe(reqs[0].Arrival)
	frozen := append([]EngineSignal(nil), sig...)
	// A scale/churn action now mutates engine state and refreshes the
	// board while the dispatcher still holds sig.
	if err := engines[1].Inject(reqs[1], reqs[0].Arrival); err != nil {
		t.Fatal(err)
	}
	board.Refresh(reqs[0].Arrival)
	if !reflect.DeepEqual(sig, frozen) {
		t.Fatalf("refresh mutated the snapshot a dispatcher was holding:\n%+v\nvs frozen\n%+v", sig, frozen)
	}
	// The refresh itself did see the new state: the next observation
	// reports engine 1's injection.
	next := board.Observe(reqs[0].Arrival)
	if next[1].Outstanding != 1 || next[1].Backlog == 0 {
		t.Fatalf("post-refresh observation missed the injection: %+v", next[1])
	}
	if reflect.DeepEqual(next, frozen) {
		t.Fatal("post-refresh observation identical to the stale snapshot")
	}
}

// TestStaleSignalsConcentrateWork: with a refresh interval spanning many
// arrivals, every state-aware policy routes whole bursts to whichever
// engine looked emptiest at the last refresh — so the cluster must end up
// more concentrated (higher imbalance) than under exact signals.
func TestStaleSignalsConcentrateWork(t *testing.T) {
	reqs, est, _ := randomStream(21, 300)
	for _, r := range reqs {
		r.Arrival /= 10
	}
	run := func(interval time.Duration) Result {
		res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
			Config{Engines: 4, Dispatch: NewJSQ(), SignalInterval: interval})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact := run(0)
	// Far beyond the compressed stream's span: one refresh serves (almost)
	// the whole run.
	stale := run(time.Hour)
	if stale.Imbalance <= exact.Imbalance {
		t.Errorf("hour-stale JSQ imbalance %.3f not worse than exact-state %.3f",
			stale.Imbalance, exact.Imbalance)
	}
	// The degenerate stale case: the first snapshot shows four empty
	// engines forever, so JSQ's lowest-index tie-break sends everything
	// to engine 0.
	if stale.PerEngine[0].Requests != len(reqs) {
		t.Errorf("hour-stale JSQ spread requests (%d on engine 0), want full concentration",
			stale.PerEngine[0].Requests)
	}
}

// TestHeterogeneousEnginesRunAtTheirSpeed: the same request served by a
// half-speed engine takes twice the reference busy time — the latency
// scale reaches the engine's cost model, not just the dispatcher math.
func TestHeterogeneousEnginesRunAtTheirSpeed(t *testing.T) {
	reqs, est, _ := randomStream(2, 40)
	run := func(scale float64) Result {
		res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
			Config{Specs: []EngineSpec{{LatencyScale: scale}}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref, slow := run(1), run(2)
	if slow.MeanLatency <= ref.MeanLatency {
		t.Errorf("half-speed engine mean latency %v not above reference %v",
			slow.MeanLatency, ref.MeanLatency)
	}
	if slow.ANTT <= ref.ANTT {
		t.Errorf("half-speed ANTT %.3f not above reference %.3f (NTT is measured against the reference contract)",
			slow.ANTT, ref.ANTT)
	}
}

// TestEngineSpecsValidation: contradictions and bad scales fail the run.
func TestEngineSpecsValidation(t *testing.T) {
	reqs, est, _ := randomStream(3, 5)
	mk := func(int) sched.Scheduler { return sched.NewSJF(est) }
	if _, err := Run(mk, reqs, Config{Engines: 3, Specs: []EngineSpec{{}, {}}}); err == nil {
		t.Error("Engines contradicting len(Specs) accepted")
	}
	if _, err := Run(mk, reqs, Config{Specs: []EngineSpec{{LatencyScale: -1}}}); err == nil {
		t.Error("negative latency scale accepted")
	}
	if _, err := Run(mk, reqs, Config{Engines: 2, Specs: []EngineSpec{{}, {}}}); err != nil {
		t.Errorf("Engines matching len(Specs) rejected: %v", err)
	}
}
