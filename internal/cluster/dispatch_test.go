package cluster

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// unprofiledStream builds a stream whose requests all carry a key the LUT
// never profiled (same model, different pattern), plus the LUT/estimator
// built from the profiled pattern only.
func unprofiledStream(n int) ([]*workload.Request, *sched.Estimator, *trace.StatsSet) {
	store := trace.NewStore()
	profiled := trace.Key{Model: "m", Pattern: sparsity.Dense}
	var profiles []trace.SampleTrace
	for p := 0; p < 3; p++ {
		tr := trace.SampleTrace{
			LayerLatency:  []time.Duration{2 * time.Millisecond, 3 * time.Millisecond},
			LayerSparsity: []float64{0.5, 0.5},
		}
		profiles = append(profiles, tr)
	}
	store.Add(profiled, profiles)
	set, err := trace.NewStatsSet(store)
	if err != nil {
		panic(err)
	}
	unprofiled := trace.Key{Model: "m", Pattern: sparsity.BlockNM}
	reqs := make([]*workload.Request, n)
	for i := range reqs {
		tr := profiles[i%len(profiles)]
		reqs[i] = &workload.Request{
			ID:      i,
			Key:     unprofiled,
			Trace:   tr,
			Arrival: time.Duration(i) * 500 * time.Microsecond,
			SLO:     time.Second,
		}
	}
	return reqs, sched.NewEstimator(set), set
}

// TestSparsityAwareLoadUnknownKeyFallback: an unprofiled model-pattern
// pair must produce the pattern-blind estimate, never zero — a zero
// estimate made LeastLoad treat unprofiled requests as free work.
func TestSparsityAwareLoadUnknownKeyFallback(t *testing.T) {
	reqs, est, lut := unprofiledStream(1)
	load := SparsityAwareLoad(lut, est)
	e := sched.NewEngine(sched.NewFCFS(), sched.Options{})
	if err := e.Inject(reqs[0], reqs[0].Arrival); err != nil {
		t.Fatal(err)
	}
	got := e.EstimatedBacklog(load)
	want := e.EstimatedBacklog(BlindLoad(est))
	if got == 0 {
		t.Fatal("unknown LUT key estimated as zero load")
	}
	if got != want {
		t.Fatalf("unknown-key estimate %v differs from the pattern-blind fallback %v", got, want)
	}
}

// TestBlindLoadUnknownModelFallback: a model the profiling stage never
// saw falls back to the population mean instead of panicking or zero.
func TestBlindLoadUnknownModelFallback(t *testing.T) {
	reqs, est, lut := unprofiledStream(1)
	alien := *reqs[0]
	alien.Key = trace.Key{Model: "never-profiled", Pattern: sparsity.Dense}
	e := sched.NewEngine(sched.NewFCFS(), sched.Options{})
	if err := e.Inject(&alien, alien.Arrival); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func(*sched.Task) time.Duration{
		BlindLoad(est), SparsityAwareLoad(lut, est),
	} {
		if got := e.EstimatedBacklog(load); got != est.MeanIsolated() {
			t.Fatalf("unknown-model estimate %v, want population mean %v", got, est.MeanIsolated())
		}
	}
}

// TestUnprofiledRoutingSpreads is the regression test for the zero-load
// bug: a saturating stream of exclusively unprofiled requests must spread
// over the cluster under sparsity-aware least-load, not pile onto engine
// 0 because every estimate reads as free.
func TestUnprofiledRoutingSpreads(t *testing.T) {
	reqs, est, lut := unprofiledStream(60)
	res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{Engines: 3, Dispatch: NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est))})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.PerEngine {
		if r.Requests == 0 {
			t.Errorf("engine %d received nothing: unprofiled requests routed as free work", i)
		}
	}
}

// TestRoundRobinReusedAcrossRuns: a dispatcher instance reused for a
// second Run must produce exactly the results a fresh instance does — the
// rotation state cannot leak between runs.
func TestRoundRobinReusedAcrossRuns(t *testing.T) {
	reqs, _, _ := randomStream(5, 31) // odd count, so a leak would shift the second run
	cfg := func(d Dispatcher) Config { return Config{Engines: 3, Dispatch: d} }
	reused := NewRoundRobin()
	first, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs, cfg(reused))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs, cfg(reused))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("round-robin leaked rotation state into the second run")
	}
}

// TestRoundRobinGuardsEngineCountChange: a rotation position past the
// engine count (an instance that previously served a bigger cluster and
// was never reset) must still pick in range.
func TestRoundRobinGuardsEngineCountChange(t *testing.T) {
	d := &RoundRobin{next: 7}
	sig := make([]EngineSignal, 2)
	for i := 0; i < 5; i++ {
		if got := d.Pick(sig, nil, 0); got < 0 || got >= len(sig) {
			t.Fatalf("pick %d out of range for %d engines", got, len(sig))
		}
	}
}

// TestJSQNormalizesCapacity: with one double-speed and one half-speed
// engine, capacity-normalized JSQ must route the bulk of a saturating
// stream to the fast engine instead of splitting evenly.
func TestJSQNormalizesCapacity(t *testing.T) {
	reqs, _, _ := randomStream(9, 200)
	for _, r := range reqs {
		r.Arrival /= 10
	}
	res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{
			Specs: []EngineSpec{
				{LatencyScale: 0.5}, // double speed
				{LatencyScale: 2},   // half speed
			},
			Dispatch: NewJSQ(),
		})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := res.PerEngine[0].Requests, res.PerEngine[1].Requests
	if fast <= slow {
		t.Errorf("fast engine served %d <= slow engine's %d under capacity-normalized JSQ", fast, slow)
	}
}
