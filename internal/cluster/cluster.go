package cluster

import (
	"fmt"
	"sort"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/stats"
	"sparsedysta/internal/workload"
)

// EngineSpec configures one engine of a heterogeneous cluster.
type EngineSpec struct {
	// Sched tunes the engine (preemption overhead, recording).
	Sched sched.Options
	// LatencyScale is the engine's speed relative to the reference
	// hardware: every executed layer latency is multiplied by it. 0 and
	// 1 mean reference speed, 2 a half-speed device, 0.5 a double-speed
	// one. It overrides Sched.LatencyScale when nonzero.
	LatencyScale float64
}

// Config sizes a cluster run.
type Config struct {
	// Engines is the number of simulated accelerators (>= 1) when Specs
	// is empty: a homogeneous cluster of identical engines under Sched.
	Engines int
	// Specs configures a heterogeneous cluster, one entry per engine.
	// When non-empty it defines the engine count (Engines must then be 0
	// or len(Specs)).
	Specs []EngineSpec
	// Dispatch routes arrivals to engines. Nil defaults to round-robin.
	Dispatch Dispatcher
	// Admission sheds requests before injection. Nil admits everything.
	Admission Admission
	// SignalInterval bounds the staleness of the dispatcher-visible
	// engine signals: the SignalBoard refreshes its snapshots only when
	// an arrival is at least this much virtual time past the last
	// refresh. 0 refreshes on every arrival — the idealized exact-state
	// router, bit-identical to the pre-SignalBoard dispatch layer.
	SignalInterval time.Duration
	// Rebalance is the migration policy moving queued-but-never-started
	// requests between engines (work stealing / shedding). Nil or
	// NoRebalance disables migration.
	Rebalance RebalancePolicy
	// RebalanceInterval is the minimum virtual time between rebalance
	// rounds. 0 disables migration entirely — bit-identical to a run
	// without a migration subsystem, whatever Rebalance is set to.
	RebalanceInterval time.Duration
	// MigrationCost is the per-request latency penalty of a migration,
	// in reference-hardware units, charged as a visibility delay: a
	// moved request cannot start on its new engine until the rebalance
	// instant plus this cost (see DESIGN.md §9 for why reference units).
	MigrationCost time.Duration
	// MigrationBudget caps total migrations per run. 0 means no cap
	// beyond the built-in once-per-request rule (which alone bounds
	// migrations by the stream length and makes thrashing impossible).
	MigrationBudget int
	// Churn schedules engine failures, recoveries, drains and joins at
	// fixed virtual-clock instants (see churn.go). Nil — or a plan with
	// no events — disables fault injection entirely: the run takes
	// exactly the pre-churn code path, bit-identically.
	Churn *ChurnPlan
	// RetryMax caps how many times one request may restart from zero
	// after engine failures before it is abandoned as lost work. 0 means
	// unlimited retries (a request is only lost if no engine ever comes
	// back for it); a cap is opt-in with RetryMax >= 1.
	RetryMax int
	// Autoscale scales the live engine set between its Min and Max by
	// draining and joining engines at signal-refresh instants (see
	// autoscale.go). Nil disables autoscaling entirely: the run takes
	// exactly the fixed-size code path, bit-identically.
	Autoscale *Autoscaler
	// Sched tunes each engine of a homogeneous cluster (ignored for
	// engines covered by Specs). With Sched.BoundedCapture set the
	// cluster-wide aggregate is computed from constant-size streaming
	// accumulators instead of the union of per-task outcomes, so a run's
	// memory no longer grows with the stream length; Sched.Exemplars
	// then sizes the cluster-wide exemplar reservoir.
	Sched sched.Options
	// debugBacklogAudit, when set (same-package tests only), runs once per
	// arrival — after churn, rebalancing and autoscaling have acted, before
	// the arrival observes signals — and once after the final drain, with
	// the live engine slice and the run's resolved load estimate. The
	// invariant tests use it to compare every engine's incremental Backlog
	// sum against the O(n) EstimatedBacklog reference at each dispatch
	// instant; a returned error fails the run.
	debugBacklogAudit func(engines []*sched.Engine, load func(*sched.Task) time.Duration) error
}

// engineSpecs resolves the per-engine specs: Specs verbatim when given,
// else Engines copies of the homogeneous Sched options.
func (cfg Config) engineSpecs() ([]EngineSpec, error) {
	if len(cfg.Specs) > 0 {
		if cfg.Engines != 0 && cfg.Engines != len(cfg.Specs) {
			return nil, fmt.Errorf("cluster: Engines=%d contradicts %d specs",
				cfg.Engines, len(cfg.Specs))
		}
		specs := append([]EngineSpec(nil), cfg.Specs...)
		for i := range specs {
			if specs[i].LatencyScale < 0 {
				return nil, fmt.Errorf("cluster: engine %d latency scale %v < 0",
					i, specs[i].LatencyScale)
			}
			if specs[i].LatencyScale != 0 {
				specs[i].Sched.LatencyScale = specs[i].LatencyScale
			}
		}
		return specs, nil
	}
	if cfg.Engines < 1 {
		return nil, fmt.Errorf("cluster: %d engines", cfg.Engines)
	}
	specs := make([]EngineSpec, cfg.Engines)
	for i := range specs {
		specs[i].Sched = cfg.Sched
	}
	return specs, nil
}

// Result aggregates a cluster run: the cluster-wide metrics in the
// embedded sched.Result (computed over all admitted requests, so ANTT,
// violation rate and throughput are directly comparable to a
// single-engine run), plus per-engine breakdowns and the cluster-health
// metrics. Result.Rejected counts requests shed by the admission policy;
// Goodput (SLO-met completions per second) is the metric that makes
// shedding comparable to serving everyone badly.
type Result struct {
	sched.Result
	// Dispatch, Admission, Rebalance and Engines echo the effective
	// configuration (Rebalance is "none" when migration is disabled,
	// whether by policy or by a zero interval).
	Dispatch  string
	Admission string
	Rebalance string
	Engines   int
	// PerEngine holds each engine's own Result, in engine order.
	PerEngine []sched.Result
	// Utilization is the mean busy fraction across engines over the
	// cluster makespan: sum(busy_i) / (N * makespan).
	Utilization float64
	// Imbalance is max(busy_i) / mean(busy_i): 1.0 is a perfectly
	// balanced cluster, higher means the dispatcher concentrated work.
	// The degenerate all-idle cluster (total busy time zero) reports
	// 1.0 — no work was concentrated anywhere.
	Imbalance float64
	// ChurnEvents counts fired fault-injection events (0 without a churn
	// plan). The failure-handling counters themselves — Failovers,
	// Retries, Redirects, LostWork — live on the embedded sched.Result.
	ChurnEvents int
}

// Run simulates the request stream over the configured engines, one fresh
// scheduler per engine from newSched, interleaving all engines' events on
// one virtual clock: before each request is dispatched at its arrival
// instant, every engine has committed exactly the layers it would have
// started before that instant.
func Run(newSched func(engine int) sched.Scheduler, reqs []*workload.Request, cfg Config) (Result, error) {
	if len(reqs) == 0 {
		if _, err := cfg.engineSpecs(); err != nil {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("cluster: empty request stream")
	}
	sorted := append([]*workload.Request(nil), reqs...)
	workload.SortByArrival(sorted)
	return runCluster(newSched, sched.NewSliceSource(sorted), sorted, cfg)
}

// RunStream is Run over a request iterator: requests are consumed one at
// a time in arrival order and never materialized, so with bounded
// capture (Config.Sched.BoundedCapture) a run's memory is governed by
// the in-flight set, not the stream length. The schedule — and with
// matching capture options the Result — is bit-identical to Run on the
// materialized stream, because the arrival loop already consumed its
// input strictly in arrival order; the equivalence tests pin this.
// Sources yielding out-of-order arrivals fail the run.
func RunStream(newSched func(engine int) sched.Scheduler, src sched.RequestSource, cfg Config) (Result, error) {
	return runCluster(newSched, src, nil, cfg)
}

// runCluster is the shared implementation behind Run and RunStream.
// materialized is the already-sorted request slice on the slice path and
// nil on the streaming path; it only feeds the fault injector's upfront
// displaced-work map — the streaming path registers requests at
// injection instead (and both paths unregister at completion), so the
// lookups the failover machinery performs are identical.
func runCluster(newSched func(engine int) sched.Scheduler, src sched.RequestSource,
	materialized []*workload.Request, cfg Config) (Result, error) {
	specs, err := cfg.engineSpecs()
	if err != nil {
		return Result{}, err
	}
	req, ok := src.Next()
	if !ok {
		return Result{}, fmt.Errorf("cluster: empty request stream")
	}
	// Capture mode is a cluster-wide property: the full-capture
	// aggregate needs every engine's outcomes and the bounded one needs
	// every engine's observer, so a mix has no consistent aggregation.
	bounded := specs[0].Sched.BoundedCapture
	for i := range specs {
		if specs[i].Sched.BoundedCapture != bounded {
			return Result{}, fmt.Errorf("cluster: engine specs mix bounded and full capture")
		}
	}
	// wantTasks snapshots the caller's recording request before the
	// capture forcing below, for the post-aggregation stripping.
	wantTasks := make([]bool, len(specs))
	for i := range wantTasks {
		wantTasks[i] = specs[i].Sched.RecordTasks
	}
	var agg *boundedAgg
	if bounded {
		agg = newBoundedAgg(cfg.Sched.Exemplars, cfg.Sched.ExemplarSeed)
	}
	// fiRef is bound after the injector is armed; the observers close
	// over it so replacement incarnations (built from these same specs)
	// inherit the wiring.
	var fiRef *faultInjector
	for i := range specs {
		if !bounded {
			// Full capture: engines record per-task outcomes regardless of
			// the caller's options — the cluster-wide latency percentiles
			// need every request's turnaround, not per-engine summaries.
			// The extra field is stripped below when the caller didn't ask
			// for it.
			specs[i].Sched.RecordTasks = true
		}
		user := specs[i].Sched.Observer
		specs[i].Sched.Observer = func(o sched.TaskOutcome) {
			if user != nil {
				user(o)
			}
			if agg != nil {
				agg.note(o)
			}
			if fiRef != nil {
				fiRef.forget(o.ID)
			}
		}
	}
	dispatch := cfg.Dispatch
	if dispatch == nil {
		dispatch = NewRoundRobin()
	}
	if r, ok := dispatch.(resettable); ok {
		r.Reset()
	}
	admission := cfg.Admission
	if admission == nil {
		admission = AdmitAll{}
	}

	// Migration is active only with a real policy and a positive
	// interval; otherwise the run takes exactly the pre-migration code
	// path (the bit-identity anchor the equivalence tests enforce).
	migrating := cfg.Rebalance != nil && cfg.Rebalance.Name() != "none" && cfg.RebalanceInterval > 0

	// The board maintains the Backlog signal with the first load
	// estimate the run's policies provide (dispatcher first: routing,
	// admission and rebalancing share one metrics pipeline). An inactive
	// rebalance policy contributes nothing — its load estimate feeding
	// the Backlog signal would change admission/dispatch behavior and
	// break the interval-0 bit-identity contract. The curve form, when the
	// winning provider serves one, is resolved from that same provider so
	// the scalar and the curve can never come from different pipelines.
	providers := []any{dispatch, admission}
	if migrating {
		providers = append(providers, cfg.Rebalance)
	}
	if cfg.Autoscale != nil {
		// The autoscaler reads the Backlog signal, so it can keep the
		// board's load estimate alive even under a load-blind dispatcher.
		providers = append(providers, cfg.Autoscale)
	}
	var load func(*sched.Task) time.Duration
	var curve func(*sched.Task) []time.Duration
	for _, p := range providers {
		if lp, ok := p.(loadProvider); ok && lp.LoadFunc() != nil {
			load = lp.LoadFunc()
			if cp, ok := p.(curveProvider); ok {
				curve = cp.CurveFunc()
			}
			break
		}
	}
	// Bind the engines' incremental backlog accounting to the run's load
	// estimate before building them: every signal consumer (board,
	// rebalancer) then reads an O(1) running sum instead of scanning
	// queues. The binding lives in the specs, so replacement incarnations
	// the fault injector builds after a crash inherit it.
	if load != nil {
		for i := range specs {
			specs[i].Sched.BacklogEstimator = load
			specs[i].Sched.BacklogCurve = curve
		}
	}

	engines := make([]*sched.Engine, len(specs))
	for i := range engines {
		engines[i] = sched.NewEngine(newSched(i), specs[i].Sched)
	}
	board := NewSignalBoard(engines, cfg.SignalInterval, load)

	var rb *Rebalancer
	if migrating {
		rb = newRebalancer(cfg.Rebalance, engines, load,
			cfg.RebalanceInterval, cfg.MigrationCost, cfg.MigrationBudget)
	}
	if agg != nil && rb != nil {
		agg.movedFn = rb.Moved
	}

	// Fault injection is armed only when the plan has events; a churn-free
	// run never consults the injector (the bit-identity anchor). The
	// injector mutates the shared `engines` slice in place on failures, so
	// the board and rebalancer always see the current incarnations.
	var fi *faultInjector
	churning := cfg.Churn != nil && len(cfg.Churn.Events) > 0
	if churning || cfg.Autoscale != nil {
		// The autoscaler actuates through the injector's lifecycle
		// machinery, so an autoscaled run arms it even without a churn
		// plan (an empty plan simply never fires).
		plan := cfg.Churn
		if plan == nil {
			plan = &ChurnPlan{}
		}
		fi, err = newFaultInjector(plan, engines, specs, newSched,
			board, dispatch, materialized, cfg.MigrationCost, cfg.RetryMax)
		if err != nil {
			return Result{}, err
		}
		fiRef = fi
		if rb != nil {
			rb.bindLiveness(fi.up)
		}
	}
	var sc *scaler
	if cfg.Autoscale != nil {
		if err := cfg.Autoscale.validate(len(engines)); err != nil {
			return Result{}, err
		}
		sc, err = newScaler(cfg.Autoscale, fi)
		if err != nil {
			return Result{}, err
		}
	}

	// evq keeps every engine's next event in an indexed min-heap keyed
	// (time, engine index) — the same (first-lowest-time, lowest-index)
	// order the linear scan it replaces produced, now at O(log n) per
	// data-plane event. Data-plane mutations touch exactly one engine
	// (Step, Inject), so the loop re-syncs just that slot; control-plane
	// actions (churn firings, rebalance rounds, autoscaler actions) can
	// mutate arbitrary engines — or replace incarnations in the shared
	// slice — so those rare instants resync the whole heap.
	evq := newEventHeap(len(engines))
	sync := func(i int) {
		t, ok := engines[i].NextEvent()
		evq.set(i, t, ok)
	}
	syncAll := func() {
		for i := range engines {
			sync(i)
		}
	}

	// run commits engine events (all of them, or only those strictly
	// before `until`), interleaving rebalance rounds when migration is
	// active: a round fires just before committing an event whose
	// instant is at least one interval past the last round, so rounds
	// land on instants the simulation already visits (arrivals and
	// engine events), the control plane runs before the data plane at
	// equal instants, and the whole schedule stays a pure function of
	// the run. Without the per-event check, rounds could fire at most
	// once per arrival and every RebalanceInterval below the mean
	// inter-arrival gap would behave identically; with it, the drain
	// tail is rebalanced too — the phase where work stealing matters
	// most, since the tail of a misrouted queue is exactly what idle
	// engines can absorb. Migration can only delay the earliest event
	// (adoptions become visible at instant + cost), never rewind it.
	run := func(until time.Duration, boundedRun bool) error {
		for {
			best, bestT, okb := evq.min()
			if okb && boundedRun && bestT >= until {
				okb = false
			}
			// Churn events interleave with engine events in global time
			// order, firing first at equal instants: the control plane
			// acts before the data plane, so a layer "completing" at the
			// exact crash instant dies with the accelerator. A failure can
			// reshape the event horizon (the crashed engine's events
			// vanish, adopters gain some), so resync every slot and
			// re-evaluate from scratch after each firing. In the unbounded
			// drain this also fires events past the last engine event —
			// the recovery that un-parks work stranded by an
			// all-engines-down window.
			if fi != nil {
				if ct, okc := fi.peek(); okc && (!boundedRun || ct < until) {
					if !okb || ct <= bestT {
						if err := fi.fireUpTo(ct); err != nil {
							return err
						}
						syncAll()
						continue
					}
				}
			}
			if !okb {
				return nil
			}
			if rb != nil && rb.due(bestT) {
				if err := rb.rebalance(bestT); err != nil {
					return err
				}
				// Migration may have reshaped the event horizon —
				// possibly past a pending churn instant — so resync and
				// restart the scan instead of stepping a stale pick. The
				// round just fired, so rb.due is false and this cannot
				// loop.
				syncAll()
				continue
			}
			if _, err := engines[best].Step(); err != nil {
				return err
			}
			sync(best)
		}
	}
	advance := func(until time.Duration) error { return run(until, true) }
	drain := func() error { return run(0, false) }

	rejected := 0
	offered := 0
	var lastArrival int64 = -1
	for ; ok; req, ok = src.Next() {
		r := req
		if int64(r.Arrival) < lastArrival {
			return Result{}, fmt.Errorf(
				"cluster: request stream yielded request %d at %v after an arrival at %v (stream must be sorted)",
				r.ID, r.Arrival, time.Duration(lastArrival))
		}
		lastArrival = int64(r.Arrival)
		offered++
		if err := advance(r.Arrival); err != nil {
			return Result{}, err
		}
		// Churn events at exactly the arrival instant fire before the
		// arrival is routed (control plane before data plane): the
		// request arrives at a cluster that has already lost — or
		// regained — the engine.
		if fi != nil {
			if at, okc := fi.peek(); okc && at <= r.Arrival {
				if err := fi.fireUpTo(r.Arrival); err != nil {
					return Result{}, err
				}
				syncAll()
			}
		}
		if rb != nil && rb.due(r.Arrival) {
			if err := rb.rebalance(r.Arrival); err != nil {
				return Result{}, err
			}
			syncAll()
		}
		if cfg.debugBacklogAudit != nil {
			if err := cfg.debugBacklogAudit(engines, load); err != nil {
				return Result{}, err
			}
		}
		sig := board.Observe(r.Arrival)
		// The autoscaler evaluates exactly once per snapshot refresh —
		// the instants where its view actually changed — before the
		// arrival is admitted (control plane before data plane). The
		// snapshot it reads is the pre-action one, so its own action
		// reaches dispatch with the same staleness every signal has: this
		// very arrival may still route to the engine just drained and
		// bounce off it as a redirect.
		if sc != nil && board.Refreshes() != sc.seen {
			sc.seen = board.Refreshes()
			if err := sc.evaluate(sig, r.Arrival); err != nil {
				return Result{}, err
			}
			syncAll()
		}
		if !admission.Admit(sig, r, r.Arrival) {
			rejected++
			continue
		}
		idx := dispatch.Pick(sig, r, r.Arrival)
		if idx < 0 || idx >= len(engines) {
			return Result{}, fmt.Errorf("cluster: dispatcher %s picked engine %d of %d",
				dispatch.Name(), idx, len(engines))
		}
		// The pick may target a corpse — the board's stale snapshot can
		// keep a dead engine attractive until the next refresh. Bounce
		// to the next live engine; with the whole cluster down the
		// request is refused outright (the 503 of a serving stack),
		// counted with the admission rejections, never silently dropped.
		if fi != nil {
			live, okr := fi.resolve(idx)
			if !okr {
				rejected++
				continue
			}
			idx = live
			if materialized == nil {
				fi.note(r)
			}
		}
		if err := engines[idx].Inject(r, r.Arrival); err != nil {
			return Result{}, err
		}
		sync(idx)
	}
	if err := drain(); err != nil {
		return Result{}, err
	}
	if cfg.debugBacklogAudit != nil {
		if err := cfg.debugBacklogAudit(engines, load); err != nil {
			return Result{}, err
		}
	}
	if fi != nil {
		fi.finish()
	}

	res := Result{
		Dispatch:  dispatch.Name(),
		Admission: admission.Name(),
		Rebalance: "none",
		Engines:   len(engines),
		PerEngine: make([]sched.Result, len(engines)),
	}
	busy := make([]time.Duration, len(engines))
	for i, e := range engines {
		busy[i] = e.BusyTime()
		res.PerEngine[i] = e.Finish()
	}
	// PerEngine reports the slots' final incarnations; requests completed
	// by incarnations that later crashed are sealed results the injector
	// kept, and they join the cluster-wide aggregate so a served request
	// counts whether or not its engine outlived it.
	combined := res.PerEngine
	if fi != nil && len(fi.sealed) > 0 {
		combined = append(append([]sched.Result(nil), fi.sealed...), res.PerEngine...)
	}
	if agg != nil && len(combined) > 1 {
		// Bounded capture: the cluster-wide metrics come from the
		// streaming accumulators the observers fed — there is no outcome
		// union to fold. The per-incarnation counters that aggregate()
		// sums are summed the same way here. A single incarnation passes
		// through aggregate()'s verbatim path below instead, mirroring
		// the full-capture single-engine anchor.
		res.Result = agg.finish(combined[0].Scheduler)
		for _, r := range combined {
			res.Result.Preemptions += r.Preemptions
			res.Result.Dropped += r.Dropped
		}
	} else {
		res.Result = aggregate(combined)
	}
	res.Result.Rejected = rejected
	// The cluster's offered load is the full request stream: rejected
	// requests never reach an engine, so the per-engine Offered counters
	// (injections) exclude them. Overriding from the consumed stream
	// length keeps the outcome conservation identity closed at the
	// cluster level.
	res.Result.Offered = offered
	if fi != nil {
		res.Result.LostWork = fi.lost
		res.Result.Failovers = fi.failovers
		res.Result.Retries = fi.retries
		res.Result.Redirects = fi.redirects
		res.ChurnEvents = fi.churns
		for i := range busy {
			busy[i] += fi.priorBusy[i]
		}
		// Every injected request must land in exactly one outcome class;
		// a failure here is a simulator bug (silently dropped or
		// double-counted work), not a runtime condition.
		if err := sched.CheckOutcomeConservation(res.Result); err != nil {
			return Result{}, err
		}
	}
	if sc != nil {
		res.Result.ScaleUps = sc.ups
		res.Result.ScaleDowns = sc.downs
	}
	if rb != nil {
		// Win/loss accounting: did each moved request ultimately make
		// its SLO? Full capture reads the union of outcomes (recorded
		// unconditionally above) before the RecordTasks stripping below;
		// bounded capture resolved each completion against rb.Moved at
		// its completion instant, since no outcomes survive the run.
		res.Rebalance = rb.policy.Name()
		res.Migrations = rb.Migrations()
		if agg != nil {
			res.MigrationWins, res.MigrationLosses = agg.wins, agg.losses
		} else {
			for _, o := range res.Result.Tasks {
				if !rb.Moved(o.ID) {
					continue
				}
				if o.Violated {
					res.MigrationLosses++
				} else {
					res.MigrationWins++
				}
			}
		}
	}
	// Strip the outcomes the caller never asked for: full-capture engines
	// record them unconditionally (the aggregation above needs them), but
	// the caller's request lives in the pre-forcing snapshot (which
	// mirrors cfg.Sched on the homogeneous path).
	anyTasks := false
	for i := range specs {
		if wantTasks[i] {
			anyTasks = true
		} else {
			res.PerEngine[i].Tasks = nil
		}
	}
	if !anyTasks {
		res.Tasks = nil
	}

	if fi != nil {
		// Lifecycle-aware capacity accounting: close every open
		// in-service span at the last committed instant, then compute
		// utilization and imbalance over the *live* engine set only —
		// slots the autoscaler parked for the whole run (or that churn
		// kept dead) must not dilute the metrics of the engines that
		// actually served. EngineSeconds bills exactly the in-service
		// spans: the operator pays for engines while they are in
		// rotation, not for parked capacity.
		var end time.Duration
		for _, e := range engines {
			if t := e.Now(); t > end {
				end = t
			}
		}
		inService := fi.closeService(end)
		res.Result.EngineSeconds = inService.Seconds()
		var totalBusy, maxBusy time.Duration
		liveSlots := 0
		for i, b := range busy {
			if fi.serviceTime[i] <= 0 {
				continue
			}
			liveSlots++
			totalBusy += b
			if b > maxBusy {
				maxBusy = b
			}
		}
		if inService > 0 {
			res.Utilization = float64(totalBusy) / float64(inService)
		}
		if totalBusy > 0 {
			res.Imbalance = float64(maxBusy) / (float64(totalBusy) / float64(liveSlots))
		} else {
			res.Imbalance = 1
		}
		return res, nil
	}

	// Fixed-size path: the cluster bills every engine for the whole
	// makespan, and all slots enter the balance metrics.
	res.Result.EngineSeconds = float64(len(engines)) * res.Makespan.Seconds()
	var totalBusy, maxBusy time.Duration
	for _, b := range busy {
		totalBusy += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	if res.Makespan > 0 {
		res.Utilization = float64(totalBusy) / (float64(len(engines)) * float64(res.Makespan))
	}
	if totalBusy > 0 {
		mean := float64(totalBusy) / float64(len(engines))
		res.Imbalance = float64(maxBusy) / mean
	} else {
		// All engines idle: nothing was concentrated anywhere, which is
		// the perfectly balanced case, not a "better than balanced" 0.
		res.Imbalance = 1
	}
	return res, nil
}

// aggregate folds per-engine results into one cluster-wide sched.Result.
// A single engine's result passes through verbatim (the bit-identity
// anchor); for N > 1 the metrics are recomputed from the union of all
// engines' per-task outcomes, in task-ID order, with the same formulas
// sched.Run uses. Timelines stay per-engine: a cluster has no single
// execution order to draw.
func aggregate(per []sched.Result) sched.Result {
	if len(per) == 1 {
		return per[0]
	}
	agg := sched.Result{Scheduler: per[0].Scheduler}
	var outcomes []sched.TaskOutcome
	for _, r := range per {
		agg.Preemptions += r.Preemptions
		agg.Dropped += r.Dropped
		outcomes = append(outcomes, r.Tasks...)
	}
	if len(outcomes) == 0 {
		return agg
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].ID < outcomes[j].ID })

	ratios := make([]float64, len(outcomes))
	latencies := make([]float64, len(outcomes))
	violations := 0
	firstArrival, lastDone := outcomes[0].Arrival, time.Duration(0)
	perModel := map[string]sched.ModelMetrics{}
	for i, o := range outcomes {
		ratios[i] = o.NTT
		latencies[i] = float64(o.Completion - o.Arrival)
		if o.Violated {
			violations++
		}
		if o.Arrival < firstArrival {
			firstArrival = o.Arrival
		}
		if o.Completion > lastDone {
			lastDone = o.Completion
		}
		m := perModel[o.Model]
		m.Requests++
		m.ANTT += o.NTT
		if o.Violated {
			m.ViolationRate++
		}
		perModel[o.Model] = m
	}
	for name, m := range perModel {
		m.ANTT /= float64(m.Requests)
		m.ViolationRate /= float64(m.Requests)
		perModel[name] = m
	}
	agg.Requests = len(outcomes)
	agg.Violations = violations
	agg.ANTT = stats.Mean(ratios)
	agg.ViolationRate = float64(violations) / float64(len(outcomes))
	agg.MeanLatency = time.Duration(stats.Mean(latencies))
	agg.P50Latency = time.Duration(stats.Percentile(latencies, 50))
	agg.P95Latency = time.Duration(stats.Percentile(latencies, 95))
	agg.P99Latency = time.Duration(stats.Percentile(latencies, 99))
	agg.Makespan = lastDone - firstArrival
	if agg.Makespan > 0 {
		agg.Throughput = float64(len(outcomes)) / agg.Makespan.Seconds()
		agg.Goodput = float64(len(outcomes)-violations) / agg.Makespan.Seconds()
	}
	agg.PerModel = perModel
	agg.Tasks = outcomes
	return agg
}
