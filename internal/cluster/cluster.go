// Package cluster simulates a multi-accelerator serving node: N steppable
// scheduling engines (internal/sched.Engine) behind a dispatch layer that
// routes each arriving request to one engine. It extends the paper's
// single-accelerator evaluation toward the sharded serving scenario of the
// roadmap — the interesting scheduling question at scale is which device
// gets a request, informed by sparsity-aware load estimates, before the
// per-device scheduler ever sees it.
//
// Determinism contract: engines' events interleave on one virtual clock in
// (event time, engine index) order, every stochastic input derives from
// the request stream, and dispatchers are deterministic — so a cluster run
// is a pure function of (schedulers, stream, config). A 1-engine cluster
// reproduces sched.Run bit-identically under every dispatcher, which the
// equivalence tests enforce.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/stats"
	"sparsedysta/internal/workload"
)

// Config sizes a cluster run.
type Config struct {
	// Engines is the number of simulated accelerators (>= 1).
	Engines int
	// Dispatch routes arrivals to engines. Nil defaults to round-robin.
	Dispatch Dispatcher
	// Sched tunes each engine (preemption overhead, recording).
	Sched sched.Options
}

// Result aggregates a cluster run: the cluster-wide metrics in the
// embedded sched.Result (computed over all requests, so ANTT, violation
// rate and throughput are directly comparable to a single-engine run),
// plus per-engine breakdowns and the two cluster-health metrics.
type Result struct {
	sched.Result
	// Dispatch and Engines echo the configuration.
	Dispatch string
	Engines  int
	// PerEngine holds each engine's own Result, in engine order.
	PerEngine []sched.Result
	// Utilization is the mean busy fraction across engines over the
	// cluster makespan: sum(busy_i) / (N * makespan).
	Utilization float64
	// Imbalance is max(busy_i) / mean(busy_i): 1.0 is a perfectly
	// balanced cluster, higher means the dispatcher concentrated work.
	Imbalance float64
}

// Run simulates the request stream over cfg.Engines engines, one fresh
// scheduler per engine from newSched, interleaving all engines' events on
// one virtual clock: before each request is dispatched at its arrival
// instant, every engine has committed exactly the layers it would have
// started before that instant.
func Run(newSched func(engine int) sched.Scheduler, reqs []*workload.Request, cfg Config) (Result, error) {
	if cfg.Engines < 1 {
		return Result{}, fmt.Errorf("cluster: %d engines", cfg.Engines)
	}
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("cluster: empty request stream")
	}
	dispatch := cfg.Dispatch
	if dispatch == nil {
		dispatch = NewRoundRobin()
	}

	// Engines record per-task outcomes regardless of the caller's
	// options: the cluster-wide latency percentiles need every request's
	// turnaround, not per-engine summaries. The extra field is stripped
	// below when the caller didn't ask for it.
	engOpts := cfg.Sched
	engOpts.RecordTasks = true
	engines := make([]*sched.Engine, cfg.Engines)
	for i := range engines {
		engines[i] = sched.NewEngine(newSched(i), engOpts)
	}

	// advance commits every engine event strictly before `until`, in
	// (event time, engine index) order.
	advance := func(until time.Duration) error {
		for {
			best := -1
			var bestT time.Duration
			for i, e := range engines {
				t, ok := e.NextEvent()
				if !ok || t >= until {
					continue
				}
				if best < 0 || t < bestT {
					best, bestT = i, t
				}
			}
			if best < 0 {
				return nil
			}
			if _, err := engines[best].Step(); err != nil {
				return err
			}
		}
	}

	sorted := append([]*workload.Request(nil), reqs...)
	workload.SortByArrival(sorted)
	for _, r := range sorted {
		if err := advance(r.Arrival); err != nil {
			return Result{}, err
		}
		idx := dispatch.Pick(engines, r, r.Arrival)
		if idx < 0 || idx >= len(engines) {
			return Result{}, fmt.Errorf("cluster: dispatcher %s picked engine %d of %d",
				dispatch.Name(), idx, len(engines))
		}
		if err := engines[idx].Inject(r, r.Arrival); err != nil {
			return Result{}, err
		}
	}
	if err := advance(math.MaxInt64); err != nil {
		return Result{}, err
	}

	res := Result{
		Dispatch:  dispatch.Name(),
		Engines:   cfg.Engines,
		PerEngine: make([]sched.Result, cfg.Engines),
	}
	busy := make([]time.Duration, cfg.Engines)
	for i, e := range engines {
		busy[i] = e.BusyTime()
		res.PerEngine[i] = e.Finish()
	}
	res.Result = aggregate(res.PerEngine)
	if !cfg.Sched.RecordTasks {
		res.Tasks = nil
		for i := range res.PerEngine {
			res.PerEngine[i].Tasks = nil
		}
	}

	var totalBusy, maxBusy time.Duration
	for _, b := range busy {
		totalBusy += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	if res.Makespan > 0 {
		res.Utilization = float64(totalBusy) / (float64(cfg.Engines) * float64(res.Makespan))
	}
	if totalBusy > 0 {
		mean := float64(totalBusy) / float64(cfg.Engines)
		res.Imbalance = float64(maxBusy) / mean
	}
	return res, nil
}

// aggregate folds per-engine results into one cluster-wide sched.Result.
// A single engine's result passes through verbatim (the bit-identity
// anchor); for N > 1 the metrics are recomputed from the union of all
// engines' per-task outcomes, in task-ID order, with the same formulas
// sched.Run uses. Timelines stay per-engine: a cluster has no single
// execution order to draw.
func aggregate(per []sched.Result) sched.Result {
	if len(per) == 1 {
		return per[0]
	}
	agg := sched.Result{Scheduler: per[0].Scheduler}
	var outcomes []sched.TaskOutcome
	for _, r := range per {
		agg.Preemptions += r.Preemptions
		agg.Dropped += r.Dropped
		outcomes = append(outcomes, r.Tasks...)
	}
	if len(outcomes) == 0 {
		return agg
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].ID < outcomes[j].ID })

	ratios := make([]float64, len(outcomes))
	latencies := make([]float64, len(outcomes))
	violations := 0
	firstArrival, lastDone := outcomes[0].Arrival, time.Duration(0)
	perModel := map[string]sched.ModelMetrics{}
	for i, o := range outcomes {
		ratios[i] = o.NTT
		latencies[i] = float64(o.Completion - o.Arrival)
		if o.Violated {
			violations++
		}
		if o.Arrival < firstArrival {
			firstArrival = o.Arrival
		}
		if o.Completion > lastDone {
			lastDone = o.Completion
		}
		m := perModel[o.Model]
		m.Requests++
		m.ANTT += o.NTT
		if o.Violated {
			m.ViolationRate++
		}
		perModel[o.Model] = m
	}
	for name, m := range perModel {
		m.ANTT /= float64(m.Requests)
		m.ViolationRate /= float64(m.Requests)
		perModel[name] = m
	}
	agg.Requests = len(outcomes)
	agg.ANTT = stats.Mean(ratios)
	agg.ViolationRate = float64(violations) / float64(len(outcomes))
	agg.MeanLatency = time.Duration(stats.Mean(latencies))
	agg.P99Latency = time.Duration(stats.Percentile(latencies, 99))
	agg.Makespan = lastDone - firstArrival
	if agg.Makespan > 0 {
		agg.Throughput = float64(len(outcomes)) / agg.Makespan.Seconds()
	}
	agg.PerModel = perModel
	agg.Tasks = outcomes
	return agg
}
