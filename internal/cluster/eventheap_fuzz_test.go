package cluster

import (
	"testing"
	"time"
)

// refEventModel is the pre-heap reference: the linear scan over every
// slot that the event heap replaced, keeping the first strictly-lower
// time so the lowest index wins among equal times.
type refEventModel struct {
	ok []bool
	at []time.Duration
}

func (m *refEventModel) min() (int, time.Duration, bool) {
	best, ok := -1, false
	var bt time.Duration
	for i := range m.ok {
		if !m.ok[i] {
			continue
		}
		if !ok || m.at[i] < bt {
			best, bt, ok = i, m.at[i], true
		}
	}
	return best, bt, ok
}

// checkHeapInvariants verifies the structural contract after every
// mutation: position bookkeeping is a bijection onto the heap array, and
// every parent orders at-or-before its children under (time, slot).
func checkHeapInvariants(t *testing.T, h *eventHeap) {
	t.Helper()
	for p, s := range h.slots {
		if h.pos[s] != p {
			t.Fatalf("slot %d at heap position %d carries pos %d", s, p, h.pos[s])
		}
		if p > 0 {
			parent := (p - 1) / 2
			if h.less(s, h.slots[parent]) {
				t.Fatalf("heap order violated: slot %d at %d below its parent %d",
					s, p, h.slots[parent])
			}
		}
	}
	inHeap := 0
	for s, p := range h.pos {
		if p < 0 {
			continue
		}
		inHeap++
		if p >= len(h.slots) || h.slots[p] != s {
			t.Fatalf("slot %d claims position %d, heap disagrees", s, p)
		}
	}
	if inHeap != len(h.slots) {
		t.Fatalf("%d slots claim membership, heap holds %d", inHeap, len(h.slots))
	}
}

// FuzzEventHeap drives the cluster event heap through arbitrary
// inject/advance/crash sequences against the linear-scan reference the
// heap replaced: after every operation the heap's minimum must be the
// scan's pick — deterministic tie-break included — and draining at the
// end must visit every pending instant in (time, slot) order without
// skipping one.
func FuzzEventHeap(f *testing.F) {
	// Seeds: tie pile-ups, interleaved removes, re-keys of the minimum,
	// and a single-slot degenerate heap.
	f.Add([]byte{4, 0, 0, 5, 1, 0, 5, 2, 0, 5, 3, 0, 5})
	f.Add([]byte{4, 0, 0, 9, 1, 0, 3, 0, 1, 0, 2, 0, 7, 1, 1, 0})
	f.Add([]byte{8, 5, 0, 200, 5, 0, 1, 5, 1, 0, 5, 0, 200})
	f.Add([]byte{1, 0, 0, 0, 0, 1, 0, 0, 0, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0]%8)
		h := newEventHeap(n)
		ref := &refEventModel{ok: make([]bool, n), at: make([]time.Duration, n)}
		for i := 3; i < len(data); i += 3 {
			slot := int(data[i-2]) % n
			op := data[i-1] % 4
			// A tiny time domain maximizes equal-key collisions, the
			// regime where the tie-break matters.
			tm := time.Duration(data[i] % 16)
			if op == 3 { // crash/drain: the slot has no pending event
				h.set(slot, 0, false)
				ref.ok[slot] = false
			} else { // inject/advance: (re-)key the slot
				h.set(slot, tm, true)
				ref.ok[slot], ref.at[slot] = true, tm
			}
			checkHeapInvariants(t, h)
			ws, wt, wok := ref.min()
			gs, gt, gok := h.min()
			if gok != wok || (wok && (gs != ws || gt != wt)) {
				t.Fatalf("min = (%d, %v, %v), reference scan = (%d, %v, %v)",
					gs, gt, gok, ws, wt, wok)
			}
		}
		// Drain: the heap must emit every pending instant in
		// nondecreasing (time, slot) order, matching the scan step for
		// step until both are empty.
		var lastT time.Duration = -1
		lastS := -1
		for h.len() > 0 {
			ws, wt, _ := ref.min()
			gs, gt, _ := h.min()
			if gs != ws || gt != wt {
				t.Fatalf("drain min = (%d, %v), reference = (%d, %v)", gs, gt, ws, wt)
			}
			if gt < lastT || (gt == lastT && gs <= lastS) {
				t.Fatalf("drain emitted (%d, %v) after (%d, %v)", gs, gt, lastS, lastT)
			}
			lastT, lastS = gt, gs
			h.set(gs, 0, false)
			ref.ok[gs] = false
			checkHeapInvariants(t, h)
		}
		if _, _, ok := ref.min(); ok {
			t.Fatal("heap drained while the reference still holds events")
		}
	})
}
