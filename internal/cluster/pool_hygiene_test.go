package cluster

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/sched"
)

// TestPooledRunsByteIdentical is the pooled-object hygiene pin: the same
// seeded configuration run twice in one process must produce byte-
// identical results. The first run populates the process-wide task pool,
// so the second run executes almost entirely on recycled Task structs —
// any state that leaks through the pool (a field releaseTask forgot to
// zero, a scheduler retaining a completed task's pointer into its next
// decision) shows up as divergence here. The config deliberately stacks
// every recycling-hostile subsystem: bounded capture (the only mode that
// releases tasks), migration (tasks change engines mid-flight), churn
// (crash/redistribute paths), and PREMA (the scheduler whose token state
// is keyed off task identity). CI runs this under -race, which covers
// the concurrent half of the hygiene claim.
func TestPooledRunsByteIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		reqs, est, lut := randomStream(seed, 120)
		load := SparsityAwareLoad(lut, est)
		curve := SparsityAwareCurve(lut, est)
		plan, err := GenChurn(4, time.Second, 100*time.Millisecond, 20*time.Millisecond, seed)
		if err != nil {
			t.Fatal(err)
		}
		run := func() Result {
			res, err := Run(func(int) sched.Scheduler { return sched.NewPREMA(est) }, reqs, Config{
				Engines:           4,
				Dispatch:          NewLeastLoad("load", load).WithCurve(curve),
				SignalInterval:    2 * time.Millisecond,
				Rebalance:         Steal{Load: load, Curve: curve},
				RebalanceInterval: time.Millisecond,
				MigrationCost:     200 * time.Microsecond,
				Churn:             &plan,
				RetryMax:          3,
				Sched: sched.Options{
					BoundedCapture: true,
					ScalablePick:   true,
					Exemplars:      8,
					ExemplarSeed:   1,
				},
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}
		first, second := run(), run()
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("seed %d: pooled rerun diverges from first run:\n%+v\nvs\n%+v",
				seed, first, second)
		}
	}
}
