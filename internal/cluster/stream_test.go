package cluster

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/stats"
	"sparsedysta/internal/workload"
)

// sortedCopy returns the stream in arrival order without mutating the
// caller's slice (RunStream consumes a pre-sorted source).
func sortedCopy(reqs []*workload.Request) []*workload.Request {
	s := append([]*workload.Request(nil), reqs...)
	workload.SortByArrival(s)
	return s
}

// TestClusterRunStreamMatchesRun: feeding the cluster one request at a
// time through RunStream is byte-identical to the materialized Run — per
// engine, per task and on the timeline — for every scheduler and
// dispatcher, across plain, stale-signal, migrating and churning
// configurations. This is the tentpole equivalence anchor: the streaming
// path changes memory behavior, never the schedule.
func TestClusterRunStreamMatchesRun(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		horizon := reqs[len(reqs)-1].Arrival * 2
		plan, err := GenChurn(3, horizon, horizon/6, horizon/12, 100+seed)
		if err != nil {
			t.Fatal(err)
		}
		load := SparsityAwareLoad(lut, est)
		for _, spec := range schedSpecs(est, lut) {
			for _, d := range dispatchers(est, lut) {
				for name, mut := range map[string]func(*Config){
					"plain": func(*Config) {},
					"stale": func(c *Config) { c.SignalInterval = 3 * time.Millisecond },
					"stealing": func(c *Config) {
						c.Rebalance = Steal{Load: load}
						c.RebalanceInterval = 2 * time.Millisecond
						c.MigrationCost = time.Millisecond
					},
					"churning": func(c *Config) {
						c.Churn = &plan
						c.RetryMax = 2
						c.SignalInterval = 2 * time.Millisecond
					},
				} {
					cfg := Config{Engines: 3, Dispatch: d,
						Sched: sched.Options{RecordTimeline: true, RecordTasks: true}}
					mut(&cfg)
					want, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s (seed %d): %v", spec.name, d.Name(), name, seed, err)
					}
					got, err := RunStream(func(int) sched.Scheduler { return spec.mk() },
						sched.NewSliceSource(sortedCopy(reqs)), cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s (seed %d): %v", spec.name, d.Name(), name, seed, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s/%s (seed %d): streamed cluster diverges from materialized:\n%+v\nvs\n%+v",
							spec.name, d.Name(), name, seed, got, want)
					}
				}
			}
		}
	}
}

// TestClusterRunStreamRejectsUnsorted: a source that yields arrivals out
// of order must fail the run instead of silently rewriting history.
func TestClusterRunStreamRejectsUnsorted(t *testing.T) {
	reqs, _, _ := randomStream(3, 10)
	reqs[0], reqs[len(reqs)-1] = reqs[len(reqs)-1], reqs[0] // break the order
	_, err := RunStream(func(int) sched.Scheduler { return sched.NewFCFS() },
		sched.NewSliceSource(reqs), Config{Engines: 2})
	if err == nil {
		t.Fatal("unsorted stream accepted")
	}
}

// closeEnough compares a bounded-capture metric against its full-capture
// reference under a relative tolerance covering summation-order float
// rounding (bounded aggregates accumulate in completion order,
// aggregate() in task-ID order).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestClusterBoundedCaptureCloseToFull: the bounded cluster aggregates
// must reproduce the full-capture metrics — exactly for every counter,
// and up to summation-order float rounding for the means — while
// recording no per-request structures. Migration win/loss counters are
// integers resolved per completion and must match exactly.
func TestClusterBoundedCaptureCloseToFull(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		reqs, est, lut := randomStream(seed, 80)
		load := SparsityAwareLoad(lut, est)
		for _, spec := range schedSpecs(est, lut) {
			for name, mut := range map[string]func(*Config){
				"plain": func(*Config) {},
				"stealing": func(c *Config) {
					c.Rebalance = Steal{Load: load}
					c.RebalanceInterval = 2 * time.Millisecond
					c.MigrationCost = time.Millisecond
				},
			} {
				full := Config{Engines: 3, Dispatch: NewJSQ(),
					Sched: sched.Options{RecordTasks: true}}
				mut(&full)
				bounded := full
				bounded.Sched = sched.Options{BoundedCapture: true, Exemplars: 16, ExemplarSeed: 5}
				mut(&bounded)
				want, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, full)
				if err != nil {
					t.Fatalf("%s/%s full (seed %d): %v", spec.name, name, seed, err)
				}
				got, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, bounded)
				if err != nil {
					t.Fatalf("%s/%s bounded (seed %d): %v", spec.name, name, seed, err)
				}
				label := spec.name + "/" + name
				if got.Requests != want.Requests || got.Violations != want.Violations ||
					got.Rejected != want.Rejected || got.Preemptions != want.Preemptions {
					t.Fatalf("%s (seed %d): counters diverge: %+v vs %+v", label, seed, got.Result, want.Result)
				}
				if got.Migrations != want.Migrations ||
					got.MigrationWins != want.MigrationWins ||
					got.MigrationLosses != want.MigrationLosses {
					t.Fatalf("%s (seed %d): migration accounting diverges (%d %d/%d vs %d %d/%d)",
						label, seed, got.Migrations, got.MigrationWins, got.MigrationLosses,
						want.Migrations, want.MigrationWins, want.MigrationLosses)
				}
				if got.Makespan != want.Makespan {
					t.Fatalf("%s (seed %d): makespan %v vs %v", label, seed, got.Makespan, want.Makespan)
				}
				if !closeEnough(got.ANTT, want.ANTT) ||
					!closeEnough(got.ViolationRate, want.ViolationRate) ||
					!closeEnough(got.Throughput, want.Throughput) ||
					!closeEnough(got.Goodput, want.Goodput) {
					t.Fatalf("%s (seed %d): rates diverge beyond rounding:\n%+v\nvs\n%+v",
						label, seed, got.Result, want.Result)
				}
				if d := got.MeanLatency - want.MeanLatency; d < -time.Microsecond || d > time.Microsecond {
					t.Fatalf("%s (seed %d): mean latency %v vs %v", label, seed, got.MeanLatency, want.MeanLatency)
				}
				for model, wm := range want.PerModel {
					gm, ok := got.PerModel[model]
					if !ok || gm.Requests != wm.Requests ||
						!closeEnough(gm.ViolationRate, wm.ViolationRate) ||
						!closeEnough(gm.ANTT, wm.ANTT) {
						t.Fatalf("%s (seed %d): per-model %q diverges: %+v vs %+v", label, seed, model, gm, wm)
					}
				}
				if got.Tasks != nil || got.Timeline != nil {
					t.Fatalf("%s (seed %d): bounded capture retained per-request structures", label, seed)
				}
				if len(got.Exemplars) == 0 || len(got.Exemplars) > 16 {
					t.Fatalf("%s (seed %d): exemplar reservoir has %d entries", label, seed, len(got.Exemplars))
				}
			}
		}
	}
}

// exactQuantile is the nearest-rank order statistic the histogram's
// Quantile approximates: the smallest value with at least ceil(p/100*n)
// observations at or below it.
func exactQuantile(lat []time.Duration, p float64) time.Duration {
	rank := int(math.Ceil(p / 100 * float64(len(lat))))
	if rank < 1 {
		rank = 1
	}
	return lat[rank-1]
}

// TestBoundedPercentilesWithinBucket is the streaming-percentile property
// test: across schedulers, dispatchers and seeds, every bounded-capture
// percentile must sit at or above the exact sorted order statistic of the
// same run's latencies, within one histogram bucket width (~3%). A 10k-
// request run checks the bound holds at depth, not just on toy streams.
func TestBoundedPercentilesWithinBucket(t *testing.T) {
	check := func(label string, got sched.Result, tasks []sched.TaskOutcome) {
		t.Helper()
		lat := make([]time.Duration, len(tasks))
		for i, o := range tasks {
			lat[i] = o.Completion - o.Arrival
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var h stats.DurationHist
		for p, est := range map[float64]time.Duration{
			50: got.P50Latency, 95: got.P95Latency, 99: got.P99Latency,
		} {
			exact := exactQuantile(lat, p)
			if est < exact {
				t.Errorf("%s: P%.0f %v below the exact order statistic %v", label, p, est, exact)
			}
			if width := h.WidthAt(exact); est-exact > width {
				t.Errorf("%s: P%.0f %v is more than one bucket width (%v) above the exact %v",
					label, p, est, width, exact)
			}
		}
	}
	for seed := uint64(1); seed <= 5; seed++ {
		reqs, est, lut := randomStream(seed, 120)
		for _, spec := range schedSpecs(est, lut) {
			for _, d := range dispatchers(est, lut) {
				full := Config{Engines: 3, Dispatch: d, Sched: sched.Options{RecordTasks: true}}
				want, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, full)
				if err != nil {
					t.Fatalf("%s/%s (seed %d): %v", spec.name, d.Name(), seed, err)
				}
				bounded := full
				bounded.Sched = sched.Options{BoundedCapture: true}
				got, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, bounded)
				if err != nil {
					t.Fatalf("%s/%s (seed %d): %v", spec.name, d.Name(), seed, err)
				}
				check(spec.name+"/"+d.Name(), got.Result, want.Tasks)
			}
		}
	}
	// Depth: one 10k-request streamed run against its materialized
	// full-capture twin.
	reqs, est, lut := randomStream(99, 10000)
	full := Config{Engines: 4, Dispatch: NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est)),
		Sched: sched.Options{RecordTasks: true}}
	want, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs, full)
	if err != nil {
		t.Fatal(err)
	}
	bounded := full
	bounded.Dispatch = NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est))
	bounded.Sched = sched.Options{BoundedCapture: true}
	got, err := RunStream(func(int) sched.Scheduler { return sched.NewSJF(est) },
		sched.NewSliceSource(sortedCopy(reqs)), bounded)
	if err != nil {
		t.Fatal(err)
	}
	check("SJF/sparse-load/10k", got.Result, want.Tasks)
}
