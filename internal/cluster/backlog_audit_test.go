package cluster

import (
	"fmt"
	"testing"
	"time"

	"sparsedysta/internal/sched"
)

// This file audits the incremental backlog invariant end to end: at every
// dispatch instant of a real cluster run — with migration, churn,
// autoscaling and streaming bounded capture all pulling tasks through
// Extract/Adopt/Crash/recycle — each engine's O(1) Backlog() sum must
// equal the O(n) EstimatedBacklog scan bit for bit. The sched package
// pins the per-mutation accounting; this file pins its composition under
// every subsystem that mutates queues from outside the engine.

// backlogAuditor returns a Config.debugBacklogAudit hook asserting the
// invariant, counting calls so tests can prove the audit actually ran.
func backlogAuditor(calls *int) func([]*sched.Engine, func(*sched.Task) time.Duration) error {
	return func(engines []*sched.Engine, load func(*sched.Task) time.Duration) error {
		*calls++
		if load == nil {
			return nil
		}
		for i, e := range engines {
			if !e.BacklogBound() {
				return fmt.Errorf("engine %d not bound to the run's estimator", i)
			}
			if got, want := e.Backlog(), e.EstimatedBacklog(load); got != want {
				return fmt.Errorf("engine %d: incremental backlog %v != scan %v", i, got, want)
			}
		}
		return nil
	}
}

// TestClusterBacklogInvariant runs the audited configurations. Each cell
// uses the shared load estimate both bare and in curve form, so the audit
// covers the per-event estimator path and the curve-indexed path alike.
func TestClusterBacklogInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		reqs, est, lut := randomStream(seed, 100)
		load := SparsityAwareLoad(lut, est)
		curve := SparsityAwareCurve(lut, est)
		plan, err := GenChurn(4, time.Second, 100*time.Millisecond, 20*time.Millisecond, seed)
		if err != nil {
			t.Fatal(err)
		}
		cells := []struct {
			name string
			cfg  Config
		}{
			{"migration", Config{
				Engines:           4,
				SignalInterval:    2 * time.Millisecond,
				Rebalance:         Steal{Load: load, Curve: curve},
				RebalanceInterval: 500 * time.Microsecond,
				MigrationCost:     200 * time.Microsecond,
			}},
			{"churn", Config{
				Engines:        4,
				SignalInterval: 2 * time.Millisecond,
				Churn:          &plan,
				RetryMax:       3,
			}},
			{"autoscale", Config{
				Engines:        4,
				SignalInterval: time.Millisecond,
				Autoscale: &Autoscaler{
					Min: 1, Max: 4,
					Up: 5 * time.Millisecond, Down: time.Millisecond,
					Cooldown: 5 * time.Millisecond,
					Load:     load, Curve: curve,
				},
			}},
		}
		for _, cell := range cells {
			for _, spec := range schedSpecs(est, lut) {
				cfg := cell.cfg
				cfg.Dispatch = NewLeastLoad("load", load).WithCurve(curve)
				calls := 0
				cfg.debugBacklogAudit = backlogAuditor(&calls)
				if _, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, cfg); err != nil {
					t.Fatalf("%s/%s (seed %d): %v", cell.name, spec.name, seed, err)
				}
				if calls < len(reqs) {
					t.Fatalf("%s/%s (seed %d): audit ran %d times for %d arrivals",
						cell.name, spec.name, seed, calls, len(reqs))
				}
			}
		}
	}
}

// TestStreamingBacklogInvariant audits the streaming + bounded-capture
// path: completed tasks are recycled through the pool mid-run, so the
// audit doubles as proof that pooled reuse never corrupts the accounting
// of tasks still in flight.
func TestStreamingBacklogInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		reqs, est, lut := randomStream(seed, 150)
		load := SparsityAwareLoad(lut, est)
		curve := SparsityAwareCurve(lut, est)
		calls := 0
		cfg := Config{
			Engines:           4,
			Dispatch:          NewLeastLoad("load", load).WithCurve(curve),
			SignalInterval:    2 * time.Millisecond,
			Rebalance:         Steal{Load: load, Curve: curve},
			RebalanceInterval: 500 * time.Microsecond,
			MigrationCost:     200 * time.Microsecond,
			Sched:             sched.Options{BoundedCapture: true, ScalablePick: true},
		}
		cfg.debugBacklogAudit = backlogAuditor(&calls)
		src := sched.NewSliceSource(sortedCopy(reqs))
		res, err := RunStream(func(int) sched.Scheduler { return sched.NewPREMA(est) }, src, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Requests != len(reqs) {
			t.Fatalf("seed %d: %d of %d requests completed", seed, res.Requests, len(reqs))
		}
		if calls < len(reqs) {
			t.Fatalf("seed %d: audit ran %d times for %d arrivals", seed, calls, len(reqs))
		}
	}
}
