package cluster

import (
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// flatLoad is a trivial load estimate for crafted-stream tests: every
// outstanding task counts a fixed amount of predicted work, so an
// engine's Backlog signal is just its queue length times the unit.
func flatLoad(unit time.Duration) func(*sched.Task) time.Duration {
	return func(*sched.Task) time.Duration { return unit }
}

// burstyStream builds a deterministic overload-then-idle stream: `heavy`
// requests arriving every heavyGap (each carrying layers*layer of work),
// followed by `light` requests arriving every lightGap. Generous SLOs
// keep violations out of the picture — these tests are about lifecycle
// mechanics, not scheduling quality.
func burstyStream(heavy, light int, heavyGap, lightGap, layer time.Duration, layers int) []*workload.Request {
	base := uniformStream(heavy+light, heavyGap, layer, layers, time.Hour)
	at := time.Duration(heavy) * heavyGap
	for i := heavy; i < len(base); i++ {
		at += lightGap
		base[i].Arrival = at
	}
	return base
}

// fcfs builds the scheduler factory the autoscale tests share.
func fcfs(int) sched.Scheduler { return sched.NewFCFS() }

// TestAutoscaleOffMatchesFixed is the neutral-knob anchor: an autoscaler
// pinned to Min == Max == N (which can never act) must reproduce the
// fixed-size run's scheduling results exactly — same per-task outcomes,
// same per-engine results, no redirects — for every scheduler and
// dispatcher. Only the capacity accounting may differ (the lifecycle
// path bills in-service spans measured from t=0 rather than N x
// makespan), so EngineSeconds and the utilization denominators are
// compared structurally, not byte-for-byte.
func TestAutoscaleOffMatchesFixed(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		for _, spec := range schedSpecs(est, lut) {
			for _, d := range dispatchers(est, lut) {
				base := Config{Engines: 3, Dispatch: d}
				want, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, base)
				if err != nil {
					t.Fatal(err)
				}
				pinned := base
				pinned.Autoscale = &Autoscaler{
					Min: 3, Max: 3, Up: time.Hour, Load: SparsityAwareLoad(lut, est)}
				got, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, pinned)
				if err != nil {
					t.Fatal(err)
				}
				label := spec.name + "/" + d.Name()
				if got.ScaleUps != 0 || got.ScaleDowns != 0 {
					t.Fatalf("%s: pinned autoscaler acted (%d up, %d down)",
						label, got.ScaleUps, got.ScaleDowns)
				}
				if got.Redirects != 0 {
					t.Fatalf("%s: pinned autoscaler caused %d redirects", label, got.Redirects)
				}
				// Normalize the capacity fields, then demand bit-identity.
				g, w := got, want
				g.Result.EngineSeconds, w.Result.EngineSeconds = 0, 0
				g.Utilization, w.Utilization = 0, 0
				g.Imbalance, w.Imbalance = 0, 0
				g.ScaleUps, g.ScaleDowns = 0, 0
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("%s seed %d: pinned autoscaler changed scheduling results", label, seed)
				}
			}
		}
	}
}

// TestAutoscaleScalesUpAndDown drives the policy through a full cycle:
// an overload phase must grow the live set toward Max, the idle tail
// must shrink it back, and the billed capacity must come in under the
// fixed-Max bill.
func TestAutoscaleScalesUpAndDown(t *testing.T) {
	// 40 requests of 4ms work arriving every 1ms: one engine is 4x
	// oversubscribed, so backlog explodes. Then 30 requests at a lazy
	// 50ms spacing that a single engine serves with ease.
	reqs := burstyStream(40, 30, time.Millisecond, 50*time.Millisecond, time.Millisecond, 4)
	unit := 4 * time.Millisecond
	cfg := Config{
		Engines:  4,
		Dispatch: NewJSQ(),
		Autoscale: &Autoscaler{
			Min:  1,
			Max:  4,
			Up:   2 * unit,        // mean queue > 2 requests per live engine
			Down: unit / 2,        // mean queue < half a request
			Load: flatLoad(unit)}, // backlog == queue length * unit
	}
	res, err := Run(fcfs, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accounted(t, "autoscale cycle", res, len(reqs))
	if res.ScaleUps < 2 {
		t.Errorf("overload phase scaled up only %d times", res.ScaleUps)
	}
	if res.ScaleDowns < 1 {
		t.Errorf("idle tail never scaled down (%d ups, %d downs)", res.ScaleUps, res.ScaleDowns)
	}
	fixedMax := 4 * res.Makespan.Seconds()
	if res.EngineSeconds >= fixedMax {
		t.Errorf("autoscaled run billed %.4f engine-seconds, fixed-Max would bill %.4f",
			res.EngineSeconds, fixedMax)
	}
	if res.EngineSeconds <= res.Makespan.Seconds() {
		t.Errorf("billed %.4f engine-seconds, no more than a single always-on engine (%.4f) despite scale-ups",
			res.EngineSeconds, res.Makespan.Seconds())
	}
}

// TestAutoscaleRespectsBounds pins Min and Max: slots beyond Max never
// serve a request, and the policy never drains below Min even through a
// long idle tail.
func TestAutoscaleRespectsBounds(t *testing.T) {
	reqs := burstyStream(40, 30, time.Millisecond, 50*time.Millisecond, time.Millisecond, 4)
	unit := 4 * time.Millisecond
	cfg := Config{
		Engines:  4,
		Dispatch: NewJSQ(),
		Autoscale: &Autoscaler{
			Min: 2, Max: 3, Up: 2 * unit, Down: unit / 2, Load: flatLoad(unit)},
	}
	res, err := Run(fcfs, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accounted(t, "bounds", res, len(reqs))
	if res.PerEngine[3].Requests != 0 {
		t.Errorf("slot beyond Max served %d requests", res.PerEngine[3].Requests)
	}
	// Net actions can never take the live set below Min: with Start ==
	// Min == 2 the downs cannot exceed the ups.
	if res.ScaleDowns > res.ScaleUps {
		t.Errorf("%d downs exceed %d ups from a Start == Min cluster", res.ScaleDowns, res.ScaleUps)
	}
	// The overload phase must have used the allowed headroom.
	if res.ScaleUps < 1 {
		t.Error("never scaled up under 4x overload")
	}
}

// TestAutoscaleCooldown pins hysteresis: a cooldown longer than the run
// admits at most one action total, however hard the load oscillates.
func TestAutoscaleCooldown(t *testing.T) {
	reqs := burstyStream(40, 30, time.Millisecond, 50*time.Millisecond, time.Millisecond, 4)
	unit := 4 * time.Millisecond
	cfg := Config{
		Engines:  4,
		Dispatch: NewJSQ(),
		Autoscale: &Autoscaler{
			Min: 1, Max: 4, Up: 2 * unit, Down: unit / 2,
			Cooldown: time.Hour, Load: flatLoad(unit)},
	}
	res, err := Run(fcfs, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleUps+res.ScaleDowns > 1 {
		t.Errorf("cooldown of an hour admitted %d actions", res.ScaleUps+res.ScaleDowns)
	}
}

// TestAutoscaleLiveSetMetrics is the regression test for the live-set
// metric denominators: two permanently parked slots must not dilute
// Utilization or Imbalance. With the work split evenly over the two live
// engines, Imbalance must sit at ~1.0 (the all-slots formula would
// report ~2.0: max/mean with two zero-busy slots in the mean) and
// Utilization must equal total busy time over the billed engine-seconds.
func TestAutoscaleLiveSetMetrics(t *testing.T) {
	const n = 40
	work := 4 * time.Millisecond // per request: 4 layers x 1ms
	reqs := uniformStream(n, 3*time.Millisecond, time.Millisecond, 4, time.Hour)
	cfg := Config{
		Engines:  4,
		Dispatch: NewRoundRobin(),
		Autoscale: &Autoscaler{
			Min: 2, Max: 2, Up: time.Hour, Load: flatLoad(work)},
	}
	res, err := Run(fcfs, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerEngine[2].Requests != 0 || res.PerEngine[3].Requests != 0 {
		t.Fatalf("parked slots served requests: %d, %d",
			res.PerEngine[2].Requests, res.PerEngine[3].Requests)
	}
	if res.Imbalance > 1.2 {
		t.Errorf("Imbalance %.3f over the live set, want ~1.0 (parked slots diluting?)", res.Imbalance)
	}
	totalBusy := (time.Duration(n) * work).Seconds()
	wantUtil := totalBusy / res.EngineSeconds
	if diff := res.Utilization - wantUtil; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Utilization %.6f, want busy/EngineSeconds = %.6f", res.Utilization, wantUtil)
	}
	// Two live engines billed from t=0 to the end: EngineSeconds must be
	// ~2x the run span, nowhere near the 4x of the all-slots bill.
	if res.EngineSeconds > 2.5*res.Makespan.Seconds() {
		t.Errorf("EngineSeconds %.4f bills parked slots (makespan %.4f)",
			res.EngineSeconds, res.Makespan.Seconds())
	}
}

// TestAutoscaleDeterminism: identical configs replay bit-identically,
// including the scale action sequence.
func TestAutoscaleDeterminism(t *testing.T) {
	reqs := burstyStream(40, 30, time.Millisecond, 50*time.Millisecond, time.Millisecond, 4)
	unit := 4 * time.Millisecond
	mk := func() Config {
		return Config{
			Engines:        4,
			Dispatch:       NewJSQ(),
			SignalInterval: 5 * time.Millisecond,
			Autoscale: &Autoscaler{
				Min: 1, Max: 4, Up: 2 * unit, Down: unit / 2,
				Cooldown: 10 * time.Millisecond, Load: flatLoad(unit)},
		}
	}
	a, err := Run(fcfs, reqs, mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fcfs, reqs, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical autoscaled runs diverged")
	}
	if a.ScaleUps == 0 {
		t.Fatal("fixture never scaled; determinism test is vacuous")
	}
}

// TestAutoscaleWithChurn composes the autoscaler with a fail/recover
// plan: the run must stay conservation-clean and deterministic while
// both subsystems reshape the live set.
func TestAutoscaleWithChurn(t *testing.T) {
	reqs := burstyStream(40, 30, time.Millisecond, 50*time.Millisecond, time.Millisecond, 4)
	unit := 4 * time.Millisecond
	plan, err := GenChurn(4, 2*time.Second, 60*time.Millisecond, 20*time.Millisecond, 17)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		return Config{
			Engines:        4,
			Dispatch:       NewJSQ(),
			SignalInterval: 2 * time.Millisecond,
			Churn:          &plan,
			Autoscale: &Autoscaler{
				Min: 1, Max: 4, Up: 2 * unit, Down: unit / 2,
				Cooldown: 5 * time.Millisecond, Load: flatLoad(unit)},
		}
	}
	a, err := Run(fcfs, reqs, mk())
	if err != nil {
		t.Fatal(err)
	}
	accounted(t, "autoscale+churn", a, len(reqs))
	b, err := Run(fcfs, reqs, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("autoscale+churn runs diverged")
	}
	if a.ChurnEvents == 0 {
		t.Fatal("churn plan never fired; composition test is vacuous")
	}
}

// TestAutoscaleValidation maps malformed policies to errors before the
// run starts.
func TestAutoscaleValidation(t *testing.T) {
	reqs := uniformStream(5, time.Millisecond, time.Millisecond, 2, time.Hour)
	bad := map[string]*Autoscaler{
		"min zero":         {Min: 0, Max: 2, Up: time.Millisecond},
		"max below min":    {Min: 3, Max: 2, Up: time.Millisecond},
		"max over cluster": {Min: 1, Max: 5, Up: time.Millisecond},
		"start below min":  {Min: 2, Max: 4, Start: 1, Up: time.Millisecond},
		"start above max":  {Min: 1, Max: 2, Start: 3, Up: time.Millisecond},
		"no up threshold":  {Min: 1, Max: 2},
		"down above up":    {Min: 1, Max: 2, Up: time.Millisecond, Down: time.Second},
		"idlefrac over 1":  {Min: 1, Max: 2, Up: time.Millisecond, IdleFrac: 1.5},
		"negative cool":    {Min: 1, Max: 2, Up: time.Millisecond, Cooldown: -time.Second},
	}
	for name, pol := range bad {
		cfg := Config{Engines: 4, Autoscale: pol}
		if _, err := Run(fcfs, reqs, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
