package cluster

import (
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/stats"
)

// boundedAgg is the cluster-wide analogue of the engine's bounded-capture
// aggregates: constant-size accumulators fed one TaskOutcome at a time by
// the engines' Observer hooks, replacing the union-of-Tasks pass that
// aggregate() runs in full-capture mode. Observers fire inside Step at
// each completion instant, and the cluster commits engine events in one
// global deterministic order, so the float sums below accumulate in
// cluster-wide completion order — deterministic across runs and workers,
// but a different summation order from aggregate()'s task-ID order, so
// bounded cluster means match full-capture ones only up to float
// rounding (the equivalence tests compare with a tolerance, not
// bit-identity; single-engine runs have no union to re-order and stay
// exact). Completions on incarnations that later crash are covered
// automatically: their observers fired before the crash sealed them.
type boundedAgg struct {
	n            int
	turnSum      float64
	latSum       float64
	violations   int
	firstArrival time.Duration // earliest arrival among completed requests
	haveFirst    bool
	lastDone     time.Duration
	latHist      *stats.DurationHist
	perModel     map[string]sched.ModelMetrics
	exemplars    *stats.Reservoir[sched.TaskOutcome]

	// movedFn, when bound to Rebalancer.Moved, resolves migration
	// win/loss at each completion instant — a moved request migrates
	// strictly before it first runs, so its fate is settled by the time
	// the observer sees it. Full-capture mode computes the same split
	// post-hoc from Result.Tasks, which bounded mode never records.
	movedFn func(id int) bool
	wins    int
	losses  int
}

// newBoundedAgg sizes the accumulators; k == 0 disables exemplars.
func newBoundedAgg(k int, seed uint64) *boundedAgg {
	a := &boundedAgg{
		latHist:  &stats.DurationHist{},
		perModel: map[string]sched.ModelMetrics{},
	}
	if k > 0 {
		a.exemplars = stats.NewReservoir[sched.TaskOutcome](k, seed)
	}
	return a
}

// note folds one completion into the aggregates.
func (a *boundedAgg) note(o sched.TaskOutcome) {
	a.n++
	ntt := o.NTT
	lat := o.Completion - o.Arrival
	a.turnSum += ntt
	a.latSum += float64(lat)
	a.latHist.Add(lat)
	if o.Violated {
		a.violations++
	}
	if !a.haveFirst || o.Arrival < a.firstArrival {
		a.haveFirst, a.firstArrival = true, o.Arrival
	}
	if o.Completion > a.lastDone {
		a.lastDone = o.Completion
	}
	m := a.perModel[o.Model]
	m.Requests++
	m.ANTT += ntt
	if o.Violated {
		m.ViolationRate++
	}
	a.perModel[o.Model] = m
	if a.exemplars != nil {
		a.exemplars.Add(o)
	}
	if a.movedFn != nil && a.movedFn(o.ID) {
		if o.Violated {
			a.losses++
		} else {
			a.wins++
		}
	}
}

// finish assembles the cluster-wide sched.Result from the aggregates,
// with aggregate()'s metric definitions: the makespan spans the earliest
// completed arrival to the last completion, and the latency percentiles
// come from the log-bucketed histogram (nearest-rank bucket upper bound,
// upward bias at most one bucket width, ~3%).
func (a *boundedAgg) finish(scheduler string) sched.Result {
	res := sched.Result{Scheduler: scheduler}
	if a.n == 0 {
		return res
	}
	n := float64(a.n)
	res.Requests = a.n
	res.Violations = a.violations
	res.ANTT = a.turnSum / n
	res.ViolationRate = float64(a.violations) / n
	res.MeanLatency = time.Duration(a.latSum / n)
	res.P50Latency = a.latHist.Quantile(50)
	res.P95Latency = a.latHist.Quantile(95)
	res.P99Latency = a.latHist.Quantile(99)
	res.Makespan = a.lastDone - a.firstArrival
	if res.Makespan > 0 {
		res.Throughput = n / res.Makespan.Seconds()
		res.Goodput = float64(a.n-a.violations) / res.Makespan.Seconds()
	}
	res.PerModel = map[string]sched.ModelMetrics{}
	for name, m := range a.perModel {
		m.ANTT /= float64(m.Requests)
		m.ViolationRate /= float64(m.Requests)
		res.PerModel[name] = m
	}
	if a.exemplars != nil {
		res.Exemplars = append([]sched.TaskOutcome(nil), a.exemplars.Items()...)
	}
	return res
}
