package cluster

import (
	"fmt"
	"time"

	"sparsedysta/internal/sched"
)

// This file is the SLO-driven autoscaler: a policy that scales the live
// engine set between Min and Max by actuating the Drain/Join lifecycle
// transitions the churn subsystem already owns. The design keeps the
// staleness discipline the rest of the dispatch layer lives under:
//
//   - The policy is EVALUATED only at signal-refresh instants, reading
//     the same (stale) SignalBoard snapshots dispatchers read — never
//     live engine state. An autoscaler with a 100ms signal interval is
//     exactly as blind as its router.
//   - ACTUATION goes through the fault injector's Drain/Join
//     transitions, so a scaled-down engine finishes its queue gracefully
//     and a scaled-up one re-enters the rotation through the same
//     liveness signals a recovered engine does. The action itself
//     propagates to dispatch with signal staleness: the arrival that
//     triggered a scale-down may still be routed to the drained engine
//     and bounce off it as a redirect, exactly like a churn corpse.
//   - HYSTERESIS — a cooldown between actions plus a guard band between
//     the scale-up and scale-down thresholds — prevents flapping, and
//     one action per evaluation bounds the scaling rate to one engine
//     per refresh.
//
// A nil Config.Autoscale disables all of this bit-identically: the run
// never creates a scaler, and without a churn plan never creates the
// injector either.

// Autoscaler is the SLO-driven engine-count policy. The decision signal
// is the mean predicted drain time across live engines — each engine's
// capacity-normalized backlog under the run's load estimator, i.e. the
// queueing delay a new arrival is predicted to face — plus the fraction
// of live engines that are idle. High predicted delay means SLOs are
// about to be violated (scale up); low delay with mostly-idle engines
// means capacity is being wasted (scale down).
type Autoscaler struct {
	// Min and Max bound the live engine count. Min >= 1; Max must not
	// exceed the cluster size. Slots above the initial live set start
	// drained and join as load demands.
	Min, Max int
	// Start is the initial live engine count; 0 means Min.
	Start int
	// Up scales up one engine when the mean live predicted drain time
	// exceeds it. Typically a fraction of the workload's SLO budget.
	Up time.Duration
	// Down scales down one engine when the mean live predicted drain
	// time is below it AND at least IdleFrac of the live engines are
	// idle. Must leave a guard band: Down <= Up.
	Down time.Duration
	// IdleFrac is the fraction of live engines that must be idle
	// (Outstanding == 0 in the snapshot) before scaling down; 0 means
	// 0.5.
	IdleFrac float64
	// Cooldown is the minimum virtual time between consecutive actions.
	Cooldown time.Duration
	// Load is the per-task remaining-work estimate backing the Backlog
	// signal the policy reads. Without it (and without a load-providing
	// dispatcher) backlogs are always zero and the policy can only ever
	// scale down.
	Load func(*sched.Task) time.Duration
	// Curve is Load's optional curve form (see SparsityAwareCurve),
	// consulted when this policy is the run's load provider.
	Curve func(*sched.Task) []time.Duration
}

// LoadFunc exposes the estimate to the SignalBoard (loadProvider): an
// autoscaler needs the Backlog signal maintained even when the
// dispatcher is load-blind (e.g. round-robin).
func (a *Autoscaler) LoadFunc() func(*sched.Task) time.Duration { return a.Load }

// CurveFunc exposes the estimate's curve form (curveProvider).
func (a *Autoscaler) CurveFunc() func(*sched.Task) []time.Duration { return a.Curve }

// start resolves the initial live engine count.
func (a *Autoscaler) start() int {
	if a.Start == 0 {
		return a.Min
	}
	return a.Start
}

// validate checks the policy against the cluster size.
func (a *Autoscaler) validate(engines int) error {
	if a.Min < 1 {
		return fmt.Errorf("cluster: autoscaler Min %d < 1", a.Min)
	}
	if a.Max < a.Min {
		return fmt.Errorf("cluster: autoscaler Max %d < Min %d", a.Max, a.Min)
	}
	if a.Max > engines {
		return fmt.Errorf("cluster: autoscaler Max %d exceeds %d engines", a.Max, engines)
	}
	if a.Start != 0 && (a.Start < a.Min || a.Start > a.Max) {
		return fmt.Errorf("cluster: autoscaler Start %d outside [%d, %d]", a.Start, a.Min, a.Max)
	}
	if a.Up <= 0 {
		return fmt.Errorf("cluster: autoscaler Up threshold %v not positive", a.Up)
	}
	if a.Down < 0 || a.Down > a.Up {
		return fmt.Errorf("cluster: autoscaler thresholds inverted (Down %v, Up %v)", a.Down, a.Up)
	}
	if a.IdleFrac < 0 || a.IdleFrac > 1 {
		return fmt.Errorf("cluster: autoscaler IdleFrac %v outside [0, 1]", a.IdleFrac)
	}
	if a.Cooldown < 0 {
		return fmt.Errorf("cluster: autoscaler negative cooldown %v", a.Cooldown)
	}
	return nil
}

// scaler is the per-run runtime of an Autoscaler: which slots it has
// parked, when it last acted, and which board refresh it last evaluated.
type scaler struct {
	pol *Autoscaler
	fi  *faultInjector
	// parked marks slots this scaler drained (as opposed to churn
	// victims, which the policy never resurrects — recovery is the churn
	// plan's business).
	parked []bool
	// seen is the board refresh count already evaluated.
	seen       int
	lastAction time.Duration
	acted      bool
	ups, downs int
}

// newScaler arms the policy: slots beyond the initial live set are
// drained at t=0, before any arrival, so the run starts with start()
// engines in rotation.
func newScaler(pol *Autoscaler, fi *faultInjector) (*scaler, error) {
	n := len(fi.engines)
	s := &scaler{pol: pol, fi: fi, parked: make([]bool, n)}
	for i := pol.start(); i < n; i++ {
		if err := fi.drainNow(i, 0); err != nil {
			return nil, err
		}
		s.parked[i] = true
	}
	return s, nil
}

// evaluate runs the policy once against the just-refreshed signals. At
// most one action fires per evaluation, gated by the cooldown. Scale-up
// joins the lowest-index parked slot; scale-down drains the
// highest-index live one — a deterministic order that keeps slot 0
// always on and makes the parked set a contiguous suffix in the common
// case.
func (s *scaler) evaluate(sig []EngineSignal, now time.Duration) error {
	// Reconcile with churn first: a parked slot the plan failed and then
	// recovered is back in rotation without the scaler's involvement.
	for i := range s.parked {
		if s.parked[i] && s.fi.state[i] != stateDraining {
			s.parked[i] = false
		}
	}
	if s.acted && now-s.lastAction < s.pol.Cooldown {
		return nil
	}
	live, idle := 0, 0
	var backlog float64
	for _, g := range sig {
		if g.Down {
			continue
		}
		live++
		if g.Outstanding == 0 {
			idle++
		}
		backlog += float64(g.DrainTime())
	}
	if live == 0 {
		// The whole cluster is down (churn); there is nothing to drain
		// and joining is the recovery plan's business.
		return nil
	}
	meanDrain := time.Duration(backlog / float64(live))
	if meanDrain > s.pol.Up && live < s.pol.Max {
		for i := range s.parked {
			if s.parked[i] && s.fi.state[i] == stateDraining {
				if err := s.fi.joinNow(i, now); err != nil {
					return err
				}
				s.parked[i] = false
				s.ups++
				s.acted, s.lastAction = true, now
				return nil
			}
		}
		return nil // every parked slot was failed by churn; nothing to add
	}
	idleFrac := s.pol.IdleFrac
	if idleFrac == 0 {
		idleFrac = 0.5
	}
	if meanDrain < s.pol.Down && live > s.pol.Min && float64(idle) >= idleFrac*float64(live) {
		for i := len(s.parked) - 1; i >= 0; i-- {
			if !s.parked[i] && s.fi.state[i] == stateHealthy {
				if err := s.fi.drainNow(i, now); err != nil {
					return err
				}
				s.parked[i] = true
				s.downs++
				s.acted, s.lastAction = true, now
				return nil
			}
		}
	}
	return nil
}
