package cluster

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sparsedysta/internal/rng"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// randomStream builds a random well-formed request stream plus the
// profiling artefacts every scheduler and dispatcher needs (mirrors the
// generator of the sched package's property tests).
func randomStream(seed uint64, n int) ([]*workload.Request, *sched.Estimator, *trace.StatsSet) {
	r := rng.New(seed)
	nModels := 1 + r.Intn(3)
	store := trace.NewStore()
	keys := make([]trace.Key, nModels)
	profiles := make([][]trace.SampleTrace, nModels)
	for m := 0; m < nModels; m++ {
		keys[m] = trace.Key{Model: string(rune('a' + m)), Pattern: sparsity.Dense}
		layers := 2 + r.Intn(8)
		for p := 0; p < 3; p++ {
			tr := trace.SampleTrace{
				LayerLatency:  make([]time.Duration, layers),
				LayerSparsity: make([]float64, layers),
			}
			for l := 0; l < layers; l++ {
				tr.LayerLatency[l] = time.Duration(100+r.Intn(5000)) * time.Microsecond
				tr.LayerSparsity[l] = 0.1 + 0.8*r.Float64()
			}
			profiles[m] = append(profiles[m], tr)
		}
		store.Add(keys[m], profiles[m])
	}
	set, err := trace.NewStatsSet(store)
	if err != nil {
		panic(err)
	}
	reqs := make([]*workload.Request, n)
	var arrival time.Duration
	for i := range reqs {
		arrival += time.Duration(r.Intn(3000)) * time.Microsecond
		m := r.Intn(nModels)
		tr := profiles[m][r.Intn(len(profiles[m]))]
		reqs[i] = &workload.Request{
			ID:      i,
			Key:     keys[m],
			Trace:   tr,
			Arrival: arrival,
			SLO:     time.Duration(float64(tr.Total()) * (1 + 10*r.Float64())),
		}
	}
	return reqs, sched.NewEstimator(set), set
}

// schedSpecs returns one constructor per scheduler in the package lineup.
func schedSpecs(est *sched.Estimator, lut *trace.StatsSet) []struct {
	name string
	mk   func() sched.Scheduler
} {
	return []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"FCFS", func() sched.Scheduler { return sched.NewFCFS() }},
		{"SJF", func() sched.Scheduler { return sched.NewSJF(est) }},
		{"PREMA", func() sched.Scheduler { return sched.NewPREMA(est) }},
		{"Planaria", func() sched.Scheduler { return sched.NewPlanaria(est) }},
		{"SDRM3", func() sched.Scheduler { return sched.NewSDRM3(est) }},
		{"Oracle", func() sched.Scheduler { return sched.NewOracle(0.05) }},
	}
}

// dispatchers returns a fresh instance of every dispatch policy. The
// sparse-load policy appears twice — bare and with its curve form — so
// every suite built on this fixture exercises both the per-event
// estimator path and the curve-indexed path of the engines' incremental
// backlog accounting, which must be bit-identical.
func dispatchers(est *sched.Estimator, lut *trace.StatsSet) []Dispatcher {
	return []Dispatcher{
		NewRoundRobin(),
		NewJSQ(),
		NewLeastLoad("blind-load", BlindLoad(est)),
		NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est)),
		NewLeastLoad("sparse-load-curve", SparsityAwareLoad(lut, est)).
			WithCurve(SparsityAwareCurve(lut, est)),
	}
}

// TestSingleEngineMatchesRun: a 1-engine cluster is bit-identical to
// sched.Run — metrics, per-task outcomes and the execution timeline — for
// every scheduler under every dispatcher (with one engine, every policy
// must route everything to it).
func TestSingleEngineMatchesRun(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		reqs, est, lut := randomStream(seed, 30)
		opts := sched.Options{RecordTimeline: true, RecordTasks: true}
		for _, spec := range schedSpecs(est, lut) {
			want, err := sched.Run(spec.mk(), reqs, opts)
			if err != nil {
				t.Fatalf("%s Run (seed %d): %v", spec.name, seed, err)
			}
			for _, d := range dispatchers(est, lut) {
				got, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs,
					Config{Engines: 1, Dispatch: d, Sched: opts})
				if err != nil {
					t.Fatalf("%s/%s (seed %d): %v", spec.name, d.Name(), seed, err)
				}
				if !reflect.DeepEqual(got.Result, want) {
					t.Fatalf("%s/%s (seed %d): 1-engine cluster diverges from sched.Run:\n%+v\nvs\n%+v",
						spec.name, d.Name(), seed, got.Result, want)
				}
				if len(got.PerEngine) != 1 || !reflect.DeepEqual(got.PerEngine[0], want) {
					t.Fatalf("%s/%s (seed %d): per-engine result diverges", spec.name, d.Name(), seed)
				}
			}
		}
	}
}

// TestClusterInvariants: every request completes exactly once, aggregate
// counts match, and the health metrics stay in range, across engine
// counts, dispatchers and schedulers.
func TestClusterInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		for _, engines := range []int{1, 2, 3, 5} {
			for _, d := range dispatchers(est, lut) {
				for _, spec := range schedSpecs(est, lut) {
					res, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs,
						Config{Engines: engines, Dispatch: d})
					if err != nil {
						t.Fatalf("%s/%s/%d (seed %d): %v", spec.name, d.Name(), engines, seed, err)
					}
					if res.Requests != len(reqs) {
						t.Errorf("%s/%s/%d: %d of %d requests completed",
							spec.name, d.Name(), engines, res.Requests, len(reqs))
					}
					var perEngineTotal int
					for _, r := range res.PerEngine {
						perEngineTotal += r.Requests
					}
					if perEngineTotal != len(reqs) {
						t.Errorf("%s/%s/%d: per-engine totals %d", spec.name, d.Name(), engines, perEngineTotal)
					}
					if res.ANTT < 1 {
						t.Errorf("%s/%s/%d: ANTT %v < 1", spec.name, d.Name(), engines, res.ANTT)
					}
					if res.ViolationRate < 0 || res.ViolationRate > 1 {
						t.Errorf("%s/%s/%d: violation rate %v", spec.name, d.Name(), engines, res.ViolationRate)
					}
					if res.Utilization < 0 || res.Utilization > 1+1e-9 {
						t.Errorf("%s/%s/%d: utilization %v", spec.name, d.Name(), engines, res.Utilization)
					}
					if res.Imbalance < 1-1e-9 {
						t.Errorf("%s/%s/%d: imbalance %v < 1", spec.name, d.Name(), engines, res.Imbalance)
					}
					if res.Tasks != nil {
						t.Errorf("%s/%s/%d: Tasks recorded without RecordTasks", spec.name, d.Name(), engines)
					}
				}
			}
		}
	}
}

// TestClusterDeterministic: identical inputs give identical results.
func TestClusterDeterministic(t *testing.T) {
	reqs, est, lut := randomStream(42, 80)
	for _, mkDispatch := range []func() Dispatcher{
		func() Dispatcher { return NewRoundRobin() },
		func() Dispatcher { return NewJSQ() },
		func() Dispatcher { return NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est)) },
	} {
		run := func() Result {
			res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
				Config{Engines: 3, Dispatch: mkDispatch(), Sched: sched.Options{RecordTasks: true}})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: nondeterministic cluster results", mkDispatch().Name())
		}
	}
}

// TestThroughputScalesWithEngines: at a rate that saturates one engine,
// adding engines must raise completed-work throughput.
func TestThroughputScalesWithEngines(t *testing.T) {
	reqs, est, _ := randomStream(7, 200)
	// Compress arrivals to saturate a single engine hard.
	for _, r := range reqs {
		r.Arrival /= 20
	}
	prev := 0.0
	for _, engines := range []int{1, 2, 4} {
		res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
			Config{Engines: engines, Dispatch: NewJSQ()})
		if err != nil {
			t.Fatal(err)
		}
		if engines > 1 && res.Throughput <= prev {
			t.Errorf("throughput did not scale: %d engines %.1f inf/s, previous %.1f",
				engines, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

// TestLoadAwareBeatsRoundRobinImbalance: under a saturating stream,
// load-aware dispatch must not be more imbalanced than round-robin, and
// JSQ must spread requests across all engines.
func TestLoadAwareBeatsRoundRobinImbalance(t *testing.T) {
	reqs, est, lut := randomStream(11, 300)
	for _, r := range reqs {
		r.Arrival /= 10
	}
	run := func(d Dispatcher) Result {
		res, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
			Config{Engines: 4, Dispatch: d})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(NewRoundRobin())
	jsq := run(NewJSQ())
	load := run(NewLeastLoad("sparse-load", SparsityAwareLoad(lut, est)))
	for _, r := range jsq.PerEngine {
		if r.Requests == 0 {
			t.Error("JSQ left an engine idle under saturation")
		}
	}
	// Load-aware dispatch balances busy time at least as well as blind
	// round-robin (tolerance for the last-request boundary).
	if load.Imbalance > rr.Imbalance*1.10 {
		t.Errorf("sparse-load imbalance %.3f much worse than round-robin %.3f",
			load.Imbalance, rr.Imbalance)
	}
	if math.IsNaN(load.Utilization) || load.Utilization <= 0 {
		t.Errorf("utilization %v", load.Utilization)
	}
}

// TestDispatcherBoundsChecked: a broken dispatcher index fails the run
// instead of panicking.
func TestDispatcherBoundsChecked(t *testing.T) {
	reqs, est, _ := randomStream(3, 5)
	if _, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
		Config{Engines: 2, Dispatch: badDispatcher{}}); err == nil {
		t.Fatal("out-of-range dispatch accepted")
	}
	if _, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, nil,
		Config{Engines: 2}); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := Run(func(int) sched.Scheduler { return sched.NewSJF(est) }, reqs,
		Config{Engines: 0}); err == nil {
		t.Fatal("zero engines accepted")
	}
}

// TestImbalanceDegenerateCase: an all-idle cluster (every layer free)
// must report Imbalance 1.0 — the perfectly balanced value — not a 0 that
// would sort as "better than perfectly balanced".
func TestImbalanceDegenerateCase(t *testing.T) {
	key := trace.Key{Model: "free", Pattern: sparsity.Dense}
	tr := trace.SampleTrace{LayerLatency: []time.Duration{0, 0}, LayerSparsity: []float64{0.5, 0.5}}
	store := trace.NewStore()
	store.Add(key, []trace.SampleTrace{tr, tr})
	set, err := trace.NewStatsSet(store)
	if err != nil {
		t.Fatal(err)
	}
	est := sched.NewEstimator(set)
	reqs := make([]*workload.Request, 6)
	for i := range reqs {
		reqs[i] = &workload.Request{
			ID: i, Key: key, Trace: tr,
			Arrival: time.Duration(i) * time.Millisecond, SLO: time.Second,
		}
	}
	res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{Engines: 3, Dispatch: NewLeastLoad("blind-load", BlindLoad(est))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance != 1 {
		t.Errorf("all-idle cluster imbalance %v, want 1.0", res.Imbalance)
	}
}

// TestAggregateWithDrops: cluster-wide Dropped/Makespan/Throughput/
// Goodput must follow the same formulas sched.Run uses on the union of
// outcomes, also when engines were finalized with work outstanding (the
// deadline-bounded orchestration path Run itself never takes).
func TestAggregateWithDrops(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	per := []sched.Result{
		{
			Scheduler: "X", Requests: 2, Dropped: 2, Preemptions: 3,
			Tasks: []sched.TaskOutcome{
				{ID: 0, Model: "a", Arrival: ms(10), Completion: ms(30), Isolated: ms(10), NTT: 2, Violated: false},
				{ID: 2, Model: "a", Arrival: ms(20), Completion: ms(80), Isolated: ms(10), NTT: 6, Violated: true},
			},
		},
		{
			Scheduler: "X", Requests: 1, Dropped: 1, Preemptions: 1,
			Tasks: []sched.TaskOutcome{
				{ID: 1, Model: "b", Arrival: ms(5), Completion: ms(45), Isolated: ms(20), NTT: 2, Violated: false},
			},
		},
	}
	agg := aggregate(per)
	if agg.Dropped != 3 {
		t.Errorf("Dropped %d, want 3", agg.Dropped)
	}
	if agg.Requests != 3 {
		t.Errorf("Requests %d, want 3", agg.Requests)
	}
	if agg.Preemptions != 4 {
		t.Errorf("Preemptions %d, want 4", agg.Preemptions)
	}
	// Makespan: first arrival 5ms, last completion 80ms.
	if want := ms(75); agg.Makespan != want {
		t.Errorf("Makespan %v, want %v", agg.Makespan, want)
	}
	if want := 3 / ms(75).Seconds(); agg.Throughput != want {
		t.Errorf("Throughput %v, want %v", agg.Throughput, want)
	}
	if want := 2 / ms(75).Seconds(); agg.Goodput != want {
		t.Errorf("Goodput %v, want %v", agg.Goodput, want)
	}
	if want := 1.0 / 3; agg.ViolationRate != want {
		t.Errorf("ViolationRate %v, want %v", agg.ViolationRate, want)
	}
	if want := (2.0 + 6 + 2) / 3; agg.ANTT != want {
		t.Errorf("ANTT %v, want %v", agg.ANTT, want)
	}
	// Outcomes merge in task-ID order across engines.
	for i, o := range agg.Tasks {
		if o.ID != i {
			t.Fatalf("outcome %d has ID %d: union not in ID order", i, o.ID)
		}
	}
	// Per-model breakdown over the union.
	if m := agg.PerModel["a"]; m.Requests != 2 || m.ANTT != 4 || m.ViolationRate != 0.5 {
		t.Errorf("model a metrics %+v", m)
	}
	if m := agg.PerModel["b"]; m.Requests != 1 || m.ANTT != 2 || m.ViolationRate != 0 {
		t.Errorf("model b metrics %+v", m)
	}
}

// TestAggregateAllDropped: engines finalized before completing anything
// aggregate to zeroed metrics with the drop count intact.
func TestAggregateAllDropped(t *testing.T) {
	agg := aggregate([]sched.Result{
		{Scheduler: "X", Dropped: 2},
		{Scheduler: "X", Dropped: 1},
	})
	if agg.Dropped != 3 || agg.Requests != 0 || agg.Throughput != 0 {
		t.Errorf("all-dropped aggregate %+v", agg)
	}
}

type badDispatcher struct{}

func (badDispatcher) Name() string { return "bad" }
func (badDispatcher) Pick([]EngineSignal, *workload.Request, time.Duration) int {
	return 99
}
