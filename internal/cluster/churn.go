package cluster

import (
	"fmt"
	"sort"
	"time"

	"sparsedysta/internal/rng"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/workload"
)

// This file is the fault-injection subsystem: a deterministic churn plan
// (engines failing, recovering, draining and rejoining at fixed instants
// of virtual time) and the faultInjector that executes it inside
// cluster.Run. The design splits cleanly along the control/data-plane
// line the rest of the cluster already draws:
//
//   - The PLAN is pure data, either hand-built (tests, examples) or
//     generated from (seed, MTBF, MTTR) by GenChurn — never from a wall
//     clock, so a churning run stays a bit-reproducible function of
//     (schedulers, stream, config, plan).
//   - The INJECTOR owns engine lifecycle state and the failover path: on
//     a failure it rips the queue out of the dying incarnation
//     (sched.Engine.Crash), seals that incarnation's results, builds a
//     fresh engine for the slot, and pushes the displaced work back
//     through the run's own dispatch pipeline — stale signals, redirect
//     bounces and all — so recovery traffic experiences exactly the
//     routing imperfections normal traffic does.
//   - The SIGNAL BOARD keeps publishing whatever it knew at its last
//     refresh: a dead engine looks alive (and attractive — its queue
//     just vanished) until the next refresh instant. Dispatchers route
//     to the corpse; the cluster bounces the request to the next live
//     engine and counts the redirect. That window is the failure
//     analogue of the staleness the board was built to model.
//
// A nil plan (or one with no events) takes exactly the pre-churn code
// path — the bit-identity anchor the churn equivalence tests enforce.

// ChurnKind is the type of one churn event.
type ChurnKind int

const (
	// Fail crashes the engine: queued never-started work fails over to
	// the surviving engines, started work restarts from zero elsewhere
	// (bounded by the retry cap) or becomes lost work, and the slot stops
	// serving until a Recover.
	Fail ChurnKind = iota
	// Recover returns a failed slot to service with a fresh engine and
	// scheduler (the crashed incarnation's state died with it).
	Recover
	// Drain takes a healthy engine out of rotation without killing it:
	// no new work is routed to it, but its queue runs to completion —
	// the graceful shutdown every serving stack performs before
	// maintenance.
	Drain
	// Join returns a draining (or failed) slot to service, keeping
	// whatever queue it still holds.
	Join
)

// String names the kind for plans, errors and experiment output.
func (k ChurnKind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	case Drain:
		return "drain"
	case Join:
		return "join"
	}
	return fmt.Sprintf("ChurnKind(%d)", int(k))
}

// ChurnEvent schedules one lifecycle transition at a virtual-clock
// instant.
type ChurnEvent struct {
	// At is the virtual time the event fires — effective at the first
	// simulation point at or after it. Events at the same instant as an
	// engine scheduling point or a request arrival fire first: the
	// control plane acts before the data plane, so a layer *starting* at
	// the exact crash instant dies with the accelerator. Work committed
	// by scheduling decisions strictly before At stands even when its
	// execution span crosses At (the engine commits a layer atomically
	// at its start instant) — the same event-granularity discipline
	// rebalance rounds follow, pinned by the churn tests.
	At time.Duration
	// Engine is the index of the affected slot.
	Engine int
	// Kind is the transition.
	Kind ChurnKind
}

// ChurnPlan is a deterministic schedule of engine lifecycle events. The
// zero plan (no events) disables fault injection entirely.
type ChurnPlan struct {
	Events []ChurnEvent
}

// GenChurn builds a fail/recover plan from an exponential availability
// model: each engine alternates up-periods of mean MTBF and down-periods
// of mean MTTR, with every deviate drawn from a per-engine substream of
// the seed (rng.Split), so the plan for engine i is independent of the
// engine count — adding an engine never reshuffles the others' failures.
// Events beyond the horizon are cut; an engine whose first failure lands
// past the horizon simply never fails.
func GenChurn(engines int, horizon, mtbf, mttr time.Duration, seed uint64) (ChurnPlan, error) {
	if engines < 1 {
		return ChurnPlan{}, fmt.Errorf("cluster: GenChurn over %d engines", engines)
	}
	if horizon <= 0 || mtbf <= 0 || mttr <= 0 {
		return ChurnPlan{}, fmt.Errorf("cluster: GenChurn needs positive horizon/MTBF/MTTR (got %v, %v, %v)",
			horizon, mtbf, mttr)
	}
	root := rng.New(seed)
	var events []ChurnEvent
	for i := 0; i < engines; i++ {
		r := root.Split()
		t := time.Duration(0)
		up := true
		for {
			mean := mtbf
			if !up {
				mean = mttr
			}
			t += time.Duration(r.Exp(1.0 / float64(mean)))
			if t >= horizon {
				break
			}
			kind := Fail
			if !up {
				kind = Recover
			}
			events = append(events, ChurnEvent{At: t, Engine: i, Kind: kind})
			up = !up
		}
	}
	plan := ChurnPlan{Events: events}
	plan.sort()
	return plan, nil
}

// sort orders events by (time, engine), stably, so same-instant events
// on different engines fire in engine order and same-engine sequences
// keep their authored order.
func (p *ChurnPlan) sort() {
	sort.SliceStable(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Engine < b.Engine
	})
}

// validate checks the plan against the cluster size. Transition legality
// (a Recover of a healthy engine, a double Fail) is checked at fire time
// by the injector, where the actual state is known.
func (p *ChurnPlan) validate(engines int) error {
	for _, ev := range p.Events {
		if ev.Engine < 0 || ev.Engine >= engines {
			return fmt.Errorf("cluster: churn event %s at %v targets engine %d of %d",
				ev.Kind, ev.At, ev.Engine, engines)
		}
		if ev.At < 0 {
			return fmt.Errorf("cluster: churn event %s on engine %d at negative time %v",
				ev.Kind, ev.Engine, ev.At)
		}
		if ev.Kind < Fail || ev.Kind > Join {
			return fmt.Errorf("cluster: unknown churn kind %d on engine %d", int(ev.Kind), ev.Engine)
		}
	}
	return nil
}

// engineState is one slot's lifecycle state. healthy serves traffic;
// stateFailed is a dead slot awaiting Recover; stateDraining completes
// its queue but accepts no new work.
type engineState int

const (
	stateHealthy engineState = iota
	stateFailed
	stateDraining
)

func (s engineState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateFailed:
		return "failed"
	case stateDraining:
		return "draining"
	}
	return fmt.Sprintf("engineState(%d)", int(s))
}

// faultInjector executes a ChurnPlan inside one cluster run. All state is
// per-run; Run creates it only when the plan has events, so a churn-free
// run never touches this code.
type faultInjector struct {
	plan   []ChurnEvent // sorted by (At, Engine)
	cursor int
	state  []engineState

	// The injector mutates engine slots in place: engines is Run's own
	// slice, shared with the SignalBoard and Rebalancer, so a replacement
	// incarnation is visible to all three the moment it is installed.
	engines  []*sched.Engine
	specs    []EngineSpec
	newSched func(int) sched.Scheduler
	board    *SignalBoard
	dispatch Dispatcher
	// reqByID recovers the workload.Request behind a displaced task so
	// failover can reuse the run's Dispatcher (Pick takes the request).
	reqByID map[int]*workload.Request
	// cost is the failover visibility delay per displaced request,
	// shared with migration (Config.MigrationCost): moving a queued
	// request off a corpse is the same network transfer as stealing it.
	cost     time.Duration
	retryMax int

	// parked holds displaced work while zero engines are placeable; the
	// next Recover/Join re-dispatches it. Whatever is still parked when
	// the run ends is lost work.
	parked []*sched.Task
	// sealed collects the results of crashed incarnations (completed
	// requests only — Crash removes everything else first), folded into
	// the cluster aggregate alongside the final incarnations.
	sealed []sched.Result
	// priorBusy accumulates crashed incarnations' busy time per slot for
	// the utilization metrics.
	priorBusy []time.Duration
	// serviceStart and serviceTime track each slot's in-service spans:
	// serviceStart[i] is when the slot last entered stateHealthy,
	// serviceTime[i] the total healthy time of closed spans. Together
	// with closeService they yield the EngineSeconds cost metric and the
	// live-set utilization denominators. Draining tails (a slot finishing
	// its queue after leaving rotation) are deliberately not billed: the
	// autoscaler drains idle-ish engines, so the tail is small, and
	// billing stops when the operator stops routing to the slot.
	serviceStart []time.Duration
	serviceTime  []time.Duration
	// lastInstant is the latest transition instant seen, a floor for the
	// end-of-run span close (an action can postdate the last engine
	// event).
	lastInstant time.Duration

	// Counters surfaced on the cluster Result.
	failovers int // queued requests moved off a dead engine
	retries   int // started requests restarted from zero elsewhere
	lost      int // requests abandoned: retry cap hit, or parked at run end
	redirects int // dispatch picks bounced off a non-placeable engine
	churns    int // fired events
}

// newFaultInjector validates and arms the plan. The board is bound to
// the injector's liveness so refreshes stamp availability into the
// published signals (stale until the next refresh, by design).
func newFaultInjector(plan *ChurnPlan, engines []*sched.Engine, specs []EngineSpec,
	newSched func(int) sched.Scheduler, board *SignalBoard, dispatch Dispatcher,
	reqs []*workload.Request, cost time.Duration, retryMax int) (*faultInjector, error) {
	if err := plan.validate(len(engines)); err != nil {
		return nil, err
	}
	if retryMax < 0 {
		return nil, fmt.Errorf("cluster: negative retry cap %d", retryMax)
	}
	events := append([]ChurnEvent(nil), plan.Events...)
	p := ChurnPlan{Events: events}
	p.sort()
	fi := &faultInjector{
		plan:         p.Events,
		state:        make([]engineState, len(engines)),
		engines:      engines,
		specs:        specs,
		newSched:     newSched,
		board:        board,
		dispatch:     dispatch,
		reqByID:      make(map[int]*workload.Request, len(reqs)),
		cost:         cost,
		retryMax:     retryMax,
		priorBusy:    make([]time.Duration, len(engines)),
		serviceStart: make([]time.Duration, len(engines)),
		serviceTime:  make([]time.Duration, len(engines)),
	}
	for _, r := range reqs {
		fi.reqByID[r.ID] = r
	}
	board.BindLiveness(fi.up)
	return fi, nil
}

// note registers a request the run is about to inject, so a later crash
// of its engine can re-dispatch the displaced task. The slice path
// prebuilds the whole map in newFaultInjector; the streaming path calls
// note per injection instead, which — paired with forget — keeps the map
// bounded by the in-flight set rather than the stream length. Lookups
// only ever target incomplete injected requests, so the two populations
// are interchangeable.
func (fi *faultInjector) note(r *workload.Request) { fi.reqByID[r.ID] = r }

// forget drops a completed request from the displaced-work map: a
// completed request can never be displaced again, so the entry is dead
// weight. Wired into the engines' Observer hook whenever the injector is
// armed.
func (fi *faultInjector) forget(id int) { delete(fi.reqByID, id) }

// up reports whether the slot is in service — what the SignalBoard
// publishes (at refresh instants) and what placement requires. Draining
// engines are down for placement purposes: they finish what they hold
// but take nothing new.
func (fi *faultInjector) up(i int) bool { return fi.state[i] == stateHealthy }

// setState performs a lifecycle transition at instant `at`, closing or
// opening the slot's in-service span as it crosses the healthy boundary.
// Every transition — plan events, crashes, autoscaler actions — goes
// through here, so the service-time books cannot drift from the states.
func (fi *faultInjector) setState(i int, s engineState, at time.Duration) {
	if at > fi.lastInstant {
		fi.lastInstant = at
	}
	was, is := fi.state[i] == stateHealthy, s == stateHealthy
	if was && !is {
		if d := at - fi.serviceStart[i]; d > 0 {
			fi.serviceTime[i] += d
		}
	}
	if !was && is {
		fi.serviceStart[i] = at
	}
	fi.state[i] = s
}

// closeService closes every still-open in-service span at `end` (or at
// the last transition instant, whichever is later) and returns the total
// in-service time across slots — the provisioned capacity the run billed.
func (fi *faultInjector) closeService(end time.Duration) time.Duration {
	if end < fi.lastInstant {
		end = fi.lastInstant
	}
	var total time.Duration
	for i := range fi.serviceTime {
		if fi.state[i] == stateHealthy {
			if d := end - fi.serviceStart[i]; d > 0 {
				fi.serviceTime[i] += d
			}
			fi.serviceStart[i] = end
		}
		total += fi.serviceTime[i]
	}
	return total
}

// peek returns the next unfired event's instant.
func (fi *faultInjector) peek() (time.Duration, bool) {
	if fi.cursor >= len(fi.plan) {
		return 0, false
	}
	return fi.plan[fi.cursor].At, true
}

// fireUpTo fires every event with At <= now, in plan order. Run calls it
// at arrival instants (before dispatching the arrival) and the event
// loop calls it interleaved with engine steps.
func (fi *faultInjector) fireUpTo(now time.Duration) error {
	for {
		at, ok := fi.peek()
		if !ok || at > now {
			return nil
		}
		if err := fi.fire(); err != nil {
			return err
		}
	}
}

// fire executes the event at the cursor. Illegal transitions (a Recover
// of a healthy engine, a Drain of a dead one) fail the run: a churn plan
// is a deterministic input and an inconsistent one is a bug, not a
// runtime condition — exactly the rebalancer's malformed-plan stance.
func (fi *faultInjector) fire() error {
	ev := fi.plan[fi.cursor]
	fi.cursor++
	fi.churns++
	switch ev.Kind {
	case Fail:
		if fi.state[ev.Engine] == stateFailed {
			return fmt.Errorf("cluster: churn plan fails engine %d at %v twice", ev.Engine, ev.At)
		}
		return fi.crash(ev.Engine, ev.At)
	case Recover:
		if fi.state[ev.Engine] != stateFailed {
			return fmt.Errorf("cluster: churn plan recovers %s engine %d at %v",
				fi.state[ev.Engine], ev.Engine, ev.At)
		}
		fi.setState(ev.Engine, stateHealthy, ev.At)
		return fi.place(fi.take(), ev.At)
	case Drain:
		if fi.state[ev.Engine] != stateHealthy {
			return fmt.Errorf("cluster: churn plan drains %s engine %d at %v",
				fi.state[ev.Engine], ev.Engine, ev.At)
		}
		fi.setState(ev.Engine, stateDraining, ev.At)
		return nil
	case Join:
		if fi.state[ev.Engine] == stateHealthy {
			return fmt.Errorf("cluster: churn plan joins healthy engine %d at %v", ev.Engine, ev.At)
		}
		fi.setState(ev.Engine, stateHealthy, ev.At)
		return fi.place(fi.take(), ev.At)
	}
	return fmt.Errorf("cluster: unknown churn kind %d", int(ev.Kind))
}

// take empties the parked queue for re-placement.
func (fi *faultInjector) take() []*sched.Task {
	t := fi.parked
	fi.parked = nil
	return t
}

// crash kills slot i at instant `at`: seal the dying incarnation,
// install a fresh (idle, out-of-service) one, and push the displaced
// work back through the dispatch pipeline.
func (fi *faultInjector) crash(i int, at time.Duration) error {
	e := fi.engines[i]
	queued, started, err := e.Crash(at)
	if err != nil {
		return err
	}
	fi.priorBusy[i] += e.BusyTime()
	fi.sealed = append(fi.sealed, e.Finish())
	// The specs carry the run's resolved capture options (outcome
	// recording in full mode, the bounded observer wiring otherwise), so
	// a replacement incarnation reports exactly like the one it replaces.
	fi.engines[i] = sched.NewEngine(fi.newSched(i), fi.specs[i].Sched)
	fi.setState(i, stateFailed, at)

	// Queued work just fails over; started work lost its activations
	// with the accelerator — restart from zero if the retry policy
	// allows, abandon it otherwise. RetryMax 0 means one restart ever
	// would read as "no retries", so treat it as the practical default
	// of unlimited-until-lost: a cap is opt-in via RetryMax >= 1.
	moving := queued
	fi.failovers += len(queued)
	for _, t := range started {
		if fi.retryMax > 0 && t.Attempts >= fi.retryMax {
			fi.lost++
			continue
		}
		t.Restart()
		fi.retries++
		moving = append(moving, t)
	}
	return fi.place(moving, at)
}

// place routes displaced tasks through the run's dispatcher, exactly as
// an arrival would be: stale signals, redirect on a non-placeable pick.
// With zero placeable engines the tasks park until the next
// Recover/Join. Placement charges the migration cost as a visibility
// delay (Adopt at now+cost): failing over a queued request is the same
// transfer a steal performs.
func (fi *faultInjector) place(tasks []*sched.Task, now time.Duration) error {
	for _, t := range tasks {
		r, ok := fi.reqByID[t.ID]
		if !ok {
			return fmt.Errorf("cluster: displaced task %d has no request", t.ID)
		}
		idx := fi.dispatch.Pick(fi.board.Observe(now), r, now)
		if idx < 0 || idx >= len(fi.engines) {
			return fmt.Errorf("cluster: dispatcher %s picked engine %d of %d",
				fi.dispatch.Name(), idx, len(fi.engines))
		}
		idx, ok = fi.resolve(idx)
		if !ok {
			fi.parked = append(fi.parked, t)
			continue
		}
		if err := fi.engines[idx].Adopt(t, now+fi.cost); err != nil {
			return err
		}
	}
	return nil
}

// resolve bounces a pick off a non-placeable engine to the next
// placeable one in index order — the dispatch-layer redirect a router
// performs when its (stale) signals sent a request to a corpse. Returns
// false when no engine is placeable.
func (fi *faultInjector) resolve(idx int) (int, bool) {
	if fi.up(idx) {
		return idx, true
	}
	n := len(fi.engines)
	for k := 1; k < n; k++ {
		j := (idx + k) % n
		if fi.up(j) {
			fi.redirects++
			return j, true
		}
	}
	return 0, false
}

// drainNow takes a healthy slot out of rotation at the autoscaler's
// request — the same transition a plan Drain performs, minus the plan
// cursor (autoscaler actions are policy decisions, not injected faults,
// so they don't count as churn events).
func (fi *faultInjector) drainNow(i int, at time.Duration) error {
	if fi.state[i] != stateHealthy {
		return fmt.Errorf("cluster: autoscaler drains %s engine %d at %v", fi.state[i], i, at)
	}
	fi.setState(i, stateDraining, at)
	return nil
}

// joinNow returns a draining slot to service at the autoscaler's
// request, re-dispatching any work parked while the cluster was down —
// the same path a plan Join takes.
func (fi *faultInjector) joinNow(i int, at time.Duration) error {
	if fi.state[i] != stateDraining {
		return fmt.Errorf("cluster: autoscaler joins %s engine %d at %v", fi.state[i], i, at)
	}
	fi.setState(i, stateHealthy, at)
	return fi.place(fi.take(), at)
}

// finish closes the books at the end of the run: whatever is still
// parked had no engine to run on before the stream ended — lost work.
func (fi *faultInjector) finish() {
	fi.lost += len(fi.parked)
	fi.parked = nil
}
