package cluster

import "time"

// eventHeap is an indexed binary min-heap over engine slots keyed by
// (next-event time, slot index). It replaces the per-step linear scan of
// every engine's NextEvent with an O(log n) lookup: the run loop updates
// exactly the slots whose engines it touched (one per Step or Inject)
// and refreshes the whole heap only at the rare control-plane instants —
// churn firings, rebalance rounds, autoscaler actions — that can mutate
// arbitrary engines or replace incarnations in place.
//
// The tie-break is load-bearing: the linear scan it replaces kept the
// first strictly-lower time, so among equal-time slots the lowest index
// won. The heap orders by (time, slot) lexicographically, which picks
// the same slot — the cross-engine determinism contract (DESIGN.md §5)
// and the streaming equivalence tests both pin this.
type eventHeap struct {
	// slots is the heap array of slot indices.
	slots []int
	// pos[i] is slot i's position in the heap array, -1 when the slot
	// has no pending event.
	pos []int
	// at[i] is slot i's key time, valid while pos[i] >= 0.
	at []time.Duration
}

// newEventHeap returns an empty heap over n slots.
func newEventHeap(n int) *eventHeap {
	h := &eventHeap{
		slots: make([]int, 0, n),
		pos:   make([]int, n),
		at:    make([]time.Duration, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// set records slot i's next event at t, or removes the slot when ok is
// false (no pending event). Idempotent: re-setting an unchanged key is
// a no-op after the O(log n) sift finds the slot already in place.
func (h *eventHeap) set(i int, t time.Duration, ok bool) {
	switch {
	case ok && h.pos[i] >= 0:
		h.at[i] = t
		h.fix(h.pos[i])
	case ok:
		h.at[i] = t
		h.pos[i] = len(h.slots)
		h.slots = append(h.slots, i)
		h.up(len(h.slots) - 1)
	case h.pos[i] >= 0:
		h.removeAt(h.pos[i])
	}
}

// min returns the slot with the earliest event, ties to the lowest slot
// index. ok is false when no slot has a pending event.
func (h *eventHeap) min() (slot int, t time.Duration, ok bool) {
	if len(h.slots) == 0 {
		return -1, 0, false
	}
	s := h.slots[0]
	return s, h.at[s], true
}

// len reports how many slots hold a pending event.
func (h *eventHeap) len() int { return len(h.slots) }

// less orders heap entries by (time, slot index) — the linear scan's
// first-lowest-time visit order.
func (h *eventHeap) less(a, b int) bool {
	if h.at[a] != h.at[b] {
		return h.at[a] < h.at[b]
	}
	return a < b
}

// removeAt deletes the entry at heap position p.
func (h *eventHeap) removeAt(p int) {
	s := h.slots[p]
	last := len(h.slots) - 1
	h.slots[p] = h.slots[last]
	h.slots = h.slots[:last]
	h.pos[s] = -1
	if p < last {
		h.pos[h.slots[p]] = p
		h.fix(p)
	}
}

// fix restores heap order after the entry at position p changed key.
func (h *eventHeap) fix(p int) {
	if !h.down(p) {
		h.up(p)
	}
}

func (h *eventHeap) up(p int) {
	for p > 0 {
		parent := (p - 1) / 2
		if !h.less(h.slots[p], h.slots[parent]) {
			return
		}
		h.slots[p], h.slots[parent] = h.slots[parent], h.slots[p]
		h.pos[h.slots[p]] = p
		h.pos[h.slots[parent]] = parent
		p = parent
	}
}

func (h *eventHeap) down(p int) bool {
	moved := false
	for {
		child := 2*p + 1
		if child >= len(h.slots) {
			return moved
		}
		if r := child + 1; r < len(h.slots) && h.less(h.slots[r], h.slots[child]) {
			child = r
		}
		if !h.less(h.slots[child], h.slots[p]) {
			return moved
		}
		h.slots[p], h.slots[child] = h.slots[child], h.slots[p]
		h.pos[h.slots[p]] = p
		h.pos[h.slots[child]] = child
		p = child
		moved = true
	}
}
