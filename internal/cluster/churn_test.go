package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// uniformStream builds a fully deterministic request stream: n requests,
// one every gap, each a `layers`-layer trace of `layer` per layer, all
// with the given relative SLO. Crafted churn tests need exact control of
// when work is queued, running and finished around an injected failure.
func uniformStream(n int, gap, layer time.Duration, layers int, slo time.Duration) []*workload.Request {
	key := trace.Key{Model: "m", Pattern: sparsity.Dense}
	reqs := make([]*workload.Request, n)
	for i := range reqs {
		tr := trace.SampleTrace{
			LayerLatency:  make([]time.Duration, layers),
			LayerSparsity: make([]float64, layers),
		}
		for l := 0; l < layers; l++ {
			tr.LayerLatency[l] = layer
			tr.LayerSparsity[l] = 0.5
		}
		reqs[i] = &workload.Request{
			ID: i, Key: key, Trace: tr,
			Arrival: time.Duration(i) * gap,
			SLO:     slo,
		}
	}
	return reqs
}

// accounted asserts the no-silent-drop contract on a churn result: every
// offered request landed in exactly one outcome class.
func accounted(t *testing.T, label string, res Result, offered int) {
	t.Helper()
	if res.Offered != offered {
		t.Errorf("%s: Offered = %d, want %d", label, res.Offered, offered)
	}
	if got := res.Requests + res.Rejected + res.LostWork + res.Dropped; got != offered {
		t.Errorf("%s: %d completed + %d rejected + %d lost + %d dropped = %d, want %d",
			label, res.Requests, res.Rejected, res.LostWork, res.Dropped, got, offered)
	}
	if err := sched.CheckOutcomeConservation(res.Result); err != nil {
		t.Errorf("%s: %v", label, err)
	}
}

// TestChurnOffBitIdentical: a nil plan and an empty plan are the same
// thing — no fault injection — and both must be bit-identical to each
// other for every scheduler, dispatcher and rebalance policy. This is
// the PR's primary equivalence anchor: arming the churn subsystem with
// nothing to do changes no byte of any result.
func TestChurnOffBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		load := SparsityAwareLoad(lut, est)
		for _, spec := range schedSpecs(est, lut) {
			for _, d := range dispatchers(est, lut) {
				for name, mut := range map[string]func(*Config){
					"plain": func(*Config) {},
					"stale": func(c *Config) { c.SignalInterval = 3 * time.Millisecond },
					"stealing": func(c *Config) {
						c.Rebalance = Steal{Load: load}
						c.RebalanceInterval = 2 * time.Millisecond
						c.MigrationCost = time.Millisecond
					},
				} {
					base := Config{Engines: 3, Dispatch: d}
					mut(&base)
					want, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, base)
					if err != nil {
						t.Fatalf("%s/%s/%s (seed %d): %v", spec.name, d.Name(), name, seed, err)
					}
					withEmpty := base
					withEmpty.Churn = &ChurnPlan{}
					withEmpty.RetryMax = 3 // ignored without events
					got, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, withEmpty)
					if err != nil {
						t.Fatalf("%s/%s/%s (seed %d): %v", spec.name, d.Name(), name, seed, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s/%s (seed %d): empty churn plan diverges from nil",
							spec.name, d.Name(), name, seed)
					}
				}
			}
		}
	}
}

// TestChurnAccountingInvariant: under generated churn across schedulers,
// dispatchers and cluster sizes, every request is accounted for in
// exactly one outcome class, and the whole run is deterministic
// (identical on a re-run).
func TestChurnAccountingInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		reqs, est, lut := randomStream(seed, 60)
		horizon := reqs[len(reqs)-1].Arrival * 2
		for _, engines := range []int{2, 4} {
			plan, err := GenChurn(engines, horizon, horizon/6, horizon/12, 100+seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Events) == 0 {
				t.Fatalf("seed %d: degenerate plan, tune MTBF down", seed)
			}
			for _, d := range dispatchers(est, lut) {
				for _, spec := range schedSpecs(est, lut) {
					cfg := Config{Engines: engines, Dispatch: d, Churn: &plan,
						SignalInterval: 2 * time.Millisecond, RetryMax: 2,
						MigrationCost: 500 * time.Microsecond}
					label := spec.name + "/" + d.Name()
					res, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, cfg)
					if err != nil {
						t.Fatalf("%s (seed %d, %d engines): %v", label, seed, engines, err)
					}
					accounted(t, label, res, len(reqs))
					if res.ChurnEvents == 0 {
						t.Errorf("%s: no churn events fired from a %d-event plan",
							label, len(plan.Events))
					}
					again, err := Run(func(int) sched.Scheduler { return spec.mk() }, reqs, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res, again) {
						t.Fatalf("%s (seed %d): churn run is not deterministic", label, seed)
					}
				}
			}
		}
	}
}

// TestChurnRedirectOnStaleSignals: with a long signal interval, a
// dispatcher keeps routing to an engine that died after the last refresh.
// The cluster must bounce those picks to the live engine — counting each
// redirect — and every request must still complete.
func TestChurnRedirectOnStaleSignals(t *testing.T) {
	// 20 requests, one per ms, 1ms of work each; engine 0 dies at 4.5ms.
	// The board refreshes at t=0 and then not until t=10ms, so JSQ keeps
	// working off the frozen all-zero snapshot, whose tie-break sends
	// every pick to engine 0 — a corpse after 4.5ms.
	reqs := uniformStream(20, time.Millisecond, 500*time.Microsecond, 2, 50*time.Millisecond)
	plan := &ChurnPlan{Events: []ChurnEvent{
		{At: 4500 * time.Microsecond, Engine: 0, Kind: Fail},
	}}
	res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{Engines: 2, Dispatch: NewJSQ(), Churn: plan,
			SignalInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects == 0 {
		t.Error("no dispatch picks bounced off the dead engine despite stale signals")
	}
	accounted(t, "jsq", res, len(reqs))
	if res.LostWork > 0 || res.Rejected > 0 {
		t.Errorf("one live engine remained, yet %d lost + %d rejected",
			res.LostWork, res.Rejected)
	}
	if res.Requests != len(reqs) {
		t.Errorf("%d of %d requests completed", res.Requests, len(reqs))
	}
}

// TestChurnFailoverRedistributes: killing the engine holding a deep
// queue must move its never-started requests to the survivor (counted as
// failovers) and restart its in-flight request (counted as a retry);
// nothing is lost because a live engine remains.
func TestChurnFailoverRedistributes(t *testing.T) {
	// Everything lands on engine 0 (concentrate dispatcher); engine 0
	// dies mid-stream with a deep queue while request 0 is partway
	// through its four layers. The crash instant (1.2ms) sits between
	// layer boundaries (0.5ms each): the layer spanning it commits —
	// churn takes effect at the next scheduling point, the same
	// discipline rebalance rounds follow — and the task is ripped with
	// three of four layers executed.
	reqs := uniformStream(10, 100*time.Microsecond, 500*time.Microsecond, 4, time.Second)
	plan := &ChurnPlan{Events: []ChurnEvent{
		{At: 1200 * time.Microsecond, Engine: 0, Kind: Fail},
	}}
	res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{Engines: 2, Dispatch: concentrate{}, Churn: plan})
	if err != nil {
		t.Fatal(err)
	}
	accounted(t, "concentrate", res, len(reqs))
	if res.Failovers == 0 {
		t.Error("no queued work failed over from the dead engine")
	}
	if res.Retries == 0 {
		t.Error("the in-flight request was not restarted")
	}
	if res.Requests != len(reqs) {
		t.Errorf("%d of %d requests completed", res.Requests, len(reqs))
	}
	// The survivor's incarnation served everything that arrived after
	// the crash plus the failovers; engine 0's final incarnation (never
	// recovered) served nothing.
	if res.PerEngine[0].Requests != 0 {
		t.Errorf("dead slot's fresh incarnation completed %d requests", res.PerEngine[0].Requests)
	}
}

// TestChurnAllDownRejectsAndParks: with every engine down, arrivals are
// refused (503-style, counted as rejected) and displaced work parks; a
// recovery un-parks it, and work stranded with no recovery ever is lost
// — never silently dropped.
func TestChurnAllDownRejectsAndParks(t *testing.T) {
	reqs := uniformStream(10, time.Millisecond, 800*time.Microsecond, 2, time.Second)
	// Engine dies at 2.5ms (after ~3 arrivals) and recovers at 6.2ms:
	// arrivals in between have no live engine.
	t.Run("recovered", func(t *testing.T) {
		plan := &ChurnPlan{Events: []ChurnEvent{
			{At: 2500 * time.Microsecond, Engine: 0, Kind: Fail},
			{At: 6200 * time.Microsecond, Engine: 0, Kind: Recover},
		}}
		res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
			Config{Engines: 1, Churn: plan})
		if err != nil {
			t.Fatal(err)
		}
		accounted(t, "recovered", res, len(reqs))
		if res.Rejected == 0 {
			t.Error("arrivals during the outage were not refused")
		}
		if res.LostWork != 0 {
			t.Errorf("%d requests lost despite recovery", res.LostWork)
		}
		if res.Requests+res.Rejected != len(reqs) {
			t.Errorf("completed %d + rejected %d != %d", res.Requests, res.Rejected, len(reqs))
		}
	})
	t.Run("never-recovered", func(t *testing.T) {
		plan := &ChurnPlan{Events: []ChurnEvent{
			{At: 2500 * time.Microsecond, Engine: 0, Kind: Fail},
		}}
		res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
			Config{Engines: 1, Churn: plan})
		if err != nil {
			t.Fatal(err)
		}
		accounted(t, "never-recovered", res, len(reqs))
		if res.LostWork == 0 {
			t.Error("work stranded at the crash was not counted as lost")
		}
		if res.Rejected == 0 {
			t.Error("arrivals after the crash were not refused")
		}
	})
}

// TestChurnRetryCap: a request whose engines keep dying under it
// restarts from zero until the retry cap, then becomes lost work; with
// no cap (RetryMax 0) it survives any number of failures as long as an
// engine eventually stays up.
func TestChurnRetryCap(t *testing.T) {
	// One long request (10 layers of 1ms); the single engine fails at
	// 2.5ms (mid-execution), recovers at 3ms, fails again at 5.5ms
	// (mid-retry), recovers again at 6ms and stays up.
	reqs := uniformStream(1, time.Millisecond, time.Millisecond, 10, time.Minute)
	plan := &ChurnPlan{Events: []ChurnEvent{
		{At: 2500 * time.Microsecond, Engine: 0, Kind: Fail},
		{At: 3000 * time.Microsecond, Engine: 0, Kind: Recover},
		{At: 5500 * time.Microsecond, Engine: 0, Kind: Fail},
		{At: 6000 * time.Microsecond, Engine: 0, Kind: Recover},
	}}
	run := func(retryMax int) Result {
		t.Helper()
		res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
			Config{Engines: 1, Churn: plan, RetryMax: retryMax})
		if err != nil {
			t.Fatal(err)
		}
		accounted(t, "retry", res, len(reqs))
		return res
	}

	unlimited := run(0)
	if unlimited.Requests != 1 || unlimited.LostWork != 0 {
		t.Errorf("unlimited retries: completed %d, lost %d", unlimited.Requests, unlimited.LostWork)
	}
	if unlimited.Retries != 2 {
		t.Errorf("unlimited retries: %d restarts, want 2", unlimited.Retries)
	}

	capped := run(1)
	if capped.LostWork != 1 || capped.Requests != 0 {
		t.Errorf("retry cap 1: completed %d, lost %d; want the second failure to abandon it",
			capped.Requests, capped.LostWork)
	}
	if capped.Retries != 1 {
		t.Errorf("retry cap 1: %d restarts, want 1", capped.Retries)
	}
}

// TestChurnDrainAndJoin: a drained engine finishes what it holds (no
// failover, no losses), takes nothing new until it joins back, and the
// whole stream completes.
func TestChurnDrainAndJoin(t *testing.T) {
	reqs := uniformStream(20, 500*time.Microsecond, 600*time.Microsecond, 2, time.Second)
	plan := &ChurnPlan{Events: []ChurnEvent{
		{At: 3 * time.Millisecond, Engine: 0, Kind: Drain},
		{At: 7 * time.Millisecond, Engine: 0, Kind: Join},
	}}
	res, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{Engines: 2, Dispatch: NewRoundRobin(), Churn: plan})
	if err != nil {
		t.Fatal(err)
	}
	accounted(t, "drain", res, len(reqs))
	if res.Requests != len(reqs) {
		t.Errorf("%d of %d requests completed", res.Requests, len(reqs))
	}
	if res.Failovers != 0 || res.Retries != 0 || res.LostWork != 0 {
		t.Errorf("graceful drain displaced work: %d failovers, %d retries, %d lost",
			res.Failovers, res.Retries, res.LostWork)
	}
	// Both engines served: the drain window shifted work to engine 1 but
	// engine 0 kept its queue and rejoined.
	if res.PerEngine[0].Requests == 0 || res.PerEngine[1].Requests == 0 {
		t.Errorf("per-engine completions %d/%d: drain emptied a slot it shouldn't have",
			res.PerEngine[0].Requests, res.PerEngine[1].Requests)
	}
}

// TestChurnPlanRejected: malformed plans — out-of-range engines,
// negative instants, impossible transitions — fail the run loudly.
func TestChurnPlanRejected(t *testing.T) {
	reqs := uniformStream(3, time.Millisecond, time.Millisecond, 2, time.Second)
	for name, plan := range map[string]*ChurnPlan{
		"bad-engine":      {Events: []ChurnEvent{{At: time.Millisecond, Engine: 2, Kind: Fail}}},
		"negative-time":   {Events: []ChurnEvent{{At: -time.Millisecond, Engine: 0, Kind: Fail}}},
		"bad-kind":        {Events: []ChurnEvent{{At: time.Millisecond, Engine: 0, Kind: ChurnKind(9)}}},
		"double-fail":     {Events: []ChurnEvent{{At: time.Millisecond, Engine: 0, Kind: Fail}, {At: 2 * time.Millisecond, Engine: 0, Kind: Fail}}},
		"recover-healthy": {Events: []ChurnEvent{{At: time.Millisecond, Engine: 0, Kind: Recover}}},
		"drain-dead":      {Events: []ChurnEvent{{At: time.Millisecond, Engine: 0, Kind: Fail}, {At: 2 * time.Millisecond, Engine: 0, Kind: Drain}}},
		"join-healthy":    {Events: []ChurnEvent{{At: time.Millisecond, Engine: 0, Kind: Join}}},
	} {
		_, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
			Config{Engines: 2, Churn: plan})
		if err == nil {
			t.Errorf("%s: malformed plan accepted", name)
		} else if !strings.Contains(err.Error(), "churn") {
			t.Errorf("%s: error does not identify the churn plan: %v", name, err)
		}
	}
	if _, err := Run(func(int) sched.Scheduler { return sched.NewFCFS() }, reqs,
		Config{Engines: 1, Churn: &ChurnPlan{Events: []ChurnEvent{
			{At: time.Millisecond, Engine: 0, Kind: Fail}}}, RetryMax: -1}); err == nil {
		t.Error("negative retry cap accepted")
	}
}

// TestGenChurn pins the generator's contracts: determinism, fail/recover
// alternation per engine, per-engine substream independence (an engine's
// schedule does not change when more engines are added), horizon cutoff
// and input validation.
func TestGenChurn(t *testing.T) {
	const horizon = time.Second
	a, err := GenChurn(3, horizon, 100*time.Millisecond, 30*time.Millisecond, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenChurn(3, horizon, 100*time.Millisecond, 30*time.Millisecond, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different plans")
	}
	c, _ := GenChurn(3, horizon, 100*time.Millisecond, 30*time.Millisecond, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds, same plan")
	}
	if len(a.Events) == 0 {
		t.Fatal("no events over ten expected failures per engine")
	}
	// Per engine: strictly increasing times, strict fail/recover
	// alternation starting with a failure, all inside the horizon.
	perEngine := map[int][]ChurnEvent{}
	for _, ev := range a.Events {
		if ev.At < 0 || ev.At >= horizon {
			t.Errorf("event %+v outside horizon", ev)
		}
		perEngine[ev.Engine] = append(perEngine[ev.Engine], ev)
	}
	for i, evs := range perEngine {
		for k, ev := range evs {
			want := Fail
			if k%2 == 1 {
				want = Recover
			}
			if ev.Kind != want {
				t.Errorf("engine %d event %d: %s, want %s", i, k, ev.Kind, want)
			}
			if k > 0 && ev.At <= evs[k-1].At {
				t.Errorf("engine %d: non-increasing event times", i)
			}
		}
	}
	// Adding engines must not reshuffle existing engines' schedules.
	wide, _ := GenChurn(5, horizon, 100*time.Millisecond, 30*time.Millisecond, 42)
	for i := 0; i < 3; i++ {
		var narrow, grown []ChurnEvent
		for _, ev := range a.Events {
			if ev.Engine == i {
				narrow = append(narrow, ev)
			}
		}
		for _, ev := range wide.Events {
			if ev.Engine == i {
				grown = append(grown, ev)
			}
		}
		if !reflect.DeepEqual(narrow, grown) {
			t.Errorf("engine %d schedule changed when the cluster grew", i)
		}
	}
	// Sorted by (time, engine).
	for k := 1; k < len(a.Events); k++ {
		p, q := a.Events[k-1], a.Events[k]
		if q.At < p.At || (q.At == p.At && q.Engine < p.Engine) {
			t.Errorf("events out of order at %d", k)
		}
	}
	for name, bad := range map[string]func() (ChurnPlan, error){
		"zero-engines": func() (ChurnPlan, error) { return GenChurn(0, horizon, time.Millisecond, time.Millisecond, 1) },
		"zero-horizon": func() (ChurnPlan, error) { return GenChurn(1, 0, time.Millisecond, time.Millisecond, 1) },
		"zero-mtbf":    func() (ChurnPlan, error) { return GenChurn(1, horizon, 0, time.Millisecond, 1) },
		"zero-mttr":    func() (ChurnPlan, error) { return GenChurn(1, horizon, time.Millisecond, 0, 1) },
	} {
		if _, err := bad(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
