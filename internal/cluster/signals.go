package cluster

import (
	"time"

	"sparsedysta/internal/sched"
)

// EngineSignal is one engine's dispatcher-visible state: a snapshot taken
// by the SignalBoard, possibly stale by up to Config.SignalInterval of
// virtual time. Dispatchers and admission policies read only these
// signals — never the engines directly — which is what lets the cluster
// model a real router whose metrics pipeline lags the data plane.
type EngineSignal struct {
	// Outstanding is the engine's injected-but-uncompleted request count
	// at the last refresh.
	Outstanding int
	// Backlog is the engine's EstimatedBacklog under the run's load
	// estimator at the last refresh, in reference-hardware units. Zero
	// when the run has no load estimator (e.g. pure round-robin).
	Backlog time.Duration
	// LatencyScale is the engine's static capacity spec (1 = reference
	// speed, 2 = half speed). Hardware doesn't change at runtime, so
	// this field is always exact, never stale.
	LatencyScale float64
	// Down reports the engine was out of service (failed or draining) at
	// the last refresh. Like every other signal it is a stale snapshot:
	// an engine that died since the refresh still shows Down == false,
	// so dispatchers can and do route to a corpse — the cluster bounces
	// such picks to a live engine and counts the redirect. The zero
	// value is "in service", so signals built without fault injection
	// (and every pre-churn caller) describe a fully healthy cluster.
	Down bool
}

// NormOutstanding is the capacity-normalized queue length: the signal's
// outstanding count weighted by the engine's latency scale, so that a
// queue of n on a half-speed engine counts like 2n on a reference one.
// JSQ compares these so fast engines aren't starved in a heterogeneous
// cluster. With homogeneous scale-1 engines it reduces to the plain count
// (float comparison of small integers is exact, so homogeneous picks stay
// bit-identical to the integer comparison).
func (s EngineSignal) NormOutstanding() float64 {
	return float64(s.Outstanding) * s.LatencyScale
}

// NormBacklog is the capacity-normalized predicted backlog: the
// reference-units backlog estimate scaled to this engine's actual drain
// time. LeastLoad compares these.
func (s EngineSignal) NormBacklog() float64 {
	return float64(s.Backlog) * s.LatencyScale
}

// DrainTime is the signal's predicted wall-clock time to drain the
// backlog: NormBacklog as a duration. Admission policies use it to
// predict queueing delay.
func (s EngineSignal) DrainTime() time.Duration {
	return time.Duration(s.NormBacklog())
}

// SignalBoard mediates between engines and the dispatch layer: it holds
// one EngineSignal per engine and refreshes them from live engine state
// only when the observing instant is at least `interval` of virtual time
// past the last refresh. Interval 0 refreshes on every observation,
// reproducing the exact-state dispatch of the idealized router
// bit-identically.
//
// Determinism: refreshes are tied to arrival instants (signals are only
// observed when a request arrives), so snapshot times are a pure function
// of the request stream — no wall clock, no periodic timer goroutine.
type SignalBoard struct {
	engines  []*sched.Engine
	interval time.Duration
	load     func(*sched.Task) time.Duration
	up       func(engine int) bool
	// sig and prev double-buffer the snapshots: Refresh writes the buffer
	// Observe is NOT currently handing out, then flips. An observed slice
	// therefore survives exactly one subsequent Refresh unchanged — which
	// is what lets a mid-iteration refresh (an autoscaler action between a
	// request's Observe and its dispatch) not mutate the snapshot that
	// request's admission and routing already hold. Neither buffer is ever
	// reallocated: two allocations per run, not one per refresh.
	sig   []EngineSignal
	prev  []EngineSignal
	last  time.Duration
	fresh bool
	// refreshes counts Refresh calls: the autoscaler keys its evaluation
	// instants off this, so it runs exactly once per snapshot refresh
	// instead of once per arrival.
	refreshes int
}

// NewSignalBoard wraps the engines. load is the per-task remaining-work
// estimate used for the Backlog signal (nil leaves Backlog zero);
// interval is the staleness bound (0 = exact state on every observation).
func NewSignalBoard(engines []*sched.Engine, interval time.Duration, load func(*sched.Task) time.Duration) *SignalBoard {
	b := &SignalBoard{
		engines:  engines,
		interval: interval,
		load:     load,
		sig:      make([]EngineSignal, len(engines)),
		prev:     make([]EngineSignal, len(engines)),
	}
	for i, e := range engines {
		b.sig[i].LatencyScale = e.LatencyScale()
		b.prev[i].LatencyScale = e.LatencyScale()
	}
	return b
}

// Observe returns the per-engine signals as seen at virtual time now,
// refreshing them first if the board has never refreshed or the last
// refresh is at least the signal interval old. The returned slice is the
// board's own (double-buffered): it stays valid across exactly one
// subsequent Refresh, so a refresh triggered between an arrival's
// observation and its dispatch cannot mutate what the arrival observed.
// Callers must not mutate it, nor retain it across their own next
// observation.
func (b *SignalBoard) Observe(now time.Duration) []EngineSignal {
	if !b.fresh || b.interval == 0 || now-b.last >= b.interval {
		b.Refresh(now)
	}
	return b.sig
}

// BindLiveness attaches an availability source (the fault injector):
// refreshes stamp each snapshot's Down field from it, so availability
// propagates to dispatch with exactly the staleness every other signal
// has. Unbound (the churn-free default), every signal reports in
// service.
func (b *SignalBoard) BindLiveness(up func(engine int) bool) { b.up = up }

// Refresh snapshots every engine's live state unconditionally and stamps
// the board with now. It writes the inactive buffer and flips, leaving
// the previously observed slice intact (see Observe). The Backlog signal
// is the engines' incrementally maintained sum when they are bound to the
// run's estimator — O(1) per engine — with the O(n) EstimatedBacklog scan
// kept as the fallback for boards over unbound engines (and as the
// reference the invariant tests compare the sum against).
func (b *SignalBoard) Refresh(now time.Duration) {
	next := b.prev
	for i, e := range b.engines {
		next[i].Outstanding = e.Outstanding()
		if b.load != nil {
			if e.BacklogBound() {
				next[i].Backlog = e.Backlog()
			} else {
				next[i].Backlog = e.EstimatedBacklog(b.load)
			}
		}
		if b.up != nil {
			next[i].Down = !b.up(i)
		}
	}
	b.prev = b.sig
	b.sig = next
	b.last = now
	b.fresh = true
	b.refreshes++
}

// Refreshes returns how many times the board has refreshed its
// snapshots. It only ever grows, so comparing it across observations
// detects refresh instants.
func (b *SignalBoard) Refreshes() int { return b.refreshes }

// Age returns how stale the current signals are at virtual time now.
func (b *SignalBoard) Age(now time.Duration) time.Duration {
	if !b.fresh {
		return 0
	}
	return now - b.last
}
