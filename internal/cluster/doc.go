// Package cluster simulates a multi-accelerator serving node: N steppable
// scheduling engines (internal/sched.Engine) behind a dispatch layer that
// routes each arriving request to one engine. It extends the paper's
// single-accelerator evaluation toward the sharded serving scenario of the
// roadmap — the interesting scheduling question at scale is which device
// gets a request, informed by sparsity-aware load estimates, before the
// per-device scheduler ever sees it.
//
// The layer models four realities of a production router that the
// idealized fan-out ignored: engines can be heterogeneous (per-engine
// EngineSpec with a latency scale), the router's view of engine state can
// be stale (SignalBoard snapshots refreshed every SignalInterval), the
// router can refuse work (Admission policies shed requests before
// injection, counted in Result.Rejected), and — since PR 4 — a request
// routed to the wrong engine can move once (the Rebalancer migrates
// queued-but-never-started requests under a RebalancePolicy, counted in
// Result.Migrations with win/loss accounting).
//
// # Determinism contracts
//
//   - Virtual-clock ordering: engines' events interleave on one clock in
//     (event time, engine index) order, and every stochastic input
//     derives from the request stream.
//   - Snapshot refresh rules: the SignalBoard refreshes only when an
//     arrival is at least SignalInterval past the last refresh, so
//     snapshot instants are a pure function of the stream — no wall
//     clock, no timer goroutines. Dispatchers and admission policies are
//     deterministic functions of the signals.
//   - Rebalance instants follow the same discipline: rounds fire at
//     instants the simulation already visits (arrivals and engine
//     events), gated by RebalanceInterval, and the control plane runs
//     before the data plane at equal instants. Migration
//     decisions read live engine state (an engine always knows its own
//     queue — the information advantage that lets stealing repair stale
//     dispatch), but remain deterministic functions of that state.
//   - Neutral-knob bit-identity: a 1-engine cluster reproduces sched.Run
//     bit-identically under every dispatcher; SignalInterval 0 +
//     homogeneous specs + no admission reproduce the idealized
//     exact-state router; Rebalance nil/none or RebalanceInterval 0
//     reproduce the pre-migration cluster. The equivalence tests in this
//     package and internal/exp enforce all three.
//
// See DESIGN.md §8 (cluster architecture) and §9 (migration
// architecture) for the full design rationale.
package cluster
