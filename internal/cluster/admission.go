package cluster

import (
	"fmt"
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// Admission decides, at the dispatch layer and before any engine is
// touched, whether an arriving request enters the cluster at all. Shed
// requests are counted in Result.Rejected and appear in no other metric;
// the point of shedding is to protect the goodput of admitted traffic
// when the cluster cannot serve everyone inside the SLO anyway.
//
// Admit reads the same (possibly stale) signals the dispatcher does, so
// an admission decision is as delayed as the routing decision — a real
// router has one metrics pipeline, not two. Implementations must be
// deterministic: same signals, same request, same answer.
type Admission interface {
	// Name identifies the policy in results.
	Name() string
	// Admit reports whether the request arriving at now may be injected.
	Admit(sig []EngineSignal, r *workload.Request, now time.Duration) bool
}

// AdmitAll is the no-op policy: every request enters. The default.
type AdmitAll struct{}

// Name implements Admission.
func (AdmitAll) Name() string { return "none" }

// Admit implements Admission.
func (AdmitAll) Admit([]EngineSignal, *workload.Request, time.Duration) bool { return true }

// QueueCap sheds a request when no engine has room: every engine's
// outstanding count is already at or above Cap. The classic bounded-queue
// front door — load-aware but deadline-blind.
type QueueCap struct {
	// Cap is the per-engine outstanding-request bound (>= 1).
	Cap int
}

// Name implements Admission.
func (q QueueCap) Name() string { return fmt.Sprintf("queue-cap:%d", q.Cap) }

// Admit implements Admission. Engines marked Down don't count as room:
// a crashed engine's snapshot (once refreshed) shows zero outstanding,
// and without the check the front door would admit everything into a
// shrunken cluster precisely while capacity is gone.
func (q QueueCap) Admit(sig []EngineSignal, _ *workload.Request, _ time.Duration) bool {
	for _, s := range sig {
		if s.Down {
			continue
		}
		if s.Outstanding < q.Cap {
			return true
		}
	}
	return false
}

// SLOShed sheds a request predicted to miss its SLO on every engine even
// if served immediately after the engine's current backlog: the
// predicted-infeasible front door. The prediction combines the signal's
// backlog drain time with the request's estimated isolated latency,
// scaled to each engine's speed — so a fast engine can save a request a
// slow one would doom. Like every dispatch-layer estimate it is built on
// profiling means over stale signals; it trades a few salvageable
// requests for not burning accelerator time on hopeless ones.
type SLOShed struct {
	// Iso estimates a request's isolated latency in reference-hardware
	// units (see RequestIsolated).
	Iso func(*workload.Request) time.Duration
	// Load is the per-task remaining-work estimate backing the Backlog
	// signal when the dispatcher provides none (e.g. behind round-robin
	// or JSQ): without it the board would leave Backlog at zero and the
	// shed would silently see every queue as empty. Typically the same
	// estimator the load dispatcher would use (SparsityAwareLoad).
	Load func(*sched.Task) time.Duration
	// Curve is Load's optional curve form (see SparsityAwareCurve),
	// consulted when this policy is the run's load provider.
	Curve func(*sched.Task) []time.Duration
}

// Name implements Admission.
func (SLOShed) Name() string { return "slo" }

// LoadFunc exposes the backlog estimate to the SignalBoard
// (loadProvider); the dispatcher's own estimate, if any, takes
// precedence so routing and admission share one metrics pipeline.
func (a SLOShed) LoadFunc() func(*sched.Task) time.Duration { return a.Load }

// CurveFunc exposes the estimate's curve form (curveProvider).
func (a SLOShed) CurveFunc() func(*sched.Task) []time.Duration { return a.Curve }

// Admit implements Admission. Down engines can't save anyone: their
// snapshots are excluded from the feasibility scan (same rationale as
// QueueCap — a dead engine's empty queue predicts a completion that
// will never happen).
func (a SLOShed) Admit(sig []EngineSignal, r *workload.Request, now time.Duration) bool {
	iso := a.Iso(r)
	for _, s := range sig {
		if s.Down {
			continue
		}
		scale := s.LatencyScale
		if scale <= 0 {
			scale = 1
		}
		service := time.Duration(float64(iso) * scale)
		if now+s.DrainTime()+service <= r.Deadline() {
			return true
		}
	}
	return false
}

// RequestIsolated estimates an arriving request's isolated latency in
// reference-hardware units, before it becomes a Task: the Dysta LUT entry
// for the model-pattern pair when profiled, else the pattern-blind
// per-model merge, else the profiling population's mean isolated latency
// — the same fallback chain the load estimators use, so admission and
// dispatch never disagree about what a request costs.
func RequestIsolated(lut *trace.StatsSet, est *sched.Estimator) func(*workload.Request) time.Duration {
	return func(r *workload.Request) time.Duration {
		if st := lut.Lookup(r.Key); st != nil {
			return st.AvgTotal
		}
		if st := est.ModelStats(r.Key.Model); st != nil {
			return st.AvgTotal
		}
		return est.MeanIsolated()
	}
}
