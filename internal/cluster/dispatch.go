package cluster

import (
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// Dispatcher routes an arriving request to one of the cluster's engines.
// Pick is called once per request, in arrival order, with every engine
// already advanced to the arrival instant (each engine's state reflects
// the layers it had committed before `now`). Implementations must be
// deterministic: same engines, same request, same answer. The returned
// index selects engines[i]; an out-of-range index fails the run.
type Dispatcher interface {
	// Name identifies the policy in results.
	Name() string
	// Pick selects the engine for the request arriving at now.
	Pick(engines []*sched.Engine, r *workload.Request, now time.Duration) int
}

// RoundRobin cycles through engines in index order, ignoring load: the
// baseline dispatch every serving stack starts with.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin dispatcher starting at engine 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Dispatcher.
func (*RoundRobin) Name() string { return "rr" }

// Pick implements Dispatcher.
func (d *RoundRobin) Pick(engines []*sched.Engine, _ *workload.Request, _ time.Duration) int {
	i := d.next % len(engines)
	d.next++
	return i
}

// JSQ is Join-the-Shortest-Queue: the engine with the fewest outstanding
// requests, ties to the lowest index. Load-aware but size-blind — a queue
// of three MobileNets counts the same as a queue of three BERTs.
type JSQ struct{}

// NewJSQ returns the join-the-shortest-queue dispatcher.
func NewJSQ() *JSQ { return &JSQ{} }

// Name implements Dispatcher.
func (*JSQ) Name() string { return "jsq" }

// Pick implements Dispatcher.
func (*JSQ) Pick(engines []*sched.Engine, _ *workload.Request, _ time.Duration) int {
	best, bestLen := 0, engines[0].Outstanding()
	for i := 1; i < len(engines); i++ {
		if n := engines[i].Outstanding(); n < bestLen {
			best, bestLen = i, n
		}
	}
	return best
}

// LeastLoad routes to the engine with the smallest predicted outstanding
// work: the sum of a per-task remaining-latency estimate over every
// queued request. With a sparsity-aware estimate (SparsityAwareLoad) this
// is the dispatch-layer analogue of Dysta's scheduling insight — the same
// architecture differs up to ~40% in effective work across sparsity
// patterns (paper Fig. 4), so queue length alone misjudges backlog.
type LeastLoad struct {
	name string
	load func(*sched.Task) time.Duration
}

// NewLeastLoad returns a least-predicted-load dispatcher using the given
// per-task remaining-work estimate.
func NewLeastLoad(name string, load func(*sched.Task) time.Duration) *LeastLoad {
	return &LeastLoad{name: name, load: load}
}

// Name implements Dispatcher.
func (d *LeastLoad) Name() string { return d.name }

// Pick implements Dispatcher.
func (d *LeastLoad) Pick(engines []*sched.Engine, _ *workload.Request, _ time.Duration) int {
	best, bestLoad := 0, engines[0].EstimatedBacklog(d.load)
	for i := 1; i < len(engines); i++ {
		if w := engines[i].EstimatedBacklog(d.load); w < bestLoad {
			best, bestLoad = i, w
		}
	}
	return best
}

// BlindLoad estimates a task's remaining work from the pattern-blind
// profiling Estimator — the load signal a sparsity-unaware serving stack
// has available.
func BlindLoad(est *sched.Estimator) func(*sched.Task) time.Duration {
	return est.Remaining
}

// SparsityAwareLoad estimates a task's remaining work from the Dysta LUT,
// keyed by the model-pattern pair (paper §5.1): the static-sparsity-aware
// estimate the hardware profiling stage provides. Unknown keys fall back
// to zero (the dispatcher then treats them as free, which only ever
// happens for tasks outside the profiled benchmark).
func SparsityAwareLoad(lut *trace.StatsSet) func(*sched.Task) time.Duration {
	return func(t *sched.Task) time.Duration {
		if st := lut.Lookup(t.Key); st != nil {
			return st.AvgRemaining(t.NextLayer)
		}
		return 0
	}
}
